package data

import (
	"math"
	"math/rand"

	"polyclip/internal/geom"
)

// TileLayerOptions configures the vector-tile cutting workload: one
// multi-ring layer whose boundary is spread over a grid of cells, plus a
// large central region so pyramid cutting exercises both fast paths —
// Outside prunes in the gaps and FastInside fills over the big interior.
type TileLayerOptions struct {
	// Rings is the small-ring count (default 64).
	Rings int
	// HoleFrac in [0, 1) is the fraction of small rings given a concentric
	// hole (default 0.1).
	HoleFrac float64
	// Edges is the per-ring edge count (default 8; clamped to >= 3).
	Edges int
	// NoLake suppresses the large central ring.
	NoLake bool
	// Seed seeds the generator; equal options produce equal layers.
	Seed int64
}

// TileLayer synthesizes one layer for the tile-cutting benchmark and chaos
// family. Rings are placed one per grid cell with jittered shape and radius,
// so boundary density is uniform and the layer's own rings never intersect —
// the canonicalization cost is dominated by the union sweep, as in real
// basemap layers. The default large central ring overlaps many small ones,
// so winding rules and even-odd disagree and the fill-rule plumbing is
// actually exercised.
func TileLayer(opt TileLayerOptions) geom.Polygon {
	n := opt.Rings
	if n <= 0 {
		n = 64
	}
	holeFrac := opt.HoleFrac
	if holeFrac == 0 {
		holeFrac = 0.1
	}
	edges := opt.Edges
	if edges <= 0 {
		edges = 8
	}
	if edges < 3 {
		edges = 3
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	side := int(math.Ceil(math.Sqrt(float64(n))))
	const cell = 10.0
	var p geom.Polygon
	for i := 0; i < n; i++ {
		cx := (float64(i%side) + 0.5) * cell
		cy := (float64(i/side) + 0.5) * cell
		c := geom.Point{
			X: cx + (rng.Float64()-0.5)*cell*0.3,
			Y: cy + (rng.Float64()-0.5)*cell*0.3,
		}
		r := cell * (0.15 + rng.Float64()*0.25)
		p = append(p, JitteredPolygon(rng, c, r*0.8, r, edges))
		if rng.Float64() < holeFrac {
			p = append(p, JitteredPolygon(rng, c, r*0.3, r*0.4, edges))
		}
	}
	if !opt.NoLake {
		span := float64(side) * cell
		c := geom.Point{X: span / 2, Y: span / 2}
		p = append(p, JitteredPolygon(rng, c, span*0.22, span*0.3, 4*edges))
	}
	return p
}
