package engine_test

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"polyclip/internal/engine"
)

// TestStatsJSONRoundTrip pins the Stats serialization contract the clipd
// service and the BENCH_clipd.json artifacts depend on: lower-camel field
// names, durations as nanosecond integers, and a lossless round trip.
func TestStatsJSONRoundTrip(t *testing.T) {
	in := engine.Stats{
		Engine:    "overlay",
		Slabs:     4,
		Sort:      3 * time.Millisecond,
		Partition: 5 * time.Millisecond,
		Clip:      11 * time.Millisecond,
		Merge:     2 * time.Millisecond,
		PerThread: []time.Duration{time.Millisecond, 2 * time.Millisecond},
		Resilience: engine.Resilience{
			Repaired:          true,
			Attempts:          []string{"overlay:panic", "overlay-coarse:ok"},
			Recovered:         1,
			StageTimeouts:     2,
			Retries:           3,
			InvariantFailures: 4,
		},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out engine.Stats
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, out)
	}

	// The wire names are a stable contract: a rename breaks every consumer
	// of /statz and the committed benchmark artifacts.
	for _, key := range []string{
		`"engine"`, `"slabs"`, `"sortNs"`, `"partitionNs"`, `"clipNs"`,
		`"mergeNs"`, `"perThreadNs"`, `"resilience"`, `"repaired"`,
		`"attempts"`, `"recovered"`, `"stageTimeouts"`, `"retries"`,
		`"invariantFailures"`,
	} {
		if !strings.Contains(string(data), key) {
			t.Errorf("serialized Stats is missing key %s: %s", key, data)
		}
	}
}

// TestStatsJSONOmitsEmpty pins the omitempty behaviour: a zero Stats still
// serializes the counter fields (so CSV/JSON consumers see explicit zeros)
// but drops the optional engine name and slices.
func TestStatsJSONOmitsEmpty(t *testing.T) {
	data, err := json.Marshal(engine.Stats{})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	s := string(data)
	for _, absent := range []string{`"engine"`, `"perThreadNs"`, `"attempts"`} {
		if strings.Contains(s, absent) {
			t.Errorf("zero Stats should omit %s: %s", absent, s)
		}
	}
	for _, present := range []string{`"slabs":0`, `"recovered":0`, `"stageTimeouts":0`} {
		if !strings.Contains(s, present) {
			t.Errorf("zero Stats should keep %s explicit: %s", present, s)
		}
	}
}
