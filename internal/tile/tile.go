// Package tile cuts a polygon layer into a z/x/y pyramid of square vector
// tiles — the output-sensitive workload the prepared-geometry pipeline was
// built for. One internal/prepared.Prepared of the layer serves every zoom
// level; each zoom is cut by quadtree descent over the tile grid, so whole
// subtrees of the pyramid are settled by one O(lg N) classification:
//
//   - an Outside node prunes every descendant tile without touching them;
//   - an Inside node emits every descendant as a full tile rectangle;
//   - a Straddle node recurses, and at the leaf zoom runs the real clip.
//
// The work done is proportional to the layer's boundary length per zoom
// (the tiles the boundary actually crosses), not to the 4^z tiles of the
// grid — the same output-sensitivity argument as the paper's clipping
// algorithm, lifted from one polygon to a pyramid.
//
// Cutting is parallelized over internal/par's pooled scheduler by splitting
// each zoom at a frontier level sized to the worker count; because every
// tile's content is a pure function of its (z, x, y) key against the
// immutable Prepared, the final (z, x, y) sort makes the output bit-identical
// at any thread count.
package tile

import (
	"context"
	"fmt"
	"sort"

	"polyclip/internal/acache"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/par"
	"polyclip/internal/prepared"
)

// MaxZoomLimit bounds pyramid depth: 2^20 tiles per axis (a trillion-tile
// pyramid) is already far beyond anything the driver should materialize.
const MaxZoomLimit = 20

// Spec describes a tile pyramid: zoom levels MinZoom..MaxZoom over a square
// Extent, zoom z holding a 2^z by 2^z grid.
type Spec struct {
	MinZoom int       `json:"minZoom"`
	MaxZoom int       `json:"maxZoom"`
	Extent  geom.BBox `json:"extent"`
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	switch {
	case s.MinZoom < 0 || s.MaxZoom < s.MinZoom:
		return fmt.Errorf("tile: bad zoom range [%d, %d]", s.MinZoom, s.MaxZoom)
	case s.MaxZoom > MaxZoomLimit:
		return fmt.Errorf("tile: max zoom %d exceeds limit %d", s.MaxZoom, MaxZoomLimit)
	case s.Extent.Width() <= 0 || s.Extent.Height() <= 0:
		return fmt.Errorf("tile: degenerate extent %+v", s.Extent)
	}
	return nil
}

// NumTiles returns the total leaf-tile count of the pyramid.
func (s Spec) NumTiles() int64 {
	var n int64
	for z := s.MinZoom; z <= s.MaxZoom; z++ {
		n += int64(1) << uint(2*z)
	}
	return n
}

// Box returns tile (x, y)'s window at zoom z. Grid lines are computed as
// extent-min + width*(i/2^z) so adjacent tiles share bit-identical
// boundaries.
func (s Spec) Box(z int, x, y int32) geom.BBox {
	n := float64(int64(1) << uint(z))
	return geom.BBox{
		MinX: s.Extent.MinX + s.Extent.Width()*(float64(x)/n),
		MinY: s.Extent.MinY + s.Extent.Height()*(float64(y)/n),
		MaxX: s.Extent.MinX + s.Extent.Width()*(float64(x+1)/n),
		MaxY: s.Extent.MinY + s.Extent.Height()*(float64(y+1)/n),
	}
}

// SquareExtent pads b to a square about its center — the usual way to build
// a Spec extent from a layer's bounding box, with a whisker of margin so the
// layer boundary never lies exactly on the pyramid border.
func SquareExtent(b geom.BBox) geom.BBox {
	w, h := b.Width(), b.Height()
	side := w
	if h > side {
		side = h
	}
	if side <= 0 {
		side = 1
	}
	side *= 1.0 + 1.0/1024
	cx, cy := (b.MinX+b.MaxX)/2, (b.MinY+b.MaxY)/2
	return geom.BBox{MinX: cx - side/2, MinY: cy - side/2, MaxX: cx + side/2, MaxY: cy + side/2}
}

// Tile is one non-empty pyramid cell: the layer's region clipped to the
// cell's window, in canonical even-odd form (CCW outers, CW holes).
type Tile struct {
	Z    int
	X, Y int32
	Poly geom.Polygon
}

// Options configures a Cut.
type Options struct {
	// Rule is the fill rule the layer is read under.
	Rule engine.FillRule
	// Threads caps the worker count; <=0 means par.DefaultParallelism.
	Threads int
	// Naive disables the prepared pipeline: every candidate tile runs a
	// full per-tile clip of the raw layer. The benchmark baseline.
	Naive bool
	// Cache, when non-nil, memoizes the layer's canonical form by digest
	// (acache's prepare tier), so repeated cuts of the same layer — serve
	// traffic, multi-request batches — canonicalize once.
	Cache *acache.Cache
}

// Stats describes one Cut. JSON tags are stable; they surface in the tile
// benchmark artifact and /statz.
type Stats struct {
	Zooms    int            `json:"zooms"`
	Tiles    int64          `json:"tiles"`       // non-empty tiles emitted
	Leaves   int64          `json:"leaves"`      // leaf tiles that ran a clip
	Filled   int64          `json:"filledTiles"` // tiles emitted wholesale from Inside nodes
	Pruned   int64          `json:"prunedTiles"` // tiles skipped wholesale from Outside nodes
	Nodes    int64          `json:"nodes"`       // pyramid nodes classified
	Prepared prepared.Stats `json:"prepared"`    // leaf clip route counters (zero when naive)
}

// Cut slices the layer, read under opt.Rule, into the pyramid's non-empty
// tiles, sorted by (z, x, y). The output is deterministic: bit-identical for
// any Threads value.
func Cut(ctx context.Context, layer geom.Polygon, spec Spec, opt Options) ([]Tile, Stats, error) {
	if err := spec.Validate(); err != nil {
		return nil, Stats{}, err
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = par.DefaultParallelism()
	}
	st := Stats{Zooms: spec.MaxZoom - spec.MinZoom + 1}

	var tiles []Tile
	if opt.Naive {
		for z := spec.MinZoom; z <= spec.MaxZoom; z++ {
			zt, err := cutZoomNaive(ctx, layer, spec, z, threads, opt.Rule, &st)
			if err != nil {
				return nil, st, err
			}
			tiles = append(tiles, zt...)
		}
	} else {
		canon := opt.Cache.Prepared(geom.Hash(layer), opt.Rule, func() geom.Polygon {
			return prepared.Canonicalize(layer, opt.Rule)
		})
		pp := prepared.FromCanonical(canon, opt.Rule)
		for z := spec.MinZoom; z <= spec.MaxZoom; z++ {
			zt, err := cutZoomPrepared(ctx, pp, spec, z, threads, &st)
			if err != nil {
				return nil, st, err
			}
			tiles = append(tiles, zt...)
		}
		st.Prepared = pp.Stats()
	}

	sort.Slice(tiles, func(i, j int) bool {
		a, b := tiles[i], tiles[j]
		if a.Z != b.Z {
			return a.Z < b.Z
		}
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	st.Tiles = int64(len(tiles))
	return tiles, st, nil
}

// node is one pyramid cell above (or at) the leaf zoom.
type node struct {
	level int
	x, y  int32
}

// cutZoomPrepared cuts one zoom level by quadtree descent: a serial descent
// to the frontier level settles the cheap upper pyramid (and whole Inside /
// Outside subtrees), then the surviving Straddle frontier nodes fan out over
// the pooled scheduler.
func cutZoomPrepared(ctx context.Context, pp *prepared.Prepared, spec Spec, z, threads int, st *Stats) ([]Tile, error) {
	frontier := frontierLevel(z, threads)

	var out []Tile
	var work []node
	var walk func(n node)
	walk = func(n node) {
		cls := classifyNode(pp, spec, z, n, st, &out)
		if cls != prepared.Straddle {
			return
		}
		if n.level == frontier {
			work = append(work, n)
			return
		}
		for _, c := range children(n) {
			walk(c)
		}
	}
	walk(node{level: 0})

	if len(work) == 0 {
		return out, nil
	}
	results := make([][]Tile, len(work))
	stats := make([]Stats, len(work))
	err := par.ForEachCtx(ctx, len(work), threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			results[i] = descend(pp, spec, z, work[i], &stats[i])
		}
	})
	if err != nil {
		return nil, err
	}
	for i := range work {
		out = append(out, results[i]...)
		st.Leaves += stats[i].Leaves
		st.Filled += stats[i].Filled
		st.Pruned += stats[i].Pruned
		st.Nodes += stats[i].Nodes
	}
	return out, nil
}

// descend recursively cuts the subtree under n down to the leaf zoom.
func descend(pp *prepared.Prepared, spec Spec, z int, n node, st *Stats) []Tile {
	var out []Tile
	var walk func(n node)
	walk = func(n node) {
		if classifyNode(pp, spec, z, n, st, &out) != prepared.Straddle {
			return
		}
		for _, c := range children(n) {
			walk(c)
		}
	}
	if n.level == z {
		// Frontier at the leaf zoom: the node was already classified
		// Straddle by the serial walk; clip it directly.
		clipLeaf(pp, spec, z, n, st, &out)
		return out
	}
	for _, c := range children(n) {
		walk(c)
	}
	return out
}

// classifyNode settles one pyramid node: prune, fill, clip (at the leaf), or
// report Straddle for the caller to recurse.
func classifyNode(pp *prepared.Prepared, spec Spec, z int, n node, st *Stats, out *[]Tile) prepared.Class {
	if n.level == z {
		clipLeaf(pp, spec, z, n, st, out)
		return prepared.Outside // leaf handled; never recurse
	}
	st.Nodes++
	sub := int64(1) << uint(2*(z-n.level)) // descendant leaf count
	switch cls := pp.ClassifyRect(spec.Box(n.level, n.x, n.y)); cls {
	case prepared.Outside:
		st.Pruned += sub
		return cls
	case prepared.Inside:
		st.Filled += sub
		fill(spec, z, n, out)
		return cls
	default:
		return prepared.Straddle
	}
}

// clipLeaf runs the real clip for one leaf tile and emits it if non-empty.
func clipLeaf(pp *prepared.Prepared, spec Spec, z int, n node, st *Stats, out *[]Tile) {
	st.Nodes++
	st.Leaves++
	poly, _ := pp.ClipRect(spec.Box(z, n.x, n.y))
	if len(poly) > 0 {
		*out = append(*out, Tile{Z: z, X: n.x, Y: n.y, Poly: poly})
	}
}

// fill emits every leaf tile under the Inside node n as a full rectangle.
func fill(spec Spec, z int, n node, out *[]Tile) {
	shift := uint(z - n.level)
	for ty := n.y << shift; ty < (n.y+1)<<shift; ty++ {
		for tx := n.x << shift; tx < (n.x+1)<<shift; tx++ {
			b := spec.Box(z, tx, ty)
			*out = append(*out, Tile{Z: z, X: tx, Y: ty,
				Poly: geom.RectPolygon(b.MinX, b.MinY, b.MaxX, b.MaxY)})
		}
	}
}

// children returns n's four quadrant children in (y, x) order.
func children(n node) [4]node {
	l, x, y := n.level+1, n.x<<1, n.y<<1
	return [4]node{
		{l, x, y}, {l, x + 1, y},
		{l, x, y + 1}, {l, x + 1, y + 1},
	}
}

// frontierLevel picks the serial-descent depth for a zoom: deep enough that
// the frontier can feed every worker several nodes (4^level >= 8*threads),
// shallow enough to keep the serial prefix trivial, and never past the leaf
// zoom.
func frontierLevel(z, threads int) int {
	level := 0
	for level < z && level < 6 && 1<<uint(2*level) < 8*threads {
		level++
	}
	return level
}

// cutZoomNaive is the per-tile full-clip baseline: every tile whose window
// meets the layer's bounding box is clipped from scratch against the raw
// layer. The bounding-box skip is the only concession — even a naive tiler
// checks MBRs — so the gate measures the prepared pipeline, not a strawman.
func cutZoomNaive(ctx context.Context, layer geom.Polygon, spec Spec, z, threads int, rule engine.FillRule, st *Stats) ([]Tile, error) {
	n := int32(1) << uint(z)
	lb := layer.BBox()
	x0, x1 := gridRange(lb.MinX, lb.MaxX, spec.Extent.MinX, spec.Extent.MaxX, n)
	y0, y1 := gridRange(lb.MinY, lb.MaxY, spec.Extent.MinY, spec.Extent.MaxY, n)
	nx, ny := int(x1-x0), int(y1-y0)
	if nx <= 0 || ny <= 0 {
		st.Pruned += int64(n) * int64(n)
		return nil, nil
	}
	st.Pruned += int64(n)*int64(n) - int64(nx)*int64(ny)

	results := make([][]Tile, ny)
	err := par.ForEachCtx(ctx, ny, threads, func(lo, hi int) {
		for row := lo; row < hi; row++ {
			ty := y0 + int32(row)
			for tx := x0; tx < x1; tx++ {
				poly := prepared.NaiveClipRect(layer, spec.Box(z, tx, ty), rule)
				if len(poly) > 0 {
					results[row] = append(results[row], Tile{Z: z, X: tx, Y: ty, Poly: poly})
				}
			}
		}
	})
	if err != nil {
		return nil, err
	}
	var out []Tile
	for _, r := range results {
		out = append(out, r...)
	}
	st.Leaves += int64(nx) * int64(ny)
	st.Nodes += int64(nx) * int64(ny)
	return out, nil
}

// gridRange returns the [lo, hi) tile-index range whose cells meet [vmin,
// vmax] on one axis of an n-cell grid over [emin, emax].
func gridRange(vmin, vmax, emin, emax float64, n int32) (int32, int32) {
	if emax <= emin || vmax < emin || vmin > emax {
		return 0, 0
	}
	w := (emax - emin) / float64(n)
	lo := int32((vmin - emin) / w)
	hi := int32((vmax-emin)/w) + 1
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}
