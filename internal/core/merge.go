package core

import (
	"math"
	"sort"

	"polyclip/internal/geom"
	"polyclip/internal/overlay"
	"polyclip/internal/par"
	"polyclip/internal/ringstitch"
	"polyclip/internal/segtree"
)

// mergePartials combines per-slab outputs (paper Step 8 / Fig. 6).
func mergePartials(partial []geom.Polygon, bounds []float64, mode MergeMode, snapEps float64, p int) geom.Polygon {
	switch mode {
	case MergeConcat:
		var out geom.Polygon
		for _, pp := range partial {
			out = append(out, pp...)
		}
		return out
	case MergeUnionTree:
		return mergeUnionTree(partial, p)
	default:
		return mergeStitch(partial, bounds, snapEps, p)
	}
}

// snapMergePoint quantizes a point onto the shared grid.
func snapMergePoint(pt geom.Point, inv, eps float64) geom.Point {
	return geom.Point{
		X: math.Round(pt.X*inv) * eps,
		Y: math.Round(pt.Y*inv) * eps,
	}
}

// mergeStitch erases the horizontal seam edges along interior slab
// boundaries: partial outputs are decomposed into directed edges (interior
// on the left, which both engines guarantee), the horizontal edges lying on
// an interior boundary are net-cancelled with an interval sweep per
// boundary (adjacent slabs contribute opposite directions over shared
// intervals), and the surviving edges are restitched into rings.
func mergeStitch(partial []geom.Polygon, bounds []float64, snapEps float64, p int) geom.Polygon {
	inv := 1 / snapEps
	interior := make(map[float64]int, len(bounds))
	for i := 1; i < len(bounds)-1; i++ {
		interior[math.Round(bounds[i]*inv)*snapEps] = i
	}

	type capIv struct {
		x0, x1 float64
		dir    int // +1 traversed +x (interior above), -1 traversed -x
	}
	capsPer := make([][]capIv, len(bounds))
	var rest []ringstitch.Edge
	total := 0
	for _, pp := range partial {
		for _, r := range pp {
			total += len(r)
		}
	}
	rest = make([]ringstitch.Edge, 0, total)

	for _, pp := range partial {
		for _, r := range pp {
			n := len(r)
			for i := 0; i < n; i++ {
				a := snapMergePoint(r[i], inv, snapEps)
				b := snapMergePoint(r[(i+1)%n], inv, snapEps)
				if a == b {
					continue
				}
				if a.Y == b.Y {
					if bi, ok := interior[a.Y]; ok {
						if a.X < b.X {
							capsPer[bi] = append(capsPer[bi], capIv{a.X, b.X, +1})
						} else {
							capsPer[bi] = append(capsPer[bi], capIv{b.X, a.X, -1})
						}
						continue
					}
				}
				rest = append(rest, ringstitch.Edge{From: a, To: b})
			}
		}
	}

	// Net interval sweep per interior boundary, in parallel.
	results := make([][]ringstitch.Edge, len(bounds))
	par.ForEachItem(len(bounds), p, func(bi int) {
		ivs := capsPer[bi]
		if len(ivs) == 0 {
			return
		}
		y := snapMergePoint(geom.Point{X: 0, Y: bounds[bi]}, inv, snapEps).Y
		xs := make([]float64, 0, 2*len(ivs))
		for _, iv := range ivs {
			xs = append(xs, iv.x0, iv.x1)
		}
		xs = segtree.Dedup(xs)
		net := make([]int, len(xs)-1)
		for _, iv := range ivs {
			a := sort.SearchFloat64s(xs, iv.x0)
			b := sort.SearchFloat64s(xs, iv.x1)
			for i := a; i < b; i++ {
				net[i] += iv.dir
			}
		}
		var out []ringstitch.Edge
		for i, nv := range net {
			a := geom.Point{X: xs[i], Y: y}
			b := geom.Point{X: xs[i+1], Y: y}
			for ; nv > 0; nv-- {
				out = append(out, ringstitch.Edge{From: a, To: b})
			}
			for ; nv < 0; nv++ {
				out = append(out, ringstitch.Edge{From: b, To: a})
			}
		}
		results[bi] = out
	})
	for _, es := range results {
		rest = append(rest, es...)
	}
	return ringstitch.Stitch(rest)
}

// mergeUnionTree performs the literal Fig. 6 reduction: adjacent partial
// outputs are pairwise unioned, log(slabs) rounds, each round's unions
// running concurrently.
func mergeUnionTree(partial []geom.Polygon, p int) geom.Polygon {
	cur := make([]geom.Polygon, len(partial))
	copy(cur, partial)
	for len(cur) > 1 {
		next := make([]geom.Polygon, (len(cur)+1)/2)
		par.ForEachItem(len(next), p, func(i int) {
			if 2*i+1 < len(cur) {
				next[i] = overlay.Clip(cur[2*i], cur[2*i+1], overlay.Union, overlay.Options{Parallelism: 1})
			} else {
				next[i] = cur[2*i]
			}
		})
		cur = next
	}
	if len(cur) == 0 {
		return nil
	}
	return cur[0]
}
