package par

import (
	"slices"

	"polyclip/internal/guard"
)

// sortSerialCutoff is the subproblem size below which parallel mergesort
// falls back to the serial sort: below it, goroutine spawn/join overhead
// exceeds the sort work itself.
const sortSerialCutoff = 1 << 12

// serialSort is the mergesort base case: the stdlib generic stable sort,
// which monomorphizes over T and so — unlike sort.SliceStable, whose
// reflect-based swapper allocates per call — runs allocation-free.
func serialSort[T any](xs []T, less func(a, b T) bool) {
	slices.SortStableFunc(xs, func(a, b T) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	})
}

// Sort sorts xs by less using a work-efficient parallel mergesort with
// parallelism p. It is the multicore stand-in for Cole's O(log n) CREW PRAM
// mergesort the paper uses for Step 1 (sorting event points) — same work,
// O(log² n) depth instead of O(log n) (Cole's pipelining is a PRAM
// refinement with no multicore payoff; see DESIGN.md).
func Sort[T any](xs []T, less func(a, b T) bool, p int) {
	guard.Hit("par.sort")
	p = normalize(p)
	if p == 1 || len(xs) <= sortSerialCutoff {
		serialSort(xs, less)
		return
	}
	buf := make([]T, len(xs))
	mergeSort(xs, buf, less, depthFor(p))
}

// depthFor returns the recursion depth at which to stop spawning goroutines:
// 2^depth leaves ≈ 2p tasks for load balance.
func depthFor(p int) int {
	d := 0
	for (1 << d) < 2*p {
		d++
	}
	return d
}

func mergeSort[T any](xs, buf []T, less func(a, b T) bool, depth int) {
	n := len(xs)
	if depth == 0 || n <= sortSerialCutoff {
		serialSort(xs, less)
		return
	}
	mid := n / 2
	join2(
		func() { mergeSort(xs[:mid], buf[:mid], less, depth-1) },
		func() { mergeSort(xs[mid:], buf[mid:], less, depth-1) },
	)
	merge(xs[:mid], xs[mid:], buf, less)
	copy(xs, buf)
}

// merge merges sorted a and b into dst (len(dst) == len(a)+len(b)),
// preserving stability (ties favour a).
func merge[T any](a, b, dst []T, less func(x, y T) bool) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	for i < len(a) {
		dst[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		dst[k] = b[j]
		j++
		k++
	}
}

// IsSorted reports whether xs is sorted by less.
func IsSorted[T any](xs []T, less func(a, b T) bool) bool {
	for i := 1; i < len(xs); i++ {
		if less(xs[i], xs[i-1]) {
			return false
		}
	}
	return true
}
