package overlay

import (
	"polyclip/internal/geom"
	"polyclip/internal/ringstitch"
)

// stitch links the directed contributing edges into closed output rings via
// the shared interior-on-the-left ring stitcher.
func stitch(segs []*useg, dirs []dirEdge) geom.Polygon {
	_ = segs
	if len(dirs) == 0 {
		return nil
	}
	es := make([]ringstitch.Edge, len(dirs))
	for i, d := range dirs {
		es[i] = ringstitch.Edge{From: d.from, To: d.to}
	}
	return ringstitch.Stitch(es)
}
