// Package guard is the resilience layer of the clipping pipeline: input
// validation and repair, result auditing, structured capture of worker
// panics, and a fault-injection hook used by tests to simulate worker
// crashes and pathological geometry.
//
// Degenerate inputs are the common case in real GIS workloads (Foster &
// Overfelt; the paper's §III-C degeneracy handling), so every public entry
// point of the library routes its operands through Validate and Repair
// before any engine sees them, and audits engine output before returning
// it. The fault hooks let tests drive the rarely-exercised failure paths —
// a panic in one slab worker, a corrupted engine result — without
// depending on finding real inputs that trigger them.
package guard

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"

	"polyclip/internal/geom"
)

// MaxCoord is the largest coordinate magnitude accepted by Validate.
// Beyond it, products of two coordinates (orientation and intersection
// predicates evaluate cross products) risk overflowing float64 to ±Inf,
// silently corrupting every downstream combinatorial decision.
const MaxCoord = 1e150

// ErrInvalidInput tags validation failures; test with errors.Is.
var ErrInvalidInput = errors.New("invalid input geometry")

// Validate rejects polygons no engine can be trusted with: non-finite
// (NaN/±Inf) coordinates and overflow-risk magnitudes. It returns nil for
// geometrically degenerate but representable inputs (those are Repair's
// job).
func Validate(p geom.Polygon) error {
	if err := p.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	for ri, r := range p {
		for vi, pt := range r {
			if m := math.Max(math.Abs(pt.X), math.Abs(pt.Y)); m > MaxCoord {
				return fmt.Errorf("%w: ring %d vertex %d: coordinate magnitude %g exceeds %g (float64 overflow risk)",
					ErrInvalidInput, ri, vi, m, MaxCoord)
			}
		}
	}
	return nil
}

// RepairReport summarizes what Repair changed.
type RepairReport struct {
	DedupedVertices int // duplicate consecutive vertices removed (incl. redundant closing vertex)
	Spikes          int // zero-area spike vertices (a, b, a patterns) removed
	DroppedRings    int // rings below 3 vertices after cleaning
}

// Changed reports whether Repair modified the polygon at all.
func (r RepairReport) Changed() bool {
	return r.DedupedVertices+r.Spikes+r.DroppedRings > 0
}

// Repair returns a cleaned copy of the polygon: duplicate consecutive
// vertices (including a repeated closing vertex) are removed, exact
// zero-area spikes are collapsed, and rings left with fewer than three
// vertices are dropped. When nothing needs repair the input is returned
// unchanged (no allocation), so clean fast-path inputs pay only a scan.
func Repair(p geom.Polygon) (geom.Polygon, RepairReport) {
	var rep RepairReport
	dirty := false
	for _, r := range p {
		if !ringClean(r) {
			dirty = true
			break
		}
	}
	if !dirty {
		return p, rep
	}
	out := make(geom.Polygon, 0, len(p))
	for _, r := range p {
		if ringClean(r) {
			out = append(out, r)
			continue
		}
		cr := cleanRing(r, &rep)
		if len(cr) >= 3 {
			out = append(out, cr)
		} else {
			rep.DroppedRings++
		}
	}
	return out, rep
}

// ringClean reports whether cleanRing would leave r untouched.
func ringClean(r geom.Ring) bool {
	n := len(r)
	if n < 3 {
		return false
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		k := (i + 2) % n
		if r[i] == r[j] { // consecutive duplicate (or closing duplicate at the seam)
			return false
		}
		if r[i] == r[k] { // zero-area spike at j
			return false
		}
	}
	return true
}

// cleanRing removes consecutive duplicates and exact spikes with a stack
// pass, then resolves duplicates/spikes across the implicit closing edge.
func cleanRing(r geom.Ring, rep *RepairReport) geom.Ring {
	st := make(geom.Ring, 0, len(r))
	for _, pt := range r {
		st = append(st, pt)
		for {
			n := len(st)
			if n >= 2 && st[n-1] == st[n-2] {
				st = st[:n-1]
				rep.DedupedVertices++
				continue
			}
			if n >= 3 && st[n-1] == st[n-3] {
				// ..., a, b, a: b is a spike vertex; drop b and one a (the
				// surviving a keeps the chain connected).
				st = st[:n-2]
				rep.Spikes++
				continue
			}
			break
		}
	}
	// Wrap-around: the closing edge st[len-1] -> st[0] is implicit.
	for {
		n := len(st)
		if n < 3 {
			break
		}
		if st[0] == st[n-1] { // redundant closing vertex
			st = st[:n-1]
			rep.DedupedVertices++
			continue
		}
		if st[0] == st[n-2] { // spike at the last vertex
			st = st[:n-1]
			rep.Spikes++
			continue
		}
		if st[1] == st[n-1] { // spike at the first vertex
			st = st[1:]
			rep.Spikes++
			continue
		}
		break
	}
	return st
}

// OpKind mirrors the overlay engine's operation codes for the audit (guard
// cannot import the engine packages: they call into guard's fault hooks).
type OpKind uint8

// Operation kinds, value-compatible with overlay.Op.
const (
	OpIntersection OpKind = iota
	OpUnion
	OpDifference
	OpXor
)

// MeasureBound returns a cheap sound upper bound on the even-odd measure
// of a polygon: the sum of its rings' bounding-box areas. Unlike the
// shoelace ring-sum — which under-states self-intersecting rings (a
// bowtie's lobes cancel to zero) — this bound holds for arbitrary input,
// which is what the audit needs: a reference that a *correct* result can
// never exceed.
func MeasureBound(p geom.Polygon) float64 {
	var s float64
	for _, r := range p {
		b := r.BBox()
		s += b.Width() * b.Height()
	}
	return s
}

// Audit is the cheap sanity check of the differential-fallback chain: the
// result must have well-formed finite rings and an even-odd area within the
// op-specific upper bound of the input measure bounds (see MeasureBound).
// Only upper bounds are checked — lower bounds are unreliable for
// self-intersecting inputs — so a failed audit means the result is
// certainly damaged, while a passing one is merely plausible.
func Audit(result geom.Polygon, areaSubject, areaClip float64, op OpKind) error {
	for ri, r := range result {
		if len(r) < 3 {
			return fmt.Errorf("audit: ring %d has %d vertices", ri, len(r))
		}
		if err := r.Validate(); err != nil {
			return fmt.Errorf("audit: ring %d: %v", ri, err)
		}
	}
	areaR := result.Area()
	var bound float64
	switch op {
	case OpIntersection:
		bound = math.Min(areaSubject, areaClip)
	case OpDifference:
		bound = areaSubject
	default: // Union, Xor
		bound = areaSubject + areaClip
	}
	// Purely relative tolerance: an absolute floor would make the bound
	// vacuous once input measures drop below it, letting a grossly
	// corrupted result pass unnoticed at small coordinate scales.
	tol := 1e-6 * (areaSubject + areaClip)
	if areaR > bound+tol {
		return fmt.Errorf("audit: result area %g exceeds %v bound %g (subject %g, clip %g)",
			areaR, op, bound, areaSubject, areaClip)
	}
	return nil
}

// DiffTol is the relative tolerance of the differential oracle: two
// structurally different engines must agree on the even-odd measure within
// DiffTol of the input scale for a result to be confirmed.
const DiffTol = 1e-6

// AuditDifferential is the differential oracle of the fallback chain: it
// accepts a result when its even-odd area matches the area computed by a
// structurally different engine within DiffTol, relative to the given scale
// (or to the areas themselves when they dominate it). Unlike Audit's
// heuristic upper bound — which cannot decide whether an in-bound result is
// right — agreement between independently implemented engines is direct
// evidence, so this is the default oracle when Audit is inconclusive.
func AuditDifferential(result geom.Polygon, refArea, scale float64) error {
	got := result.Area()
	s := math.Max(math.Abs(scale), math.Max(math.Abs(got), math.Abs(refArea)))
	if math.Abs(got-refArea) <= DiffTol*s {
		return nil
	}
	return fmt.Errorf("differential audit: result area %g disagrees with reference engine area %g (scale %g)",
		got, refArea, scale)
}

// String names the operation kind.
func (op OpKind) String() string {
	switch op {
	case OpIntersection:
		return "intersection"
	case OpUnion:
		return "union"
	case OpDifference:
		return "difference"
	case OpXor:
		return "xor"
	default:
		return "unknown"
	}
}

// NoPair is the Pair value of a ClipError that is not pair-attributable.
var NoPair = [2]int{-1, -1}

// ClipError is the structured error produced when a clipping worker panics:
// the pipeline stage, the offending slab or feature pair (when
// attributable), the recovered panic value, and the worker's stack.
type ClipError struct {
	Stage   string // pipeline stage, e.g. "slab-clip", "pair-clip", "clip"
	Slab    int    // offending slab index, -1 when not slab-attributable
	Pair    [2]int // offending feature pair (a-index, b-index), {-1,-1} when n/a
	Value   any    // the recovered panic value
	Stack   []byte // stack of the panicking goroutine
	Err     error  // wrapped error, when the panic value was one
	Timeout bool   // the stage was abandoned by its watchdog deadline, not a panic
}

// Error formats the failure with its attribution.
func (e *ClipError) Error() string {
	var b strings.Builder
	if e.Timeout {
		fmt.Fprintf(&b, "polyclip: timeout in %s", e.Stage)
	} else {
		fmt.Fprintf(&b, "polyclip: panic in %s", e.Stage)
	}
	if e.Slab >= 0 {
		fmt.Fprintf(&b, " (slab %d)", e.Slab)
	}
	if e.Pair[0] >= 0 || e.Pair[1] >= 0 {
		fmt.Fprintf(&b, " (pair %d,%d)", e.Pair[0], e.Pair[1])
	}
	fmt.Fprintf(&b, ": %v", e.Value)
	return b.String()
}

// Unwrap exposes a wrapped error panic value to errors.Is/As.
func (e *ClipError) Unwrap() error { return e.Err }

// FromPanic builds a ClipError from a recovered panic value, capturing the
// current goroutine's stack. It must be called from the deferred recover of
// the goroutine that panicked, so the stack is the panicking one. A value
// that is already a *ClipError passes through unchanged (keeping the
// original, deepest attribution).
func FromPanic(stage string, slab int, pair [2]int, v any) *ClipError {
	if ce, ok := v.(*ClipError); ok {
		return ce
	}
	ce := &ClipError{Stage: stage, Slab: slab, Pair: pair, Value: v, Stack: debug.Stack()}
	if err, ok := v.(error); ok {
		ce.Err = err
	}
	return ce
}

// ---------------------------------------------------------------------------
// Fault injection. Sites are cheap when no fault is registered (one atomic
// load), so production code paths can call Hit unconditionally.

var (
	faults  sync.Map // site name -> fault func
	nFaults atomic.Int32
)

// InjectFault registers fn at the named site. fn is either a func() (for
// Hit sites — it may panic to simulate a worker crash) or a
// func(geom.Polygon) geom.Polygon (for HitPoly sites — it may corrupt a
// result to exercise the audit/fallback path). A nil fn clears the site.
func InjectFault(site string, fn any) {
	if fn == nil {
		ClearFault(site)
		return
	}
	if _, loaded := faults.Swap(site, fn); !loaded {
		nFaults.Add(1)
	}
}

// ClearFault removes the fault at the named site.
func ClearFault(site string) {
	if _, ok := faults.LoadAndDelete(site); ok {
		nFaults.Add(-1)
	}
}

// ClearFaults removes every registered fault (test cleanup).
func ClearFaults() {
	faults.Range(func(k, _ any) bool {
		ClearFault(k.(string))
		return true
	})
}

// Hit invokes the func() fault registered at site, if any.
func Hit(site string) {
	if nFaults.Load() == 0 {
		return
	}
	if v, ok := faults.Load(site); ok {
		if f, ok := v.(func()); ok {
			f()
		}
	}
}

// HitPoly passes p through the transforming fault registered at site, if
// any; otherwise p is returned unchanged.
func HitPoly(site string, p geom.Polygon) geom.Polygon {
	if nFaults.Load() == 0 {
		return p
	}
	if v, ok := faults.Load(site); ok {
		if f, ok := v.(func(geom.Polygon) geom.Polygon); ok {
			return f(p)
		}
	}
	return p
}

// TB is the subset of testing.TB that WithFault needs. Declaring it here
// keeps the testing package out of this production package's import graph.
type TB interface {
	Helper()
	Cleanup(func())
}

// WithFault registers fn at the named site for the duration of the test:
// the fault is injected immediately and every registered fault is cleared
// through t.Cleanup when the test (or subtest) finishes, so a failing test
// can never leak a fault into later tests. This is the required idiom for
// fault injection in tests — raw InjectFault calls without a paired cleanup
// poison the shared fault table.
func WithFault(t TB, site string, fn any) {
	t.Helper()
	InjectFault(site, fn)
	t.Cleanup(ClearFaults)
}

// Once wraps fn so that only the first call fires (later calls no-op) —
// the usual shape for simulating a transient worker crash.
func Once(fn func()) func() {
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			fn()
		}
	}
}

// Times wraps fn so that only the first n calls fire.
func Times(n int, fn func()) func() {
	var c atomic.Int32
	return func() {
		if c.Add(1) <= int32(n) {
			fn()
		}
	}
}
