package overlay

import (
	"math"
	"testing"

	"polyclip/internal/geom"
)

func TestNonZeroPentagramIsFilled(t *testing.T) {
	// Under NonZero the pentagram's centre pentagon (winding 2) is inside;
	// under EvenOdd it is a hole.
	star := geom.Polygon{geom.SelfIntersectingStar(geom.Point{X: 0, Y: 0}, 5, 5, 0.3)}
	big := geom.RectPolygon(-6, -6, 6, 6)
	eo := Clip(star, big, Intersection, Options{Rule: EvenOdd})
	nz := Clip(star, big, Intersection, Options{Rule: NonZero})
	if nz.Area() <= eo.Area() {
		t.Errorf("nonzero area %v should exceed even-odd area %v", nz.Area(), eo.Area())
	}
	centre := geom.Point{X: 0, Y: 0}
	if eo.ContainsPoint(centre) {
		t.Error("even-odd pentagram centre should be a hole")
	}
	if !nz.ContainsPoint(centre) {
		t.Error("nonzero pentagram centre should be filled")
	}
}

func TestNonZeroOverlappingSameDirectionRings(t *testing.T) {
	// Two CCW rings overlapping: under NonZero their union is the region
	// (winding >= 1 everywhere covered); under EvenOdd the overlap cancels.
	p := geom.Polygon{geom.Rect(0, 0, 4, 4), geom.Rect(2, 2, 6, 6)}
	big := geom.RectPolygon(-1, -1, 7, 7)
	nz := Clip(p, big, Intersection, Options{Rule: NonZero})
	if math.Abs(nz.Area()-28) > 1e-6 {
		t.Errorf("nonzero area = %v, want 28 (union of rings)", nz.Area())
	}
	eo := Clip(p, big, Intersection, Options{Rule: EvenOdd})
	if math.Abs(eo.Area()-24) > 1e-6 {
		t.Errorf("even-odd area = %v, want 24 (overlap cancels)", eo.Area())
	}
}

func TestNonZeroHoleNeedsOppositeOrientation(t *testing.T) {
	outer := geom.Rect(0, 0, 10, 10) // CCW
	holeCW := geom.Rect(3, 3, 7, 7)
	holeCW.Reverse()
	withHole := geom.Polygon{outer, holeCW}
	big := geom.RectPolygon(-1, -1, 11, 11)
	nz := Clip(withHole, big, Intersection, Options{Rule: NonZero})
	if math.Abs(nz.Area()-84) > 1e-6 {
		t.Errorf("CW hole under nonzero: area = %v, want 84", nz.Area())
	}
	// Same-direction inner ring is NOT a hole under NonZero.
	holeCCW := geom.Rect(3, 3, 7, 7)
	noHole := geom.Polygon{outer, holeCCW}
	nz2 := Clip(noHole, big, Intersection, Options{Rule: NonZero})
	if math.Abs(nz2.Area()-100) > 1e-6 {
		t.Errorf("CCW inner ring under nonzero: area = %v, want 100", nz2.Area())
	}
	// Under EvenOdd both orientations punch a hole.
	eo := Clip(noHole, big, Intersection, Options{Rule: EvenOdd})
	if math.Abs(eo.Area()-84) > 1e-6 {
		t.Errorf("even-odd area = %v, want 84", eo.Area())
	}
}

func TestNonZeroAllOpsAgreeOnSimpleInputs(t *testing.T) {
	// For simple (non-self-intersecting, disjoint-ring) operands the two
	// rules agree on every operation.
	a := geom.Polygon{geom.Star(geom.Point{X: 0, Y: 0}, 4, 1.5, 7, 0.2)}
	b := geom.Polygon{geom.Star(geom.Point{X: 1, Y: 1}, 4, 1.5, 6, 0.5)}
	for _, op := range []Op{Intersection, Union, Difference, Xor} {
		eo := Clip(a, b, op, Options{Rule: EvenOdd}).Area()
		nz := Clip(a, b, op, Options{Rule: NonZero}).Area()
		if math.Abs(eo-nz) > 1e-6*(1+eo) {
			t.Errorf("%v: even-odd %v vs nonzero %v", op, eo, nz)
		}
	}
}

func TestFillRuleInside(t *testing.T) {
	cases := []struct {
		rule FillRule
		w    int16
		want bool
	}{
		{EvenOdd, 0, false}, {EvenOdd, 1, true}, {EvenOdd, 2, false}, {EvenOdd, -1, true}, {EvenOdd, 3, true},
		{NonZero, 0, false}, {NonZero, 1, true}, {NonZero, 2, true}, {NonZero, -1, true}, {NonZero, -2, true},
	}
	for _, c := range cases {
		if got := c.rule.Inside(c.w); got != c.want {
			t.Errorf("rule %d wind %d = %v, want %v", c.rule, c.w, got, c.want)
		}
	}
}
