// Package serve is the fault-tolerant HTTP serving layer over the clipping
// library: the clipd daemon is a thin main around this package. Robustness
// is the architecture, not a wrapper —
//
//   - a channel-based batcher coalesces small clips into one flush
//     (BatchSize + MaxWait knobs, per-request response channels);
//   - admission control bounds the queue, switches overflow traffic to the
//     degraded chain (the coarse-grid/sequential tail of the resilience
//     chain table) and sheds with 503 + Retry-After only when even the
//     degraded slots are exhausted — no silent drops;
//   - every request runs under a deadline budget that propagates into the
//     library's per-stage watchdogs, with jittered-backoff retries for
//     recoverable ClipErrors;
//   - guard fault sites (serve.enqueue / serve.flush / serve.encode) let
//     the chaos harness drive panics, hangs and corruption through the
//     server itself, which must answer every request and never crash;
//   - a flat per-request metrics record (enqueue/flush/arrange/sweep/stitch
//     timestamps plus the Stats.Resilience counters) is retained in a ring
//     and exported as CSV, with /healthz and /statz for probes.
package serve

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"polyclip"
	"polyclip/internal/acache"
	"polyclip/internal/guard"
)

func numCPU() int { return runtime.GOMAXPROCS(0) }

// Config parameterizes one Server. The zero value is usable: every knob
// has a production-shaped default.
type Config struct {
	// BatchSize is the max requests coalesced into one flush (default 16).
	BatchSize int
	// MaxWait bounds how long an admitted request waits for its batch to
	// fill before a partial flush (default 2ms).
	MaxWait time.Duration
	// QueueDepth bounds the admission queue; a full queue switches traffic
	// to the degraded path (default 256).
	QueueDepth int
	// MaxConcurrent bounds clips in flight at once across all batches
	// (default 2*GOMAXPROCS, min 4). Backpressure propagates: when every
	// slot is busy the flush loop blocks, the queue fills, and admission
	// control starts degrading/shedding.
	MaxConcurrent int
	// DegradedConcurrency is the number of inline slots serving overflow
	// traffic through the degraded chain (default 2).
	DegradedConcurrency int
	// DegradedHold is how long degraded mode stays engaged after the last
	// overflow (default 1s) — the hysteresis that makes /statz mode
	// reporting stable.
	DegradedHold time.Duration
	// RequestTimeout is the per-request deadline budget, propagated into
	// the engine's per-stage watchdogs (default 5s; <0 disables).
	RequestTimeout time.Duration
	// MaxRetries is the number of jittered-backoff retries for recoverable
	// ClipErrors (default 2).
	MaxRetries int
	// RetryBase is the backoff base; attempt n sleeps in
	// [RetryBase<<n/2, RetryBase<<n) (default 2ms).
	RetryBase time.Duration
	// RetryAfter is the advertised Retry-After on shed responses
	// (default 1s, rounded up to whole seconds).
	RetryAfter time.Duration
	// Threads bounds per-clip parallelism in the normal path; degraded
	// clips are always single-threaded (default: library default).
	Threads int
	// Seed makes the retry jitter reproducible; 0 seeds from the clock.
	Seed int64
	// MaxBodyBytes caps request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MetricsWindow is the retained per-request record count (default 4096).
	MetricsWindow int
}

func (c Config) withDefaults() Config {
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
		if n := 2 * numCPU(); n > c.MaxConcurrent {
			c.MaxConcurrent = n
		}
	}
	if c.DegradedConcurrency <= 0 {
		c.DegradedConcurrency = 2
	}
	if c.DegradedHold <= 0 {
		c.DegradedHold = time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 2 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MetricsWindow <= 0 {
		c.MetricsWindow = 4096
	}
	return c
}

// Server is the serving engine. Create with NewServer, expose via
// Handler, stop with Close.
type Server struct {
	cfg Config

	queue       chan *job
	workSem     chan struct{} // bounds clips in flight (normal path)
	degradedSem chan struct{} // bounds inline degraded clips (overflow path)
	done        chan struct{}
	wg          sync.WaitGroup
	closed      atomic.Bool

	degradedUntil atomic.Int64 // unix nanos; mode is degraded until then

	rngMu sync.Mutex
	rng   *rand.Rand

	metrics *metricsRing
	start   time.Time

	nextID   atomic.Int64
	served   atomic.Int64
	ok       atomic.Int64
	cliErr   atomic.Int64
	srvErr   atomic.Int64
	shed     atomic.Int64
	degraded atomic.Int64
	inflight atomic.Int64
	flushes  atomic.Int64
	batched  atomic.Int64

	retries       atomic.Int64
	recovered     atomic.Int64
	stageTimeouts atomic.Int64
	auditFailures atomic.Int64
	fallbackSteps atomic.Int64
}

// NewServer builds a Server and starts its flush loop.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	s := &Server{
		cfg:         cfg,
		queue:       make(chan *job, cfg.QueueDepth),
		workSem:     make(chan struct{}, cfg.MaxConcurrent),
		degradedSem: make(chan struct{}, cfg.DegradedConcurrency),
		done:        make(chan struct{}),
		rng:         rand.New(rand.NewSource(seed)),
		metrics:     newMetricsRing(cfg.MetricsWindow),
		start:       time.Now(),
	}
	s.wg.Add(1)
	go s.flushLoop()
	return s
}

// Handler returns the HTTP surface: POST /clip, POST /tile, GET /healthz,
// GET /statz, GET /metrics.csv.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/clip", s.handleClip)
	mux.HandleFunc("/tile", s.handleTile)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/statz", s.handleStatz)
	mux.HandleFunc("/metrics.csv", s.handleMetricsCSV)
	return mux
}

// Close stops the flush loop and marks the server draining: new requests
// are answered 503. In-flight clips finish on their own goroutines.
func (s *Server) Close() {
	if s.closed.CompareAndSwap(false, true) {
		close(s.done)
		s.wg.Wait()
	}
}

// Mode reports the admission mode: "degraded" while overflow traffic is
// being served through the degraded chain (with DegradedHold hysteresis),
// "normal" otherwise.
func (s *Server) Mode() string {
	if time.Now().UnixNano() < s.degradedUntil.Load() {
		return "degraded"
	}
	return "normal"
}

// markDegraded engages (or extends) degraded mode.
func (s *Server) markDegraded() {
	until := time.Now().Add(s.cfg.DegradedHold).UnixNano()
	for {
		cur := s.degradedUntil.Load()
		if cur >= until || s.degradedUntil.CompareAndSwap(cur, until) {
			return
		}
	}
}

// Statz assembles the aggregate snapshot.
func (s *Server) Statz() Statz {
	p50, p99 := s.metrics.Percentiles()
	st := Statz{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Mode:            s.Mode(),
		Served:          s.served.Load(),
		OK:              s.ok.Load(),
		ClientErrors:    s.cliErr.Load(),
		ServerErrors:    s.srvErr.Load(),
		Shed:            s.shed.Load(),
		DegradedServed:  s.degraded.Load(),
		QueueLen:        len(s.queue),
		QueueCap:        cap(s.queue),
		Inflight:        s.inflight.Load(),
		BatchFlushes:    s.flushes.Load(),
		BatchedRequests: s.batched.Load(),
		P50Ms:           float64(p50) / float64(time.Millisecond),
		P99Ms:           float64(p99) / float64(time.Millisecond),
		ServeRetries:    s.retries.Load(),
		Recovered:       s.recovered.Load(),
		StageTimeouts:   s.stageTimeouts.Load(),
		AuditFailures:   s.auditFailures.Load(),
		FallbackSteps:   s.fallbackSteps.Load(),
	}
	if st.BatchFlushes > 0 {
		st.MeanBatchSize = float64(st.BatchedRequests) / float64(st.BatchFlushes)
	}
	cs := acache.Shared().Stats()
	st.CacheHits = cs.Hits
	st.CacheMisses = cs.Misses
	st.CacheBytes = cs.Bytes
	st.CacheEntries = cs.Entries
	st.CacheHitRate = cs.HitRate()
	return st
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"mode":          s.Mode(),
		"uptimeSeconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Statz())
}

func (s *Server) handleMetricsCSV(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	_ = s.metrics.WriteCSV(w)
}

// handleClip is the clip request path: decode → admit (enqueue, degrade, or
// shed) → await the response channel → encode. A panic anywhere in the
// handler — including the serve.enqueue / serve.encode fault sites — is
// answered as a structured 500, never a crash.
func (s *Server) handleClip(w http.ResponseWriter, r *http.Request) {
	s.handleJob(w, r, decodeRequest)
}

// handleTile is the tile-cutting path: same admission, batching, degraded
// and shed machinery as /clip, with a tile decoder in front and the tile
// encoder behind.
func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	s.handleJob(w, r, decodeTileRequest)
}

// handleJob runs one request of either kind through the shared pipeline.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request,
	decode func(http.ResponseWriter, *http.Request, int64) (*parsedRequest, *httpError)) {
	m := &RequestMetrics{ID: s.nextID.Add(1), RecvNs: time.Now().UnixNano()}
	answered := false
	finish := func(status int) {
		answered = true
		m.Status = status
		m.DoneNs = time.Now().UnixNano()
		s.metrics.Add(*m)
		s.served.Add(1)
		switch {
		case status < 400:
			s.ok.Add(1)
		case status < 500:
			s.cliErr.Add(1)
		default:
			s.srvErr.Add(1)
		}
	}
	defer func() {
		if rec := recover(); rec != nil {
			err := guard.FromPanic("serve.handler", -1, guard.NoPair, rec)
			he := httpErrorf(http.StatusInternalServerError, "panic", "%v", err)
			s.writeError(w, he)
			if !answered {
				finish(he.status)
			}
		}
	}()

	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		he := httpErrorf(http.StatusMethodNotAllowed, "method-not-allowed", "use POST")
		s.writeError(w, he)
		finish(he.status)
		return
	}
	if s.closed.Load() {
		he := s.shedError("server is draining")
		s.writeShed(w, he)
		m.Shed = true
		finish(he.status)
		return
	}

	preq, he := decode(w, r, s.cfg.MaxBodyBytes)
	if he != nil {
		s.writeError(w, he)
		finish(he.status)
		return
	}
	m.Op, m.Algorithm = preq.opName, preq.algoName

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	// The job gets a private copy of the metrics record: the batcher and
	// clip workers stamp timings into it without synchronizing with this
	// handler, which may abandon the job on context expiry and read its own
	// record concurrently. The finished copy rides back on the response
	// channel (a happens-before edge) and is merged below.
	jm := *m
	j := &job{req: preq, ctx: ctx, resp: make(chan jobResult, 1), m: &jm}

	// Admission. The enqueue fault site sits before the queue send so an
	// injected panic exercises the handler's recovery path.
	guard.Hit("serve.enqueue")
	select {
	case s.queue <- j:
		m.EnqueueNs = time.Now().UnixNano()
	default:
		// Queue full: degraded slot, or shed with Retry-After.
		s.markDegraded()
		select {
		case s.degradedSem <- struct{}{}:
			j.degraded = true
			m.Degraded = true
			m.EnqueueNs = time.Now().UnixNano()
			s.degraded.Add(1)
			go func() {
				defer func() { <-s.degradedSem }()
				s.clipOne(j)
			}()
		default:
			m.Shed = true
			he := s.shedError("queue and degraded slots are full")
			s.writeShed(w, he)
			finish(he.status)
			return
		}
	}

	select {
	case res := <-j.resp:
		if res.m != nil {
			// Adopt the job-side timings; enqueue/degraded were stamped on
			// the handler's record after the job copy was taken.
			res.m.EnqueueNs = m.EnqueueNs
			res.m.Degraded = m.Degraded
			*m = *res.m
		}
		if res.err != nil {
			he := clipError(res.err)
			s.writeError(w, he)
			finish(he.status)
			return
		}
		status, err := s.writeResult(w, j, res)
		if err != nil {
			he := clipError(err)
			s.writeError(w, he)
			finish(he.status)
			return
		}
		finish(status)
	case <-ctx.Done():
		he := clipError(ctx.Err())
		s.writeError(w, he)
		finish(he.status)
	}
}

// writeResult encodes the clipped polygon as GeoJSON — or, for a tile job,
// the tile list. The serve.encode fault site sits before marshalling; a
// panic there unwinds into the handler's recovery.
func (s *Server) writeResult(w http.ResponseWriter, j *job, res jobResult) (int, error) {
	guard.Hit("serve.encode")
	if j.req.tileSpec != nil {
		return s.writeTileResult(w, j, res)
	}
	raw, err := polyclip.FormatGeoJSON(res.out)
	if err != nil {
		return 0, err
	}
	resp := ClipResponse{
		Result:   raw,
		Degraded: j.degraded,
		Stats:    res.st,
	}
	if res.st != nil {
		resp.Engine = res.st.Engine
		resp.Attempts = res.st.Resilience.Attempts
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

// writeTileResult encodes one cut pyramid: each non-empty tile as a
// (z, x, y, geometry) record, already in canonical sorted order.
func (s *Server) writeTileResult(w http.ResponseWriter, j *job, res jobResult) (int, error) {
	resp := TileResponse{
		Tiles:    make([]TileFeature, 0, len(res.tiles)),
		Count:    len(res.tiles),
		Stats:    res.tst,
		Degraded: j.degraded,
	}
	for _, t := range res.tiles {
		raw, err := polyclip.FormatGeoJSON(t.Poly)
		if err != nil {
			return 0, err
		}
		resp.Tiles = append(resp.Tiles, TileFeature{Z: t.Z, X: t.X, Y: t.Y, Geometry: raw})
	}
	writeJSON(w, http.StatusOK, resp)
	return http.StatusOK, nil
}

// shedError builds the 503 answer; every shed response advertises
// Retry-After.
func (s *Server) shedError(msg string) *httpError {
	he := httpErrorf(http.StatusServiceUnavailable, "overloaded", "%s", msg)
	he.body.RetryAfterSeconds = int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if he.body.RetryAfterSeconds < 1 {
		he.body.RetryAfterSeconds = 1
	}
	return he
}

func (s *Server) writeShed(w http.ResponseWriter, he *httpError) {
	w.Header().Set("Retry-After", strconv.Itoa(he.body.RetryAfterSeconds))
	s.shed.Add(1)
	writeJSON(w, he.status, he.body)
}

func (s *Server) writeError(w http.ResponseWriter, he *httpError) {
	writeJSON(w, he.status, he.body)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
