package batch

import (
	"context"
	"fmt"
	"testing"

	"polyclip/internal/acache"
	"polyclip/internal/data"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/tile"
)

func tileTestSetup() ([]geom.Polygon, TileOptions) {
	features := []geom.Polygon{
		data.TileLayer(data.TileLayerOptions{Rings: 9, Seed: 3}),
		{geom.Rect(5, 5, 25, 25)},
		data.TileLayer(data.TileLayerOptions{Rings: 9, Seed: 3}), // exact repeat
	}
	var ext geom.BBox
	for _, f := range features {
		ext = ext.Union(f.BBox())
	}
	opt := TileOptions{
		Spec:  tile.Spec{MinZoom: 0, MaxZoom: 3, Extent: tile.SquareExtent(ext)},
		Rule:  engine.EvenOdd,
		Cache: acache.New(16 << 20),
	}
	return features, opt
}

func TestCutTilesOrderAndDeterminism(t *testing.T) {
	features, opt := tileTestSetup()
	var base string
	for _, threads := range []int{1, 2, 8} {
		o := opt
		o.Threads = threads
		o.Cache = acache.New(16 << 20)
		out, st, err := CutTiles(context.Background(), features, o)
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if st.Features != 3 || st.Tiles != int64(len(out)) {
			t.Fatalf("stats mismatch: %+v vs %d tiles", st, len(out))
		}
		for i := 1; i < len(out); i++ {
			a, b := out[i-1], out[i]
			ka := [4]int64{int64(a.Feature), int64(a.Z), int64(a.X), int64(a.Y)}
			kb := [4]int64{int64(b.Feature), int64(b.Z), int64(b.X), int64(b.Y)}
			if !(ka[0] < kb[0] || (ka[0] == kb[0] && (ka[1] < kb[1] || (ka[1] == kb[1] && (ka[2] < kb[2] || (ka[2] == kb[2] && ka[3] < kb[3])))))) {
				t.Fatalf("threads=%d: output not in (feature,z,x,y) order at %d: %v >= %v", threads, i, ka, kb)
			}
		}
		s := fmt.Sprint(out)
		if base == "" {
			base = s
		} else if s != base {
			t.Fatalf("threads=%d: output differs", threads)
		}
	}
}

// TestCutTilesCacheRepeats: the repeated feature canonicalizes once — the
// prepare tier hits on its second appearance.
func TestCutTilesCacheRepeats(t *testing.T) {
	features, opt := tileTestSetup()
	out, st, err := CutTiles(context.Background(), features, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache.Hits == 0 {
		t.Errorf("repeated feature missed the prepare tier: %+v", st.Cache)
	}
	// Features 0 and 2 are identical, so their tile sets must be too.
	var t0, t2 []TileOutput
	for _, o := range out {
		switch o.Feature {
		case 0:
			t0 = append(t0, o)
		case 2:
			t2 = append(t2, o)
		}
	}
	if len(t0) == 0 || len(t0) != len(t2) {
		t.Fatalf("repeat feature tile counts differ: %d vs %d", len(t0), len(t2))
	}
	for i := range t0 {
		if fmt.Sprint(t0[i].Poly) != fmt.Sprint(t2[i].Poly) {
			t.Fatalf("repeat feature tile %d differs", i)
		}
	}
}

// TestCutTilesNaiveAgrees: naive mode emits the same tile keys.
func TestCutTilesNaiveAgrees(t *testing.T) {
	features, opt := tileTestSetup()
	fast, _, err := CutTiles(context.Background(), features, opt)
	if err != nil {
		t.Fatal(err)
	}
	o := opt
	o.Naive = true
	o.NoCache = true
	naive, nst, err := CutTiles(context.Background(), features, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fast) != len(naive) {
		t.Fatalf("%d prepared tiles vs %d naive", len(fast), len(naive))
	}
	for i := range fast {
		if fast[i].Feature != naive[i].Feature || fast[i].Z != naive[i].Z ||
			fast[i].X != naive[i].X || fast[i].Y != naive[i].Y {
			t.Fatalf("tile key %d differs: %+v vs %+v", i, fast[i], naive[i])
		}
	}
	if nst.Cache.Hits+nst.Cache.Misses != 0 {
		t.Errorf("NoCache run touched the cache: %+v", nst.Cache)
	}
}

func TestCutTilesBadSpec(t *testing.T) {
	if _, _, err := CutTiles(context.Background(), nil, TileOptions{}); err == nil {
		t.Error("CutTiles accepted a zero spec")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	features, opt := tileTestSetup()
	if _, _, err := CutTiles(ctx, features, opt); err == nil {
		t.Error("CutTiles ignored a canceled context")
	}
}
