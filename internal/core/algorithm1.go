package core

import (
	"context"

	"polyclip/internal/arrange"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/isect"
	"polyclip/internal/par"
	"polyclip/internal/scanbeam"
	"polyclip/internal/segtree"
	"polyclip/internal/vatti"
)

// Alg1Report carries the size quantities of the paper's output-sensitive
// analysis: n input vertices, m scanbeams, k edge intersections and k'
// virtual vertices (the total scanbeam population, i.e. the per-beam edge
// slots allocated by the segment tree).
type Alg1Report struct {
	N      int   // input vertices
	M      int   // scanbeams
	K      int   // intersection pairs (the paper's k)
	KPrime int   // scanbeam population (the paper's k')
	Output int   // output vertices
	Procs  int   // n + k + k': the paper's processor bound
	Trapez int   // trapezoids emitted in Step 3
	Work   int64 // total comparisons modelled (for the PRAM cost accounting)
}

// AlgorithmOne clips two polygons with the multicore realization of the
// paper's Algorithm 1: the whole pipeline runs in parallel over scanbeams
// with parallelism p, using the segment tree for Step 2 and the
// scanbeam-inversion finder for Step 3.2. Returns the result and the
// output-sensitivity report.
func AlgorithmOne(a, b geom.Polygon, op Op, p int) (geom.Polygon, Alg1Report) {
	return AlgorithmOneCtx(context.Background(), a, b, op, p)
}

// AlgorithmOneCtx is AlgorithmOne with cooperative cancellation: the
// per-beam classification loop polls ctx and stops early. On a cancelled
// ctx the returned polygon is nil; callers observe the cancellation via
// ctx.Err().
func AlgorithmOneCtx(ctx context.Context, a, b geom.Polygon, op Op, p int) (geom.Polygon, Alg1Report) {
	return AlgorithmOneRuleCtx(ctx, a, b, op, engine.EvenOdd, p)
}

// AlgorithmOneRuleCtx is AlgorithmOneCtx under an explicit fill rule: the
// shared scanbeam walk accumulates signed winding counts, so EvenOdd,
// NonZero, Positive and Negative all run through the same parallel beam
// pipeline.
func AlgorithmOneRuleCtx(ctx context.Context, a, b geom.Polygon, op Op, rule engine.FillRule, p int) (geom.Polygon, Alg1Report) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p <= 0 {
		p = par.DefaultParallelism()
	}
	var rep Alg1Report
	rep.N = a.NumVertices() + b.NumVertices()

	// Step 3.2 (Lemma 4): the paper's k is a property of the raw input, so
	// count the inversion crossings before resolution.
	rawEdges := scanbeam.CollectEdges(a, b)
	if len(rawEdges) == 0 {
		return nil, rep
	}
	rawSegs := make([]geom.Segment, len(rawEdges))
	for i, e := range rawEdges {
		rawSegs[i] = e.Seg
	}
	rep.K = int(isect.CountCrossings(rawSegs, p))
	if canceled(ctx) {
		return nil, rep
	}

	// Pre-resolve the arrangement (see internal/arrange): crossings become
	// shared welded vertices, so the event schedule below needs only the
	// endpoint ys and no two active edges cross strictly inside a beam.
	// EvenOdd additionally rewrites self-intersecting operands as simple
	// even-odd rings; the winding rules keep the split rings directed as
	// given so the signed-count walk sees the original multiplicities.
	if rule == engine.EvenOdd {
		a, b = arrange.ResolvePair(a, b)
	} else {
		a, b = arrange.ResolvePairWinding(a, b)
	}
	edges := scanbeam.CollectEdges(a, b)
	if len(edges) == 0 {
		return nil, rep
	}

	// Step 1: event schedule (endpoint ys of the resolved edges), sorted.
	ys := make([]float64, 0, 2*len(edges))
	for _, e := range edges {
		ys = append(ys, e.Seg.A.Y, e.Seg.B.Y)
	}
	ys = segtree.Dedup(ys)
	if len(ys) < 2 {
		return nil, rep
	}
	rep.M = len(ys) - 1

	// Step 2: populate scanbeams through the parallel segment tree.
	tree := segtree.Build(ys, len(edges), func(i int32) segtree.Interval {
		lo, hi := edges[i].Seg.YSpan()
		return segtree.Interval{Lo: lo, Hi: hi}
	}, p)
	beams, kprime := tree.AllBeams(p)
	rep.KPrime = kprime
	rep.Procs = rep.N + rep.K + rep.KPrime

	// Step 3: per-beam classification and trapezoid emission, in parallel.
	// The ordering buffers come from the shared scanbeam pool: the beam loop
	// runs concurrently, so scratches are pooled rather than shared.
	edgeAt := func(id int32) (geom.Segment, uint8, int8) {
		e := &edges[id]
		return e.Seg, e.Owner, e.Delta
	}
	perBeam := make([][]vatti.Trapezoid, len(beams))
	par.ForEachItem(len(beams), p, func(bi int) {
		if bi&63 == 0 && canceled(ctx) {
			return
		}
		ids := beams[bi]
		if len(ids) < 2 {
			return
		}
		scratch := scanbeam.Get()
		var out []vatti.Trapezoid
		scanbeam.BeamTrapezoids(scratch, ids, ys[bi], ys[bi+1], op, rule, edgeAt, &out)
		scanbeam.Put(scratch)
		perBeam[bi] = out
	})

	var tzs []vatti.Trapezoid
	for _, t := range perBeam {
		tzs = append(tzs, t...)
	}
	rep.Trapez = len(tzs)

	// Step 4: merge the per-beam partial polygons.
	out := vatti.Assemble(tzs)
	for _, r := range out {
		rep.Output += len(r)
	}
	return out, rep
}
