// Package core implements the paper's two parallel clipping algorithms on
// top of the repository's substrates:
//
//   - AlgorithmOne — the multicore realization of the CREW PRAM Algorithm 1
//     (§III): event schedule by parallel sort, scanbeam population through
//     the parallel segment tree (Step 2), per-scanbeam contributing-vertex
//     classification and trapezoid emission in parallel over beams (Step 3,
//     Lemmas 1–3) with intersections from the inversion method (Lemma 4),
//     and a parallel merge of the partial results (Step 4, Fig. 6).
//
//   - ClipPair / ClipLayers — the multi-threaded Algorithm 2 (§IV): the
//     input is partitioned into p horizontal slabs balanced by event count,
//     each slab is clipped independently by a sequential engine after
//     rectangle-clipping both operands to the slab, and the partial outputs
//     are merged by cancelling the seams along slab boundaries.
//
// All entry points report phase timings (partition / clip / merge) and
// per-thread clip times so the paper's Figures 8–12 can be regenerated.
package core

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"polyclip/internal/bandclip"
	"polyclip/internal/geom"
	"polyclip/internal/guard"
	"polyclip/internal/overlay"
	"polyclip/internal/par"
	"polyclip/internal/vatti"
)

// Op re-exports the operation type shared by all engines.
type Op = overlay.Op

// Supported operations.
const (
	Intersection = overlay.Intersection
	Union        = overlay.Union
	Difference   = overlay.Difference
	Xor          = overlay.Xor
)

// Engine selects the sequential clipper run inside each slab.
type Engine uint8

// Available engines.
const (
	// EngineOverlay is the subdivision/classification engine (default).
	EngineOverlay Engine = iota
	// EngineVatti is the scanbeam sweep engine (the GPC stand-in).
	EngineVatti
)

// MergeMode selects how per-slab partial outputs are combined.
type MergeMode uint8

// Merge modes.
const (
	// MergeStitch cancels the horizontal seams along slab boundaries and
	// restitches rings — the paper's Fig. 6 merge, flattened.
	MergeStitch MergeMode = iota
	// MergeConcat concatenates the partial outputs, leaving seam edges in
	// place. The region is identical under the even-odd rule; only the ring
	// structure differs. Fastest; matches the paper's replication variant
	// where "the merging phase is not required".
	MergeConcat
	// MergeUnionTree merges by a reduction tree of pairwise polygon unions,
	// the literal Fig. 6 construction. For the ablation benchmark.
	MergeUnionTree
)

// PartitionMode selects how slab boundaries are chosen.
type PartitionMode uint8

// Partition modes.
const (
	// PartitionEvents balances slabs by event count — the paper's approach
	// ("every thread gets roughly equal number of local event points").
	PartitionEvents PartitionMode = iota
	// PartitionUniform uses equal-height slabs — the uniform grid approach
	// of the paper's [19], kept as the load-balancing ablation baseline.
	PartitionUniform
)

// Options configures a parallel clipping run.
type Options struct {
	// Threads is the number of concurrent workers; <= 0 means GOMAXPROCS.
	Threads int
	// Slabs is the number of horizontal slabs the input is decomposed
	// into; 0 means one per thread. Setting Slabs > Threads measures true
	// per-slab costs with limited concurrency (used by the experiment
	// harness to model scaling beyond the host's core count: per-slab
	// timers are only CPU-attributable when workers do not outnumber
	// cores).
	Slabs int
	// Engine is the per-slab sequential clipper.
	Engine Engine
	// Merge selects the partial-output merge strategy.
	Merge MergeMode
	// Partition selects the slab boundary placement.
	Partition PartitionMode
	// NoFallback disables the per-pair engine rescue in ClipLayersCtx (a
	// pair whose clip panics is normally retried once with the other
	// sequential engine before the error is surfaced).
	NoFallback bool
}

// Stats reports where the time went, for the paper's figures.
type Stats struct {
	Slabs     int             // number of slabs actually used
	Sort      time.Duration   // Step 1–2: event sort
	Partition time.Duration   // Steps 4–5: rectangle clipping into slabs
	Clip      time.Duration   // Step 6: per-slab clipping (wall clock)
	Merge     time.Duration   // Step 8: merging partial outputs
	PerThread []time.Duration // per-slab clip time (Fig. 11 load balance)
	// Resilience records what the hardened clipping path did: input repair,
	// the engine attempts and their outcomes, and recovered worker panics.
	Resilience Resilience
}

// Resilience is the record of the hardened pipeline's interventions for one
// clipping run.
type Resilience struct {
	// Repaired reports that guard.Repair modified an input (duplicate
	// vertices, spikes, or degenerate rings removed).
	Repaired bool
	// Attempts lists every engine attempt as "name:outcome", in order —
	// e.g. ["slabs:panic", "overlay-coarse:audit-fail", "vatti:ok"].
	Attempts []string
	// Recovered counts worker panics that were recovered and rescued by a
	// fallback engine without surfacing an error.
	Recovered int
}

// CriticalPath returns the modelled parallel clip time: the maximum
// per-thread clip time. On hosts with fewer cores than threads the wall
// clock cannot show the paper's scaling; max-over-slabs is the
// machine-independent quantity the speedup figures are shaped by.
func (s *Stats) CriticalPath() time.Duration {
	var m time.Duration
	for _, d := range s.PerThread {
		if d > m {
			m = d
		}
	}
	return m
}

// TotalWork returns the summed per-thread clip time.
func (s *Stats) TotalWork() time.Duration {
	var t time.Duration
	for _, d := range s.PerThread {
		t += d
	}
	return t
}

// ModelledParallel returns the modelled end-to-end duration with p
// concurrent workers: sort + partition + per-slab work scheduled greedily
// over p workers + merge. This is what Figures 8/10/12 plot when the host
// has fewer physical cores than threads.
func (s *Stats) ModelledParallel(p int) time.Duration {
	if p <= 0 {
		p = 1
	}
	// Greedy longest-processing-time schedule of slab times onto p workers.
	loads := make([]time.Duration, p)
	for _, d := range s.PerThread {
		mi := 0
		for i := 1; i < p; i++ {
			if loads[i] < loads[mi] {
				mi = i
			}
		}
		loads[mi] += d
	}
	var mx time.Duration
	for _, l := range loads {
		if l > mx {
			mx = l
		}
	}
	return s.Sort + s.Partition + mx + s.Merge
}

// engineClip dispatches to the selected sequential engine. snapEps is the
// vertex grid shared by every slab of one run, so that seam geometry
// produced independently by different workers quantizes identically. A
// cancelled ctx makes the overlay engine bail early; the surrounding loops
// detect the cancellation and discard the partial output.
func engineClip(ctx context.Context, e Engine, a, b geom.Polygon, op Op, snapEps float64) geom.Polygon {
	switch e {
	case EngineVatti:
		return vatti.Clip(a, b, op)
	default:
		out, _ := overlay.ClipCtx(ctx, a, b, op, overlay.Options{Parallelism: 1, SnapEps: snapEps})
		return out
	}
}

// canceled is the cheap in-loop cancellation poll.
func canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// snapEpsFor picks the shared vertex grid for one clipping run.
func snapEpsFor(a, b geom.Polygon) float64 {
	box := a.BBox().Union(b.BBox())
	m := box.Width()
	if h := box.Height(); h > m {
		m = h
	}
	// The grid must also respect the absolute coordinate magnitude:
	// float64 cannot address (and int64 cannot index) positions finer than
	// a relative 1e-12 of the largest coordinate.
	for _, v := range [...]float64{box.MinX, box.MaxX, box.MinY, box.MaxY} {
		if a := math.Abs(v); a > m && !math.IsInf(a, 0) {
			m = a
		}
	}
	if m <= 0 {
		m = 1
	}
	// Round the grid up to a power of two so quantizing binary-representable
	// coordinates (integers, halves, ...) is exact and outputs stay clean.
	return math.Pow(2, math.Ceil(math.Log2(m*1e-12)))
}

// ClipPair clips two polygons with the multi-threaded Algorithm 2. A worker
// panic propagates as a panic on the calling goroutine (recoverable); the
// hardened public API uses ClipPairCtx instead, which returns it as an
// error.
func ClipPair(a, b geom.Polygon, op Op, opt Options) (geom.Polygon, *Stats) {
	out, st, err := ClipPairCtx(context.Background(), a, b, op, opt)
	if err != nil {
		panic(err)
	}
	return out, st
}

// ClipPairCtx clips two polygons with the multi-threaded Algorithm 2,
// cooperatively honoring ctx: the slab loop polls cancellation before each
// slab, so after ctx is done no further slab is clipped and ctx.Err() is
// returned. A panic in one slab worker is recovered and returned as a
// *guard.ClipError carrying the offending slab index and the worker stack,
// instead of crashing the process.
func ClipPairCtx(ctx context.Context, a, b geom.Polygon, op Op, opt Options) (geom.Polygon, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p := opt.Threads
	if p <= 0 {
		p = par.DefaultParallelism()
	}
	nslabs := opt.Slabs
	if nslabs <= 0 {
		nslabs = p
	}
	st := &Stats{}
	snapEps := snapEpsFor(a, b)

	// Step 1–2: event schedule.
	t0 := time.Now()
	ys := eventYs(a, b)
	st.Sort = time.Since(t0)
	if len(ys) == 0 {
		out := engineClip(ctx, opt.Engine, a, b, op, snapEps)
		return out, st, ctx.Err()
	}

	bounds := slabBoundaries(ys, nslabs, opt.Partition)
	ns := len(bounds) - 1
	st.Slabs = ns
	if ns <= 1 {
		t1 := time.Now()
		out := engineClip(ctx, opt.Engine, a, b, op, snapEps)
		st.Clip = time.Since(t1)
		st.PerThread = []time.Duration{st.Clip}
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		return out, st, nil
	}

	// Steps 4–5: rectangle-clip both operands into each slab.
	t1 := time.Now()
	subA := make([]geom.Polygon, ns)
	subB := make([]geom.Polygon, ns)
	par.ForEachItem(ns, p, func(i int) {
		if canceled(ctx) {
			return
		}
		subA[i] = bandclip.Clip(a, bounds[i], bounds[i+1])
		subB[i] = bandclip.Clip(b, bounds[i], bounds[i+1])
	})
	st.Partition = time.Since(t1)
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}

	// Step 6: per-slab sequential clipping. Each worker is panic-isolated:
	// the first panic is captured with its slab attribution and surfaced as
	// a structured error after the loop drains.
	t2 := time.Now()
	partial := make([]geom.Polygon, ns)
	st.PerThread = make([]time.Duration, ns)
	var slabErr atomic.Pointer[guard.ClipError]
	par.ForEachItem(ns, p, func(i int) {
		if canceled(ctx) || slabErr.Load() != nil {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				slabErr.CompareAndSwap(nil, guard.FromPanic("slab-clip", i, guard.NoPair, r))
			}
		}()
		guard.Hit("core.slab-clip")
		ts := time.Now()
		partial[i] = engineClip(ctx, opt.Engine, subA[i], subB[i], op, snapEps)
		st.PerThread[i] = time.Since(ts)
	})
	st.Clip = time.Since(t2)
	if ce := slabErr.Load(); ce != nil {
		return nil, st, ce
	}
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}

	// Step 8: merge.
	t3 := time.Now()
	out := mergePartials(partial, bounds, opt.Merge, snapEps, p)
	st.Merge = time.Since(t3)
	return out, st, nil
}

// eventYs returns the sorted distinct vertex y-coordinates of both operands.
func eventYs(a, b geom.Polygon) []float64 {
	var ys []float64
	for _, poly := range []geom.Polygon{a, b} {
		for _, r := range poly {
			for _, pt := range r {
				ys = append(ys, pt.Y)
			}
		}
	}
	if len(ys) == 0 {
		return nil
	}
	par.Sort(ys, func(x, y float64) bool { return x < y }, 0)
	out := ys[:0]
	for i, v := range ys {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// slabBoundaries picks ns+1 boundaries over the sorted event ys.
func slabBoundaries(ys []float64, p int, mode PartitionMode) []float64 {
	lo, hi := ys[0], ys[len(ys)-1]
	if lo == hi || p < 1 {
		return []float64{lo, hi}
	}
	bounds := make([]float64, 0, p+1)
	bounds = append(bounds, lo)
	for i := 1; i < p; i++ {
		var v float64
		if mode == PartitionUniform {
			v = lo + (hi-lo)*float64(i)/float64(p)
		} else {
			v = ys[len(ys)*i/p]
		}
		if v > bounds[len(bounds)-1] && v < hi {
			bounds = append(bounds, v)
		}
	}
	bounds = append(bounds, hi)
	return bounds
}
