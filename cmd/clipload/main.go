// Command clipload is a seedable open-loop load generator for clipd. It
// fires clip requests at fixed arrival rates (open loop: arrivals are not
// gated on completions, so queueing at the server is real queueing), with a
// configurable fraction of misbehaving clients — slow request bodies, junk
// geometry, and mid-flight cancels — and reports throughput and latency
// percentiles per phase as JSON. BENCH_clipd.json is assembled from its
// output (see scripts/bench_clipd.sh and EXPERIMENTS.md).
//
// Usage:
//
//	clipload -url http://localhost:8080 -rates 100,400 -duration 5s
//	clipload -url http://localhost:8080 -rates 400 -misbehave 0.2 -seed 7
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// misbehaviour kinds, cycled by misbehaving requests.
const (
	mbSlowBody = iota // body dribbled byte-chunks with delays
	mbJunk            // junk geometry / malformed payload
	mbCancel          // context canceled mid-flight
	mbKinds
)

// slowReader dribbles its payload in small chunks with a delay between
// them — the classic slowloris-shaped client.
type slowReader struct {
	data  []byte
	chunk int
	delay time.Duration
}

func (r *slowReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	time.Sleep(r.delay)
	n := r.chunk
	if n > len(r.data) || n > len(p) {
		n = min(len(r.data), len(p))
	}
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ringWKT renders an n-vertex circle as a WKT polygon.
func ringWKT(cx, cy, r float64, n int) string {
	var b strings.Builder
	b.WriteString("POLYGON ((")
	for i := 0; i <= n; i++ {
		a := 2 * math.Pi * float64(i%n) / float64(n)
		fmt.Fprintf(&b, "%.6f %.6f", cx+r*math.Cos(a), cy+r*math.Sin(a))
		if i < n {
			b.WriteString(", ")
		}
	}
	b.WriteString("))")
	return b.String()
}

var ops = []string{"intersection", "union", "difference", "xor"}
var algos = []string{"", "overlay", "slabs", "scanbeam", "sequential"}

// genBody builds one well-formed request body from the seeded rng.
func genBody(rng *rand.Rand, verts int) []byte {
	cx, cy := rng.Float64()*4-2, rng.Float64()*4-2
	n := 8 + rng.Intn(verts)
	m := map[string]any{
		"subject": ringWKT(0, 0, 10, n),
		"clip":    ringWKT(cx, cy, 10, n),
		"op":      ops[rng.Intn(len(ops))],
	}
	if a := algos[rng.Intn(len(algos))]; a != "" {
		m["algorithm"] = a
	}
	b, _ := json.Marshal(m)
	return b
}

var junkBodies = [][]byte{
	[]byte(`{"subject":"POLYGON ((0 0, 1 1","clip":"POLYGON EMPTY","op":"union"}`),
	[]byte(`{"subject":"POLYGON ((0 0, 1e999 0, 1 1, 0 0))","clip":"POLYGON EMPTY","op":"union"}`),
	[]byte(`total junk, not even json`),
	[]byte(`{"subject":{"type":"LineString","coordinates":[[0,0],[1,1]]},"clip":"POLYGON EMPTY","op":"xor"}`),
	[]byte(`{"op":"smoosh"}`),
}

// phaseResult is the per-phase JSON record.
type phaseResult struct {
	RateRPS     int     `json:"rateRps"`
	DurationSec float64 `json:"durationSec"`
	Misbehave   float64 `json:"misbehave"`

	Sent            int64 `json:"sent"`
	Answered        int64 `json:"answered"`
	OK              int64 `json:"ok"`
	ClientErrors    int64 `json:"clientErrors"`
	Shed            int64 `json:"shed"`
	ShedNoRA        int64 `json:"shedMissingRetryAfter"` // contract violation if > 0
	ServerErrors    int64 `json:"serverErrors"`
	Canceled        int64 `json:"canceled"`        // deliberate mid-flight cancels
	TransportErrors int64 `json:"transportErrors"` // non-deliberate transport failures

	ThroughputRPS float64 `json:"throughputRps"` // OK answers per second
	P50Ms         float64 `json:"p50Ms"`
	P90Ms         float64 `json:"p90Ms"`
	P99Ms         float64 `json:"p99Ms"`
	MaxMs         float64 `json:"maxMs"`
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// runPhase drives one open-loop phase at the given arrival rate.
func runPhase(base string, rate int, dur time.Duration, misbehave float64, seed int64, verts int) phaseResult {
	res := phaseResult{RateRPS: rate, DurationSec: dur.Seconds(), Misbehave: misbehave}
	interval := time.Second / time.Duration(rate)
	rng := rand.New(rand.NewSource(seed))

	var (
		mu   sync.Mutex
		lats []float64
		wg   sync.WaitGroup
		mbN  atomic.Int64
	)
	client := &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(dur)
	tick := time.NewTicker(interval)
	defer tick.Stop()

	for now := range tick.C {
		if now.After(deadline) {
			break
		}
		// All randomness is drawn on the arrival goroutine, in arrival
		// order, so a seed fully determines the request sequence.
		kind := -1
		if misbehave > 0 && rng.Float64() < misbehave {
			kind = int(mbN.Add(1)) % mbKinds
		}
		body := genBody(rng, verts)
		if kind == mbJunk {
			body = junkBodies[rng.Intn(len(junkBodies))]
		}
		cancelAfter := time.Duration(0)
		if kind == mbCancel {
			cancelAfter = time.Duration(1+rng.Intn(20)) * time.Millisecond
		}
		res.Sent++
		wg.Add(1)
		go func(body []byte, kind int, cancelAfter time.Duration) {
			defer wg.Done()
			ctx := context.Background()
			var cancel context.CancelFunc
			if cancelAfter > 0 {
				ctx, cancel = context.WithTimeout(ctx, cancelAfter)
				defer cancel()
			}
			var rd io.Reader = bytes.NewReader(body)
			if kind == mbSlowBody {
				rd = &slowReader{data: body, chunk: 64, delay: 2 * time.Millisecond}
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/clip", rd)
			if err != nil {
				atomic.AddInt64(&res.TransportErrors, 1)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			start := time.Now()
			resp, err := client.Do(req)
			if err != nil {
				if cancelAfter > 0 {
					atomic.AddInt64(&res.Canceled, 1)
				} else {
					atomic.AddInt64(&res.TransportErrors, 1)
				}
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lat := time.Since(start)
			atomic.AddInt64(&res.Answered, 1)
			switch {
			case resp.StatusCode < 300:
				atomic.AddInt64(&res.OK, 1)
				mu.Lock()
				lats = append(lats, float64(lat)/float64(time.Millisecond))
				mu.Unlock()
			case resp.StatusCode == http.StatusServiceUnavailable:
				atomic.AddInt64(&res.Shed, 1)
				if resp.Header.Get("Retry-After") == "" {
					atomic.AddInt64(&res.ShedNoRA, 1)
				}
			case resp.StatusCode < 500:
				atomic.AddInt64(&res.ClientErrors, 1)
			default:
				atomic.AddInt64(&res.ServerErrors, 1)
			}
		}(body, kind, cancelAfter)
	}
	wg.Wait()

	sort.Float64s(lats)
	res.ThroughputRPS = float64(res.OK) / dur.Seconds()
	res.P50Ms = percentile(lats, 0.50)
	res.P90Ms = percentile(lats, 0.90)
	res.P99Ms = percentile(lats, 0.99)
	if n := len(lats); n > 0 {
		res.MaxMs = lats[n-1]
	}
	return res
}

func main() {
	base := flag.String("url", "http://localhost:8080", "clipd base URL")
	rates := flag.String("rates", "100,400", "comma-separated open-loop arrival rates (req/s), one phase each")
	dur := flag.Duration("duration", 5*time.Second, "duration of each phase")
	misbehave := flag.Float64("misbehave", 0, "fraction of requests from misbehaving clients (slow body / junk geometry / mid-flight cancel)")
	seed := flag.Int64("seed", 42, "random seed (same seed, same request sequence)")
	verts := flag.Int("verts", 64, "max extra vertices per generated ring")
	label := flag.String("label", "", "label attached to the output object")
	flag.Parse()

	var phases []phaseResult
	for _, f := range strings.Split(*rates, ",") {
		rate, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || rate <= 0 {
			fmt.Fprintf(os.Stderr, "clipload: bad rate %q\n", f)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "clipload: phase rate=%d req/s for %v (misbehave=%.2f)\n", rate, *dur, *misbehave)
		phases = append(phases, runPhase(*base, rate, *dur, *misbehave, *seed, *verts))
	}
	out := map[string]any{"phases": phases, "seed": *seed}
	if *label != "" {
		out["label"] = *label
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "clipload: %v\n", err)
		os.Exit(1)
	}
}
