// Command polyclip clips two WKT polygon files.
//
// Usage:
//
//	polyclip -op intersection -alg slabs -threads 8 subject.wkt clip.wkt
//
// Each input file holds one POLYGON or MULTIPOLYGON. The result is written
// to stdout as WKT; -stats prints phase timings to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"polyclip"
)

func main() {
	opName := flag.String("op", "intersection", "operation: intersection|union|difference|xor")
	alg := flag.String("alg", "overlay", "algorithm: overlay|slabs|scanbeam|sequential")
	threads := flag.Int("threads", 0, "parallelism (0 = all CPUs)")
	stats := flag.Bool("stats", false, "print phase timings to stderr")
	layers := flag.Bool("layers", false, "treat each input line as one feature and overlay the two layers pairwise")
	flag.Parse()

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: polyclip [flags] subject.wkt clip.wkt")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var op polyclip.Op
	switch *opName {
	case "intersection":
		op = polyclip.Intersection
	case "union":
		op = polyclip.Union
	case "difference":
		op = polyclip.Difference
	case "xor":
		op = polyclip.Xor
	default:
		fatalf("unknown operation %q", *opName)
	}

	var algorithm polyclip.Algorithm
	switch *alg {
	case "overlay":
		algorithm = polyclip.AlgoOverlay
	case "slabs":
		algorithm = polyclip.AlgoSlabs
	case "scanbeam":
		algorithm = polyclip.AlgoScanbeam
	case "sequential":
		algorithm = polyclip.AlgoSequential
	default:
		fatalf("unknown algorithm %q", *alg)
	}

	if *layers {
		la := loadLayer(flag.Arg(0))
		lb := loadLayer(flag.Arg(1))
		results, st := polyclip.OverlayLayers(la, lb, op, polyclip.Options{Threads: *threads})
		var area float64
		for _, r := range results {
			fmt.Println(polyclip.FormatWKT(r))
			area += polyclip.Area(r)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "features: %d x %d -> %d results, total area %g\n",
				len(la), len(lb), len(results), area)
			fmt.Fprintf(os.Stderr, "slabs=%d sort=%v partition=%v clip=%v\n",
				st.Slabs, st.Sort, st.Partition, st.Clip)
		}
		return
	}

	subject := loadWKT(flag.Arg(0))
	clip := loadWKT(flag.Arg(1))

	out, st := polyclip.ClipWith(subject, clip, op, polyclip.Options{
		Algorithm: algorithm,
		Threads:   *threads,
	})
	fmt.Println(polyclip.FormatWKT(out))
	if *stats {
		fmt.Fprintf(os.Stderr, "rings=%d area=%g\n", len(out), polyclip.Area(out))
		if st != nil {
			fmt.Fprintf(os.Stderr, "slabs=%d sort=%v partition=%v clip=%v merge=%v\n",
				st.Slabs, st.Sort, st.Partition, st.Clip, st.Merge)
		}
	}
}

// loadLayer reads one feature per non-empty line.
func loadLayer(path string) polyclip.Layer {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	var layer polyclip.Layer
	for ln, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		p, err := polyclip.ParseWKT(line)
		if err != nil {
			fatalf("%s:%d: %v", path, ln+1, err)
		}
		layer = append(layer, p)
	}
	return layer
}

func loadWKT(path string) polyclip.Polygon {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatalf("%v", err)
	}
	p, err := polyclip.ParseWKT(string(raw))
	if err != nil {
		fatalf("%s: %v", path, err)
	}
	return p
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
