// GIS overlay: synthesize two feature layers shaped like the paper's
// Table III datasets (urban areas vs administrative boundaries), overlay
// them in parallel with the multi-threaded slab algorithm, and report the
// result statistics and where the time went — the paper's §V-B workload in
// miniature.
package main

import (
	"fmt"
	"time"

	"polyclip"
	"polyclip/internal/data"
)

func main() {
	const scale = 0.01 // 1% of the paper's dataset sizes
	urban := polyclip.Layer(data.Layer(data.TableIII[0], scale, 1))
	states := polyclip.Layer(data.Layer(data.TableIII[1], scale, 2))

	fmt.Printf("layer A: %d features, %d edges\n", len(urban), polyclip.Layer(urban).NumVertices())
	fmt.Printf("layer B: %d features, %d edges\n", len(states), polyclip.Layer(states).NumVertices())

	t0 := time.Now()
	results, st := polyclip.OverlayLayers(urban, states, polyclip.Intersection, polyclip.Options{Threads: 8})
	wall := time.Since(t0)

	var area float64
	for _, r := range results {
		area += polyclip.Area(r)
	}
	fmt.Printf("\nintersect(A,B): %d result polygons, total area %.4f\n", len(results), area)
	fmt.Printf("wall %v | slabs=%d sort=%v partition=%v clip=%v\n",
		wall, st.Slabs, st.Sort, st.Partition, st.Clip)
	fmt.Printf("per-thread clip times (load balance, cf. paper Fig. 11):\n")
	for i, d := range st.PerThread {
		fmt.Printf("  thread %2d: %v\n", i, d)
	}
	fmt.Printf("modelled parallel time on 8 workers: %v (total work %v)\n",
		st.ModelledParallel(8), st.TotalWork())

	// Whole-layer union through the splitting variant.
	merged, _ := polyclip.OverlayLayersMerged(urban, states, polyclip.Union, polyclip.Options{Threads: 8})
	fmt.Printf("\nunion(A,B): %d rings, area %.4f\n", len(merged), polyclip.Area(merged))
}
