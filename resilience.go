package polyclip

import (
	"context"
	"errors"
	"fmt"

	"polyclip/internal/core"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/guard"
	"polyclip/internal/par"
)

// ClipError is the structured error surfaced when a clipping worker panics:
// it carries the pipeline stage, the offending slab index or feature pair
// when attributable, the recovered panic value and the worker's stack.
// Retrieve it with errors.As.
type ClipError = guard.ClipError

// ErrInvalidInput tags input-validation failures (non-finite or overflowing
// coordinates). Test with errors.Is.
var ErrInvalidInput = guard.ErrInvalidInput

// coarseFactor scales the snap grid for the retry attempt of the
// differential-fallback chain: a 1024x coarser grid collapses the
// near-degenerate incidences that defeat the default grid.
const coarseFactor = 1024

// attempt is one engine try of the differential-fallback chain, resolved
// from a chainStep against the engine registry.
type attempt struct {
	name   string // attempt label recorded in Stats.Resilience.Attempts
	engine string // registry name of the engine behind the attempt
	run    func(ctx context.Context) (Polygon, *Stats, error)
}

// chainStep is one declarative entry of the differential-fallback chain: a
// registry engine name plus the flags that shape its run.
type chainStep struct {
	name    string // attempt label
	engine  string // registry engine name
	coarse  bool   // run on the coarseFactor-coarser snap grid
	seq     bool   // force single-threaded execution
	altOnly bool   // include only when capability filtering dropped a step
}

// chains maps each Algorithm to its fallback chain: the requested engine
// first, then the same arrangement on a coarser snap grid, then a
// structurally different engine. Steps whose engine does not implement the
// requested fill rule are dropped — except the primary step, whose
// unsupported rule is a typed error (ErrUnsupported) rather than a silent
// strategy swap — and altOnly steps fill back in when filtering dropped a
// later step, keeping the chain three attempts deep.
var chains = map[Algorithm][]chainStep{
	AlgoOverlay: {
		{name: "overlay", engine: "overlay"},
		{name: "overlay-coarse", engine: "overlay", coarse: true},
		{name: "vatti", engine: "vatti"},
		{name: "overlay-seq", engine: "overlay", seq: true, altOnly: true},
	},
	AlgoSlabs: {
		{name: "slabs", engine: "slabs"},
		{name: "overlay-coarse", engine: "overlay", coarse: true},
		{name: "vatti", engine: "vatti"},
		{name: "overlay-seq", engine: "overlay", seq: true, altOnly: true},
	},
	AlgoScanbeam: {
		{name: "scanbeam", engine: "scanbeam"},
		{name: "overlay-coarse", engine: "overlay", coarse: true},
		{name: "vatti", engine: "vatti"},
		{name: "overlay-seq", engine: "overlay", seq: true, altOnly: true},
	},
	AlgoSequential: {
		{name: "vatti", engine: "vatti"},
		{name: "overlay", engine: "overlay"},
		{name: "overlay-coarse", engine: "overlay", coarse: true},
	},
}

// ClipCtx computes `subject op clip` through the hardened pipeline:
//
//  1. Both inputs are validated (non-finite or overflowing coordinates are
//     rejected with an error wrapping ErrInvalidInput) and repaired
//     (consecutive duplicates, zero-area spikes and sub-3-vertex rings
//     removed; recorded in Stats.Resilience.Repaired).
//  2. The selected engine runs with panic isolation and cooperative
//     cancellation: ctx is polled inside the parallel loops, and a worker
//     panic is captured as a *ClipError instead of crashing the process.
//  3. The result is audited against cheap invariants (well-formed finite
//     rings, op-specific area bound). On a panic or failed audit the clip
//     is retried once on a 1024x coarser snap grid, then handed to a
//     different engine entirely (the sequential Vatti sweep, which serves
//     every fill rule). Every attempt and its outcome is recorded in
//     Stats.Resilience.Attempts.
//
// The returned error is non-nil only when the inputs are invalid, ctx was
// cancelled, or every engine of the chain failed. Stats is always non-nil.
// Setting Options.NoFallback disables step 3's retries, surfacing the first
// failure directly.
func ClipCtx(ctx context.Context, subject, clip Polygon, op Op, opt Options) (Polygon, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var res core.Resilience
	fin := func(st *Stats) *Stats {
		if st == nil {
			st = &Stats{}
		}
		st.Resilience = res
		return st
	}

	if err := guard.Validate(subject); err != nil {
		return nil, fin(nil), fmt.Errorf("subject: %w", err)
	}
	if err := guard.Validate(clip); err != nil {
		return nil, fin(nil), fmt.Errorf("clip: %w", err)
	}
	var repS, repC guard.RepairReport
	subject, repS = guard.Repair(subject)
	clip, repC = guard.Repair(clip)
	res.Repaired = repS.Changed() || repC.Changed()

	// Audit references are sound measure bounds, not shoelace areas: the
	// ring-sum area of a self-intersecting input under-states its even-odd
	// measure (a bowtie sums to ~0), which made the audit reject correct
	// results and drag every such clip through the fallback chain.
	areaS, areaC := guard.MeasureBound(subject), guard.MeasureBound(clip)
	chain, cerr := attemptChain(subject, clip, op, opt)
	if cerr != nil {
		return nil, fin(nil), cerr
	}
	if opt.NoFallback {
		chain = chain[:1]
	}

	var out Polygon
	var st *Stats
	var lastErr error
	for i, at := range chain {
		if err := ctx.Err(); err != nil {
			return nil, fin(st), err
		}
		var err error
		out, st, err = runAttempt(ctx, at)
		if st != nil {
			// Keep the stage-level counters (watchdog timeouts, retries,
			// in-stage recoveries) an attempt accumulated even when the
			// attempt itself failed and the chain moves on.
			res.StageTimeouts += st.Resilience.StageTimeouts
			res.Retries += st.Resilience.Retries
			res.Recovered += st.Resilience.Recovered
		}
		if err != nil {
			if ctx.Err() != nil {
				res.Attempts = append(res.Attempts, at.name+":canceled")
				return nil, fin(st), err
			}
			res.Attempts = append(res.Attempts, at.name+":"+failureKind(err))
			lastErr = err
			continue
		}
		out = guard.HitPoly("polyclip.result", out)
		accept := func(outcome string) (Polygon, *Stats, error) {
			res.Attempts = append(res.Attempts, at.name+":"+outcome)
			sf := fin(st)
			sf.Engine = at.engine
			return out, sf, nil
		}
		if aerr := guard.Audit(out, areaS, areaC, guard.OpKind(op)); aerr != nil {
			res.InvariantFailures++
			// The heuristic bound cannot distinguish a damaged result from a
			// legitimate one on inputs that defeat the area estimate, so
			// consult the differential oracle before discarding the attempt:
			// recompute the measure with a structurally different engine and
			// accept on agreement (cross-engine concordance is the strongest
			// evidence available without a ground truth).
			if !opt.NoFallback {
				if refArea, ok := crossCheckArea(ctx, subject, clip, op, at.engine, opt.Rule); ok &&
					guard.AuditDifferential(out, refArea, areaS+areaC) == nil {
					return accept("differential-ok")
				}
			}
			if i == len(chain)-1 {
				// Every engine agrees (or at least fails the same heuristic
				// bound): the audit is inconclusive, not the result wrong —
				// self-intersecting inputs can defeat the area estimate.
				return accept("audit-inconclusive")
			}
			res.Attempts = append(res.Attempts, at.name+":audit-fail")
			lastErr = aerr
			continue
		}
		return accept("ok")
	}
	return nil, fin(st), lastErr
}

// failureKind labels a failed engine attempt for the Attempts record:
// watchdog-abandoned stages are timeouts, everything else surfaced as a
// recovered panic.
func failureKind(err error) string {
	var stall *par.StallError
	if errors.As(err, &stall) {
		return "timeout"
	}
	var ce *ClipError
	if errors.As(err, &ce) && ce.Timeout {
		return "timeout"
	}
	return "panic"
}

// crossCheckArea computes the measure of `subject op clip` with an engine
// structurally different from the attempt under audit, chosen by the
// registry's Reference selection (the sequential Vatti sweep when eligible,
// otherwise any other slab-hostable engine implementing the rule).
// Panic-isolated; ok is false when no reference engine exists for the rule or
// the reference fails too, leaving the caller to the heuristic verdict.
func crossCheckArea(ctx context.Context, subject, clip Polygon, op Op, attemptEngine string, rule FillRule) (area float64, ok bool) {
	defer func() {
		if recover() != nil {
			area, ok = 0, false
		}
	}()
	ref, found := engine.Reference(attemptEngine, rule)
	if !found {
		return 0, false
	}
	res, err := ref.Clip(ctx, subject, clip, op, engine.Options{Threads: 1, Rule: rule})
	if err != nil {
		return 0, false
	}
	return res.Polygon.Area(), true
}

// runAttempt runs one engine attempt with panic isolation.
func runAttempt(ctx context.Context, at attempt) (out Polygon, st *Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, st = nil, nil
			err = guard.FromPanic("clip", -1, guard.NoPair, r)
		}
	}()
	return at.run(ctx)
}

// attemptChain resolves the Algorithm's declarative chain against the engine
// registry, filtering steps by fill-rule capability. A primary step whose
// engine does not implement the requested rule is a typed *ClipError wrapping
// ErrUnsupported — the registry never silently swaps strategies.
//
// With opt.Degraded the chain is restricted to its cheap tail — steps that
// run on the coarse grid, are pinned sequential, or whose engine is not
// parallel — and every surviving step is forced single-threaded. altOnly
// steps are always candidates in degraded mode (they are exactly the
// sequential backfills). When capability filtering leaves no degraded step,
// the request is typed ErrUnsupported rather than silently served at full
// cost.
func attemptChain(subject, clip Polygon, op Op, opt Options) ([]attempt, error) {
	steps, ok := chains[opt.Algorithm]
	if !ok {
		steps = chains[AlgoOverlay]
	}
	coarse := geom.AutoSnapEps(subject, clip) * coarseFactor
	var out []attempt
	dropped := false
	for i, stp := range steps {
		e := engine.MustGet(stp.engine)
		if opt.Degraded && !(stp.coarse || stp.seq || !e.Capabilities().Parallel) {
			continue
		}
		if !e.Capabilities().Rules.Has(opt.Rule) {
			if i == 0 && !opt.Degraded {
				err := &engine.UnsupportedError{Engine: stp.engine, Rule: opt.Rule}
				return nil, &guard.ClipError{Stage: "select", Slab: -1, Pair: guard.NoPair, Value: err, Err: err}
			}
			dropped = true
			continue
		}
		if stp.altOnly && !dropped && !opt.Degraded {
			continue
		}
		eopt := engine.Options{
			Threads: opt.Threads, Slabs: opt.Slabs,
			Rule: opt.Rule, NoFallback: opt.NoFallback,
		}
		if stp.seq || opt.Degraded {
			eopt.Threads = 1
		}
		if stp.coarse {
			eopt.SnapEps = coarse
		}
		run := func(ctx context.Context) (Polygon, *Stats, error) {
			res, err := e.Clip(ctx, subject, clip, op, eopt)
			return res.Polygon, res.Stats, err
		}
		out = append(out, attempt{name: stp.name, engine: stp.engine, run: run})
	}
	if len(out) == 0 {
		err := &engine.UnsupportedError{Engine: steps[0].engine, Rule: opt.Rule}
		return nil, &guard.ClipError{Stage: "select", Slab: -1, Pair: guard.NoPair, Value: err, Err: err}
	}
	return out, nil
}

// repairLayer validates and repairs every feature of a layer.
func repairLayer(name string, l Layer) (Layer, bool, error) {
	changed := false
	out := make(Layer, len(l))
	for i, f := range l {
		if err := guard.Validate(f); err != nil {
			return nil, false, fmt.Errorf("%s feature %d: %w", name, i, err)
		}
		var rep guard.RepairReport
		out[i], rep = guard.Repair(f)
		changed = changed || rep.Changed()
	}
	return out, changed, nil
}

// OverlayLayersCtx is OverlayLayers through the hardened pipeline: features
// are validated and repaired, the per-pair clip loop honors ctx, and a
// panicking pair is rescued once by the other sequential engine (counted in
// Stats.Resilience.Recovered) before a *ClipError carrying the offending
// pair is surfaced.
func OverlayLayersCtx(ctx context.Context, a, b Layer, op Op, opt Options) ([]Polygon, *Stats, error) {
	a2, chA, err := repairLayer("layer a", a)
	if err != nil {
		return nil, &Stats{}, err
	}
	b2, chB, err := repairLayer("layer b", b)
	if err != nil {
		return nil, &Stats{}, err
	}
	out, st, err := core.ClipLayersCtx(ctx, a2, b2, op, core.Options{
		Threads: opt.Threads, Slabs: opt.Slabs, NoFallback: opt.NoFallback,
	})
	if st == nil {
		st = &Stats{}
	}
	st.Resilience.Repaired = chA || chB
	return out, st, err
}

// OverlayLayersMergedCtx is OverlayLayersMerged through the hardened
// pipeline (see ClipCtx): each layer is fused into one even-odd region and
// the regions are clipped with validation, repair, panic isolation,
// cancellation and the differential-fallback chain.
func OverlayLayersMergedCtx(ctx context.Context, a, b Layer, op Op, opt Options) (Polygon, *Stats, error) {
	opt.Algorithm = AlgoSlabs
	return ClipCtx(ctx, flattenLayer(a), flattenLayer(b), op, opt)
}

func flattenLayer(l Layer) Polygon {
	var out geom.Polygon
	for _, f := range l {
		out = append(out, f...)
	}
	return out
}
