#!/bin/sh
# Full verification sweep: vet, build, tests under the race detector, a
# short native-fuzz smoke on every fuzz target, and fixed-seed chaos runs
# (clean + faulted). Mirrors `make check` for environments without make.
set -eu
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"
CHAOS_SEED="${CHAOS_SEED:-1}"
CHAOS_CASES="${CHAOS_CASES:-100}"

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== coverage floor (vatti, arrange, engine, scanbeam, serve, core, overlay, pool, par, batch, acache >= ${COVER_FLOOR:-80}%)"
COVER_FLOOR="${COVER_FLOOR:-80}"
for pkg in ./internal/vatti/ ./internal/arrange/ ./internal/engine/ ./internal/scanbeam/ ./internal/serve/ ./internal/core/ ./internal/overlay/ ./internal/pool/ ./internal/par/ ./internal/batch/ ./internal/acache/; do
	pct=$(go test -cover "$pkg" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
	if [ -z "$pct" ]; then
		echo "could not parse coverage for $pkg" >&2
		exit 1
	fi
	if ! awk -v p="$pct" -v f="$COVER_FLOOR" 'BEGIN{exit !(p >= f)}'; then
		echo "coverage for $pkg is ${pct}%, below the ${COVER_FLOOR}% floor" >&2
		exit 1
	fi
	echo "$pkg: ${pct}%"
done

echo "== coverage floor (prepared, tile >= ${COVER_FLOOR_TILES:-85}%: a missed fast-path branch is a silently wrong tile)"
COVER_FLOOR_TILES="${COVER_FLOOR_TILES:-85}"
for pkg in ./internal/prepared/ ./internal/tile/; do
	pct=$(go test -cover "$pkg" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')
	if [ -z "$pct" ]; then
		echo "could not parse coverage for $pkg" >&2
		exit 1
	fi
	if ! awk -v p="$pct" -v f="$COVER_FLOOR_TILES" 'BEGIN{exit !(p >= f)}'; then
		echo "coverage for $pkg is ${pct}%, below the ${COVER_FLOOR_TILES}% floor" >&2
		exit 1
	fi
	echo "$pkg: ${pct}%"
done

echo "== go test -race ./internal/pool ./internal/par (scheduler battery + fan-out edges first: fast signal)"
go test -race ./internal/pool/ ./internal/par/

echo "== adversarial predicates vs exact oracle under -race"
go test -race -run 'Adversarial|MatchesOrientOracle' ./internal/geom/

echo "== go test -race"
go test -race ./...

echo "== serve layer under -race (batcher, admission control, fault sites)"
go test -race -count=1 ./internal/serve/

echo "== chaos through the server (5s, fixed seed: 0 crashes, every shed = 503 + Retry-After)"
SERVE_CHAOS_MS=5000 go test -race -count=1 -run TestServeChaosSmoke ./internal/serve/

echo "== differential corpus under -race"
go test -race -run TestDifferentialCorpus .

echo "== engine conformance suite under -race"
go test -race -run TestConformance ./internal/engine/

echo "== bench smoke (one iteration, alloc counters live)"
go test -run='^$' -bench=. -benchtime=1x -benchmem . > /dev/null

for t in FuzzParseWKT FuzzParseGeoJSON FuzzClipRoundTrip FuzzClipAllEngines; do
	echo "== fuzz $t ($FUZZTIME)"
	go test -run='^$' -fuzz="^$t\$" -fuzztime="$FUZZTIME" .
done

echo "== fuzz FuzzServeRequest ($FUZZTIME, whole HTTP serve path)"
go test -run='^$' -fuzz='^FuzzServeRequest$' -fuzztime="$FUZZTIME" ./internal/serve/

echo "== chaos (seed $CHAOS_SEED, $CHAOS_CASES cases, clean)"
go run ./cmd/chaos -seed "$CHAOS_SEED" -cases "$CHAOS_CASES"

echo "== chaos (seed $CHAOS_SEED, $CHAOS_CASES cases, faulted)"
go run ./cmd/chaos -seed "$CHAOS_SEED" -cases "$CHAOS_CASES" -faults

echo "== chaos (seed 7, 320 cases, degenerate taxonomy: exact coincidences, all rules)"
go run ./cmd/chaos -seed 7 -cases 320 -family degenerate

echo "== chaos (seed 5, 120 cases, tiles: pyramid partition invariants, all rules)"
go run ./cmd/chaos -seed 5 -cases 120 -family tiles

echo "== tilecut smoke (datagen layer through the prepared pipeline, WKT out)"
TILE_TMP=$(mktemp -d)
trap 'rm -rf "$TILE_TMP"' EXIT INT TERM
go run ./cmd/datagen -tiles 32 -seed 3 -o "$TILE_TMP/layer.wkt"
go run ./cmd/tilecut -in "$TILE_TMP/layer.wkt" -zooms 0:3 -o "$TILE_TMP/tiles.ndjson" -stats 2> "$TILE_TMP/stats.json"
TILE_COUNT=$(wc -l < "$TILE_TMP/tiles.ndjson")
if [ "$TILE_COUNT" -lt 1 ]; then
	echo "tilecut emitted no tiles" >&2
	exit 1
fi
go run ./cmd/tilecut -in "$TILE_TMP/layer.wkt" -zooms 0:3 -naive -o "$TILE_TMP/naive.ndjson"
NAIVE_COUNT=$(wc -l < "$TILE_TMP/naive.ndjson")
if [ "$TILE_COUNT" != "$NAIVE_COUNT" ]; then
	echo "tilecut prepared ($TILE_COUNT tiles) and naive ($NAIVE_COUNT tiles) disagree" >&2
	exit 1
fi
echo "tilecut: $TILE_COUNT tiles, prepared and naive agree"

echo "all checks passed"
