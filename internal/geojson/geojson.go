// Package geojson reads and writes polygons in GeoJSON (RFC 7946) — the
// other interchange format, besides WKT, that GIS toolchains exchanging
// overlay results expect. Supported geometries: Polygon, MultiPolygon, and
// Feature/FeatureCollection wrappers for whole layers.
package geojson

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"polyclip/internal/geom"
)

// ParseError reports a GeoJSON parse failure with position context: the
// byte offset into the document when the underlying JSON decoder knows it
// (-1 otherwise) and the offending JSON value or field when attributable.
// Callers serving parse errors to clients — the clipd 400 bodies — retrieve
// it with errors.As to echo the position back.
type ParseError struct {
	Offset int64  // byte offset into the document, -1 when unknown
	Token  string // offending JSON value/field, "" when unknown
	Msg    string // what the decoder rejected
}

// Error formats the failure with whatever position context is known.
func (e *ParseError) Error() string {
	s := "geojson: " + e.Msg
	if e.Offset >= 0 {
		s += fmt.Sprintf(" at byte %d", e.Offset)
	}
	if e.Token != "" {
		s += fmt.Sprintf(" near %q", e.Token)
	}
	return s
}

// wrapJSON converts an encoding/json decode error into a *ParseError,
// pulling the byte offset out of the decoder's typed errors.
func wrapJSON(err error) error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		return &ParseError{Offset: syn.Offset, Msg: syn.Error()}
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		tok := typ.Field
		if tok == "" {
			tok = typ.Value
		}
		return &ParseError{Offset: typ.Offset, Token: tok,
			Msg: fmt.Sprintf("cannot decode %s into %s", typ.Value, typ.Type)}
	}
	return &ParseError{Offset: -1, Msg: err.Error()}
}

// geometry is the wire form of a GeoJSON geometry object.
type geometry struct {
	Type        string          `json:"type"`
	Coordinates json.RawMessage `json:"coordinates"`
}

type feature struct {
	Type       string         `json:"type"`
	Geometry   *geometry      `json:"geometry"`
	Properties map[string]any `json:"properties,omitempty"`
}

type featureCollection struct {
	Type     string    `json:"type"`
	Features []feature `json:"features"`
}

// Marshal renders a polygon as a GeoJSON geometry: Polygon when it has one
// ring, MultiPolygon otherwise (each ring as its own polygon — the even-odd
// model does not track hole nesting).
func Marshal(p geom.Polygon) ([]byte, error) {
	if len(p) == 1 {
		return json.Marshal(geometry{
			Type:        "Polygon",
			Coordinates: mustRaw(ringsToCoords(p)),
		})
	}
	multi := make([][][][2]float64, len(p))
	for i, r := range p {
		multi[i] = ringsToCoords(geom.Polygon{r})
	}
	return json.Marshal(geometry{Type: "MultiPolygon", Coordinates: mustRaw(multi)})
}

// MarshalPolygon renders all rings as one GeoJSON Polygon (first ring
// shell, rest holes) for consumers that understand ring nesting.
func MarshalPolygon(p geom.Polygon) ([]byte, error) {
	return json.Marshal(geometry{Type: "Polygon", Coordinates: mustRaw(ringsToCoords(p))})
}

// MarshalLayer renders a feature layer as a FeatureCollection.
func MarshalLayer(layer []geom.Polygon) ([]byte, error) {
	fc := featureCollection{Type: "FeatureCollection"}
	for _, f := range layer {
		raw, err := Marshal(f)
		if err != nil {
			return nil, err
		}
		var g geometry
		if err := json.Unmarshal(raw, &g); err != nil {
			return nil, err
		}
		fc.Features = append(fc.Features, feature{Type: "Feature", Geometry: &g})
	}
	return json.Marshal(fc)
}

// Unmarshal parses a GeoJSON Polygon, MultiPolygon, or Feature wrapping
// one of those.
func Unmarshal(data []byte) (geom.Polygon, error) {
	var probe struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, wrapJSON(err)
	}
	switch probe.Type {
	case "Polygon", "MultiPolygon":
		var g geometry
		if err := json.Unmarshal(data, &g); err != nil {
			return nil, wrapJSON(err)
		}
		return geometryToPolygon(&g)
	case "Feature":
		var f feature
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, wrapJSON(err)
		}
		if f.Geometry == nil {
			return nil, nil
		}
		return geometryToPolygon(f.Geometry)
	default:
		return nil, &ParseError{Offset: -1, Token: probe.Type, Msg: "unsupported type"}
	}
}

// UnmarshalLayer parses a FeatureCollection into a feature layer. It is a
// buffered convenience over the streaming decoder: the features are decoded
// one at a time off data, never materialized as a wire-form slice first.
func UnmarshalLayer(data []byte) ([]geom.Polygon, error) {
	var out []geom.Polygon
	err := decodeFeatures(bytes.NewReader(data), func(p geom.Polygon) error {
		out = append(out, p)
		return nil
	}, true)
	if err != nil {
		return nil, err
	}
	return out, nil
}

func geometryToPolygon(g *geometry) (geom.Polygon, error) {
	switch g.Type {
	case "Polygon":
		var coords [][][2]float64
		if err := json.Unmarshal(g.Coordinates, &coords); err != nil {
			return nil, &ParseError{Offset: -1, Token: "coordinates", Msg: "malformed Polygon coordinates: " + err.Error()}
		}
		out := coordsToRings(coords)
		if err := out.Validate(); err != nil {
			return nil, &ParseError{Offset: -1, Token: "coordinates", Msg: err.Error()}
		}
		return out, nil
	case "MultiPolygon":
		var multi [][][][2]float64
		if err := json.Unmarshal(g.Coordinates, &multi); err != nil {
			return nil, &ParseError{Offset: -1, Token: "coordinates", Msg: "malformed MultiPolygon coordinates: " + err.Error()}
		}
		var out geom.Polygon
		for _, coords := range multi {
			out = append(out, coordsToRings(coords)...)
		}
		if err := out.Validate(); err != nil {
			return nil, &ParseError{Offset: -1, Token: "coordinates", Msg: err.Error()}
		}
		return out, nil
	default:
		return nil, &ParseError{Offset: -1, Token: g.Type, Msg: "unsupported geometry"}
	}
}

// ringsToCoords converts rings to GeoJSON linear rings (closed: first
// position repeated at the end, per RFC 7946).
func ringsToCoords(p geom.Polygon) [][][2]float64 {
	out := make([][][2]float64, len(p))
	for i, r := range p {
		ring := make([][2]float64, 0, len(r)+1)
		for _, pt := range r {
			ring = append(ring, [2]float64{pt.X, pt.Y})
		}
		if len(r) > 0 {
			ring = append(ring, [2]float64{r[0].X, r[0].Y})
		}
		out[i] = ring
	}
	return out
}

// coordsToRings converts GeoJSON linear rings, dropping the closing
// duplicate and degenerate rings.
func coordsToRings(coords [][][2]float64) geom.Polygon {
	var out geom.Polygon
	for _, rc := range coords {
		ring := make(geom.Ring, 0, len(rc))
		for _, c := range rc {
			ring = append(ring, geom.Point{X: c[0], Y: c[1]})
		}
		if len(ring) > 1 && ring[0] == ring[len(ring)-1] {
			ring = ring[:len(ring)-1]
		}
		if len(ring) >= 3 {
			out = append(out, ring)
		}
	}
	return out
}

func mustRaw(v any) json.RawMessage {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(err) // [2]float64 nests cannot fail to marshal
	}
	return raw
}
