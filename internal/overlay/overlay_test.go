package overlay

import (
	"math"
	"math/rand"
	"testing"

	"polyclip/internal/geom"
)

// ring builds a geom.Ring from coordinate pairs.
func ring(pts ...[2]float64) geom.Ring {
	r := make(geom.Ring, len(pts))
	for i, p := range pts {
		r[i] = geom.Point{X: p[0], Y: p[1]}
	}
	return r
}

// checkArea clips and verifies the result area within tolerance.
func checkArea(t *testing.T, name string, subj, clip geom.Polygon, op Op, want float64) geom.Polygon {
	t.Helper()
	got := Clip(subj, clip, op, Options{})
	if a := got.Area(); math.Abs(a-want) > 1e-6*(1+want) {
		t.Errorf("%s: area = %v, want %v (rings=%d)", name, a, want, len(got))
	}
	return got
}

// checkParity Monte-Carlo-validates result against the pointwise boolean
// oracle, skipping samples near any boundary.
func checkParity(t *testing.T, name string, subj, clip, result geom.Polygon, op Op, samples int, seed int64) {
	t.Helper()
	box := subj.BBox().Union(clip.BBox())
	if box.IsEmpty() {
		return
	}
	margin := math.Max(box.Width(), box.Height()) * 0.1
	var allEdges []geom.Segment
	allEdges = append(allEdges, subj.Edges()...)
	allEdges = append(allEdges, clip.Edges()...)
	allEdges = append(allEdges, result.Edges()...)
	minDist := math.Max(box.Width(), box.Height()) * 1e-5

	rng := rand.New(rand.NewSource(seed))
	bad := 0
	tested := 0
	for i := 0; i < samples; i++ {
		pt := geom.Point{
			X: box.MinX - margin + rng.Float64()*(box.Width()+2*margin),
			Y: box.MinY - margin + rng.Float64()*(box.Height()+2*margin),
		}
		tooClose := false
		for _, e := range allEdges {
			if e.DistToPoint(pt) < minDist {
				tooClose = true
				break
			}
		}
		if tooClose {
			continue
		}
		tested++
		want := op.Eval(subj.ContainsPoint(pt), clip.ContainsPoint(pt))
		if got := result.ContainsPoint(pt); got != want {
			bad++
			if bad <= 3 {
				t.Errorf("%s: point %v: result says %v, oracle says %v", name, pt, got, want)
			}
		}
	}
	if bad > 0 {
		t.Errorf("%s: %d/%d mismatched samples", name, bad, tested)
	}
}

func TestRectRectIntersection(t *testing.T) {
	a := geom.RectPolygon(0, 0, 4, 4)
	b := geom.RectPolygon(2, 2, 6, 6)
	got := checkArea(t, "rect∩rect", a, b, Intersection, 4)
	if len(got) != 1 {
		t.Errorf("rings = %d, want 1", len(got))
	}
	checkParity(t, "rect∩rect", a, b, got, Intersection, 2000, 1)
}

func TestRectRectUnion(t *testing.T) {
	a := geom.RectPolygon(0, 0, 4, 4)
	b := geom.RectPolygon(2, 2, 6, 6)
	got := checkArea(t, "rect∪rect", a, b, Union, 16+16-4)
	checkParity(t, "rect∪rect", a, b, got, Union, 2000, 2)
}

func TestRectRectDifference(t *testing.T) {
	a := geom.RectPolygon(0, 0, 4, 4)
	b := geom.RectPolygon(2, 2, 6, 6)
	got := checkArea(t, "rect−rect", a, b, Difference, 12)
	checkParity(t, "rect−rect", a, b, got, Difference, 2000, 3)
}

func TestRectRectXor(t *testing.T) {
	a := geom.RectPolygon(0, 0, 4, 4)
	b := geom.RectPolygon(2, 2, 6, 6)
	got := checkArea(t, "rect⊕rect", a, b, Xor, 24)
	checkParity(t, "rect⊕rect", a, b, got, Xor, 2000, 4)
}

func TestDisjointOperands(t *testing.T) {
	a := geom.RectPolygon(0, 0, 1, 1)
	b := geom.RectPolygon(5, 5, 6, 6)
	if got := Clip(a, b, Intersection, Options{}); got != nil {
		t.Errorf("disjoint ∩ = %v", got)
	}
	checkArea(t, "disjoint ∪", a, b, Union, 2)
	checkArea(t, "disjoint −", a, b, Difference, 1)
	checkArea(t, "disjoint ⊕", a, b, Xor, 2)
}

func TestEmptyOperands(t *testing.T) {
	a := geom.RectPolygon(0, 0, 2, 2)
	if got := Clip(a, nil, Intersection, Options{}); got != nil {
		t.Errorf("a∩∅ = %v", got)
	}
	checkArea(t, "a∪∅", a, nil, Union, 4)
	checkArea(t, "∅∪a", nil, a, Union, 4)
	checkArea(t, "a−∅", a, nil, Difference, 4)
	if got := Clip(nil, a, Intersection, Options{}); got != nil {
		t.Errorf("∅∩a = %v", got)
	}
}

func TestContainedRectHoleViaDifference(t *testing.T) {
	outer := geom.RectPolygon(0, 0, 10, 10)
	inner := geom.RectPolygon(3, 3, 7, 7)
	got := checkArea(t, "outer−inner", outer, inner, Difference, 100-16)
	if len(got) != 2 {
		t.Errorf("rings = %d, want 2 (outer + hole)", len(got))
	}
	// Exactly one CCW outer and one CW hole.
	ccw, cw := 0, 0
	for _, r := range got {
		if r.IsCCW() {
			ccw++
		} else {
			cw++
		}
	}
	if ccw != 1 || cw != 1 {
		t.Errorf("orientations: %d ccw, %d cw", ccw, cw)
	}
	checkParity(t, "outer−inner", outer, inner, got, Difference, 3000, 5)
}

func TestIdenticalPolygons(t *testing.T) {
	a := geom.Polygon{geom.RegularPolygon(geom.Point{X: 0, Y: 0}, 5, 8, 0.2)}
	area := a.Area()
	checkArea(t, "a∩a", a, a.Clone(), Intersection, area)
	checkArea(t, "a∪a", a, a.Clone(), Union, area)
	checkArea(t, "a−a", a, a.Clone(), Difference, 0)
	checkArea(t, "a⊕a", a, a.Clone(), Xor, 0)
}

func TestTriangleSquare(t *testing.T) {
	tri := geom.Polygon{ring([2]float64{0, 0}, [2]float64{8, 0}, [2]float64{4, 8})}
	sq := geom.RectPolygon(2, 2, 6, 6)
	// Intersection area computed analytically: the square clipped by the
	// triangle's two slanted sides. Left side y=2x, right side y=2(8-x).
	// At y∈[2,6]: triangle x-range [y/2, 8-y/2]; square [2,6].
	// width(y) = min(6, 8-y/2) - max(2, y/2):
	//   y∈[2,4]: 6 - 2 = 4
	//   y∈[4,6]: (8-y/2) - (y/2) = 8-y
	// area = ∫2..4 4 dy + ∫4..6 (8-y) dy = 8 + (32-24) - (8-... )
	want := 8.0 + (8*2 - (36.0-16.0)/2) // 8 + (16 - 10) = 14
	got := checkArea(t, "tri∩sq", tri, sq, Intersection, want)
	checkParity(t, "tri∩sq", tri, sq, got, Intersection, 3000, 6)
	u := Clip(tri, sq, Union, Options{})
	wantU := tri.Area() + sq.Area() - want
	if a := u.Area(); math.Abs(a-wantU) > 1e-6 {
		t.Errorf("tri∪sq area = %v, want %v", a, wantU)
	}
}

func TestConcaveSubject(t *testing.T) {
	// U-shaped concave polygon.
	u := geom.Polygon{ring([2]float64{0, 0}, [2]float64{6, 0}, [2]float64{6, 5}, [2]float64{4, 5}, [2]float64{4, 2}, [2]float64{2, 2}, [2]float64{2, 5}, [2]float64{0, 5})}
	r := geom.RectPolygon(1, 1, 5, 4)
	// u∩r: rectangle minus the notch [2,4]x[2,4] portion inside r:
	// r area 12, notch overlap = [2,4]x[2,4] = 4 ... but notch spans y∈[2,5];
	// within r (y≤4): [2,4]x[2,4] area 4. So want 8.
	got := checkArea(t, "u∩r", u, r, Intersection, 8)
	checkParity(t, "u∩r", u, r, got, Intersection, 3000, 7)
	checkParity(t, "u∪r", u, r, Clip(u, r, Union, Options{}), Union, 3000, 8)
	checkParity(t, "u−r", u, r, Clip(u, r, Difference, Options{}), Difference, 3000, 9)
}

func TestBowTieEvenOdd(t *testing.T) {
	// Self-intersecting bow-tie over [0,2]²: even-odd region is two
	// triangles, each of area 1, total 2.
	bt := geom.Polygon{geom.BowTie(0, 0, 2, 2)}
	big := geom.RectPolygon(-1, -1, 3, 3)
	got := checkArea(t, "bowtie∩big", bt, big, Intersection, 2)
	checkParity(t, "bowtie∩big", bt, big, got, Intersection, 3000, 10)
}

func TestPentagramEvenOdd(t *testing.T) {
	star := geom.Polygon{geom.SelfIntersectingStar(geom.Point{X: 0, Y: 0}, 5, 5, 0.3)}
	big := geom.RectPolygon(-6, -6, 6, 6)
	got := Clip(star, big, Intersection, Options{})
	if len(got) == 0 {
		t.Fatal("empty pentagram clip")
	}
	checkParity(t, "pentagram∩big", star, big, got, Intersection, 4000, 11)
	// Even-odd pentagram excludes the central pentagon: 5 point triangles.
	gotU := Clip(star, big, Union, Options{})
	checkParity(t, "pentagram∪big", star, big, gotU, Union, 3000, 12)
}

func TestSelfIntersectionWithOverlap(t *testing.T) {
	// The paper's Fig. 2 scenario: both subject and clip self-intersecting.
	a := geom.Polygon{geom.SelfIntersectingStar(geom.Point{X: 0, Y: 0}, 5, 5, 0.17)}
	b := geom.Polygon{geom.SelfIntersectingStar(geom.Point{X: 1.5, Y: 0.5}, 5, 5, 0.71)}
	for _, op := range []Op{Intersection, Union, Difference, Xor} {
		got := Clip(a, b, op, Options{})
		checkParity(t, "stars "+op.String(), a, b, got, op, 3000, int64(20+op))
	}
}

func TestMultiContourOperands(t *testing.T) {
	a := geom.Polygon{geom.Rect(0, 0, 2, 2), geom.Rect(4, 0, 6, 2)}
	b := geom.Polygon{geom.Rect(1, 1, 5, 3)}
	got := checkArea(t, "multi∩", a, b, Intersection, 1+1)
	checkParity(t, "multi∩", a, b, got, Intersection, 2000, 13)
	gotU := checkArea(t, "multi∪", a, b, Union, 4+4+8-2)
	checkParity(t, "multi∪", a, b, gotU, Union, 2000, 14)
}

func TestSharedEdgeRects(t *testing.T) {
	// Rectangles sharing a full edge: union must fuse, intersection empty.
	a := geom.RectPolygon(0, 0, 2, 2)
	b := geom.RectPolygon(2, 0, 4, 2)
	checkArea(t, "shared-edge ∪", a, b, Union, 8)
	gotI := Clip(a, b, Intersection, Options{})
	if ar := gotI.Area(); ar > 1e-9 {
		t.Errorf("shared-edge ∩ area = %v, want 0", ar)
	}
}

func TestVertexTouchingSquares(t *testing.T) {
	a := geom.RectPolygon(0, 0, 2, 2)
	b := geom.RectPolygon(2, 2, 4, 4)
	checkArea(t, "corner-touch ∪", a, b, Union, 8)
	gotI := Clip(a, b, Intersection, Options{})
	if ar := gotI.Area(); ar > 1e-9 {
		t.Errorf("corner-touch ∩ area = %v", ar)
	}
}

func TestRandomConvexPairsAllOps(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		na := 3 + rng.Intn(10)
		nb := 3 + rng.Intn(10)
		a := geom.Polygon{geom.RegularPolygon(geom.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}, 2+rng.Float64()*3, na, rng.Float64())}
		b := geom.Polygon{geom.RegularPolygon(geom.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}, 2+rng.Float64()*3, nb, rng.Float64())}
		for _, op := range []Op{Intersection, Union, Difference, Xor} {
			got := Clip(a, b, op, Options{})
			checkParity(t, "random "+op.String(), a, b, got, op, 800, int64(trial*7+int(op)))
		}
	}
}

func TestRandomStarsAllOps(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 8; trial++ {
		a := geom.Polygon{geom.Star(geom.Point{X: rng.Float64() * 3, Y: rng.Float64() * 3}, 4, 1.5, 5+rng.Intn(6), rng.Float64())}
		b := geom.Polygon{geom.Star(geom.Point{X: rng.Float64() * 3, Y: rng.Float64() * 3}, 4, 1.5, 5+rng.Intn(6), rng.Float64())}
		for _, op := range []Op{Intersection, Union, Difference, Xor} {
			got := Clip(a, b, op, Options{})
			checkParity(t, "stars "+op.String(), a, b, got, op, 600, int64(trial*13+int(op)))
		}
	}
}

func TestFindersProduceSameResult(t *testing.T) {
	a := geom.Polygon{geom.Star(geom.Point{X: 0, Y: 0}, 5, 2, 9, 0.2)}
	b := geom.Polygon{geom.Star(geom.Point{X: 1, Y: 1}, 5, 2, 7, 0.5)}
	for _, op := range []Op{Intersection, Union, Difference, Xor} {
		grid := Clip(a, b, op, Options{Finder: FinderGrid})
		beam := Clip(a, b, op, Options{Finder: FinderScanbeam})
		sweep := Clip(a, b, op, Options{Finder: FinderSweep})
		if math.Abs(grid.Area()-sweep.Area()) > 1e-9 {
			t.Errorf("%v: sweep=%v grid=%v", op, sweep.Area(), grid.Area())
		}
		brute := Clip(a, b, op, Options{Finder: FinderBrute})
		ag, ab, ar := grid.Area(), beam.Area(), brute.Area()
		if math.Abs(ag-ab) > 1e-9 || math.Abs(ag-ar) > 1e-9 {
			t.Errorf("%v: grid=%v scanbeam=%v brute=%v", op, ag, ab, ar)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	a := geom.Polygon{geom.Star(geom.Point{X: 0, Y: 0}, 10, 4, 40, 0.1)}
	b := geom.Polygon{geom.Star(geom.Point{X: 2, Y: 1}, 10, 4, 35, 0.4)}
	for _, op := range []Op{Intersection, Union, Difference, Xor} {
		seq := Clip(a, b, op, Options{Parallelism: 1})
		par8 := Clip(a, b, op, Options{Parallelism: 8})
		if math.Abs(seq.Area()-par8.Area()) > 1e-9 {
			t.Errorf("%v: seq=%v par=%v", op, seq.Area(), par8.Area())
		}
	}
}

func TestHorizontalEdgesHandled(t *testing.T) {
	// Axis-aligned rectangles have horizontal edges; sanitize perturbs them.
	a := geom.RectPolygon(0, 0, 10, 1)
	b := geom.RectPolygon(5, -1, 6, 2)
	got := Clip(a, b, Intersection, Options{})
	if math.Abs(got.Area()-1) > 1e-4 {
		t.Errorf("area = %v, want 1", got.Area())
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{Intersection: "intersection", Union: "union", Difference: "difference", Xor: "xor", Op(99): "unknown"}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q", op, op.String())
		}
	}
}

func TestOpEval(t *testing.T) {
	cases := []struct {
		op   Op
		s, c bool
		want bool
	}{
		{Intersection, true, true, true},
		{Intersection, true, false, false},
		{Union, false, true, true},
		{Union, false, false, false},
		{Difference, true, false, true},
		{Difference, true, true, false},
		{Xor, true, false, true},
		{Xor, true, true, false},
		{Op(99), true, true, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.s, c.c); got != c.want {
			t.Errorf("%v.Eval(%v,%v) = %v", c.op, c.s, c.c, got)
		}
	}
}

func TestOutputOrientationConvention(t *testing.T) {
	a := geom.RectPolygon(0, 0, 4, 4)
	b := geom.RectPolygon(1, 1, 3, 3)
	got := Clip(a, b, Intersection, Options{})
	if len(got) != 1 {
		t.Fatalf("rings = %d", len(got))
	}
	if !got[0].IsCCW() {
		t.Error("outer ring should be CCW")
	}
}

func TestNestedThreeLevels(t *testing.T) {
	// a has a hole; b sits inside the hole: union has 3 rings (outer, hole,
	// island).
	a := Clip(geom.RectPolygon(0, 0, 12, 12), geom.RectPolygon(3, 3, 9, 9), Difference, Options{})
	b := geom.RectPolygon(5, 5, 7, 7)
	got := Clip(a, b, Union, Options{})
	wantArea := (144.0 - 36.0) + 4.0
	if math.Abs(got.Area()-wantArea) > 1e-6 {
		t.Errorf("area = %v, want %v (rings=%d)", got.Area(), wantArea, len(got))
	}
	if len(got) != 3 {
		t.Errorf("rings = %d, want 3", len(got))
	}
	checkParity(t, "nested ∪", a, b, got, Union, 3000, 15)
}
