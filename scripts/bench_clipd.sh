#!/bin/sh
# Reproduce BENCH_clipd.json: serve-layer throughput/latency under open-loop
# load. Three runs against a real clipd process over loopback HTTP:
#
#   baseline  - default capacity, two arrival rates (the >=2 concurrency
#               levels), plus a misbehaving-client phase (slow bodies, junk
#               geometry, mid-flight cancels);
#   overload  - deliberately tiny capacity so admission control must engage:
#               degraded-chain service and 503+Retry-After shedding, with
#               mode engage/disengage checked via /healthz;
#   faults    - clipd -chaos cycles injected panics/hangs/corruptions through
#               the serve and engine guard sites while load runs: the process
#               must survive with bounded p99 and no shed-without-Retry-After.
#
# Deterministic inputs (fixed seeds); timings vary with the host.
set -eu
cd "$(dirname "$0")/.."

PORT="${CLIPD_PORT:-18091}"
URL="http://127.0.0.1:$PORT"
DUR="${CLIPD_BENCH_DUR:-4s}"
OUT="${CLIPD_BENCH_OUT:-BENCH_clipd.json}"
TMP=$(mktemp -d)
trap 'kill $PID 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/clipd" ./cmd/clipd
go build -o "$TMP/clipload" ./cmd/clipload

wait_up() {
	for _ in $(seq 1 50); do
		if curl -sf "$URL/healthz" >/dev/null 2>&1; then return 0; fi
		sleep 0.1
	done
	echo "clipd did not come up on $URL" >&2
	exit 1
}

echo "== baseline (default capacity, rates 100 and 400 req/s)" >&2
"$TMP/clipd" -addr "127.0.0.1:$PORT" -seed 1 2>/dev/null &
PID=$!
wait_up
"$TMP/clipload" -url "$URL" -rates 100,400 -duration "$DUR" -seed 42 -label baseline >"$TMP/baseline.json"
"$TMP/clipload" -url "$URL" -rates 200 -duration "$DUR" -seed 43 -misbehave 0.2 -label misbehaving >"$TMP/misbehaving.json"
curl -s "$URL/statz" >"$TMP/baseline_statz.json"
kill $PID && wait $PID 2>/dev/null || true

echo "== overload (queue 4, 2 work slots, 1 degraded slot, 800 req/s)" >&2
"$TMP/clipd" -addr "127.0.0.1:$PORT" -seed 1 -queue 4 -max-concurrent 2 -degraded-slots 1 \
	-degraded-hold 500ms -threads 1 2>/dev/null &
PID=$!
wait_up
"$TMP/clipload" -url "$URL" -rates 800 -duration "$DUR" -seed 44 -verts 256 -label overload >"$TMP/overload.json"
MODE_DURING=$(curl -s "$URL/healthz" | sed -n 's/.*"mode":"\([a-z]*\)".*/\1/p')
curl -s "$URL/statz" >"$TMP/overload_statz.json"
sleep 1
MODE_AFTER=$(curl -s "$URL/healthz" | sed -n 's/.*"mode":"\([a-z]*\)".*/\1/p')
kill $PID && wait $PID 2>/dev/null || true

echo "== faults (clipd -chaos 50ms, 200 req/s, 20% misbehaving clients)" >&2
"$TMP/clipd" -addr "127.0.0.1:$PORT" -seed 1 -chaos 50ms -timeout 1s 2>/dev/null &
PID=$!
wait_up
"$TMP/clipload" -url "$URL" -rates 200 -duration "$DUR" -seed 45 -misbehave 0.2 -label faults >"$TMP/faults.json"
ALIVE=false
curl -sf "$URL/healthz" >/dev/null 2>&1 && ALIVE=true
curl -s "$URL/statz" >"$TMP/faults_statz.json"
kill $PID && wait $PID 2>/dev/null || true

MODE_DURING="$MODE_DURING" MODE_AFTER="$MODE_AFTER" ALIVE="$ALIVE" TMP="$TMP" OUT="$OUT" python3 - <<'EOF'
import json, os, platform

tmp, out = os.environ["TMP"], os.environ["OUT"]
load = lambda n: json.load(open(os.path.join(tmp, n)))
doc = {
    "benchmark": "clipd serving layer (open-loop load over loopback HTTP)",
    "host": {"platform": platform.platform(), "machine": platform.machine()},
    "runs": {
        "baseline":    {"load": load("baseline.json"),    "statz": load("baseline_statz.json")},
        "misbehaving": {"load": load("misbehaving.json"), "statz": load("baseline_statz.json")},
        "overload":    {"load": load("overload.json"),    "statz": load("overload_statz.json"),
                        "modeDuringBurst": os.environ["MODE_DURING"],
                        "modeAfterQuiesce": os.environ["MODE_AFTER"]},
        "faults":      {"load": load("faults.json"),      "statz": load("faults_statz.json"),
                        "serverAliveAfter": os.environ["ALIVE"] == "true"},
    },
}

# Contract checks: the benchmark doubles as an acceptance gate.
fails = []
ov = doc["runs"]["overload"]
if ov["statz"]["degradedServed"] == 0:
    fails.append("overload run served nothing through the degraded chain")
if ov["statz"]["shed"] == 0:
    fails.append("overload run shed nothing (capacity not saturated)")
if ov["modeAfterQuiesce"] != "normal":
    fails.append("degraded mode did not disengage after the burst")
for name, run in doc["runs"].items():
    for ph in run["load"]["phases"]:
        if ph["shedMissingRetryAfter"]:
            fails.append(f"{name}: {ph['shedMissingRetryAfter']} shed responses missing Retry-After")
        if ph["transportErrors"]:
            fails.append(f"{name}: {ph['transportErrors']} requests dropped without an HTTP answer")
fa = doc["runs"]["faults"]
if not fa["serverAliveAfter"]:
    fails.append("clipd died during the fault-injection run")
if fa["load"]["phases"][0]["p99Ms"] > 3000:
    fails.append("fault-injection p99 exceeds the bounded-tail contract")
doc["contract"] = {"violations": fails, "pass": not fails}

json.dump(doc, open(out, "w"), indent=2)
print(("PASS" if not fails else "FAIL") + f": wrote {out}")
for f in fails:
    print("  violation: " + f)
raise SystemExit(1 if fails else 0)
EOF
