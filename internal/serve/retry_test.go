package serve

import (
	"context"
	"testing"
	"time"
)

func TestHTTPErrorMessage(t *testing.T) {
	e := httpErrorf(422, "bad_rule", "unknown fill rule %q", "winding")
	if got := e.Error(); got != `unknown fill rule "winding"` {
		t.Errorf("Error() = %q", got)
	}
	if e.status != 422 || e.body.Code != "bad_rule" {
		t.Errorf("status/code = %d/%q", e.status, e.body.Code)
	}
}

func TestBackoff(t *testing.T) {
	s := NewServer(Config{RetryBase: time.Microsecond})

	// A live context: the jittered sleep elapses and reports true. Large
	// attempt values must clamp instead of overflowing the shift.
	if !s.backoff(context.Background(), 3) {
		t.Error("backoff with live ctx = false, want true")
	}
	if !s.backoff(context.Background(), 64) {
		t.Error("backoff with clamped attempt = false, want true")
	}

	// An already-cancelled context wins the race against any delay.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if s.backoff(ctx, 16) {
		t.Error("backoff with cancelled ctx = true, want false")
	}
}
