// Package pram simulates a synchronous CREW PRAM and implements the
// parallel primitives the paper's Algorithm 1 is built from — prefix sum,
// parallel sorting, inversion counting by ranked merging, and
// output-sensitive processor allocation — with exact accounting of rounds
// (parallel time), work (total operations) and the maximum number of
// processors active in any round. The simulator enforces the CREW
// discipline: concurrent reads are free, but two writes to the same shared
// cell in one round panic.
//
// The package exists to validate the paper's §III complexity claims
// empirically: rounds grow logarithmically in the input size while the
// processor count tracks n + k + k' (see the experiments in cmd/bench).
package pram

import (
	"fmt"
	"sync"
)

// Machine is a synchronous CREW PRAM with cost accounting.
type Machine struct {
	rounds   int64
	work     int64
	maxProcs int

	mu         sync.Mutex
	roundWrite map[memKey]struct{}
	checkCREW  bool
}

type memKey struct {
	arr uintptr
	idx int
}

// New returns a machine with CREW write checking enabled.
func New() *Machine {
	return &Machine{roundWrite: make(map[memKey]struct{}), checkCREW: true}
}

// Rounds returns the number of synchronous rounds executed so far — the
// PRAM parallel time.
func (m *Machine) Rounds() int64 { return m.rounds }

// Work returns the total number of processor-operations executed.
func (m *Machine) Work() int64 { return m.work }

// MaxProcs returns the largest number of processors active in one round.
func (m *Machine) MaxProcs() int { return m.maxProcs }

// Reset clears the accounting.
func (m *Machine) Reset() {
	m.rounds, m.work, m.maxProcs = 0, 0, 0
}

// Step executes one synchronous round with p processors; fn(i) is processor
// i's operation. Writes to shared arrays must go through Array.Write so the
// exclusive-write rule is enforced.
func (m *Machine) Step(p int, fn func(i int)) {
	if p <= 0 {
		return
	}
	m.rounds++
	m.work += int64(p)
	if p > m.maxProcs {
		m.maxProcs = p
	}
	for k := range m.roundWrite {
		delete(m.roundWrite, k)
	}
	for i := 0; i < p; i++ {
		fn(i)
	}
}

// Array is shared PRAM memory of ints with checked writes.
type Array struct {
	m    *Machine
	data []int
	id   uintptr
}

var arrayID uintptr

// NewArray allocates shared memory initialized from xs (copied).
func (m *Machine) NewArray(xs []int) *Array {
	arrayID++
	a := &Array{m: m, data: make([]int, len(xs)), id: arrayID}
	copy(a.data, xs)
	return a
}

// Len returns the array length.
func (a *Array) Len() int { return len(a.data) }

// Read returns element i (concurrent reads are allowed).
func (a *Array) Read(i int) int { return a.data[i] }

// Write sets element i, panicking if another processor already wrote it in
// the current round (the EW in CREW).
func (a *Array) Write(i, v int) {
	if a.m.checkCREW {
		k := memKey{a.id, i}
		a.m.mu.Lock()
		if _, dup := a.m.roundWrite[k]; dup {
			a.m.mu.Unlock()
			panic(fmt.Sprintf("pram: concurrent write to cell %d in one round", i))
		}
		a.m.roundWrite[k] = struct{}{}
		a.m.mu.Unlock()
	}
	a.data[i] = v
}

// Snapshot copies the array contents out.
func (a *Array) Snapshot() []int {
	out := make([]int, len(a.data))
	copy(out, a.data)
	return out
}

// Scan computes the inclusive prefix sums of xs with the Hillis–Steele
// algorithm: ceil(log2 n) rounds with n processors — the Lemma 3 primitive.
func (m *Machine) Scan(xs []int) []int {
	n := len(xs)
	if n == 0 {
		return nil
	}
	cur := m.NewArray(xs)
	for d := 1; d < n; d *= 2 {
		next := m.NewArray(cur.Snapshot())
		m.Step(n, func(i int) {
			if i >= d {
				next.Write(i, cur.Read(i)+cur.Read(i-d))
			}
		})
		cur = next
	}
	return cur.Snapshot()
}

// Sort sorts xs with Batcher's bitonic network: O(log² n) rounds with n/2
// processors. Cole's mergesort achieves O(log n) on the CREW PRAM; the
// bitonic network has the same work-per-round structure and is the standard
// executable stand-in (see DESIGN.md substitutions).
func (m *Machine) Sort(xs []int) []int {
	if len(xs) < 2 {
		return append([]int(nil), xs...)
	}
	n := 1
	for n < len(xs) {
		n <<= 1
	}
	padded := make([]int, n)
	copy(padded, xs)
	const inf = int(^uint(0) >> 1)
	for i := len(xs); i < n; i++ {
		padded[i] = inf
	}
	a := m.NewArray(padded)
	for k := 2; k <= n; k *= 2 {
		for j := k / 2; j > 0; j /= 2 {
			m.Step(n/2, func(p int) {
				// Processor p handles the p-th compare-exchange pair.
				i := pairIndex(p, j)
				l := i ^ j
				if l <= i {
					return
				}
				asc := i&k == 0
				vi, vl := a.Read(i), a.Read(l)
				if (vi > vl) == asc {
					a.Write(i, vl)
					a.Write(l, vi)
				}
			})
		}
	}
	out := a.Snapshot()
	return out[:len(xs)]
}

// pairIndex maps processor p to the lower index of its compare-exchange
// pair for stride j.
func pairIndex(p, j int) int {
	block := p / j
	off := p % j
	return block*2*j + off
}

// CountInversions counts inversions with log n levels of ranked merging:
// at each level, every element binary-searches its rank in the sibling
// sublist (log rounds per level, n processors), cross inversions are summed
// with a Scan — the PRAM realization of the paper's extended mergesort
// (Lemma 4, Table I).
func (m *Machine) CountInversions(xs []int) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	cur := make([]int, n)
	copy(cur, xs)
	var total int64

	for width := 1; width < n; width *= 2 {
		next := make([]int, n)
		crossPer := make([]int, n)

		// Ranking round(s): each element finds its insertion rank in the
		// sibling run by binary search — ceil(log2 width) rounds charged.
		searchRounds := int64(1)
		for w := 1; w < width; w *= 2 {
			searchRounds++
		}
		m.rounds += searchRounds
		m.work += int64(n) * searchRounds
		if n > m.maxProcs {
			m.maxProcs = n
		}

		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			if mid > n {
				mid = n
			}
			hi := lo + 2*width
			if hi > n {
				hi = n
			}
			left := cur[lo:mid]
			right := cur[mid:hi]
			// Each left element: rank = #right elements strictly less.
			for i, v := range left {
				r := lowerBound(right, v)
				next[lo+i+r] = v
			}
			// Each right element: rank among left with ties keeping left
			// first (stability); cross inversions = #left strictly greater.
			for i, v := range right {
				r := upperBound(left, v)
				next[lo+r+i] = v
				crossPer[mid+i] = len(left) - r
			}
		}
		// Summing the cross inversions is one Scan.
		sums := m.Scan(crossPer)
		total += int64(sums[len(sums)-1])
		cur = next
	}
	return total
}

// lowerBound returns the count of elements of a strictly less than v.
func lowerBound(a []int, v int) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the count of elements of a less than or equal to v.
func upperBound(a []int, v int) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AllocateSlots performs the paper's output-sensitive processor allocation:
// given per-bucket result counts, it scans them to offsets and "hires"
// exactly total processors to fill a flat result array — two rounds plus a
// Scan. It returns the offsets and the total, and charges the machine
// accordingly. This is the Step 2/Step 3.2 allocation pattern.
func (m *Machine) AllocateSlots(counts []int) (offsets []int, total int) {
	if len(counts) == 0 {
		return nil, 0
	}
	incl := m.Scan(counts)
	total = incl[len(incl)-1]
	offsets = make([]int, len(counts))
	m.Step(len(counts), func(i int) {
		if i == 0 {
			offsets[0] = 0
		} else {
			offsets[i] = incl[i-1]
		}
	})
	// One more round where `total` processors write their slot.
	m.Step(total, func(int) {})
	return offsets, total
}
