package chaos

import (
	"math"
	"testing"
	"time"

	"polyclip"
)

// TestCleanRunPasses is the tier-1 slice of the acceptance criterion: a
// fixed-seed run with no faults must find zero contract violations.
func TestCleanRunPasses(t *testing.T) {
	rep := Run(Config{Seed: 1, Cases: 42, Log: t.Logf})
	if rep.Failed() {
		t.Fatalf("clean chaos run failed:\n%s", rep.Summary())
	}
	if rep.InvariantChecks == 0 || rep.Clips == 0 {
		t.Fatalf("run checked nothing: %s", rep.Summary())
	}
}

// TestFaultedRunAbsorbsEveryFault injects a fault into every case and
// requires each to be recovered or surfaced as a structured error — never
// a crash, never a silently wrong answer.
func TestFaultedRunAbsorbsEveryFault(t *testing.T) {
	rep := Run(Config{Seed: 2, Cases: 24, Faults: true, Log: t.Logf})
	if rep.Failed() {
		t.Fatalf("faulted chaos run failed:\n%s", rep.Summary())
	}
	if rep.FaultsInjected != 24 {
		t.Fatalf("want 24 faults injected, got %d", rep.FaultsInjected)
	}
	// The injected panics must be visible somewhere in the resilience
	// record: rescued in-stage, absorbed by the fallback chain, or caught
	// by the audit.
	r := rep.Resilience
	if r.Recovered+r.FallbackSteps+r.AuditFailures == 0 {
		t.Fatalf("faults left no resilience trace: %s", rep.Summary())
	}
}

// TestBudgetedRunBoundsHangs arms hang faults under a per-clip deadline:
// the engine's own budget-overrun invariant fails the run if any clip
// exceeds twice the budget.
func TestBudgetedRunBoundsHangs(t *testing.T) {
	if testing.Short() {
		t.Skip("hang faults sleep for real time")
	}
	// 12 cases = one full fault-plan cycle, including both hang plans.
	rep := Run(Config{Seed: 3, Cases: 12, Faults: true, Budget: 500 * time.Millisecond, Log: t.Logf})
	if rep.Failed() {
		t.Fatalf("budgeted chaos run failed:\n%s", rep.Summary())
	}
}

// TestDeterminism: the same seed must reproduce the identical report.
func TestDeterminism(t *testing.T) {
	a := Run(Config{Seed: 7, Cases: 14})
	b := Run(Config{Seed: 7, Cases: 14})
	if a.Summary() != b.Summary() {
		t.Fatalf("same seed, different runs:\n%s\n---\n%s", a.Summary(), b.Summary())
	}
}

// TestWorkloadsAreAdversarial spot-checks generator properties the
// invariants rely on: determinism per (seed, index), and each family
// producing non-empty operands with finite, in-range coordinates.
func TestWorkloadsAreAdversarial(t *testing.T) {
	for i := 0; i < 2*len(generators); i++ {
		w1 := buildWorkload(9, i)
		w2 := buildWorkload(9, i)
		if len(w1.a) == 0 || len(w1.b) == 0 {
			t.Fatalf("case %d (%s): empty operand", i, w1.name)
		}
		if polyclip.FormatWKT(w1.a) != polyclip.FormatWKT(w2.a) ||
			polyclip.FormatWKT(w1.b) != polyclip.FormatWKT(w2.b) {
			t.Fatalf("case %d (%s): generation not deterministic", i, w1.name)
		}
	}
	// The self-touching family must actually self-intersect: each operand's
	// even-odd measure must diverge from its raw shoelace sum. The polygram
	// over-counts its multiply-wound core in shoelace terms; the bowtie's
	// lobes cancel to a shoelace of ~0 while the even-odd measure is two
	// full lobes.
	w := buildWorkload(9, 6) // generators[6] = self-touching
	if w.name != "self-touching" {
		t.Fatalf("generator order changed: got %s", w.name)
	}
	for _, operand := range []struct {
		label string
		p     polyclip.Polygon
	}{{"polygram", w.a}, {"bowtie", w.b}} {
		shoelace := polyclip.Area(operand.p)
		measure := polyclip.Area(polyclip.Clip(operand.p, operand.p, polyclip.Intersection))
		if measure <= 0 {
			t.Fatalf("self-touching %s has empty measure", operand.label)
		}
		if diff := math.Abs(measure - shoelace); diff < 1e-3*measure {
			t.Fatalf("self-touching %s is not self-intersecting: shoelace %g, measure %g",
				operand.label, shoelace, measure)
		}
	}
}
