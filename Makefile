FUZZTIME ?= 10s
FUZZ_TARGETS := FuzzParseWKT FuzzParseGeoJSON FuzzClipRoundTrip
CHAOS_SEED ?= 1
CHAOS_CASES ?= 200

.PHONY: check build vet test race fuzz chaos

check: vet build test race fuzz chaos

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Each native fuzz target gets a short smoke run; raise FUZZTIME for real
# fuzzing sessions (e.g. make fuzz FUZZTIME=10m).
fuzz:
	@for t in $(FUZZ_TARGETS); do \
		echo "fuzz $$t ($(FUZZTIME))"; \
		go test -run='^$$' -fuzz="^$$t$$" -fuzztime=$(FUZZTIME) . || exit 1; \
	done

# Deterministic chaos sweeps: a clean invariant run, a faulted run (every
# case takes one injected panic/hang/corruption), and a budgeted faulted run
# that exercises the stage watchdog. Same seed, same cases, same verdict.
chaos:
	go run ./cmd/chaos -seed $(CHAOS_SEED) -cases $(CHAOS_CASES)
	go run ./cmd/chaos -seed $(CHAOS_SEED) -cases $(CHAOS_CASES) -faults
	go run ./cmd/chaos -seed $(CHAOS_SEED) -cases 60 -faults -budget 500ms
