// Viewport clipping for a renderer: clip a small scene of polygons against
// a rectangular viewport with the classic algorithms the paper cites as
// baselines (Sutherland–Hodgman for convex windows, Liang–Barsky for
// wireframe segments), then against an arbitrary polygon-shaped mask with
// the general clipper — the case the classic algorithms cannot handle.
// Renders the result as ASCII.
package main

import (
	"fmt"
	"strings"

	"polyclip"
	"polyclip/internal/geom"
	"polyclip/internal/shclip"
)

func main() {
	viewport := geom.BBox{MinX: 10, MinY: 10, MaxX: 54, MaxY: 34}

	scene := []polyclip.Polygon{
		{geom.RegularPolygon(geom.Point{X: 16, Y: 30}, 12, 7, 0.4)},
		{geom.Star(geom.Point{X: 44, Y: 16}, 14, 6, 5, 0.2)},
		{geom.Rect(30, 22, 70, 40)},
	}

	// 1. Sutherland–Hodgman: clip each contour to the convex viewport.
	var clipped []polyclip.Polygon
	win := geom.Rect(viewport.MinX, viewport.MinY, viewport.MaxX, viewport.MaxY)
	for _, poly := range scene {
		var out polyclip.Polygon
		for _, ring := range poly {
			if c := shclip.SutherlandHodgman(ring, win); len(c) >= 3 {
				out = append(out, c)
			}
		}
		if len(out) > 0 {
			clipped = append(clipped, out)
		}
	}
	fmt.Println("Sutherland–Hodgman viewport clip:")
	render(clipped, viewport)

	// 2. Liang–Barsky: clip the wireframe of the scene.
	var kept, dropped int
	for _, poly := range scene {
		for _, e := range poly.Edges() {
			if _, ok := shclip.LiangBarsky(e, viewport); ok {
				kept++
			} else {
				dropped++
			}
		}
	}
	fmt.Printf("Liang–Barsky wireframe: %d segments kept, %d culled\n\n", kept, dropped)

	// 3. General clipping: mask the scene with a star-shaped (concave)
	// viewport — beyond Sutherland–Hodgman's convex-window contract.
	mask := polyclip.Polygon{geom.Star(geom.Point{X: 32, Y: 22}, 20, 9, 8, 0.1)}
	var masked []polyclip.Polygon
	for _, poly := range scene {
		if out := polyclip.Clip(poly, mask, polyclip.Intersection); len(out) > 0 {
			masked = append(masked, out)
		}
	}
	fmt.Println("General clip against a concave star mask:")
	render(masked, viewport)
}

// render rasterizes polygons into ASCII via even-odd point tests.
func render(polys []polyclip.Polygon, view geom.BBox) {
	const w, h = 64, 24
	glyphs := "#*%@+"
	var b strings.Builder
	for row := h - 1; row >= 0; row-- {
		for col := 0; col < w; col++ {
			pt := geom.Point{
				X: view.MinX + (float64(col)+0.5)/w*view.Width(),
				Y: view.MinY + (float64(row)+0.5)/h*view.Height(),
			}
			ch := byte('.')
			for i, p := range polys {
				if p.ContainsPoint(pt) {
					ch = glyphs[i%len(glyphs)]
				}
			}
			b.WriteByte(ch)
		}
		b.WriteByte('\n')
	}
	fmt.Println(b.String())
}
