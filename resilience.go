package polyclip

import (
	"context"
	"errors"
	"fmt"

	"polyclip/internal/core"
	"polyclip/internal/geom"
	"polyclip/internal/guard"
	"polyclip/internal/overlay"
	"polyclip/internal/par"
	"polyclip/internal/vatti"
)

// ClipError is the structured error surfaced when a clipping worker panics:
// it carries the pipeline stage, the offending slab index or feature pair
// when attributable, the recovered panic value and the worker's stack.
// Retrieve it with errors.As.
type ClipError = guard.ClipError

// ErrInvalidInput tags input-validation failures (non-finite or overflowing
// coordinates). Test with errors.Is.
var ErrInvalidInput = guard.ErrInvalidInput

// coarseFactor scales the snap grid for the retry attempt of the
// differential-fallback chain: a 1024x coarser grid collapses the
// near-degenerate incidences that defeat the default grid.
const coarseFactor = 1024

// attempt is one engine try of the differential-fallback chain.
type attempt struct {
	name string
	run  func(ctx context.Context) (Polygon, *Stats, error)
}

// ClipCtx computes `subject op clip` through the hardened pipeline:
//
//  1. Both inputs are validated (non-finite or overflowing coordinates are
//     rejected with an error wrapping ErrInvalidInput) and repaired
//     (consecutive duplicates, zero-area spikes and sub-3-vertex rings
//     removed; recorded in Stats.Resilience.Repaired).
//  2. The selected engine runs with panic isolation and cooperative
//     cancellation: ctx is polled inside the parallel loops, and a worker
//     panic is captured as a *ClipError instead of crashing the process.
//  3. The result is audited against cheap invariants (well-formed finite
//     rings, op-specific area bound). On a panic or failed audit the clip
//     is retried once on a 1024x coarser snap grid, then handed to a
//     different engine entirely (sequential Vatti for even-odd). Every
//     attempt and its outcome is recorded in Stats.Resilience.Attempts.
//
// The returned error is non-nil only when the inputs are invalid, ctx was
// cancelled, or every engine of the chain failed. Stats is always non-nil.
// Setting Options.NoFallback disables step 3's retries, surfacing the first
// failure directly.
func ClipCtx(ctx context.Context, subject, clip Polygon, op Op, opt Options) (Polygon, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var res core.Resilience
	fin := func(st *Stats) *Stats {
		if st == nil {
			st = &Stats{}
		}
		st.Resilience = res
		return st
	}

	if err := guard.Validate(subject); err != nil {
		return nil, fin(nil), fmt.Errorf("subject: %w", err)
	}
	if err := guard.Validate(clip); err != nil {
		return nil, fin(nil), fmt.Errorf("clip: %w", err)
	}
	var repS, repC guard.RepairReport
	subject, repS = guard.Repair(subject)
	clip, repC = guard.Repair(clip)
	res.Repaired = repS.Changed() || repC.Changed()

	// Audit references are sound measure bounds, not shoelace areas: the
	// ring-sum area of a self-intersecting input under-states its even-odd
	// measure (a bowtie sums to ~0), which made the audit reject correct
	// results and drag every such clip through the fallback chain.
	areaS, areaC := guard.MeasureBound(subject), guard.MeasureBound(clip)
	chain := attemptChain(subject, clip, op, opt)
	if opt.NoFallback {
		chain = chain[:1]
	}

	var out Polygon
	var st *Stats
	var lastErr error
	for i, at := range chain {
		if err := ctx.Err(); err != nil {
			return nil, fin(st), err
		}
		var err error
		out, st, err = runAttempt(ctx, at)
		if st != nil {
			// Keep the stage-level counters (watchdog timeouts, retries,
			// in-stage recoveries) an attempt accumulated even when the
			// attempt itself failed and the chain moves on.
			res.StageTimeouts += st.Resilience.StageTimeouts
			res.Retries += st.Resilience.Retries
			res.Recovered += st.Resilience.Recovered
		}
		if err != nil {
			if ctx.Err() != nil {
				res.Attempts = append(res.Attempts, at.name+":canceled")
				return nil, fin(st), err
			}
			res.Attempts = append(res.Attempts, at.name+":"+failureKind(err))
			lastErr = err
			continue
		}
		out = guard.HitPoly("polyclip.result", out)
		if aerr := guard.Audit(out, areaS, areaC, guard.OpKind(op)); aerr != nil {
			res.InvariantFailures++
			// The heuristic bound cannot distinguish a damaged result from a
			// legitimate one on inputs that defeat the area estimate, so
			// consult the differential oracle before discarding the attempt:
			// recompute the measure with a structurally different engine and
			// accept on agreement (cross-engine concordance is the strongest
			// evidence available without a ground truth).
			if !opt.NoFallback && opt.Rule != NonZero {
				if refArea, ok := crossCheckArea(ctx, subject, clip, op, at.name); ok &&
					guard.AuditDifferential(out, refArea, areaS+areaC) == nil {
					res.Attempts = append(res.Attempts, at.name+":differential-ok")
					return out, fin(st), nil
				}
			}
			if i == len(chain)-1 {
				// Every engine agrees (or at least fails the same heuristic
				// bound): the audit is inconclusive, not the result wrong —
				// self-intersecting inputs can defeat the area estimate.
				res.Attempts = append(res.Attempts, at.name+":audit-inconclusive")
				return out, fin(st), nil
			}
			res.Attempts = append(res.Attempts, at.name+":audit-fail")
			lastErr = aerr
			continue
		}
		res.Attempts = append(res.Attempts, at.name+":ok")
		return out, fin(st), nil
	}
	return nil, fin(st), lastErr
}

// failureKind labels a failed engine attempt for the Attempts record:
// watchdog-abandoned stages are timeouts, everything else surfaced as a
// recovered panic.
func failureKind(err error) string {
	var stall *par.StallError
	if errors.As(err, &stall) {
		return "timeout"
	}
	var ce *ClipError
	if errors.As(err, &ce) && ce.Timeout {
		return "timeout"
	}
	return "panic"
}

// crossCheckArea computes the even-odd measure of `subject op clip` with an
// engine structurally different from the attempt under audit: the sequential
// Vatti sweep normally, the single-threaded overlay arrangement when the
// failing attempt was Vatti itself. Panic-isolated; ok is false when the
// reference engine fails too, leaving the caller to the heuristic verdict.
func crossCheckArea(ctx context.Context, subject, clip Polygon, op Op, attemptName string) (area float64, ok bool) {
	defer func() {
		if recover() != nil {
			area, ok = 0, false
		}
	}()
	var ref Polygon
	if attemptName == "vatti" {
		out, err := overlay.ClipCtx(ctx, subject, clip, op, overlay.Options{Parallelism: 1})
		if err != nil {
			return 0, false
		}
		ref = out
	} else {
		ref = vatti.Clip(subject, clip, op)
	}
	return ref.Area(), true
}

// runAttempt runs one engine attempt with panic isolation.
func runAttempt(ctx context.Context, at attempt) (out Polygon, st *Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, st = nil, nil
			err = guard.FromPanic("clip", -1, guard.NoPair, r)
		}
	}()
	return at.run(ctx)
}

// attemptChain builds the differential-fallback chain for the selected
// strategy: the requested engine first, then the same arrangement on a
// coarser snap grid, then a structurally different engine.
func attemptChain(subject, clip Polygon, op Op, opt Options) []attempt {
	coarse := overlay.SnapEpsFor(subject, clip) * coarseFactor
	ov := func(name string, oopt overlay.Options) attempt {
		return attempt{name, func(ctx context.Context) (Polygon, *Stats, error) {
			out, err := overlay.ClipCtx(ctx, subject, clip, op, oopt)
			return out, nil, err
		}}
	}
	vt := attempt{"vatti", func(ctx context.Context) (Polygon, *Stats, error) {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		return vatti.Clip(subject, clip, op), nil, nil
	}}

	if opt.Rule == NonZero {
		// Only the overlay engine understands NonZero: vary grid and
		// parallelism instead of the engine.
		return []attempt{
			ov("overlay", overlay.Options{Parallelism: opt.Threads, Rule: NonZero}),
			ov("overlay-coarse", overlay.Options{Parallelism: opt.Threads, Rule: NonZero, SnapEps: coarse}),
			ov("overlay-seq", overlay.Options{Parallelism: 1, Rule: NonZero}),
		}
	}

	ovDefault := ov("overlay", overlay.Options{Parallelism: opt.Threads})
	ovCoarse := ov("overlay-coarse", overlay.Options{Parallelism: opt.Threads, SnapEps: coarse})
	switch opt.Algorithm {
	case AlgoSlabs:
		slabs := attempt{"slabs", func(ctx context.Context) (Polygon, *Stats, error) {
			return core.ClipPairCtx(ctx, subject, clip, op, core.Options{
				Threads: opt.Threads, Slabs: opt.Slabs, NoFallback: opt.NoFallback,
			})
		}}
		return []attempt{slabs, ovCoarse, vt}
	case AlgoScanbeam:
		scan := attempt{"scanbeam", func(ctx context.Context) (Polygon, *Stats, error) {
			out, _ := core.AlgorithmOneCtx(ctx, subject, clip, op, opt.Threads)
			return out, nil, ctx.Err()
		}}
		return []attempt{scan, ovCoarse, vt}
	case AlgoSequential:
		return []attempt{vt, ovDefault, ovCoarse}
	default:
		return []attempt{ovDefault, ovCoarse, vt}
	}
}

// repairLayer validates and repairs every feature of a layer.
func repairLayer(name string, l Layer) (Layer, bool, error) {
	changed := false
	out := make(Layer, len(l))
	for i, f := range l {
		if err := guard.Validate(f); err != nil {
			return nil, false, fmt.Errorf("%s feature %d: %w", name, i, err)
		}
		var rep guard.RepairReport
		out[i], rep = guard.Repair(f)
		changed = changed || rep.Changed()
	}
	return out, changed, nil
}

// OverlayLayersCtx is OverlayLayers through the hardened pipeline: features
// are validated and repaired, the per-pair clip loop honors ctx, and a
// panicking pair is rescued once by the other sequential engine (counted in
// Stats.Resilience.Recovered) before a *ClipError carrying the offending
// pair is surfaced.
func OverlayLayersCtx(ctx context.Context, a, b Layer, op Op, opt Options) ([]Polygon, *Stats, error) {
	a2, chA, err := repairLayer("layer a", a)
	if err != nil {
		return nil, &Stats{}, err
	}
	b2, chB, err := repairLayer("layer b", b)
	if err != nil {
		return nil, &Stats{}, err
	}
	out, st, err := core.ClipLayersCtx(ctx, a2, b2, op, core.Options{
		Threads: opt.Threads, Slabs: opt.Slabs, NoFallback: opt.NoFallback,
	})
	if st == nil {
		st = &Stats{}
	}
	st.Resilience.Repaired = chA || chB
	return out, st, err
}

// OverlayLayersMergedCtx is OverlayLayersMerged through the hardened
// pipeline (see ClipCtx): each layer is fused into one even-odd region and
// the regions are clipped with validation, repair, panic isolation,
// cancellation and the differential-fallback chain.
func OverlayLayersMergedCtx(ctx context.Context, a, b Layer, op Op, opt Options) (Polygon, *Stats, error) {
	opt.Algorithm = AlgoSlabs
	return ClipCtx(ctx, flattenLayer(a), flattenLayer(b), op, opt)
}

func flattenLayer(l Layer) Polygon {
	var out geom.Polygon
	for _, f := range l {
		out = append(out, f...)
	}
	return out
}
