package geom

import (
	"math"
	"math/big"
	"sync"
)

// Orientation classifies the turn a->b->c.
type Orientation int

// Turn directions returned by Orient.
const (
	Clockwise        Orientation = -1
	Collinear        Orientation = 0
	CounterClockwise Orientation = 1
)

// orientErrBound is the coefficient of the forward error bound for the
// floating-point orientation determinant (cf. Shewchuk's robust predicates:
// (3ε + 16ε²) with ε = 2⁻⁵³; we round up generously).
const orientErrBound = 3.3306690738754716e-16

// Orient returns the orientation of the triple (a, b, c): CounterClockwise
// when c lies to the left of the directed line a->b, Clockwise when it lies
// to the right, Collinear when the three points are collinear.
//
// The determinant is evaluated in float64 and, when its magnitude falls
// under the forward error bound, re-evaluated exactly with math/big so that
// the returned sign is always correct.
func Orient(a, b, c Point) Orientation {
	detLeft := (a.X - c.X) * (b.Y - c.Y)
	detRight := (a.Y - c.Y) * (b.X - c.X)
	det := detLeft - detRight

	var detSum float64
	switch {
	case detLeft > 0:
		if detRight <= 0 {
			return signOf(det)
		}
		detSum = detLeft + detRight
	case detLeft < 0:
		if detRight >= 0 {
			return signOf(det)
		}
		detSum = -detLeft - detRight
	default:
		return signOf(det)
	}
	if math.Abs(det) >= orientErrBound*detSum {
		return signOf(det)
	}
	return orientExact(a, b, c)
}

func signOf(x float64) Orientation {
	switch {
	case x > 0:
		return CounterClockwise
	case x < 0:
		return Clockwise
	default:
		return Collinear
	}
}

// ratScratch is a reusable set of big.Rat registers for the exact fallback
// paths. A big.Rat keeps its numerator/denominator backing storage across
// Set/Sub/Mul calls, so pooling the registers makes the exact path
// allocation-free in steady state — the filter already keeps it off the hot
// path, the pool keeps the cold path from hammering the garbage collector
// on adversarial (near-degenerate-rich) inputs.
type ratScratch struct {
	r [16]big.Rat
}

var ratPool = sync.Pool{New: func() any { return new(ratScratch) }}

// orientExact computes the orientation determinant exactly with big.Rat,
// using pooled scratch registers.
func orientExact(a, b, c Point) Orientation {
	s := ratPool.Get().(*ratScratch)
	ax, ay := s.r[0].SetFloat64(a.X), s.r[1].SetFloat64(a.Y)
	bx, by := s.r[2].SetFloat64(b.X), s.r[3].SetFloat64(b.Y)
	cx, cy := s.r[4].SetFloat64(c.X), s.r[5].SetFloat64(c.Y)

	l := s.r[8].Mul(s.r[6].Sub(ax, cx), s.r[7].Sub(by, cy))
	r := s.r[11].Mul(s.r[9].Sub(ay, cy), s.r[10].Sub(bx, cx))
	o := Orientation(l.Cmp(r))
	ratPool.Put(s)
	return o
}

// IntersectKind describes the result of intersecting two segments.
type IntersectKind int

// Possible segment intersection kinds.
const (
	// Disjoint: the segments have no common point.
	Disjoint IntersectKind = iota
	// Crossing: the segments have exactly one common point (which may be an
	// endpoint of one or both).
	Crossing
	// Overlapping: the segments are collinear and share a sub-segment of
	// positive length.
	Overlapping
)

// SegIntersection computes the intersection of two segments.
//
// For Crossing it returns the single intersection point in p0.
// For Overlapping it returns the shared sub-segment endpoints in p0, p1.
func SegIntersection(s, t Segment) (kind IntersectKind, p0, p1 Point) {
	d1 := Orient(t.A, t.B, s.A)
	d2 := Orient(t.A, t.B, s.B)
	d3 := Orient(s.A, s.B, t.A)
	d4 := Orient(s.A, s.B, t.B)

	// Collinear handling.
	if d1 == Collinear && d2 == Collinear && d3 == Collinear && d4 == Collinear {
		// All four points on one line: project on dominant axis.
		lo1, hi1 := orderOnLine(s)
		lo2, hi2 := orderOnLine(t)
		lo := maxPtOnLine(lo1, lo2)
		hi := minPtOnLine(hi1, hi2)
		switch cmpOnLine(lo, hi) {
		case -1:
			return Overlapping, lo, hi
		case 0:
			return Crossing, lo, Point{}
		default:
			return Disjoint, Point{}, Point{}
		}
	}

	// An endpoint of one segment lying exactly on the other (Orient is
	// exact, so these tests are too): the unique common point IS that
	// endpoint. Returning it directly matters — two consecutive sub-edges
	// of a split near-collinear chord share a vertex at an almost-180°
	// angle, and computing that point through the line-line formula slides
	// it arbitrarily far along the nearly-common line.
	if d1 == Collinear && onSegment(t, s.A) {
		return Crossing, s.A, Point{}
	}
	if d2 == Collinear && onSegment(t, s.B) {
		return Crossing, s.B, Point{}
	}
	if d3 == Collinear && onSegment(s, t.A) {
		return Crossing, t.A, Point{}
	}
	if d4 == Collinear && onSegment(s, t.B) {
		return Crossing, t.B, Point{}
	}

	if d1 != d2 && d3 != d4 && d1 != Collinear && d2 != Collinear && d3 != Collinear && d4 != Collinear {
		// Proper crossing: both segments strictly straddle each other.
		return Crossing, lineIntersectionPoint(s, t), Point{}
	}
	return Disjoint, Point{}, Point{}
}

// crossCancelBound is the relative cancellation threshold below which the
// floating-point cross product r×d of two nearly parallel directions is too
// inaccurate to divide by: at cancellation c the quotient's relative error
// grows to ~ε/c, so c = 1e-4 keeps it near 1e-12 (RelEps). Below the bound
// the intersection parameter is recomputed exactly with math/big.
const crossCancelBound = 1e-4

// lineIntersectionPoint returns the intersection point of the supporting
// lines of two properly crossing segments, with endpoint snapping: if the
// intersection coincides with an endpoint it returns that endpoint exactly,
// keeping downstream vertex matching watertight.
//
// For nearly parallel segments — near-collinear fan edges crossing at an
// angle θ — the float64 quotient drifts the point ~ε/θ along the common
// direction, far outside either segment once θ falls under ~1e-12; the
// intersection parameter is then evaluated exactly with big.Rat (rounded
// once at the end), mirroring Orient's exact fallback.
func lineIntersectionPoint(s, t Segment) Point {
	r := s.B.Sub(s.A)
	d := t.B.Sub(t.A)
	denom := r.Cross(d)
	mag := math.Abs(r.X*d.Y) + math.Abs(r.Y*d.X)
	var u float64
	if math.Abs(denom) >= crossCancelBound*mag && denom != 0 {
		u = t.A.Sub(s.A).Cross(d) / denom
	} else {
		u = exactIntersectionParam(s, t)
	}
	p := Point{s.A.X + u*r.X, s.A.Y + u*r.Y}
	// The snap tolerance must be relative AND local: an absolute tolerance
	// collapses the whole arrangement once coordinates shrink below it, and
	// a tolerance scaled by the segments' largest coordinate snaps points
	// across macroscopic distances when one endpoint sits orders of
	// magnitude further out than the intersection (an extreme-aspect sliver
	// reaching from the origin to 1e12 must not pull a crossing near the
	// origin onto a unit-scale endpoint).
	for _, e := range [...]Point{s.A, s.B, t.A, t.B} {
		m := math.Max(math.Max(math.Abs(p.X), math.Abs(p.Y)), math.Max(math.Abs(e.X), math.Abs(e.Y)))
		if p.Near(e, RelEps*m) {
			return e
		}
	}
	return p
}

// exactIntersectionParam computes the parameter u of the supporting-line
// intersection s.A + u·(s.B−s.A) with exact rational arithmetic, rounding
// only the final quotient to float64. Callers must have established (via the
// exact orientation tests) that the segments properly cross, so the exact
// denominator cannot vanish.
func exactIntersectionParam(s, t Segment) float64 {
	sc := ratPool.Get().(*ratScratch)
	defer ratPool.Put(sc)
	sax, say := sc.r[0].SetFloat64(s.A.X), sc.r[1].SetFloat64(s.A.Y)
	rx := sc.r[2].Sub(sc.r[6].SetFloat64(s.B.X), sax)
	ry := sc.r[3].Sub(sc.r[6].SetFloat64(s.B.Y), say)
	tax, tay := sc.r[4].SetFloat64(t.A.X), sc.r[5].SetFloat64(t.A.Y)
	dx := sc.r[6].Sub(sc.r[8].SetFloat64(t.B.X), tax)
	dy := sc.r[7].Sub(sc.r[8].SetFloat64(t.B.Y), tay)

	denom := sc.r[8].Sub(sc.r[9].Mul(rx, dy), sc.r[10].Mul(ry, dx))
	if denom.Sign() == 0 {
		return 0 // exactly parallel: only reachable on endpoint-touch paths
	}
	wx := sc.r[9].Sub(tax, sax)
	wy := sc.r[10].Sub(tay, say)
	num := sc.r[11].Sub(sc.r[12].Mul(wx, dy), sc.r[13].Mul(wy, dx))
	u, _ := sc.r[12].Quo(num, denom).Float64()
	return u
}

// onSegment reports whether p (known collinear with s) lies within s's box.
func onSegment(s Segment, p Point) bool {
	lox, hix := s.XSpan()
	loy, hiy := s.YSpan()
	return p.X >= lox && p.X <= hix && p.Y >= loy && p.Y <= hiy
}

func cmpOnLine(a, b Point) int {
	if a.X != b.X {
		if a.X < b.X {
			return -1
		}
		return 1
	}
	if a.Y != b.Y {
		if a.Y < b.Y {
			return -1
		}
		return 1
	}
	return 0
}

func orderOnLine(s Segment) (lo, hi Point) {
	if cmpOnLine(s.A, s.B) <= 0 {
		return s.A, s.B
	}
	return s.B, s.A
}

func maxPtOnLine(a, b Point) Point {
	if cmpOnLine(a, b) >= 0 {
		return a
	}
	return b
}

func minPtOnLine(a, b Point) Point {
	if cmpOnLine(a, b) <= 0 {
		return a
	}
	return b
}

// SegmentsCross reports whether the interiors of s and t share exactly one
// point (a proper crossing, excluding endpoint touches and overlaps).
func SegmentsCross(s, t Segment) bool {
	d1 := Orient(t.A, t.B, s.A)
	d2 := Orient(t.A, t.B, s.B)
	d3 := Orient(s.A, s.B, t.A)
	d4 := Orient(s.A, s.B, t.B)
	return d1*d2 < 0 && d3*d4 < 0
}
