package isect

import (
	"math/rand"
	"reflect"
	"testing"

	"polyclip/internal/geom"
)

func pairsEqual(t *testing.T, name string, got, want []Pair) {
	t.Helper()
	got = dedupPairs(append([]Pair(nil), got...))
	want = dedupPairs(append([]Pair(nil), want...))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s: got %v, want %v", name, got, want)
	}
}

func TestSimpleCross(t *testing.T) {
	edges := []geom.Segment{
		{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 2, Y: 2}},
		{A: geom.Point{X: 0, Y: 2}, B: geom.Point{X: 2, Y: 0}},
	}
	want := []Pair{{0, 1}}
	pairsEqual(t, "brute", BruteForcePairs(edges), want)
	pairsEqual(t, "grid", GridPairs(edges, 1), want)
	pairsEqual(t, "scanbeam", ScanbeamPairs(edges, 1), want)
}

func TestNoIntersections(t *testing.T) {
	edges := []geom.Segment{
		{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 1, Y: 1}},
		{A: geom.Point{X: 5, Y: 0}, B: geom.Point{X: 6, Y: 1}},
		{A: geom.Point{X: 10, Y: 0}, B: geom.Point{X: 11, Y: 1}},
	}
	if got := ScanbeamPairs(edges, 1); len(got) != 0 {
		t.Errorf("scanbeam found %v", got)
	}
	if got := GridPairs(edges, 1); len(got) != 0 {
		t.Errorf("grid found %v", got)
	}
}

func TestSharedEndpointNotMissedNotDuplicated(t *testing.T) {
	// Two edges sharing a bottom endpoint intersect (at that point).
	edges := []geom.Segment{
		{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: -1, Y: 2}},
		{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 1, Y: 2}},
	}
	want := []Pair{{0, 1}}
	pairsEqual(t, "scanbeam shared endpoint", ScanbeamPairs(edges, 1), want)
}

func TestFig4Configuration(t *testing.T) {
	// Four edges in one scanbeam whose bottom order is {3,2,4,1} relative to
	// the top order {1,2,3,4}: inversion pairs (3,1),(3,2),(4,1),(2,1) —
	// 4 crossings (paper Fig. 4). Build concrete segments achieving it:
	// edge i has top x = i; bottom xs chosen so bottom order is 3,2,4,1.
	topX := map[int]float64{1: 1, 2: 2, 3: 3, 4: 4}
	botX := map[int]float64{3: 0, 2: 1, 4: 2, 1: 3}
	var edges []geom.Segment
	for id := 1; id <= 4; id++ {
		edges = append(edges, geom.Segment{
			A: geom.Point{X: botX[id], Y: 0},
			B: geom.Point{X: topX[id], Y: 10},
		})
	}
	// ids in slice: edge id i -> index i-1
	want := []Pair{{0, 1}, {0, 2}, {0, 3}, {1, 2}} // (1,2)(1,3)(1,4)(2,3) by index
	got := ScanbeamPairs(edges, 1)
	pairsEqual(t, "fig4", got, want)
	if k := CountCrossings(edges, 1); k != 4 {
		t.Errorf("CountCrossings = %d, want 4", k)
	}
}

func randomEdges(rng *rand.Rand, n int, span float64) []geom.Segment {
	edges := make([]geom.Segment, n)
	for i := range edges {
		a := geom.Point{X: rng.Float64() * span, Y: rng.Float64() * span}
		b := geom.Point{X: a.X + (rng.Float64()-0.5)*10, Y: a.Y + (rng.Float64()-0.5)*10}
		if a.Y == b.Y {
			b.Y += 0.001
		}
		edges[i] = geom.Segment{A: a, B: b}
	}
	return edges
}

func TestFindersAgreeOnRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(60)
		edges := randomEdges(rng, n, 40)
		want := BruteForcePairs(edges)
		pairsEqual(t, "grid vs brute", GridPairs(edges, 2), want)
		pairsEqual(t, "scanbeam vs brute", ScanbeamPairs(edges, 2), want)
	}
}

func TestFindersAgreeOnPolygonEdges(t *testing.T) {
	// Two overlapping regular polygons: all intersections are cross-polygon.
	a := geom.RegularPolygon(geom.Point{X: 0, Y: 0}, 10, 12, 0.13)
	b := geom.RegularPolygon(geom.Point{X: 4, Y: 3}, 10, 9, 0.31)
	edges := append(a.Edges(nil), b.Edges(nil)...)
	want := BruteForcePairs(edges)
	pairsEqual(t, "grid", GridPairs(edges, 4), want)
	pairsEqual(t, "scanbeam", ScanbeamPairs(edges, 4), want)
	if len(want) == 0 {
		t.Fatal("expected intersections between overlapping polygons")
	}
}

func TestSelfIntersectingStarPairs(t *testing.T) {
	star := geom.SelfIntersectingStar(geom.Point{X: 0, Y: 0}, 5, 5, 0.17)
	edges := star.Edges(nil)
	want := BruteForcePairs(edges)
	pairsEqual(t, "scanbeam star", ScanbeamPairs(edges, 1), want)
	// A pentagram has 5 proper crossings plus 5 shared-endpoint pairs.
	if len(want) != 10 {
		t.Errorf("pentagram pairs = %d, want 10", len(want))
	}
}

func TestCountCrossingsMatchesProperCrossings(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 10; trial++ {
		edges := randomEdges(rng, 40, 30)
		var proper int64
		for i := range edges {
			for j := i + 1; j < len(edges); j++ {
				if geom.SegmentsCross(edges[i], edges[j]) {
					proper++
				}
			}
		}
		got := CountCrossings(edges, 2)
		// Inversion count equals proper crossings exactly (touches produce
		// no inversion under the tie-breaking rules).
		if got != proper {
			t.Errorf("trial %d: inversions=%d proper crossings=%d", trial, got, proper)
		}
	}
}

func TestPoints(t *testing.T) {
	edges := []geom.Segment{
		{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 2, Y: 2}},
		{A: geom.Point{X: 0, Y: 2}, B: geom.Point{X: 2, Y: 0}},
		{A: geom.Point{X: 0, Y: 1}, B: geom.Point{X: 2, Y: 1}},
	}
	pairs := BruteForcePairs(edges)
	pts := Points(edges, pairs)
	if len(pts) != 1 {
		t.Fatalf("points = %v, want single (1,1)", pts)
	}
	if !pts[0].Near(geom.Point{X: 1, Y: 1}, 1e-12) {
		t.Errorf("point = %v", pts[0])
	}
}

func TestPointsOverlap(t *testing.T) {
	edges := []geom.Segment{
		{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 0, Y: 3}},
		{A: geom.Point{X: 0, Y: 1}, B: geom.Point{X: 0, Y: 5}},
	}
	pts := Points(edges, []Pair{{0, 1}})
	if len(pts) != 2 {
		t.Fatalf("overlap points = %v", pts)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edges := randomEdges(rng, 300, 100)
	seq := ScanbeamPairs(edges, 1)
	parallel := ScanbeamPairs(edges, 8)
	pairsEqual(t, "scanbeam p=8 vs p=1", parallel, seq)
	gs := GridPairs(edges, 1)
	gp := GridPairs(edges, 8)
	pairsEqual(t, "grid p=8 vs p=1", gp, gs)
}

func TestGridHandlesDegenerateExtent(t *testing.T) {
	// All edges on a vertical line: grid width 0.
	edges := []geom.Segment{
		{A: geom.Point{X: 1, Y: 0}, B: geom.Point{X: 1, Y: 2}},
		{A: geom.Point{X: 1, Y: 1}, B: geom.Point{X: 1, Y: 3}},
	}
	got := GridPairs(edges, 1)
	if len(got) != 1 {
		t.Errorf("vertical overlap pairs = %v", got)
	}
}

func TestSweepSimpleCross(t *testing.T) {
	edges := []geom.Segment{
		{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 2, Y: 2}},
		{A: geom.Point{X: 0, Y: 2}, B: geom.Point{X: 2, Y: 0}},
	}
	pairsEqual(t, "sweep", SweepPairs(edges), []Pair{{0, 1}})
}

func TestSweepMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(50)
		edges := randomEdges(rng, n, 40)
		want := BruteForcePairs(edges)
		pairsEqual(t, "sweep vs brute", SweepPairs(edges), want)
	}
}

func TestSweepPolygonEdges(t *testing.T) {
	a := geom.RegularPolygon(geom.Point{X: 0, Y: 0}, 10, 14, 0.13)
	b := geom.RegularPolygon(geom.Point{X: 4, Y: 3}, 10, 11, 0.31)
	edges := append(a.Edges(nil), b.Edges(nil)...)
	pairsEqual(t, "sweep polys", SweepPairs(edges), BruteForcePairs(edges))
}

func TestSweepWithHorizontals(t *testing.T) {
	edges := []geom.Segment{
		{A: geom.Point{X: 0, Y: 1}, B: geom.Point{X: 4, Y: 1}}, // horizontal
		{A: geom.Point{X: 2, Y: 0}, B: geom.Point{X: 2, Y: 2}}, // crosses it
		{A: geom.Point{X: 6, Y: 0}, B: geom.Point{X: 6, Y: 2}}, // disjoint
	}
	pairsEqual(t, "sweep horizontals", SweepPairs(edges), []Pair{{0, 1}})
}

func TestSweepPentagram(t *testing.T) {
	star := geom.SelfIntersectingStar(geom.Point{X: 0, Y: 0}, 5, 5, 0.17)
	edges := star.Edges(nil)
	pairsEqual(t, "sweep star", SweepPairs(edges), BruteForcePairs(edges))
}

func TestSweepEmpty(t *testing.T) {
	if got := SweepPairs(nil); got != nil {
		t.Errorf("SweepPairs(nil) = %v", got)
	}
}

func TestSweepDenseCrossings(t *testing.T) {
	// A pencil of segments sharing the y-extent: thousands of crossings with
	// massive event ties stress the event-ordering logic.
	rng := rand.New(rand.NewSource(307))
	var edges []geom.Segment
	for i := 0; i < 120; i++ {
		x0 := rng.Float64() * 20
		x1 := rng.Float64() * 20
		edges = append(edges, geom.Segment{
			A: geom.Point{X: x0, Y: 0},
			B: geom.Point{X: x1, Y: 10},
		})
	}
	pairsEqual(t, "sweep dense", SweepPairs(edges), BruteForcePairs(edges))
}

func TestAllFourFindersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 10; trial++ {
		edges := randomEdges(rng, 40, 25)
		want := BruteForcePairs(edges)
		pairsEqual(t, "grid", GridPairs(edges, 2), want)
		pairsEqual(t, "scanbeam", ScanbeamPairs(edges, 2), want)
		pairsEqual(t, "sweep", SweepPairs(edges), want)
	}
}
