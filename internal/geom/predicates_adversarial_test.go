package geom

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// orientOracle evaluates the orientation determinant entirely in big.Rat —
// no filter, no shortcuts — as the ground truth the adaptive Orient must
// match bit-for-bit on every input.
func orientOracle(a, b, c Point) Orientation {
	var ax, ay, bx, by, cx, cy, l1, l2, r1, r2, l, r big.Rat
	ax.SetFloat64(a.X)
	ay.SetFloat64(a.Y)
	bx.SetFloat64(b.X)
	by.SetFloat64(b.Y)
	cx.SetFloat64(c.X)
	cy.SetFloat64(c.Y)
	l.Mul(l1.Sub(&ax, &cx), l2.Sub(&by, &cy))
	r.Mul(r1.Sub(&ay, &cy), r2.Sub(&bx, &cx))
	return Orientation(l.Cmp(&r))
}

// checkOrientTriple asserts Orient agrees with the exact oracle on the
// triple and on all cyclic rotations and swaps of it (which must flip or
// preserve the sign consistently with the oracle's own answers).
func checkOrientTriple(t *testing.T, a, b, c Point) {
	t.Helper()
	triples := [...][3]Point{
		{a, b, c}, {b, c, a}, {c, a, b}, // cyclic: same sign
		{b, a, c}, {a, c, b}, {c, b, a}, // swapped: opposite sign
	}
	for _, tr := range triples {
		want := orientOracle(tr[0], tr[1], tr[2])
		if got := Orient(tr[0], tr[1], tr[2]); got != want {
			t.Fatalf("Orient(%v, %v, %v) = %d, oracle says %d", tr[0], tr[1], tr[2], got, want)
		}
	}
}

// TestOrientAdversarialUlpCollinear walks points at most a few ulps off an
// exactly collinear configuration — the region where the float filter's
// determinant is pure rounding noise and only the exact fallback can decide.
func TestOrientAdversarialUlpCollinear(t *testing.T) {
	bases := [...][3]Point{
		{{0, 0}, {1, 1}, {2, 2}},
		{{0, 0}, {1e-3, 1e-3}, {12, 12}},
		{{0.1, 0.1}, {0.2, 0.2}, {0.3, 0.3}}, // 0.1 is inexact: not truly collinear
		{{-5, 3}, {0, 3}, {7, 3}},            // horizontal
		{{2, -4}, {2, 0}, {2, 9}},            // vertical
	}
	for _, base := range bases {
		for dulp := -3; dulp <= 3; dulp++ {
			for axis := 0; axis < 2; axis++ {
				for vi := 0; vi < 3; vi++ {
					p := base
					v := &p[vi]
					if axis == 0 {
						v.X = nudgeUlps(v.X, dulp)
					} else {
						v.Y = nudgeUlps(v.Y, dulp)
					}
					checkOrientTriple(t, p[0], p[1], p[2])
				}
			}
		}
	}
}

// nudgeUlps moves x by n ulps (n may be negative).
func nudgeUlps(x float64, n int) float64 {
	for ; n > 0; n-- {
		x = math.Nextafter(x, math.Inf(1))
	}
	for ; n < 0; n++ {
		x = math.Nextafter(x, math.Inf(-1))
	}
	return x
}

// TestOrientAdversarialScales re-runs the ulp-collinear torture at extreme
// coordinate magnitudes (2^±332, past the range where the determinant's
// partial products themselves overflow or denormalize at unit scale).
func TestOrientAdversarialScales(t *testing.T) {
	for _, exp := range [...]int{-332, -160, 160, 332} {
		f := math.Ldexp(1, exp)
		base := [3]Point{{0, 0}, {f, f}, {2 * f, 2 * f}}
		for dulp := -2; dulp <= 2; dulp++ {
			for vi := 0; vi < 3; vi++ {
				p := base
				p[vi].Y = nudgeUlps(p[vi].Y, dulp)
				checkOrientTriple(t, p[0], p[1], p[2])
			}
		}
		// Mixed scale: one coordinate astronomically larger than the others.
		checkOrientTriple(t, Point{0, 0}, Point{1, 1}, Point{f, f})
		checkOrientTriple(t, Point{0, 0}, Point{1, nudgeUlps(1, 1)}, Point{f, f})
	}
}

// TestOrientAdversarialSlivers forms extreme-aspect sliver triangles — two
// vertices close together, the third far away along an almost-common line —
// and random near-degenerate triples, checking every answer against the
// oracle.
func TestOrientAdversarialSlivers(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		// A point, a direction, and two more points almost on the ray.
		ax, ay := rng.Float64(), rng.Float64()
		dx, dy := rng.Float64()-0.5, rng.Float64()-0.5
		t1 := math.Ldexp(rng.Float64(), rng.Intn(24)) // up to ~1e7 along the ray
		t2 := t1 * (1 + (rng.Float64()-0.5)*1e-15)    // almost the same parameter
		a := Point{ax, ay}
		b := Point{ax + t1*dx, ay + t1*dy}
		c := Point{ax + t2*dx, ay + t2*dy}
		checkOrientTriple(t, a, b, c)
	}
}

// TestSegIntersectionMatchesOrientOracle crosses sliver segments and checks
// that the reported kind is consistent with the exact orientations: a
// Crossing or Overlapping verdict requires the oracle to see the segments
// touch, and a Disjoint verdict forbids a proper oracle crossing.
func TestSegIntersectionMatchesOrientOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		ax, ay := rng.Float64(), rng.Float64()
		dx, dy := rng.Float64()-0.5, rng.Float64()-0.5
		s := Segment{Point{ax, ay}, Point{ax + dx, ay + dy}}
		// t shares s's supporting line to within a few ulps, shifted along it.
		sh := rng.Float64() * 0.5
		tt := Segment{
			Point{ax + sh*dx, nudgeUlps(ay+sh*dy, rng.Intn(5)-2)},
			Point{ax + (sh+1)*dx, nudgeUlps(ay+(sh+1)*dy, rng.Intn(5)-2)},
		}
		kind, _, _ := SegIntersection(s, tt)
		properCross := orientOracle(tt.A, tt.B, s.A)*orientOracle(tt.A, tt.B, s.B) < 0 &&
			orientOracle(s.A, s.B, tt.A)*orientOracle(s.A, s.B, tt.B) < 0
		if properCross && kind == Disjoint {
			t.Fatalf("case %d: oracle sees a proper crossing, SegIntersection says Disjoint\ns=%v t=%v", i, s, tt)
		}
		if !properCross && kind == Crossing {
			// A Crossing verdict without a proper oracle crossing is legal
			// only via an endpoint-on-segment touch: re-check exactly.
			touch := orientOracle(tt.A, tt.B, s.A) == Collinear && onSegment(tt, s.A) ||
				orientOracle(tt.A, tt.B, s.B) == Collinear && onSegment(tt, s.B) ||
				orientOracle(s.A, s.B, tt.A) == Collinear && onSegment(s, tt.A) ||
				orientOracle(s.A, s.B, tt.B) == Collinear && onSegment(s, tt.B)
			if !touch {
				t.Fatalf("case %d: SegIntersection says Crossing, oracle sees neither a proper crossing nor a touch\ns=%v t=%v", i, s, tt)
			}
		}
	}
}
