// Package ringstitch links directed boundary edges into closed polygon
// rings. Both clipping engines emit their contributing edges directed so
// that the result interior lies to the edge's left; under the even-odd rule
// every vertex then has equal in- and out-degree, and rings are recovered by
// walking edges, at each vertex taking the first unused outgoing edge
// clockwise from the reversed incoming direction. This keeps the interior on
// the left around every turn, producing counter-clockwise outer rings and
// clockwise holes — the paper's Step 3.4/Step 4 vertex ordering.
package ringstitch

import (
	"math"
	"sort"

	"polyclip/internal/geom"
	"polyclip/internal/guard"
)

// Edge is a directed boundary edge with the region interior on its left.
type Edge struct {
	From, To geom.Point
}

// Stitch links the directed edges into closed rings. Edges must form an
// even-degree graph (every vertex has in-degree == out-degree); numerically
// inconsistent leftovers are dropped rather than emitted as open chains.
// Rings with fewer than three vertices are discarded.
func Stitch(edges []Edge) geom.Polygon {
	guard.Hit("ringstitch.stitch")
	if len(edges) == 0 {
		return nil
	}
	type vkey struct{ x, y float64 }
	vid := make(map[vkey]int32, len(edges))
	var verts []geom.Point
	idOf := func(p geom.Point) int32 {
		k := vkey{p.X, p.Y}
		if id, ok := vid[k]; ok {
			return id
		}
		id := int32(len(verts))
		vid[k] = id
		verts = append(verts, p)
		return id
	}

	type outEdge struct {
		to    int32
		angle float64
		used  bool
	}
	froms := make([]int32, len(edges))
	tos := make([]int32, len(edges))
	for i, e := range edges {
		froms[i] = idOf(e.From)
		tos[i] = idOf(e.To)
	}
	adj := make([][]outEdge, len(verts))
	for i := range edges {
		f, t := froms[i], tos[i]
		ang := math.Atan2(verts[t].Y-verts[f].Y, verts[t].X-verts[f].X)
		adj[f] = append(adj[f], outEdge{to: t, angle: ang})
	}

	var result geom.Polygon
	for i := range edges {
		f := froms[i]
		start := -1
		for k := range adj[f] {
			if !adj[f][k].used && adj[f][k].to == tos[i] {
				start = k
				break
			}
		}
		if start < 0 {
			continue
		}

		ring := geom.Ring{verts[f]}
		cur, curEdge := f, start
		for {
			e := &adj[cur][curEdge]
			e.used = true
			nxt := e.to
			if nxt == f {
				break
			}
			ring = append(ring, verts[nxt])
			rev := math.Atan2(verts[cur].Y-verts[nxt].Y, verts[cur].X-verts[nxt].X)
			bestK, bestOff := -1, math.Inf(1)
			for k := range adj[nxt] {
				c := &adj[nxt][k]
				if c.used {
					continue
				}
				off := math.Mod(rev-c.angle, 2*math.Pi)
				if off <= 0 {
					off += 2 * math.Pi
				}
				if off < bestOff {
					bestOff, bestK = off, k
				}
			}
			if bestK < 0 {
				ring = nil
				break
			}
			cur, curEdge = nxt, bestK
		}
		if len(ring) >= 3 {
			result = append(result, ring)
		}
	}
	return DropSlivers(result)
}

// DropSlivers removes rings of negligible area relative to the largest
// ring — artifacts of coordinate snapping.
func DropSlivers(p geom.Polygon) geom.Polygon {
	if len(p) == 0 {
		return nil
	}
	maxA := 0.0
	for _, r := range p {
		if a := r.Area(); a > maxA {
			maxA = a
		}
	}
	thresh := maxA * 1e-14
	out := p[:0]
	for _, r := range p {
		if r.Area() > thresh {
			out = append(out, r)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// CancelOpposites removes pairs of identical segments traversed in opposite
// directions (shared boundaries of adjacent regions) and merges identical
// duplicates, returning the net directed edge set. Engines that assemble a
// region from per-scanbeam pieces use this to erase the internal seams (the
// paper's virtual-vertex caps) before stitching.
func CancelOpposites(edges []Edge) []Edge {
	type key struct{ ax, ay, bx, by float64 }
	net := make(map[key]int, len(edges))
	for _, e := range edges {
		a, b := e.From, e.To
		flip := false
		if b.Less(a) {
			a, b = b, a
			flip = true
		}
		k := key{a.X, a.Y, b.X, b.Y}
		if flip {
			net[k]--
		} else {
			net[k]++
		}
	}
	out := make([]Edge, 0, len(net))
	for k, n := range net {
		a := geom.Point{X: k.ax, Y: k.ay}
		b := geom.Point{X: k.bx, Y: k.by}
		for ; n > 0; n-- {
			out = append(out, Edge{a, b})
		}
		for ; n < 0; n++ {
			out = append(out, Edge{b, a})
		}
	}
	// The map iteration above is randomized per process, and Stitch starts
	// rings at the first unused edge in slice order, so without a canonical
	// order here the same input yields a differently-rotated (though
	// geometrically identical) ring on every run. Sort so clip output is a
	// pure function of the input.
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From.Less(out[j].From)
		}
		return out[i].To.Less(out[j].To)
	})
	return out
}
