// Package rtree provides a static R-tree over bounding boxes, bulk-loaded
// with the Sort-Tile-Recursive (STR) packing algorithm. The layer-overlay
// path uses it to find candidate feature pairs (the MBR join of the paper's
// Algorithm 2 for polygon sets); it is also the standard GIS indexing
// substrate a downstream user of this library would expect.
package rtree

import (
	"math"
	"sort"

	"polyclip/internal/geom"
)

// maxFill is the node fan-out.
const maxFill = 16

// Tree is an immutable R-tree over int32 item ids.
type Tree struct {
	nodes []node
	root  int32
	n     int
}

type node struct {
	box   geom.BBox
	child []int32 // node indices, or item ids at leaves
	leaf  bool
}

// Build bulk-loads a tree over n boxes produced by box(i) using STR
// packing: items are sorted into vertical tiles by center x, each tile
// sorted by center y and cut into runs of maxFill.
func Build(n int, box func(i int32) geom.BBox) *Tree {
	t := &Tree{n: n}
	if n == 0 {
		t.root = -1
		return t
	}
	type entry struct {
		id int32
		b  geom.BBox
	}
	items := make([]entry, n)
	for i := range items {
		items[i] = entry{int32(i), box(int32(i))}
	}

	// Leaf level by STR.
	nLeaves := (n + maxFill - 1) / maxFill
	nSlices := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	perSlice := nSlices * maxFill

	sort.Slice(items, func(a, b int) bool {
		ca := items[a].b.MinX + items[a].b.MaxX
		cb := items[b].b.MinX + items[b].b.MaxX
		return ca < cb
	})
	for s := 0; s < len(items); s += perSlice {
		e := s + perSlice
		if e > len(items) {
			e = len(items)
		}
		sl := items[s:e]
		sort.Slice(sl, func(a, b int) bool {
			ca := sl[a].b.MinY + sl[a].b.MaxY
			cb := sl[b].b.MinY + sl[b].b.MaxY
			return ca < cb
		})
	}

	level := make([]int32, 0, nLeaves)
	for s := 0; s < len(items); s += maxFill {
		e := s + maxFill
		if e > len(items) {
			e = len(items)
		}
		nd := node{leaf: true, box: geom.EmptyBBox()}
		for _, it := range items[s:e] {
			nd.child = append(nd.child, it.id)
			nd.box = nd.box.Union(it.b)
		}
		t.nodes = append(t.nodes, nd)
		level = append(level, int32(len(t.nodes)-1))
	}

	// Internal levels.
	for len(level) > 1 {
		next := make([]int32, 0, (len(level)+maxFill-1)/maxFill)
		for s := 0; s < len(level); s += maxFill {
			e := s + maxFill
			if e > len(level) {
				e = len(level)
			}
			nd := node{box: geom.EmptyBBox()}
			for _, ci := range level[s:e] {
				nd.child = append(nd.child, ci)
				nd.box = nd.box.Union(t.nodes[ci].box)
			}
			t.nodes = append(t.nodes, nd)
			next = append(next, int32(len(t.nodes)-1))
		}
		level = next
	}
	t.root = level[0]
	return t
}

// Len returns the number of indexed items.
func (t *Tree) Len() int { return t.n }

// Bounds returns the root bounding box (empty for an empty tree).
func (t *Tree) Bounds() geom.BBox {
	if t.root < 0 {
		return geom.EmptyBBox()
	}
	return t.nodes[t.root].box
}

// Search calls visit for every item whose box intersects q.
func (t *Tree) Search(q geom.BBox, visit func(id int32)) {
	if t.root < 0 {
		return
	}
	t.search(t.root, q, visit)
}

func (t *Tree) search(ni int32, q geom.BBox, visit func(id int32)) {
	nd := &t.nodes[ni]
	if !nd.box.Intersects(q) {
		return
	}
	if nd.leaf {
		for _, id := range nd.child {
			visit(id)
		}
		return
	}
	for _, ci := range nd.child {
		t.search(ci, q, visit)
	}
}

// SearchRect appends to out the candidate ids for the window q — every item
// in a leaf whose node box intersects q, exactly the ids Search would visit —
// and returns the extended slice. It is the window query of the tile
// pipeline: no callback, so a caller that reuses out across queries
// allocates nothing per query once the slice has grown to its working size
// (pinned by TestSearchRectAllocs); the traversal itself is the same
// recursive descent as Search, which is allocation-free. Callers needing the
// exact per-item test filter the ids against their own boxes, as
// SearchFiltered does. Ids arrive in tree traversal order.
func (t *Tree) SearchRect(q geom.BBox, out []int32) []int32 {
	if t.root < 0 {
		return out
	}
	return t.searchRect(t.root, q, out)
}

func (t *Tree) searchRect(ni int32, q geom.BBox, out []int32) []int32 {
	nd := &t.nodes[ni]
	if !nd.box.Intersects(q) {
		return out
	}
	if nd.leaf {
		return append(out, nd.child...)
	}
	for _, ci := range nd.child {
		out = t.searchRect(ci, q, out)
	}
	return out
}

// SearchFiltered calls visit only for items whose own box (from box(id))
// intersects q — Search plus the exact leaf-level test.
func (t *Tree) SearchFiltered(q geom.BBox, box func(id int32) geom.BBox, visit func(id int32)) {
	t.Search(q, func(id int32) {
		if box(id).Intersects(q) {
			visit(id)
		}
	})
}

// Join reports every pair (i, j) with boxesA(i) intersecting the tree's
// item j (whose exact box is boxesB(j)). Pair order is i-major with j in
// tree traversal order — identical to streaming the same join through
// JoinVisit, which Join is a materializing wrapper around.
func (t *Tree) Join(na int, boxA func(i int32) geom.BBox, boxB func(j int32) geom.BBox) [][2]int32 {
	var out [][2]int32
	t.JoinVisit(na, boxA, boxB, func(i, j int32) {
		out = append(out, [2]int32{i, j})
	})
	return out
}

// JoinVisit is the streaming spatial join: visit is called for every pair
// (i, j) with boxA(i) intersecting the tree's item j (exact box boxB(j)),
// without ever materializing the pair list. The million-feature batch
// overlay buckets pairs as they stream out, so the join's memory stays
// O(tree depth) regardless of how many candidates the layers produce.
// Visit order matches Join: i ascending, j in tree traversal order.
//
// The traversal is iterative over one reused stack (a recursive descent
// would be allocation-free too, but the per-query closure a recursive
// helper needs would not be), so a whole join costs one stack allocation.
func (t *Tree) JoinVisit(na int, boxA func(i int32) geom.BBox, boxB func(j int32) geom.BBox, visit func(i, j int32)) {
	if t.root < 0 || na <= 0 {
		return
	}
	stack := make([]int32, 0, 32)
	for i := int32(0); i < int32(na); i++ {
		qa := boxA(i)
		stack = append(stack[:0], t.root)
		for len(stack) > 0 {
			ni := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			nd := &t.nodes[ni]
			if !nd.box.Intersects(qa) {
				continue
			}
			if nd.leaf {
				for _, id := range nd.child {
					if boxB(id).Intersects(qa) {
						visit(i, id)
					}
				}
				continue
			}
			// Push in reverse so children pop in declaration order,
			// preserving the recursive traversal's visit order.
			for k := len(nd.child) - 1; k >= 0; k-- {
				stack = append(stack, nd.child[k])
			}
		}
	}
}
