// Package geom provides the geometric substrate for the polygon-clipping
// library: points, segments, rings and polygons, together with the predicates
// (orientation, segment intersection, point location) every clipping engine
// in this repository is built on.
//
// Coordinates are float64. The orientation predicate is evaluated in floating
// point with a forward error bound and falls back to exact rational
// arithmetic when the floating-point sign is not certain, so the combinatorial
// decisions made by the clipping engines are reliable for non-adversarial
// inputs.
package geom

import (
	"fmt"
	"math"
)

// Eps is the default tolerance used when snapping nearly identical
// coordinates produced by intersection computations.
const Eps = 1e-9

// RelEps is the relative coordinate tolerance: positions closer than
// RelEps times the coordinate magnitude are beyond what float64 can
// meaningfully distinguish after a clipping arrangement is computed. Every
// tolerance in the pipeline (snap grids, endpoint welds, scanline
// grouping) derives from it, so the library behaves identically at any
// coordinate scale.
const RelEps = 1e-12

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Sub returns p - q as a vector.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dot returns the dot product of p and q taken as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the 2D cross product of p and q taken as vectors.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Near reports whether p and q coincide within tolerance eps in both
// coordinates.
func (p Point) Near(q Point, eps float64) bool {
	return math.Abs(p.X-q.X) <= eps && math.Abs(p.Y-q.Y) <= eps
}

// Less orders points lexicographically by (Y, X). The clipping engines sweep
// bottom-to-top, so Y is the primary key, matching the paper's scanline
// order.
func (p Point) Less(q Point) bool {
	if p.Y != q.Y {
		return p.Y < q.Y
	}
	return p.X < q.X
}

func (p Point) String() string { return fmt.Sprintf("(%g,%g)", p.X, p.Y) }

// IsFinite reports whether both coordinates are finite (neither NaN nor
// ±Inf).
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) &&
		!math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// Segment is a directed straight line segment from A to B.
type Segment struct {
	A, B Point
}

// Reversed returns the segment with endpoints swapped.
func (s Segment) Reversed() Segment { return Segment{s.B, s.A} }

// IsHorizontal reports whether the segment is parallel to the x-axis.
func (s Segment) IsHorizontal() bool { return s.A.Y == s.B.Y }

// IsDegenerate reports whether the segment has zero length.
func (s Segment) IsDegenerate() bool { return s.A == s.B }

// YSpan returns the segment's y extent with lo <= hi.
func (s Segment) YSpan() (lo, hi float64) {
	if s.A.Y <= s.B.Y {
		return s.A.Y, s.B.Y
	}
	return s.B.Y, s.A.Y
}

// XSpan returns the segment's x extent with lo <= hi.
func (s Segment) XSpan() (lo, hi float64) {
	if s.A.X <= s.B.X {
		return s.A.X, s.B.X
	}
	return s.B.X, s.A.X
}

// XAtY returns the x coordinate at which the (extended) segment crosses the
// horizontal line at y. The segment must not be horizontal.
func (s Segment) XAtY(y float64) float64 {
	if s.A.Y == s.B.Y {
		// Horizontal: return the left end; callers are expected to have
		// removed horizontals (see PerturbHorizontals) but stay total.
		if s.A.X < s.B.X {
			return s.A.X
		}
		return s.B.X
	}
	// Exact at endpoints so shared vertices compare equal downstream.
	if y == s.A.Y {
		return s.A.X
	}
	if y == s.B.Y {
		return s.B.X
	}
	t := (y - s.A.Y) / (s.B.Y - s.A.Y)
	return s.A.X + t*(s.B.X-s.A.X)
}

// DistToPoint returns the Euclidean distance from p to the segment.
func (s Segment) DistToPoint(p Point) float64 {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return p.Dist(s.A)
	}
	t := p.Sub(s.A).Dot(d) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(Point{s.A.X + t*d.X, s.A.Y + t*d.Y})
}

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Point {
	return Point{(s.A.X + s.B.X) / 2, (s.A.Y + s.B.Y) / 2}
}

// Len returns the segment length.
func (s Segment) Len() float64 { return s.A.Dist(s.B) }

func (s Segment) String() string { return fmt.Sprintf("[%v-%v]", s.A, s.B) }

// Ring is a closed polygonal chain. The closing edge from the last vertex
// back to the first is implicit; rings must not repeat the first vertex at
// the end.
type Ring []Point

// Clone returns a deep copy of the ring.
func (r Ring) Clone() Ring {
	c := make(Ring, len(r))
	copy(c, r)
	return c
}

// Edges appends the ring's directed edges to dst and returns it.
func (r Ring) Edges(dst []Segment) []Segment {
	n := len(r)
	for i := 0; i < n; i++ {
		j := i + 1
		if j == n {
			j = 0
		}
		if r[i] != r[j] {
			dst = append(dst, Segment{r[i], r[j]})
		}
	}
	return dst
}

// SignedArea returns the signed area of the ring: positive for
// counter-clockwise orientation.
func (r Ring) SignedArea() float64 {
	n := len(r)
	if n < 3 {
		return 0
	}
	// Shoelace about the first vertex: mathematically identical, but
	// numerically stable for rings far from the origin (raw cross products
	// of 1e9-magnitude coordinates would cancel catastrophically).
	o := r[0]
	var s float64
	for i := 1; i < n-1; i++ {
		s += r[i].Sub(o).Cross(r[i+1].Sub(o))
	}
	return s / 2
}

// Area returns the absolute area of the ring.
func (r Ring) Area() float64 { return math.Abs(r.SignedArea()) }

// IsCCW reports whether the ring is counter-clockwise oriented.
func (r Ring) IsCCW() bool { return r.SignedArea() > 0 }

// Reverse reverses the ring in place.
func (r Ring) Reverse() {
	for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
		r[i], r[j] = r[j], r[i]
	}
}

// Validate returns a descriptive error when the ring contains a non-finite
// (NaN or ±Inf) coordinate. Such coordinates poison every predicate —
// comparisons with NaN are false, so sweeps mis-sort and engines can hang
// or crash — which is why all parse and clip entry points reject them.
func (r Ring) Validate() error {
	for i, pt := range r {
		if !pt.IsFinite() {
			return fmt.Errorf("vertex %d: non-finite coordinate %v", i, pt)
		}
	}
	return nil
}

// BBox returns the ring's bounding box.
func (r Ring) BBox() BBox {
	b := EmptyBBox()
	for _, p := range r {
		b.Extend(p)
	}
	return b
}

// Polygon is a polygon with zero or more rings (contours), interpreted under
// the even-odd fill rule: a point is inside when a ray from it crosses the
// union of all contours an odd number of times. This is the interpretation
// used by GPC and by the paper's handling of self-intersecting inputs; holes
// need no special orientation.
type Polygon []Ring

// Clone returns a deep copy of the polygon.
func (p Polygon) Clone() Polygon {
	c := make(Polygon, len(p))
	for i, r := range p {
		c[i] = r.Clone()
	}
	return c
}

// NumVertices returns the total vertex count over all rings.
func (p Polygon) NumVertices() int {
	n := 0
	for _, r := range p {
		n += len(r)
	}
	return n
}

// Edges returns all directed edges of all rings.
func (p Polygon) Edges() []Segment {
	var out []Segment
	for _, r := range p {
		out = r.Edges(out)
	}
	return out
}

// Area returns the even-odd area of the polygon: the measure of the point
// set with odd crossing parity. For a polygon whose rings do not cross each
// other this equals the alternating sum |Σ ±area(ring)| with holes
// subtracted; it is computed here by decomposition against all rings using
// signed areas of the arrangement's faces, approximated as the absolute sum
// of signed ring areas (exact when rings are disjoint or properly nested
// with alternating orientation, which is what the clipping engines emit).
func (p Polygon) Area() float64 {
	var s float64
	for _, r := range p {
		s += r.SignedArea()
	}
	return math.Abs(s)
}

// Validate returns a descriptive error when any ring contains a non-finite
// (NaN or ±Inf) coordinate.
func (p Polygon) Validate() error {
	for ri, r := range p {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("ring %d: %w", ri, err)
		}
	}
	return nil
}

// BBox returns the polygon's bounding box.
func (p Polygon) BBox() BBox {
	b := EmptyBBox()
	for _, r := range p {
		for _, pt := range r {
			b.Extend(pt)
		}
	}
	return b
}

// ContainsPoint reports whether pt is inside the polygon under the even-odd
// rule. Points exactly on the boundary are classified arbitrarily but
// deterministically.
func (p Polygon) ContainsPoint(pt Point) bool {
	odd := false
	for _, r := range p {
		n := len(r)
		for i := 0; i < n; i++ {
			j := i + 1
			if j == n {
				j = 0
			}
			a, b := r[i], r[j]
			// Count crossings of the horizontal ray to the right of pt,
			// half-open in y to avoid double counting at vertices.
			if (a.Y > pt.Y) != (b.Y > pt.Y) {
				x := a.X + (pt.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
				if x > pt.X {
					odd = !odd
				}
			}
		}
	}
	return odd
}

// BBox is an axis-aligned bounding box (the paper's MBR).
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyBBox returns an empty bounding box that extends to contain anything.
func EmptyBBox() BBox {
	return BBox{math.Inf(1), math.Inf(1), math.Inf(-1), math.Inf(-1)}
}

// IsEmpty reports whether the box contains no points.
func (b BBox) IsEmpty() bool { return b.MinX > b.MaxX || b.MinY > b.MaxY }

// Extend grows the box to include p.
func (b *BBox) Extend(p Point) {
	b.MinX = math.Min(b.MinX, p.X)
	b.MinY = math.Min(b.MinY, p.Y)
	b.MaxX = math.Max(b.MaxX, p.X)
	b.MaxY = math.Max(b.MaxY, p.Y)
}

// Union returns the smallest box containing both b and o.
func (b BBox) Union(o BBox) BBox {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return BBox{
		math.Min(b.MinX, o.MinX), math.Min(b.MinY, o.MinY),
		math.Max(b.MaxX, o.MaxX), math.Max(b.MaxY, o.MaxY),
	}
}

// Intersects reports whether the two boxes overlap (closed boxes).
func (b BBox) Intersects(o BBox) bool {
	return b.MinX <= o.MaxX && o.MinX <= b.MaxX && b.MinY <= o.MaxY && o.MinY <= b.MaxY
}

// Contains reports whether p lies inside the closed box.
func (b BBox) Contains(p Point) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// Width returns the box width.
func (b BBox) Width() float64 { return b.MaxX - b.MinX }

// Height returns the box height.
func (b BBox) Height() float64 { return b.MaxY - b.MinY }

// PerturbHorizontals returns a copy of the polygon in which every horizontal
// edge has been removed by nudging one endpoint's y coordinate by a tiny
// multiple of the polygon height. The paper assumes no horizontal edges and
// prescribes exactly this preprocessing ("slightly perturbing the vertices
// to make them non-horizontal", §III-C).
func PerturbHorizontals(p Polygon, eps float64) Polygon {
	out := p.Clone()
	if eps <= 0 {
		b := p.BBox()
		h := b.Height()
		if h == 0 {
			h = 1
		}
		eps = h * 1e-12
	}
	for _, r := range out {
		n := len(r)
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			if r[i].Y == r[j].Y && r[i] != r[j] {
				r[j].Y += eps * float64(1+i%3)
			}
		}
	}
	return out
}
