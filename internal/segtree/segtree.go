// Package segtree implements the segment tree of the paper's §II-C / §III-E:
// a complete binary tree over the elementary y-intervals induced by the
// event schedule, whose internal nodes carry cover lists (the edges spanning
// the node's range but not its parent's) plus a count of the cover-list
// size, so that the number of edges in a scanbeam can be obtained by a
// root-to-leaf walk without touching the lists, and the edges themselves can
// then be reported with exactly as many "processors" (slots) as the count —
// the paper's two-phase, output-sensitive Step 2.
package segtree

import (
	"sort"
	"sync/atomic"

	"polyclip/internal/guard"
	"polyclip/internal/par"
)

// Tree is a static segment tree over the elementary intervals of a sorted
// boundary slice. Edge IDs are caller-defined int32 indices.
type Tree struct {
	ys     []float64 // sorted distinct interval boundaries, len m+1 for m leaves
	leaves int       // number of elementary intervals, padded to a power of two
	real   int       // number of real (unpadded) elementary intervals
	count  []int32   // per-node cover list size
	cover  [][]int32 // per-node cover list (edge ids), built on demand
}

// Interval is a closed y-range to be inserted into the tree.
type Interval struct {
	Lo, Hi float64
}

// Boundaries returns the sorted distinct boundary values the tree was built
// over.
func (t *Tree) Boundaries() []float64 { return t.ys }

// NumBeams returns the number of elementary intervals (scanbeams).
func (t *Tree) NumBeams() int { return t.real }

// Beam returns the y-range of elementary interval i.
func (t *Tree) Beam(i int) (lo, hi float64) { return t.ys[i], t.ys[i+1] }

// Build constructs the tree over the given boundaries for the edges whose
// y-spans are produced by span(i) for i in [0, n). Boundaries must be sorted
// and distinct (use Dedup). Construction is parallel with parallelism p and
// two-phase: counts first, then exact-size cover lists.
func Build(boundaries []float64, n int, span func(i int32) Interval, p int) *Tree {
	guard.Hit("segtree.build")
	m := len(boundaries) - 1
	if m < 1 {
		m = 1
	}
	leaves := 1
	for leaves < m {
		leaves <<= 1
	}
	t := &Tree{
		ys:     boundaries,
		leaves: leaves,
		real:   m,
		count:  make([]int32, 2*leaves),
	}

	// Phase 1: count cover-list sizes with atomic adds.
	par.ForEachItem(n, p, func(i int) {
		iv := span(int32(i))
		a, b := t.elemRange(iv)
		if a < b {
			t.visitCanonical(1, 0, t.leaves, a, b, func(node int) {
				atomic.AddInt32(&t.count[node], 1)
			})
		}
	})

	// Allocate exactly count[node] slots per node.
	t.cover = make([][]int32, 2*leaves)
	fill := make([]int32, 2*leaves)
	for node, c := range t.count {
		if c > 0 {
			t.cover[node] = make([]int32, c)
		}
	}

	// Phase 2: report edges into their slots.
	par.ForEachItem(n, p, func(i int) {
		iv := span(int32(i))
		a, b := t.elemRange(iv)
		if a < b {
			t.visitCanonical(1, 0, t.leaves, a, b, func(node int) {
				slot := atomic.AddInt32(&fill[node], 1) - 1
				t.cover[node][slot] = int32(i)
			})
		}
	})

	// Phase 3: canonicalize every cover list. The slot order above is the
	// workers' arrival order — a property of the scheduler, not the input —
	// and it would otherwise leak through BeamReport into per-beam edge
	// order and from there into output ring starting vertices, making clip
	// output vary run to run. Ascending edge id is exactly the order a
	// sequential (p = 1) build produces, so the tree is one deterministic
	// structure at every parallelism degree.
	par.ForEachItem(2*leaves, p, func(node int) {
		c := t.cover[node]
		if len(c) > 1 {
			sort.Slice(c, func(x, y int) bool { return c[x] < c[y] })
		}
	})
	return t
}

// elemRange maps a y-interval to the half-open range of elementary interval
// indices it fully covers.
func (t *Tree) elemRange(iv Interval) (a, b int) {
	// First boundary >= lo starts coverage; coverage ends at the last
	// boundary <= hi.
	a = sort.SearchFloat64s(t.ys, iv.Lo)
	b = sort.SearchFloat64s(t.ys, iv.Hi)
	if b >= len(t.ys) || t.ys[b] != iv.Hi {
		// hi is not a boundary (possible when the caller clamps): cover only
		// full elementary intervals below hi.
	}
	if b > t.real {
		b = t.real
	}
	return a, b
}

// visitCanonical calls fn for every canonical node of [a, b) — the O(log m)
// nodes whose ranges partition the query interval.
func (t *Tree) visitCanonical(node, lo, hi, a, b int, fn func(node int)) {
	if a <= lo && hi <= b {
		fn(node)
		return
	}
	mid := (lo + hi) / 2
	if a < mid {
		t.visitCanonical(2*node, lo, mid, a, b, fn)
	}
	if b > mid {
		t.visitCanonical(2*node+1, mid, hi, a, b, fn)
	}
}

// BeamCount returns the number of edges covering elementary interval i by
// summing the counts on the root-to-leaf path — the O(log m) counting query
// of §III-E that never touches the cover lists.
func (t *Tree) BeamCount(i int) int {
	node := t.leaves + i
	total := 0
	for node >= 1 {
		total += int(t.count[node])
		node /= 2
	}
	return total
}

// BeamReport calls visit for every edge covering elementary interval i.
func (t *Tree) BeamReport(i int, visit func(id int32)) {
	node := t.leaves + i
	for node >= 1 {
		for _, id := range t.cover[node] {
			visit(id)
		}
		node /= 2
	}
}

// StabCount returns the number of inserted intervals containing y.
func (t *Tree) StabCount(y float64) int {
	i := t.beamIndexOf(y)
	if i < 0 {
		return 0
	}
	return t.BeamCount(i)
}

// StabReport calls visit for every inserted interval containing y.
func (t *Tree) StabReport(y float64, visit func(id int32)) {
	i := t.beamIndexOf(y)
	if i < 0 {
		return
	}
	t.BeamReport(i, visit)
}

// beamIndexOf locates the elementary interval whose open range contains y,
// or -1 when y is outside the tree (or exactly on the extreme boundaries
// with no adjacent interval).
func (t *Tree) beamIndexOf(y float64) int {
	if len(t.ys) < 2 || y < t.ys[0] || y > t.ys[len(t.ys)-1] {
		return -1
	}
	i := sort.SearchFloat64s(t.ys, y)
	if i == len(t.ys) || t.ys[i] != y {
		i--
	}
	if i >= t.real {
		i = t.real - 1
	}
	return i
}

// AllBeams reports, for every scanbeam, the IDs of the edges spanning it.
// The result is allocated output-sensitively: per-beam counting queries run
// in parallel, an exclusive prefix sum over the counts sizes one flat
// backing array (total size k' in the paper's notation), then reporting
// queries fill it in parallel. Returns the per-beam slices and the total k'.
func (t *Tree) AllBeams(p int) (beams [][]int32, total int) {
	m := t.real
	counts := make([]int, m)
	par.ForEachItem(m, p, func(i int) { counts[i] = t.BeamCount(i) })

	offsets := make([]int, m)
	copy(offsets, counts)
	total = par.ExclusivePrefixSum(offsets)

	flat := make([]int32, total)
	beams = make([][]int32, m)
	par.ForEachItem(m, p, func(i int) {
		beams[i] = flat[offsets[i] : offsets[i]+counts[i] : offsets[i]+counts[i]]
		k := 0
		t.BeamReport(i, func(id int32) {
			beams[i][k] = id
			k++
		})
	})
	return beams, total
}

// Dedup sorts xs and removes duplicates in place, returning the shrunk
// slice. Used to turn event y-coordinates into tree boundaries.
func Dedup(xs []float64) []float64 {
	sort.Float64s(xs)
	out := xs[:0]
	for i, v := range xs {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
