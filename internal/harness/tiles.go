package harness

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"polyclip/internal/data"
	"polyclip/internal/engine"
	"polyclip/internal/tile"
	"polyclip/internal/wkt"
)

// Tiles runs the vector-tile cutting benchmark that closes the ROADMAP's
// tile-workload item: one synthetic multi-ring layer is cut into a z/x/y
// pyramid twice — naively (every candidate tile pays a full resolve+sweep
// of the raw layer) and through the prepared pipeline (resolve once, then
// per-tile fast paths). Two gates ride the counters for bench_tiles.sh:
//
//   - preparedGatePass: prepared throughput >= 2x naive;
//   - detGatePass: prepared output bit-identical at threads 1, 2 and 8.
//
// The fast-path fraction — pyramid leaves settled without a real sweep —
// is the output-sensitivity headline: it is what decouples tile cost from
// layer size.
func Tiles(rings, maxZoom, threads int, seed int64) Result {
	layer := data.TileLayer(data.TileLayerOptions{Rings: rings, Seed: seed})
	spec := tile.Spec{MinZoom: 0, MaxZoom: maxZoom, Extent: tile.SquareExtent(layer.BBox())}
	ctx := context.Background()
	total := spec.NumTiles()

	t0 := time.Now()
	naiveTiles, naiveStats, err := tile.Cut(ctx, layer, spec, tile.Options{
		Rule: engine.EvenOdd, Threads: threads, Naive: true, Cache: nil,
	})
	naive := time.Since(t0)
	if err != nil {
		return Result{Name: "tiles", Text: "tiles naive: " + err.Error()}
	}

	t1 := time.Now()
	prepTiles, prepStats, err := tile.Cut(ctx, layer, spec, tile.Options{
		Rule: engine.EvenOdd, Threads: threads, Cache: nil,
	})
	prep := time.Since(t1)
	if err != nil {
		return Result{Name: "tiles", Text: "tiles prepared: " + err.Error()}
	}

	// Determinism pin: the prepared cut at the contract thread counts.
	detGate := 1
	base := tilesDigest(prepTiles)
	for _, tc := range []int{1, 2, 8} {
		out, _, err := tile.Cut(ctx, layer, spec, tile.Options{
			Rule: engine.EvenOdd, Threads: tc, Cache: nil,
		})
		if err != nil || tilesDigest(out) != base {
			detGate = 0
			break
		}
	}

	speedup := float64(naive) / float64(prep)
	gate := 0
	if speedup >= 2 {
		gate = 1
	}
	sweeps := int64(prepStats.Prepared.Sweeps())
	fastPct := 0
	if total > 0 {
		fastPct = int(float64(total-sweeps) / float64(total) * 100)
	}
	tpsNaive := int(float64(total) / naive.Seconds())
	tpsPrep := int(float64(total) / prep.Seconds())

	header := row("run", "time_ms", "tiles/s", "emitted", "sweeps", "fast_%")
	rows := [][]string{
		row("naive", ms(naive), strconv.Itoa(tpsNaive), strconv.Itoa(len(naiveTiles)),
			strconv.FormatInt(naiveStats.Leaves, 10), "0"),
		row("prepared", ms(prep), strconv.Itoa(tpsPrep), strconv.Itoa(len(prepTiles)),
			strconv.FormatInt(sweeps, 10), strconv.Itoa(fastPct)),
	}
	text := fmt.Sprintf("Tile cutting — %d rings, zooms 0:%d (%d tiles), %d threads\n%s",
		rings, maxZoom, total, threads, formatRows(header, rows)) +
		fmt.Sprintf("routes: inside %d, outside %d, convex %d, band %d, rescued %d; pruned %d, filled %d\n",
			prepStats.Prepared.FastInside, prepStats.Prepared.FastOutside,
			prepStats.Prepared.ConvexClips, prepStats.Prepared.BandClips, prepStats.Prepared.Rescues,
			prepStats.Pruned, prepStats.Filled) +
		fmt.Sprintf("speedup %.2fx (gate >=2x: %v); deterministic at 1/2/8 threads: %v\n",
			speedup, gate == 1, detGate == 1)

	return Result{
		Name: "tiles",
		Text: text,
		Rows: rows,
		Counters: map[string]int{
			"rings":            rings,
			"pyramidTiles":     int(total),
			"emittedTiles":     len(prepTiles),
			"naiveMs":          int(naive.Milliseconds()),
			"preparedMs":       int(prep.Milliseconds()),
			"tilesPerSecNaive": tpsNaive,
			"tilesPerSecPrep":  tpsPrep,
			"speedupX100":      int(speedup * 100),
			"fastPathPct":      fastPct,
			"fastInside":       int(prepStats.Prepared.FastInside),
			"fastOutside":      int(prepStats.Prepared.FastOutside),
			"convexClips":      int(prepStats.Prepared.ConvexClips),
			"bandClips":        int(prepStats.Prepared.BandClips),
			"rescues":          int(prepStats.Prepared.Rescues),
			"prunedTiles":      int(prepStats.Pruned),
			"filledTiles":      int(prepStats.Filled),
			"peakRSSMiB":       peakRSSMiB(),
			"preparedGatePass": gate,
			"detGatePass":      detGate,
		},
	}
}

// tilesDigest is an FNV-1a hash over the exact textual form of every tile —
// key and full coordinate text — so any bitwise output difference flips it.
func tilesDigest(tiles []tile.Tile) uint64 {
	h := uint64(0xcbf29ce484222325)
	feed := func(s string) {
		for i := 0; i < len(s); i++ {
			h = (h ^ uint64(s[i])) * 0x100000001b3
		}
	}
	for _, t := range tiles {
		feed(fmt.Sprintf("%d/%d/%d:", t.Z, t.X, t.Y))
		feed(wkt.Marshal(t.Poly))
	}
	return h
}
