package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestIsSimple(t *testing.T) {
	if !Rect(0, 0, 2, 2).IsSimple() {
		t.Error("square should be simple")
	}
	if BowTie(0, 0, 2, 2).IsSimple() {
		t.Error("bow tie should not be simple")
	}
	if SelfIntersectingStar(Point{X: 0, Y: 0}, 2, 5, 0.1).IsSimple() {
		t.Error("pentagram should not be simple")
	}
	if !RegularPolygon(Point{X: 0, Y: 0}, 3, 17, 0.4).IsSimple() {
		t.Error("regular 17-gon should be simple")
	}
	// Ring with an overlapping spike (degenerate back-and-forth edge).
	spike := Ring{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 2, Y: 4}, {X: 2, Y: 6}, {X: 2, Y: 4}, {X: 0, Y: 4}}
	if spike.IsSimple() {
		t.Error("spiked ring should not be simple")
	}
}

func TestRemoveCollinear(t *testing.T) {
	r := Ring{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}}
	got := r.RemoveCollinear()
	if len(got) != 4 {
		t.Errorf("vertices = %d, want 4 (got %v)", len(got), got)
	}
	if math.Abs(got.Area()-4) > 1e-12 {
		t.Errorf("area = %v", got.Area())
	}
	// Duplicate vertices collapse too.
	d := Ring{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}}
	if got := d.RemoveCollinear(); len(got) != 4 {
		t.Errorf("dup vertices = %d, want 4", len(got))
	}
	// Fully collinear ring collapses to nil.
	line := Ring{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	if got := line.RemoveCollinear(); got != nil {
		t.Errorf("collinear ring = %v", got)
	}
}

func TestNormalizeOrientations(t *testing.T) {
	outer := Rect(0, 0, 10, 10)
	outer.Reverse()          // start CW
	hole := Rect(2, 2, 8, 8) // CCW (wrong for a hole)
	island := Rect(4, 4, 6, 6)
	island.Reverse() // CW (wrong for an island)
	p := Polygon{outer, hole, island}.Normalize()
	if !p[0].IsCCW() {
		t.Error("outer should be CCW")
	}
	if p[1].IsCCW() {
		t.Error("hole should be CW")
	}
	if !p[2].IsCCW() {
		t.Error("island should be CCW")
	}
	// Net signed area = 100 - 36 + 4 = 68.
	var net float64
	for _, r := range p {
		net += r.SignedArea()
	}
	if math.Abs(net-68) > 1e-12 {
		t.Errorf("net area = %v", net)
	}
}

func TestConvexHullSquarePlusInterior(t *testing.T) {
	pts := []Point{{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}, {1, 3}, {2, 1}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull = %v", hull)
	}
	if !hull.IsCCW() {
		t.Error("hull should be CCW")
	}
	if math.Abs(hull.Area()-16) > 1e-12 {
		t.Errorf("hull area = %v", hull.Area())
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if ConvexHull([]Point{{0, 0}, {1, 1}}) != nil {
		t.Error("two points should give nil hull")
	}
	if ConvexHull([]Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}) != nil {
		t.Error("collinear points should give nil hull")
	}
	if ConvexHull([]Point{{0, 0}, {0, 0}, {1, 0}, {1, 0}}) != nil {
		t.Error("two distinct points should give nil hull")
	}
}

func TestConvexHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{X: rng.NormFloat64() * 10, Y: rng.NormFloat64() * 10}
	}
	hull := ConvexHull(pts)
	if hull == nil {
		t.Fatal("nil hull")
	}
	poly := Polygon{hull}
	for _, p := range pts {
		onHull := false
		for _, h := range hull {
			if h == p {
				onHull = true
			}
		}
		if !onHull && !poly.ContainsPoint(p) {
			// Boundary points can be flaky with exact ray casting; verify by
			// hull-edge orientation instead.
			inside := true
			for i := range hull {
				j := (i + 1) % len(hull)
				if Orient(hull[i], hull[j], p) == Clockwise {
					inside = false
				}
			}
			if !inside {
				t.Fatalf("point %v outside hull", p)
			}
		}
	}
}

func TestCentroid(t *testing.T) {
	r := Rect(0, 0, 4, 2)
	c := r.Centroid()
	if math.Abs(c.X-2) > 1e-12 || math.Abs(c.Y-1) > 1e-12 {
		t.Errorf("centroid = %v", c)
	}
	// Centroid is translation-equivariant.
	r2 := r.Translate(10, -5)
	c2 := r2.Centroid()
	if math.Abs(c2.X-12) > 1e-12 || math.Abs(c2.Y+4) > 1e-12 {
		t.Errorf("translated centroid = %v", c2)
	}
	// Degenerate ring falls back to vertex average.
	line := Ring{{X: 0, Y: 0}, {X: 2, Y: 0}}
	lc := line.Centroid()
	if math.Abs(lc.X-1) > 1e-12 {
		t.Errorf("degenerate centroid = %v", lc)
	}
	if (Ring{}).Centroid() != (Point{}) {
		t.Error("empty centroid should be origin")
	}
}

func TestPerimeter(t *testing.T) {
	p := Polygon{Rect(0, 0, 3, 4)}
	if got := p.Perimeter(); math.Abs(got-14) > 1e-12 {
		t.Errorf("perimeter = %v", got)
	}
}
