package segtree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func buildSimple(t *testing.T, ivs []Interval, p int) *Tree {
	t.Helper()
	var ys []float64
	for _, iv := range ivs {
		ys = append(ys, iv.Lo, iv.Hi)
	}
	ys = Dedup(ys)
	return Build(ys, len(ivs), func(i int32) Interval { return ivs[i] }, p)
}

func TestDedup(t *testing.T) {
	got := Dedup([]float64{3, 1, 2, 1, 3, 3})
	if !reflect.DeepEqual(got, []float64{1, 2, 3}) {
		t.Errorf("Dedup = %v", got)
	}
	if got := Dedup(nil); len(got) != 0 {
		t.Errorf("Dedup(nil) = %v", got)
	}
}

func TestSingleInterval(t *testing.T) {
	tr := buildSimple(t, []Interval{{0, 10}}, 1)
	if tr.NumBeams() != 1 {
		t.Fatalf("beams = %d", tr.NumBeams())
	}
	if got := tr.StabCount(5); got != 1 {
		t.Errorf("StabCount(5) = %d", got)
	}
	if got := tr.StabCount(15); got != 0 {
		t.Errorf("StabCount(15) = %d", got)
	}
}

func TestCoverListsPlacement(t *testing.T) {
	// Three intervals over boundaries {0,1,3}: two elementary intervals.
	ivs := []Interval{{0, 3}, {0, 1}, {1, 3}}
	tr := buildSimple(t, ivs, 1)
	if tr.NumBeams() != 2 {
		t.Fatalf("beams = %d", tr.NumBeams())
	}
	wantPerBeam := [][]int32{{0, 1}, {0, 2}}
	for beam, want := range wantPerBeam {
		var got []int32
		tr.BeamReport(beam, func(id int32) { got = append(got, id) })
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		if !reflect.DeepEqual(got, want) {
			t.Errorf("beam %d cover = %v, want %v", beam, got, want)
		}
		if c := tr.BeamCount(beam); c != len(want) {
			t.Errorf("beam %d count = %d, want %d", beam, c, len(want))
		}
	}
}

func TestBeamBoundaries(t *testing.T) {
	tr := buildSimple(t, []Interval{{0, 1}, {1, 2}, {0, 2}}, 1)
	lo, hi := tr.Beam(0)
	if lo != 0 || hi != 1 {
		t.Errorf("beam 0 = [%v,%v]", lo, hi)
	}
	lo, hi = tr.Beam(1)
	if lo != 1 || hi != 2 {
		t.Errorf("beam 1 = [%v,%v]", lo, hi)
	}
	bs := tr.Boundaries()
	if !reflect.DeepEqual(bs, []float64{0, 1, 2}) {
		t.Errorf("boundaries = %v", bs)
	}
}

func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(60)
		ivs := make([]Interval, n)
		var ys []float64
		for i := range ivs {
			lo := float64(rng.Intn(100))
			hi := lo + 1 + float64(rng.Intn(50))
			ivs[i] = Interval{lo, hi}
			ys = append(ys, lo, hi)
		}
		ys = Dedup(ys)
		tr := Build(ys, n, func(i int32) Interval { return ivs[i] }, 4)

		for b := 0; b < tr.NumBeams(); b++ {
			lo, hi := tr.Beam(b)
			mid := (lo + hi) / 2
			var want []int32
			for id, iv := range ivs {
				if iv.Lo <= mid && mid <= iv.Hi {
					want = append(want, int32(id))
				}
			}
			var got []int32
			tr.BeamReport(b, func(id int32) { got = append(got, id) })
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d beam %d: got %v want %v", trial, b, got, want)
			}
			if got := tr.StabCount(mid); got != len(want) {
				t.Fatalf("trial %d StabCount(%v) = %d want %d", trial, mid, got, len(want))
			}
		}
	}
}

func TestAllBeamsMatchesPerBeamQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 500
	ivs := make([]Interval, n)
	var ys []float64
	for i := range ivs {
		lo := rng.Float64() * 1000
		hi := lo + rng.Float64()*200
		ivs[i] = Interval{lo, hi}
		ys = append(ys, lo, hi)
	}
	ys = Dedup(ys)
	tr := Build(ys, n, func(i int32) Interval { return ivs[i] }, 4)
	beams, total := tr.AllBeams(4)
	if len(beams) != tr.NumBeams() {
		t.Fatalf("beams = %d, want %d", len(beams), tr.NumBeams())
	}
	sum := 0
	for b, ids := range beams {
		sum += len(ids)
		var want []int32
		tr.BeamReport(b, func(id int32) { want = append(want, id) })
		got := append([]int32(nil), ids...)
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("beam %d mismatch", b)
		}
	}
	if sum != total {
		t.Errorf("total = %d, sum of beams = %d", total, sum)
	}
}

func TestParallelBuildMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 2000
	ivs := make([]Interval, n)
	var ys []float64
	for i := range ivs {
		lo := float64(rng.Intn(500))
		hi := lo + 1 + float64(rng.Intn(100))
		ivs[i] = Interval{lo, hi}
		ys = append(ys, lo, hi)
	}
	ys = Dedup(ys)
	span := func(i int32) Interval { return ivs[i] }
	seq := Build(append([]float64(nil), ys...), n, span, 1)
	parTree := Build(append([]float64(nil), ys...), n, span, 8)
	for b := 0; b < seq.NumBeams(); b++ {
		if seq.BeamCount(b) != parTree.BeamCount(b) {
			t.Fatalf("beam %d: seq %d par %d", b, seq.BeamCount(b), parTree.BeamCount(b))
		}
		var a, c []int32
		seq.BeamReport(b, func(id int32) { a = append(a, id) })
		parTree.BeamReport(b, func(id int32) { c = append(c, id) })
		sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
		sort.Slice(c, func(x, y int) bool { return c[x] < c[y] })
		if !reflect.DeepEqual(a, c) {
			t.Fatalf("beam %d cover mismatch", b)
		}
	}
}

func TestStabOutsideRange(t *testing.T) {
	tr := buildSimple(t, []Interval{{0, 1}}, 1)
	if tr.StabCount(-5) != 0 || tr.StabCount(99) != 0 {
		t.Error("stab outside range should be 0")
	}
	calls := 0
	tr.StabReport(-5, func(int32) { calls++ })
	if calls != 0 {
		t.Error("StabReport outside range should not visit")
	}
}

func TestStabAtSharedBoundary(t *testing.T) {
	// y exactly on an internal boundary resolves to the beam below it,
	// deterministically.
	tr := buildSimple(t, []Interval{{0, 1}, {1, 2}}, 1)
	got := tr.StabCount(1)
	if got != 1 {
		t.Errorf("StabCount(1) = %d, want 1", got)
	}
}
