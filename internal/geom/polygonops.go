package geom

import "sort"

// IsSimple reports whether the ring has no self-intersections: no two
// non-adjacent edges share a point and no two adjacent edges overlap.
func (r Ring) IsSimple() bool {
	edges := r.Edges(nil)
	n := len(edges)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			kind, p0, _ := SegIntersection(edges[i], edges[j])
			if kind == Disjoint {
				continue
			}
			if kind == Overlapping {
				return false
			}
			// Adjacent edges may share exactly their common endpoint.
			adjacent := j == i+1 || (i == 0 && j == n-1)
			if !adjacent {
				return false
			}
			shared := edges[i].B
			if i == 0 && j == n-1 {
				shared = edges[i].A
			}
			if p0 != shared {
				return false
			}
		}
	}
	return true
}

// RemoveCollinear returns the ring with vertices lying exactly on the
// segment between their neighbours removed, along with consecutive
// duplicates. Rings that collapse below three vertices return nil.
func (r Ring) RemoveCollinear() Ring {
	// Pass 1: drop consecutive duplicates (including the wrap pair).
	dedup := make(Ring, 0, len(r))
	for _, p := range r {
		if len(dedup) == 0 || p != dedup[len(dedup)-1] {
			dedup = append(dedup, p)
		}
	}
	for len(dedup) > 1 && dedup[len(dedup)-1] == dedup[0] {
		dedup = dedup[:len(dedup)-1]
	}
	n := len(dedup)
	if n < 3 {
		return nil
	}
	// Pass 2: drop vertices collinear between their (distinct) neighbours.
	out := make(Ring, 0, n)
	for i := 0; i < n; i++ {
		prev := dedup[(i+n-1)%n]
		cur := dedup[i]
		next := dedup[(i+1)%n]
		if Orient(prev, cur, next) == Collinear &&
			cur.Sub(prev).Dot(next.Sub(prev)) >= 0 && cur.Dist(prev) <= next.Dist(prev) {
			continue
		}
		out = append(out, cur)
	}
	if len(out) < 3 {
		return nil
	}
	return out
}

// Normalize reorients the polygon's rings by containment depth: rings
// contained in an even number of other rings (outer boundaries) become
// counter-clockwise, odd-depth rings (holes) clockwise. Rings must not
// cross each other (the clipping engines' output satisfies this). The
// polygon is modified in place and returned.
func (p Polygon) Normalize() Polygon {
	n := len(p)
	if n == 0 {
		return p
	}
	depth := make([]int, n)
	for i := 0; i < n; i++ {
		if len(p[i]) == 0 {
			continue
		}
		// Sample point: a vertex of ring i. Count rings containing it.
		sample := p[i][0]
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if (Polygon{p[j]}).ContainsPoint(sample) {
				depth[i]++
			}
		}
	}
	for i, r := range p {
		ccw := r.IsCCW()
		wantCCW := depth[i]%2 == 0
		if ccw != wantCCW {
			r.Reverse()
		}
	}
	return p
}

// ConvexHull returns the convex hull of the points as a counter-clockwise
// ring (Andrew's monotone chain). Returns nil for fewer than three
// non-collinear points.
func ConvexHull(pts []Point) Ring {
	if len(pts) < 3 {
		return nil
	}
	ps := make([]Point, len(pts))
	copy(ps, pts)
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].X != ps[b].X {
			return ps[a].X < ps[b].X
		}
		return ps[a].Y < ps[b].Y
	})
	// Dedup.
	uniq := ps[:0]
	for i, p := range ps {
		if i == 0 || p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) < 3 {
		return nil
	}

	var lower, upper []Point
	for _, p := range ps {
		for len(lower) >= 2 && Orient(lower[len(lower)-2], lower[len(lower)-1], p) != CounterClockwise {
			lower = lower[:len(lower)-1]
		}
		lower = append(lower, p)
	}
	for i := len(ps) - 1; i >= 0; i-- {
		p := ps[i]
		for len(upper) >= 2 && Orient(upper[len(upper)-2], upper[len(upper)-1], p) != CounterClockwise {
			upper = upper[:len(upper)-1]
		}
		upper = append(upper, p)
	}
	hull := append(lower[:len(lower)-1], upper[:len(upper)-1]...)
	if len(hull) < 3 {
		return nil
	}
	return Ring(hull)
}

// Centroid returns the area centroid of the ring.
func (r Ring) Centroid() Point {
	n := len(r)
	if n == 0 {
		return Point{}
	}
	// Computed relative to the first vertex for numerical stability far
	// from the origin.
	o := r[0]
	var cx, cy, a float64
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		pi, pj := r[i].Sub(o), r[j].Sub(o)
		cross := pi.Cross(pj)
		cx += (pi.X + pj.X) * cross
		cy += (pi.Y + pj.Y) * cross
		a += cross
	}
	if a == 0 {
		// Degenerate: average the vertices.
		var sx, sy float64
		for _, p := range r {
			sx += p.X
			sy += p.Y
		}
		return Point{X: sx / float64(n), Y: sy / float64(n)}
	}
	return Point{X: o.X + cx/(3*a), Y: o.Y + cy/(3*a)}
}

// Perimeter returns the total boundary length of the polygon.
func (p Polygon) Perimeter() float64 {
	var sum float64
	for _, e := range p.Edges() {
		sum += e.Len()
	}
	return sum
}
