package harness

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableI(t *testing.T) {
	r := TableI()
	if len(r.Rows) != 8 {
		t.Errorf("rows = %d, want 8 merge steps", len(r.Rows))
	}
	total := 0
	for _, row := range r.Rows {
		if row[3] != "" {
			total += len(strings.Fields(row[3]))
		}
	}
	if total != 16 {
		t.Errorf("inversions reported = %d, want 16", total)
	}
	if !strings.Contains(r.Text, "(9,1)") {
		t.Error("missing inversion (9,1)")
	}
}

func TestTableII(t *testing.T) {
	r := TableII()
	if len(r.Rows) == 0 {
		t.Fatal("empty scanbeam table")
	}
	if !strings.Contains(r.Text, "Scanbeam") {
		t.Error("missing header")
	}
}

func TestTableIII(t *testing.T) {
	r := TableIII(0.002, 1)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		polys, err := strconv.Atoi(row[2])
		if err != nil || polys < 1 {
			t.Errorf("bad poly count %q", row[2])
		}
	}
}

func TestFig7(t *testing.T) {
	r := Fig7([]int{200, 400}, 5)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestFig8(t *testing.T) {
	r := Fig8([]int{400}, []int{1, 2, 4}, 5)
	if len(r.Rows) != 1 || len(r.Rows[0]) != 5 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// Speedups must be positive numbers.
	for _, c := range r.Rows[0][2:] {
		v, err := strconv.ParseFloat(c, 64)
		if err != nil || v <= 0 {
			t.Errorf("speedup %q", c)
		}
	}
}

func TestFig9(t *testing.T) {
	r := Fig9([]int{1, 2}, []int{500, 1000}, 5)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestFig10SpeedupImprovesForLargeData(t *testing.T) {
	r := Fig10([]int{1, 4}, 0.002, 5)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestFig11(t *testing.T) {
	r := Fig11(4, 0.002, 5)
	if len(r.Rows) == 0 {
		t.Fatal("no per-thread rows")
	}
}

func TestFig12(t *testing.T) {
	r := Fig12(4, 0.002, 5)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil || v <= 0 {
			t.Errorf("speedup %q", row[4])
		}
	}
}

func TestPramValidation(t *testing.T) {
	r := PramValidation([]int{64, 256}, 5)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Rounds for n=256 should be far less than n (polylog).
	rounds, _ := strconv.Atoi(r.Rows[1][5])
	if rounds >= 512 {
		t.Errorf("sort rounds = %d, not polylog", rounds)
	}
}

func TestAblations(t *testing.T) {
	r := Ablations(5)
	if len(r.Rows) < 8 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	kinds := map[string]bool{}
	for _, row := range r.Rows {
		kinds[row[0]] = true
	}
	for _, want := range []string{"finder", "merge", "partition", "rect-clip"} {
		if !kinds[want] {
			t.Errorf("missing ablation %q", want)
		}
	}
}
