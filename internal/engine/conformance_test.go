package engine_test

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/guard"
	"polyclip/internal/wkt"

	// Registers all four engines: core contributes slabs + scanbeam and links
	// overlay + vatti for theirs.
	_ "polyclip/internal/core"
)

// diffCase mirrors the golden differential corpus schema (see the root
// package's differential test, which owns regeneration).
type diffCase struct {
	Name    string             `json:"name"`
	Subject string             `json:"subject"`
	Clip    string             `json:"clip"`
	Areas   map[string]float64 `json:"areas"`
}

const corpusDir = "../../testdata/differential"

// TestConformanceGoldenCorpus runs every registered engine against the golden
// differential corpus: each engine must reproduce the pinned area of every
// operation on every case it declares capable (all engines implement EvenOdd,
// the corpus rule), with internal fallbacks disabled so a drifting engine
// fails by name rather than being silently rescued.
func TestConformanceGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(corpusDir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden files in %s (err=%v)", corpusDir, err)
	}
	engines := engine.All()
	if len(engines) < 4 {
		t.Fatalf("registry has %d engines, want at least 4 (overlay, scanbeam, slabs, vatti)", len(engines))
	}
	for _, fn := range files {
		raw, err := os.ReadFile(fn)
		if err != nil {
			t.Fatal(err)
		}
		var c diffCase
		if err := json.Unmarshal(raw, &c); err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		t.Run(c.Name, func(t *testing.T) {
			subj, err := wkt.Unmarshal(c.Subject)
			if err != nil {
				t.Fatalf("subject WKT: %v", err)
			}
			clip, err := wkt.Unmarshal(c.Clip)
			if err != nil {
				t.Fatalf("clip WKT: %v", err)
			}
			scale := guard.MeasureBound(subj) + guard.MeasureBound(clip)
			for _, op := range engine.Ops() {
				want, ok := c.Areas[op.String()]
				if !ok {
					t.Fatalf("golden file has no %s area", op)
				}
				for _, e := range engines {
					if !e.Capabilities().Rules.Has(engine.EvenOdd) {
						continue // declared unsupported; the rule matrix covers the rejection
					}
					res, err := e.Clip(context.Background(), subj, clip, op,
						engine.Options{Threads: 4, NoFallback: true})
					if err != nil {
						t.Errorf("%s %s: %v", e.Name(), op, err)
						continue
					}
					if got := res.Polygon.Area(); math.Abs(got-want) > 1e-6*math.Max(scale, want) {
						t.Errorf("%s %s: area = %g, want %g", e.Name(), op, got, want)
					}
				}
			}
		})
	}
}

// reverse returns p with every ring's direction flipped (CCW <-> CW).
func reverse(p geom.Polygon) geom.Polygon {
	out := make(geom.Polygon, len(p))
	for i, r := range p {
		nr := make(geom.Ring, len(r))
		for j := range r {
			nr[j] = r[len(r)-1-j]
		}
		out[i] = nr
	}
	return out
}

// TestConformanceRuleMatrix drives every registered engine through the full
// fill-rule x operation matrix on winding-sensitive inputs (two
// same-direction overlapping rings, in both orientations, whose region
// differs between every pair of rules). Supported combinations must produce
// the analytic area; declared unsupported rules must be rejected with
// ErrUnsupported for every operation — never served silently.
func TestConformanceRuleMatrix(t *testing.T) {
	// Both rings CCW: winding +1 each, +2 on the overlap square.
	ccwSubject := geom.Polygon{
		{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}},
		{{X: 2, Y: 2}, {X: 6, Y: 2}, {X: 6, Y: 6}, {X: 2, Y: 6}},
	}
	ccwFrame := geom.RectPolygon(-1, -1, 7, 7) // area 64, contains the subject
	scenarios := []struct {
		name          string
		subject, clip geom.Polygon
		want          map[engine.FillRule]map[engine.Op]float64
	}{
		{
			name: "ccw", subject: ccwSubject, clip: ccwFrame,
			want: map[engine.FillRule]map[engine.Op]float64{
				// EvenOdd: the doubly-covered overlap square is a hole; region = 24.
				engine.EvenOdd: {
					engine.Intersection: 24, engine.Union: 64,
					engine.Difference: 0, engine.Xor: 40,
				},
				// NonZero: same-direction overlap stays interior; region = 28.
				engine.NonZero: {
					engine.Intersection: 28, engine.Union: 64,
					engine.Difference: 0, engine.Xor: 36,
				},
				// Positive: all winding is positive, so Positive == NonZero.
				engine.Positive: {
					engine.Intersection: 28, engine.Union: 64,
					engine.Difference: 0, engine.Xor: 36,
				},
				// Negative: nothing winds below zero — both operands are empty.
				engine.Negative: {
					engine.Intersection: 0, engine.Union: 0,
					engine.Difference: 0, engine.Xor: 0,
				},
			},
		},
		{
			// Every ring reversed: winding negates, so Positive and Negative
			// swap while the sign-blind rules are unchanged.
			name: "cw", subject: reverse(ccwSubject), clip: reverse(ccwFrame),
			want: map[engine.FillRule]map[engine.Op]float64{
				engine.EvenOdd: {
					engine.Intersection: 24, engine.Union: 64,
					engine.Difference: 0, engine.Xor: 40,
				},
				engine.NonZero: {
					engine.Intersection: 28, engine.Union: 64,
					engine.Difference: 0, engine.Xor: 36,
				},
				engine.Positive: {
					engine.Intersection: 0, engine.Union: 0,
					engine.Difference: 0, engine.Xor: 0,
				},
				engine.Negative: {
					engine.Intersection: 28, engine.Union: 64,
					engine.Difference: 0, engine.Xor: 36,
				},
			},
		},
	}
	for _, sc := range scenarios {
		for _, e := range engine.All() {
			caps := e.Capabilities()
			for _, rule := range engine.Rules() {
				for _, op := range engine.Ops() {
					res, err := e.Clip(context.Background(), sc.subject, sc.clip, op,
						engine.Options{Threads: 2, Rule: rule, NoFallback: true})
					if !caps.Rules.Has(rule) {
						if !errors.Is(err, engine.ErrUnsupported) {
							t.Errorf("%s %s %s/%s: err = %v, want ErrUnsupported", sc.name, e.Name(), rule, op, err)
						}
						continue
					}
					if err != nil {
						t.Errorf("%s %s %s/%s: %v", sc.name, e.Name(), rule, op, err)
						continue
					}
					if got := res.Polygon.Area(); math.Abs(got-sc.want[rule][op]) > 1e-6 {
						t.Errorf("%s %s %s/%s: area = %g, want %g", sc.name, e.Name(), rule, op, got, sc.want[rule][op])
					}
				}
			}
		}
	}
}

// TestConformanceTrapezoider checks that every engine declaring Trapezoids
// actually implements the Trapezoider interface and that its decomposition
// carries the right measure, and that no engine implements it undeclared.
func TestConformanceTrapezoider(t *testing.T) {
	a := geom.RectPolygon(0, 0, 4, 4)
	b := geom.RectPolygon(2, 2, 6, 6)
	for _, e := range engine.All() {
		tr, ok := e.(engine.Trapezoider)
		if e.Capabilities().Trapezoids != ok {
			t.Errorf("%s: Trapezoids capability %v but Trapezoider implemented = %v",
				e.Name(), e.Capabilities().Trapezoids, ok)
		}
		if !ok {
			continue
		}
		var sum float64
		for _, tz := range tr.Trapezoids(a, b, engine.Intersection) {
			sum += tz.Area()
		}
		if math.Abs(sum-4) > 1e-9 {
			t.Errorf("%s: trapezoid area sum = %g, want 4", e.Name(), sum)
		}
	}
}

// TestConformanceCancellation checks that every engine surfaces an
// already-cancelled context as an error instead of returning a result.
func TestConformanceCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := geom.RectPolygon(0, 0, 4, 4)
	b := geom.RectPolygon(2, 2, 6, 6)
	for _, e := range engine.All() {
		_, err := e.Clip(ctx, a, b, engine.Intersection, engine.Options{Threads: 1})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", e.Name(), err)
		}
	}
}
