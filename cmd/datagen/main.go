// Command datagen synthesizes the paper's evaluation datasets and writes
// them as WKT, one feature per line.
//
// Usage:
//
//	datagen -dataset ne_10m_urban_areas -scale 0.01 -o urban.wkt
//	datagen -pair 50000 -o pair.wkt         # §V-A synthetic subject+clip
//	datagen -features 1000000 -repeat 0.5   # batch-overlay feature set
//	datagen -tiles 256 -holes 0.1           # tile-cutting layer + pyramid spec
//	datagen -list                           # show Table III descriptors
//
// The -features mode emits the million-feature batch-overlay workload:
// many small features with a tunable MBR distribution (-dist uniform,
// clustered, or mixed) and a repeated-operand fraction (-repeat) for the
// arrangement-cache benchmark. Output is WKT by default; -format ndjson
// emits newline-delimited GeoJSON instead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"polyclip/internal/data"
	"polyclip/internal/geojson"
	"polyclip/internal/tile"
	"polyclip/internal/wkt"
)

func main() {
	dataset := flag.String("dataset", "", "Table III dataset name to synthesize")
	scale := flag.Float64("scale", 0.01, "dataset scale (1.0 = full paper size)")
	pair := flag.Int("pair", 0, "emit a synthetic subject/clip pair with this many edges each")
	tiles := flag.Int("tiles", 0, "emit a tile-cutting layer with this many rings")
	holes := flag.Float64("holes", 0.1, "fraction of rings given a hole in -tiles mode")
	features := flag.Int("features", 0, "emit a batch-overlay feature set with this many features")
	dist := flag.String("dist", "mixed", "feature MBR distribution: uniform, clustered, mixed")
	repeat := flag.Float64("repeat", 0, "fraction of features that are exact repeats (cache workload)")
	edges := flag.Int("edges", 6, "edges per feature in -features mode")
	format := flag.String("format", "wkt", "output format in -features mode: wkt or ndjson")
	seed := flag.Int64("seed", 42, "random seed")
	out := flag.String("o", "-", "output file (default stdout)")
	list := flag.Bool("list", false, "list the Table III descriptors")
	flag.Parse()

	if *list {
		fmt.Println("#  Name                       Polys    Edges     MeanEdgeLen")
		for i, d := range data.TableIII {
			fmt.Printf("%d  %-25s %8d %9d  %.5f\n", i+1, d.Name, d.Polys, d.Edges, d.MeanEdgeLen)
		}
		return
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	switch {
	case *features > 0:
		layer := data.Features(data.FeatureOptions{
			N: *features, Dist: *dist, RepeatFrac: *repeat, Edges: *edges, Seed: *seed,
		})
		switch *format {
		case "wkt":
			for _, f := range layer {
				fmt.Fprintln(bw, wkt.Marshal(f))
			}
		case "ndjson":
			for _, f := range layer {
				g, err := geojson.Marshal(f)
				if err != nil {
					fatalf("%v", err)
				}
				bw.Write(g)
				bw.WriteByte('\n')
			}
		default:
			fatalf("unknown -format %q (wkt or ndjson)", *format)
		}
		fmt.Fprintf(os.Stderr, "features: %d (%s, repeat %.2f, %d edges each)\n",
			len(layer), *dist, *repeat, *edges)
	case *tiles > 0:
		layer := data.TileLayer(data.TileLayerOptions{
			Rings: *tiles, HoleFrac: *holes, Edges: *edges, Seed: *seed,
		})
		fmt.Fprintln(bw, wkt.Marshal(layer))
		ext := tile.SquareExtent(layer.BBox())
		spec := tile.Spec{MinZoom: 0, MaxZoom: 6, Extent: ext}
		sj, err := json.Marshal(spec)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "tiles layer: %d rings (%.0f%% holed); suggested pyramid spec: %s\n",
			len(layer), *holes*100, sj)
	case *pair > 0:
		subject, clip := data.SyntheticPair(*seed, *pair, *pair)
		fmt.Fprintln(bw, wkt.Marshal(subject))
		fmt.Fprintln(bw, wkt.Marshal(clip))
	case *dataset != "":
		d, ok := data.DescriptorByName(*dataset)
		if !ok {
			fatalf("unknown dataset %q (see -list)", *dataset)
		}
		layer := data.Layer(d, *scale, *seed)
		for _, f := range layer {
			fmt.Fprintln(bw, wkt.Marshal(f))
		}
		st := data.Stats(layer)
		fmt.Fprintf(os.Stderr, "%s: %d features, %d edges, mean edge %.5f\n",
			d.Name, st.Polys, st.Edges, st.MeanEdgeLen)
	default:
		fatalf("nothing to do: pass -dataset, -pair, -features, -tiles or -list")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
