package geom

import (
	"math"
	"math/bits"
)

// Digest is a 128-bit canonical fingerprint of a polygon's exact geometry:
// two independently mixed 64-bit lanes over the coordinate bit patterns and
// the ring structure. Equal polygons (same rings, same vertex order) always
// produce equal digests; at 128 bits, distinct polygons colliding is
// negligible even across billion-entry caches, which is what lets the
// arrangement cache key resolved operands by digest alone instead of
// retaining the operand geometry for verification.
//
// The digest is canonical over the value, not the representation: -0.0
// hashes as +0.0 (the two compare equal everywhere else in the pipeline),
// and ring boundaries are length-prefixed so moving a vertex between
// adjacent rings changes the digest even though the flattened coordinate
// stream is identical.
type Digest struct {
	Hi, Lo uint64
}

// IsZero reports whether d is the zero digest (the hash of no input is
// never zero, so the zero value can mean "unhashed").
func (d Digest) IsZero() bool { return d.Hi == 0 && d.Lo == 0 }

const (
	hashOffsetLo = 0xcbf29ce484222325 // FNV-1a 64-bit offset basis
	hashOffsetHi = 0x9e3779b97f4a7c15 // golden-gamma offset for the second lane
	hashPrimeLo  = 0x100000001b3      // FNV-1a 64-bit prime
	hashPrimeHi  = 0x9e3779b97f4a7c55 // odd multiplier for the second lane
)

// mix64 is the splitmix64 finalizer: a full-avalanche bijection so that
// low-entropy coordinate patterns (integer grids) spread over all bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// canonBits returns the canonical bit pattern of a coordinate: -0.0
// normalizes to +0.0, everything else (including NaN payloads, which
// validation rejects upstream anyway) hashes its IEEE-754 bits.
func canonBits(v float64) uint64 {
	if v == 0 {
		return 0
	}
	return math.Float64bits(v)
}

// Hash returns the canonical 128-bit digest of p. It is the cache key of
// the arrangement cache: repeated operands (shared basemaps, common clip
// masks) hash identically, so their resolved arrangements are computed
// once.
func Hash(p Polygon) Digest {
	lo := uint64(hashOffsetLo)
	hi := uint64(hashOffsetHi)
	feed := func(w uint64) {
		lo = (lo ^ w) * hashPrimeLo
		hi = (hi ^ bits.RotateLeft64(w, 31)) * hashPrimeHi
	}
	feed(uint64(len(p)))
	for _, r := range p {
		feed(uint64(len(r)))
		for _, pt := range r {
			feed(canonBits(pt.X))
			feed(canonBits(pt.Y))
		}
	}
	return Digest{Hi: mix64(hi), Lo: mix64(lo)}
}
