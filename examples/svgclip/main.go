// SVG output: clip two polygons with every operation and write the results
// as an SVG document (clip.svg) — the even-odd fill rule of the library maps
// directly onto SVG's fill-rule="evenodd".
package main

import (
	"fmt"
	"os"
	"strings"

	"polyclip"
	"polyclip/internal/geom"
)

func main() {
	a := polyclip.Polygon{geom.Star(geom.Point{X: 50, Y: 50}, 40, 18, 7, 0.3)}
	b := polyclip.Polygon{geom.SelfIntersectingStar(geom.Point{X: 75, Y: 60}, 40, 5, 0.8)}

	ops := []struct {
		op    polyclip.Op
		color string
	}{
		{polyclip.Intersection, "#e5484d"},
		{polyclip.Union, "#2a7de1"},
		{polyclip.Difference, "#30a46c"},
		{polyclip.Xor, "#8e4ec6"},
	}

	var sb strings.Builder
	sb.WriteString(`<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 560 140" font-family="sans-serif" font-size="6">` + "\n")
	for i, c := range ops {
		out := polyclip.Clip(a, b, c.op)
		dx := float64(i * 140)
		sb.WriteString(fmt.Sprintf(`<g transform="translate(%g,10)">`+"\n", dx))
		// Input outlines.
		sb.WriteString(pathOf(a, "none", "#999", 0.6))
		sb.WriteString(pathOf(b, "none", "#999", 0.6))
		// Result.
		sb.WriteString(pathOf(out, c.color, "#222", 0.8))
		sb.WriteString(fmt.Sprintf(`<text x="40" y="118">%s (area %.1f)</text>`+"\n", c.op, polyclip.Area(out)))
		sb.WriteString("</g>\n")
	}
	sb.WriteString("</svg>\n")

	if err := os.WriteFile("clip.svg", []byte(sb.String()), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("wrote clip.svg with", len(ops), "panels")
}

// pathOf renders a polygon as one SVG path with even-odd fill.
func pathOf(p polyclip.Polygon, fill, stroke string, width float64) string {
	var d strings.Builder
	for _, ring := range p {
		for i, pt := range ring {
			if i == 0 {
				fmt.Fprintf(&d, "M%.2f %.2f ", pt.X, pt.Y)
			} else {
				fmt.Fprintf(&d, "L%.2f %.2f ", pt.X, pt.Y)
			}
		}
		d.WriteString("Z ")
	}
	return fmt.Sprintf(`<path d="%s" fill="%s" fill-rule="evenodd" fill-opacity="0.7" stroke="%s" stroke-width="%g"/>`+"\n",
		strings.TrimSpace(d.String()), fill, stroke, width)
}
