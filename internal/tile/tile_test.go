package tile

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"polyclip/internal/acache"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/prepared"
	"polyclip/internal/vatti"
)

func testLayer() geom.Polygon {
	var p geom.Polygon
	rng := rand.New(rand.NewSource(11))
	for gy := 0; gy < 4; gy++ {
		for gx := 0; gx < 4; gx++ {
			c := geom.Point{X: float64(gx)*10 + 5, Y: float64(gy)*10 + 5}
			p = append(p, geom.RegularPolygon(c, 2+rng.Float64()*2.5, 3+rng.Intn(6), rng.Float64()))
			if (gx+gy)%3 == 0 {
				p = append(p, geom.RegularPolygon(c, 1, 4, rng.Float64()))
			}
		}
	}
	p = append(p, geom.Star(geom.Point{X: 20, Y: 20}, 12, 5, 9, 0.2))
	return p
}

func testSpec(layer geom.Polygon, minZ, maxZ int) Spec {
	return Spec{MinZoom: minZ, MaxZoom: maxZ, Extent: SquareExtent(layer.BBox())}
}

func key(t Tile) [3]int64 { return [3]int64{int64(t.Z), int64(t.X), int64(t.Y)} }

// TestCutMatchesNaive pins the heart of the pipeline: prepared quadtree
// cutting emits the same tile keys as exhaustive per-tile clipping, and each
// tile covers the same region.
func TestCutMatchesNaive(t *testing.T) {
	layer := testLayer()
	spec := testSpec(layer, 0, 4)
	for _, rule := range engine.Rules() {
		fast, fstats, err := Cut(context.Background(), layer, spec, Options{Rule: rule, Threads: 4})
		if err != nil {
			t.Fatalf("%v: %v", rule, err)
		}
		naive, _, err := Cut(context.Background(), layer, spec, Options{Rule: rule, Threads: 4, Naive: true})
		if err != nil {
			t.Fatalf("%v naive: %v", rule, err)
		}
		nm := make(map[[3]int64]geom.Polygon, len(naive))
		for _, tl := range naive {
			nm[key(tl)] = tl.Poly
		}
		if len(fast) != len(naive) {
			t.Errorf("%v: %d prepared tiles vs %d naive", rule, len(fast), len(naive))
		}
		for _, tl := range fast {
			want, ok := nm[key(tl)]
			if !ok {
				t.Errorf("%v: tile %d/%d/%d missing from naive cut", rule, tl.Z, tl.X, tl.Y)
				continue
			}
			b := spec.Box(tl.Z, tl.X, tl.Y)
			tol := 1e-9 * b.Width() * b.Height()
			if d := vatti.ClipRule(tl.Poly, want, engine.Xor, engine.EvenOdd).Area(); d > tol {
				t.Errorf("%v: tile %d/%d/%d differs from naive by area %g", rule, tl.Z, tl.X, tl.Y, d)
			}
		}
		// Under Negative every CCW-only ring reads empty, so the pyramid
		// prunes at the root; for the filled rules both fast paths must fire.
		if len(fast) > 0 && (fstats.Prepared.FastInside == 0 || fstats.Prepared.FastOutside == 0) {
			t.Errorf("%v: fast paths never taken: %+v", rule, fstats.Prepared)
		}
		if rule == engine.Negative && len(fast) != 0 {
			t.Errorf("negative: CCW-only layer produced %d tiles", len(fast))
		}
	}
}

// TestCutDeterministic pins bit-identical output at the contract thread
// counts 1/2/8.
func TestCutDeterministic(t *testing.T) {
	layer := testLayer()
	spec := testSpec(layer, 0, 5)
	var base string
	for _, threads := range []int{1, 2, 8} {
		tiles, _, err := Cut(context.Background(), layer, spec, Options{Rule: engine.NonZero, Threads: threads})
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		s := fmt.Sprint(tiles)
		if base == "" {
			base = s
		} else if s != base {
			t.Fatalf("threads=%d: output differs from threads=1", threads)
		}
	}
}

// TestCutAreaConservation: at every zoom the cut is a partition, so tile
// areas sum to the area of layer ∩ extent — the chaos-family invariant.
func TestCutAreaConservation(t *testing.T) {
	layer := testLayer()
	spec := testSpec(layer, 0, 5)
	tiles, _, err := Cut(context.Background(), layer, spec, Options{Rule: engine.EvenOdd})
	if err != nil {
		t.Fatal(err)
	}
	want := prepared.NaiveClipRect(layer, spec.Extent, engine.EvenOdd).Area()
	sums := make(map[int]float64)
	for _, tl := range tiles {
		sums[tl.Z] += tl.Poly.Area()
	}
	for z := spec.MinZoom; z <= spec.MaxZoom; z++ {
		if d := math.Abs(sums[z] - want); d > 1e-6*want {
			t.Errorf("zoom %d: tile areas sum to %g, layer∩extent is %g", z, sums[z], want)
		}
	}
}

// TestStatsAccounting: every leaf tile of the pyramid is pruned, filled, or
// clipped — no tile is visited twice or dropped — and for a boundary-sparse
// layer (one big disk) the vast majority are settled wholesale.
func TestStatsAccounting(t *testing.T) {
	layer := geom.Polygon{geom.RegularPolygon(geom.Point{X: 20, Y: 20}, 15, 64, 0)}
	spec := testSpec(layer, 0, 5)
	for _, threads := range []int{1, 8} {
		_, st, err := Cut(context.Background(), layer, spec, Options{Rule: engine.EvenOdd, Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		if got := st.Pruned + st.Filled + st.Leaves; got != spec.NumTiles() {
			t.Errorf("threads=%d: pruned %d + filled %d + leaves %d = %d, want %d",
				threads, st.Pruned, st.Filled, st.Leaves, got, spec.NumTiles())
		}
		if st.Zooms != 6 {
			t.Errorf("zooms = %d, want 6", st.Zooms)
		}
		// Output-sensitivity: the deep zoom has 1024+ tiles but only the
		// boundary's share may reach a real clip.
		if st.Leaves >= spec.NumTiles()/2 {
			t.Errorf("threads=%d: %d of %d tiles reached a clip — pyramid not pruning", threads, st.Leaves, spec.NumTiles())
		}
	}
}

// TestCutCache: a shared cache canonicalizes the layer once across cuts.
func TestCutCache(t *testing.T) {
	layer := testLayer()
	spec := testSpec(layer, 0, 3)
	cache := acache.New(32 << 20)
	opt := Options{Rule: engine.Positive, Cache: cache}
	a, _, err := Cut(context.Background(), layer, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Cut(context.Background(), layer, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("cached cut differs from first cut")
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestSpecValidate(t *testing.T) {
	good := geom.BBox{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{0, 3, good}, true},
		{Spec{2, 2, good}, true},
		{Spec{-1, 3, good}, false},
		{Spec{3, 2, good}, false},
		{Spec{0, MaxZoomLimit + 1, good}, false},
		{Spec{0, 3, geom.BBox{}}, false},
	}
	for i, tc := range cases {
		if err := tc.spec.Validate(); (err == nil) != tc.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, tc.ok)
		}
	}
	if _, _, err := Cut(context.Background(), nil, Spec{MinZoom: -1}, Options{}); err == nil {
		t.Error("Cut accepted an invalid spec")
	}
}

func TestSpecGeometry(t *testing.T) {
	s := Spec{MinZoom: 0, MaxZoom: 2, Extent: geom.BBox{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8}}
	if n := s.NumTiles(); n != 1+4+16 {
		t.Errorf("NumTiles = %d, want 21", n)
	}
	if b := s.Box(2, 1, 2); b != (geom.BBox{MinX: 2, MinY: 4, MaxX: 4, MaxY: 6}) {
		t.Errorf("Box(2,1,2) = %+v", b)
	}
	// Adjacent tiles share bit-identical boundaries.
	if s.Box(2, 1, 2).MaxX != s.Box(2, 2, 2).MinX {
		t.Error("adjacent tile boundaries disagree")
	}
	sq := SquareExtent(geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 2})
	if w, h := sq.Width(), sq.Height(); math.Abs(w-h) > 1e-12 || w <= 10 {
		t.Errorf("SquareExtent not a padded square: %gx%g", w, h)
	}
	sqp := SquareExtent(geom.BBox{MinX: 3, MinY: 4, MaxX: 3, MaxY: 4})
	if sqp.Width() <= 0 {
		t.Error("SquareExtent of a point must have positive side")
	}
}

// TestEmptyLayer: cutting nothing yields nothing, at every zoom, both modes.
func TestEmptyLayer(t *testing.T) {
	spec := Spec{MinZoom: 0, MaxZoom: 3, Extent: geom.BBox{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}}
	for _, naive := range []bool{false, true} {
		tiles, st, err := Cut(context.Background(), nil, spec, Options{Naive: naive})
		if err != nil {
			t.Fatal(err)
		}
		if len(tiles) != 0 {
			t.Errorf("naive=%v: empty layer produced %d tiles", naive, len(tiles))
		}
		if naive && st.Pruned != spec.NumTiles() {
			t.Errorf("naive empty cut pruned %d, want %d", st.Pruned, spec.NumTiles())
		}
	}
}

// TestLayerOutsideExtent: a layer wholly off-pyramid cuts to nothing.
func TestLayerOutsideExtent(t *testing.T) {
	layer := geom.Polygon{geom.Rect(100, 100, 110, 110)}
	spec := Spec{MinZoom: 0, MaxZoom: 4, Extent: geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}}
	for _, naive := range []bool{false, true} {
		tiles, _, err := Cut(context.Background(), layer, spec, Options{Naive: naive})
		if err != nil {
			t.Fatal(err)
		}
		if len(tiles) != 0 {
			t.Errorf("naive=%v: off-extent layer produced %d tiles", naive, len(tiles))
		}
	}
}

// TestCanceledContext: cancellation surfaces as an error from Cut.
func TestCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	layer := testLayer()
	spec := testSpec(layer, 4, 6)
	if _, _, err := Cut(ctx, layer, spec, Options{Rule: engine.EvenOdd}); err == nil {
		t.Error("Cut ignored a canceled context")
	}
	if _, _, err := Cut(ctx, layer, spec, Options{Naive: true}); err == nil {
		t.Error("naive Cut ignored a canceled context")
	}
}

func TestGridRange(t *testing.T) {
	cases := []struct {
		vmin, vmax float64
		lo, hi     int32
	}{
		{2, 6, 1, 4},    // interior span
		{-5, 20, 0, 4},  // clamped both sides
		{12, 20, 0, 0},  // fully right of extent
		{-9, -1, 0, 0},  // fully left of extent
		{4, 4, 2, 3},    // point on a grid line
		{0, 8, 0, 4},    // exact extent
	}
	for i, tc := range cases {
		lo, hi := gridRange(tc.vmin, tc.vmax, 0, 8, 4)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("case %d: gridRange = [%d, %d), want [%d, %d)", i, lo, hi, tc.lo, tc.hi)
		}
	}
}
