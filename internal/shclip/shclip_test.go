package shclip

import (
	"math"
	"math/rand"
	"testing"

	"polyclip/internal/geom"
)

func TestSHSquareInWindow(t *testing.T) {
	subj := geom.Rect(1, 1, 3, 3)
	win := geom.Rect(0, 0, 10, 10)
	got := SutherlandHodgman(subj, win)
	if math.Abs(got.Area()-4) > 1e-12 {
		t.Errorf("area = %v, want 4", got.Area())
	}
}

func TestSHSquareClipped(t *testing.T) {
	subj := geom.Rect(-2, -2, 2, 2)
	win := geom.Rect(0, 0, 10, 10)
	got := SutherlandHodgman(subj, win)
	if math.Abs(got.Area()-4) > 1e-12 {
		t.Errorf("area = %v, want 4 (quadrant)", got.Area())
	}
}

func TestSHTriangleAgainstTriangle(t *testing.T) {
	subj := geom.Ring{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 2, Y: 4}}
	win := geom.Ring{{X: 0, Y: 1}, {X: 2, Y: -3}, {X: 4, Y: 1}}
	got := SutherlandHodgman(subj, win)
	if got.Area() <= 0 {
		t.Error("expected nonempty clip")
	}
	// Every output vertex must be inside (or on) both operands' hulls.
	for _, p := range got {
		if p.Y > 1+1e-9 {
			t.Errorf("vertex %v above clip hull", p)
		}
	}
}

func TestSHDisjoint(t *testing.T) {
	subj := geom.Rect(20, 20, 30, 30)
	win := geom.Rect(0, 0, 10, 10)
	if got := SutherlandHodgman(subj, win); len(got) != 0 {
		t.Errorf("disjoint clip = %v", got)
	}
}

func TestSHConcaveSubjectArea(t *testing.T) {
	// U-shape clipped to a band across the arms: area must match the
	// analytic value even though SH emits bridge edges (signed area is
	// still correct).
	u := geom.Ring{
		{X: 0, Y: 0}, {X: 6, Y: 0}, {X: 6, Y: 5}, {X: 4, Y: 5},
		{X: 4, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 5}, {X: 0, Y: 5},
	}
	win := geom.Rect(-1, 3, 7, 6)
	got := SutherlandHodgman(u, win)
	// Arms: [0,2]x[3,5] and [4,6]x[3,5] => 4 + 4 = 8.
	if math.Abs(got.SignedArea()-8) > 1e-9 {
		t.Errorf("signed area = %v, want 8", got.SignedArea())
	}
}

func TestClipToRect(t *testing.T) {
	subj := geom.RegularPolygon(geom.Point{X: 0, Y: 0}, 10, 16, 0.1)
	box := geom.BBox{MinX: -3, MinY: -3, MaxX: 3, MaxY: 3}
	got := ClipToRect(subj, box)
	// Fully covering polygon clipped to box = box itself.
	if math.Abs(got.Area()-36) > 1e-9 {
		t.Errorf("area = %v, want 36", got.Area())
	}
}

func TestLiangBarskyInside(t *testing.T) {
	box := geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	s := geom.Segment{A: geom.Point{X: 1, Y: 1}, B: geom.Point{X: 9, Y: 9}}
	got, ok := LiangBarsky(s, box)
	if !ok || got != s {
		t.Errorf("inside segment altered: %v %v", got, ok)
	}
}

func TestLiangBarskyCrossing(t *testing.T) {
	box := geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	s := geom.Segment{A: geom.Point{X: -5, Y: 5}, B: geom.Point{X: 15, Y: 5}}
	got, ok := LiangBarsky(s, box)
	if !ok {
		t.Fatal("crossing segment rejected")
	}
	if got.A != (geom.Point{X: 0, Y: 5}) || got.B != (geom.Point{X: 10, Y: 5}) {
		t.Errorf("got %v", got)
	}
}

func TestLiangBarskyOutside(t *testing.T) {
	box := geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	cases := []geom.Segment{
		{A: geom.Point{X: -5, Y: -5}, B: geom.Point{X: -1, Y: -1}},
		{A: geom.Point{X: 11, Y: 0}, B: geom.Point{X: 20, Y: 10}},
		{A: geom.Point{X: -1, Y: 11}, B: geom.Point{X: 11, Y: 12}},
	}
	for _, s := range cases {
		if _, ok := LiangBarsky(s, box); ok {
			t.Errorf("outside segment %v accepted", s)
		}
	}
}

func TestLiangBarskyDiagonalCorner(t *testing.T) {
	box := geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	s := geom.Segment{A: geom.Point{X: -2, Y: 8}, B: geom.Point{X: 8, Y: 18}}
	got, ok := LiangBarsky(s, box)
	if !ok {
		t.Fatal("corner-cutting segment rejected")
	}
	if math.Abs(got.A.X-0) > 1e-12 || math.Abs(got.B.Y-10) > 1e-12 {
		t.Errorf("got %v", got)
	}
}

func TestLiangBarskyMatchesSHOnRandomSegments(t *testing.T) {
	box := geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	rng := rand.New(rand.NewSource(83))
	for i := 0; i < 500; i++ {
		s := geom.Segment{
			A: geom.Point{X: rng.Float64()*30 - 10, Y: rng.Float64()*30 - 10},
			B: geom.Point{X: rng.Float64()*30 - 10, Y: rng.Float64()*30 - 10},
		}
		got, ok := LiangBarsky(s, box)
		if ok {
			for _, p := range []geom.Point{got.A, got.B} {
				if p.X < -1e-9 || p.X > 10+1e-9 || p.Y < -1e-9 || p.Y > 10+1e-9 {
					t.Fatalf("clipped endpoint %v outside box", p)
				}
			}
			// Clipped endpoints must stay on the original segment.
			if s.DistToPoint(got.A) > 1e-9 || s.DistToPoint(got.B) > 1e-9 {
				t.Fatalf("clipped point off the line: %v %v", got.A, got.B)
			}
		}
	}
}
