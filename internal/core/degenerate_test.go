package core

import (
	"context"
	"math"
	"testing"

	"polyclip/internal/engine"
	"polyclip/internal/geom"
)

func TestPruneThinSlabs(t *testing.T) {
	// A boundary that would leave a slab thinner than two snap cells is
	// dropped; the survivors keep their exact (event-aligned) values.
	b := pruneThinSlabs([]float64{0, 1, 10}, 2)
	if len(b) != 2 || b[0] != 0 || b[1] != 10 {
		t.Errorf("bounds = %v, want [0 10]", b)
	}
	b = pruneThinSlabs([]float64{0, 9.6, 10}, 2)
	if len(b) != 2 {
		t.Errorf("bounds = %v, want [0 10]", b)
	}
	// Two boundaries closer than two cells keep only the first.
	b = pruneThinSlabs([]float64{0, 4.1, 6.3, 10}, 2)
	if len(b) != 3 || b[1] != 4.1 {
		t.Errorf("bounds = %v, want [0 4.1 10]", b)
	}
	// Well-separated boundaries are never moved.
	b = pruneThinSlabs([]float64{0, 3.67, 7, 10}, 1e-9)
	if len(b) != 4 || b[1] != 3.67 || b[2] != 7 {
		t.Errorf("bounds = %v, want [0 3.67 7 10]", b)
	}
	// eps <= 0 and trivial inputs pass through.
	b = pruneThinSlabs([]float64{0, 1, 10}, 0)
	if len(b) != 3 || b[1] != 1 {
		t.Errorf("bounds = %v, want [0 1 10]", b)
	}
}

// TestSlabsSubEpsEventY pins the slab cut against the pair snap grid: a
// degenerate sliver operand contributes an event y one unit above the slab
// floor while the pair grid (sized by the 2e12 extent) is two units coarse.
// An unsnapped cut at y=1 makes each slab host round its sub-cell strip
// differently and the merged union overshoots by ~10%.
func TestSlabsSubEpsEventY(t *testing.T) {
	sliver := geom.Polygon{{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 0, Y: 1}}}
	tri := geom.Polygon{{{X: 0, Y: 0}, {X: 2e12, Y: 0}, {X: 0, Y: 10}}}
	want := 1e13 // the triangle: the sliver has zero area
	for _, threads := range []int{1, 2, 4} {
		out, _, err := ClipPairCtx(context.Background(), sliver, tri, Union,
			Options{Threads: threads, NoFallback: true})
		if err != nil {
			t.Fatalf("threads=%d: %v", threads, err)
		}
		if got := out.Area(); math.Abs(got-want) > 1e-6*want {
			t.Errorf("threads=%d: union area = %g, want %g", threads, got, want)
		}
	}
}

// TestSlabsWindingMixedExtent pins the winding-rule operand normalization
// onto the pair snap grid: resolving an operand in its own extent context
// picks a different grid than the pair arrangement every other engine
// sweeps, and the slab result drifts (a 2e12-wide sliver clip against unit
// cells moved the positive-rule difference from 3 to 8).
func TestSlabsWindingMixedExtent(t *testing.T) {
	cells := geom.Polygon{
		{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}},
		{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 2, Y: 2}, {X: 1, Y: 2}},
		{{X: 2, Y: 0}, {X: 3, Y: 0}, {X: 3, Y: 1}, {X: 2, Y: 1}},
	}
	sliver := geom.Polygon{{{X: 0, Y: 0}, {X: 2e12, Y: 0}, {X: 0, Y: 1e-10}}}
	for _, rule := range []engine.FillRule{engine.NonZero, engine.Positive, engine.Negative} {
		for _, op := range []Op{Intersection, Union, Difference, Xor} {
			var slabs, overlay float64
			for _, e := range engine.All() {
				res, err := e.Clip(context.Background(), cells, sliver, op,
					engine.Options{Threads: 2, Rule: rule, NoFallback: true})
				if err != nil {
					t.Fatalf("%s %v %v: %v", e.Name(), rule, op, err)
				}
				switch e.Name() {
				case "slabs":
					slabs = res.Polygon.Area()
				case "overlay":
					overlay = res.Polygon.Area()
				}
			}
			if math.Abs(slabs-overlay) > 1e-6*(1+overlay) {
				t.Errorf("%v %v: slabs area %g, overlay area %g", rule, op, slabs, overlay)
			}
		}
	}
}
