package geojson

import (
	"errors"
	"strings"
	"testing"

	"polyclip/internal/geom"
)

func collect(t *testing.T, doc string) []geom.Polygon {
	t.Helper()
	var out []geom.Polygon
	if err := DecodeFeatures(strings.NewReader(doc), func(p geom.Polygon) error {
		out = append(out, p)
		return nil
	}); err != nil {
		t.Fatalf("DecodeFeatures: %v", err)
	}
	return out
}

const squareFeature = `{"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[0,0],[2,0],[2,2],[0,2],[0,0]]]}}`

func TestDecodeFeaturesCollection(t *testing.T) {
	doc := `{"type":"FeatureCollection","features":[` +
		squareFeature + `,` +
		`{"type":"Feature","geometry":null},` +
		`{"type":"Feature","geometry":{"type":"MultiPolygon","coordinates":[[[[4,4],[5,4],[5,5],[4,4]]],[[[6,6],[7,6],[7,7],[6,6]]]]}}` +
		`]}`
	out := collect(t, doc)
	if len(out) != 2 {
		t.Fatalf("got %d features, want 2 (null geometry skipped)", len(out))
	}
	if len(out[0]) != 1 || len(out[0][0]) != 4 {
		t.Errorf("feature 0: got %d rings / %d pts", len(out[0]), len(out[0][0]))
	}
	if len(out[1]) != 2 {
		t.Errorf("feature 1: got %d rings, want 2 (MultiPolygon flattened)", len(out[1]))
	}
}

// Key order must not matter: "features" before "type" still streams.
func TestDecodeFeaturesKeyOrder(t *testing.T) {
	doc := `{"features":[` + squareFeature + `],"type":"FeatureCollection","name":"x"}`
	if got := collect(t, doc); len(got) != 1 {
		t.Fatalf("got %d features, want 1", len(got))
	}
}

func TestDecodeFeaturesNewlineDelimited(t *testing.T) {
	doc := squareFeature + "\n" +
		`{"type":"Polygon","coordinates":[[[0,0],[1,0],[1,1],[0,0]]]}` + "\n" +
		`{"type":"Feature","geometry":null}` + "\n" +
		`{"type":"MultiPolygon","coordinates":[[[[3,3],[4,3],[4,4],[3,3]]]]}` + "\n"
	out := collect(t, doc)
	if len(out) != 3 {
		t.Fatalf("got %d features, want 3", len(out))
	}
}

func TestDecodeFeaturesEmptyInput(t *testing.T) {
	if got := collect(t, ""); len(got) != 0 {
		t.Fatalf("empty input emitted %d features", len(got))
	}
	if got := collect(t, `{"type":"FeatureCollection","features":[]}`); len(got) != 0 {
		t.Fatalf("empty collection emitted %d features", len(got))
	}
}

func TestDecodeFeaturesEmitError(t *testing.T) {
	sentinel := errors.New("stop")
	n := 0
	doc := squareFeature + "\n" + squareFeature + "\n"
	err := DecodeFeatures(strings.NewReader(doc), func(geom.Polygon) error {
		n++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("emit error not propagated: %v", err)
	}
	if n != 1 {
		t.Errorf("emit called %d times after error, want 1", n)
	}
}

func TestDecodeFeaturesBadGeometry(t *testing.T) {
	doc := `{"type":"FeatureCollection","features":[` + squareFeature + `,` +
		`{"type":"Feature","geometry":{"type":"Polygon","coordinates":[[["x",0]]]}}]}`
	err := DecodeFeatures(strings.NewReader(doc), func(geom.Polygon) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "feature 1") {
		t.Fatalf("want error naming feature 1, got %v", err)
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error does not wrap *ParseError: %v", err)
	}
}

func TestDecodeFeaturesUnsupportedStandalone(t *testing.T) {
	err := DecodeFeatures(strings.NewReader(`{"type":"LineString","coordinates":[[0,0],[1,1]]}`),
		func(geom.Polygon) error { return nil })
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Token != "LineString" {
		t.Fatalf("want ParseError near LineString, got %v", err)
	}
}

func TestDecodeFeaturesNonObject(t *testing.T) {
	err := DecodeFeatures(strings.NewReader(`[1,2,3]`), func(geom.Polygon) error { return nil })
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("want ParseError for non-object input, got %v", err)
	}
}

func TestDecodeFeaturesTruncated(t *testing.T) {
	doc := `{"type":"FeatureCollection","features":[` + squareFeature
	err := DecodeFeatures(strings.NewReader(doc), func(geom.Polygon) error { return nil })
	if err == nil {
		t.Fatal("truncated document decoded without error")
	}
}

// UnmarshalLayer, rebuilt on the streaming path, keeps its strict contract.
func TestUnmarshalLayerStreamingEquivalence(t *testing.T) {
	doc := `{"type":"FeatureCollection","features":[` + squareFeature + `]}`
	layer, err := UnmarshalLayer([]byte(doc))
	if err != nil || len(layer) != 1 {
		t.Fatalf("UnmarshalLayer: %v (%d features)", err, len(layer))
	}
	if _, err := UnmarshalLayer([]byte(`{"features":[` + squareFeature + `]}`)); err == nil {
		t.Error("UnmarshalLayer accepted a collection with no type")
	}
	if _, err := UnmarshalLayer([]byte(squareFeature)); err == nil {
		t.Error("UnmarshalLayer accepted a bare Feature")
	}
}
