package polyclip

import (
	"math"
	"math/rand"
	"testing"

	"polyclip/internal/arrange"
	"polyclip/internal/geom"
)

// TestSelfClipPolygram pins the self-touching-polygram regression (chaos
// seed 7 case 195): clipping a self-intersecting {11/2} polygram against
// itself must reproduce its resolved even-odd area exactly. Before operands
// were pre-resolved through internal/arrange, the two copies of each
// interior self-crossing were split at points computed with the segment
// arguments in opposite orders; SegIntersection is not bit-symmetric under
// argument swap, so the twin split points could snap to adjacent grid cells
// and break the subject/clip winding symmetry (A∩A lost the area around
// its crossings).
func TestSelfClipPolygram(t *testing.T) {
	polygram := func(cx, cy, r float64, n, k int, phase float64) Ring {
		ring := make(Ring, 0, n)
		for i := 0; i < n; i++ {
			a := phase + 2*math.Pi*float64(i*k%n)/float64(n)
			ring = append(ring, Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)})
		}
		return ring
	}
	// The exact geometry of chaos seed 7 case 195.
	rng := rand.New(rand.NewSource(7 + 195*1_000_003))
	n := 5 + 2*rng.Intn(4)
	a := Polygon{polygram(0, 0, 8+4*rng.Float64(), n, 2, rng.Float64())}

	want := arrange.Resolve(geom.Polygon(a)).Area()
	if want <= 0 {
		t.Fatalf("oracle area = %g, want positive", want)
	}
	tol := 1e-9 * want
	for _, eng := range []struct {
		name string
		opt  Options
	}{
		{"default", Options{}},
		{"slabs", Options{Algorithm: AlgoSlabs, Threads: 4, NoFallback: true}},
		{"scanbeam", Options{Algorithm: AlgoScanbeam, Threads: 4, NoFallback: true}},
		{"vatti", Options{Algorithm: AlgoSequential, Threads: 1, NoFallback: true}},
	} {
		inter, _ := ClipWith(a, a, Intersection, eng.opt)
		union, _ := ClipWith(a, a, Union, eng.opt)
		diff, _ := ClipWith(a, a, Difference, eng.opt)
		if got := Area(inter); math.Abs(got-want) > tol {
			t.Errorf("%s: A∩A area = %.15g, want %.15g", eng.name, got, want)
		}
		if got := Area(union); math.Abs(got-want) > tol {
			t.Errorf("%s: A∪A area = %.15g, want %.15g", eng.name, got, want)
		}
		if got := Area(diff); math.Abs(got) > tol {
			t.Errorf("%s: A−A area = %.15g, want 0", eng.name, got)
		}
	}
}
