// Package acache is the arrangement cache of the batch overlay: a
// byte-bounded LRU over canonical geometry digests (geom.Hash) with
// singleflight admission, so repeated operands — shared basemaps, common
// clip masks, duplicated features — pay for arrangement resolution and
// clipping once per distinct geometry instead of once per occurrence.
//
// Two tiers share one LRU budget:
//
//   - the resolve tier memoizes arrange.ResolvePair/ResolvePairWinding
//     output for an operand pair, keyed by (digest A, digest B, rule
//     family); engines honoring engine.Options.PreResolved then skip their
//     own resolution pass;
//   - the clip tier memoizes whole clip results, keyed additionally by the
//     engine name and the (op, rule) pair — sound because equal digests
//     mean equal operands and every engine is deterministic.
//
// Values are immutable once inserted (the pipeline never mutates polygons
// it was handed), so cached polygons are shared across goroutines without
// copying; the -race batteries pin that.
package acache

import (
	"container/list"
	"sync"

	"polyclip/internal/arrange"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
)

// value kinds, part of the cache key so the tiers cannot collide.
const (
	kindResolve = 1
	kindClip    = 2
	kindPrepare = 3
)

// Key identifies one cached computation.
type Key struct {
	A, B geom.Digest
	Eng  uint64 // engine-name hash, 0 for the resolve tier
	Op   uint8
	Rule uint8
	Kind uint8
}

// entry is one cache slot. Until the leader finishes, ready is non-nil and
// the entry is absent from the LRU list (in-flight entries cannot be
// evicted); once ready is closed and nilled, val/bytes are immutable.
type entry struct {
	key   Key
	val   []geom.Polygon
	bytes int64
	ready chan struct{} // nil once the value is usable
	elem  *list.Element // nil while in flight
}

// Cache is a byte-bounded LRU with singleflight semantics. The zero value
// is not usable; call New. A nil *Cache is a valid bypass: every operation
// computes directly and counts nothing.
type Cache struct {
	mu        sync.Mutex
	max       int64
	bytes     int64
	ll        *list.List // front = most recent; holds *entry, ready only
	m         map[Key]*entry
	hits      uint64
	misses    uint64
	waits     uint64
	bypasses  uint64
	evictions uint64
}

// New returns a cache bounded to maxBytes of polygon payload (estimated;
// map/list overhead is not charged). maxBytes <= 0 returns nil — the
// bypass cache.
func New(maxBytes int64) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	return &Cache{max: maxBytes, ll: list.New(), m: make(map[Key]*entry)}
}

// shared is the process-wide cache the serve layer and the public batch API
// default to. 256 MiB holds roughly a million small resolved features —
// sized for the ROADMAP's million-feature overlay on one node.
var (
	sharedOnce sync.Once
	sharedC    *Cache
)

// Shared returns the process-wide cache (256 MiB), created on first use.
func Shared() *Cache {
	sharedOnce.Do(func() { sharedC = New(256 << 20) })
	return sharedC
}

// Stats is a point-in-time counter snapshot. The JSON tags are a stable
// contract: they surface verbatim in batch Stats and /statz.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Waits     uint64 `json:"waits"`
	Bypasses  uint64 `json:"bypasses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"maxBytes"`
}

// HitRate returns hits/(hits+misses), 0 when idle.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Delta returns s with prev's monotonic counters subtracted — the per-run
// view batch Stats reports against the shared cache.
func (s Stats) Delta(prev Stats) Stats {
	s.Hits -= prev.Hits
	s.Misses -= prev.Misses
	s.Waits -= prev.Waits
	s.Bypasses -= prev.Bypasses
	s.Evictions -= prev.Evictions
	return s
}

// Stats snapshots the counters. Safe on a nil cache (all zeros).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Waits: c.waits,
		Bypasses: c.bypasses, Evictions: c.evictions,
		Entries: c.ll.Len(), Bytes: c.bytes, MaxBytes: c.max,
	}
}

// polyBytes estimates the retained size of a polygon: slice headers plus
// 16 bytes per vertex.
func polyBytes(p geom.Polygon) int64 {
	n := int64(24)
	for _, r := range p {
		n += 24 + int64(len(r))*16
	}
	return n
}

// do is the singleflight core: return the cached value for k, or run
// compute exactly once per concurrent cohort. A panic in compute removes
// the placeholder (waiters retry, one becoming the next leader) and
// propagates to the leader's caller.
func (c *Cache) do(k Key, compute func() []geom.Polygon) []geom.Polygon {
	if c == nil {
		return compute()
	}
	for {
		c.mu.Lock()
		e := c.m[k]
		if e == nil {
			e = &entry{key: k, ready: make(chan struct{})}
			c.m[k] = e
			c.misses++
			c.mu.Unlock()
			return c.lead(e, compute)
		}
		if e.ready == nil {
			c.hits++
			c.ll.MoveToFront(e.elem)
			val := e.val
			c.mu.Unlock()
			return val
		}
		c.waits++
		ready := e.ready
		c.mu.Unlock()
		<-ready
		// Loop: the leader either published the value (hit next pass) or
		// panicked and removed the placeholder (this waiter may lead).
	}
}

// lead runs compute for the placeholder entry e and publishes the result.
func (c *Cache) lead(e *entry, compute func() []geom.Polygon) []geom.Polygon {
	done := false
	defer func() {
		if done {
			return
		}
		// compute panicked: withdraw the placeholder so waiters retry, then
		// let the panic continue to the caller (the batch layer's per-pair
		// guard turns it into a rescue).
		c.mu.Lock()
		delete(c.m, e.key)
		c.mu.Unlock()
		close(e.ready)
	}()
	val := compute()
	done = true

	var size int64
	for _, p := range val {
		size += polyBytes(p)
	}
	if size > c.max/4 {
		// Oversized value: admitting it would evict a quarter of the cache
		// for one entry. Serve it uncached; waiters recompute.
		c.mu.Lock()
		delete(c.m, e.key)
		c.bypasses++
		c.mu.Unlock()
		close(e.ready)
		return val
	}
	c.mu.Lock()
	e.val = val
	e.bytes = size
	e.elem = c.ll.PushFront(e)
	c.bytes += size
	ready := e.ready
	e.ready = nil
	for c.bytes > c.max && c.ll.Len() > 0 {
		back := c.ll.Back()
		ev := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.m, ev.key)
		c.bytes -= ev.bytes
		c.evictions++
	}
	c.mu.Unlock()
	close(ready)
	return val
}

// resolveRuleKey collapses the fill rule to the resolution family: EvenOdd
// uses arrange.ResolvePair, every winding rule shares ResolvePairWinding.
func resolveRuleKey(rule engine.FillRule) uint8 {
	if rule == engine.EvenOdd {
		return 0
	}
	return 1
}

// ResolvePair returns the joint arrangement resolution of (a, b) under the
// rule's resolution family, computing and caching it on first sight of the
// digest pair. da/db are the operands' digests (computed by the caller,
// which needs them for the clip tier anyway). On a nil cache it resolves
// directly.
func (c *Cache) ResolvePair(a, b geom.Polygon, da, db geom.Digest, rule engine.FillRule) (geom.Polygon, geom.Polygon) {
	compute := func() []geom.Polygon {
		var ra, rb geom.Polygon
		if rule == engine.EvenOdd {
			ra, rb = arrange.ResolvePair(a, b)
		} else {
			ra, rb = arrange.ResolvePairWinding(a, b)
		}
		return []geom.Polygon{ra, rb}
	}
	if c == nil {
		v := compute()
		return v[0], v[1]
	}
	v := c.do(Key{A: da, B: db, Rule: resolveRuleKey(rule), Kind: kindResolve}, compute)
	return v[0], v[1]
}

// engHash hashes an engine name for the clip-tier key (FNV-1a).
func engHash(name string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001b3
	}
	return h
}

// Prepared returns the cached canonical form of the single layer with
// digest d under rule — the output of prepared.Canonicalize — running
// compute exactly once per distinct (digest, rule). The tile pyramid driver
// funnels per-zoom and per-request preparation through this tier so a layer
// cut repeatedly (or at several zoom ranges) resolves once; the cheap index
// build still runs per Prepared. The closure indirection keeps this package
// free of an internal/prepared dependency.
func (c *Cache) Prepared(d geom.Digest, rule engine.FillRule, compute func() geom.Polygon) geom.Polygon {
	if c == nil {
		return compute()
	}
	v := c.do(Key{A: d, Rule: uint8(rule), Kind: kindPrepare},
		func() []geom.Polygon { return []geom.Polygon{compute()} })
	return v[0]
}

// Clip returns the cached result of `a op b` under (engineName, rule) for
// the digest pair, running compute exactly once per distinct key. compute
// must be deterministic for the key — true of every registered engine run
// single-threaded, which is how the batch overlay invokes them.
func (c *Cache) Clip(da, db geom.Digest, op engine.Op, rule engine.FillRule, engineName string, compute func() geom.Polygon) geom.Polygon {
	if c == nil {
		return compute()
	}
	v := c.do(Key{
		A: da, B: db,
		Eng:  engHash(engineName),
		Op:   uint8(op),
		Rule: uint8(rule),
		Kind: kindClip,
	}, func() []geom.Polygon { return []geom.Polygon{compute()} })
	return v[0]
}
