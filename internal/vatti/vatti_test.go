package vatti

import (
	"math"
	"math/rand"
	"testing"

	"polyclip/internal/geom"
	"polyclip/internal/overlay"
)

func checkArea(t *testing.T, name string, subj, clip geom.Polygon, op Op, want float64) geom.Polygon {
	t.Helper()
	got := Clip(subj, clip, op)
	if a := got.Area(); math.Abs(a-want) > 1e-6*(1+want) {
		t.Errorf("%s: area = %v, want %v (rings=%d)", name, a, want, len(got))
	}
	return got
}

func TestRectRectAllOps(t *testing.T) {
	a := geom.RectPolygon(0, 0, 4, 4)
	b := geom.RectPolygon(2, 2, 6, 6)
	checkArea(t, "∩", a, b, Intersection, 4)
	checkArea(t, "∪", a, b, Union, 28)
	checkArea(t, "−", a, b, Difference, 12)
	checkArea(t, "⊕", a, b, Xor, 24)
}

func TestTrapezoidDecompositionAreas(t *testing.T) {
	a := geom.RectPolygon(0, 0, 4, 4)
	b := geom.RectPolygon(2, 2, 6, 6)
	tzs := Trapezoids(a, b, Intersection)
	var sum float64
	for _, tz := range tzs {
		sum += tz.Area()
	}
	if math.Abs(sum-4) > 1e-6 {
		t.Errorf("trapezoid area sum = %v, want 4", sum)
	}
}

func TestTrapezoidRing(t *testing.T) {
	tz := Trapezoid{
		L1: geom.Point{X: 0, Y: 0}, R1: geom.Point{X: 4, Y: 0},
		L2: geom.Point{X: 1, Y: 2}, R2: geom.Point{X: 3, Y: 2},
	}
	r := tz.Ring()
	if len(r) != 4 {
		t.Fatalf("ring = %v", r)
	}
	if !r.IsCCW() {
		t.Error("trapezoid ring should be CCW")
	}
	if math.Abs(tz.Area()-6) > 1e-12 {
		t.Errorf("area = %v, want 6", tz.Area())
	}
	// Degenerate to triangle.
	tri := Trapezoid{
		L1: geom.Point{X: 0, Y: 0}, R1: geom.Point{X: 2, Y: 0},
		L2: geom.Point{X: 1, Y: 2}, R2: geom.Point{X: 1, Y: 2},
	}
	if got := len(tri.Ring()); got != 3 {
		t.Errorf("triangle ring has %d vertices", got)
	}
}

func TestHoleOutput(t *testing.T) {
	outer := geom.RectPolygon(0, 0, 10, 10)
	inner := geom.RectPolygon(3, 3, 7, 7)
	got := checkArea(t, "hole", outer, inner, Difference, 84)
	if len(got) != 2 {
		t.Errorf("rings = %d, want 2", len(got))
	}
}

func TestEmptyAndDisjoint(t *testing.T) {
	a := geom.RectPolygon(0, 0, 1, 1)
	b := geom.RectPolygon(5, 5, 6, 6)
	if got := Clip(a, b, Intersection); got.Area() != 0 {
		t.Errorf("disjoint ∩ = %v", got)
	}
	checkArea(t, "disjoint ∪", a, b, Union, 2)
	if got := Clip(nil, nil, Union); got != nil {
		t.Errorf("∅∪∅ = %v", got)
	}
}

func TestSelfIntersecting(t *testing.T) {
	bt := geom.Polygon{geom.BowTie(0, 0, 2, 2)}
	big := geom.RectPolygon(-1, -1, 3, 3)
	checkArea(t, "bowtie∩big", bt, big, Intersection, 2)
}

func TestAgainstOverlayEngineRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 15; trial++ {
		a := geom.Polygon{geom.Star(geom.Point{X: rng.Float64() * 3, Y: rng.Float64() * 3}, 4, 1.5, 4+rng.Intn(7), rng.Float64())}
		b := geom.Polygon{geom.Star(geom.Point{X: rng.Float64() * 3, Y: rng.Float64() * 3}, 4, 1.5, 4+rng.Intn(7), rng.Float64())}
		for _, op := range []Op{Intersection, Union, Difference, Xor} {
			va := Clip(a, b, op).Area()
			oa := overlay.Clip(a, b, op, overlay.Options{}).Area()
			if math.Abs(va-oa) > 1e-6*(1+oa) {
				t.Errorf("trial %d %v: vatti=%v overlay=%v", trial, op, va, oa)
			}
		}
	}
}

func TestAgainstOverlaySelfIntersecting(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 8; trial++ {
		a := geom.Polygon{geom.SelfIntersectingStar(geom.Point{X: rng.Float64(), Y: rng.Float64()}, 5, 5, rng.Float64())}
		b := geom.Polygon{geom.SelfIntersectingStar(geom.Point{X: 1 + rng.Float64(), Y: rng.Float64()}, 5, 7, rng.Float64())}
		for _, op := range []Op{Intersection, Union, Difference, Xor} {
			va := Clip(a, b, op).Area()
			oa := overlay.Clip(a, b, op, overlay.Options{}).Area()
			if math.Abs(va-oa) > 1e-6*(1+oa) {
				t.Errorf("trial %d %v: vatti=%v overlay=%v", trial, op, va, oa)
			}
		}
	}
}

func TestAssembleSingleTrapezoid(t *testing.T) {
	tz := Trapezoid{
		L1: geom.Point{X: 0, Y: 0}, R1: geom.Point{X: 2, Y: 0},
		L2: geom.Point{X: 0, Y: 1}, R2: geom.Point{X: 2, Y: 1},
	}
	got := Assemble([]Trapezoid{tz})
	if len(got) != 1 || math.Abs(got[0].Area()-2) > 1e-12 {
		t.Errorf("got %v", got)
	}
}

func TestAssembleStackedTrapezoidsFuse(t *testing.T) {
	tzs := []Trapezoid{
		{L1: geom.Point{X: 0, Y: 0}, R1: geom.Point{X: 2, Y: 0}, L2: geom.Point{X: 0, Y: 1}, R2: geom.Point{X: 2, Y: 1}},
		{L1: geom.Point{X: 0, Y: 1}, R1: geom.Point{X: 2, Y: 1}, L2: geom.Point{X: 0, Y: 2}, R2: geom.Point{X: 2, Y: 2}},
	}
	got := Assemble(tzs)
	if len(got) != 1 {
		t.Fatalf("rings = %d, want 1 (caps must cancel)", len(got))
	}
	if math.Abs(got[0].Area()-4) > 1e-12 {
		t.Errorf("area = %v", got[0].Area())
	}
}

func TestAssemblePartialCapOverlap(t *testing.T) {
	// Upper trapezoid narrower than lower: caps cancel only on the shared
	// x-range.
	tzs := []Trapezoid{
		{L1: geom.Point{X: 0, Y: 0}, R1: geom.Point{X: 4, Y: 0}, L2: geom.Point{X: 0, Y: 1}, R2: geom.Point{X: 4, Y: 1}},
		{L1: geom.Point{X: 1, Y: 1}, R1: geom.Point{X: 3, Y: 1}, L2: geom.Point{X: 1, Y: 2}, R2: geom.Point{X: 3, Y: 2}},
	}
	got := Assemble(tzs)
	area := 0.0
	for _, r := range got {
		area += math.Abs(r.SignedArea())
	}
	if math.Abs(area-6) > 1e-12 {
		t.Errorf("area = %v, want 6 (rings=%d)", area, len(got))
	}
}

func TestConcaveViaVatti(t *testing.T) {
	u := geom.Polygon{geom.Ring{
		{X: 0, Y: 0}, {X: 6, Y: 0}, {X: 6, Y: 5}, {X: 4, Y: 5},
		{X: 4, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 5}, {X: 0, Y: 5},
	}}
	r := geom.RectPolygon(1, 1, 5, 4)
	checkArea(t, "u∩r", u, r, Intersection, 8)
	checkArea(t, "u∪r", u, r, Union, u.Area()+12-8)
}

func TestMultiPolygonOutput(t *testing.T) {
	// H-shaped clip against a horizontal band gives two separate rectangles.
	a := geom.Polygon{geom.Rect(0, 0, 1, 3), geom.Rect(2, 0, 3, 3)}
	band := geom.RectPolygon(-1, 1, 4, 2)
	got := checkArea(t, "band∩bars", band, a, Intersection, 2)
	if len(got) != 2 {
		t.Errorf("rings = %d, want 2", len(got))
	}
}

func TestTriStrips(t *testing.T) {
	a := geom.RectPolygon(0, 0, 4, 4)
	b := geom.RectPolygon(2, 2, 6, 6)
	tzs := Trapezoids(a, b, Intersection)
	strips := TriStrips(tzs)
	var sum float64
	for _, s := range strips {
		sum += s.Area()
	}
	if math.Abs(sum-4) > 1e-6 {
		t.Errorf("tristrip area = %v, want 4", sum)
	}
}

func TestTriStripTriangleDegeneration(t *testing.T) {
	tri := Trapezoid{
		L1: geom.Point{X: 0, Y: 0}, R1: geom.Point{X: 2, Y: 0},
		L2: geom.Point{X: 1, Y: 2}, R2: geom.Point{X: 1, Y: 2},
	}
	strips := TriStrips([]Trapezoid{tri})
	if len(strips) != 1 || len(strips[0]) != 3 {
		t.Fatalf("strips = %v", strips)
	}
	if math.Abs(strips[0].Area()-2) > 1e-12 {
		t.Errorf("area = %v", strips[0].Area())
	}
}
