package core

import (
	"math"
	"math/rand"
	"testing"

	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/overlay"
)

func seqArea(a, b geom.Polygon, op Op) float64 {
	return overlay.Clip(a, b, op, overlay.Options{Parallelism: 1}).Area()
}

func TestClipPairMatchesSequentialRects(t *testing.T) {
	a := geom.RectPolygon(0, 0, 4, 4)
	b := geom.RectPolygon(2, 2, 6, 6)
	for _, op := range []Op{Intersection, Union, Difference, Xor} {
		for _, threads := range []int{1, 2, 4, 7} {
			got, st := ClipPair(a, b, op, Options{Threads: threads})
			want := seqArea(a, b, op)
			if math.Abs(got.Area()-want) > 1e-6*(1+want) {
				t.Errorf("op=%v threads=%d: got %v want %v (slabs=%d)", op, threads, got.Area(), want, st.Slabs)
			}
		}
	}
}

func TestClipPairStars(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 6; trial++ {
		a := geom.Polygon{geom.Star(geom.Point{X: rng.Float64(), Y: rng.Float64()}, 5, 2, 8+rng.Intn(20), rng.Float64())}
		b := geom.Polygon{geom.Star(geom.Point{X: 1 + rng.Float64(), Y: rng.Float64() - 1}, 5, 2, 8+rng.Intn(20), rng.Float64())}
		for _, op := range []Op{Intersection, Union, Difference, Xor} {
			got, _ := ClipPair(a, b, op, Options{Threads: 4})
			want := seqArea(a, b, op)
			if math.Abs(got.Area()-want) > 1e-6*(1+want) {
				t.Errorf("trial %d op=%v: got %v want %v", trial, op, got.Area(), want)
			}
		}
	}
}

func TestClipPairEngines(t *testing.T) {
	a := geom.Polygon{geom.Star(geom.Point{X: 0, Y: 0}, 5, 2, 12, 0.3)}
	b := geom.Polygon{geom.Star(geom.Point{X: 1, Y: 1}, 5, 2, 10, 0.7)}
	want := seqArea(a, b, Intersection)
	for _, name := range []string{"overlay", "vatti"} {
		got, _ := ClipPair(a, b, Intersection, Options{Threads: 4, Engine: engine.MustGet(name)})
		if math.Abs(got.Area()-want) > 1e-6*(1+want) {
			t.Errorf("engine=%s: got %v want %v", name, got.Area(), want)
		}
	}
}

func TestClipPairMergeModes(t *testing.T) {
	a := geom.Polygon{geom.RegularPolygon(geom.Point{X: 0, Y: 0}, 5, 24, 0.1)}
	b := geom.Polygon{geom.RegularPolygon(geom.Point{X: 2, Y: 1}, 5, 18, 0.4)}
	want := seqArea(a, b, Union)
	for _, mode := range []MergeMode{MergeStitch, MergeConcat, MergeUnionTree} {
		// Slabs pinned: these small inputs collapse to one slab under the
		// adaptive count, and the merge modes only run across slab seams.
		got, _ := ClipPair(a, b, Union, Options{Threads: 4, Slabs: 4, Merge: mode})
		// MergeConcat leaves seams: even-odd area preserved; rings may
		// include seam edges, so normalize via the overlay engine.
		area := got.Area()
		if mode == MergeConcat {
			box := got.BBox()
			big := geom.RectPolygon(box.MinX-1, box.MinY-1, box.MaxX+1, box.MaxY+1)
			area = overlay.Clip(got, big, overlay.Intersection, overlay.Options{}).Area()
		}
		if math.Abs(area-want) > 1e-6*(1+want) {
			t.Errorf("merge=%d: got %v want %v", mode, area, want)
		}
	}
}

func TestClipPairMergeStitchRemovesSeams(t *testing.T) {
	a := geom.Polygon{geom.RegularPolygon(geom.Point{X: 0, Y: 0}, 5, 32, 0.1)}
	b := geom.Polygon{geom.RegularPolygon(geom.Point{X: 1, Y: 1}, 5, 32, 0.2)}
	got, st := ClipPair(a, b, Intersection, Options{Threads: 4, Slabs: 4, Merge: MergeStitch})
	if st.Slabs < 2 {
		t.Skip("partitioning produced a single slab")
	}
	if len(got) != 1 {
		t.Errorf("stitched result has %d rings, want 1 convex-ish region", len(got))
	}
}

func TestClipPairPartitionModes(t *testing.T) {
	a := geom.Polygon{geom.Star(geom.Point{X: 0, Y: 0}, 5, 2, 16, 0.3)}
	b := geom.Polygon{geom.Star(geom.Point{X: 1, Y: 0}, 5, 2, 14, 0.9)}
	want := seqArea(a, b, Xor)
	for _, pm := range []PartitionMode{PartitionEvents, PartitionUniform} {
		got, _ := ClipPair(a, b, Xor, Options{Threads: 5, Slabs: 5, Partition: pm})
		if math.Abs(got.Area()-want) > 1e-6*(1+want) {
			t.Errorf("partition=%d: got %v want %v", pm, got.Area(), want)
		}
	}
}

func TestClipPairEmptyInputs(t *testing.T) {
	a := geom.RectPolygon(0, 0, 1, 1)
	if got, _ := ClipPair(nil, a, Intersection, Options{Threads: 4}); got.Area() != 0 {
		t.Errorf("∅∩a = %v", got)
	}
	if got, _ := ClipPair(a, nil, Union, Options{Threads: 4}); math.Abs(got.Area()-1) > 1e-9 {
		t.Errorf("a∪∅ = %v", got.Area())
	}
}

func TestStatsAccounting(t *testing.T) {
	a := geom.Polygon{geom.RegularPolygon(geom.Point{X: 0, Y: 0}, 5, 64, 0.1)}
	b := geom.Polygon{geom.RegularPolygon(geom.Point{X: 1, Y: 1}, 5, 64, 0.2)}
	_, st := ClipPair(a, b, Intersection, Options{Threads: 4})
	if st.Slabs < 1 || len(st.PerThread) != st.Slabs {
		t.Fatalf("stats: %+v", st)
	}
	if st.CriticalPath() > st.TotalWork() {
		t.Error("critical path exceeds total work")
	}
	if st.ModelledParallel(1) < st.ModelledParallel(4) {
		// modelled time with 1 worker >= with 4 workers
		t.Error("modelled parallel time not monotone")
	}
}

func TestAlgorithmOneMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 6; trial++ {
		a := geom.Polygon{geom.Star(geom.Point{X: rng.Float64(), Y: rng.Float64()}, 4, 1.5, 6+rng.Intn(10), rng.Float64())}
		b := geom.Polygon{geom.Star(geom.Point{X: 0.5 + rng.Float64(), Y: rng.Float64() - 0.5}, 4, 1.5, 6+rng.Intn(10), rng.Float64())}
		for _, op := range []Op{Intersection, Union, Difference, Xor} {
			got, rep := AlgorithmOne(a, b, op, 4)
			want := seqArea(a, b, op)
			if math.Abs(got.Area()-want) > 1e-6*(1+want) {
				t.Errorf("trial %d op=%v: got %v want %v", trial, op, got.Area(), want)
			}
			if rep.Procs < rep.N {
				t.Errorf("processor bound %d < n=%d", rep.Procs, rep.N)
			}
		}
	}
}

func TestAlgorithmOneReportOutputSensitive(t *testing.T) {
	// Two polygons with many crossings vs few crossings: k must reflect it.
	a := geom.Polygon{geom.RegularPolygon(geom.Point{X: 0, Y: 0}, 5, 40, 0.01)}
	bFar := geom.Polygon{geom.RegularPolygon(geom.Point{X: 20, Y: 0}, 5, 40, 0.02)}
	bNear := geom.Polygon{geom.RegularPolygon(geom.Point{X: 0.5, Y: 0.2}, 5, 40, 0.02)}
	_, repFar := AlgorithmOne(a, bFar, Intersection, 2)
	_, repNear := AlgorithmOne(a, bNear, Intersection, 2)
	if repFar.K != 0 {
		t.Errorf("disjoint polygons: k = %d, want 0", repFar.K)
	}
	if repNear.K == 0 {
		t.Error("overlapping polygons: k = 0")
	}
	if repNear.Procs <= repFar.Procs-repFar.KPrime {
		t.Log("processor accounting:", repNear.Procs, repFar.Procs)
	}
}

func TestClipLayersPairwise(t *testing.T) {
	// Two layers of unit squares on offset grids: every overlap is 0.25.
	var la, lb Layer
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			la = append(la, geom.RectPolygon(float64(2*i), float64(2*j), float64(2*i+1), float64(2*j+1)))
			lb = append(lb, geom.RectPolygon(float64(2*i)+0.5, float64(2*j)+0.5, float64(2*i)+1.5, float64(2*j)+1.5))
		}
	}
	got, st := ClipLayers(la, lb, Intersection, Options{Threads: 4})
	if len(got) != 16 {
		t.Errorf("outputs = %d, want 16", len(got))
	}
	var area float64
	for _, g := range got {
		area += g.Area()
	}
	if math.Abs(area-16*0.25) > 1e-9 {
		t.Errorf("total area = %v, want 4", area)
	}
	if st.Slabs < 1 {
		t.Error("no slabs")
	}
}

func TestClipLayersNoDuplicates(t *testing.T) {
	// A single big pair spanning all slabs must be clipped exactly once.
	la := Layer{geom.RectPolygon(0, 0, 10, 100)}
	lb := Layer{geom.RectPolygon(5, 0, 15, 100)}
	// Add some small features to force multiple slabs.
	for i := 0; i < 16; i++ {
		la = append(la, geom.RectPolygon(20, float64(i*6), 21, float64(i*6+1)))
	}
	got, st := ClipLayers(la, lb, Intersection, Options{Threads: 8})
	if st.Slabs < 2 {
		t.Skip("single slab")
	}
	if len(got) != 1 {
		t.Fatalf("outputs = %d, want 1 (no replication duplicates)", len(got))
	}
	if math.Abs(got[0].Area()-500) > 1e-6 {
		t.Errorf("area = %v, want 500", got[0].Area())
	}
}

func TestClipLayersMergedUnion(t *testing.T) {
	la := Layer{geom.RectPolygon(0, 0, 2, 2), geom.RectPolygon(4, 0, 6, 2)}
	lb := Layer{geom.RectPolygon(1, 1, 5, 3)}
	got, _ := ClipLayersMerged(la, lb, Union, Options{Threads: 3})
	want := seqArea(flatten(la), flatten(lb), Union)
	if math.Abs(got.Area()-want) > 1e-6 {
		t.Errorf("merged union = %v, want %v", got.Area(), want)
	}
}

func TestLayerHelpers(t *testing.T) {
	l := Layer{geom.RectPolygon(0, 0, 1, 1), geom.RectPolygon(2, 2, 3, 4)}
	if l.NumVertices() != 8 {
		t.Errorf("NumVertices = %d", l.NumVertices())
	}
	box := l.BBox()
	if box.MinX != 0 || box.MaxY != 4 {
		t.Errorf("bbox = %+v", box)
	}
	if a := LayerArea(l); math.Abs(a-3) > 1e-12 {
		t.Errorf("area = %v", a)
	}
}

func TestSlabBoundaries(t *testing.T) {
	ys := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	b := slabBoundaries(ys, 3, PartitionEvents)
	if b[0] != 0 || b[len(b)-1] != 9 {
		t.Errorf("bounds = %v", b)
	}
	if len(b) != 4 {
		t.Errorf("bounds = %v, want 4 entries", b)
	}
	u := slabBoundaries(ys, 3, PartitionUniform)
	if math.Abs(u[1]-3) > 1e-12 || math.Abs(u[2]-6) > 1e-12 {
		t.Errorf("uniform bounds = %v", u)
	}
	// Degenerate: all events equal.
	d := slabBoundaries([]float64{5, 5, 5}, 4, PartitionEvents)
	if len(d) != 2 {
		t.Errorf("degenerate bounds = %v", d)
	}
}

func TestUnionAllGrid(t *testing.T) {
	// 4x4 grid of unit squares sharing edges dissolves into one 4x4 square.
	var polys []geom.Polygon
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			polys = append(polys, geom.RectPolygon(float64(i), float64(j), float64(i+1), float64(j+1)))
		}
	}
	got := UnionAll(polys, 4)
	if math.Abs(got.Area()-16) > 1e-6 {
		t.Errorf("dissolved area = %v, want 16", got.Area())
	}
	if len(got) != 1 {
		t.Errorf("rings = %d, want 1", len(got))
	}
}

func TestUnionAllEmptyAndSingle(t *testing.T) {
	if got := UnionAll(nil, 2); got != nil {
		t.Errorf("UnionAll(nil) = %v", got)
	}
	single := []geom.Polygon{geom.RectPolygon(0, 0, 1, 1)}
	if got := UnionAll(single, 2); math.Abs(got.Area()-1) > 1e-12 {
		t.Errorf("single = %v", got.Area())
	}
}

func TestIntersectAll(t *testing.T) {
	polys := []geom.Polygon{
		geom.RectPolygon(0, 0, 10, 10),
		geom.RectPolygon(2, 0, 12, 10),
		geom.RectPolygon(4, 0, 14, 10),
	}
	got := IntersectAll(polys, 2)
	if math.Abs(got.Area()-60) > 1e-6 {
		t.Errorf("common area = %v, want 60", got.Area())
	}
	// Disjoint operand empties the result.
	polys = append(polys, geom.RectPolygon(100, 100, 101, 101))
	if got := IntersectAll(polys, 2); got.Area() > 1e-9 {
		t.Errorf("disjoint IntersectAll = %v", got.Area())
	}
	if got := IntersectAll(nil, 2); got != nil {
		t.Errorf("IntersectAll(nil) = %v", got)
	}
}
