package bandclip

import (
	"math"
	"math/rand"
	"testing"

	"polyclip/internal/geom"
	"polyclip/internal/overlay"
	"polyclip/internal/vatti"
)

// oracle clips via the overlay engine against a generous-width rectangle.
func oracle(p geom.Polygon, lo, hi float64) geom.Polygon {
	box := p.BBox()
	if box.IsEmpty() {
		return nil
	}
	rect := geom.RectPolygon(box.MinX-10, lo, box.MaxX+10, hi)
	return overlay.Clip(p, rect, overlay.Intersection, overlay.Options{})
}

func checkBand(t *testing.T, name string, p geom.Polygon, lo, hi float64) {
	t.Helper()
	got := Clip(p, lo, hi)
	want := oracle(p, lo, hi)
	// The clipped rings may self-intersect (they inherit the input's
	// crossings), so measure their even-odd area by normalizing through the
	// overlay engine rather than summing signed ring areas.
	gotArea := got.Area()
	if len(got) > 0 {
		box := got.BBox()
		big := geom.RectPolygon(box.MinX-1, box.MinY-1, box.MaxX+1, box.MaxY+1)
		gotArea = overlay.Clip(got, big, overlay.Intersection, overlay.Options{}).Area()
	}
	if math.Abs(gotArea-want.Area()) > 1e-6*(1+want.Area()) {
		t.Errorf("%s: band [%v,%v]: area=%v want %v (rings=%d)", name, lo, hi, gotArea, want.Area(), len(got))
	}
	// Every output vertex must lie inside the band.
	for _, r := range got {
		for _, pt := range r {
			if pt.Y < lo-1e-9 || pt.Y > hi+1e-9 {
				t.Errorf("%s: vertex %v outside band [%v,%v]", name, pt, lo, hi)
			}
		}
	}
}

func TestSquareBands(t *testing.T) {
	sq := geom.RectPolygon(0, 0, 10, 10)
	checkBand(t, "middle", sq, 3, 7)
	checkBand(t, "bottom", sq, -5, 5)
	checkBand(t, "top", sq, 5, 15)
	checkBand(t, "cover", sq, -5, 15)
	checkBand(t, "exact", sq, 0, 10)
	if got := Clip(sq, 20, 30); got != nil {
		t.Errorf("disjoint band = %v", got)
	}
	if got := Clip(sq, 7, 3); got != nil {
		t.Errorf("inverted band = %v", got)
	}
}

func TestTriangle(t *testing.T) {
	tri := geom.Polygon{geom.Ring{{X: 0, Y: 0}, {X: 8, Y: 0}, {X: 4, Y: 8}}}
	checkBand(t, "tri-mid", tri, 2, 6)
	checkBand(t, "tri-tip", tri, 6, 10)
	checkBand(t, "tri-base", tri, -1, 1)
}

func TestConcaveU(t *testing.T) {
	u := geom.Polygon{geom.Ring{
		{X: 0, Y: 0}, {X: 6, Y: 0}, {X: 6, Y: 5}, {X: 4, Y: 5},
		{X: 4, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 5}, {X: 0, Y: 5},
	}}
	// Band across the arms: output must be two separate rectangles.
	got := Clip(u, 3, 4)
	if len(got) != 2 {
		t.Errorf("arms rings = %d, want 2", len(got))
	}
	checkBand(t, "u-arms", u, 3, 4)
	checkBand(t, "u-base", u, 0.5, 1.5)
	checkBand(t, "u-notch", u, 1, 3)
}

func TestStarAndRegularRandomBands(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 25; trial++ {
		var p geom.Polygon
		if trial%2 == 0 {
			p = geom.Polygon{geom.Star(geom.Point{X: 0, Y: 0}, 5, 2, 5+rng.Intn(7), rng.Float64())}
		} else {
			p = geom.Polygon{geom.RegularPolygon(geom.Point{X: 0, Y: 0}, 5, 3+rng.Intn(10), rng.Float64())}
		}
		lo := -6 + rng.Float64()*8
		hi := lo + 0.5 + rng.Float64()*6
		checkBand(t, "random", p, lo, hi)
	}
}

func TestSelfIntersectingBand(t *testing.T) {
	bt := geom.Polygon{geom.BowTie(0, 0, 4, 4)}
	checkBand(t, "bowtie-mid", bt, 1, 3)
	checkBand(t, "bowtie-low", bt, 0, 1.5)
	star := geom.Polygon{geom.SelfIntersectingStar(geom.Point{X: 0, Y: 0}, 5, 5, 0.3)}
	checkBand(t, "pentagram", star, -2, 1)
}

func TestMultiRing(t *testing.T) {
	p := geom.Polygon{geom.Rect(0, 0, 2, 6), geom.Rect(4, 1, 6, 5)}
	checkBand(t, "two-rects", p, 2, 4)
	got := Clip(p, 2, 4)
	if len(got) != 2 {
		t.Errorf("rings = %d, want 2", len(got))
	}
}

func TestPolygonWithHole(t *testing.T) {
	outer := geom.Rect(0, 0, 10, 10)
	hole := geom.Rect(3, 3, 7, 7)
	hole.Reverse()
	p := geom.Polygon{outer, hole}
	checkBand(t, "hole-cross", p, 2, 8)
	checkBand(t, "hole-above", p, 8, 12)
	checkBand(t, "hole-inside", p, 4, 6)
}

func TestRingEntirelyInside(t *testing.T) {
	p := geom.RectPolygon(0, 2, 4, 4)
	got := Clip(p, 0, 10)
	if len(got) != 1 || math.Abs(got.Area()-8) > 1e-12 {
		t.Errorf("got %v", got)
	}
	// Must be a copy, not an alias.
	got[0][0].X = 99
	if p[0][0].X == 99 {
		t.Error("Clip aliases input")
	}
}

func TestVertexExactlyOnBoundary(t *testing.T) {
	// Diamond with its waist vertices exactly on the band boundaries.
	d := geom.Polygon{geom.Ring{{X: 2, Y: 0}, {X: 4, Y: 2}, {X: 2, Y: 4}, {X: 0, Y: 2}}}
	checkBand(t, "diamond-touch", d, 2, 3)
	checkBand(t, "diamond-span", d, 1, 3)
	// Band boundary exactly through the top vertex.
	checkBand(t, "diamond-apex", d, 1, 4)
}

func TestVirtualVertexCountMatchesCrossings(t *testing.T) {
	// A regular polygon crossed by a band: the number of boundary vertices
	// (virtual vertices k') equals the number of edge crossings with the two
	// scanlines.
	p := geom.Polygon{geom.RegularPolygon(geom.Point{X: 0, Y: 0}, 5, 12, 0.2)}
	lo, hi := -2.0, 2.0
	got := Clip(p, lo, hi)
	virt := 0
	for _, r := range got {
		for _, pt := range r {
			if pt.Y == lo || pt.Y == hi {
				virt++
			}
		}
	}
	if virt != 4 {
		t.Errorf("virtual vertices = %d, want 4", virt)
	}
}

func TestBandClipAgainstVattiEngine(t *testing.T) {
	// Cross-validate band clipping against the independent vatti engine on
	// concave inputs.
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 10; trial++ {
		p := geom.Polygon{geom.Star(geom.Point{X: 0, Y: 0}, 6, 2.5, 5+rng.Intn(8), rng.Float64())}
		lo := -7 + rng.Float64()*9
		hi := lo + 0.5 + rng.Float64()*7
		got := Clip(p, lo, hi)
		// vatti.Clip against the band rectangle.
		box := p.BBox()
		rect := geom.RectPolygon(box.MinX-1, lo, box.MaxX+1, hi)
		want := vatti.Clip(p, rect, vatti.Intersection)
		ga, wa := got.Area(), want.Area()
		if math.Abs(ga-wa) > 1e-6*(1+wa) {
			t.Errorf("trial %d band [%v,%v]: bandclip=%v vatti=%v", trial, lo, hi, ga, wa)
		}
	}
}

func TestBandClipComposesWithAdjacentBands(t *testing.T) {
	// Clipping to [a,b] then concatenating with the clip to [b,c] covers the
	// clip to [a,c] exactly (area additivity of slabs).
	p := geom.Polygon{geom.Star(geom.Point{X: 0, Y: 0}, 6, 2, 9, 0.4)}
	whole := Clip(p, -4, 4)
	lower := Clip(p, -4, 0.7)
	upper := Clip(p, 0.7, 4)
	if math.Abs(whole.Area()-(lower.Area()+upper.Area())) > 1e-9 {
		t.Errorf("slab additivity: %v != %v + %v", whole.Area(), lower.Area(), upper.Area())
	}
}
