package batch

import (
	"context"
	"time"

	"polyclip/internal/acache"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/tile"
)

// TileOptions configures a layer×pyramid batch cut: every feature of one
// layer cut into the same tile pyramid.
type TileOptions struct {
	// Spec is the pyramid every feature is cut into.
	Spec tile.Spec
	// Rule is the fill rule each feature is read under.
	Rule engine.FillRule
	// Threads bounds worker parallelism; <= 0 means all available CPUs.
	Threads int
	// Naive disables the prepared pipeline (per-tile full clips) — the
	// benchmark baseline.
	Naive bool
	// Cache is the arrangement cache; nil uses the process-wide shared
	// cache unless NoCache is set. Repeated features (shared basemaps)
	// canonicalize once via the prepare tier.
	Cache *acache.Cache
	// NoCache disables caching entirely.
	NoCache bool
}

// TileOutput is one non-empty tile of one feature.
type TileOutput struct {
	Feature int32
	Z       int
	X, Y    int32
	Poly    geom.Polygon
}

// TileStats reports one batch cut. Duration fields are nanoseconds on the
// wire, matching the batch Stats convention.
type TileStats struct {
	Features int           `json:"features"`
	Tiles    int64         `json:"tiles"`
	Cut      tile.Stats    `json:"cut"`     // summed across features
	Clip     time.Duration `json:"clipNs"`  // wall time of the cutting loop
	Cache    acache.Stats  `json:"cache"`   // this run's delta
}

// CutTiles cuts every feature of the layer into the pyramid and returns the
// non-empty tiles in canonical (feature, z, x, y) order. Features are cut
// sequentially — each Cut parallelizes internally over the pooled scheduler,
// and per-feature tile content is independent of every other feature — so
// the output is bit-identical at any thread count.
func CutTiles(ctx context.Context, features []geom.Polygon, opt TileOptions) ([]TileOutput, *TileStats, error) {
	if err := opt.Spec.Validate(); err != nil {
		return nil, nil, err
	}
	cache := opt.Cache
	if cache == nil && !opt.NoCache {
		cache = acache.Shared()
	}
	if opt.NoCache {
		cache = nil
	}
	cacheBase := cache.Stats()

	st := &TileStats{Features: len(features)}
	cutOpt := tile.Options{
		Rule:    opt.Rule,
		Threads: opt.Threads,
		Naive:   opt.Naive,
		Cache:   cache,
	}
	start := time.Now()
	var out []TileOutput
	for fi, f := range features {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		tiles, cst, err := tile.Cut(ctx, f, opt.Spec, cutOpt)
		if err != nil {
			return nil, st, err
		}
		for _, t := range tiles {
			out = append(out, TileOutput{Feature: int32(fi), Z: t.Z, X: t.X, Y: t.Y, Poly: t.Poly})
		}
		st.Cut = addTileStats(st.Cut, cst)
	}
	st.Clip = time.Since(start)
	st.Tiles = int64(len(out))
	st.Cache = cache.Stats().Delta(cacheBase)
	return out, st, nil
}

// addTileStats sums per-feature cut stats (Zooms is per-feature identical,
// kept from the last).
func addTileStats(a, b tile.Stats) tile.Stats {
	a.Zooms = b.Zooms
	a.Tiles += b.Tiles
	a.Leaves += b.Leaves
	a.Filled += b.Filled
	a.Pruned += b.Pruned
	a.Nodes += b.Nodes
	a.Prepared.FastInside += b.Prepared.FastInside
	a.Prepared.FastOutside += b.Prepared.FastOutside
	a.Prepared.ConvexClips += b.Prepared.ConvexClips
	a.Prepared.BandClips += b.Prepared.BandClips
	a.Prepared.Rescues += b.Prepared.Rescues
	return a
}
