package polyclip

import (
	"context"
	"errors"
	"math"
	"testing"

	"polyclip/internal/engine"
	"polyclip/internal/guard"
)

// wktSeeds is the degenerate seed corpus shared by the parser and clipping
// fuzz targets: empty geometries, unclosed/duplicated/collinear rings,
// spikes, holes, self-intersections, huge and tiny coordinates, and
// syntactically broken inputs.
var wktSeeds = []string{
	"POLYGON EMPTY",
	"MULTIPOLYGON EMPTY",
	"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
	"POLYGON ((0 0, 4 0, 4 4, 0 4))",
	"POLYGON ((0 0))",
	"POLYGON ((0 0, 1 1))",
	"POLYGON ((0 0, 2 2, 4 4, 3 3))",
	"POLYGON ((0 0, 0 0, 4 0, 4 4, 4 4, 0 4))",
	"POLYGON ((0 0, 4 0, 8 0, 4 0, 4 4, 0 4))",
	"POLYGON ((0 0, 10 0, 10 10, 0 10), (2 2, 8 2, 8 8, 2 8))",
	"POLYGON ((0 0, 4 4, 4 0, 0 4))",
	"POLYGON ((0 8, -4.7 -6.47, 7.6 2.47, -7.6 2.47, 4.7 -6.47))",
	"POLYGON ((1 7, -4.69 -3.37, 6.85 3.67, -4.85 3.67, 6.69 -3.37))",
	"POLYGON ((0 0, 5 1e-8, 10 -1e-8, 15 1e-8, 20 0, 10 8))",
	"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1)), ((1 1, 2 1, 2 2, 1 2)), ((2 0, 3 0, 3 1, 2 1)))",
	"MULTIPOLYGON (((0 0, 4 0, 4 4, 0 4)), ((10 10, 14 10, 14 14, 10 14)))",
	"POLYGON ((1e100 1e100, 2e100 1e100, 2e100 2e100))",
	"POLYGON ((1e-12 0, 2e-12 0, 2e-12 1e-12))",
	"POLYGON ((-1.5 -2.5, 3.25 -2.5, 3.25 4.75, -1.5 4.75))",
	"POLYGON ((1e999 0, 1 0, 1 1))",
	"POLYGON ((NaN 0, 1 0, 1 1))",
	"POLYGON",
	"POLYGON ((",
	"LINESTRING (0 0, 1 1)",
	"",
}

// FuzzParseWKT checks the WKT parser never panics and never lets a
// non-finite coordinate through.
func FuzzParseWKT(f *testing.F) {
	for _, s := range wktSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParseWKT(s)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted invalid polygon from %q: %v", s, verr)
		}
		// Round-trip: what we print must parse again.
		if _, err := ParseWKT(FormatWKT(p)); err != nil {
			t.Fatalf("re-parse of %q failed: %v", FormatWKT(p), err)
		}
	})
}

// FuzzParseGeoJSON checks the GeoJSON parser never panics and never lets a
// non-finite coordinate through.
func FuzzParseGeoJSON(f *testing.F) {
	seeds := []string{
		`{"type":"Polygon","coordinates":[[[0,0],[4,0],[4,4],[0,4],[0,0]]]}`,
		`{"type":"Polygon","coordinates":[]}`,
		`{"type":"Polygon","coordinates":[[[0,0],[0,0],[0,0]]]}`,
		`{"type":"MultiPolygon","coordinates":[[[[0,0],[4,0],[4,4]]],[[[9,9],[12,9],[12,12]]]]}`,
		`{"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[0,0],[1,0],[1,1]]]}}`,
		`{"type":"Polygon","coordinates":[[[1e999,0],[1,0],[1,1]]]}`,
		`{"type":"Point","coordinates":[0,0]}`,
		`{"type":"Polygon"`,
		`null`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseGeoJSON(data)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted invalid polygon from %q: %v", data, verr)
		}
	})
}

// FuzzClipRoundTrip throws arbitrary WKT pairs at the hardened clipping
// pipeline: whatever parses must clip without a crash, and the result must
// satisfy the same invariants the audit enforces.
func FuzzClipRoundTrip(f *testing.F) {
	for i, s := range wktSeeds {
		f.Add(s, wktSeeds[(i+2)%len(wktSeeds)], uint8(i%4))
	}
	f.Fuzz(func(t *testing.T, ws, wc string, opByte uint8) {
		subject, err := ParseWKT(ws)
		if err != nil {
			return
		}
		clip, err := ParseWKT(wc)
		if err != nil {
			return
		}
		// Cap the work per input: the fuzzer's job here is crash hunting,
		// not throughput.
		if subject.NumVertices() > 64 || clip.NumVertices() > 64 {
			return
		}
		op := Op(opByte % 4)
		out, _, err := ClipCtx(context.Background(), subject, clip, op, Options{Threads: 2})
		if err != nil {
			// Invalid inputs (overflowing coordinates) are allowed to be
			// rejected — but only with a real error, never a panic.
			return
		}
		for ri, r := range out {
			if len(r) < 3 {
				t.Fatalf("ring %d of result has %d vertices (ops %q %v %q)", ri, len(r), ws, op, wc)
			}
		}
		a := Area(out)
		if math.IsNaN(a) || math.IsInf(a, 0) {
			t.Fatalf("non-finite result area (ops %q %v %q)", ws, op, wc)
		}
		// Differential oracle on every surviving input — self-intersecting
		// and near-collinear seeds included: the sequential Vatti sweep must
		// agree with the default engine's measure (no fallback, so a
		// disagreement cannot be rescued away).
		seq, _, err := ClipCtx(context.Background(), subject, clip, op,
			Options{Algorithm: AlgoSequential, Threads: 1, NoFallback: true})
		if err != nil {
			t.Fatalf("vatti cross-check errored: %v (ops %q %v %q)", err, ws, op, wc)
		}
		scale := guard.MeasureBound(subject) + guard.MeasureBound(clip)
		if va := Area(seq); math.Abs(va-a) > 1e-6*math.Max(scale, math.Max(va, a)) {
			t.Fatalf("vatti area %g disagrees with default engine %g (ops %q %v %q)", va, a, ws, op, wc)
		}
	})
}

// FuzzClipAllEngines drives every registered engine through the registry on
// the same WKT pair, operation, AND fill rule: no engine may panic, engines
// that decline a rule must do so with the typed ErrUnsupported (none of the
// built-ins may — they all declare the full rule set), and all engines that
// accept the input must agree on the clipped measure under that rule.
// Engines run with NoFallback, so a drifting engine fails by name rather
// than being silently rescued by a sibling.
func FuzzClipAllEngines(f *testing.F) {
	for i, s := range wktSeeds {
		f.Add(s, wktSeeds[(i+3)%len(wktSeeds)], uint8(i%4), uint8(i/4%4))
	}
	f.Fuzz(func(t *testing.T, ws, wc string, opByte, ruleByte uint8) {
		subject, err := ParseWKT(ws)
		if err != nil {
			return
		}
		clip, err := ParseWKT(wc)
		if err != nil {
			return
		}
		if subject.NumVertices() > 64 || clip.NumVertices() > 64 {
			return
		}
		op := Op(opByte % 4)
		rules := engine.Rules()
		rule := rules[int(ruleByte)%len(rules)]
		scale := guard.MeasureBound(subject) + guard.MeasureBound(clip)

		type outcome struct {
			name string
			area float64
		}
		var got []outcome
		for _, e := range engine.All() {
			if !e.Capabilities().Rules.Has(rule) {
				// Declared unsupported under the fuzzed rule: the conformance
				// rule matrix pins the typed rejection; nothing to compare.
				continue
			}
			res, err := e.Clip(context.Background(), subject, clip, op,
				engine.Options{Threads: 2, Rule: rule, NoFallback: true})
			if err != nil {
				// Real errors (overflowing coordinates, guard rejections) are
				// acceptable; only panics are bugs, and those crash the fuzzer.
				// A declared-capable engine must never reject with ErrUnsupported.
				if errors.Is(err, engine.ErrUnsupported) {
					t.Fatalf("%s: rejected a declared-capable rule %v: %v", e.Name(), rule, err)
				}
				continue
			}
			a := Area(res.Polygon)
			if math.IsNaN(a) || math.IsInf(a, 0) {
				t.Fatalf("%s: non-finite area (ops %q %v %q rule %v)", e.Name(), ws, op, wc, rule)
			}
			got = append(got, outcome{e.Name(), a})
		}
		// Cross-check: every pair of succeeding engines must agree under the
		// fuzzed rule.
		for i := 1; i < len(got); i++ {
			x, y := got[0], got[i]
			if math.Abs(x.area-y.area) > 1e-6*math.Max(scale, math.Max(x.area, y.area)) {
				t.Fatalf("engines disagree under rule %v: %s area %g vs %s area %g (ops %q %v %q)",
					rule, x.name, x.area, y.name, y.area, ws, op, wc)
			}
		}
	})
}
