// Package engine defines the execution-strategy seam of the clipping
// library: the Engine interface every clipping strategy implements, the
// Capabilities descriptor the resilience chain and slab decomposition use to
// select engines, and the registry that makes engines first-class values.
//
// It is also the canonical home of the vocabulary shared by every layer —
// the boolean operation Op, the FillRule, and the engine-facing Stats — so
// the implementation packages (overlay, vatti, core) alias these types
// instead of re-declaring them.
//
// The layer stack, top to bottom:
//
//	public API (polyclip.Clip/ClipWith/ClipCtx)
//	  -> resilience chain (declarative ordered registry entries)
//	    -> engine registry (this package)
//	      -> engines (overlay, vatti, slabs, scanbeam)
//	        -> scanbeam substrate (internal/scanbeam)
//	          -> par / geom kernels
package engine

import (
	"context"
	"errors"

	"polyclip/internal/geom"
)

// Op is a boolean clipping operation.
type Op uint8

// Supported clipping operations.
const (
	Intersection Op = iota // subject ∩ clip
	Union                  // subject ∪ clip
	Difference             // subject − clip
	Xor                    // symmetric difference
)

// String returns the operation name.
func (op Op) String() string {
	switch op {
	case Intersection:
		return "intersection"
	case Union:
		return "union"
	case Difference:
		return "difference"
	case Xor:
		return "xor"
	default:
		return "unknown"
	}
}

// Eval applies the operation to the two insideness flags.
func (op Op) Eval(inSubject, inClip bool) bool {
	switch op {
	case Intersection:
		return inSubject && inClip
	case Union:
		return inSubject || inClip
	case Difference:
		return inSubject && !inClip
	case Xor:
		return inSubject != inClip
	default:
		return false
	}
}

// Ops lists every operation, for capability matrices and fuzz drivers.
func Ops() []Op { return []Op{Intersection, Union, Difference, Xor} }

// FillRule decides which winding numbers count as interior.
type FillRule uint8

// Supported fill rules. The winding convention is shared by every engine:
// crossing a downward-directed edge left to right raises the winding number
// by one, so a counter-clockwise ring winds its interior +1 and a clockwise
// ring winds it -1.
const (
	// EvenOdd (default): a point is inside when its crossing parity is odd
	// — the rule of GPC and of the paper's self-intersection handling.
	EvenOdd FillRule = iota
	// NonZero: a point is inside when its winding number is nonzero — the
	// rule of most vector graphics models.
	NonZero
	// Positive: a point is inside when its winding number is strictly
	// positive — counter-clockwise rings enclose, clockwise rings do not
	// (the OGC/SVG "positive" rule).
	Positive
	// Negative: a point is inside when its winding number is strictly
	// negative — the mirror of Positive, selecting clockwise-wound regions.
	Negative
)

// Inside applies the rule to a winding number.
func (r FillRule) Inside(wind int16) bool {
	switch r {
	case NonZero:
		return wind != 0
	case Positive:
		return wind > 0
	case Negative:
		return wind < 0
	default:
		return wind&1 != 0
	}
}

// String returns the rule name.
func (r FillRule) String() string {
	switch r {
	case EvenOdd:
		return "evenodd"
	case NonZero:
		return "nonzero"
	case Positive:
		return "positive"
	case Negative:
		return "negative"
	default:
		return "unknown"
	}
}

// ParseRule resolves a rule name as emitted by String (the wire spelling of
// the HTTP API and the CLI tools); ok is false for unknown names.
func ParseRule(name string) (FillRule, bool) {
	for _, r := range Rules() {
		if name == r.String() {
			return r, true
		}
	}
	return EvenOdd, false
}

// Rules lists every fill rule, for capability matrices and fuzz drivers.
func Rules() []FillRule { return []FillRule{EvenOdd, NonZero, Positive, Negative} }

// AllRules is the RuleSet containing every fill rule.
func AllRules() RuleSet { return RuleMask(Rules()...) }

// RuleSet is a bitmask of supported fill rules.
type RuleSet uint8

// RuleMask builds a RuleSet from rules.
func RuleMask(rules ...FillRule) RuleSet {
	var s RuleSet
	for _, r := range rules {
		s |= 1 << r
	}
	return s
}

// Has reports whether the set contains the rule.
func (s RuleSet) Has(r FillRule) bool { return s&(1<<r) != 0 }

// Capabilities describes what an engine can do. The resilience chain filters
// its attempt list by these flags, the slab decomposition uses them to pick
// per-slab engines, and the conformance suite skips exactly what an engine
// declares unsupported.
type Capabilities struct {
	// Rules is the set of fill rules the engine implements.
	Rules RuleSet
	// Cancellable reports that Clip polls ctx inside its loops and stops
	// early; engines without it only check ctx at entry.
	Cancellable bool
	// Parallel reports that Clip exploits Options.Threads > 1.
	Parallel bool
	// Trapezoids reports that the engine can emit the raw trapezoid
	// decomposition (it additionally implements Trapezoider).
	Trapezoids bool
	// SlabHostable reports the engine is safe to run as the sequential
	// clipper inside one slab of the slab decomposition (single-threaded,
	// non-recursive, honors Options.SnapEps so seam geometry quantizes
	// identically across slabs).
	SlabHostable bool
}

// Options configures one engine run. Engines ignore fields outside their
// capabilities (a sequential engine ignores Threads; engines without slab
// decomposition ignore Slabs).
type Options struct {
	// Threads bounds the parallelism; <= 0 means all available CPUs.
	Threads int
	// Slabs is the slab count for slab-decomposition engines; 0 means one
	// per thread.
	Slabs int
	// Rule is the fill rule; engines must reject rules outside their
	// Capabilities with ErrUnsupported.
	Rule FillRule
	// SnapEps is the vertex grid shared by every worker of one run; <= 0
	// means derived from the input magnitude (geom.AutoSnapEps).
	SnapEps float64
	// NoFallback disables an engine's internal rescue paths (stage retries,
	// per-pair engine swaps), surfacing the first failure directly.
	NoFallback bool
	// PreResolved promises that a and b have already been through the joint
	// arrangement resolution (arrange.ResolvePair / ResolvePairWinding for
	// opt.Rule) — the batch overlay's arrangement cache sets it when serving
	// cached resolved operands. Engines that honor it skip their own
	// resolution pass; engines that ignore it merely re-resolve an already
	// clean arrangement, which is correct and near-free (the second pass
	// finds nothing to split).
	PreResolved bool
	// Prepared extends the PreResolved seam one notch weaker: it promises
	// only that operand a is a prepared subject (internal/prepared) — already
	// self-resolved and snapped on its own — while b is an arbitrary window
	// polygon whose crossings with a have NOT been resolved. Engines that
	// honor it run the joint resolution pass but skip every a↔a candidate
	// pair (arrange.ResolvePairPrepared), which is where a big prepared layer
	// against a 4-edge tile rectangle spends its pre-scan otherwise. Engines
	// that ignore it fall back to the full joint resolution, which is correct
	// and merely re-verifies a clean subject. PreResolved wins when both are
	// set.
	Prepared bool
}

// Result is one engine run's output.
type Result struct {
	// Polygon is the clipped region (CCW outers, CW holes).
	Polygon geom.Polygon
	// Stats carries phase timings and resilience counters when the engine
	// collects them; nil otherwise.
	Stats *Stats
}

// Engine is one clipping execution strategy. Implementations are stateless
// values registered once at init; a single Engine serves concurrent Clip
// calls.
type Engine interface {
	// Name is the registry key, e.g. "overlay", "vatti", "slabs", "scanbeam".
	Name() string
	// Capabilities describes what the engine supports.
	Capabilities() Capabilities
	// Clip computes `a op b`. It must return ErrUnsupported (possibly
	// wrapped) when opt.Rule is outside the declared capabilities, and
	// ctx.Err() when the run was cancelled.
	Clip(ctx context.Context, a, b geom.Polygon, op Op, opt Options) (Result, error)
}

// Trapezoider is implemented by engines whose Capabilities declare
// Trapezoids: the raw scanbeam-sweep output before ring assembly.
type Trapezoider interface {
	Trapezoids(a, b geom.Polygon, op Op) []Trapezoid
}

// ErrUnsupported tags a rule/algorithm request no registered engine can
// serve. The public API surfaces it (wrapped in a *guard.ClipError) instead
// of silently swapping strategies. Test with errors.Is.
var ErrUnsupported = errors.New("unsupported rule/algorithm combination")

// CheckRule returns ErrUnsupported (annotated with the engine name) when the
// engine's capabilities do not include the rule — the shared guard every
// Clip implementation runs first.
func CheckRule(e Engine, r FillRule) error {
	if !e.Capabilities().Rules.Has(r) {
		return &UnsupportedError{Engine: e.Name(), Rule: r}
	}
	return nil
}

// UnsupportedError reports which engine rejected which fill rule; it wraps
// ErrUnsupported for errors.Is.
type UnsupportedError struct {
	Engine string
	Rule   FillRule
}

// Error formats the rejection.
func (e *UnsupportedError) Error() string {
	return "engine " + e.Engine + ": fill rule " + e.Rule.String() + ": " + ErrUnsupported.Error()
}

// Unwrap exposes ErrUnsupported to errors.Is.
func (e *UnsupportedError) Unwrap() error { return ErrUnsupported }
