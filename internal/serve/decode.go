package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"

	"polyclip"
	"polyclip/internal/geojson"
	"polyclip/internal/wkt"
)

// ClipRequest is the wire form of one clipping request. The operands are
// either JSON strings holding WKT or inline GeoJSON geometry/Feature
// objects; the two forms can be mixed freely.
type ClipRequest struct {
	Subject   json.RawMessage `json:"subject"`
	Clip      json.RawMessage `json:"clip"`
	Op        string          `json:"op"`
	Rule      string          `json:"rule,omitempty"`      // "" | "evenodd" | "nonzero" | "positive" | "negative"
	Algorithm string          `json:"algorithm,omitempty"` // "" | "overlay" | "slabs" | "scanbeam" | "sequential"
}

// ClipResponse is the wire form of a successful clip: the result as a
// GeoJSON geometry plus the engine attribution and resilience trail the
// metrics pipeline records.
type ClipResponse struct {
	Result   json.RawMessage `json:"result"`
	Engine   string          `json:"engine,omitempty"`
	Degraded bool            `json:"degraded,omitempty"`
	Attempts []string        `json:"attempts,omitempty"`
	Stats    *polyclip.Stats `json:"stats,omitempty"`
}

// ErrorResponse is the wire form of every non-2xx answer: a stable machine
// code, a human message, and — for parse failures — the byte offset and
// offending token so clients can pinpoint the problem in their payload.
type ErrorResponse struct {
	Code              string `json:"code"`
	Error             string `json:"error"`
	Field             string `json:"field,omitempty"`  // "subject" / "clip" for operand errors
	Offset            int64  `json:"offset,omitempty"` // byte offset into the operand, when known
	Token             string `json:"token,omitempty"`  // offending token, when known
	RetryAfterSeconds int    `json:"retryAfterSeconds,omitempty"`
}

// httpError is an error already mapped to an HTTP answer.
type httpError struct {
	status int
	body   ErrorResponse
}

func (e *httpError) Error() string { return e.body.Error }

func httpErrorf(status int, code, format string, args ...any) *httpError {
	return &httpError{status: status, body: ErrorResponse{Code: code, Error: fmt.Sprintf(format, args...)}}
}

// parsedRequest is a decoded, validated clip request ready to enqueue.
type parsedRequest struct {
	subject, clip polyclip.Polygon
	op            polyclip.Op
	rule          polyclip.FillRule
	algo          polyclip.Algorithm
	opName        string
	algoName      string
}

// decodeRequest turns an HTTP request into a validated clip job, mapping
// every failure mode to a typed 4xx: wrong method and content type, bodies
// over the limit, malformed JSON (with the decoder's byte offset), unknown
// op/rule/algorithm values, and operand parse errors carrying the
// position context of the WKT/GeoJSON parsers.
func decodeRequest(w http.ResponseWriter, r *http.Request, maxBody int64) (*parsedRequest, *httpError) {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || (mt != "application/json" && mt != "application/geo+json" && mt != "text/json") {
			return nil, httpErrorf(http.StatusUnsupportedMediaType, "unsupported-content-type",
				"content type %q is not supported; send application/json", ct)
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, httpErrorf(http.StatusRequestEntityTooLarge, "body-too-large",
				"request body exceeds the %d byte limit", mbe.Limit)
		}
		return nil, httpErrorf(http.StatusBadRequest, "body-read", "reading request body: %v", err)
	}
	var req ClipRequest
	if err := json.Unmarshal(body, &req); err != nil {
		he := httpErrorf(http.StatusBadRequest, "malformed-json", "malformed request body: %v", err)
		var syn *json.SyntaxError
		if errors.As(err, &syn) {
			he.body.Offset = syn.Offset
		}
		var typ *json.UnmarshalTypeError
		if errors.As(err, &typ) {
			he.body.Offset = typ.Offset
			he.body.Token = typ.Field
		}
		return nil, he
	}

	out := &parsedRequest{opName: strings.ToLower(req.Op)}
	switch out.opName {
	case "intersection":
		out.op = polyclip.Intersection
	case "union":
		out.op = polyclip.Union
	case "difference":
		out.op = polyclip.Difference
	case "xor":
		out.op = polyclip.Xor
	default:
		return nil, httpErrorf(http.StatusBadRequest, "unknown-op",
			"op %q is not one of intersection, union, difference, xor", req.Op)
	}
	switch strings.ToLower(req.Rule) {
	case "", "evenodd":
		out.rule = polyclip.EvenOdd
	case "nonzero":
		out.rule = polyclip.NonZero
	case "positive":
		out.rule = polyclip.Positive
	case "negative":
		out.rule = polyclip.Negative
	default:
		return nil, httpErrorf(http.StatusBadRequest, "unknown-rule",
			"rule %q is not one of evenodd, nonzero, positive, negative", req.Rule)
	}
	out.algoName = strings.ToLower(req.Algorithm)
	switch out.algoName {
	case "", "overlay":
		out.algo, out.algoName = polyclip.AlgoOverlay, "overlay"
	case "slabs":
		out.algo = polyclip.AlgoSlabs
	case "scanbeam":
		out.algo = polyclip.AlgoScanbeam
	case "sequential":
		out.algo = polyclip.AlgoSequential
	default:
		return nil, httpErrorf(http.StatusBadRequest, "unknown-algorithm",
			"algorithm %q is not one of overlay, slabs, scanbeam, sequential", req.Algorithm)
	}

	if out.subject, err = parseOperand(req.Subject); err != nil {
		return nil, operandError("subject", err)
	}
	if out.clip, err = parseOperand(req.Clip); err != nil {
		return nil, operandError("clip", err)
	}
	return out, nil
}

// parseOperand decodes one operand: a JSON string is WKT, an object is a
// GeoJSON geometry or Feature.
func parseOperand(raw json.RawMessage) (polyclip.Polygon, error) {
	trimmed := strings.TrimSpace(string(raw))
	switch {
	case trimmed == "" || trimmed == "null":
		return nil, errors.New("operand is missing")
	case trimmed[0] == '"':
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("malformed WKT string: %v", err)
		}
		return polyclip.ParseWKT(s)
	case trimmed[0] == '{':
		return polyclip.ParseGeoJSON(raw)
	default:
		return nil, errors.New("operand must be a WKT string or a GeoJSON object")
	}
}

// operandError maps a WKT/GeoJSON parse failure to a 400 carrying the
// parser's position context.
func operandError(field string, err error) *httpError {
	he := httpErrorf(http.StatusBadRequest, "bad-"+field, "%s: %v", field, err)
	he.body.Field = field
	var se *wkt.SyntaxError
	if errors.As(err, &se) {
		he.body.Offset = int64(se.Offset)
		he.body.Token = se.Token
		return he
	}
	var pe *geojson.ParseError
	if errors.As(err, &pe) {
		if pe.Offset >= 0 {
			he.body.Offset = pe.Offset
		}
		he.body.Token = pe.Token
	}
	return he
}

// clipError maps a pipeline error to its HTTP answer: typed 4xx for invalid
// input and unsupported rule/algorithm combinations, 504 for deadline
// exhaustion, and a structured 500 for everything the chain could not
// absorb.
func clipError(err error) *httpError {
	switch {
	case errors.Is(err, polyclip.ErrInvalidInput):
		return httpErrorf(http.StatusBadRequest, "invalid-input", "%v", err)
	case errors.Is(err, polyclip.ErrUnsupported):
		return httpErrorf(http.StatusUnprocessableEntity, "unsupported", "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		return httpErrorf(http.StatusGatewayTimeout, "deadline", "%v", err)
	case errors.Is(err, context.Canceled):
		// The client went away; 499-style. No standard code exists, so use
		// 408 — the body will rarely be read anyway.
		return httpErrorf(http.StatusRequestTimeout, "canceled", "%v", err)
	default:
		var ce *polyclip.ClipError
		if errors.As(err, &ce) {
			return httpErrorf(http.StatusInternalServerError, "clip-failed",
				"clipping failed after every fallback: %v", err)
		}
		return httpErrorf(http.StatusInternalServerError, "internal", "%v", err)
	}
}
