#!/bin/sh
# Reproduce BENCH_overlay.json: the million-feature batch overlay through
# the arrangement cache (internal/batch + internal/acache).
#
# Two synthetic layers of OVERLAY_FEATURES features each (so the default
# 500000 is a one-million-feature overlay in total), OVERLAY_REPEAT of them
# exact repeats, are overlaid twice through one cache: a cold run that
# populates it and a warm run that should be all hits. The artifact records
# features/sec, peak RSS (VmHWM), and the cache hit rate.
#
# Embedded contract gate — the script exits nonzero unless:
#   - the warm (repeated-operand) run is >= 2x faster than the cold run;
#   - a cache hit rate is reported.
#
# Deterministic inputs (fixed seed); timings vary with the host.
set -eu
cd "$(dirname "$0")/.."

OUT="${OVERLAY_OUT:-BENCH_overlay.json}"
FEATURES="${OVERLAY_FEATURES:-500000}"
REPEAT="${OVERLAY_REPEAT:-0.5}"
SEED="${OVERLAY_SEED:-42}"
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT INT TERM

echo "running batch overlay benchmark ($FEATURES+$FEATURES features, repeat $REPEAT)..." >&2
go run ./cmd/bench -exp overlay -features "$FEATURES" -repeat "$REPEAT" -seed "$SEED" -json > "$TMP"

# One JSON object per line; the overlay experiment emits exactly one.
RESULT=$(head -n1 "$TMP")
if [ -z "$RESULT" ]; then
	echo "FAIL: benchmark produced no output" >&2
	exit 1
fi

# Contract gate: the counters are emitted by Go's encoding/json with no
# whitespace, so fixed-string grep is reliable here.
if ! printf '%s' "$RESULT" | grep -q '"cacheHitRatePct":'; then
	echo "FAIL: no cache hit rate reported" >&2
	exit 1
fi
if ! printf '%s' "$RESULT" | grep -q '"warmGatePass":1'; then
	echo "FAIL: warm repeated-operand run is not >= 2x faster than cold" >&2
	printf '%s\n' "$RESULT" >&2
	exit 1
fi

CORES=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc)
GOVER=$(go env GOVERSION)
GOOS=$(go env GOOS)
GOARCH=$(go env GOARCH)
DATE=$(date -u +%Y-%m-%d)

{
	printf '{\n'
	printf '  "description": "Million-feature batch overlay (internal/batch): streaming MBR join into spatial buckets, parallel per-bucket clips, arrangement cache keyed by canonical geometry digest. Cold run populates the cache; warm run on the same corpus must be >= 2x faster (gated in scripts/bench_overlay.sh, make overlay-bench).",\n'
	printf '  "environment": {\n'
	printf '    "goos": "%s",\n' "$GOOS"
	printf '    "goarch": "%s",\n' "$GOARCH"
	printf '    "cores": %d,\n' "$CORES"
	printf '    "go": "%s",\n' "$GOVER"
	printf '    "features_per_layer": %d,\n' "$FEATURES"
	printf '    "repeat_fraction": %s,\n' "$REPEAT"
	printf '    "seed": %d,\n' "$SEED"
	printf '    "date": "%s"\n' "$DATE"
	printf '  },\n'
	printf '  "gate": {"warm_ge_2x_cold": true, "hit_rate_reported": true},\n'
	printf '  "result": %s\n' "$RESULT"
	printf '}\n'
} > "$OUT"

echo "wrote $OUT (gate passed)" >&2
