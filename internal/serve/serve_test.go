package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polyclip"
	"polyclip/internal/guard"
)

const (
	sqA = `POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))`
	sqB = `POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))`
)

// newTestServer builds a server + httptest frontend with fast test knobs.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func clipBody(subject, clip, op string, extra map[string]any) []byte {
	m := map[string]any{"subject": subject, "clip": clip, "op": op}
	for k, v := range extra {
		m[k] = v
	}
	b, _ := json.Marshal(m)
	return b
}

func postClip(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/clip", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /clip: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func resultArea(t *testing.T, body []byte) float64 {
	t.Helper()
	var cr ClipResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatalf("response %s: %v", body, err)
	}
	p, err := polyclip.ParseGeoJSON(cr.Result)
	if err != nil {
		t.Fatalf("result geometry: %v", err)
	}
	return p.Area()
}

func TestClipEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postClip(t, ts.URL, clipBody(sqA, sqB, "intersection", nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resultArea(t, body); math.Abs(got-4) > 1e-9 {
		t.Errorf("area = %v, want 4", got)
	}
	var cr ClipResponse
	_ = json.Unmarshal(body, &cr)
	if cr.Engine == "" {
		t.Error("engine attribution missing")
	}
	if cr.Stats == nil {
		t.Error("stats missing from response")
	}
	if cr.Degraded {
		t.Error("uncontended request should not be degraded")
	}
}

func TestClipGeoJSONOperand(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := []byte(fmt.Sprintf(
		`{"subject": %q, "clip": {"type":"Polygon","coordinates":[[[2,2],[6,2],[6,6],[2,6],[2,2]]]}, "op":"union"}`,
		sqA))
	resp, rbody := postClip(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, rbody)
	}
	if got := resultArea(t, rbody); math.Abs(got-28) > 1e-9 {
		t.Errorf("area = %v, want 28", got)
	}
}

func TestAllOpsRulesAlgorithms(t *testing.T) {
	// The full wire-level matrix: every op under every fill rule through
	// every algorithm must answer 200 — no cell of the capability matrix is
	// served by a silent strategy swap or rejected.
	_, ts := newTestServer(t, Config{})
	for _, op := range []string{"intersection", "union", "difference", "xor"} {
		for _, rule := range []string{"", "evenodd", "nonzero", "positive", "negative"} {
			for _, algo := range []string{"overlay", "slabs", "scanbeam", "sequential"} {
				extra := map[string]any{"algorithm": algo}
				if rule != "" {
					extra["rule"] = rule
				}
				resp, body := postClip(t, ts.URL, clipBody(sqA, sqB, op, extra))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s/%s/%s: status %d: %s", op, rule, algo, resp.StatusCode, body)
				}
			}
		}
	}
	// The winding answer must actually differ from parity where geometry
	// demands it: a doubly-wound subject against a frame.
	doubly := `POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (2 2, 6 2, 6 6, 2 6, 2 2))`
	frame := `POLYGON ((-1 -1, 7 -1, 7 7, -1 7, -1 -1))`
	for rule, want := range map[string]float64{"evenodd": 24, "nonzero": 28, "positive": 28, "negative": 0} {
		resp, body := postClip(t, ts.URL, clipBody(doubly, frame, "intersection", map[string]any{"rule": rule, "algorithm": "scanbeam"}))
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s scanbeam: status %d: %s", rule, resp.StatusCode, body)
			continue
		}
		if got := resultArea(t, body); math.Abs(got-want) > 1e-6 {
			t.Errorf("%s scanbeam: area = %v, want %v", rule, got, want)
		}
	}
}

// TestClipErrorUnsupportedMapping pins the 422 contract for unsupported
// rule/engine combinations directly: no registered engine declines any rule
// anymore, so the mapping is exercised at the error-translation seam the
// handler uses (the same path a future capability-gapped engine would take).
func TestClipErrorUnsupportedMapping(t *testing.T) {
	he := clipError(fmt.Errorf("select: %w", polyclip.ErrUnsupported))
	if he.status != http.StatusUnprocessableEntity {
		t.Errorf("status = %d, want 422", he.status)
	}
	if he.body.Code != "unsupported" {
		t.Errorf("code = %q, want unsupported", he.body.Code)
	}
}

func TestDecodeErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 512})
	cases := []struct {
		name        string
		contentType string
		body        string
		status      int
		code        string
		wantOffset  bool
	}{
		{"junk-json", "application/json", `{"subject": oops`, 400, "malformed-json", true},
		{"unknown-op", "application/json", `{"subject":"POLYGON EMPTY","clip":"POLYGON EMPTY","op":"smoosh"}`, 400, "unknown-op", false},
		{"unknown-rule", "application/json", `{"subject":"POLYGON EMPTY","clip":"POLYGON EMPTY","op":"union","rule":"zebra"}`, 400, "unknown-rule", false},
		{"unknown-algorithm", "application/json", `{"subject":"POLYGON EMPTY","clip":"POLYGON EMPTY","op":"union","algorithm":"magic"}`, 400, "unknown-algorithm", false},
		{"bad-wkt", "application/json", `{"subject":"POLYGON ((a b))","clip":"POLYGON EMPTY","op":"union"}`, 400, "bad-subject", true},
		{"bad-geojson", "application/json", `{"subject":{"type":"LineString"},"clip":"POLYGON EMPTY","op":"union"}`, 400, "bad-subject", false},
		{"missing-operand", "application/json", `{"op":"union","clip":"POLYGON EMPTY"}`, 400, "bad-subject", false},
		{"operand-shape", "application/json", `{"subject":42,"clip":"POLYGON EMPTY","op":"union"}`, 400, "bad-subject", false},
		{"content-type", "text/xml", `<x/>`, 415, "unsupported-content-type", false},
		{"too-large", "application/json", `{"subject":"` + strings.Repeat("x", 600) + `"}`, 413, "body-too-large", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/clip", tc.contentType, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var er ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatalf("error body: %v", err)
			}
			if resp.StatusCode != tc.status {
				t.Errorf("status %d, want %d (%+v)", resp.StatusCode, tc.status, er)
			}
			if er.Code != tc.code {
				t.Errorf("code %q, want %q (%+v)", er.Code, tc.code, er)
			}
			if tc.wantOffset && er.Offset == 0 {
				t.Errorf("expected a nonzero byte offset in %+v", er)
			}
		})
	}

	// Method and input validation round out the typed 4xx surface.
	resp, err := http.Get(ts.URL + "/clip")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /clip: status %d, want 405", resp.StatusCode)
	}
	resp2, body := postClip(t, ts.URL, clipBody(`POLYGON ((0 0, 1e200 0, 1e200 1e200, 0 1e200, 0 0))`, sqB, "union", nil))
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("overflowing input: status %d, want 400: %s", resp2.StatusCode, body)
	}
	var er ErrorResponse
	_ = json.Unmarshal(body, &er)
	if er.Code != "invalid-input" {
		t.Errorf("overflowing input: code %q, want invalid-input", er.Code)
	}
}

// TestBatchingCoalesces proves the batcher actually batches: a burst
// launched while the flush loop waits out MaxWait lands in few flushes.
func TestBatchingCoalesces(t *testing.T) {
	s, ts := newTestServer(t, Config{BatchSize: 8, MaxWait: 100 * time.Millisecond})
	const n = 8
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := postClip(t, ts.URL, clipBody(sqA, sqB, "intersection", nil))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d: %s", resp.StatusCode, body)
			}
		}()
	}
	wg.Wait()
	st := s.Statz()
	if st.BatchedRequests != n {
		t.Errorf("batched %d requests, want %d", st.BatchedRequests, n)
	}
	if st.BatchFlushes >= n {
		t.Errorf("%d flushes for %d requests: no coalescing happened", st.BatchFlushes, n)
	}
	if st.MeanBatchSize <= 1 {
		t.Errorf("mean batch size %.2f, want > 1", st.MeanBatchSize)
	}
}

// slowRing builds a many-vertex operand pair so each clip takes real work —
// the overload tests need requests to pile up.
func slowOperands(n int) (string, string) {
	ring := func(cx, cy, r float64) string {
		var b strings.Builder
		b.WriteString("POLYGON ((")
		for i := 0; i <= n; i++ {
			a := 2 * math.Pi * float64(i%n) / float64(n)
			fmt.Fprintf(&b, "%.6f %.6f", cx+r*math.Cos(a), cy+r*math.Sin(a))
			if i < n {
				b.WriteString(", ")
			}
		}
		b.WriteString("))")
		return b.String()
	}
	return ring(0, 0, 10), ring(3, 3, 10)
}

// TestOverloadDegradesThenSheds drives the server past its queue: overflow
// must be served through the degraded chain first, sheds must carry
// Retry-After, nothing may be dropped silently, and the mode must
// disengage once load subsides.
func TestOverloadDegradesThenSheds(t *testing.T) {
	subj, clip := slowOperands(600)
	s, ts := newTestServer(t, Config{
		BatchSize:           2,
		MaxWait:             time.Millisecond,
		QueueDepth:          2,
		MaxConcurrent:       1,
		DegradedConcurrency: 1,
		Threads:             1,
		DegradedHold:        300 * time.Millisecond,
		RequestTimeout:      10 * time.Second,
		MaxBodyBytes:        8 << 20,
	})
	const n = 40
	var (
		wg         sync.WaitGroup
		ok, shed   atomic.Int64
		degraded   atomic.Int64
		other      atomic.Int64
		missingRA  atomic.Int64
		unanswered atomic.Int64
	)
	body := clipBody(subj, clip, "intersection", nil)

	// Wedge the single worker slot before firing the burst: one oversized
	// request (~160ms of clipping) holds MaxConcurrent=1 while the n
	// requests below arrive, so the depth-2 queue overflows regardless of
	// how fast the machine drains 600-vertex clips.
	plugSubj, plugClip := slowOperands(30000)
	plugBody := clipBody(plugSubj, plugClip, "intersection", nil)
	plugDone := make(chan struct{})
	go func() {
		defer close(plugDone)
		resp, err := http.Post(ts.URL+"/clip", "application/json", bytes.NewReader(plugBody))
		if err != nil {
			t.Errorf("plug request failed: %v", err)
			return
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("plug request: status %d: %s", resp.StatusCode, buf.Bytes())
		}
	}()
	time.Sleep(60 * time.Millisecond)

	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/clip", "application/json", bytes.NewReader(body))
			if err != nil {
				unanswered.Add(1)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			_, _ = buf.ReadFrom(resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
				ok.Add(1)
				var cr ClipResponse
				_ = json.Unmarshal(buf.Bytes(), &cr)
				if cr.Degraded {
					degraded.Add(1)
					if len(cr.Attempts) == 0 || !(strings.HasPrefix(cr.Attempts[0], "overlay-coarse") || strings.HasPrefix(cr.Attempts[0], "vatti")) {
						t.Errorf("degraded response did not go through the degraded chain: %v", cr.Attempts)
					}
				}
			case http.StatusServiceUnavailable:
				shed.Add(1)
				if resp.Header.Get("Retry-After") == "" {
					missingRA.Add(1)
				}
			default:
				other.Add(1)
				t.Errorf("unexpected status %d: %s", resp.StatusCode, buf.Bytes())
			}
		}()
	}
	// Observe the mode while the burst is still in flight: wg.Wait below can
	// outlast DegradedHold (two queued requests drain behind the plug), so
	// the engaged state must be sampled now, not after.
	sawDegraded := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if s.Mode() == "degraded" {
			sawDegraded = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	<-plugDone
	if unanswered.Load() > 0 {
		t.Errorf("%d requests got no HTTP answer at all", unanswered.Load())
	}
	if missingRA.Load() > 0 {
		t.Errorf("%d shed responses missing Retry-After", missingRA.Load())
	}
	if ok.Load()+shed.Load()+other.Load() != n {
		t.Errorf("answered %d of %d", ok.Load()+shed.Load()+other.Load(), n)
	}
	st := s.Statz()
	if st.DegradedServed == 0 {
		t.Error("no overflow traffic was served through the degraded chain")
	}
	if degraded.Load() == 0 {
		t.Error("no 200 response was marked degraded")
	}
	if !sawDegraded {
		t.Error("mode never engaged degraded during the overload burst")
	}
	// Load subsided: the mode must disengage once the hold expires.
	for deadline := time.Now().Add(3 * time.Second); s.Mode() != "normal" && time.Now().Before(deadline); {
		time.Sleep(10 * time.Millisecond)
	}
	if s.Mode() != "normal" {
		t.Error("mode should return to normal once load subsides")
	}
	t.Logf("overload: ok=%d (degraded=%d) shed=%d statz=%s", ok.Load(), degraded.Load(), shed.Load(), st)
}

// TestServeFaultSites drives one injected panic through each serve-path
// fault site: the process must not crash and every request must still get
// an HTTP answer.
func TestServeFaultSites(t *testing.T) {
	for _, site := range []string{"serve.enqueue", "serve.flush", "serve.encode"} {
		t.Run(site, func(t *testing.T) {
			_, ts := newTestServer(t, Config{MaxWait: time.Millisecond})
			guard.WithFault(t, site, guard.Once(func() {
				panic("chaos: injected panic at " + site)
			}))
			resp, body := postClip(t, ts.URL, clipBody(sqA, sqB, "intersection", nil))
			if resp.StatusCode != http.StatusInternalServerError {
				t.Errorf("faulted request: status %d, want 500: %s", resp.StatusCode, body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("error body is not structured JSON: %s", body)
			}
			// The fault was one-shot: the next request must succeed.
			resp2, body2 := postClip(t, ts.URL, clipBody(sqA, sqB, "intersection", nil))
			if resp2.StatusCode != http.StatusOK {
				t.Errorf("post-fault request: status %d: %s", resp2.StatusCode, body2)
			}
		})
	}
}

// TestEngineFaultRetried: a transient engine panic is absorbed by the
// serve layer's jittered retry (or the library's own fallback chain) — the
// client still sees a 200.
func TestEngineFaultRetried(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxWait: time.Millisecond, MaxRetries: 2, RetryBase: time.Millisecond})
	guard.WithFault(t, "overlay.clip", guard.Once(func() {
		panic("chaos: transient engine fault")
	}))
	resp, body := postClip(t, ts.URL, clipBody(sqA, sqB, "intersection", nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resultArea(t, body); math.Abs(got-4) > 1e-9 {
		t.Errorf("area = %v, want 4", got)
	}
	st := s.Statz()
	if st.FallbackSteps == 0 && st.ServeRetries == 0 && st.Recovered == 0 {
		t.Error("no resilience intervention recorded for the faulted clip")
	}
}

func TestDeadlineBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxWait: time.Millisecond, RequestTimeout: 60 * time.Millisecond, MaxRetries: 0})
	guard.WithFault(t, "par.worker", func() { time.Sleep(300 * time.Millisecond) })
	start := time.Now()
	resp, body := postClip(t, ts.URL, clipBody(sqA, sqB, "intersection", nil))
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want 504 or structured 500: %s", resp.StatusCode, body)
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline-bounded request took %v", elapsed)
	}
}

func TestHealthzStatzMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxWait: time.Millisecond})
	postClip(t, ts.URL, clipBody(sqA, sqB, "xor", nil))

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("statz: %v", err)
	}
	resp.Body.Close()
	if st.Served < 1 || st.OK < 1 {
		t.Errorf("statz counters: %+v", st)
	}
	if st.String() == "" {
		t.Error("statz String is empty")
	}
	// The arrangement-cache gauges reflect the shared cache: sane, not
	// negative, and rate within [0, 1]. (Totals depend on what other tests
	// ran first, so only the invariants are pinned.)
	if st.CacheBytes < 0 || st.CacheEntries < 0 || st.CacheHitRate < 0 || st.CacheHitRate > 1 {
		t.Errorf("statz cache gauges out of range: %+v", st)
	}

	resp, err = http.Get(ts.URL + "/metrics.csv")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("metrics.csv has no data rows: %q", buf.String())
	}
	if lines[0] != strings.Join(csvHeader, ",") {
		t.Errorf("csv header = %q", lines[0])
	}
	row := strings.Split(lines[1], ",")
	if len(row) != len(csvHeader) {
		t.Errorf("csv row has %d fields, want %d", len(row), len(csvHeader))
	}

	// Lifecycle timestamps are monotone for a batched request.
	recs := s.metrics.Records()
	var found bool
	for _, m := range recs {
		if m.Status == http.StatusOK && !m.Degraded {
			found = true
			if !(m.RecvNs <= m.EnqueueNs && m.EnqueueNs <= m.FlushNs && m.FlushNs <= m.DoneNs) {
				t.Errorf("timestamps not monotone: %+v", m)
			}
		}
	}
	if !found {
		t.Error("no successful batched record retained")
	}
}

func TestCloseDrains(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxWait: time.Millisecond})
	s.Close()
	resp, body := postClip(t, ts.URL, clipBody(sqA, sqB, "union", nil))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-close clip: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 must still carry Retry-After")
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-close healthz: %d", hresp.StatusCode)
	}
	// Close is idempotent.
	s.Close()
}

func TestClientCancelMidFlight(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxWait: time.Millisecond})
	subj, clip := slowOperands(400)
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/clip",
		bytes.NewReader(clipBody(subj, clip, "union", nil)))
	req.Header.Set("Content-Type", "application/json")
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
	}
	// Whatever the racing outcome for the canceled call, the server must
	// still be fully functional.
	resp2, body := postClip(t, ts.URL, clipBody(sqA, sqB, "intersection", nil))
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("post-cancel request: status %d: %s", resp2.StatusCode, body)
	}
}

func TestMetricsRingWraps(t *testing.T) {
	r := newMetricsRing(4)
	for i := 1; i <= 6; i++ {
		r.Add(RequestMetrics{ID: int64(i), RecvNs: int64(i), DoneNs: int64(i + 1)})
	}
	recs := r.Records()
	if len(recs) != 4 {
		t.Fatalf("retained %d, want 4", len(recs))
	}
	if recs[0].ID != 3 || recs[3].ID != 6 {
		t.Errorf("window = %v..%v, want 3..6", recs[0].ID, recs[3].ID)
	}
	p50, p99 := r.Percentiles()
	if p50 == 0 || p99 == 0 {
		t.Errorf("percentiles = %v, %v", p50, p99)
	}
}
