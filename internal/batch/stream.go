package batch

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"polyclip/internal/geojson"
	"polyclip/internal/geom"
	"polyclip/internal/wkt"
)

// ReadFeatures streams one feature layer out of r, detecting the format
// from the first non-space byte: '{' or '[' means GeoJSON (FeatureCollection
// or newline-delimited — geojson.DecodeFeatures), anything else means WKT,
// one geometry per non-empty line. Features are materialized (the overlay
// needs random access for the spatial join) but the input text is never
// buffered whole.
func ReadFeatures(r io.Reader) ([]geom.Polygon, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	for {
		c, err := br.ReadByte()
		if err == io.EOF {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		switch c {
		case ' ', '\t', '\r', '\n':
			continue
		}
		if err := br.UnreadByte(); err != nil {
			return nil, err
		}
		if c == '{' || c == '[' {
			var out []geom.Polygon
			err := geojson.DecodeFeatures(br, func(p geom.Polygon) error {
				out = append(out, p)
				return nil
			})
			return out, err
		}
		return readWKTLines(br)
	}
}

// readWKTLines parses one WKT geometry per non-empty line.
func readWKTLines(br *bufio.Reader) ([]geom.Polygon, error) {
	var out []geom.Polygon
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20) // features can be long lines
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		p, err := wkt.Unmarshal(line)
		if err != nil {
			return nil, fmt.Errorf("batch: wkt line %d: %w", lineNo, err)
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("batch: reading line %d: %w", lineNo, err)
	}
	return out, nil
}
