package geom

import "math"

// Rect returns a rectangle ring with counter-clockwise orientation.
func Rect(minX, minY, maxX, maxY float64) Ring {
	return Ring{{minX, minY}, {maxX, minY}, {maxX, maxY}, {minX, maxY}}
}

// RectPolygon returns a single-ring rectangle polygon.
func RectPolygon(minX, minY, maxX, maxY float64) Polygon {
	return Polygon{Rect(minX, minY, maxX, maxY)}
}

// RegularPolygon returns a counter-clockwise regular n-gon centred at c with
// circumradius r, with the first vertex rotated by phase radians.
func RegularPolygon(c Point, r float64, n int, phase float64) Ring {
	ring := make(Ring, n)
	for i := 0; i < n; i++ {
		a := phase + 2*math.Pi*float64(i)/float64(n)
		ring[i] = Point{c.X + r*math.Cos(a), c.Y + r*math.Sin(a)}
	}
	return ring
}

// Star returns a non-self-intersecting star with 2n vertices alternating
// between outer radius rOut and inner radius rIn.
func Star(c Point, rOut, rIn float64, n int, phase float64) Ring {
	ring := make(Ring, 2*n)
	for i := 0; i < 2*n; i++ {
		r := rOut
		if i%2 == 1 {
			r = rIn
		}
		a := phase + math.Pi*float64(i)/float64(n)
		ring[i] = Point{c.X + r*math.Cos(a), c.Y + r*math.Sin(a)}
	}
	return ring
}

// SelfIntersectingStar returns the classic pentagram-style self-intersecting
// star: n outer vertices connected with stride 2, so consecutive edges cross.
// n must be odd and >= 5 for the edges to self-intersect.
func SelfIntersectingStar(c Point, r float64, n int, phase float64) Ring {
	ring := make(Ring, n)
	for i := 0; i < n; i++ {
		a := phase + 2*math.Pi*float64(i*2%n)/float64(n)
		ring[i] = Point{c.X + r*math.Cos(a), c.Y + r*math.Sin(a)}
	}
	return ring
}

// BowTie returns the canonical self-intersecting quadrilateral (two triangles
// meeting at the crossing of its diagonally connected vertices).
func BowTie(minX, minY, maxX, maxY float64) Ring {
	return Ring{{minX, minY}, {maxX, maxY}, {maxX, minY}, {minX, maxY}}
}

// Translate returns the ring translated by (dx, dy).
func (r Ring) Translate(dx, dy float64) Ring {
	out := make(Ring, len(r))
	for i, p := range r {
		out[i] = Point{p.X + dx, p.Y + dy}
	}
	return out
}

// Translate returns the polygon translated by (dx, dy).
func (p Polygon) Translate(dx, dy float64) Polygon {
	out := make(Polygon, len(p))
	for i, r := range p {
		out[i] = r.Translate(dx, dy)
	}
	return out
}

// ScaleAbout returns the ring scaled by f about point c.
func (r Ring) ScaleAbout(c Point, f float64) Ring {
	out := make(Ring, len(r))
	for i, p := range r {
		out[i] = Point{c.X + (p.X-c.X)*f, c.Y + (p.Y-c.Y)*f}
	}
	return out
}
