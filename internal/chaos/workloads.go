// Adversarial workload generation. Every generator is driven by an explicit
// *rand.Rand, so a chaos run is a pure function of its seed: the same seed
// always replays the same cases, which is what makes a chaos failure
// debuggable after the fact.
//
// The families are chosen from where clippers actually break (Foster &
// Overfelt's degeneracy catalogue, the paper's §III-C): near-collinear
// geometry that stresses orientation predicates, shared vertices and edges
// that produce degenerate intersections, zero-area spikes that must be
// repaired away, coordinate magnitudes at both ends of the float64 range,
// and self-intersecting rings whose even-odd measure differs from their
// shoelace area.
package chaos

import (
	"math"
	"math/rand"

	"polyclip"
)

// workload is one generated chaos case: an operand pair, the operation to
// apply, and the family label used in reports. Every family cross-checks
// every engine — the arrangement pre-resolution in internal/arrange brought
// the sequential Vatti sweep into the same domain as the overlay engine, so
// no family needs scoping anymore.
type workload struct {
	name string
	a, b polyclip.Polygon
	op   polyclip.Op
}

// generator is one workload family: a report label, the family group it
// belongs to (selectable via Config.Family), and the generation function.
type generator struct {
	name   string
	family string
	gen    func(rng *rand.Rand) (a, b polyclip.Polygon)
}

// Family groups. "adversarial" is the original stress catalogue;
// "degenerate" is the Foster–Overfelt exact-degeneracy taxonomy, where
// every coincidence is constructed bit-exactly rather than approached by
// jitter; "tiles" cuts whole layers into z/x/y pyramids and holds the
// tiling to its partition invariant (see tiles.go).
const (
	FamilyAdversarial = "adversarial"
	FamilyDegenerate  = "degenerate"
	FamilyTiles       = "tiles"
)

// generators is the cycle of workload families. Order matters only for
// reproducibility: case i uses generators[i % len] with a case-specific
// rng, so new families must be appended, never inserted.
var generators = []generator{
	{"random-star", FamilyAdversarial, genRandomStars},
	{"near-collinear-fan", FamilyAdversarial, genNearCollinearFans},
	{"shared-vertex-grid", FamilyAdversarial, genSharedVertexGrids},
	{"spike-ring", FamilyAdversarial, genSpikeRings},
	{"scale-huge", FamilyAdversarial, genScaleHuge},
	{"scale-tiny", FamilyAdversarial, genScaleTiny},
	{"self-touching", FamilyAdversarial, genSelfTouching},
	{"coincident-edge", FamilyDegenerate, genCoincidentEdges},
	{"collinear-overlap", FamilyDegenerate, genCollinearOverlaps},
	{"shared-boundary", FamilyDegenerate, genSharedBoundaries},
	{"t-vertex", FamilyDegenerate, genTVertices},
	{"coincident-ring", FamilyDegenerate, genCoincidentRings},
	{"tiles-rings", FamilyTiles, genTilesRings},
	{"tiles-winding", FamilyTiles, genTilesWinding},
	{"tiles-aligned", FamilyTiles, genTilesAligned},
}

// Families returns the selectable family-group names, for flag validation.
func Families() []string { return []string{FamilyAdversarial, FamilyDegenerate, FamilyTiles} }

// generatorsFor returns the generator cycle for a family filter: the empty
// string selects every family, a group name selects that group, and an
// exact generator name selects the single family. Unknown filters return
// nil, which Run reports as a configuration failure.
func generatorsFor(family string) []generator {
	if family == "" {
		return generators
	}
	var out []generator
	for _, g := range generators {
		if g.family == family || g.name == family {
			out = append(out, g)
		}
	}
	return out
}

// buildWorkload deterministically produces case i from the run seed over
// the full generator cycle.
func buildWorkload(seed int64, i int) workload {
	return buildWorkloadFrom(seed, i, generators)
}

// buildWorkloadFrom produces case i from a (possibly filtered) generator
// cycle. The rng stream depends only on (seed, i), not on the filter, so a
// failing filtered case is replayable in isolation.
func buildWorkloadFrom(seed int64, i int, gens []generator) workload {
	// A large odd multiplier decorrelates per-case streams while keeping
	// them a pure function of (seed, i).
	rng := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
	g := gens[i%len(gens)]
	a, b := g.gen(rng)
	return workload{
		name: g.name,
		a:    a,
		b:    b,
		op:   polyclip.Op(i / len(gens) % 4),
	}
}

// star builds an n-point star ring alternating between two radii. With
// rIn close to rOut it degenerates to a jittered circle; with rIn larger
// than rOut the ring self-intersects.
func star(cx, cy, rOut, rIn float64, n int, phase float64) polyclip.Ring {
	ring := make(polyclip.Ring, 0, 2*n)
	for i := 0; i < 2*n; i++ {
		r := rOut
		if i%2 == 1 {
			r = rIn
		}
		a := phase + math.Pi*float64(i)/float64(n)
		ring = append(ring, polyclip.Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)})
	}
	return ring
}

// genRandomStars is the clean baseline family: two overlapping star
// polygons with moderate vertex counts and benign coordinates.
func genRandomStars(rng *rand.Rand) (polyclip.Polygon, polyclip.Polygon) {
	n := 8 + rng.Intn(40)
	a := polyclip.Polygon{star(0, 0, 10, 4+6*rng.Float64(), n, rng.Float64())}
	b := polyclip.Polygon{star(3*rng.Float64(), 3*rng.Float64(), 8, 3+5*rng.Float64(), n/2+3, rng.Float64())}
	return a, b
}

// genNearCollinearFans builds slivers whose boundary vertices are almost,
// but not exactly, collinear — the classic orientation-predicate stress.
func genNearCollinearFans(rng *rand.Rand) (polyclip.Polygon, polyclip.Polygon) {
	fan := func(y0, h float64, up bool) polyclip.Ring {
		n := 10 + rng.Intn(30)
		ring := make(polyclip.Ring, 0, n+2)
		for i := 0; i <= n; i++ {
			x := 20 * float64(i) / float64(n)
			// Jitter of ~1e-9 of the span: three orders above the 1e-12
			// relative snap grid, far below anything visible.
			ring = append(ring, polyclip.Point{X: x, Y: y0 + 2e-8*(rng.Float64()-0.5)})
		}
		apex := polyclip.Point{X: 10 + 4*(rng.Float64()-0.5), Y: y0 + h}
		if !up {
			apex.Y = y0 - h
		}
		return append(ring, apex)
	}
	a := polyclip.Polygon{fan(0, 8, true)}
	b := polyclip.Polygon{fan(4, 8, false)}
	return a, b
}

// genSharedVertexGrids builds checkerboards of cells that touch only at
// shared corners — every interior vertex is a degenerate (vertex-on-vertex)
// intersection between the operands.
func genSharedVertexGrids(rng *rand.Rand) (polyclip.Polygon, polyclip.Polygon) {
	k := 3 + rng.Intn(3)
	cell := func(i, j int) polyclip.Ring {
		x, y := float64(i), float64(j)
		return polyclip.Ring{{X: x, Y: y}, {X: x + 1, Y: y}, {X: x + 1, Y: y + 1}, {X: x, Y: y + 1}}
	}
	var a, b polyclip.Polygon
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			if (i+j)%2 == 0 {
				a = append(a, cell(i, j))
			} else {
				b = append(b, cell(i, j))
			}
		}
	}
	// Shift B by half a cell half of the time, so edges (not just corners)
	// of the two operands coincide.
	if rng.Intn(2) == 0 {
		for ri := range b {
			for vi := range b[ri] {
				b[ri][vi].X += 0.5
			}
		}
	}
	return a, b
}

// genSpikeRings builds squares with zero-area spikes and duplicated
// vertices — exactly what guard.Repair exists to clean.
func genSpikeRings(rng *rand.Rand) (polyclip.Polygon, polyclip.Polygon) {
	spiky := func(x0, y0, w float64) polyclip.Ring {
		base := polyclip.Ring{
			{X: x0, Y: y0}, {X: x0 + w, Y: y0}, {X: x0 + w, Y: y0 + w}, {X: x0, Y: y0 + w},
		}
		ring := make(polyclip.Ring, 0, 3*len(base))
		for _, pt := range base {
			ring = append(ring, pt)
			switch rng.Intn(3) {
			case 0: // duplicate vertex
				ring = append(ring, pt)
			case 1: // zero-area spike out and back
				sp := polyclip.Point{X: pt.X + w*rng.Float64(), Y: pt.Y - w*rng.Float64()}
				ring = append(ring, sp, pt)
			}
		}
		return ring
	}
	a := polyclip.Polygon{spiky(0, 0, 6)}
	b := polyclip.Polygon{spiky(2+2*rng.Float64(), 2+2*rng.Float64(), 6)}
	return a, b
}

// genScaleHuge replays the star family at coordinate magnitudes near the
// validation ceiling, where naive arithmetic overflows.
func genScaleHuge(rng *rand.Rand) (polyclip.Polygon, polyclip.Polygon) {
	a, b := genRandomStars(rng)
	// 2^332 ≈ 8.7e99: a power of two keeps the scaling itself exact.
	return scalePoly(a, math.Ldexp(1, 332)), scalePoly(b, math.Ldexp(1, 332))
}

// genScaleTiny replays the star family at subnormal-adjacent magnitudes.
func genScaleTiny(rng *rand.Rand) (polyclip.Polygon, polyclip.Polygon) {
	a, b := genRandomStars(rng)
	return scalePoly(a, math.Ldexp(1, -40)), scalePoly(b, math.Ldexp(1, -40))
}

// genSelfTouching builds self-intersecting rings (polygrams and bowties)
// whose even-odd measure differs from their shoelace area.
func genSelfTouching(rng *rand.Rand) (polyclip.Polygon, polyclip.Polygon) {
	bowtie := func(cx, cy, w float64) polyclip.Ring {
		return polyclip.Ring{
			{X: cx - w, Y: cy - w}, {X: cx + w, Y: cy + w},
			{X: cx + w, Y: cy - w}, {X: cx - w, Y: cy + w},
		}
	}
	// A {n/k} polygram (pentagram and friends): connecting every k-th
	// point of a circle self-intersects everywhere and winds the center
	// region k times, so shoelace and even-odd measure diverge wildly.
	polygram := func(cx, cy, r float64, n, k int, phase float64) polyclip.Ring {
		ring := make(polyclip.Ring, 0, n)
		for i := 0; i < n; i++ {
			a := phase + 2*math.Pi*float64(i*k%n)/float64(n)
			ring = append(ring, polyclip.Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)})
		}
		return ring
	}
	n := 5 + 2*rng.Intn(4) // odd n in 5..11, coprime with k=2
	a := polyclip.Polygon{polygram(0, 0, 8+4*rng.Float64(), n, 2, rng.Float64())}
	b := polyclip.Polygon{bowtie(2*rng.Float64(), 2*rng.Float64(), 6)}
	return a, b
}

// ---------------------------------------------------------------------------
// Foster–Overfelt degenerate taxonomy. Unlike the adversarial families,
// which approach degeneracy by jitter, these construct it exactly: every
// coordinate is a small integer (or half-integer), so shared edges are
// bit-identical between the operands and vertex-on-edge incidences are
// exact. These are the inputs where clippers classically emit doubled
// boundaries, drop slivers, or disagree between engines.

// rectRing builds an axis-aligned rectangle, CCW by default, CW when rev.
func rectRing(x0, y0, x1, y1 float64, rev bool) polyclip.Ring {
	r := polyclip.Ring{{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1}}
	if rev {
		for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
			r[i], r[j] = r[j], r[i]
		}
	}
	return r
}

// genCoincidentEdges builds operand pairs sharing one full edge
// bit-exactly: two rectangles abutting along a common vertical edge, with
// the shared edge's endpoints sometimes identical and sometimes staggered
// so each operand's corner lies strictly inside the other's edge.
func genCoincidentEdges(rng *rand.Rand) (polyclip.Polygon, polyclip.Polygon) {
	w1 := float64(2 + rng.Intn(6))
	w2 := float64(2 + rng.Intn(6))
	h := float64(3 + rng.Intn(6))
	// Stagger B's vertical extent by an integer amount half the time: the
	// shared boundary then partially overlaps instead of coinciding end to
	// end, which forces a T-junction at each stagger point.
	dy := float64(rng.Intn(int(h)))
	if rng.Intn(2) == 0 {
		dy = 0
	}
	a := polyclip.Polygon{rectRing(0, 0, w1, h, false)}
	b := polyclip.Polygon{rectRing(w1, dy, w1+w2, dy+h, rng.Intn(2) == 0)}
	return a, b
}

// genCollinearOverlaps builds partially overlapping collinear runs: both
// operands have an edge on the line y=0, overlapping over a strict
// sub-interval, with the operands on the same side half the time (overlap
// region is interior to both) and on opposite sides otherwise (the shared
// run is boundary-only contact).
func genCollinearOverlaps(rng *rand.Rand) (polyclip.Polygon, polyclip.Polygon) {
	aw := float64(4 + rng.Intn(8))
	shift := float64(1 + rng.Intn(int(aw)-1)) // strict partial overlap
	bw := float64(4 + rng.Intn(8))
	ah := float64(2 + rng.Intn(5))
	bh := float64(2 + rng.Intn(5))
	a := polyclip.Polygon{rectRing(0, 0, aw, ah, false)}
	var b polyclip.Polygon
	if rng.Intn(2) == 0 {
		b = polyclip.Polygon{rectRing(shift, 0, shift+bw, bh, false)}
	} else {
		b = polyclip.Polygon{rectRing(shift, -bh, shift+bw, 0, rng.Intn(2) == 0)}
	}
	return a, b
}

// genSharedBoundaries builds operands sharing stretches of boundary while
// one contains the other: B is a flush sub-rectangle of A, coinciding with
// A along one, two, or three of its sides. A\B must open a hole (or an
// L-region) bounded partly by edges both operands own.
func genSharedBoundaries(rng *rand.Rand) (polyclip.Polygon, polyclip.Polygon) {
	w := float64(6 + rng.Intn(6))
	h := float64(6 + rng.Intn(6))
	a := polyclip.Polygon{rectRing(0, 0, w, h, false)}
	var b polyclip.Polygon
	switch rng.Intn(3) {
	case 0: // flush strip along the left side: shares three of A's edges
		b = polyclip.Polygon{rectRing(0, 0, float64(1+rng.Intn(int(w)-1)), h, false)}
	case 1: // flush corner cell: shares two of A's edges
		b = polyclip.Polygon{rectRing(0, 0, float64(1+rng.Intn(int(w)-1)), float64(1+rng.Intn(int(h)-1)), rng.Intn(2) == 0)}
	default: // flush along the bottom only
		b = polyclip.Polygon{rectRing(float64(1+rng.Intn(2)), 0, w-1, float64(1+rng.Intn(int(h)-1)), false)}
	}
	return a, b
}

// genTVertices builds exact T-junctions: B's vertices land in the strict
// interior of A's edges (never on A's corners), both as touch-only contact
// from outside and as a crossing whose entry point is a T-vertex.
func genTVertices(rng *rand.Rand) (polyclip.Polygon, polyclip.Polygon) {
	w := float64(8 + rng.Intn(4))
	h := float64(6 + rng.Intn(4))
	a := polyclip.Polygon{rectRing(0, 0, w, h, false)}
	ax := float64(2 + rng.Intn(int(w)-3)) // interior abscissa on A's bottom edge
	var b polyclip.Polygon
	switch rng.Intn(3) {
	case 0: // triangle apex touching A's bottom edge from below (contact only)
		b = polyclip.Polygon{{{X: ax, Y: 0}, {X: ax + 2, Y: -3}, {X: ax - 2, Y: -3}}}
	case 1: // diamond with its top vertex a T-vertex on A's bottom edge, body outside
		b = polyclip.Polygon{{{X: ax, Y: 0}, {X: ax - 2, Y: -2}, {X: ax, Y: -4}, {X: ax + 2, Y: -2}}}
	default: // rectangle straddling the edge with both its top corners on it
		b = polyclip.Polygon{rectRing(ax-1, -2, ax+1, 0, false)}
		// One extra collinear vertex subdividing B's top edge at ax: a
		// T-vertex within the coincident run itself.
		b = polyclip.Polygon{{
			{X: ax - 1, Y: -2}, {X: ax + 1, Y: -2}, {X: ax + 1, Y: 0}, {X: ax, Y: 0}, {X: ax - 1, Y: 0},
		}}
	}
	return a, b
}

// genCoincidentRings builds rings that coincide entirely: B repeats one of
// A's rings verbatim (sometimes reversed, flipping its winding sign), and
// half the time A itself carries a doubled ring whose even-odd content
// cancels while its nonzero content does not.
func genCoincidentRings(rng *rand.Rand) (polyclip.Polygon, polyclip.Polygon) {
	w := float64(4 + rng.Intn(6))
	outer := rectRing(0, 0, w+4, w+4, false)
	inner := rectRing(1, 1, 1+w, 1+w, false)
	a := polyclip.Polygon{outer}
	doubled := rng.Intn(2) == 0
	if doubled {
		// Doubled interior ring: even-odd sees outer minus square minus
		// nothing (the pair cancels), nonzero sees the full outer region.
		a = append(a, inner, append(polyclip.Ring(nil), inner...))
	}
	var b polyclip.Polygon
	switch rng.Intn(3) {
	case 0: // B is A's outer ring verbatim
		b = polyclip.Polygon{append(polyclip.Ring(nil), outer...)}
	case 1: // B is A's outer ring reversed (opposite winding)
		b = polyclip.Polygon{rectRing(0, 0, w+4, w+4, true)}
	default: // B repeats A's interior square ring verbatim
		if !doubled {
			a = append(a, inner)
		}
		b = polyclip.Polygon{append(polyclip.Ring(nil), inner...)}
	}
	return a, b
}

// scalePoly returns p with every coordinate multiplied by f.
func scalePoly(p polyclip.Polygon, f float64) polyclip.Polygon {
	out := make(polyclip.Polygon, len(p))
	for ri, r := range p {
		nr := make(polyclip.Ring, len(r))
		for vi, pt := range r {
			nr[vi] = polyclip.Point{X: pt.X * f, Y: pt.Y * f}
		}
		out[ri] = nr
	}
	return out
}

// translatePoly returns p with every vertex offset by (dx, dy).
func translatePoly(p polyclip.Polygon, dx, dy float64) polyclip.Polygon {
	out := make(polyclip.Polygon, len(p))
	for ri, r := range p {
		nr := make(polyclip.Ring, len(r))
		for vi, pt := range r {
			nr[vi] = polyclip.Point{X: pt.X + dx, Y: pt.Y + dy}
		}
		out[ri] = nr
	}
	return out
}

// dyadicExtent returns the power of two nearest the workload's linear
// extent — the translation/scaling unit that keeps float arithmetic exact
// for the invariance checks.
func dyadicExtent(a, b polyclip.Polygon) float64 {
	box := a.BBox().Union(b.BBox())
	m := math.Max(box.Width(), box.Height())
	if m <= 0 || math.IsInf(m, 0) || math.IsNaN(m) {
		return 1
	}
	return math.Ldexp(1, int(math.Round(math.Log2(m))))
}
