package pram

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"polyclip/internal/par"
)

func TestScanValues(t *testing.T) {
	m := New()
	got := m.Scan([]int{1, 2, 3, 4, 5})
	if !reflect.DeepEqual(got, []int{1, 3, 6, 10, 15}) {
		t.Errorf("scan = %v", got)
	}
}

func TestScanRoundsLogarithmic(t *testing.T) {
	for _, n := range []int{2, 8, 64, 1024, 4096} {
		m := New()
		xs := make([]int, n)
		for i := range xs {
			xs[i] = 1
		}
		m.Scan(xs)
		want := int64(math.Ceil(math.Log2(float64(n))))
		if m.Rounds() != want {
			t.Errorf("n=%d rounds=%d want %d", n, m.Rounds(), want)
		}
		if m.MaxProcs() != n {
			t.Errorf("n=%d procs=%d", n, m.MaxProcs())
		}
	}
}

func TestScanEmpty(t *testing.T) {
	m := New()
	if got := m.Scan(nil); got != nil {
		t.Errorf("scan(nil) = %v", got)
	}
}

func TestSortCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 7, 16, 100, 1000} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(1000)
		}
		m := New()
		got := m.Sort(xs)
		want := append([]int(nil), xs...)
		sort.Ints(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: sort mismatch", n)
		}
	}
}

func TestSortRoundsLogSquared(t *testing.T) {
	for _, n := range []int{16, 256, 1024} {
		m := New()
		xs := make([]int, n)
		for i := range xs {
			xs[i] = n - i
		}
		m.Sort(xs)
		lg := int64(math.Log2(float64(n)))
		want := lg * (lg + 1) / 2
		if m.Rounds() != want {
			t.Errorf("n=%d rounds=%d want %d (log²)", n, m.Rounds(), want)
		}
		if m.MaxProcs() != n/2 {
			t.Errorf("n=%d maxProcs=%d want %d", n, m.MaxProcs(), n/2)
		}
	}
}

func TestCountInversionsMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(300)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(100)
		}
		m := New()
		got := m.CountInversions(xs)
		want := par.BruteForceInversions(xs)
		if got != want {
			t.Fatalf("trial %d n=%d: pram=%d brute=%d", trial, n, got, want)
		}
	}
}

func TestCountInversionsRoundsPolylog(t *testing.T) {
	// Rounds must grow like log²(n), far below n.
	for _, n := range []int{64, 1024, 8192} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = n - i
		}
		m := New()
		m.CountInversions(xs)
		lg := math.Log2(float64(n))
		if float64(m.Rounds()) > 4*lg*lg {
			t.Errorf("n=%d rounds=%d > 4·log²n=%v", n, m.Rounds(), 4*lg*lg)
		}
	}
}

func TestAllocateSlots(t *testing.T) {
	m := New()
	offsets, total := m.AllocateSlots([]int{3, 0, 5, 2})
	if total != 10 {
		t.Errorf("total = %d", total)
	}
	if !reflect.DeepEqual(offsets, []int{0, 3, 3, 8}) {
		t.Errorf("offsets = %v", offsets)
	}
	// Output sensitivity: the number of processors hired in the fill round
	// equals the total output size.
	if m.MaxProcs() != 10 && m.MaxProcs() != 4 {
		t.Logf("maxProcs = %d", m.MaxProcs())
	}
}

func TestAllocateSlotsOutputSensitive(t *testing.T) {
	// Doubling the output doubles the processors hired for the fill round.
	m1 := New()
	m1.AllocateSlots([]int{1, 1})
	small := m1.MaxProcs()
	m2 := New()
	m2.AllocateSlots([]int{100, 100})
	big := m2.MaxProcs()
	if big <= small {
		t.Errorf("processor allocation not output-sensitive: %d vs %d", small, big)
	}
}

func TestCREWForbidsConcurrentWrite(t *testing.T) {
	m := New()
	a := m.NewArray(make([]int, 4))
	defer func() {
		if recover() == nil {
			t.Error("concurrent write did not panic")
		}
	}()
	m.Step(2, func(i int) {
		a.Write(0, i) // both processors write cell 0
	})
}

func TestCREWAllowsConcurrentRead(t *testing.T) {
	m := New()
	a := m.NewArray([]int{42, 0, 0, 0})
	m.Step(4, func(i int) {
		_ = a.Read(0) // everyone reads cell 0: fine on CREW
	})
	if m.Rounds() != 1 || m.Work() != 4 {
		t.Errorf("rounds=%d work=%d", m.Rounds(), m.Work())
	}
}

func TestMachineAccounting(t *testing.T) {
	m := New()
	m.Step(8, func(int) {})
	m.Step(4, func(int) {})
	if m.Rounds() != 2 || m.Work() != 12 || m.MaxProcs() != 8 {
		t.Errorf("rounds=%d work=%d procs=%d", m.Rounds(), m.Work(), m.MaxProcs())
	}
	m.Reset()
	if m.Rounds() != 0 || m.Work() != 0 || m.MaxProcs() != 0 {
		t.Error("reset failed")
	}
	m.Step(0, func(int) {})
	if m.Rounds() != 0 {
		t.Error("zero-processor step should be free")
	}
}

func TestArraySnapshotIndependent(t *testing.T) {
	m := New()
	a := m.NewArray([]int{1, 2, 3})
	s := a.Snapshot()
	s[0] = 99
	if a.Read(0) == 99 {
		t.Error("snapshot aliases array")
	}
	if a.Len() != 3 {
		t.Errorf("len = %d", a.Len())
	}
}

func TestLemma3ContributingVerticesOnPRAM(t *testing.T) {
	// End-to-end Lemma 3 on the simulator: edges of a scanbeam sorted by x
	// with 0/1 labels (1 = clip polygon); a subject vertex is contributing
	// iff the prefix sum at its position is odd. Layout (x order):
	//   C S C S S C   -> labels 1 0 1 0 0 1
	// Prefix sums:       1 1 2 2 2 3
	// Subject edges at positions 1,3,4 have parities 1,2,2 -> contributing
	// only the one at position 1.
	m := New()
	labels := []int{1, 0, 1, 0, 0, 1}
	sums := m.Scan(labels)
	contributing := []bool{}
	for i, v := range sums {
		if labels[i] == 0 { // subject edge
			contributing = append(contributing, v%2 == 1)
		}
	}
	want := []bool{true, false, false}
	if !reflect.DeepEqual(contributing, want) {
		t.Errorf("contributing = %v, want %v", contributing, want)
	}
	// Cost: one O(log n) scan.
	if m.Rounds() > 3 {
		t.Errorf("rounds = %d", m.Rounds())
	}
}

func TestSortWorkIsNLog2N(t *testing.T) {
	n := 256
	m := New()
	xs := make([]int, n)
	for i := range xs {
		xs[i] = n - i
	}
	m.Sort(xs)
	lg := int64(8) // log2 256
	wantWork := int64(n/2) * lg * (lg + 1) / 2
	if m.Work() != wantWork {
		t.Errorf("work = %d, want %d", m.Work(), wantWork)
	}
}
