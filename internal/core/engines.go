package core

import (
	"context"

	"polyclip/internal/engine"
	"polyclip/internal/geom"
)

// slabsEngine adapts the multi-threaded Algorithm 2 slab decomposition
// (ClipPairCtx) to the engine registry. It is not itself slab-hostable — a
// slab hosting slabs would recurse — but it can host any registered
// slab-hostable engine inside its workers.
type slabsEngine struct{}

func (slabsEngine) Name() string { return "slabs" }

func (slabsEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{
		Rules:       engine.RuleMask(engine.EvenOdd),
		Cancellable: true,
		Parallel:    true,
	}
}

func (e slabsEngine) Clip(ctx context.Context, a, b geom.Polygon, op engine.Op, opt engine.Options) (engine.Result, error) {
	if err := engine.CheckRule(e, opt.Rule); err != nil {
		return engine.Result{}, err
	}
	out, st, err := ClipPairCtx(ctx, a, b, op, Options{
		Threads: opt.Threads, Slabs: opt.Slabs, NoFallback: opt.NoFallback,
	})
	return engine.Result{Polygon: out, Stats: st}, err
}

// scanbeamEngine adapts the CREW PRAM Algorithm 1 realization
// (AlgorithmOneCtx) to the engine registry.
type scanbeamEngine struct{}

func (scanbeamEngine) Name() string { return "scanbeam" }

func (scanbeamEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{
		Rules:       engine.RuleMask(engine.EvenOdd),
		Cancellable: true,
		Parallel:    true,
	}
}

func (e scanbeamEngine) Clip(ctx context.Context, a, b geom.Polygon, op engine.Op, opt engine.Options) (engine.Result, error) {
	if err := engine.CheckRule(e, opt.Rule); err != nil {
		return engine.Result{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out, _ := AlgorithmOneCtx(ctx, a, b, op, opt.Threads)
	if err := ctx.Err(); err != nil {
		return engine.Result{}, err
	}
	return engine.Result{Polygon: out}, nil
}

func init() {
	engine.Register(slabsEngine{})
	engine.Register(scanbeamEngine{})
}
