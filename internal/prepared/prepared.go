// Package prepared is the resolve-once/clip-many abstraction of the tile
// pipeline: a Prepared wraps one subject layer's resolved-and-snapped
// arrangement together with the spatial indexes that make clipping it
// against many axis-aligned windows output-sensitive — per-ring MBRs, an STR
// R-tree over the edges, and a y-sorted binary-search culling index (Skala's
// O(lg N) window reject for line clipping, lifted to the whole layer).
//
// Preparation canonicalizes the subject once: the arrangement is resolved
// (arrange.Resolve / ResolveWinding), swept through a union-with-empty pass
// under the requested fill rule, and snapped onto the power-of-two grid
// (geom.SnapPolygon at geom.AutoSnapEps). The result is a simple even-odd
// boundary — CCW outers, CW holes, edges meeting only at shared exact
// vertices — whose even-odd reading equals the rule-R region of the source.
// Every subsequent window clip therefore runs under even-odd semantics on
// clean geometry, whatever rule the layer was prepared for, and the
// downstream clippers (internal/shclip, internal/bandclip, internal/vatti
// via engine.Options.Prepared) consume the pre-resolved subject instead of
// re-resolving it per clip.
//
// A window clip then takes one of three routes, cheapest first:
//
//	classify: MBR reject -> binary-search y-cull -> R-tree window query
//	          -> exact segment/box tests
//	Outside:  emit nothing               (no geometry touched)
//	Inside:   emit the window rectangle  (O(1) accept)
//	Straddle: per-ring decomposition — rings inside the window pass through
//	          verbatim, rings surrounding it toggle a parity bit, and only
//	          rings whose boundary actually crosses the window are clipped:
//	          a single convex ring via Sutherland–Hodgman, everything else
//	          via two linear band-clip passes (y-band, then the transposed
//	          x-band)
//
// so the cost of a tile is proportional to the boundary inside it, not to
// the layer.
package prepared

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"polyclip/internal/arrange"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/rtree"
	"polyclip/internal/vatti"
)

// Class is a window's classification against the prepared layer.
type Class uint8

// Window classes.
const (
	// Outside: the window does not meet the layer's region; the clip is
	// empty.
	Outside Class = iota
	// Inside: the window lies entirely in the layer's interior; the clip is
	// the window rectangle itself.
	Inside
	// Straddle: the layer's boundary crosses the window; a real clip runs.
	Straddle
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Outside:
		return "outside"
	case Inside:
		return "inside"
	default:
		return "straddle"
	}
}

// Stats is a point-in-time snapshot of a Prepared's clip counters. The JSON
// tags are stable: they surface in the tile benchmark artifact.
type Stats struct {
	FastInside  uint64 `json:"fastInside"`  // windows emitted as full rectangles
	FastOutside uint64 `json:"fastOutside"` // windows rejected without geometry
	ConvexClips uint64 `json:"convexClips"` // straddles served by Sutherland–Hodgman
	BandClips   uint64 `json:"bandClips"`   // straddles served by the band-clip path
	Rescues     uint64 `json:"rescues"`     // straddles rescued by the full sweep
}

// Sweeps returns the number of windows that reached a real clip.
func (s Stats) Sweeps() uint64 { return s.ConvexClips + s.BandClips + s.Rescues }

// Prepared is a subject layer resolved, snapped, and indexed for repeated
// window clipping. It is immutable after Prepare and safe for concurrent use;
// the clip counters are atomic.
type Prepared struct {
	rule engine.FillRule
	eps  float64
	poly geom.Polygon // canonical even-odd form of the rule-R region
	box  geom.BBox

	ringBox    []geom.BBox
	ringConvex []bool
	edges      []geom.Segment
	edgeRing   []int32
	tree       *rtree.Tree

	// Binary-search culling index: edge indexes sorted by low y, with the
	// running maximum of high y. One sort.Search answers "does any edge
	// meet this y-range?" in O(lg N), so whole bands of tiles above or
	// below the layer never reach the R-tree, let alone a sweep.
	edgeLoY []float64
	maxHiY  []float64

	fastInside  atomic.Uint64
	fastOutside atomic.Uint64
	convexClips atomic.Uint64
	bandClips   atomic.Uint64
	rescues     atomic.Uint64

	scratch sync.Pool
}

// scratch recycles the per-clip query buffers; one Prepared serves many
// goroutines, so the buffers are pooled rather than owned.
type scratch struct {
	ids     []int32 // R-tree window query results
	rayIDs  []int32 // R-tree ray query results
	ringHit []bool  // rings whose boundary meets the current window
	hits    []int32 // which ringHit entries to clear
	rayOdd  []bool  // rings with odd parity at the current ray origin
	odds    []int32 // which rayOdd entries to clear
	sweep   geom.Polygon
}

// Prepare canonicalizes p under rule and builds the window-clipping indexes.
// The source polygon is not retained. Preparing an empty or degenerate layer
// yields a Prepared that classifies every window Outside.
func Prepare(p geom.Polygon, rule engine.FillRule) *Prepared {
	return FromCanonical(Canonicalize(p, rule), rule)
}

// Canonicalize is the expensive half of Prepare, split out so callers can
// memoize it (internal/acache's prepare tier): resolve the single operand
// (reusing the same arrange.Resolve* pre-pass every engine sweeps), then a
// union-with-empty sweep under the rule. The sweep turns any rule's region
// into a simple even-odd boundary with ringstitch's canonical orientations
// (CCW outers, CW holes) — the invariant every fast path leans on — and the
// result is snapped onto the power-of-two grid.
func Canonicalize(p geom.Polygon, rule engine.FillRule) geom.Polygon {
	var canon geom.Polygon
	if rule == engine.EvenOdd {
		canon = vatti.ClipRuleResolved(arrange.Resolve(p), nil, engine.Union, engine.EvenOdd)
	} else {
		canon = vatti.ClipRuleResolved(arrange.ResolveWinding(p), nil, engine.Union, rule)
	}
	return geom.SnapPolygon(canon, geom.AutoSnapEps(canon, nil))
}

// FromCanonical builds the window-clipping indexes over an already-canonical
// layer — the output of Canonicalize, possibly via a cache. The caller must
// not mutate canon afterwards. The index build is the cheap half: linear
// scans plus an STR bulk-load and one sort.
func FromCanonical(canon geom.Polygon, rule engine.FillRule) *Prepared {
	pp := &Prepared{rule: rule, eps: geom.AutoSnapEps(canon, nil), poly: canon, box: canon.BBox()}
	pp.scratch.New = func() any { return new(scratch) }
	pp.buildIndex()
	return pp
}

func (pp *Prepared) buildIndex() {
	for ri, r := range pp.poly {
		pp.ringBox = append(pp.ringBox, r.BBox())
		pp.ringConvex = append(pp.ringConvex, ringIsConvex(r))
		base := len(pp.edges)
		pp.edges = r.Edges(pp.edges)
		for i := base; i < len(pp.edges); i++ {
			pp.edgeRing = append(pp.edgeRing, int32(ri))
		}
	}
	pp.tree = rtree.Build(len(pp.edges), func(i int32) geom.BBox {
		return segBox(pp.edges[i])
	})

	n := len(pp.edges)
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		la, _ := pp.edges[order[a]].YSpan()
		lb, _ := pp.edges[order[b]].YSpan()
		return la < lb
	})
	pp.edgeLoY = make([]float64, n)
	pp.maxHiY = make([]float64, n)
	runMax := math.Inf(-1)
	for i, ei := range order {
		lo, hi := pp.edges[ei].YSpan()
		pp.edgeLoY[i] = lo
		if hi > runMax {
			runMax = hi
		}
		pp.maxHiY[i] = runMax
	}
}

func segBox(s geom.Segment) geom.BBox {
	lox, hix := s.XSpan()
	loy, hiy := s.YSpan()
	return geom.BBox{MinX: lox, MinY: loy, MaxX: hix, MaxY: hiy}
}

// anyEdgeInYRange reports whether any edge's y-extent meets [lo, hi], by
// binary search over the low-y order plus the running high-y maximum.
func (pp *Prepared) anyEdgeInYRange(lo, hi float64) bool {
	r := sort.Search(len(pp.edgeLoY), func(i int) bool { return pp.edgeLoY[i] > hi })
	return r > 0 && pp.maxHiY[r-1] >= lo
}

// Polygon returns the canonical (resolved, snapped, even-odd) form of the
// layer. Callers must not mutate it.
func (pp *Prepared) Polygon() geom.Polygon { return pp.poly }

// Rule returns the fill rule the layer was prepared under.
func (pp *Prepared) Rule() engine.FillRule { return pp.rule }

// BBox returns the canonical layer's bounding box.
func (pp *Prepared) BBox() geom.BBox { return pp.box }

// SnapEps returns the power-of-two vertex grid the canonical form is welded
// onto.
func (pp *Prepared) SnapEps() float64 { return pp.eps }

// NumEdges returns the canonical edge count (the N of the O(lg N) culling).
func (pp *Prepared) NumEdges() int { return len(pp.edges) }

// Stats snapshots the clip counters.
func (pp *Prepared) Stats() Stats {
	return Stats{
		FastInside:  pp.fastInside.Load(),
		FastOutside: pp.fastOutside.Load(),
		ConvexClips: pp.convexClips.Load(),
		BandClips:   pp.bandClips.Load(),
		Rescues:     pp.rescues.Load(),
	}
}

// ClassifyRect classifies the window against the layer without emitting
// geometry and without touching the clip counters — the tile driver probes
// interior pyramid nodes with it, and only leaf tiles count.
func (pp *Prepared) ClassifyRect(box geom.BBox) Class {
	scr := pp.scratch.Get().(*scratch)
	cls := pp.classify(box, scr, false)
	pp.scratch.Put(scr)
	return cls
}

// classify runs the fast-path cascade. With markRings set, scr.ringHit is
// left marking the rings whose boundary meets the window (cleared via
// scr.hits by the caller).
func (pp *Prepared) classify(box geom.BBox, scr *scratch, markRings bool) Class {
	if box.IsEmpty() || len(pp.poly) == 0 || !pp.box.Intersects(box) {
		return Outside
	}
	hit := false
	if pp.anyEdgeInYRange(box.MinY, box.MaxY) {
		scr.ids = pp.tree.SearchRect(box, scr.ids[:0])
		for _, id := range scr.ids {
			if !geom.SegIntersectsBBox(pp.edges[id], box) {
				continue
			}
			hit = true
			if !markRings {
				break
			}
			ri := pp.edgeRing[id]
			if !scr.ringHit[ri] {
				scr.ringHit[ri] = true
				scr.hits = append(scr.hits, ri)
			}
		}
	}
	if hit {
		return Straddle
	}
	// No boundary meets the closed window, so the whole window lies in one
	// region; its center (strictly off every edge) decides which.
	if in, _ := pp.containsPoint(box.Center(), scr); in {
		return Inside
	}
	return Outside
}

// containsPoint is the even-odd test against the canonical layer via the
// edge R-tree: parity of boundary crossings along the upward vertical ray,
// O(lg N + k) instead of a scan of every edge. The returned scratch slices
// let clipRect reuse the candidate list for its per-ring parity pass.
func (pp *Prepared) containsPoint(pt geom.Point, scr *scratch) (bool, []int32) {
	ray := geom.BBox{MinX: pt.X, MinY: pt.Y, MaxX: pt.X, MaxY: math.Inf(1)}
	scr.rayIDs = pp.tree.SearchRect(ray, scr.rayIDs[:0])
	odd := false
	for _, id := range scr.rayIDs {
		if rayCrosses(pp.edges[id], pt) {
			odd = !odd
		}
	}
	return odd, scr.rayIDs
}

// rayCrosses reports whether the upward vertical ray from pt crosses the
// edge, half-open in x so shared vertices count exactly once.
func rayCrosses(s geom.Segment, pt geom.Point) bool {
	a, b := s.A, s.B
	if (a.X > pt.X) == (b.X > pt.X) {
		return false
	}
	y := a.Y + (pt.X-a.X)/(b.X-a.X)*(b.Y-a.Y)
	return y > pt.Y
}

// ringIsConvex reports whether the simple ring turns consistently in one
// direction (collinear triples allowed) — the precondition for the
// Sutherland–Hodgman straddle fast path, whose output against a convex
// window is a single clean piece only for convex subjects.
func ringIsConvex(r geom.Ring) bool {
	n := len(r)
	if n < 3 {
		return false
	}
	sign := 0
	for i := 0; i < n; i++ {
		o := geom.Orient(r[i], r[(i+1)%n], r[(i+2)%n])
		if o == geom.Collinear {
			continue
		}
		s := 1
		if o == geom.Clockwise {
			s = -1
		}
		if sign == 0 {
			sign = s
		} else if s != sign {
			return false
		}
	}
	return sign != 0
}
