package wkt

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"polyclip/internal/geom"
)

func TestMarshalPolygon(t *testing.T) {
	p := geom.RectPolygon(0, 0, 2, 2)
	got := Marshal(p)
	want := "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))"
	if got != want {
		t.Errorf("got %q want %q", got, want)
	}
}

func TestMarshalEmpty(t *testing.T) {
	if got := Marshal(nil); got != "POLYGON EMPTY" {
		t.Errorf("got %q", got)
	}
	if got := MarshalPolygon(nil); got != "POLYGON EMPTY" {
		t.Errorf("got %q", got)
	}
}

func TestMarshalMulti(t *testing.T) {
	p := geom.Polygon{geom.Rect(0, 0, 1, 1), geom.Rect(2, 2, 3, 3)}
	got := Marshal(p)
	if !strings.HasPrefix(got, "MULTIPOLYGON ") {
		t.Errorf("got %q", got)
	}
}

func TestRoundTrip(t *testing.T) {
	cases := []geom.Polygon{
		geom.RectPolygon(0, 0, 2, 2),
		{geom.Rect(0, 0, 1, 1), geom.Rect(5, 5, 6, 7)},
		{geom.RegularPolygon(geom.Point{X: -3.5, Y: 2.25}, 1.5, 7, 0.3)},
		nil,
	}
	for i, p := range cases {
		s := Marshal(p)
		got, err := Unmarshal(s)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != len(p) {
			t.Fatalf("case %d: rings %d want %d", i, len(got), len(p))
		}
		if math.Abs(got.Area()-p.Area()) > 1e-9 {
			t.Errorf("case %d: area %v want %v", i, got.Area(), p.Area())
		}
	}
}

func TestRoundTripPolygonWithHole(t *testing.T) {
	hole := geom.Rect(1, 1, 2, 2)
	hole.Reverse()
	p := geom.Polygon{geom.Rect(0, 0, 4, 4), hole}
	s := MarshalPolygon(p)
	got, err := Unmarshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("got %v want %v", got, p)
	}
}

func TestUnmarshalVariants(t *testing.T) {
	cases := map[string]float64{
		"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))": 16,
		"polygon((0 0,4 0,4 4,0 4))":          16, // unclosed, lowercase, tight
		"POLYGON EMPTY":                       0,
		"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((2 2, 3 2, 3 3, 2 3, 2 2)))": 2,
		"MULTIPOLYGON EMPTY":                          0,
		"POLYGON ((0 0, 1e1 0, 10 10, 0 1.0E1, 0 0))": 100,
		"POLYGON ((-1 -1, 1 -1, 1 1, -1 1, -1 -1))":   4,
	}
	for s, want := range cases {
		got, err := Unmarshal(s)
		if err != nil {
			t.Errorf("%q: %v", s, err)
			continue
		}
		if math.Abs(got.Area()-want) > 1e-9 {
			t.Errorf("%q: area %v want %v", s, got.Area(), want)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := []string{
		"",
		"LINESTRING (0 0, 1 1)",
		"POLYGON ((0 0, 1 1",
		"POLYGON (0 0, 1 1)",
		"POLYGON ((a b, c d))",
		"MULTIPOLYGON ((0 0))",
	}
	for _, s := range bad {
		if _, err := Unmarshal(s); err == nil {
			t.Errorf("%q: expected error", s)
		}
	}
}

// TestSyntaxErrorPositions pins the position context of parse failures: the
// clipd 400 bodies echo the byte offset and offending token back to the
// client, so both are part of the parser's contract.
func TestSyntaxErrorPositions(t *testing.T) {
	cases := []struct {
		in     string
		offset int
		token  string
		substr string // required fragment of the rendered message
	}{
		{"", 0, "end of input", "expected a geometry keyword"},
		{"LINESTRING (0 0, 1 1)", 0, "LINESTRING (", "unsupported geometry"},
		{"POLYGON ((0 0, 1 1", 18, "end of input", `expected ")"`},
		{"POLYGON (0 0, 1 1)", 9, "0 0, 1 1)", `expected "("`},
		{"POLYGON ((a b, c d))", 10, "a b, c d))", "expected a number"},
		{"POLYGON ((0 0, 1 1, 1e999 0))", 20, "1e999", "bad number"},
		{"MULTIPOLYGON ((0 0))", 15, "0 0))", `expected "("`},
	}
	for _, tc := range cases {
		_, err := Unmarshal(tc.in)
		if err == nil {
			t.Errorf("%q: expected error", tc.in)
			continue
		}
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Errorf("%q: error %v is not a *SyntaxError", tc.in, err)
			continue
		}
		if se.Offset != tc.offset {
			t.Errorf("%q: offset %d, want %d (%v)", tc.in, se.Offset, tc.offset, err)
		}
		if se.Token != tc.token {
			t.Errorf("%q: token %q, want %q", tc.in, se.Token, tc.token)
		}
		if !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%q: message %q does not contain %q", tc.in, err.Error(), tc.substr)
		}
		if !strings.Contains(err.Error(), fmt.Sprintf("byte %d", tc.offset)) {
			t.Errorf("%q: message %q does not name byte %d", tc.in, err.Error(), tc.offset)
		}
	}
}
