package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointOps(t *testing.T) {
	p := Point{3, 4}
	q := Point{1, 2}
	if got := p.Sub(q); got != (Point{2, 2}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Add(q); got != (Point{4, 6}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Dot(q); got != 11 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != 2 {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Dist(Point{0, 0}); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if !p.Near(Point{3 + 1e-12, 4 - 1e-12}, 1e-9) {
		t.Error("Near should hold within eps")
	}
	if p.Near(Point{3.1, 4}, 1e-9) {
		t.Error("Near should fail outside eps")
	}
}

func TestPointLessSweepOrder(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Point{0, 0}, Point{0, 1}, true},
		{Point{0, 1}, Point{0, 0}, false},
		{Point{0, 0}, Point{1, 0}, true},
		{Point{1, 0}, Point{0, 0}, false},
		{Point{5, 1}, Point{0, 2}, true}, // Y dominates X
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestOrientBasic(t *testing.T) {
	a, b := Point{0, 0}, Point{1, 0}
	if Orient(a, b, Point{0, 1}) != CounterClockwise {
		t.Error("left turn not detected")
	}
	if Orient(a, b, Point{0, -1}) != Clockwise {
		t.Error("right turn not detected")
	}
	if Orient(a, b, Point{2, 0}) != Collinear {
		t.Error("collinear not detected")
	}
}

func TestOrientRobustNearDegenerate(t *testing.T) {
	// Classic near-collinear configuration: points on a line y = x with tiny
	// perturbations that naive float arithmetic misclassifies.
	a := Point{0.5, 0.5}
	b := Point{12, 12}
	c := Point{24, 24}
	if Orient(a, b, c) != Collinear {
		t.Error("exactly collinear points misclassified")
	}
	// Perturb c by one ulp up: must be CCW or CW consistently with exact math.
	cUp := Point{24, math.Nextafter(24, 25)}
	cDown := Point{24, math.Nextafter(24, 23)}
	if Orient(a, b, cUp) != CounterClockwise {
		t.Error("one-ulp-above point should be CCW")
	}
	if Orient(a, b, cDown) != Clockwise {
		t.Error("one-ulp-below point should be CW")
	}
}

func TestOrientAntisymmetry(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Point{ax, ay}, Point{bx, by}, Point{cx, cy}
		return Orient(a, b, c) == -Orient(b, a, c)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestOrientCyclicInvariance(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := Point{ax, ay}, Point{bx, by}, Point{cx, cy}
		o := Orient(a, b, c)
		return o == Orient(b, c, a) && o == Orient(c, a, b)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestSegIntersectionCrossing(t *testing.T) {
	s := Segment{Point{0, 0}, Point{2, 2}}
	u := Segment{Point{0, 2}, Point{2, 0}}
	kind, p, _ := SegIntersection(s, u)
	if kind != Crossing {
		t.Fatalf("kind = %v, want Crossing", kind)
	}
	if !p.Near(Point{1, 1}, 1e-12) {
		t.Errorf("point = %v, want (1,1)", p)
	}
}

func TestSegIntersectionDisjoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{1, 0}}
	u := Segment{Point{0, 1}, Point{1, 1}}
	if kind, _, _ := SegIntersection(s, u); kind != Disjoint {
		t.Errorf("kind = %v, want Disjoint", kind)
	}
	// Collinear but separated.
	v := Segment{Point{2, 0}, Point{3, 0}}
	if kind, _, _ := SegIntersection(s, v); kind != Disjoint {
		t.Errorf("collinear separated: kind = %v, want Disjoint", kind)
	}
}

func TestSegIntersectionEndpointTouch(t *testing.T) {
	s := Segment{Point{0, 0}, Point{1, 1}}
	u := Segment{Point{1, 1}, Point{2, 0}}
	kind, p, _ := SegIntersection(s, u)
	if kind != Crossing || p != (Point{1, 1}) {
		t.Errorf("endpoint touch: kind=%v p=%v", kind, p)
	}
	// T-junction: endpoint of u in the interior of s.
	w := Segment{Point{0.5, 0.5}, Point{0.5, -1}}
	kind, p, _ = SegIntersection(s, w)
	if kind != Crossing || !p.Near(Point{0.5, 0.5}, 1e-12) {
		t.Errorf("T junction: kind=%v p=%v", kind, p)
	}
}

func TestSegIntersectionOverlap(t *testing.T) {
	s := Segment{Point{0, 0}, Point{3, 0}}
	u := Segment{Point{1, 0}, Point{5, 0}}
	kind, p0, p1 := SegIntersection(s, u)
	if kind != Overlapping {
		t.Fatalf("kind = %v, want Overlapping", kind)
	}
	if p0 != (Point{1, 0}) || p1 != (Point{3, 0}) {
		t.Errorf("overlap = %v..%v, want (1,0)..(3,0)", p0, p1)
	}
	// Collinear touching in a single point.
	v := Segment{Point{3, 0}, Point{7, 0}}
	kind, p0, _ = SegIntersection(s, v)
	if kind != Crossing || p0 != (Point{3, 0}) {
		t.Errorf("collinear touch: kind=%v p=%v", kind, p0)
	}
}

func TestSegIntersectionSnapsToEndpoints(t *testing.T) {
	// A crossing within Eps of an endpoint must return the endpoint exactly.
	s := Segment{Point{0, 0}, Point{1, 1}}
	u := Segment{Point{1, 1 + 1e-13}, Point{2, 0}}
	_, p, _ := SegIntersection(s, Segment{u.A, u.B})
	_ = p // may be Disjoint depending on geometry; real check below
	v := Segment{Point{0, 2}, Point{2, 0}}
	kind, q, _ := SegIntersection(s, v)
	if kind != Crossing || !q.Near(Point{1, 1}, 1e-12) {
		t.Fatalf("kind=%v q=%v", kind, q)
	}
}

func TestSegmentsCross(t *testing.T) {
	if !SegmentsCross(Segment{Point{0, 0}, Point{2, 2}}, Segment{Point{0, 2}, Point{2, 0}}) {
		t.Error("proper crossing not detected")
	}
	if SegmentsCross(Segment{Point{0, 0}, Point{1, 1}}, Segment{Point{1, 1}, Point{2, 0}}) {
		t.Error("endpoint touch must not count as proper crossing")
	}
}

func TestSegmentIntersectionCommutative(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		s := Segment{Point{float64(ax), float64(ay)}, Point{float64(bx), float64(by)}}
		u := Segment{Point{float64(cx), float64(cy)}, Point{float64(dx), float64(dy)}}
		if s.IsDegenerate() || u.IsDegenerate() {
			return true
		}
		k1, _, _ := SegIntersection(s, u)
		k2, _, _ := SegIntersection(u, s)
		return k1 == k2
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestXAtY(t *testing.T) {
	s := Segment{Point{0, 0}, Point{4, 2}}
	if got := s.XAtY(1); got != 2 {
		t.Errorf("XAtY(1) = %v, want 2", got)
	}
	if got := s.XAtY(0); got != 0 {
		t.Errorf("XAtY(0) = %v, want 0", got)
	}
	if got := s.XAtY(2); got != 4 {
		t.Errorf("XAtY(2) = %v, want 4", got)
	}
}

func TestRingArea(t *testing.T) {
	r := Rect(0, 0, 2, 3)
	if got := r.SignedArea(); got != 6 {
		t.Errorf("ccw rect signed area = %v, want 6", got)
	}
	rc := r.Clone()
	rc.Reverse()
	if got := rc.SignedArea(); got != -6 {
		t.Errorf("cw rect signed area = %v, want -6", got)
	}
	if !r.IsCCW() || rc.IsCCW() {
		t.Error("IsCCW mismatch")
	}
}

func TestRegularPolygonArea(t *testing.T) {
	// Area of a regular n-gon with circumradius r: (n r²/2) sin(2π/n).
	for _, n := range []int{3, 4, 6, 17, 100} {
		r := RegularPolygon(Point{5, -3}, 2, n, 0.3)
		want := float64(n) * 4 / 2 * math.Sin(2*math.Pi/float64(n))
		if got := r.Area(); math.Abs(got-want) > 1e-9 {
			t.Errorf("n=%d area=%v want %v", n, got, want)
		}
		if !r.IsCCW() {
			t.Errorf("n=%d not CCW", n)
		}
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	p := Polygon{Rect(0, 0, 10, 10), Rect(3, 3, 7, 7)} // square with hole
	cases := []struct {
		pt   Point
		want bool
	}{
		{Point{1, 1}, true},
		{Point{5, 5}, false}, // inside the hole
		{Point{11, 5}, false},
		{Point{-1, 5}, false},
		{Point{3.5, 1}, true},
	}
	for _, c := range cases {
		if got := p.ContainsPoint(c.pt); got != c.want {
			t.Errorf("ContainsPoint(%v) = %v, want %v", c.pt, got, c.want)
		}
	}
}

func TestPolygonAreaWithHole(t *testing.T) {
	outer := Rect(0, 0, 10, 10)
	hole := Rect(2, 2, 4, 4)
	hole.Reverse() // clockwise hole
	p := Polygon{outer, hole}
	if got := p.Area(); math.Abs(got-96) > 1e-12 {
		t.Errorf("area = %v, want 96", got)
	}
}

func TestBBox(t *testing.T) {
	b := EmptyBBox()
	if !b.IsEmpty() {
		t.Fatal("EmptyBBox not empty")
	}
	b.Extend(Point{1, 2})
	b.Extend(Point{-3, 5})
	if b.IsEmpty() || b.MinX != -3 || b.MaxX != 1 || b.MinY != 2 || b.MaxY != 5 {
		t.Errorf("box = %+v", b)
	}
	o := BBox{0, 0, 10, 10}
	if !b.Intersects(o) {
		t.Error("boxes should intersect")
	}
	u := b.Union(o)
	if u.MinX != -3 || u.MaxY != 10 {
		t.Errorf("union = %+v", u)
	}
	if !u.Contains(Point{0, 0}) || u.Contains(Point{100, 0}) {
		t.Error("Contains mismatch")
	}
	if u.Width() != 13 || u.Height() != 10 {
		t.Errorf("w=%v h=%v", u.Width(), u.Height())
	}
}

func TestBBoxUnionWithEmpty(t *testing.T) {
	e := EmptyBBox()
	o := BBox{0, 0, 1, 1}
	if got := e.Union(o); got != o {
		t.Errorf("empty ∪ o = %+v", got)
	}
	if got := o.Union(e); got != o {
		t.Errorf("o ∪ empty = %+v", got)
	}
}

func TestRingEdgesSkipDegenerate(t *testing.T) {
	r := Ring{{0, 0}, {1, 0}, {1, 0}, {1, 1}}
	edges := r.Edges(nil)
	if len(edges) != 3 {
		t.Errorf("edges = %d, want 3 (duplicate vertex collapsed)", len(edges))
	}
}

func TestPerturbHorizontals(t *testing.T) {
	p := Polygon{Rect(0, 0, 10, 10)}
	q := PerturbHorizontals(p, 0)
	for _, s := range q.Edges() {
		if s.IsHorizontal() {
			t.Fatalf("horizontal edge survived: %v", s)
		}
	}
	// Area should be essentially unchanged.
	if math.Abs(q.Area()-100) > 1e-6 {
		t.Errorf("area drifted: %v", q.Area())
	}
}

func TestTranslateScale(t *testing.T) {
	r := Rect(0, 0, 1, 1).Translate(5, 5)
	if r[0] != (Point{5, 5}) {
		t.Errorf("translate: %v", r[0])
	}
	s := Rect(0, 0, 2, 2).ScaleAbout(Point{0, 0}, 2)
	if s[2] != (Point{4, 4}) {
		t.Errorf("scale: %v", s[2])
	}
	p := Polygon{Rect(0, 0, 1, 1)}.Translate(1, 1)
	if p[0][0] != (Point{1, 1}) {
		t.Errorf("polygon translate: %v", p[0][0])
	}
}

func TestBowTieSelfIntersects(t *testing.T) {
	bt := BowTie(0, 0, 2, 2)
	edges := bt.Edges(nil)
	found := false
	for i := range edges {
		for j := i + 1; j < len(edges); j++ {
			if SegmentsCross(edges[i], edges[j]) {
				found = true
			}
		}
	}
	if !found {
		t.Error("bow tie should self-intersect")
	}
}

func TestSelfIntersectingStarCrosses(t *testing.T) {
	st := SelfIntersectingStar(Point{0, 0}, 1, 5, 0.1)
	edges := st.Edges(nil)
	crossings := 0
	for i := range edges {
		for j := i + 1; j < len(edges); j++ {
			if SegmentsCross(edges[i], edges[j]) {
				crossings++
			}
		}
	}
	if crossings != 5 {
		t.Errorf("pentagram crossings = %d, want 5", crossings)
	}
}

func TestPolygonCloneIndependent(t *testing.T) {
	p := Polygon{Rect(0, 0, 1, 1)}
	q := p.Clone()
	q[0][0].X = 99
	if p[0][0].X == 99 {
		t.Error("Clone aliases the original")
	}
}

func TestNumVertices(t *testing.T) {
	p := Polygon{Rect(0, 0, 1, 1), RegularPolygon(Point{0, 0}, 1, 7, 0)}
	if got := p.NumVertices(); got != 11 {
		t.Errorf("NumVertices = %d, want 11", got)
	}
}

func TestSmallHelpers(t *testing.T) {
	p := Point{1, 2}
	if p.Scale(3) != (Point{3, 6}) {
		t.Errorf("Scale = %v", p.Scale(3))
	}
	if p.String() != "(1,2)" {
		t.Errorf("String = %q", p.String())
	}
	s := Segment{Point{0, 0}, Point{2, 4}}
	if s.Reversed() != (Segment{Point{2, 4}, Point{0, 0}}) {
		t.Errorf("Reversed = %v", s.Reversed())
	}
	if s.Midpoint() != (Point{1, 2}) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
	if s.String() == "" {
		t.Error("empty segment String")
	}
	if !s.IsDegenerate() == s.A.Near(s.B, 0) {
		t.Error("IsDegenerate mismatch")
	}
	h := Segment{Point{3, 1}, Point{0, 1}}
	if !h.IsHorizontal() || h.XAtY(1) != 0 {
		t.Errorf("horizontal XAtY = %v", h.XAtY(1))
	}
	r := Ring{{0, 0}, {2, 0}, {2, 2}}
	box := r.BBox()
	if box.MaxX != 2 || box.MinY != 0 {
		t.Errorf("ring bbox = %+v", box)
	}
	if got := RectPolygon(0, 0, 1, 2).Area(); math.Abs(got-2) > 1e-12 {
		t.Errorf("RectPolygon area = %v", got)
	}
	star := Star(Point{0, 0}, 2, 1, 5, 0)
	if len(star) != 10 {
		t.Errorf("star len = %d", len(star))
	}
}

func TestDistToPoint(t *testing.T) {
	s := Segment{Point{0, 0}, Point{4, 0}}
	cases := []struct {
		p Point
		d float64
	}{
		{Point{2, 3}, 3},  // above the middle
		{Point{-3, 4}, 5}, // before A
		{Point{7, 4}, 5},  // past B
		{Point{2, 0}, 0},  // on the segment
	}
	for _, c := range cases {
		if got := s.DistToPoint(c.p); math.Abs(got-c.d) > 1e-12 {
			t.Errorf("dist(%v) = %v, want %v", c.p, got, c.d)
		}
	}
	deg := Segment{Point{1, 1}, Point{1, 1}}
	if got := deg.DistToPoint(Point{4, 5}); math.Abs(got-5) > 1e-12 {
		t.Errorf("degenerate dist = %v", got)
	}
}

func TestCollinearOverlapVerticalAndOrdering(t *testing.T) {
	// Vertical collinear overlaps exercise the on-line ordering helpers'
	// Y branch (X equal).
	s := Segment{Point{1, 0}, Point{1, 4}}
	u := Segment{Point{1, 2}, Point{1, 7}}
	kind, p0, p1 := SegIntersection(s, u)
	if kind != Overlapping || p0 != (Point{1, 2}) || p1 != (Point{1, 4}) {
		t.Errorf("vertical overlap: %v %v %v", kind, p0, p1)
	}
	// Touching vertically in one point.
	v := Segment{Point{1, 4}, Point{1, 9}}
	kind, p0, _ = SegIntersection(s, v)
	if kind != Crossing || p0 != (Point{1, 4}) {
		t.Errorf("vertical touch: %v %v", kind, p0)
	}
	// Disjoint vertical collinear.
	w := Segment{Point{1, 5}, Point{1, 9}}
	if kind, _, _ := SegIntersection(s, w); kind != Disjoint {
		t.Errorf("vertical disjoint: %v", kind)
	}
}
