package par

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

// Edge-of-domain tests for every primitive the pipeline fans out through:
// empty input, single item, non-positive parallelism (→ DefaultParallelism),
// and more workers than items. These run under -race in scripts/check.sh,
// so they also prove the chunking never double-visits or drops an index.

var edgeDims = []struct{ n, p int }{
	{0, 1}, {0, 0}, {0, -3},
	{1, 1}, {1, 0}, {1, -1}, {1, 8},
	{3, 64}, {5, 5},
}

func TestForEachEdges(t *testing.T) {
	for _, d := range edgeDims {
		var visited int64
		ForEach(d.n, d.p, func(lo, hi int) {
			if lo < 0 || hi > d.n || lo >= hi {
				t.Errorf("n=%d p=%d: bad chunk [%d,%d)", d.n, d.p, lo, hi)
			}
			atomic.AddInt64(&visited, int64(hi-lo))
		})
		if visited != int64(d.n) {
			t.Errorf("n=%d p=%d: visited %d items", d.n, d.p, visited)
		}
	}
}

func TestForEachItemEdges(t *testing.T) {
	for _, d := range edgeDims {
		marks := make([]int32, d.n)
		ForEachItem(d.n, d.p, func(i int) { atomic.AddInt32(&marks[i], 1) })
		for i, m := range marks {
			if m != 1 {
				t.Errorf("n=%d p=%d: index %d visited %d times", d.n, d.p, i, m)
			}
		}
	}
}

func TestReduceEdges(t *testing.T) {
	sum := func(a, b int) int { return a + b }
	for _, d := range edgeDims {
		xs := make([]int, d.n)
		want := 0
		for i := range xs {
			xs[i] = i + 1
			want += i + 1
		}
		if got := Reduce(xs, 0, sum, d.p); got != want {
			t.Errorf("n=%d p=%d: Reduce = %d, want %d", d.n, d.p, got, want)
		}
	}
	if got := Reduce(nil, 42, sum, 4); got != 42 {
		t.Errorf("Reduce(nil) = %d, want identity 42", got)
	}
}

func TestPackEdges(t *testing.T) {
	for _, d := range edgeDims {
		xs := make([]int, d.n)
		keep := make([]bool, d.n)
		var want []int
		for i := range xs {
			xs[i] = i
			keep[i] = i%2 == 0
			if keep[i] {
				want = append(want, i)
			}
		}
		got := Pack(xs, keep, d.p)
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Errorf("n=%d p=%d: Pack = %v, want %v", d.n, d.p, got, want)
		}
	}
}

func TestSortEdges(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	for _, d := range edgeDims {
		xs := make([]int, d.n)
		for i := range xs {
			xs[i] = d.n - i
		}
		Sort(xs, less, d.p)
		if !IsSorted(xs, less) {
			t.Errorf("n=%d p=%d: not sorted: %v", d.n, d.p, xs)
		}
	}
}

// ---------------------------------------------------------------------------
// Metamorphic equivalence: every ForEach* variant must compute exactly what
// the plain sequential loop computes — same cells written, each exactly
// once, regardless of parallelism degree, grain, or which pool worker ran
// the chunk. The grid deliberately includes n=0, n=1, p<=0 (defaulted),
// p>n, and grain>n, and the whole file runs under -race in scripts/check.sh,
// so a chunking or stealing bug shows up as a torn cell, a wrong value, or
// a detector report.

// metamorphicDims extends edgeDims with sizes big enough to fan out across
// several pool workers and survive multi-level chunk splits.
var metamorphicDims = []struct{ n, p int }{
	{0, 1}, {0, 0}, {0, -3},
	{1, 1}, {1, 0}, {1, -1}, {1, 8},
	{3, 64}, {5, 5}, {17, 4}, {100, 3}, {1000, 8}, {1000, 16},
}

// cellOf is the deterministic per-index function all variants compute; any
// dropped, duplicated, or cross-wired index changes the output vector.
func cellOf(i int) int64 { return int64(i)*2654435761 + 97 }

// sequentialCells is the reference implementation: the plain loop.
func sequentialCells(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = cellOf(i)
	}
	return out
}

// runVariant fills an n-cell vector through one ForEach* variant. Cells are
// written with atomic.AddInt64 so a double visit shows up as a doubled
// value rather than a benign overwrite.
func runVariant(t *testing.T, name string, n int, fill func(out []int64)) {
	t.Helper()
	out := make([]int64, n)
	fill(out)
	if want := sequentialCells(n); !reflect.DeepEqual(out, want) {
		t.Errorf("%s: n=%d diverged from sequential loop", name, n)
	}
}

func TestMetamorphicForEach(t *testing.T) {
	for _, d := range metamorphicDims {
		runVariant(t, "ForEach", d.n, func(out []int64) {
			ForEach(d.n, d.p, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt64(&out[i], cellOf(i))
				}
			})
		})
	}
}

func TestMetamorphicForEachCtx(t *testing.T) {
	for _, d := range metamorphicDims {
		runVariant(t, "ForEachCtx", d.n, func(out []int64) {
			err := ForEachCtx(context.Background(), d.n, d.p, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt64(&out[i], cellOf(i))
				}
			})
			if err != nil {
				t.Errorf("ForEachCtx n=%d p=%d: %v", d.n, d.p, err)
			}
		})
	}
}

func TestMetamorphicForEachGrain(t *testing.T) {
	for _, d := range metamorphicDims {
		for _, grain := range []int{0, 1, 7, d.n + 1, 4 * d.n} {
			runVariant(t, "ForEachGrain", d.n, func(out []int64) {
				ForEachGrain(d.n, d.p, grain, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						atomic.AddInt64(&out[i], cellOf(i))
					}
				})
			})
		}
	}
}

func TestMetamorphicForEachItem(t *testing.T) {
	for _, d := range metamorphicDims {
		runVariant(t, "ForEachItem", d.n, func(out []int64) {
			ForEachItem(d.n, d.p, func(i int) { atomic.AddInt64(&out[i], cellOf(i)) })
		})
	}
}

func TestMetamorphicForEachItemGrain(t *testing.T) {
	for _, d := range metamorphicDims {
		for _, grain := range []int{0, 1, 7, d.n + 1, 4 * d.n} {
			runVariant(t, "ForEachItemGrain", d.n, func(out []int64) {
				ForEachItemGrain(d.n, d.p, grain, func(i int) { atomic.AddInt64(&out[i], cellOf(i)) })
			})
		}
	}
}

// TestForEachCtxCancelSemantics pins the cancellation contract: a done
// context is always reported as a *StallError for n > 0 (the pool may have
// skipped unstarted chunks, so a nil return must guarantee full coverage),
// and n <= 0 degenerates to ctx.Err().
func TestForEachCtxCancelSemantics(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, 100, 4, func(lo, hi int) { ran.Add(int64(hi - lo)) })
	var stall *StallError
	if !errors.As(err, &stall) {
		t.Fatalf("pre-cancelled ctx: err = %v, want *StallError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("StallError does not unwrap to context.Canceled: %v", err)
	}
	if ran.Load() != 0 {
		t.Errorf("%d items ran under a pre-cancelled context", ran.Load())
	}
	if err := ForEachCtx(ctx, 0, 4, func(lo, hi int) {}); !errors.Is(err, context.Canceled) {
		t.Errorf("n=0 cancelled: err = %v, want ctx.Err()", err)
	}
	if err := ForEachCtx(context.Background(), 0, 4, func(lo, hi int) {}); err != nil {
		t.Errorf("n=0 live ctx: err = %v, want nil", err)
	}
	// Cancelling mid-flight surfaces as a StallError too, and never hangs.
	ctx2, cancel2 := context.WithCancel(context.Background())
	err = ForEachCtx(ctx2, 256, 8, func(lo, hi int) {
		if lo == 0 {
			cancel2()
		}
	})
	cancel2()
	if !errors.As(err, &stall) {
		t.Errorf("mid-flight cancel: err = %v, want *StallError", err)
	}
}

func TestParallelPrefixSumEdges(t *testing.T) {
	for _, d := range edgeDims {
		xs := make([]int, d.n)
		ys := make([]int, d.n)
		for i := range xs {
			xs[i] = i*3 + 1
			ys[i] = xs[i]
		}
		wantTotal := PrefixSum(ys)
		if got := ParallelPrefixSum(xs, d.p); got != wantTotal {
			t.Errorf("n=%d p=%d: total %d, want %d", d.n, d.p, got, wantTotal)
		}
		if d.n > 0 && !reflect.DeepEqual(xs, ys) {
			t.Errorf("n=%d p=%d: scan %v, want %v", d.n, d.p, xs, ys)
		}
	}
}
