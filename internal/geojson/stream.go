package geojson

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"polyclip/internal/geom"
)

// DecodeFeatures streams polygon features out of r without ever buffering
// the document: it accepts a FeatureCollection (features are decoded one at
// a time straight off the wire) or newline-delimited GeoJSON (a sequence of
// Feature or Polygon/MultiPolygon values, one per line — the GeoJSONL
// convention large GIS exports use). emit is called once per feature, in
// document order; a non-nil error from emit aborts the decode and is
// returned verbatim. Features with null geometry are skipped, matching
// UnmarshalLayer.
//
// This is the million-feature ingestion path of the batch overlay: memory
// stays proportional to one feature plus whatever the caller retains, not
// to the document.
func DecodeFeatures(r io.Reader, emit func(p geom.Polygon) error) error {
	return decodeFeatures(r, emit, false)
}

// decodeFeatures is the shared implementation. requireCollection makes a
// top-level value that is not a FeatureCollection an error — UnmarshalLayer
// semantics — instead of falling back to newline-delimited mode.
func decodeFeatures(r io.Reader, emit func(p geom.Polygon) error, requireCollection bool) error {
	dec := json.NewDecoder(r)
	tok, err := dec.Token()
	if err == io.EOF {
		if requireCollection {
			return &ParseError{Offset: -1, Msg: "empty document, expected FeatureCollection"}
		}
		return nil
	}
	if err != nil {
		return wrapJSON(err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return &ParseError{Offset: dec.InputOffset(), Token: fmt.Sprint(tok),
			Msg: "expected a JSON object"}
	}

	// Walk the first object's keys. Seeing "features" switches to streaming
	// collection mode on the spot; otherwise the collected parts make the
	// object a standalone feature/geometry and the rest of the stream is
	// newline-delimited.
	var typ string
	sawType, sawFeatures := false, false
	nEmitted := 0
	var pendingGeom *geometry
	var pendingCoords json.RawMessage
	for dec.More() {
		ktok, err := dec.Token()
		if err != nil {
			return wrapJSON(err)
		}
		key, _ := ktok.(string)
		switch key {
		case "type":
			vtok, err := dec.Token()
			if err != nil {
				return wrapJSON(err)
			}
			typ, _ = vtok.(string)
			sawType = true
			if requireCollection && typ != "FeatureCollection" {
				return &ParseError{Offset: -1, Token: typ, Msg: "expected FeatureCollection"}
			}
		case "features":
			sawFeatures = true
			if err := streamFeatureArray(dec, emit, &nEmitted); err != nil {
				return err
			}
		case "geometry":
			if err := dec.Decode(&pendingGeom); err != nil {
				return wrapJSON(err)
			}
		case "coordinates":
			if err := dec.Decode(&pendingCoords); err != nil {
				return wrapJSON(err)
			}
		default:
			if err := skipValue(dec); err != nil {
				return err
			}
		}
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return wrapJSON(err)
	}

	if requireCollection {
		if typ != "FeatureCollection" {
			return &ParseError{Offset: -1, Token: typ, Msg: "expected FeatureCollection"}
		}
		return nil
	}
	if sawFeatures || typ == "FeatureCollection" {
		if sawType && typ != "FeatureCollection" {
			return &ParseError{Offset: -1, Token: typ, Msg: "expected FeatureCollection"}
		}
		return nil
	}

	// Newline-delimited mode: emit the first object, then decode the
	// remaining whitespace-separated values one at a time.
	if err := emitStandalone(typ, pendingGeom, pendingCoords, emit, &nEmitted); err != nil {
		return err
	}
	for {
		var f struct {
			Type        string          `json:"type"`
			Geometry    *geometry       `json:"geometry"`
			Coordinates json.RawMessage `json:"coordinates"`
		}
		if err := dec.Decode(&f); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return wrapJSON(err)
		}
		if err := emitStandalone(f.Type, f.Geometry, f.Coordinates, emit, &nEmitted); err != nil {
			return err
		}
	}
}

// streamFeatureArray decodes the elements of a "features" array one Feature
// at a time, emitting each geometry as it completes.
func streamFeatureArray(dec *json.Decoder, emit func(p geom.Polygon) error, idx *int) error {
	tok, err := dec.Token()
	if err != nil {
		return wrapJSON(err)
	}
	if d, ok := tok.(json.Delim); !ok || d != '[' {
		return &ParseError{Offset: dec.InputOffset(), Token: "features",
			Msg: "features must be an array"}
	}
	for dec.More() {
		var f feature
		if err := dec.Decode(&f); err != nil {
			return wrapJSON(err)
		}
		if f.Geometry == nil {
			*idx++
			continue
		}
		p, err := geometryToPolygon(f.Geometry)
		if err != nil {
			return fmt.Errorf("geojson: feature %d: %w", *idx, err)
		}
		*idx++
		if err := emit(p); err != nil {
			return err
		}
	}
	if _, err := dec.Token(); err != nil { // closing ']'
		return wrapJSON(err)
	}
	return nil
}

// emitStandalone converts one newline-delimited value — a Feature (geometry
// captured in g) or a bare Polygon/MultiPolygon (coordinates captured in
// coords) — and emits it.
func emitStandalone(typ string, g *geometry, coords json.RawMessage, emit func(p geom.Polygon) error, idx *int) error {
	switch typ {
	case "Feature":
		if g == nil {
			*idx++
			return nil
		}
	case "Polygon", "MultiPolygon":
		g = &geometry{Type: typ, Coordinates: coords}
	default:
		return &ParseError{Offset: -1, Token: typ, Msg: "unsupported type"}
	}
	p, err := geometryToPolygon(g)
	if err != nil {
		return fmt.Errorf("geojson: feature %d: %w", *idx, err)
	}
	*idx++
	return emit(p)
}

// skipValue consumes one complete JSON value (scalar, object, or array)
// from the decoder without retaining it.
func skipValue(dec *json.Decoder) error {
	tok, err := dec.Token()
	if err != nil {
		return wrapJSON(err)
	}
	d, ok := tok.(json.Delim)
	if !ok || (d != '{' && d != '[') {
		return nil
	}
	depth := 1
	for depth > 0 {
		tok, err := dec.Token()
		if err != nil {
			return wrapJSON(err)
		}
		if d, ok := tok.(json.Delim); ok {
			switch d {
			case '{', '[':
				depth++
			case '}', ']':
				depth--
			}
		}
	}
	return nil
}
