// Package data synthesizes the workloads of the paper's §V evaluation:
// the synthetic subject/clip polygon pairs of §V-A, and GIS-like feature
// layers that stand in for the real shapefiles of Table III (which are not
// redistributable here). The layer synthesizer matches the published
// statistics — feature count, edge count, mean/stddev edge length, and the
// clustered spatial distribution with a heavy-tailed feature-size
// distribution that produces the load imbalance driving the paper's
// Figures 10–11.
package data

import (
	"math"
	"math/rand"

	"polyclip/internal/geom"
)

// Descriptor describes a dataset in the shape of the paper's Table III.
type Descriptor struct {
	Name        string
	Polys       int     // feature count
	Edges       int     // total edge count
	MeanEdgeLen float64 // average edge length (degrees in the paper)
	SDEdgeLen   float64 // standard deviation of edge length
	Extent      geom.BBox
	Clusters    int // number of spatial clusters features group into
}

// TableIII reproduces the paper's Table III dataset descriptions. Datasets
// 1–2 are the Natural Earth shapefiles; 3–4 the GML telecom data.
var TableIII = []Descriptor{
	{
		Name: "ne_10m_urban_areas", Polys: 11878, Edges: 1153348,
		MeanEdgeLen: 0.00415, SDEdgeLen: 0.0101,
		Extent:   geom.BBox{MinX: -180, MinY: -60, MaxX: 180, MaxY: 75},
		Clusters: 400,
	},
	{
		Name: "ne_10m_states_provinces", Polys: 4647, Edges: 1332830,
		MeanEdgeLen: 0.0282, SDEdgeLen: 0.0546,
		Extent:   geom.BBox{MinX: -180, MinY: -60, MaxX: 180, MaxY: 75},
		Clusters: 150,
	},
	{
		Name: "GML_data_1", Polys: 101860, Edges: 4488080,
		MeanEdgeLen: 0.002, SDEdgeLen: 0.004,
		Extent:   geom.BBox{MinX: -100, MinY: 25, MaxX: -70, MaxY: 50},
		Clusters: 800,
	},
	{
		Name: "GML_data_2", Polys: 128682, Edges: 6262858,
		MeanEdgeLen: 0.002, SDEdgeLen: 0.004,
		Extent:   geom.BBox{MinX: -100, MinY: 25, MaxX: -70, MaxY: 50},
		Clusters: 800,
	},
}

// DescriptorByName returns the Table III descriptor with the given name.
func DescriptorByName(name string) (Descriptor, bool) {
	for _, d := range TableIII {
		if d.Name == name {
			return d, true
		}
	}
	return Descriptor{}, false
}

// JitteredPolygon returns a simple polygon with n edges: a star-shaped ring
// around c whose radius varies smoothly between rMin and rMax as a sum of
// low-frequency harmonics. Star-shaped rings never self-intersect, so the
// output is a simple polygon of arbitrary concavity — the shape class of
// the paper's synthetic §V-A generator. The smooth radius keeps edges
// local (each edge's y-extent is O(perimeter/n)), which is what real
// boundaries look like and what keeps the scanbeam population k' linear.
func JitteredPolygon(rng *rand.Rand, c geom.Point, rMin, rMax float64, n int) geom.Ring {
	if n < 3 {
		n = 3
	}
	base := rng.Float64() * 2 * math.Pi
	const harmonics = 6
	amp := make([]float64, harmonics)
	phase := make([]float64, harmonics)
	var total float64
	for h := range amp {
		amp[h] = rng.Float64() / float64(h+1)
		phase[h] = rng.Float64() * 2 * math.Pi
		total += amp[h]
	}
	mid := (rMin + rMax) / 2
	span := (rMax - rMin) / 2
	ring := make(geom.Ring, n)
	for i := 0; i < n; i++ {
		a := base + 2*math.Pi*float64(i)/float64(n)
		wob := 0.0
		for h := range amp {
			wob += amp[h] * math.Sin(float64(h+1)*a+phase[h])
		}
		r := mid
		if total > 0 {
			r += span * wob / total
		}
		ring[i] = geom.Point{X: c.X + r*math.Cos(a), Y: c.Y + r*math.Sin(a)}
	}
	return ring
}

// SyntheticPair generates the §V-A workload: an overlapping subject and
// clip polygon with nSubject and nClip edges respectively. The polygons
// overlap over roughly half their extent so the number of edge
// intersections grows with the edge counts.
func SyntheticPair(seed int64, nSubject, nClip int) (subject, clip geom.Polygon) {
	rng := rand.New(rand.NewSource(seed))
	subject = geom.Polygon{JitteredPolygon(rng, geom.Point{X: 0, Y: 0}, 80, 100, nSubject)}
	clip = geom.Polygon{JitteredPolygon(rng, geom.Point{X: 60, Y: 25}, 80, 100, nClip)}
	return subject, clip
}

// SelfIntersectingPair generates a pair of self-intersecting polygons (the
// paper's Fig. 2 input class): star polygons whose edges connect every
// second vertex.
func SelfIntersectingPair(seed int64, n int) (subject, clip geom.Polygon) {
	rng := rand.New(rand.NewSource(seed))
	if n < 5 {
		n = 5
	}
	if n%2 == 0 {
		n++
	}
	subject = geom.Polygon{geom.SelfIntersectingStar(geom.Point{X: 0, Y: 0}, 100, n, rng.Float64())}
	clip = geom.Polygon{geom.SelfIntersectingStar(geom.Point{X: 40, Y: 20}, 100, n, rng.Float64())}
	return subject, clip
}

// Layer synthesizes a GIS feature layer matching the descriptor's
// statistics, scaled by scale in (0, 1]: feature and edge counts are
// multiplied by scale, the spatial statistics are preserved. Features are
// simple polygons grouped into clusters; per-feature edge counts follow a
// heavy-tailed distribution (most features small, a few very large —
// exactly the mix behind the paper's Fig. 11 load imbalance), and feature
// radii are chosen so edge lengths match the descriptor's mean.
func Layer(d Descriptor, scale float64, seed int64) []geom.Polygon {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	nPolys := int(float64(d.Polys) * scale)
	if nPolys < 1 {
		nPolys = 1
	}
	targetEdges := int(float64(d.Edges) * scale)
	meanEdges := float64(targetEdges) / float64(nPolys)

	// Cluster centers over the extent. The cluster count scales with the
	// data so feature density per cluster — and with it the number of
	// overlapping feature pairs per feature — stays constant across scales,
	// as it does when sub-sampling a real map.
	nc := int(float64(d.Clusters)*scale + 0.5)
	if nc < 1 {
		nc = 1
	}
	centers := make([]geom.Point, nc)
	for i := range centers {
		centers[i] = geom.Point{
			X: d.Extent.MinX + rng.Float64()*d.Extent.Width(),
			Y: d.Extent.MinY + rng.Float64()*d.Extent.Height(),
		}
	}
	clusterRadius := math.Max(d.Extent.Width(), d.Extent.Height()) / math.Sqrt(float64(nc)) / 2

	layer := make([]geom.Polygon, 0, nPolys)
	edgesLeft := targetEdges
	for i := 0; i < nPolys; i++ {
		// Heavy-tailed edge count: lognormal around the mean.
		n := int(meanEdges * math.Exp(rng.NormFloat64()*1.0-0.5))
		if n < 4 {
			n = 4
		}
		if rem := nPolys - i - 1; rem == 0 {
			n = edgesLeft
			if n < 4 {
				n = 4
			}
		} else if n > edgesLeft-4*rem {
			n = edgesLeft - 4*rem
			if n < 4 {
				n = 4
			}
		}
		edgesLeft -= n

		// Draw the target edge length (lognormal, bounded spread), build a
		// unit-scale ring, then rescale it so its measured mean edge length
		// hits the target exactly.
		targetLen := d.MeanEdgeLen * math.Exp(rng.NormFloat64()*0.5)

		c := centers[rng.Intn(nc)]
		c.X += rng.NormFloat64() * clusterRadius
		c.Y += rng.NormFloat64() * clusterRadius
		ring := JitteredPolygon(rng, c, 0.7, 1.3, n)
		var per float64
		for _, e := range ring.Edges(nil) {
			per += e.Len()
		}
		mean := per / float64(n)
		if mean > 0 {
			ring = ring.ScaleAbout(c, targetLen/mean)
		}
		layer = append(layer, geom.Polygon{ring})
	}
	return layer
}

// LayerStats summarizes a synthesized layer for Table III verification.
type LayerStats struct {
	Polys       int
	Edges       int
	MeanEdgeLen float64
	SDEdgeLen   float64
}

// Stats computes the Table III statistics of a layer.
func Stats(layer []geom.Polygon) LayerStats {
	var st LayerStats
	st.Polys = len(layer)
	var sum, sum2 float64
	for _, f := range layer {
		for _, e := range f.Edges() {
			st.Edges++
			l := e.Len()
			sum += l
			sum2 += l * l
		}
	}
	if st.Edges > 0 {
		st.MeanEdgeLen = sum / float64(st.Edges)
		v := sum2/float64(st.Edges) - st.MeanEdgeLen*st.MeanEdgeLen
		if v > 0 {
			st.SDEdgeLen = math.Sqrt(v)
		}
	}
	return st
}

// OverlapLayer derives a second layer that overlaps the first: every
// feature of src is translated by a fraction of its own size and lightly
// reshaped, giving the dense pairwise overlaps of a map-overlay workload
// (e.g. clipping urban areas against administrative boundaries).
func OverlapLayer(src []geom.Polygon, seed int64) []geom.Polygon {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Polygon, 0, len(src))
	for _, f := range src {
		box := f.BBox()
		dx := (rng.Float64() - 0.5) * box.Width()
		dy := (rng.Float64() - 0.5) * box.Height()
		out = append(out, f.Translate(dx, dy))
	}
	return out
}

// InterleavedPair generates two n-edge polygons around a common center
// whose boundaries oscillate across each other, producing Θ(n) edge
// intersections — the high-k regime of the paper's output-sensitivity
// analysis (two polygons can cross O(nm) times).
func InterleavedPair(seed int64, n int) (subject, clip geom.Polygon) {
	rng := rand.New(rand.NewSource(seed))
	if n < 8 {
		n = 8
	}
	c := geom.Point{X: 0, Y: 0}
	phase := rng.Float64()
	mk := func(flip float64) geom.Ring {
		ring := make(geom.Ring, n)
		for i := 0; i < n; i++ {
			a := phase + 2*math.Pi*float64(i)/float64(n)
			// Radius oscillates every few vertices; the two polygons
			// oscillate in antiphase so their boundaries interleave.
			r := 100 + 12*math.Sin(float64(i)*math.Pi/3+flip)
			ring[i] = geom.Point{X: c.X + r*math.Cos(a), Y: c.Y + r*math.Sin(a)}
		}
		return ring
	}
	return geom.Polygon{mk(0)}, geom.Polygon{mk(math.Pi)}
}
