package guard

import (
	"errors"
	"math"
	"testing"

	"polyclip/internal/geom"
)

func rect(x0, y0, x1, y1 float64) geom.Polygon {
	return geom.Polygon{{{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1}}}
}

func TestValidate(t *testing.T) {
	if err := Validate(rect(0, 0, 4, 4)); err != nil {
		t.Fatalf("clean rect: %v", err)
	}
	if err := Validate(nil); err != nil {
		t.Fatalf("empty polygon: %v", err)
	}
	cases := map[string]geom.Polygon{
		"nan":      {{{X: math.NaN(), Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}}},
		"inf":      {{{X: 0, Y: 0}, {X: math.Inf(1), Y: 0}, {X: 1, Y: 1}}},
		"neg-inf":  {{{X: 0, Y: 0}, {X: 1, Y: math.Inf(-1)}, {X: 1, Y: 1}}},
		"overflow": {{{X: 0, Y: 0}, {X: 2 * MaxCoord, Y: 0}, {X: 1, Y: 1}}},
	}
	for name, p := range cases {
		err := Validate(p)
		if err == nil {
			t.Errorf("%s: want error, got nil", name)
			continue
		}
		if !errors.Is(err, ErrInvalidInput) {
			t.Errorf("%s: error %v does not wrap ErrInvalidInput", name, err)
		}
	}
}

func TestRepair(t *testing.T) {
	t.Run("clean input untouched", func(t *testing.T) {
		p := rect(0, 0, 4, 4)
		out, rep := Repair(p)
		if rep.Changed() {
			t.Fatalf("clean rect reported changed: %+v", rep)
		}
		if &out[0][0] != &p[0][0] {
			t.Fatal("clean rect was copied")
		}
	})
	t.Run("duplicates", func(t *testing.T) {
		p := geom.Polygon{{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}, {X: 0, Y: 4}}}
		out, rep := Repair(p)
		if rep.DedupedVertices == 0 {
			t.Fatalf("no dedup reported: %+v", rep)
		}
		if len(out[0]) != 4 {
			t.Fatalf("want 4 vertices, got %d: %v", len(out[0]), out[0])
		}
	})
	t.Run("closing duplicate", func(t *testing.T) {
		// Explicitly closed ring: last vertex repeats the first.
		p := geom.Polygon{{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}, {X: 0, Y: 0}}}
		out, rep := Repair(p)
		if !rep.Changed() || len(out[0]) != 4 {
			t.Fatalf("closing duplicate not removed: %v (%+v)", out, rep)
		}
	})
	t.Run("spike", func(t *testing.T) {
		// (4,0) -> (6,0) -> (4,0) is a zero-area spike.
		p := geom.Polygon{{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 6, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}}}
		out, rep := Repair(p)
		if rep.Spikes == 0 {
			t.Fatalf("no spike reported: %+v", rep)
		}
		if len(out[0]) != 4 {
			t.Fatalf("want 4 vertices after spike removal, got %v", out[0])
		}
	})
	t.Run("degenerate ring dropped", func(t *testing.T) {
		p := geom.Polygon{
			{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}},
			{{X: 9, Y: 9}, {X: 9, Y: 9}, {X: 9, Y: 9}},
		}
		out, rep := Repair(p)
		if rep.DroppedRings != 1 || len(out) != 1 {
			t.Fatalf("degenerate ring not dropped: %v (%+v)", out, rep)
		}
	})
}

func TestAudit(t *testing.T) {
	r := rect(0, 0, 2, 2) // area 4
	if err := Audit(r, 4, 16, OpIntersection); err != nil {
		t.Fatalf("valid intersection flagged: %v", err)
	}
	// Intersection result cannot exceed the smaller input area.
	if err := Audit(rect(0, 0, 10, 10), 4, 16, OpIntersection); err == nil {
		t.Fatal("oversized intersection passed audit")
	}
	// Difference result cannot exceed the subject area.
	if err := Audit(rect(0, 0, 10, 10), 4, 16, OpDifference); err == nil {
		t.Fatal("oversized difference passed audit")
	}
	// Union may reach the sum of the inputs.
	if err := Audit(rect(0, 0, 4, 5), 4, 16, OpUnion); err != nil {
		t.Fatalf("valid union flagged: %v", err)
	}
	// Non-finite result coordinates fail regardless of area.
	bad := geom.Polygon{{{X: 0, Y: 0}, {X: math.NaN(), Y: 0}, {X: 1, Y: 1}}}
	if err := Audit(bad, 4, 16, OpUnion); err == nil {
		t.Fatal("non-finite result passed audit")
	}
	// A ring below three vertices fails.
	if err := Audit(geom.Polygon{{{X: 0, Y: 0}, {X: 1, Y: 1}}}, 4, 16, OpUnion); err == nil {
		t.Fatal("two-vertex ring passed audit")
	}
}

func TestAuditDifferential(t *testing.T) {
	r := rect(0, 0, 2, 2) // area 4
	if err := AuditDifferential(r, 4, 20); err != nil {
		t.Fatalf("exact agreement flagged: %v", err)
	}
	// Disagreement within DiffTol of the scale passes.
	if err := AuditDifferential(r, 4+0.5*DiffTol*20, 20); err != nil {
		t.Fatalf("in-tolerance agreement flagged: %v", err)
	}
	// Disagreement beyond tolerance fails.
	if err := AuditDifferential(r, 4.01, 20); err == nil {
		t.Fatal("out-of-tolerance disagreement passed")
	}
	// The tolerance is relative to the larger of scale and the areas, so a
	// tiny scale does not make agreement at large areas impossible.
	if err := AuditDifferential(r, 4*(1+0.5*DiffTol), 0); err != nil {
		t.Fatalf("relative tolerance did not track the areas: %v", err)
	}
	// A NaN reference area never agrees.
	if err := AuditDifferential(r, math.NaN(), 20); err == nil {
		t.Fatal("NaN reference passed")
	}
}

func TestFaultInjection(t *testing.T) {
	defer ClearFaults()

	t.Run("hit fires and clears", func(t *testing.T) {
		n := 0
		InjectFault("site.a", func() { n++ })
		Hit("site.a")
		Hit("site.a")
		ClearFault("site.a")
		Hit("site.a")
		if n != 2 {
			t.Fatalf("want 2 firings, got %d", n)
		}
	})
	t.Run("unregistered site is a no-op", func(t *testing.T) {
		Hit("site.unknown")
		p := rect(0, 0, 1, 1)
		if got := HitPoly("site.unknown", p); &got[0][0] != &p[0][0] {
			t.Fatal("HitPoly copied the polygon with no fault registered")
		}
	})
	t.Run("hitpoly transforms", func(t *testing.T) {
		InjectFault("site.b", func(p geom.Polygon) geom.Polygon { return nil })
		defer ClearFault("site.b")
		if got := HitPoly("site.b", rect(0, 0, 1, 1)); got != nil {
			t.Fatalf("transformer not applied: %v", got)
		}
	})
	t.Run("once", func(t *testing.T) {
		n := 0
		f := Once(func() { n++ })
		f()
		f()
		if n != 1 {
			t.Fatalf("Once fired %d times", n)
		}
	})
	t.Run("times", func(t *testing.T) {
		n := 0
		f := Times(3, func() { n++ })
		for i := 0; i < 10; i++ {
			f()
		}
		if n != 3 {
			t.Fatalf("Times(3) fired %d times", n)
		}
	})
}

func TestWithFault(t *testing.T) {
	n := 0
	t.Run("scoped", func(t *testing.T) {
		WithFault(t, "site.withfault", func() { n++ })
		Hit("site.withfault")
	})
	// The subtest finished, so its cleanup must have cleared the site.
	Hit("site.withfault")
	if n != 1 {
		t.Fatalf("fault fired %d times, want 1 (WithFault cleanup must clear the site)", n)
	}
}

func TestFromPanic(t *testing.T) {
	ce := FromPanic("slab-clip", 2, NoPair, "boom")
	if ce.Stage != "slab-clip" || ce.Slab != 2 || ce.Value != "boom" {
		t.Fatalf("bad attribution: %+v", ce)
	}
	if len(ce.Stack) == 0 {
		t.Fatal("no stack captured")
	}
	// An error panic value is exposed through Unwrap.
	sentinel := errors.New("sentinel")
	ce = FromPanic("clip", -1, NoPair, sentinel)
	if !errors.Is(ce, sentinel) {
		t.Fatal("wrapped error not reachable via errors.Is")
	}
	// A *ClipError passes through, keeping the deepest attribution.
	inner := FromPanic("pair-clip", -1, [2]int{3, 7}, "inner")
	outer := FromPanic("clip", -1, NoPair, inner)
	if outer != inner {
		t.Fatal("nested ClipError was re-wrapped")
	}
}
