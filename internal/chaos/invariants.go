// Metamorphic invariant checking. Golden outputs are useless against
// generated adversarial inputs — nobody knows the right answer for a
// random self-intersecting star clipped against a bowtie. What we do know
// are relations that must hold between *related* clips: measure theory
// gives |A∩B| + |A\B| = |A| and inclusion–exclusion, boolean algebra gives
// commutativity and idempotence, affine equivariance gives translation and
// scale invariance, and engine diversity gives cross-checking against the
// sequential Vatti sweep. A violation of any of these is a real bug, with
// no oracle needed.
package chaos

import (
	"math"
	"strings"

	"polyclip"
)

// areaOf runs one clip and returns the even-odd area of the result. ok is
// false when the clip surfaced an error (already recorded by e.clip) — the
// caller must then skip invariants depending on this value.
func (e *engine) areaOf(ci int, w workload, a, b polyclip.Polygon, op polyclip.Op, opt polyclip.Options) (float64, bool) {
	out, err := e.clip(ci, w, a, b, op, opt)
	if err != nil {
		return 0, false
	}
	return polyclip.Area(out), true
}

// checkCase runs the full invariant suite for one workload. Every check is
// an area comparison under the run's relative tolerance; scale anchors the
// tolerance for comparisons whose operands may legitimately be ~0.
func (e *engine) checkCase(ci int, w workload) {
	// Tiles workloads carry a layer and a pyramid window, not an operand
	// pair: they get the tiling invariant suite instead.
	if strings.HasPrefix(w.name, "tiles-") {
		e.checkTiles(ci, w)
		return
	}
	opt := polyclip.Options{Threads: e.cfg.Threads}

	// Reference measures: |A| and |B| as even-odd regions. The shoelace sum
	// over raw rings is wrong for self-intersecting inputs (a bowtie's
	// lobes cancel), so the resolved region A∩A supplies the measure.
	refA, okA := e.areaOf(ci, w, w.a, w.a, polyclip.Intersection, opt)
	refB, okB := e.areaOf(ci, w, w.b, w.b, polyclip.Intersection, opt)
	if !okA || !okB {
		return
	}
	scale := refA + refB

	iAB, ok1 := e.areaOf(ci, w, w.a, w.b, polyclip.Intersection, opt)
	dAB, ok2 := e.areaOf(ci, w, w.a, w.b, polyclip.Difference, opt)
	uAB, ok3 := e.areaOf(ci, w, w.a, w.b, polyclip.Union, opt)
	if ok1 && ok2 {
		e.check(ci, w, "area-conservation", iAB+dAB, refA, scale)
	}
	if ok1 && ok3 {
		e.check(ci, w, "inclusion-exclusion", uAB, refA+refB-iAB, scale)
		if xAB, ok := e.areaOf(ci, w, w.a, w.b, polyclip.Xor, opt); ok {
			e.check(ci, w, "xor-identity", xAB, uAB-iAB, scale)
		}
	}

	// Commutativity of the symmetric operations.
	if iBA, ok := e.areaOf(ci, w, w.b, w.a, polyclip.Intersection, opt); ok && ok1 {
		e.check(ci, w, "commute-intersection", iBA, iAB, scale)
	}
	if uBA, ok := e.areaOf(ci, w, w.b, w.a, polyclip.Union, opt); ok && ok3 {
		e.check(ci, w, "commute-union", uBA, uAB, scale)
	}

	// Affine equivariance under exact float transforms: translating by a
	// power of two near the workload extent and scaling by 4 are exact on
	// the inputs, so the output measure must follow (the snap grid scales
	// with the data, so the arrangement is the same up to rounding).
	base, okBase := e.areaOf(ci, w, w.a, w.b, w.op, opt)
	if okBase {
		t := dyadicExtent(w.a, w.b)
		ta, tb := translatePoly(w.a, t, -t), translatePoly(w.b, t, -t)
		if tArea, ok := e.areaOf(ci, w, ta, tb, w.op, opt); ok {
			e.check(ci, w, "translation-invariance", tArea, base, scale)
		}
		sa, sb := scalePoly(w.a, 4), scalePoly(w.b, 4)
		if sArea, ok := e.areaOf(ci, w, sa, sb, w.op, opt); ok {
			e.check(ci, w, "scale-equivariance", sArea, 16*base, 16*scale)
		}
	}

	// Idempotence on the (clean, library-produced) intersection output.
	if ok1 && iAB > e.cfg.RelTol*scale {
		c, err := e.clip(ci, w, w.a, w.b, polyclip.Intersection, opt)
		if err == nil {
			if cc, ok := e.areaOf(ci, w, c, c, polyclip.Intersection, opt); ok {
				e.check(ci, w, "idempotence-intersection", cc, iAB, scale)
			}
			if cu, ok := e.areaOf(ci, w, c, c, polyclip.Union, opt); ok {
				e.check(ci, w, "idempotence-union", cu, iAB, scale)
			}
			if cd, ok := e.areaOf(ci, w, c, c, polyclip.Difference, opt); ok {
				e.check(ci, w, "self-difference-empty", cd, 0, scale)
			}
		}
	}

	// Cross-engine agreement: the parallel pipeline against the sequential
	// Vatti sweep (no fallback, so a disagreement cannot be papered over by
	// the rescue chain) and against the slab decomposition. All families are
	// in scope — the arrangement pre-resolution (internal/arrange) made the
	// Vatti sweep robust on self-intersecting and near-collinear inputs.
	if okBase {
		seq := polyclip.Options{Algorithm: polyclip.AlgoSequential, Threads: 1, NoFallback: true}
		if vArea, ok := e.areaOf(ci, w, w.a, w.b, w.op, seq); ok {
			e.check(ci, w, "cross-engine-vatti", vArea, base, scale)
		}
		slabs := polyclip.Options{Algorithm: polyclip.AlgoSlabs, Threads: e.cfg.Threads}
		if sArea, ok := e.areaOf(ci, w, w.a, w.b, w.op, slabs); ok {
			e.check(ci, w, "cross-engine-slabs", sArea, base, scale)
		}
		scanbeam := polyclip.Options{Algorithm: polyclip.AlgoScanbeam, Threads: e.cfg.Threads}
		if sArea, ok := e.areaOf(ci, w, w.a, w.b, w.op, scanbeam); ok {
			e.check(ci, w, "cross-engine-scanbeam", sArea, base, scale)
		}
	}

	// Per-rule cross-engine agreement. Every engine now hosts every fill
	// rule (the scanbeam substrate sweeps signed winding counts, the slab
	// decomposition normalizes winding operands), so for each winding rule
	// the overlay baseline, the sequential Vatti sweep, the slab engine,
	// and the parallel scanbeam pipeline must land on the same measure —
	// on the degenerate families included, where rule disagreements are
	// exactly where doubled boundaries and dropped slivers hide.
	for _, rule := range []polyclip.FillRule{polyclip.NonZero, polyclip.Positive, polyclip.Negative} {
		ruleBase, ok := e.areaOf(ci, w, w.a, w.b, w.op, polyclip.Options{Threads: e.cfg.Threads, Rule: rule})
		if !ok {
			continue
		}
		alts := []struct {
			name string
			opt  polyclip.Options
		}{
			{"vatti", polyclip.Options{Algorithm: polyclip.AlgoSequential, Threads: 1, Rule: rule, NoFallback: true}},
			{"slabs", polyclip.Options{Algorithm: polyclip.AlgoSlabs, Threads: e.cfg.Threads, Rule: rule}},
			{"scanbeam", polyclip.Options{Algorithm: polyclip.AlgoScanbeam, Threads: e.cfg.Threads, Rule: rule}},
		}
		for _, alt := range alts {
			if aArea, ok := e.areaOf(ci, w, w.a, w.b, w.op, alt.opt); ok {
				e.check(ci, w, "cross-engine-"+alt.name+"-"+rule.String(), aArea, ruleBase, scale)
			}
		}
	}
}

// check records one invariant comparison: |got-want| within RelTol of the
// largest magnitude in play. NaN anywhere fails (comparisons with NaN are
// false), which is exactly what we want from a poisoned result.
func (e *engine) check(ci int, w workload, name string, got, want, scale float64) {
	e.rep.InvariantChecks++
	s := math.Max(math.Abs(scale), math.Max(math.Abs(got), math.Abs(want)))
	if math.Abs(got-want) <= e.cfg.RelTol*s {
		return
	}
	e.fail(ci, w, name, got, want)
}
