// Package isect finds pairs of intersecting segments among a set of polygon
// edges. Three finders are provided:
//
//   - BruteForcePairs: O(n²) oracle used by tests.
//   - GridPairs: uniform-grid candidate filter (the practical engine's
//     default for irregular GIS data).
//   - ScanbeamPairs: the paper's output-sensitive method — decompose the
//     y-range into scanbeams with a segment tree, order the edges of each
//     beam along the bottom and top scanlines, and report the inversions
//     between the two orders with the extended mergesort of Lemma 4; each
//     inversion is a candidate crossing pair (Fig. 4).
//
// All finders return verified pairs: candidates are confirmed with the exact
// segment intersection predicate before being reported. Horizontal edges
// span no scanbeam and must be removed by the caller (the paper's
// perturbation preprocessing, geom.PerturbHorizontals).
package isect

import (
	"math"
	"slices"
	"sync"

	"polyclip/internal/geom"
	"polyclip/internal/guard"
	"polyclip/internal/par"
	"polyclip/internal/segtree"
)

// beamScratch holds the per-beam working arrays of the scanbeam finders.
// Beams are processed in parallel, so each worker draws its own scratch from
// the pool instead of allocating six slices per beam.
type beamScratch struct {
	xb, xt          []float64
	order, topOrder []int
	rank, seq       []int
	at              []boundaryEntry
}

var beamScratchPool = sync.Pool{New: func() any { return new(beamScratch) }}

func (s *beamScratch) beamBufs(k int) (xb, xt []float64, order, topOrder, rank, seq []int) {
	if cap(s.xb) < k {
		s.xb = make([]float64, k)
		s.xt = make([]float64, k)
		s.order = make([]int, k)
		s.topOrder = make([]int, k)
		s.rank = make([]int, k)
		s.seq = make([]int, k)
	}
	return s.xb[:k], s.xt[:k], s.order[:k], s.topOrder[:k], s.rank[:k], s.seq[:k]
}

// boundaryEntry positions an edge on a beam boundary scanline.
type boundaryEntry struct {
	x  float64
	id int32
}

func (s *beamScratch) boundary(n int) []boundaryEntry {
	if cap(s.at) < n {
		s.at = make([]boundaryEntry, n)
	}
	return s.at[:n]
}

// beamSeq fills the scratch with the beam's bottom-scanline permutation and
// the rank sequence whose inversions are its crossing candidates (Fig. 4):
// order is the bottom order (ties broken along the top so edges sharing a
// bottom endpoint are not spuriously inverted), topOrder the symmetric top
// order, and seq the top ranks read in bottom order.
func beamSeq(edges []geom.Segment, ids []int32, yb, yt float64, s *beamScratch) (xb, xt []float64, order, topOrder, seq []int) {
	k := len(ids)
	xb, xt, order, topOrder, rank, seq := s.beamBufs(k)
	for i, id := range ids {
		xb[i] = edges[id].XAtY(yb)
		xt[i] = edges[id].XAtY(yt)
	}
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int {
		if xb[a] != xb[b] {
			if xb[a] < xb[b] {
				return -1
			}
			return 1
		}
		if xt[a] != xt[b] {
			if xt[a] < xt[b] {
				return -1
			}
			return 1
		}
		return 0
	})
	copy(topOrder, order)
	slices.SortFunc(topOrder, func(a, b int) int {
		if xt[a] != xt[b] {
			if xt[a] < xt[b] {
				return -1
			}
			return 1
		}
		if xb[a] != xb[b] {
			if xb[a] < xb[b] {
				return -1
			}
			return 1
		}
		return 0
	})
	for r, i := range topOrder {
		rank[i] = r
	}
	for pos, i := range order {
		seq[pos] = rank[i]
	}
	return xb, xt, order, topOrder, seq
}

// Pair is an unordered pair of edge indices with I < J that intersect in at
// least one point.
type Pair struct {
	I, J int32
}

func canon(i, j int32) Pair {
	if i > j {
		i, j = j, i
	}
	return Pair{i, j}
}

// verify reports whether edges i and j actually intersect.
func verify(edges []geom.Segment, i, j int32) bool {
	kind, _, _ := geom.SegIntersection(edges[i], edges[j])
	return kind != geom.Disjoint
}

// dedupPairs sorts and removes duplicates in place.
func dedupPairs(ps []Pair) []Pair {
	slices.SortFunc(ps, func(a, b Pair) int {
		if a.I != b.I {
			return int(a.I - b.I)
		}
		return int(a.J - b.J)
	})
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// BruteForcePairs returns every intersecting pair by testing all O(n²)
// candidates. Test oracle; do not use on large inputs.
func BruteForcePairs(edges []geom.Segment) []Pair {
	var out []Pair
	for i := int32(0); i < int32(len(edges)); i++ {
		for j := i + 1; j < int32(len(edges)); j++ {
			if verify(edges, i, j) {
				out = append(out, Pair{i, j})
			}
		}
	}
	return out
}

// edgeGrid is the uniform-grid candidate structure shared by GridPairs and
// VisitCandidatePairs: every edge is binned into the cells its bounding box
// covers, stored in compressed (CSR) form so building it costs three flat
// allocations regardless of how many cells the data spreads over.
type edgeGrid struct {
	minX, minY float64
	cell       float64
	nx, ny     int
	binStart   []int32 // len nx*ny+1: cell c holds binIDs[binStart[c]:binStart[c+1]]
	binIDs     []int32
}

// buildGrid bins the edges. Cell size aims for the average edge extent,
// bounded so the grid stays O(n) cells.
func buildGrid(edges []geom.Segment) *edgeGrid {
	n := len(edges)
	box := geom.EmptyBBox()
	var totalLen float64
	for _, e := range edges {
		box.Extend(e.A)
		box.Extend(e.B)
		totalLen += e.Len()
	}
	w, h := box.Width(), box.Height()
	if w == 0 {
		w = 1
	}
	if h == 0 {
		h = 1
	}
	cell := totalLen / float64(n)
	if cell <= 0 {
		cell = w / 64
	}
	maxCells := 4 * n
	for int(w/cell+1)*int(h/cell+1) > maxCells {
		cell *= 1.5
	}
	g := &edgeGrid{
		minX: box.MinX, minY: box.MinY,
		cell: cell,
		nx:   int(w/cell) + 1,
		ny:   int(h/cell) + 1,
	}

	// Two-phase CSR fill: count cells per edge, prefix-sum, then place ids.
	counts := make([]int32, g.nx*g.ny+1)
	for _, e := range edges {
		g.eachCell(e, func(c int) { counts[c+1]++ })
	}
	for c := 1; c < len(counts); c++ {
		counts[c] += counts[c-1]
	}
	g.binIDs = make([]int32, counts[len(counts)-1])
	fill := make([]int32, g.nx*g.ny)
	for i, e := range edges {
		g.eachCell(e, func(c int) {
			g.binIDs[counts[c]+fill[c]] = int32(i)
			fill[c]++
		})
	}
	g.binStart = counts
	return g
}

// cellOf clamps a coordinate into grid cell indices.
func (g *edgeGrid) cellOf(x, y float64) (int, int) {
	cx := int((x - g.minX) / g.cell)
	cy := int((y - g.minY) / g.cell)
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	return cx, cy
}

// eachCell visits the cells covered by the edge's bounding box.
func (g *edgeGrid) eachCell(e geom.Segment, fn func(c int)) {
	lox, hix := e.XSpan()
	loy, hiy := e.YSpan()
	cx0, cy0 := g.cellOf(lox, loy)
	cx1, cy1 := g.cellOf(hix, hiy)
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			fn(cy*g.nx + cx)
		}
	}
}

// bboxOverlap is the cheap axis-span prefilter applied to cell-sharing
// candidates before any predicate runs.
func bboxOverlap(ei, ej geom.Segment) bool {
	lox1, hix1 := ei.XSpan()
	lox2, hix2 := ej.XSpan()
	if hix1 < lox2 || hix2 < lox1 {
		return false
	}
	loy1, hiy1 := ei.YSpan()
	loy2, hiy2 := ej.YSpan()
	return hiy1 >= loy2 && hiy2 >= loy1
}

// GridPairs returns every intersecting pair using a uniform grid candidate
// filter with parallelism p. Each edge is binned into the grid cells its
// bounding box covers; edges sharing a cell are candidates.
func GridPairs(edges []geom.Segment, p int) []Pair {
	guard.Hit("isect.pairs")
	n := len(edges)
	if n < 2 {
		return nil
	}
	g := buildGrid(edges)

	// Candidate pairs per cell, verified, with bbox prefilter; collected
	// per-goroutine and merged.
	ncells := g.nx * g.ny
	results := make([][]Pair, par.DefaultParallelism())
	if p > 0 {
		results = make([][]Pair, p)
	}
	var mu sync.Mutex
	next := 0
	par.ForEach(ncells, p, func(lo, hi int) {
		mu.Lock()
		slot := next
		next++
		mu.Unlock()
		var local []Pair
		for c := lo; c < hi; c++ {
			ids := g.binIDs[g.binStart[c]:g.binStart[c+1]]
			for a := 0; a < len(ids); a++ {
				for b := a + 1; b < len(ids); b++ {
					i, j := ids[a], ids[b]
					if !bboxOverlap(edges[i], edges[j]) {
						continue
					}
					if verify(edges, i, j) {
						local = append(local, canon(i, j))
					}
				}
			}
		}
		results[slot] = local
	})
	var all []Pair
	for _, r := range results {
		all = append(all, r...)
	}
	return dedupPairs(all)
}

// VisitCandidatePairs streams every grid candidate pair — two edges sharing
// a grid cell whose bounding boxes overlap, exactly the candidate set
// GridPairs verifies — to visit, sequentially, stopping early when visit
// returns false. Candidates are NOT verified (callers run their own
// predicate) and a pair spanning several shared cells is visited once per
// cell; callers must be idempotent. This is the counting/pre-scan mode of
// the grid finder: the arrangement fast path uses it to detect "no
// resolution needed" without materializing, verifying, or deduplicating a
// pair list.
func VisitCandidatePairs(edges []geom.Segment, visit func(i, j int32) bool) {
	if len(edges) < 2 {
		return
	}
	g := buildGrid(edges)
	ncells := g.nx * g.ny
	for c := 0; c < ncells; c++ {
		ids := g.binIDs[g.binStart[c]:g.binStart[c+1]]
		for a := 0; a < len(ids); a++ {
			for b := a + 1; b < len(ids); b++ {
				i, j := ids[a], ids[b]
				if !bboxOverlap(edges[i], edges[j]) {
					continue
				}
				if !visit(i, j) {
					return
				}
			}
		}
	}
}

// ScanbeamPairs returns every intersecting pair using the paper's
// scanbeam-inversion method with parallelism p. Cost is
// O((n + k') log(n + k')) plus the inversion output k, matching the paper's
// output-sensitive bound.
func ScanbeamPairs(edges []geom.Segment, p int) []Pair {
	guard.Hit("isect.pairs")
	n := len(edges)
	if n < 2 {
		return nil
	}
	// Step 1: event schedule = distinct endpoint y's.
	ys := make([]float64, 0, 2*n)
	for _, e := range edges {
		lo, hi := e.YSpan()
		if lo == hi {
			continue // horizontal: spans no beam; caller must perturb
		}
		ys = append(ys, lo, hi)
	}
	ys = segtree.Dedup(ys)
	if len(ys) < 2 {
		return nil
	}

	// Step 2: populate scanbeams via the segment tree.
	tree := segtree.Build(ys, n, func(i int32) segtree.Interval {
		lo, hi := edges[i].YSpan()
		return segtree.Interval{Lo: lo, Hi: hi}
	}, p)
	beams, _ := tree.AllBeams(p)

	// Step 3: per beam, inversions between bottom and top scanline orders.
	m := len(beams)
	perBeam := make([][]Pair, m)
	par.ForEachItem(m, p, func(b int) {
		perBeam[b] = beamPairs(edges, beams[b], ys[b], ys[b+1])
	})

	// Scanline events: pairs that meet exactly on a beam boundary (shared
	// vertices between an edge ending and an edge starting there, or
	// T-junctions on the scanline) occupy disjoint beams and produce no
	// inversion; catch them by merging the top order of the beam below with
	// the bottom order of the beam above and scanning equal-x runs. This is
	// the local-minima/maxima event processing of Vatti's sweep.
	boundary := make([][]Pair, m+1)
	par.ForEachItem(m-1, p, func(bi int) {
		b := bi + 1 // boundary between beams b-1 and b
		y := ys[b]
		s := beamScratchPool.Get().(*beamScratch)
		defer beamScratchPool.Put(s)
		at := s.boundary(len(beams[b-1]) + len(beams[b]))[:0]
		for _, id := range beams[b-1] {
			at = append(at, boundaryEntry{edges[id].XAtY(y), id})
		}
		for _, id := range beams[b] {
			at = append(at, boundaryEntry{edges[id].XAtY(y), id})
		}
		slices.SortFunc(at, func(a, c boundaryEntry) int {
			switch {
			case a.x < c.x:
				return -1
			case a.x > c.x:
				return 1
			default:
				return 0
			}
		})
		// Group within a tolerance relative to the coordinate magnitude:
		// XAtY roundoff is relative, so an absolute grouping tolerance
		// either misses touching pairs at huge scales or degenerates to one
		// quadratic group at tiny ones. verify re-checks every candidate
		// exactly, so over-grouping costs time, never correctness.
		maxAbs := 0.0
		for _, e := range at {
			if a := math.Abs(e.x); a > maxAbs {
				maxAbs = a
			}
		}
		xEps := geom.RelEps * maxAbs
		var out []Pair
		for a := 0; a < len(at); {
			c := a + 1
			for c < len(at) && at[c].x-at[a].x <= xEps {
				c++
			}
			for u := a; u < c; u++ {
				for v := u + 1; v < c; v++ {
					if at[u].id != at[v].id && verify(edges, at[u].id, at[v].id) {
						out = append(out, canon(at[u].id, at[v].id))
					}
				}
			}
			a = c
		}
		boundary[b] = out
	})

	var all []Pair
	for _, ps := range perBeam {
		all = append(all, ps...)
	}
	for _, ps := range boundary {
		all = append(all, ps...)
	}
	return dedupPairs(all)
}

// beamPairs finds intersecting pairs among the edges spanning one scanbeam
// [yb, yt] by counting and reporting inversions between the bottom and top
// orders (Lemma 4), plus equal-x runs to catch pairs that touch exactly on a
// scanline.
func beamPairs(edges []geom.Segment, ids []int32, yb, yt float64) []Pair {
	k := len(ids)
	if k < 2 {
		return nil
	}
	s := beamScratchPool.Get().(*beamScratch)
	defer beamScratchPool.Put(s)
	xb, xt, order, topOrder, seq := beamSeq(edges, ids, yb, yt, s)

	var out []Pair
	for _, ip := range par.ReportInversions(seq) {
		i, j := ids[order[ip.I]], ids[order[ip.J]]
		if verify(edges, i, j) {
			out = append(out, canon(i, j))
		}
	}

	// Equal-x runs on either scanline: candidates that touch on a scanline
	// (shared endpoints, tangencies) produce no inversion but may still
	// intersect.
	addRuns := func(xs []float64, ord []int) {
		for a := 0; a < k; {
			b := a + 1
			for b < k && xs[ord[b]] == xs[ord[a]] {
				b++
			}
			for u := a; u < b; u++ {
				for v := u + 1; v < b; v++ {
					i, j := ids[ord[u]], ids[ord[v]]
					if verify(edges, i, j) {
						out = append(out, canon(i, j))
					}
				}
			}
			a = b
		}
	}
	addRuns(xb, order)
	addRuns(xt, topOrder)
	return out
}

// CountCrossings returns the total number of inversions over all scanbeams —
// the paper's a-priori estimate of k used for output-sensitive processor
// allocation — without reporting the pairs.
func CountCrossings(edges []geom.Segment, p int) int64 {
	n := len(edges)
	if n < 2 {
		return 0
	}
	ys := make([]float64, 0, 2*n)
	for _, e := range edges {
		lo, hi := e.YSpan()
		if lo == hi {
			continue
		}
		ys = append(ys, lo, hi)
	}
	ys = segtree.Dedup(ys)
	if len(ys) < 2 {
		return 0
	}
	tree := segtree.Build(ys, n, func(i int32) segtree.Interval {
		lo, hi := edges[i].YSpan()
		return segtree.Interval{Lo: lo, Hi: hi}
	}, p)
	beams, _ := tree.AllBeams(p)

	counts := make([]int64, len(beams))
	par.ForEachItem(len(beams), p, func(b int) {
		ids := beams[b]
		if len(ids) < 2 {
			return
		}
		s := beamScratchPool.Get().(*beamScratch)
		_, _, _, _, seq := beamSeq(edges, ids, ys[b], ys[b+1], s)
		counts[b] = par.CountInversions(seq)
		beamScratchPool.Put(s)
	})
	var total int64
	for _, c := range counts {
		total += c
	}
	return total
}

// Points returns the distinct intersection points for the given verified
// pairs, including both endpoints of collinear overlaps.
func Points(edges []geom.Segment, pairs []Pair) []geom.Point {
	var pts []geom.Point
	for _, pr := range pairs {
		kind, p0, p1 := geom.SegIntersection(edges[pr.I], edges[pr.J])
		switch kind {
		case geom.Crossing:
			pts = append(pts, p0)
		case geom.Overlapping:
			pts = append(pts, p0, p1)
		}
	}
	slices.SortFunc(pts, func(a, b geom.Point) int {
		switch {
		case a.Less(b):
			return -1
		case b.Less(a):
			return 1
		default:
			return 0
		}
	})
	out := pts[:0]
	for i, p := range pts {
		if i == 0 || p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}
