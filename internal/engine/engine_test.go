package engine_test

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"polyclip/internal/engine"
	"polyclip/internal/geom"
)

func TestOpStringAndEval(t *testing.T) {
	cases := []struct {
		op   engine.Op
		name string
		tt   bool // Eval(true, true)
		tf   bool // Eval(true, false)
	}{
		{engine.Intersection, "intersection", true, false},
		{engine.Union, "union", true, true},
		{engine.Difference, "difference", false, true},
		{engine.Xor, "xor", false, true},
	}
	for _, c := range cases {
		if c.op.String() != c.name {
			t.Errorf("%d: String() = %q, want %q", c.op, c.op.String(), c.name)
		}
		if c.op.Eval(true, true) != c.tt || c.op.Eval(true, false) != c.tf {
			t.Errorf("%s: Eval truth table wrong", c.name)
		}
		if c.op.Eval(false, false) {
			t.Errorf("%s: Eval(false, false) = true", c.name)
		}
	}
	if engine.Op(99).String() != "unknown" {
		t.Errorf("invalid op String() = %q", engine.Op(99).String())
	}
	if engine.Op(99).Eval(true, true) {
		t.Error("invalid op Eval = true")
	}
	if len(engine.Ops()) != 4 {
		t.Errorf("Ops() has %d entries, want 4", len(engine.Ops()))
	}
}

func TestFillRule(t *testing.T) {
	if engine.EvenOdd.String() != "evenodd" || engine.NonZero.String() != "nonzero" ||
		engine.Positive.String() != "positive" || engine.Negative.String() != "negative" {
		t.Error("fill rule names wrong")
	}
	if engine.FillRule(9).String() != "unknown" {
		t.Error("invalid rule String")
	}
	if !engine.EvenOdd.Inside(1) || engine.EvenOdd.Inside(2) || !engine.EvenOdd.Inside(-3) {
		t.Error("EvenOdd.Inside wrong")
	}
	if !engine.NonZero.Inside(2) || engine.NonZero.Inside(0) || !engine.NonZero.Inside(-1) {
		t.Error("NonZero.Inside wrong")
	}
	if !engine.Positive.Inside(1) || engine.Positive.Inside(0) || engine.Positive.Inside(-1) {
		t.Error("Positive.Inside wrong")
	}
	if !engine.Negative.Inside(-1) || engine.Negative.Inside(0) || engine.Negative.Inside(2) {
		t.Error("Negative.Inside wrong")
	}
	if len(engine.Rules()) != 4 {
		t.Errorf("Rules() has %d entries, want 4", len(engine.Rules()))
	}
	for _, r := range engine.Rules() {
		got, ok := engine.ParseRule(r.String())
		if !ok || got != r {
			t.Errorf("ParseRule(%q) = %v, %v", r.String(), got, ok)
		}
		if !engine.AllRules().Has(r) {
			t.Errorf("AllRules() lacks %s", r)
		}
	}
	if _, ok := engine.ParseRule("winding-deluxe"); ok {
		t.Error("ParseRule accepted an unknown name")
	}
}

func TestRuleMask(t *testing.T) {
	s := engine.RuleMask(engine.EvenOdd)
	if !s.Has(engine.EvenOdd) || s.Has(engine.NonZero) {
		t.Error("single-rule mask wrong")
	}
	both := engine.RuleMask(engine.EvenOdd, engine.NonZero)
	if !both.Has(engine.EvenOdd) || !both.Has(engine.NonZero) {
		t.Error("two-rule mask wrong")
	}
}

func TestCheckRuleAndUnsupportedError(t *testing.T) {
	// Every registered engine now implements every rule, so the rejection
	// machinery is exercised through a parity-only stand-in.
	parityOnly := badEngine{name: "parity-only", rules: engine.RuleMask(engine.EvenOdd)}
	if err := engine.CheckRule(parityOnly, engine.EvenOdd); err != nil {
		t.Errorf("parity-only EvenOdd: %v", err)
	}
	err := engine.CheckRule(parityOnly, engine.NonZero)
	if !errors.Is(err, engine.ErrUnsupported) {
		t.Fatalf("parity-only NonZero: err = %v, want ErrUnsupported", err)
	}
	var ue *engine.UnsupportedError
	if !errors.As(err, &ue) || ue.Engine != "parity-only" || ue.Rule != engine.NonZero {
		t.Errorf("UnsupportedError fields = %+v", ue)
	}
	if !strings.Contains(err.Error(), "parity-only") || !strings.Contains(err.Error(), "nonzero") {
		t.Errorf("error text %q lacks engine/rule", err.Error())
	}
	// The registered engines must all pass the guard for all four rules.
	for _, e := range engine.All() {
		for _, r := range engine.Rules() {
			if err := engine.CheckRule(e, r); err != nil {
				t.Errorf("%s %s: %v", e.Name(), r, err)
			}
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	if _, ok := engine.Get("no-such-engine"); ok {
		t.Error("Get of unknown name succeeded")
	}
	for _, name := range []string{"overlay", "scanbeam", "slabs", "vatti"} {
		e, ok := engine.Get(name)
		if !ok || e.Name() != name {
			t.Errorf("Get(%q) = %v, %v", name, e, ok)
		}
		if engine.MustGet(name).Name() != name {
			t.Errorf("MustGet(%q) wrong engine", name)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGet of unknown name did not panic")
		}
	}()
	engine.MustGet("no-such-engine")
}

func TestRegistryAllSorted(t *testing.T) {
	all := engine.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name() >= all[i].Name() {
			t.Fatalf("All() not sorted: %q before %q", all[i-1].Name(), all[i].Name())
		}
	}
}

func TestSelect(t *testing.T) {
	e, ok := engine.Select(func(e engine.Engine) bool {
		return e.Capabilities().Rules.Has(engine.NonZero)
	})
	if !ok || e.Name() != "overlay" {
		t.Errorf("Select(NonZero) = %v, %v; want overlay", e, ok)
	}
	if _, ok := engine.Select(func(engine.Engine) bool { return false }); ok {
		t.Error("Select(never) succeeded")
	}
}

func TestSlabHostAndAlternate(t *testing.T) {
	if e, ok := engine.SlabHost("overlay"); !ok || e.Name() != "overlay" {
		t.Errorf("SlabHost(overlay) = %v, %v", e, ok)
	}
	// A non-hostable preference falls back to the first hostable engine.
	if e, ok := engine.SlabHost("slabs"); !ok || !e.Capabilities().SlabHostable {
		t.Errorf("SlabHost(slabs) = %v, %v", e, ok)
	}
	if e, ok := engine.SlabHost(""); !ok || !e.Capabilities().SlabHostable {
		t.Errorf("SlabHost(\"\") = %v, %v", e, ok)
	}
	alt, ok := engine.SlabAlternate("overlay")
	if !ok || alt.Name() == "overlay" || !alt.Capabilities().SlabHostable {
		t.Errorf("SlabAlternate(overlay) = %v, %v", alt, ok)
	}
	alt, ok = engine.SlabAlternate("vatti")
	if !ok || alt.Name() == "vatti" || !alt.Capabilities().SlabHostable {
		t.Errorf("SlabAlternate(vatti) = %v, %v", alt, ok)
	}
}

func TestReference(t *testing.T) {
	if ref, ok := engine.Reference("overlay", engine.EvenOdd); !ok || ref.Name() != "vatti" {
		t.Errorf("Reference(overlay, EvenOdd) = %v, %v; want vatti", ref, ok)
	}
	// The winding rules now have oracles too: auditing overlay under NonZero
	// must find the vatti reference (the differential auditor depends on it).
	if ref, ok := engine.Reference("overlay", engine.NonZero); !ok || ref.Name() != "vatti" {
		t.Errorf("Reference(overlay, NonZero) = %v, %v; want vatti", ref, ok)
	}
	// Every rule any two engines share has a working Reference pair for every
	// engine implementing it — no cell of the matrix audits blind.
	for _, e := range engine.All() {
		for _, r := range engine.Rules() {
			if !e.Capabilities().Rules.Has(r) {
				continue
			}
			ref, ok := engine.Reference(e.Name(), r)
			if !ok {
				t.Errorf("Reference(%s, %s): no oracle", e.Name(), r)
				continue
			}
			if ref.Name() == e.Name() {
				t.Errorf("Reference(%s, %s) returned itself", e.Name(), r)
			}
			if !ref.Capabilities().Rules.Has(r) {
				t.Errorf("Reference(%s, %s) = %s, which lacks the rule", e.Name(), r, ref.Name())
			}
		}
	}
}

func TestStatsMethods(t *testing.T) {
	st := engine.Stats{
		Sort: 1 * time.Millisecond, Partition: 2 * time.Millisecond,
		Merge:     3 * time.Millisecond,
		PerThread: []time.Duration{5 * time.Millisecond, 7 * time.Millisecond, 4 * time.Millisecond},
	}
	if st.CriticalPath() != 7*time.Millisecond {
		t.Errorf("CriticalPath = %v", st.CriticalPath())
	}
	if st.TotalWork() != 16*time.Millisecond {
		t.Errorf("TotalWork = %v", st.TotalWork())
	}
	// One worker: serializes all slabs.
	if got := st.ModelledParallel(1); got != (1+2+3+16)*time.Millisecond {
		t.Errorf("ModelledParallel(1) = %v", got)
	}
	// Two workers: LPT puts 7 alone, 5+4 together -> max 9.
	if got := st.ModelledParallel(2); got != (1+2+3+9)*time.Millisecond {
		t.Errorf("ModelledParallel(2) = %v", got)
	}
	if got := st.ModelledParallel(0); got != st.ModelledParallel(1) {
		t.Errorf("ModelledParallel(0) = %v, want the p=1 value", got)
	}
}

func TestResilienceMerge(t *testing.T) {
	var r engine.Resilience
	r.Merge(engine.Resilience{Repaired: true, Attempts: []string{"a:ok"}, Recovered: 1})
	r.Merge(engine.Resilience{Attempts: []string{"b:panic"}, StageTimeouts: 2, Retries: 3, InvariantFailures: 4})
	if !r.Repaired || r.Recovered != 1 || r.StageTimeouts != 2 || r.Retries != 3 || r.InvariantFailures != 4 {
		t.Errorf("merged counters wrong: %+v", r)
	}
	if len(r.Attempts) != 2 || r.Attempts[0] != "a:ok" || r.Attempts[1] != "b:panic" {
		t.Errorf("merged attempts wrong: %v", r.Attempts)
	}
}

func TestTrapezoidRingArea(t *testing.T) {
	full := engine.Trapezoid{
		L1: geom.Point{X: 0, Y: 0}, R1: geom.Point{X: 2, Y: 0},
		L2: geom.Point{X: 0, Y: 1}, R2: geom.Point{X: 2, Y: 1},
	}
	if r := full.Ring(); len(r) != 4 {
		t.Errorf("rectangle trapezoid ring has %d vertices, want 4", len(r))
	}
	if math.Abs(full.Area()-2) > 1e-12 {
		t.Errorf("rectangle trapezoid area = %g, want 2", full.Area())
	}
	tri := engine.Trapezoid{
		L1: geom.Point{X: 0, Y: 0}, R1: geom.Point{X: 2, Y: 0},
		L2: geom.Point{X: 1, Y: 1}, R2: geom.Point{X: 1, Y: 1},
	}
	if r := tri.Ring(); len(r) != 3 {
		t.Errorf("degenerate trapezoid ring has %d vertices, want 3", len(r))
	}
	if math.Abs(tri.Area()-1) > 1e-12 {
		t.Errorf("triangle area = %g, want 1", tri.Area())
	}
}

// badEngine lets the registration guards be exercised; its registrations all
// panic before mutating the registry.
type badEngine struct {
	name  string
	rules engine.RuleSet
}

func (b badEngine) Name() string { return b.name }
func (b badEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{Rules: b.rules}
}
func (badEngine) Clip(context.Context, geom.Polygon, geom.Polygon, engine.Op, engine.Options) (engine.Result, error) {
	return engine.Result{}, nil
}

func TestRegisterGuards(t *testing.T) {
	mustPanic := func(name string, e engine.Engine) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: Register did not panic", name)
			}
		}()
		engine.Register(e)
	}
	mustPanic("empty name", badEngine{name: "", rules: engine.RuleMask(engine.EvenOdd)})
	mustPanic("duplicate", badEngine{name: "overlay", rules: engine.RuleMask(engine.EvenOdd)})
	mustPanic("no rules", badEngine{name: "ruleless"})
	if n := len(engine.All()); n != 4 {
		t.Errorf("failed registrations mutated the registry: %d engines", n)
	}
}
