package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"polyclip"
)

// RequestMetrics is the flat per-request record of the serving pipeline:
// one row per request, every field scalar, so the whole window dumps to CSV
// without reflection and joins cleanly with BENCH_clipd.json. Timestamps
// are Unix nanoseconds at each lifecycle point; stage durations come from
// the accepted engine attempt's Stats.
type RequestMetrics struct {
	ID        int64  `json:"id"`
	Op        string `json:"op"`
	Algorithm string `json:"algorithm"`
	Engine    string `json:"engine,omitempty"`
	Status    int    `json:"status"`
	Degraded  bool   `json:"degraded"`
	Shed      bool   `json:"shed"`

	RecvNs    int64 `json:"recvNs"`    // request decoded
	EnqueueNs int64 `json:"enqueueNs"` // admitted to the batch queue (0 when shed)
	FlushNs   int64 `json:"flushNs"`   // picked up by a batch flush (0 when shed/degraded-inline)
	DoneNs    int64 `json:"doneNs"`    // response written

	ArrangeNs int64 `json:"arrangeNs"` // engine sort+partition (arrangement) time
	SweepNs   int64 `json:"sweepNs"`   // engine per-slab clip (sweep) time
	StitchNs  int64 `json:"stitchNs"`  // engine merge (stitch) time

	ServeRetries  int    `json:"serveRetries"` // jittered-backoff retries taken by the serve layer
	Recovered     int    `json:"recovered"`
	StageTimeouts int    `json:"stageTimeouts"`
	ChainRetries  int    `json:"chainRetries"`
	AuditFailures int    `json:"auditFailures"`
	FallbackSteps int    `json:"fallbackSteps"`
	Attempts      string `json:"attempts,omitempty"` // semicolon-joined "name:outcome" trail
}

// absorbStats folds one accepted (or final failed) attempt's Stats into the
// record.
func (m *RequestMetrics) absorbStats(st *polyclip.Stats) {
	if st == nil {
		return
	}
	m.Engine = st.Engine
	m.ArrangeNs = int64(st.Sort + st.Partition)
	m.SweepNs = int64(st.Clip)
	m.StitchNs = int64(st.Merge)
	m.Recovered += st.Resilience.Recovered
	m.StageTimeouts += st.Resilience.StageTimeouts
	m.ChainRetries += st.Resilience.Retries
	m.AuditFailures += st.Resilience.InvariantFailures
	if n := len(st.Resilience.Attempts) - 1; n > 0 {
		m.FallbackSteps += n
	}
	if len(st.Resilience.Attempts) > 0 {
		m.Attempts = strings.Join(st.Resilience.Attempts, ";")
	}
}

// LatencyNs returns the end-to-end latency, 0 until the request is done.
func (m *RequestMetrics) LatencyNs() int64 {
	if m.DoneNs == 0 {
		return 0
	}
	return m.DoneNs - m.RecvNs
}

// csvHeader is the stable column order of the CSV export.
var csvHeader = []string{
	"id", "op", "algorithm", "engine", "status", "degraded", "shed",
	"recvNs", "enqueueNs", "flushNs", "doneNs", "latencyNs",
	"arrangeNs", "sweepNs", "stitchNs",
	"serveRetries", "recovered", "stageTimeouts", "chainRetries",
	"auditFailures", "fallbackSteps", "attempts",
}

// csvRow renders the record in csvHeader order.
func (m *RequestMetrics) csvRow() []string {
	return []string{
		strconv.FormatInt(m.ID, 10), m.Op, m.Algorithm, m.Engine,
		strconv.Itoa(m.Status), strconv.FormatBool(m.Degraded), strconv.FormatBool(m.Shed),
		strconv.FormatInt(m.RecvNs, 10), strconv.FormatInt(m.EnqueueNs, 10),
		strconv.FormatInt(m.FlushNs, 10), strconv.FormatInt(m.DoneNs, 10),
		strconv.FormatInt(m.LatencyNs(), 10),
		strconv.FormatInt(m.ArrangeNs, 10), strconv.FormatInt(m.SweepNs, 10),
		strconv.FormatInt(m.StitchNs, 10),
		strconv.Itoa(m.ServeRetries), strconv.Itoa(m.Recovered),
		strconv.Itoa(m.StageTimeouts), strconv.Itoa(m.ChainRetries),
		strconv.Itoa(m.AuditFailures), strconv.Itoa(m.FallbackSteps),
		m.Attempts,
	}
}

// metricsRing retains the last Window completed request records.
type metricsRing struct {
	mu     sync.Mutex
	buf    []RequestMetrics
	next   int
	filled bool
}

func newMetricsRing(window int) *metricsRing {
	if window <= 0 {
		window = 4096
	}
	return &metricsRing{buf: make([]RequestMetrics, window)}
}

// Add records one finished request.
func (r *metricsRing) Add(m RequestMetrics) {
	r.mu.Lock()
	r.buf[r.next] = m
	r.next++
	if r.next == len(r.buf) {
		r.next, r.filled = 0, true
	}
	r.mu.Unlock()
}

// Records returns the retained window, oldest first.
func (r *metricsRing) Records() []RequestMetrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []RequestMetrics
	if r.filled {
		out = append(out, r.buf[r.next:]...)
	}
	out = append(out, r.buf[:r.next]...)
	return out
}

// WriteCSV dumps the retained window as CSV, oldest first.
func (r *metricsRing) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, strings.Join(csvHeader, ",")+"\n"); err != nil {
		return err
	}
	for _, m := range r.Records() {
		if _, err := io.WriteString(w, strings.Join(m.csvRow(), ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// Percentiles returns the p50/p99 end-to-end latency over the retained
// window's answered (non-shed) requests; zeros when the window is empty.
func (r *metricsRing) Percentiles() (p50, p99 time.Duration) {
	var lat []int64
	for _, m := range r.Records() {
		if !m.Shed && m.DoneNs > 0 {
			lat = append(lat, m.LatencyNs())
		}
	}
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	idx := func(q float64) int64 {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}
	return time.Duration(idx(0.50)), time.Duration(idx(0.99))
}

// Statz is the aggregate snapshot served by /statz.
type Statz struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Mode          string  `json:"mode"` // "normal" | "degraded"

	Served         int64 `json:"served"` // requests fully answered (any status)
	OK             int64 `json:"ok"`
	ClientErrors   int64 `json:"clientErrors"`
	ServerErrors   int64 `json:"serverErrors"`
	Shed           int64 `json:"shed"`           // 503 + Retry-After answers
	DegradedServed int64 `json:"degradedServed"` // overflow served by the degraded chain

	QueueLen int   `json:"queueLen"`
	QueueCap int   `json:"queueCap"`
	Inflight int64 `json:"inflight"`

	BatchFlushes    int64   `json:"batchFlushes"`
	BatchedRequests int64   `json:"batchedRequests"`
	MeanBatchSize   float64 `json:"meanBatchSize"`

	P50Ms float64 `json:"p50Ms"`
	P99Ms float64 `json:"p99Ms"`

	ServeRetries  int64 `json:"serveRetries"`
	Recovered     int64 `json:"recovered"`
	StageTimeouts int64 `json:"stageTimeouts"`
	AuditFailures int64 `json:"auditFailures"`
	FallbackSteps int64 `json:"fallbackSteps"`

	// Arrangement-cache counters (the process-wide shared cache the batch
	// overlay uses; lifetime totals, not per-window).
	CacheHits    uint64  `json:"cacheHits"`
	CacheMisses  uint64  `json:"cacheMisses"`
	CacheBytes   int64   `json:"cacheBytes"`
	CacheEntries int     `json:"cacheEntries"`
	CacheHitRate float64 `json:"cacheHitRate"`
}

// String renders the snapshot as one log-friendly line.
func (s Statz) String() string {
	return fmt.Sprintf("mode=%s served=%d ok=%d shed=%d degraded=%d p50=%.2fms p99=%.2fms queue=%d/%d",
		s.Mode, s.Served, s.OK, s.Shed, s.DegradedServed, s.P50Ms, s.P99Ms, s.QueueLen, s.QueueCap)
}
