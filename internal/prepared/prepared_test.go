package prepared

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/vatti"
)

// layerSquareWithHole is the reference layer of the table tests: a 10x10
// square with a centered 2x2 hole, plus a detached triangle to the right.
func layerSquareWithHole() geom.Polygon {
	return geom.Polygon{
		geom.Rect(0, 0, 10, 10),
		geom.Rect(4, 4, 6, 6), // hole by even-odd parity
		{{X: 20, Y: 0}, {X: 24, Y: 0}, {X: 22, Y: 4}},
	}
}

func TestClassifyRectTable(t *testing.T) {
	pp := Prepare(layerSquareWithHole(), engine.EvenOdd)
	cases := []struct {
		name string
		box  geom.BBox
		want Class
	}{
		{"fully inside outer", geom.BBox{MinX: 1, MinY: 1, MaxX: 3, MaxY: 3}, Inside},
		{"fully inside hole", geom.BBox{MinX: 4.5, MinY: 4.5, MaxX: 5.5, MaxY: 5.5}, Outside},
		{"far outside", geom.BBox{MinX: 50, MinY: 50, MaxX: 60, MaxY: 60}, Outside},
		{"outside but within layer bbox", geom.BBox{MinX: 12, MinY: 6, MaxX: 14, MaxY: 8}, Outside},
		{"straddling outer edge", geom.BBox{MinX: -1, MinY: 4, MaxX: 1, MaxY: 5}, Straddle},
		{"straddling hole edge", geom.BBox{MinX: 3, MinY: 4.5, MaxX: 5, MaxY: 5.5}, Straddle},
		{"covering whole layer", geom.BBox{MinX: -5, MinY: -5, MaxX: 30, MaxY: 15}, Straddle},
		{"inside triangle", geom.BBox{MinX: 21.6, MinY: 0.5, MaxX: 22.4, MaxY: 1}, Inside},
		// Degenerate contacts: the classifier must call these Straddle — a
		// boundary touch reaches the exact clip, which then decides.
		{"tile edge collinear with ring edge", geom.BBox{MinX: 0, MinY: 2, MaxX: 2, MaxY: 4}, Straddle},
		{"tile edge collinear, outside", geom.BBox{MinX: -2, MinY: 2, MaxX: 0, MaxY: 4}, Straddle},
		{"tile corner on ring corner", geom.BBox{MinX: 10, MinY: 10, MaxX: 12, MaxY: 12}, Straddle},
		{"tile corner on triangle apex", geom.BBox{MinX: 22, MinY: 4, MaxX: 23, MaxY: 5}, Straddle},
		{"tile identical to outer ring", geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, Straddle},
		{"degenerate empty box", geom.BBox{MinX: 3, MinY: 3, MaxX: 2, MaxY: 2}, Outside},
	}
	for _, tc := range cases {
		if got := pp.ClassifyRect(tc.box); got != tc.want {
			t.Errorf("%s: classified %v, want %v", tc.name, got, tc.want)
		}
	}
}

// xorArea measures the symmetric difference of two polygons — the robust
// "same region" check the differential tests use.
func xorArea(a, b geom.Polygon) float64 {
	return vatti.ClipRule(a, b, engine.Xor, engine.EvenOdd).Area()
}

// checkAgainstNaive clips the window three ways — fast path, prepared sweep,
// naive full sweep — and requires all three to cover the same region.
func checkAgainstNaive(t *testing.T, name string, src geom.Polygon, pp *Prepared, box geom.BBox, rule engine.FillRule) {
	t.Helper()
	got, _ := pp.ClipRect(box)
	want := NaiveClipRect(src, box, rule)
	scale := (box.Width() + box.Height()) * (box.Width() + box.Height())
	if scale == 0 {
		scale = 1
	}
	tol := 1e-9 * scale
	if d := xorArea(got, want); d > tol {
		t.Errorf("%s: ClipRect differs from naive by area %g (tol %g)\n got: %v\nwant: %v", name, d, tol, got, want)
	}
	sweep := pp.SweepRect(box)
	if d := xorArea(sweep, want); d > tol {
		t.Errorf("%s: SweepRect differs from naive by area %g (tol %g)", name, d, tol)
	}
}

func TestClipRectTableAllRules(t *testing.T) {
	src := layerSquareWithHole()
	boxes := []struct {
		name string
		box  geom.BBox
	}{
		{"inside", geom.BBox{MinX: 1, MinY: 1, MaxX: 3, MaxY: 3}},
		{"in hole", geom.BBox{MinX: 4.5, MinY: 4.5, MaxX: 5.5, MaxY: 5.5}},
		{"outside", geom.BBox{MinX: 40, MinY: 40, MaxX: 50, MaxY: 50}},
		{"straddle outer", geom.BBox{MinX: -1, MinY: -1, MaxX: 5, MaxY: 5}},
		{"straddle hole", geom.BBox{MinX: 3, MinY: 3, MaxX: 7, MaxY: 7}},
		{"hole inside tile", geom.BBox{MinX: 3.5, MinY: 3.5, MaxX: 6.5, MaxY: 6.5}},
		{"covers everything", geom.BBox{MinX: -5, MinY: -5, MaxX: 30, MaxY: 15}},
		{"edge collinear", geom.BBox{MinX: 0, MinY: 2, MaxX: 2, MaxY: 4}},
		{"corner on vertex", geom.BBox{MinX: 10, MinY: 10, MaxX: 12, MaxY: 12}},
		{"identical to outer", geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}},
		{"sliver along edge", geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 1e-9}},
	}
	for _, rule := range engine.Rules() {
		pp := Prepare(src, rule)
		for _, bc := range boxes {
			checkAgainstNaive(t, fmt.Sprintf("%s/%s", rule, bc.name), src, pp, bc.box, rule)
		}
	}
}

// TestClipRectWindingLayers pins rule canonicalization: layers whose region
// depends on the fill rule (overlapping rings, reversed rings, a bowtie)
// must clip identically to the naive per-rule sweep.
func TestClipRectWindingLayers(t *testing.T) {
	overlapping := geom.Polygon{geom.Rect(0, 0, 6, 6), geom.Rect(4, 4, 10, 10)}
	reversed := geom.Polygon{geom.Rect(0, 0, 6, 6)}
	reversed[0].Reverse() // CW: Positive says empty, Negative says full
	bowtie := geom.Polygon{geom.BowTie(0, 0, 8, 8)}
	star := geom.Polygon{geom.SelfIntersectingStar(geom.Point{X: 5, Y: 5}, 5, 5, 0)}
	layers := []struct {
		name string
		poly geom.Polygon
	}{
		{"overlapping", overlapping},
		{"reversed", reversed},
		{"bowtie", bowtie},
		{"pentagram", star},
	}
	boxes := []geom.BBox{
		{MinX: 1, MinY: 1, MaxX: 3, MaxY: 3},
		{MinX: 3, MinY: 3, MaxX: 7, MaxY: 7},
		{MinX: -2, MinY: -2, MaxX: 12, MaxY: 12},
		{MinX: 4.5, MinY: 4.5, MaxX: 5.5, MaxY: 5.5},
		{MinX: 5, MinY: 0, MaxX: 9, MaxY: 4},
	}
	for _, lc := range layers {
		for _, rule := range engine.Rules() {
			pp := Prepare(lc.poly, rule)
			for bi, box := range boxes {
				checkAgainstNaive(t, fmt.Sprintf("%s/%s/box%d", lc.name, rule, bi), lc.poly, pp, box, rule)
			}
		}
	}
}

// randomLayer synthesizes a messy multi-ring layer: grid-placed jittered
// polygons, some with holes, one star, one self-intersecting bowtie.
func randomLayer(rng *rand.Rand, cells int) geom.Polygon {
	var p geom.Polygon
	for gy := 0; gy < cells; gy++ {
		for gx := 0; gx < cells; gx++ {
			cx := float64(gx)*10 + 5
			cy := float64(gy)*10 + 5
			r := 2 + rng.Float64()*2.5
			n := 3 + rng.Intn(7)
			p = append(p, geom.RegularPolygon(geom.Point{X: cx, Y: cy}, r, n, rng.Float64()))
			if rng.Float64() < 0.3 {
				p = append(p, geom.RegularPolygon(geom.Point{X: cx, Y: cy}, r*0.4, n, rng.Float64()))
			}
		}
	}
	p = append(p, geom.Star(geom.Point{X: 5, Y: 5}, 4, 1.5, 7, 0.3))
	p = append(p, geom.BowTie(1, 1, 9, 9))
	return p
}

func TestClipRectRandomDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	src := randomLayer(rng, 3)
	span := 30.0
	for _, rule := range engine.Rules() {
		pp := Prepare(src, rule)
		nBoxes := 24
		if testing.Short() {
			nBoxes = 8
		}
		for i := 0; i < nBoxes; i++ {
			x := rng.Float64()*span - 2
			y := rng.Float64()*span - 2
			w := rng.Float64() * 12
			h := rng.Float64() * 12
			box := geom.BBox{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
			if i%4 == 0 {
				// Grid-aligned windows provoke collinear contacts.
				box = geom.BBox{MinX: math.Floor(x), MinY: math.Floor(y), MaxX: math.Floor(x) + math.Ceil(w), MaxY: math.Floor(y) + math.Ceil(h)}
			}
			checkAgainstNaive(t, fmt.Sprintf("%s/rand%d", rule, i), src, pp, box, rule)
		}
	}
}

// TestPreparedCanonicalRegion pins that preparation preserves the region:
// the canonical even-odd form covers the same point set as the rule-R
// reading of the source.
func TestPreparedCanonicalRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	src := randomLayer(rng, 2)
	for _, rule := range engine.Rules() {
		pp := Prepare(src, rule)
		want := vatti.ClipRule(src, nil, engine.Union, rule)
		if d := xorArea(pp.Polygon(), want); d > 1e-6 {
			t.Errorf("%s: canonical form differs from rule region by area %g", rule, d)
		}
	}
}

// TestClipRectConcurrent pins that one Prepared serves concurrent windows
// with results bit-identical to the serial run (the tile driver shares one
// Prepared across its worker pool).
func TestClipRectConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	src := randomLayer(rng, 3)
	pp := Prepare(src, engine.NonZero)
	var boxes []geom.BBox
	for i := 0; i < 64; i++ {
		x := rng.Float64() * 28
		y := rng.Float64() * 28
		boxes = append(boxes, geom.BBox{MinX: x, MinY: y, MaxX: x + 4, MaxY: y + 4})
	}
	serial := make([]geom.Polygon, len(boxes))
	for i, b := range boxes {
		serial[i], _ = pp.ClipRect(b)
	}
	for round := 0; round < 4; round++ {
		parallel := make([]geom.Polygon, len(boxes))
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(boxes); i += 8 {
					parallel[i], _ = pp.ClipRect(boxes[i])
				}
			}(w)
		}
		wg.Wait()
		for i := range boxes {
			if fmt.Sprint(serial[i]) != fmt.Sprint(parallel[i]) {
				t.Fatalf("round %d window %d: concurrent result differs from serial", round, i)
			}
		}
	}
}

// TestStatsCounters pins the route accounting the benchmark artifact
// reports.
func TestStatsCounters(t *testing.T) {
	pp := Prepare(layerSquareWithHole(), engine.EvenOdd)
	if _, cls := pp.ClipRect(geom.BBox{MinX: 1, MinY: 1, MaxX: 3, MaxY: 3}); cls != Inside {
		t.Fatalf("inside window classified %v", cls)
	}
	if _, cls := pp.ClipRect(geom.BBox{MinX: 50, MinY: 50, MaxX: 60, MaxY: 60}); cls != Outside {
		t.Fatalf("outside window classified %v", cls)
	}
	if _, cls := pp.ClipRect(geom.BBox{MinX: 21, MinY: 1, MaxX: 25, MaxY: 2}); cls != Straddle {
		t.Fatalf("triangle straddle classified %v", cls)
	}
	st := pp.Stats()
	if st.FastInside != 1 || st.FastOutside != 1 || st.Sweeps() != 1 {
		t.Errorf("stats = %+v, want 1 inside / 1 outside / 1 sweep", st)
	}
	if st.ConvexClips != 1 {
		t.Errorf("triangle straddle should take the convex route, stats = %+v", st)
	}
	if pp.NumEdges() == 0 || pp.SnapEps() <= 0 || pp.Rule() != engine.EvenOdd {
		t.Errorf("accessor sanity: edges=%d eps=%g rule=%v", pp.NumEdges(), pp.SnapEps(), pp.Rule())
	}
}

// TestEmptyAndDegenerateLayers: preparation of nothing classifies everything
// Outside and clips to nothing.
func TestEmptyAndDegenerateLayers(t *testing.T) {
	for _, src := range []geom.Polygon{nil, {}, {geom.Ring{{X: 0, Y: 0}, {X: 1, Y: 1}}}} {
		pp := Prepare(src, engine.EvenOdd)
		box := geom.BBox{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}
		if cls := pp.ClassifyRect(box); cls != Outside {
			t.Errorf("empty layer classified %v", cls)
		}
		if out, _ := pp.ClipRect(box); len(out) != 0 {
			t.Errorf("empty layer clipped to %v", out)
		}
	}
	// Negative rule on a CCW-only layer: empty canonical region.
	pp := Prepare(geom.Polygon{geom.Rect(0, 0, 4, 4)}, engine.Negative)
	if cls := pp.ClassifyRect(geom.BBox{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}); cls != Outside {
		t.Errorf("negative-empty layer classified %v", cls)
	}
}
