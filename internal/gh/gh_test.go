package gh

import (
	"math"
	"math/rand"
	"testing"

	"polyclip/internal/geom"
	"polyclip/internal/overlay"
)

func area(p geom.Polygon) float64 {
	var s float64
	for _, r := range p {
		s += math.Abs(r.SignedArea())
	}
	return s
}

func TestRectRectIntersection(t *testing.T) {
	// Offset slightly so crossings are proper (GH's contract excludes
	// vertex-on-edge degeneracies).
	a := geom.Rect(0, 0, 4, 4)
	b := geom.Rect(2.1, 2.1, 6.1, 6.1)
	got := Clip(a, b, Intersection)
	want := 1.9 * 1.9
	if g := area(got); math.Abs(g-want) > 1e-9 {
		t.Errorf("area = %v, want %v", g, want)
	}
}

func TestRectRectUnionAndDifference(t *testing.T) {
	a := geom.Rect(0, 0, 4, 4)
	b := geom.Rect(2.1, 2.1, 6.1, 6.1)
	inter := 1.9 * 1.9
	if g := area(Clip(a, b, Union)); math.Abs(g-(32-inter)) > 1e-9 {
		t.Errorf("union area = %v, want %v", g, 32-inter)
	}
	if g := area(Clip(a, b, Difference)); math.Abs(g-(16-inter)) > 1e-9 {
		t.Errorf("difference area = %v, want %v", g, 16-inter)
	}
}

func TestContainment(t *testing.T) {
	outer := geom.Rect(0, 0, 10, 10)
	inner := geom.Rect(3, 3, 7, 7)
	if g := area(Clip(outer, inner, Intersection)); math.Abs(g-16) > 1e-9 {
		t.Errorf("contained ∩ = %v", g)
	}
	if g := area(Clip(outer, inner, Union)); math.Abs(g-100) > 1e-9 {
		t.Errorf("contained ∪ = %v", g)
	}
	got := Clip(outer, inner, Difference)
	var net float64
	for _, r := range got {
		net += r.SignedArea()
	}
	if math.Abs(net-84) > 1e-9 {
		t.Errorf("contained − net area = %v, want 84 (hole)", net)
	}
	// Subject inside clip.
	if got := Clip(inner, outer, Difference); got != nil {
		t.Errorf("inner−outer = %v", got)
	}
	if g := area(Clip(inner, outer, Intersection)); math.Abs(g-16) > 1e-9 {
		t.Error("inner∩outer should be inner")
	}
}

func TestDisjoint(t *testing.T) {
	a := geom.Rect(0, 0, 1, 1)
	b := geom.Rect(5, 5, 6, 6)
	if got := Clip(a, b, Intersection); got != nil {
		t.Errorf("disjoint ∩ = %v", got)
	}
	if g := area(Clip(a, b, Union)); math.Abs(g-2) > 1e-12 {
		t.Error("disjoint ∪")
	}
	if g := area(Clip(a, b, Difference)); math.Abs(g-1) > 1e-12 {
		t.Error("disjoint −")
	}
}

func TestDegenerateInputs(t *testing.T) {
	a := geom.Rect(0, 0, 1, 1)
	if got := Clip(a, nil, Intersection); got != nil {
		t.Errorf("a∩∅ = %v", got)
	}
	if g := area(Clip(a, nil, Union)); g != 1 {
		t.Errorf("a∪∅ area = %v", g)
	}
	if g := area(Clip(nil, a, Union)); g != 1 {
		t.Errorf("∅∪a area = %v", g)
	}
	if got := Clip(nil, a, Difference); got != nil {
		t.Errorf("∅−a = %v", got)
	}
}

func TestRectangleClipUseCase(t *testing.T) {
	// The paper's Algorithm 2 use: clip arbitrary simple polygons against a
	// slab rectangle. Cross-validate against the overlay engine.
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 20; trial++ {
		poly := geom.RegularPolygon(
			geom.Point{X: rng.Float64()*4 - 2, Y: rng.Float64()*4 - 2},
			1.5+rng.Float64()*2, 5+rng.Intn(9), rng.Float64())
		rect := geom.Rect(-1.83, -0.97, 1.79, 1.03)
		got := Clip(poly, rect, Intersection)
		want := overlay.Clip(geom.Polygon{poly}, geom.Polygon{rect}, overlay.Intersection, overlay.Options{})
		if math.Abs(area(got)-want.Area()) > 1e-6*(1+want.Area()) {
			t.Errorf("trial %d: gh=%v overlay=%v", trial, area(got), want.Area())
		}
	}
}

func TestConcaveAgainstOverlay(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 15; trial++ {
		a := geom.Star(geom.Point{X: rng.Float64(), Y: rng.Float64()}, 3, 1.2, 5+rng.Intn(5), rng.Float64())
		b := geom.Star(geom.Point{X: 0.7 + rng.Float64(), Y: rng.Float64() - 0.3}, 3, 1.2, 5+rng.Intn(5), rng.Float64())
		for _, op := range []Op{Intersection, Union, Difference} {
			got := Clip(a, b, op)
			var oop overlay.Op
			switch op {
			case Intersection:
				oop = overlay.Intersection
			case Union:
				oop = overlay.Union
			default:
				oop = overlay.Difference
			}
			want := overlay.Clip(geom.Polygon{a}, geom.Polygon{b}, oop, overlay.Options{})
			// Compare net signed area (GH emits holes CW in difference).
			var gnet float64
			for _, r := range got {
				gnet += math.Abs(r.SignedArea())
			}
			// Union holes: compare |sum| instead for robustness.
			if math.Abs(gnet-want.Area()) > 1e-6*(1+want.Area()) {
				t.Errorf("trial %d %d: gh=%v overlay=%v", trial, op, gnet, want.Area())
			}
		}
	}
}
