package vatti

import (
	"context"

	"polyclip/internal/engine"
	"polyclip/internal/geom"
)

// clipEngine adapts the sequential scanbeam sweep to the engine registry:
// the differential reference, and the only engine exposing trapezoid output.
type clipEngine struct{}

func (clipEngine) Name() string { return "vatti" }

func (clipEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{
		Rules:        engine.AllRules(),
		Trapezoids:   true,
		SlabHostable: true,
	}
}

func (e clipEngine) Clip(ctx context.Context, a, b geom.Polygon, op engine.Op, opt engine.Options) (engine.Result, error) {
	if err := engine.CheckRule(e, opt.Rule); err != nil {
		return engine.Result{}, err
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return engine.Result{}, err
		}
	}
	switch {
	case opt.PreResolved:
		return engine.Result{Polygon: ClipRuleResolved(a, b, op, opt.Rule)}, nil
	case opt.Prepared:
		return engine.Result{Polygon: ClipRulePrepared(a, b, op, opt.Rule)}, nil
	}
	return engine.Result{Polygon: ClipRule(a, b, op, opt.Rule)}, nil
}

func (clipEngine) Trapezoids(a, b geom.Polygon, op engine.Op) []engine.Trapezoid {
	return Trapezoids(a, b, op)
}

func init() { engine.Register(clipEngine{}) }
