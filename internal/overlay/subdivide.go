package overlay

import (
	"context"
	"math"
	"slices"
	"sync"

	"polyclip/internal/geom"
	"polyclip/internal/isect"
	"polyclip/internal/par"
)

// useg is a unique geometric sub-segment of the subdivided arrangement,
// with its multiplicity per input polygon. Its endpoints are snapped, Lo is
// the endpoint with smaller (Y, X), and after subdivision no two usegs
// intersect except at shared endpoints.
type useg struct {
	Lo, Hi geom.Point
	// WindSub/WindClip are the signed winding contributions of the
	// subject/clip copies of this segment: each original piece directed
	// Hi->Lo (downward, or -x for horizontals) adds +1, each directed
	// Lo->Hi adds -1, so that walking left-to-right (or top-to-bottom
	// across a horizontal) the region winding number changes by this
	// amount. Parity of the winding equals parity of the copy count, so
	// the even-odd rule needs no separate field.
	WindSub  int16
	WindClip int16
	// WindSubL/WindClipL are the winding numbers of the region on the
	// segment's left side (smaller x; above, for horizontals).
	WindSubL  int16
	WindClipL int16
	classify  bool // set once classified
}

// mulSub reports the even-odd parity of the subject copies.
func (u *useg) mulSub() bool { return u.WindSub&1 != 0 }

func (u *useg) mulClip() bool { return u.WindClip&1 != 0 }

// segKey identifies a useg by its snapped endpoints.
type segKey struct {
	ax, ay, bx, by int64
}

// snapper canonicalizes coordinates onto an eps grid so that vertices
// produced independently by different edges compare equal.
type snapper struct {
	inv float64
	eps float64
}

func newSnapper(eps float64) snapper { return snapper{inv: 1 / eps, eps: eps} }

func (s snapper) coord(v float64) int64 { return int64(math.Round(v * s.inv)) }

func (s snapper) point(p geom.Point) geom.Point {
	return geom.Point{
		X: float64(s.coord(p.X)) * s.eps,
		Y: float64(s.coord(p.Y)) * s.eps,
	}
}

// snapPolygon canonicalizes every vertex onto the eps grid, dropping rings
// that degenerate below three distinct vertices. It is geom.SnapPolygon —
// one shared quantization policy, so geometry pre-snapped by callers (the
// slab decomposition snaps the pair before cutting it) arrives here
// bit-identical.
func snapPolygon(p geom.Polygon, eps float64) geom.Polygon {
	return geom.SnapPolygon(p, eps)
}

// weldNearVertex pulls an intersection point onto a nearby endpoint of
// either parent edge. Snap rounding demands it: a crossing that lands
// within a cell or two of an existing vertex (a near-tangency, e.g. one
// polygon's apex grazing the other's edge) otherwise rounds to a grid
// point *adjacent* to that vertex, leaving the vertex in the interior of a
// sub-segment with no node there. The left-side flags of such a segment
// are not constant along it, classification is poisoned for every beam
// past the vertex, and stitching drops the unclosable chains. Welding onto
// the endpoint turns the near-tangency into an exact T-vertex instead.
func weldNearVertex(q geom.Point, e1, e2 geom.Segment, eps float64) geom.Point {
	lim := 2 * eps
	best, bestD := q, lim*lim
	for _, v := range [4]geom.Point{e1.A, e1.B, e2.A, e2.B} {
		dx, dy := q.X-v.X, q.Y-v.Y
		if d := dx*dx + dy*dy; d < bestD {
			best, bestD = v, d
		}
	}
	return best
}

// subdivide splits every edge at its intersection points with other edges
// and merges geometric duplicates, returning the unique sub-segments with
// multiplicities. The split-point computation is parallel over pairs; the
// merge is a sequential hash fold (cheap relative to intersection finding).
// Cancellation is polled periodically; on a cancelled ctx the returned
// arrangement is partial and the caller must discard it.
func subdivide(ctx context.Context, edges []geom.Segment, owners []uint8, pairs []isect.Pair, eps float64, p int) []*useg {
	sn := newSnapper(eps)

	// Intersection points per edge, computed in parallel over pairs into
	// per-worker buckets then folded.
	type split struct {
		edge int32
		pt   geom.Point
	}
	nw := p
	if nw < 1 {
		nw = 1
	}
	buckets := make([][]split, nw)
	var next int
	var mu sync.Mutex
	par.ForEach(len(pairs), p, func(lo, hi int) {
		mu.Lock()
		slot := next
		next++
		mu.Unlock()
		local := buckets[slot]
		for idx := lo; idx < hi; idx++ {
			if (idx-lo)&255 == 0 && canceled(ctx) {
				break
			}
			pr := pairs[idx]
			kind, p0, p1 := geom.SegIntersection(edges[pr.I], edges[pr.J])
			switch kind {
			case geom.Crossing:
				p0 = weldNearVertex(p0, edges[pr.I], edges[pr.J], eps)
				local = append(local, split{pr.I, p0}, split{pr.J, p0})
			case geom.Overlapping:
				p0 = weldNearVertex(p0, edges[pr.I], edges[pr.J], eps)
				p1 = weldNearVertex(p1, edges[pr.I], edges[pr.J], eps)
				local = append(local,
					split{pr.I, p0}, split{pr.I, p1},
					split{pr.J, p0}, split{pr.J, p1})
			}
		}
		buckets[slot] = local
	})

	// Edge indices are dense, so the split points live in a flat slice
	// rather than a map.
	splitsPerEdge := make([][]geom.Point, len(edges))
	for _, b := range buckets {
		for _, s := range b {
			splitsPerEdge[s.edge] = append(splitsPerEdge[s.edge], s.pt)
		}
	}

	// Subdivide each edge and fold into the unique-segment table. The usegs
	// are slab-allocated in blocks: the table holds one pointer per unique
	// sub-segment and a per-entry heap object would dominate the fold's
	// allocation count. Blocks are never reallocated, so the handed-out
	// pointers stay valid.
	table := make(map[segKey]*useg, len(edges)*2)
	var slab []useg
	newUseg := func(a, b geom.Point) *useg {
		if len(slab) == cap(slab) {
			slab = make([]useg, 0, 256)
		}
		slab = append(slab, useg{Lo: a, Hi: b})
		return &slab[len(slab)-1]
	}
	addPiece := func(a, b geom.Point, owner uint8) {
		a, b = sn.point(a), sn.point(b)
		if a == b {
			return
		}
		var dir int16 = -1 // original piece directed Lo->Hi
		if b.Less(a) {
			a, b = b, a
			dir = +1 // original piece directed Hi->Lo
		}
		key := segKey{sn.coord(a.X), sn.coord(a.Y), sn.coord(b.X), sn.coord(b.Y)}
		u := table[key]
		if u == nil {
			u = newUseg(a, b)
			table[key] = u
		}
		if owner == 0 {
			u.WindSub += dir
		} else {
			u.WindClip += dir
		}
	}

	for i, e := range edges {
		if i&1023 == 0 && canceled(ctx) {
			break
		}
		pts := splitsPerEdge[i]
		if len(pts) == 0 {
			addPiece(e.A, e.B, owners[i])
			continue
		}
		// Order split points along the edge by parameter t.
		d := e.B.Sub(e.A)
		l2 := d.Dot(d)
		tOf := func(q geom.Point) float64 {
			if l2 == 0 {
				return 0
			}
			return q.Sub(e.A).Dot(d) / l2
		}
		slices.SortFunc(pts, func(a, b geom.Point) int {
			ta, tb := tOf(a), tOf(b)
			switch {
			case ta < tb:
				return -1
			case ta > tb:
				return 1
			default:
				return 0
			}
		})
		prev := e.A
		for _, q := range pts {
			t := tOf(q)
			if t <= 0 || t >= 1 {
				continue
			}
			addPiece(prev, q, owners[i])
			prev = q
		}
		addPiece(prev, e.B, owners[i])
	}

	segs := make([]*useg, 0, len(table))
	for _, u := range table {
		if u.WindSub == 0 && u.WindClip == 0 {
			// Opposite-direction copies cancel under both fill rules. A
			// segment with even copy count but nonzero winding (e.g. two
			// same-direction copies) is kept: it matters under NonZero.
			continue
		}
		segs = append(segs, u)
	}
	// Deterministic order for reproducible stitching.
	slices.SortFunc(segs, func(a, b *useg) int {
		if a.Lo != b.Lo {
			if a.Lo.Less(b.Lo) {
				return -1
			}
			return 1
		}
		switch {
		case a.Hi.Less(b.Hi):
			return -1
		case b.Hi.Less(a.Hi):
			return 1
		default:
			return 0
		}
	})
	return segs
}
