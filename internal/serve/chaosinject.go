package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"polyclip"
	"polyclip/internal/guard"
)

// faultCyclePlans is the deterministic fault schedule FaultCycle arms:
// panics at every serve-path site, panics and a hang in the engine
// underneath, and a result corruption to exercise the audit. The chaos
// smoke test and the clipd -chaos benchmark mode share this table.
var faultCyclePlans = []struct {
	site string
	kind string // "panic" | "hang" | "corrupt"
}{
	{"serve.enqueue", "panic"},
	{"serve.flush", "panic"},
	{"serve.encode", "panic"},
	{"overlay.clip", "panic"},
	{"par.worker", "panic"},
	{"par.worker", "hang"},
	{"polyclip.result", "corrupt"},
}

// armCycleFault registers cycle i's one-shot fault from faultCyclePlans.
func armCycleFault(i int) {
	plan := faultCyclePlans[i%len(faultCyclePlans)]
	switch plan.kind {
	case "panic":
		guard.InjectFault(plan.site, guard.Once(func() {
			panic(fmt.Sprintf("chaos: injected panic at %s (cycle %d)", plan.site, i))
		}))
	case "hang":
		guard.InjectFault(plan.site, guard.Once(func() { time.Sleep(250 * time.Millisecond) }))
	case "corrupt":
		var fired atomic.Bool
		guard.InjectFault(plan.site, func(p polyclip.Polygon) polyclip.Polygon {
			if !fired.CompareAndSwap(false, true) {
				return p
			}
			return polyclip.Polygon{{{X: 1e6, Y: 1e6}, {X: 2e6, Y: 1e6}, {X: 2e6, Y: 2e6}, {X: 1e6, Y: 2e6}}}
		})
	}
}

// FaultCycle starts arming a fresh one-shot fault every interval, cycling
// deterministically through the serve and engine guard sites. It exists for
// chaos testing and the clipd -chaos benchmark mode — never enable it in a
// real deployment. The returned stop function halts the cycle and clears
// any armed fault.
func FaultCycle(interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			case <-tick.C:
				armCycleFault(i)
			}
		}
	}()
	return func() {
		close(done)
		guard.ClearFaults()
	}
}
