package polyclip

import (
	"context"
	"testing"
)

// TestDeterminismAcrossThreadCounts pins the scheduler-independence
// contract the work-stealing pool must preserve: for a fixed slab
// decomposition, the clip output is a pure function of the input — the same
// rings, the same vertices, in the same order — no matter how many workers
// ran the slabs or which worker stole which task. Every parallel stage
// writes into index-addressed slots and every merge walks slab order, so
// nothing downstream of the scheduler may observe completion order; a
// result that varies with Threads means a stage leaked scheduling order
// into its output.
//
// Slabs is pinned (not left to the adaptive default) because the adaptive
// count is itself derived from Threads: the decomposition is allowed to
// change with the thread count, but for any one decomposition the geometry
// must not. Comparison is bit-identical via the WKT serialization —
// float-exact, not area-tolerance.
func TestDeterminismAcrossThreadCounts(t *testing.T) {
	engines := []struct {
		name string
		base Options
	}{
		{"slabs", Options{Algorithm: AlgoSlabs, Slabs: 6, NoFallback: true}},
		{"scanbeam", Options{Algorithm: AlgoScanbeam, NoFallback: true}},
	}
	threadCounts := []int{1, 2, 8}
	for _, c := range corpusGeometries() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			subj, err := ParseWKT(c.Subject)
			if err != nil {
				t.Fatalf("subject WKT: %v", err)
			}
			clip, err := ParseWKT(c.Clip)
			if err != nil {
				t.Fatalf("clip WKT: %v", err)
			}
			for _, eng := range engines {
				for _, dop := range diffOps {
					var ref string
					for _, threads := range threadCounts {
						opt := eng.base
						opt.Threads = threads
						out, _, err := ClipCtx(context.Background(), subj, clip, dop.op, opt)
						if err != nil {
							t.Errorf("%s %s threads=%d: %v", eng.name, dop.name, threads, err)
							continue
						}
						got := FormatWKT(out)
						if threads == threadCounts[0] {
							ref = got
							continue
						}
						if got != ref {
							t.Errorf("%s %s: threads=%d output differs from threads=%d:\n  %s\nvs\n  %s",
								eng.name, dop.name, threads, threadCounts[0], got, ref)
						}
					}
				}
			}
		})
	}
}
