// Command chaos runs the deterministic stress engine against the clipping
// pipeline: generated adversarial workloads, optional fault injection into
// the pipeline's guard sites, and metamorphic invariant checking over the
// results. Exit status 0 means the robustness contract held for every
// case; 1 means at least one violation (details on stderr).
//
// Usage:
//
//	chaos -seed 1 -cases 200                  # clean invariant sweep
//	chaos -seed 1 -cases 200 -faults          # with injected panics/corruption
//	chaos -seed 1 -cases 200 -faults -budget 2s  # plus deadlines and hangs
//	chaos -seed 7 -cases 300 -family degenerate  # Foster–Overfelt degeneracy taxonomy only
//	chaos -seed 5 -cases 120 -family tiles       # pyramid tiling partition invariants only
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"polyclip/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "run seed (same seed, same run)")
	cases := flag.Int("cases", 100, "number of generated workloads")
	family := flag.String("family", "", "restrict workloads to one family group (adversarial, degenerate, tiles) or one family name; empty = all")
	faults := flag.Bool("faults", false, "inject one fault per case (panics, hangs, result corruption)")
	budget := flag.Duration("budget", 0, "per-clip deadline (0 = none); enables hang faults with -faults")
	threads := flag.Int("threads", 0, "clip parallelism (0 = all CPUs)")
	reltol := flag.Float64("reltol", 0, "relative area tolerance (0 = default 1e-6)")
	verbose := flag.Bool("v", false, "log each failure as it happens")
	flag.Parse()

	cfg := chaos.Config{
		Seed:    *seed,
		Cases:   *cases,
		Family:  *family,
		Threads: *threads,
		Faults:  *faults,
		Budget:  *budget,
		RelTol:  *reltol,
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	start := time.Now()
	rep := chaos.Run(cfg)
	fmt.Printf("%s\n  wall: %v\n", rep.Summary(), time.Since(start).Round(time.Millisecond))

	if rep.Failed() {
		for _, f := range rep.Failures {
			fmt.Fprintf(os.Stderr, "FAIL case %d [%s] %s: %s\n", f.Case, f.Workload, f.Invariant, f.Detail)
		}
		if n := len(rep.Failures); n < rep.InvariantFailures+rep.Crashes+rep.UnstructuredErrors {
			fmt.Fprintf(os.Stderr, "(failure list truncated at %d records)\n", n)
		}
		os.Exit(1)
	}
}
