// Package scanbeam is the shared substrate of every scanbeam-sweep engine:
// the per-beam edge-population buffers (pooled so parallel beam loops stay
// allocation-free), the x-ordering of active edges on a beam line, the
// Lemma 1/3 parity walk that emits op-selected trapezoids, and the
// sequential bottom-to-top sweep schedule (CSR start buckets + active-list
// compaction).
//
// Before this package existed the same machinery was re-implemented in
// internal/vatti (sequential sweep), internal/core (parallel Algorithm 1
// beams), internal/overlay (classification beams) and internal/bandclip
// (boundary-end pairing). Each engine now composes these primitives instead.
package scanbeam

import (
	"slices"
	"sync"

	"polyclip/internal/engine"
	"polyclip/internal/geom"
)

// Entry is one edge (or chain end) positioned on a scanbeam line: its x
// coordinate there, the caller's edge id, and an owner tag (subject/clip
// polygon, or any other per-edge bit the walk needs).
type Entry struct {
	X     float64
	ID    int32
	Owner uint8
}

// Scratch is a reusable Entry buffer for per-beam ordering. The zero value
// is ready to use; sequential sweeps keep one on the stack, parallel beam
// loops draw pooled instances with Get/Put.
type Scratch struct {
	entries []Entry
}

// Entries returns a length-n entry slice backed by the scratch, growing the
// backing array only when n exceeds every previous beam's population.
func (s *Scratch) Entries(n int) []Entry {
	if cap(s.entries) < n {
		s.entries = make([]Entry, n)
	}
	return s.entries[:n]
}

// Grow returns a zero-length entry slice with capacity at least n, for
// callers that append an unknown subset of candidates. Put the final slice
// back with Keep so the capacity is retained.
func (s *Scratch) Grow(n int) []Entry {
	if cap(s.entries) < n {
		s.entries = make([]Entry, 0, n)
		return s.entries
	}
	return s.entries[:0]
}

// Keep stores a slice obtained from Grow back into the scratch after
// appends may have reallocated it.
func (s *Scratch) Keep(entries []Entry) { s.entries = entries }

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Get draws a Scratch from the shared pool.
func Get() *Scratch { return scratchPool.Get().(*Scratch) }

// Put returns a Scratch to the shared pool.
func Put(s *Scratch) { scratchPool.Put(s) }

// SortByX orders entries by X, allocation-free. Ties keep their relative
// order unspecified (equal-x entries compare equal), matching the sweep
// engines' historical comparator.
func SortByX(entries []Entry) {
	slices.SortFunc(entries, func(a, b Entry) int {
		switch {
		case a.X < b.X:
			return -1
		case a.X > b.X:
			return 1
		default:
			return 0
		}
	})
}

// BeamTrapezoids orders the beam's active edges on the beam midline and
// appends the op-selected trapezoids of the beam [yb, yt] to out — the
// shared Step 3 of the sequential sweep and the parallel Algorithm 1: walk
// left to right flipping per-polygon parity (Lemma 1/3) and emit one
// trapezoid per maximal run where the operation holds. edge returns the
// (upward-oriented) segment and owner tag of an id.
func BeamTrapezoids(scratch *Scratch, ids []int32, yb, yt float64, op engine.Op,
	edge func(int32) (geom.Segment, uint8), out *[]engine.Trapezoid) {
	ymid := (yb + yt) / 2
	order := scratch.Entries(len(ids))
	for i, id := range ids {
		seg, owner := edge(id)
		order[i] = Entry{X: seg.XAtY(ymid), ID: id, Owner: owner}
	}
	SortByX(order)

	var inSub, inClip, inOp bool
	var left int32 = -1
	for _, e := range order {
		if e.Owner == 0 {
			inSub = !inSub
		} else {
			inClip = !inClip
		}
		now := op.Eval(inSub, inClip)
		if now && !inOp {
			left = e.ID
		} else if !now && inOp {
			l, _ := edge(left)
			r, _ := edge(e.ID)
			tz := engine.Trapezoid{
				L1: geom.Point{X: l.XAtY(yb), Y: yb},
				R1: geom.Point{X: r.XAtY(yb), Y: yb},
				L2: geom.Point{X: l.XAtY(yt), Y: yt},
				R2: geom.Point{X: r.XAtY(yt), Y: yt},
			}
			ClampCorners(&tz)
			*out = append(*out, tz)
		}
		inOp = now
	}
}

// ClampCorners collapses an inverted corner pair — the left bound evaluating
// right of the right bound on a beam boundary — to its common midpoint.
// After arrangement resolution this can only come from weld roundoff, so the
// inversion is at most a few ulps wide; collapsing it keeps the cap
// intervals well-formed and, because the midpoint is an order-independent
// function of the two x values, the adjacent beam (which sees the same two
// edges in swapped order) computes the identical point and the shared caps
// still cancel exactly.
func ClampCorners(tz *engine.Trapezoid) {
	if tz.L1.X > tz.R1.X {
		m := (tz.L1.X + tz.R1.X) / 2
		tz.L1.X, tz.R1.X = m, m
	}
	if tz.L2.X > tz.R2.X {
		m := (tz.L2.X + tz.R2.X) / 2
		tz.L2.X, tz.R2.X = m, m
	}
}
