package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// fuzzServer is one shared server for the fuzz run: building a server per
// input would dominate the fuzz loop.
var fuzzServer = func() *Server {
	return NewServer(Config{
		BatchSize:      4,
		MaxWait:        100 * time.Microsecond,
		RequestTimeout: 2 * time.Second,
		Seed:           1,
	})
}()

// FuzzServeRequest throws arbitrary bytes and mutated request bodies at the
// full serve path. The invariants under fuzz: the handler never panics
// (a panic would fail the fuzz run), every answer is a sane HTTP status,
// and every non-2xx body is structured JSON with a machine code.
func FuzzServeRequest(f *testing.F) {
	f.Add([]byte(`{"subject":"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))","clip":"POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))","op":"intersection"}`))
	f.Add([]byte(`{"subject":{"type":"Polygon","coordinates":[[[0,0],[4,0],[4,4],[0,4],[0,0]]]},"clip":"POLYGON EMPTY","op":"union","rule":"nonzero"}`))
	f.Add([]byte(`{"subject":"POLYGON ((0 0, 1 1","clip":"POLYGON EMPTY","op":"xor","algorithm":"slabs"}`))
	f.Add([]byte(`{"op":"difference"}`))
	f.Add([]byte(`{"subject":42,"clip":[],"op":"union"}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"subject":"MULTIPOLYGON (((0 0, 1 0, 1 1, 0 0)))","clip":"POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))","op":"intersection","algorithm":"scanbeam"}`))
	f.Add([]byte(`{"subject":"POLYGON ((0 0, 1e999 0, 1 1, 0 0))","clip":"POLYGON EMPTY","op":"union"}`))

	handler := fuzzServer.Handler()
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/clip", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)

		if rec.Code < 200 || rec.Code > 599 {
			t.Fatalf("nonsensical status %d for %q", rec.Code, body)
		}
		if rec.Code >= 400 {
			var er ErrorResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
				t.Fatalf("status %d body is not structured JSON: %q", rec.Code, rec.Body.Bytes())
			}
			if er.Code == "" {
				t.Fatalf("status %d body missing machine code: %q", rec.Code, rec.Body.Bytes())
			}
		}
		if rec.Code == http.StatusServiceUnavailable && rec.Header().Get("Retry-After") == "" {
			t.Fatalf("shed response missing Retry-After")
		}
		if rec.Code == http.StatusOK {
			var cr ClipResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
				t.Fatalf("200 body is not a ClipResponse: %q", rec.Body.Bytes())
			}
			if len(cr.Result) == 0 {
				t.Fatalf("200 response missing result geometry")
			}
		}
	})
}
