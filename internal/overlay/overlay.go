// Package overlay implements general polygon clipping — intersection, union,
// difference and symmetric difference of arbitrary (concave,
// multi-contour, self-intersecting) polygons under the even-odd fill rule.
//
// The engine is the practical realization of the paper's Algorithm 1:
//
//  1. Find all pairs of intersecting edges (the paper's Step 3.2 / Lemma 4;
//     finder selectable: uniform grid or the scanbeam-inversion method).
//  2. Subdivide every edge at its intersection points so that no two edges
//     cross except at shared endpoints (the k and k' vertices).
//  3. Decompose the plane into scanbeams and classify every sub-edge with
//     the parity prefix sums of Lemmas 1–3: which polygons is the region
//     immediately left of the edge inside of?
//  4. Select the edges where the clipping operation changes value across
//     the edge (Lemma 2's contributing edges), direct them so the result
//     interior lies on their left, and stitch them into output rings
//     (Step 3.4/Step 4's merge).
//
// Every stage but stitching runs in parallel over its natural units (pairs,
// edges, scanbeams) with configurable parallelism.
package overlay

import (
	"context"

	"polyclip/internal/arrange"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/guard"
	"polyclip/internal/isect"
	"polyclip/internal/par"
)

// Op aliases the canonical operation type (see internal/engine).
type Op = engine.Op

// Supported clipping operations.
const (
	Intersection = engine.Intersection // subject ∩ clip
	Union        = engine.Union        // subject ∪ clip
	Difference   = engine.Difference   // subject − clip
	Xor          = engine.Xor          // symmetric difference
)

// Finder selects the intersection-finding strategy.
type Finder uint8

// Available finders.
const (
	FinderGrid     Finder = iota // uniform-grid candidate filter (default)
	FinderScanbeam               // the paper's scanbeam + inversion counting
	FinderSweep                  // Bentley–Ottmann plane sweep (the paper's [2])
	FinderBrute                  // O(n²); tests only
)

// FillRule aliases the canonical fill-rule type (see internal/engine).
type FillRule = engine.FillRule

// Supported fill rules.
const (
	// EvenOdd (default): a point is inside when its crossing parity is odd
	// — the rule of GPC and of the paper's self-intersection handling.
	EvenOdd = engine.EvenOdd
	// NonZero: a point is inside when its winding number is nonzero — the
	// rule of most vector graphics models.
	NonZero = engine.NonZero
)

// Options configures a clipping run.
type Options struct {
	// Parallelism is the number of concurrent workers; <= 0 means
	// GOMAXPROCS.
	Parallelism int
	// Finder selects the pair-finding strategy.
	Finder Finder
	// SnapEps is the vertex-identification tolerance; <= 0 means geom.Eps
	// scaled to the input magnitude.
	SnapEps float64
	// Rule is the fill rule for interpreting both operands and the result.
	Rule FillRule
}

// Clip computes `subject op clip` and returns the result polygon. The
// result's outer rings are counter-clockwise and its holes clockwise; an
// empty polygon is returned when the result is empty.
func Clip(subject, clip geom.Polygon, op Op, opt Options) geom.Polygon {
	out, _ := ClipCtx(context.Background(), subject, clip, op, opt)
	return out
}

// ClipCtx is Clip with cooperative cancellation: the subdivision and
// classification stages poll ctx and stop early, and a non-nil error
// (ctx.Err()) is returned instead of a partial result. With an
// already-satisfied context it behaves exactly like Clip.
func ClipCtx(ctx context.Context, subject, clip geom.Polygon, op Op, opt Options) (geom.Polygon, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	guard.Hit("overlay.clip")
	p := opt.Parallelism
	if p <= 0 {
		p = par.DefaultParallelism()
	}

	subject = sanitize(subject)
	clip = sanitize(clip)

	eps := opt.SnapEps
	if eps <= 0 {
		eps = geom.AutoSnapEps(subject, clip)
	}

	// Fast paths: empty operands. Operands passed through are resolved so
	// the output convention (simple rings, CCW outers / CW holes) holds
	// even for self-intersecting inputs.
	if subject.NumVertices() == 0 {
		switch op {
		case Union, Xor:
			return finish(ctx, resolveSelf(ctx, clip, eps, opt.Rule, p))
		default:
			return nil, ctx.Err()
		}
	}
	if clip.NumVertices() == 0 {
		switch op {
		case Intersection:
			return nil, ctx.Err()
		default:
			return finish(ctx, resolveSelf(ctx, subject, eps, opt.Rule, p))
		}
	}
	// Disjoint bounding boxes: no geometry interacts.
	if !subject.BBox().Intersects(clip.BBox()) {
		switch op {
		case Intersection:
			return nil, ctx.Err()
		case Difference:
			return finish(ctx, resolveSelf(ctx, subject, eps, opt.Rule, p))
		default:
			out := resolveSelf(ctx, subject, eps, opt.Rule, p)
			return finish(ctx, append(out, resolveSelf(ctx, clip, eps, opt.Rule, p)...))
		}
	}

	// Pre-resolve the pair jointly (no-op for operands that only touch at
	// shared vertices, which is the common case). Interior crossings — an
	// operand's own or between the operands — must not reach the
	// subdivision stage as raw geometry. Self-crossings: when both operands
	// share geometry (A∩A, shared borders), a self-crossing is found once
	// per operand copy with the segment arguments in different orders, and
	// SegIntersection is not bit-symmetric under argument swap — the twin
	// split points can land in adjacent snap cells, breaking the winding
	// symmetry between the operands and with it the even-odd parity (a
	// polygram's A∩A loses the area around its crossings). Cross-operand
	// crossings: subdivide snaps each split point independently, and a
	// cluster of crossings a few cells apart (a near-flat sliver edge
	// grazing the other operand's vertex) snaps to distinct grid points
	// whose sub-segments still cross — a non-planar arrangement with
	// unbalanced node degrees that stitching must drop. ResolvePair splits
	// everything at every intersection and welds both operands onto one
	// shared grid, so subdivide meets crossings only at shared exact
	// vertices, which it never splits. ResolvePair re-extracts the even-odd
	// boundary of self-crossing operands, so it must not run under the
	// winding rules (NonZero/Positive/Negative), where winding multiplicity
	// (same-direction overlapping rings, a pentagram's doubly-wound centre)
	// is semantic.
	if opt.Rule == EvenOdd {
		subject, clip = arrange.ResolvePair(subject, clip)
	} else {
		// Winding rules get the winding-preserving joint resolve instead:
		// both operands split-and-weld onto the pair's shared grid with ring
		// directions (and hence winding multiplicity) intact. Beyond welding
		// self-crossings, this matters when the snap grid is coarse relative
		// to one operand (mixed-extent pairs): sub-eps slivers collapse here
		// exactly as they do in every other engine's pair arrangement.
		// Vertex snapping alone keeps such slivers at full width and the
		// winding measure drifts from the rest of the registry.
		subject, clip = arrange.ResolvePairWinding(subject, clip)
	}

	// Snap the inputs onto the eps grid before pair finding, so that
	// nearly-coincident geometry (e.g. seam caps produced by slab
	// decomposition in different workers) becomes exactly coincident and its
	// overlaps are detected and cancelled, instead of being merged silently
	// after the intersection pass.
	subject = snapPolygon(subject, eps)
	clip = snapPolygon(clip, eps)

	edges, owners := gatherEdges(subject, clip)

	finder := opt.Finder
	if finder == FinderScanbeam && (hasHorizontalEdge(subject) || hasHorizontalEdge(clip)) {
		// The scanbeam finder cannot see horizontal edges (they span no
		// beam); the grid finder handles them natively.
		finder = FinderGrid
	}
	var pairs []isect.Pair
	switch finder {
	case FinderScanbeam:
		pairs = isect.ScanbeamPairs(edges, p)
	case FinderSweep:
		pairs = isect.SweepPairs(edges)
	case FinderBrute:
		pairs = isect.BruteForcePairs(edges)
	default:
		pairs = isect.GridPairs(edges, p)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	segs := subdivide(ctx, edges, owners, pairs, eps, p)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	classify(ctx, segs, p)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	dirs := selectEdges(segs, op, opt.Rule, p)
	return stitch(segs, dirs), nil
}

// finish discards a possibly-partial result when ctx was cancelled.
func finish(ctx context.Context, out geom.Polygon) (geom.Polygon, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// canceled is the cheap in-loop cancellation poll.
func canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// resolveSelf runs a single polygon through the pipeline (as subject with
// an empty clip under Xor, whose value is simply "inside subject"),
// resolving self-intersections and normalizing ring orientations.
func resolveSelf(ctx context.Context, poly geom.Polygon, eps float64, rule FillRule, p int) geom.Polygon {
	if poly.NumVertices() == 0 {
		return nil
	}
	poly = snapPolygon(poly, eps)
	edges, owners := gatherEdges(poly, nil)
	pairs := isect.GridPairs(edges, p)
	segs := subdivide(ctx, edges, owners, pairs, eps, p)
	classify(ctx, segs, p)
	dirs := selectEdges(segs, Xor, rule, p)
	return stitch(segs, dirs)
}

// sanitize removes degenerate rings.
func sanitize(poly geom.Polygon) geom.Polygon {
	var out geom.Polygon
	for _, r := range poly {
		if len(r) >= 3 {
			out = append(out, r)
		}
	}
	return out
}

// hasHorizontalEdge reports whether any ring has an edge parallel to the
// x-axis.
func hasHorizontalEdge(poly geom.Polygon) bool {
	for _, r := range poly {
		for i := range r {
			j := (i + 1) % len(r)
			if r[i].Y == r[j].Y && r[i] != r[j] {
				return true
			}
		}
	}
	return false
}

// SnapEpsFor returns the default vertex-snapping tolerance for a pair of
// operands — exported so the hardened pipeline can retry a failed clip on
// a deliberately coarser grid.
func SnapEpsFor(a, b geom.Polygon) float64 { return geom.AutoSnapEps(a, b) }

// gatherEdges flattens both polygons into one edge list with an owner tag
// per edge (0 = subject, 1 = clip).
func gatherEdges(subject, clip geom.Polygon) ([]geom.Segment, []uint8) {
	var edges []geom.Segment
	for _, r := range subject {
		edges = r.Edges(edges)
	}
	nSub := len(edges)
	for _, r := range clip {
		edges = r.Edges(edges)
	}
	owners := make([]uint8, len(edges))
	for i := nSub; i < len(edges); i++ {
		owners[i] = 1
	}
	return edges, owners
}
