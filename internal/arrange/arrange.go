// Package arrange pre-resolves operand arrangements for the scanbeam
// engines. A Vatti-style sweep assumes that between two consecutive event
// scanlines no two active edges cross; raw inputs violate that in two ways
// the event schedule alone cannot repair. Self-intersecting rings (bowties,
// polygrams) carry boundary whose even-odd multiplicity differs from the
// ring walk, and near-collinear crossings computed in floating point land in
// the wrong scanbeam — the shallower the angle, the further the computed
// intersection drifts along the edges, so scheduling the intersection's y is
// not enough to keep the beam orders consistent.
//
// Resolve and ResolvePair remove both hazards at the source, the standard
// snap-rounding route (cf. CGAL's arrangement preprocessing): every edge is
// split at every intersection point found by the internal/isect finders, all
// vertices are welded onto one power-of-two grid at geom.RelEps of the data
// extent, and operands that genuinely self-intersect have their simple
// even-odd boundary re-extracted with the robust orientation predicate.
// After resolution, edges meet only at shared exact vertices, so a sweep
// whose events are the endpoint ys sees no crossing strictly inside any
// beam.
package arrange

import (
	"math"
	"sort"

	"polyclip/internal/geom"
	"polyclip/internal/isect"
	"polyclip/internal/ringstitch"
)

// Resolve returns a polygon covering the same even-odd point set as p whose
// rings are split at every self-intersection and welded onto the relative
// snap grid; when p self-intersects (edges crossing in their interiors or
// overlapping collinearly) the simple even-odd boundary is re-extracted, so
// the result's rings cross only at shared vertices. Inputs that are already
// resolved are returned unchanged, without copying.
func Resolve(p geom.Polygon) geom.Polygon {
	out, _, changed := resolve([]geom.Polygon{p}, false, false)
	if !changed {
		return p
	}
	return out[0]
}

// ResolveWinding is Resolve for winding-rule (NonZero/Positive/Negative)
// sweeps: edges are split at every intersection and welded onto the shared
// grid exactly as Resolve does, but self-intersecting operands keep their
// rebuilt rings with their original directions instead of having the simple
// even-odd boundary re-extracted. Re-extraction collapses coincident edges
// by parity, destroying the winding multiplicity a signed-count walk needs;
// a downstream sweep still meets crossings only at shared exact vertices.
func ResolveWinding(p geom.Polygon) geom.Polygon {
	out, _, changed := resolve([]geom.Polygon{p}, true, false)
	if !changed {
		return p
	}
	return out[0]
}

// ResolvePair resolves two operands jointly: edges of either operand are
// split at their intersections with every other edge — their own operand's
// or the other's — and all vertices weld onto one shared grid, so a
// downstream sweep of the union of both edge sets meets crossings only at
// shared exact vertices. Operand pairs that only touch at shared vertices
// (or not at all) are returned unchanged, without copying.
func ResolvePair(a, b geom.Polygon) (geom.Polygon, geom.Polygon) {
	a, b, _ = ResolvePairEstimate(a, b)
	return a, b
}

// ResolvePairEstimate is ResolvePair returning, in addition, the number of
// non-disjoint candidate pairs the fused pre-scan evaluated — an estimate of
// the arrangement's intersection count k, available for free because the
// pre-scan already computes every candidate's exact intersection. It is the
// output-size signal the paper's output-sensitive processor allocation keys
// on: internal/core derives its slab count from it instead of from a fixed
// multiple of the thread count. The count is an estimate, not an exact k —
// candidates spanning several grid cells are streamed (and so counted) more
// than once, and endpoint touches count alongside genuine crossings, so
// consecutive ring edges floor it at roughly the edge count even for
// disjoint operands — but it grows with arrangement density, which is all a
// slab heuristic needs.
func ResolvePairEstimate(a, b geom.Polygon) (geom.Polygon, geom.Polygon, int) {
	out, k, changed := resolve([]geom.Polygon{a, b}, false, false)
	if !changed {
		return a, b, k
	}
	return out[0], out[1], k
}

// ResolvePairWinding is ResolvePair for winding-rule sweeps: joint
// split-and-weld with ring directions preserved (no even-odd re-extraction of
// self-intersecting operands — see ResolveWinding).
func ResolvePairWinding(a, b geom.Polygon) (geom.Polygon, geom.Polygon) {
	out, _, changed := resolve([]geom.Polygon{a, b}, true, false)
	if !changed {
		return a, b
	}
	return out[0], out[1]
}

// ResolvePairPrepared is ResolvePair for a prepared subject (see
// engine.Options.Prepared): a is promised to be already self-resolved — its
// own edges meet only at shared exact vertices, as internal/prepared's
// canonicalization guarantees — so every a↔a candidate pair is skipped
// without evaluating its intersection. Crossings between a and b, and b's
// own self-intersections, are split and welded exactly as ResolvePair does.
// For a large prepared layer against a small clip window the pre-scan's
// candidate stream is dominated by the layer's own adjacent-edge pairs, so
// the skip removes most of the per-clip resolution cost that remains after
// preparation.
func ResolvePairPrepared(a, b geom.Polygon) (geom.Polygon, geom.Polygon) {
	out, _, changed := resolve([]geom.Polygon{a, b}, false, true)
	if !changed {
		return a, b
	}
	return out[0], out[1]
}

// ResolvePairPreparedWinding is ResolvePairPrepared for winding-rule sweeps:
// the a↔a skip with ring directions preserved (see ResolvePairWinding).
func ResolvePairPreparedWinding(a, b geom.Polygon) (geom.Polygon, geom.Polygon) {
	out, _, changed := resolve([]geom.Polygon{a, b}, true, true)
	if !changed {
		return a, b
	}
	return out[0], out[1]
}

// resolve is the shared implementation: ops is one polygon (Resolve) or an
// operand pair (ResolvePair). winding keeps the rebuilt rings of
// self-intersecting operands directed as given instead of re-extracting
// their even-odd boundary. trustSelf0 promises operand 0 is already
// self-resolved: its own candidate pairs are skipped outright (see
// ResolvePairPrepared). The int counts the non-disjoint candidate pairs the
// pre-scan evaluated (see ResolvePairEstimate). The boolean reports whether
// anything changed; when false the caller keeps its originals and no
// allocation is retained.
func resolve(ops []geom.Polygon, winding, trustSelf0 bool) ([]geom.Polygon, int, bool) {
	// Flatten every ring of every operand into one edge soup, remembering
	// which operand each edge belongs to so self-intersection is detected
	// per operand.
	var segs []geom.Segment
	var owners []int
	for oi, p := range ops {
		for _, r := range p {
			if len(r) < 3 {
				continue
			}
			n := len(r)
			for i := 0; i < n; i++ {
				j := i + 1
				if j == n {
					j = 0
				}
				if r[i] == r[j] {
					continue
				}
				segs = append(segs, geom.Segment{A: r[i], B: r[j]})
				owners = append(owners, oi)
			}
		}
	}
	if len(segs) < 2 {
		return ops, 0, false
	}

	// Fast-path pre-scan fused with cut collection: stream the grid finder's
	// candidate pairs (self and cross-operand alike; the grid handles
	// horizontal edges, which the scanbeam finder must not see) and evaluate
	// each candidate's intersection exactly once. Cut points per edge: every
	// intersection point strictly inside an edge splits it there.
	// SegIntersection snaps near-endpoint crossings onto the endpoint
	// exactly, so a point distinct from both endpoints is a genuine interior
	// split. An operand needs even-odd re-extraction when two of its own
	// edges meet anywhere beyond a shared endpoint.
	//
	// The per-edge cut table is allocated lazily, on the first genuine split:
	// operands that only touch at shared vertices — the common clean
	// GIS-style case — complete the scan without materializing a pair list,
	// per-pair verification callbacks, or any per-edge state, and return
	// unchanged. Candidates sharing several grid cells are streamed more than
	// once; the logic below is idempotent under revisits (duplicate cut
	// points collapse in the rebuild's push dedup, the booleans are sticky).
	var cuts [][]geom.Point
	var selfX [2]bool
	anySelf := false
	crossings := 0
	isect.VisitCandidatePairs(segs, func(i, j int32) bool {
		if trustSelf0 && owners[i] == 0 && owners[j] == 0 {
			return true
		}
		si, sj := segs[i], segs[j]
		kind, p0, p1 := geom.SegIntersection(si, sj)
		if kind == geom.Disjoint {
			return true
		}
		crossings++
		pts := [2]geom.Point{p0, p1}
		npts := 1
		if kind == geom.Overlapping {
			npts = 2
		}
		interior := kind == geom.Overlapping
		for k := 0; k < npts; k++ {
			pt := pts[k]
			if pt != si.A && pt != si.B {
				if cuts == nil {
					cuts = make([][]geom.Point, len(segs))
				}
				cuts[i] = append(cuts[i], pt)
				interior = true
			}
			if pt != sj.A && pt != sj.B {
				if cuts == nil {
					cuts = make([][]geom.Point, len(segs))
				}
				cuts[j] = append(cuts[j], pt)
				interior = true
			}
		}
		if interior && owners[i] == owners[j] {
			selfX[owners[i]] = true
			anySelf = true
		}
		return true
	})
	if cuts == nil && !anySelf {
		return ops, crossings, false
	}
	if cuts == nil {
		// Collinear same-owner overlaps with no interior split still force
		// the re-extraction path; the rebuild below indexes the cut table.
		cuts = make([][]geom.Point, len(segs))
	}

	weld := weldFunc(segs)

	// Rebuild every ring with its split vertices inserted in order along
	// each edge, everything welded, consecutive duplicates dropped. The
	// iteration mirrors the flattening loop above so the cut lists line up.
	out := make([]geom.Polygon, len(ops))
	ei := 0
	for oi, p := range ops {
		var np geom.Polygon
		for _, r := range p {
			if len(r) < 3 {
				continue
			}
			var nr geom.Ring
			push := func(pt geom.Point) {
				if len(nr) == 0 || nr[len(nr)-1] != pt {
					nr = append(nr, pt)
				}
			}
			n := len(r)
			for i := 0; i < n; i++ {
				j := i + 1
				if j == n {
					j = 0
				}
				if r[i] == r[j] {
					continue
				}
				seg := segs[ei]
				push(weld(seg.A))
				cs := cuts[ei]
				if len(cs) > 1 {
					d := seg.B.Sub(seg.A)
					sort.Slice(cs, func(x, y int) bool {
						return cs[x].Sub(seg.A).Dot(d) < cs[y].Sub(seg.A).Dot(d)
					})
				}
				for _, c := range cs {
					push(weld(c))
				}
				ei++
			}
			for len(nr) > 1 && nr[len(nr)-1] == nr[0] {
				nr = nr[:len(nr)-1]
			}
			// Welding can flatten a ring whose true extent is below the grid
			// step onto a single line (an extreme-aspect sliver next to a much
			// larger operand). Such a ring covers no area under any fill rule,
			// but its coincident edges poison the sweep's parity walk, so it
			// is dropped rather than passed on.
			if len(nr) >= 3 && !ringCollinear(nr) {
				np = append(np, nr)
			}
		}
		out[oi] = np
	}

	// Re-extract the simple even-odd boundary of operands whose own edges
	// cross or overlap; operands that were only split by the other operand
	// keep their rebuilt rings (same rings, more vertices). Winding-rule
	// callers skip re-extraction entirely: the signed-count walk needs the
	// original ring directions and multiplicities that extraction collapses.
	if !winding {
		for oi := range out {
			if selfX[oi] {
				out[oi] = extractEvenOdd(out[oi].Edges())
			}
		}
	}
	return out, crossings, true
}

// ringCollinear reports whether every vertex of r lies on one line (the
// first edge's supporting line; consecutive duplicates are already removed,
// so r[0] != r[1]).
func ringCollinear(r geom.Ring) bool {
	for i := 2; i < len(r); i++ {
		if geom.Orient(r[0], r[1], r[i]) != geom.Collinear {
			return false
		}
	}
	return true
}

// weldFunc returns the vertex weld for the given edge soup: quantization
// onto a power-of-two grid at geom.RelEps of the data extent. Quantization
// is a pure function of the coordinate, so the same arrangement vertex
// reached through different edges always lands on the identical
// representative, and a power-of-two step keeps binary-representable inputs
// (integers, halves, ...) exact.
func weldFunc(segs []geom.Segment) func(geom.Point) geom.Point {
	box := geom.EmptyBBox()
	for _, s := range segs {
		box.Extend(s.A)
		box.Extend(s.B)
	}
	scale := math.Max(box.Width(), box.Height())
	scale = math.Max(scale, math.Max(math.Abs(box.MaxX), math.Abs(box.MaxY)))
	scale = math.Max(scale, math.Max(math.Abs(box.MinX), math.Abs(box.MinY)))
	if scale == 0 || math.IsInf(scale, 0) {
		return func(p geom.Point) geom.Point { return p }
	}
	eps := math.Ldexp(1, int(math.Ceil(math.Log2(scale*geom.RelEps))))
	return func(p geom.Point) geom.Point {
		return geom.Point{X: math.Round(p.X/eps) * eps, Y: math.Round(p.Y/eps) * eps}
	}
}

// extractEvenOdd recovers the simple boundary of the even-odd region covered
// by an edge multiset that has already been split at all intersections and
// welded: edges meet only at shared exact vertices. Coincident edges with
// even multiplicity separate regions of equal parity and vanish; odd groups
// are boundary once. Each boundary edge is directed with the region interior
// on its left — decided by exact ray parity with the robust orientation
// predicate, not by any epsilon — and the directed soup is stitched into
// counter-clockwise outer rings and clockwise holes.
func extractEvenOdd(edges []geom.Segment) geom.Polygon {
	type ekey struct{ ax, ay, bx, by float64 }
	counts := make(map[ekey]int, len(edges))
	for _, s := range edges {
		if s.A == s.B {
			continue
		}
		a, b := s.A, s.B
		if b.Less(a) {
			a, b = b, a
		}
		counts[ekey{a.X, a.Y, b.X, b.Y}]++
	}
	bd := make([]geom.Segment, 0, len(counts))
	for k, c := range counts {
		if c%2 == 1 {
			bd = append(bd, geom.Segment{A: geom.Point{X: k.ax, Y: k.ay}, B: geom.Point{X: k.bx, Y: k.by}})
		}
	}
	// Deterministic classification and stitch order regardless of map
	// iteration.
	sort.Slice(bd, func(i, j int) bool {
		if bd[i].A != bd[j].A {
			return bd[i].A.Less(bd[j].A)
		}
		return bd[i].B.Less(bd[j].B)
	})

	dir := make([]ringstitch.Edge, 0, len(bd))
	for _, e := range bd {
		m := e.Midpoint()
		if e.A.X == e.B.X {
			// Vertical edge: parity of boundary edges strictly left of m
			// along the leftward horizontal ray. Half-open in y so a vertex
			// exactly at m.Y counts once; Orient is Collinear for edges
			// through m (including e itself), which contribute nothing.
			parity := false
			for _, f := range bd {
				if (f.A.Y > m.Y) != (f.B.Y > m.Y) {
					lo, hi := f.A, f.B
					if lo.Y > hi.Y {
						lo, hi = hi, lo
					}
					if geom.Orient(lo, hi, m) == geom.Clockwise {
						parity = !parity
					}
				}
			}
			lo, hi := e.A, e.B
			if lo.Y > hi.Y {
				lo, hi = hi, lo
			}
			if parity {
				// Interior on the left: boundary walks upward.
				dir = append(dir, ringstitch.Edge{From: lo, To: hi})
			} else {
				dir = append(dir, ringstitch.Edge{From: hi, To: lo})
			}
		} else {
			// Non-vertical edge: parity of boundary edges strictly below m
			// along the downward vertical ray.
			parity := false
			for _, f := range bd {
				if (f.A.X > m.X) != (f.B.X > m.X) {
					lo, hi := f.A, f.B
					if lo.X > hi.X {
						lo, hi = hi, lo
					}
					if geom.Orient(lo, hi, m) == geom.CounterClockwise {
						parity = !parity
					}
				}
			}
			lo, hi := e.A, e.B
			if lo.X > hi.X {
				lo, hi = hi, lo
			}
			if parity {
				// Interior below: boundary walks toward -x.
				dir = append(dir, ringstitch.Edge{From: hi, To: lo})
			} else {
				dir = append(dir, ringstitch.Edge{From: lo, To: hi})
			}
		}
	}
	return ringstitch.Stitch(dir)
}
