package overlay

import (
	"context"
	"errors"
	"math"
	"testing"

	"polyclip/internal/geom"
)

func manyGon(cx, cy, r float64, n int) geom.Polygon {
	rg := make(geom.Ring, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		rg[i] = geom.Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)}
	}
	return geom.Polygon{rg}
}

func TestClipCtxCancelledReturnsError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a := manyGon(0, 0, 10, 512)
	b := manyGon(1, 1, 10, 512)
	out, err := ClipCtx(ctx, a, b, Intersection, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatalf("partial result returned: %d rings", len(out))
	}
}

func TestClipCtxNilContext(t *testing.T) {
	a := manyGon(0, 0, 10, 64)
	b := manyGon(1, 1, 10, 64)
	out, err := ClipCtx(nil, a, b, Intersection, Options{}) //nolint:staticcheck // nil ctx tolerance is part of the contract
	if err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
	want := Clip(a, b, Intersection, Options{}).Area()
	if got := out.Area(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("area %g, want %g", got, want)
	}
}
