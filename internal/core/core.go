// Package core implements the paper's two parallel clipping algorithms on
// top of the repository's substrates:
//
//   - AlgorithmOne — the multicore realization of the CREW PRAM Algorithm 1
//     (§III): event schedule by parallel sort, scanbeam population through
//     the parallel segment tree (Step 2), per-scanbeam contributing-vertex
//     classification and trapezoid emission in parallel over beams (Step 3,
//     Lemmas 1–3) with intersections from the inversion method (Lemma 4),
//     and a parallel merge of the partial results (Step 4, Fig. 6).
//
//   - ClipPair / ClipLayers — the multi-threaded Algorithm 2 (§IV): the
//     input is partitioned into p horizontal slabs balanced by event count,
//     each slab is clipped independently by a sequential engine after
//     rectangle-clipping both operands to the slab, and the partial outputs
//     are merged by cancelling the seams along slab boundaries.
//
// All entry points report phase timings (partition / clip / merge) and
// per-thread clip times so the paper's Figures 8–12 can be regenerated.
package core

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"time"

	"polyclip/internal/bandclip"
	"polyclip/internal/geom"
	"polyclip/internal/guard"
	"polyclip/internal/overlay"
	"polyclip/internal/par"
	"polyclip/internal/vatti"
)

// Op re-exports the operation type shared by all engines.
type Op = overlay.Op

// Supported operations.
const (
	Intersection = overlay.Intersection
	Union        = overlay.Union
	Difference   = overlay.Difference
	Xor          = overlay.Xor
)

// Engine selects the sequential clipper run inside each slab.
type Engine uint8

// Available engines.
const (
	// EngineOverlay is the subdivision/classification engine (default).
	EngineOverlay Engine = iota
	// EngineVatti is the scanbeam sweep engine (the GPC stand-in).
	EngineVatti
)

// MergeMode selects how per-slab partial outputs are combined.
type MergeMode uint8

// Merge modes.
const (
	// MergeStitch cancels the horizontal seams along slab boundaries and
	// restitches rings — the paper's Fig. 6 merge, flattened.
	MergeStitch MergeMode = iota
	// MergeConcat concatenates the partial outputs, leaving seam edges in
	// place. The region is identical under the even-odd rule; only the ring
	// structure differs. Fastest; matches the paper's replication variant
	// where "the merging phase is not required".
	MergeConcat
	// MergeUnionTree merges by a reduction tree of pairwise polygon unions,
	// the literal Fig. 6 construction. For the ablation benchmark.
	MergeUnionTree
)

// PartitionMode selects how slab boundaries are chosen.
type PartitionMode uint8

// Partition modes.
const (
	// PartitionEvents balances slabs by event count — the paper's approach
	// ("every thread gets roughly equal number of local event points").
	PartitionEvents PartitionMode = iota
	// PartitionUniform uses equal-height slabs — the uniform grid approach
	// of the paper's [19], kept as the load-balancing ablation baseline.
	PartitionUniform
)

// Options configures a parallel clipping run.
type Options struct {
	// Threads is the number of concurrent workers; <= 0 means GOMAXPROCS.
	Threads int
	// Slabs is the number of horizontal slabs the input is decomposed
	// into; 0 means one per thread. Setting Slabs > Threads measures true
	// per-slab costs with limited concurrency (used by the experiment
	// harness to model scaling beyond the host's core count: per-slab
	// timers are only CPU-attributable when workers do not outnumber
	// cores).
	Slabs int
	// Engine is the per-slab sequential clipper.
	Engine Engine
	// Merge selects the partial-output merge strategy.
	Merge MergeMode
	// Partition selects the slab boundary placement.
	Partition PartitionMode
	// NoFallback disables the per-pair engine rescue in ClipLayersCtx (a
	// pair whose clip panics is normally retried once with the other
	// sequential engine before the error is surfaced).
	NoFallback bool
}

// Stats reports where the time went, for the paper's figures.
type Stats struct {
	Slabs     int             // number of slabs actually used
	Sort      time.Duration   // Step 1–2: event sort
	Partition time.Duration   // Steps 4–5: rectangle clipping into slabs
	Clip      time.Duration   // Step 6: per-slab clipping (wall clock)
	Merge     time.Duration   // Step 8: merging partial outputs
	PerThread []time.Duration // per-slab clip time (Fig. 11 load balance)
	// Resilience records what the hardened clipping path did: input repair,
	// the engine attempts and their outcomes, and recovered worker panics.
	Resilience Resilience
}

// Resilience is the record of the hardened pipeline's interventions for one
// clipping run.
type Resilience struct {
	// Repaired reports that guard.Repair modified an input (duplicate
	// vertices, spikes, or degenerate rings removed).
	Repaired bool
	// Attempts lists every engine attempt as "name:outcome", in order —
	// e.g. ["slabs:panic", "overlay-coarse:audit-fail", "vatti:ok"].
	Attempts []string
	// Recovered counts worker panics (or abandoned stages) that were rescued
	// — by a stage retry or a fallback engine — without surfacing an error.
	Recovered int
	// StageTimeouts counts pipeline stages abandoned by their watchdog
	// because the stage's share of the deadline expired before every worker
	// finished.
	StageTimeouts int
	// Retries counts stage-level retry attempts: a timed-out or panicked
	// stage is re-run once, sequentially, on fresh buffers.
	Retries int
	// InvariantFailures counts failed result-invariant checks: audit
	// rejections in the differential-fallback chain and metamorphic
	// invariant violations found by the chaos harness.
	InvariantFailures int
}

// Merge accumulates another record's counters into r (the Attempts list is
// concatenated). Used when one logical clip runs several engine attempts,
// each with its own Stats.
func (r *Resilience) Merge(o Resilience) {
	r.Repaired = r.Repaired || o.Repaired
	r.Attempts = append(r.Attempts, o.Attempts...)
	r.Recovered += o.Recovered
	r.StageTimeouts += o.StageTimeouts
	r.Retries += o.Retries
	r.InvariantFailures += o.InvariantFailures
}

// CriticalPath returns the modelled parallel clip time: the maximum
// per-thread clip time. On hosts with fewer cores than threads the wall
// clock cannot show the paper's scaling; max-over-slabs is the
// machine-independent quantity the speedup figures are shaped by.
func (s *Stats) CriticalPath() time.Duration {
	var m time.Duration
	for _, d := range s.PerThread {
		if d > m {
			m = d
		}
	}
	return m
}

// TotalWork returns the summed per-thread clip time.
func (s *Stats) TotalWork() time.Duration {
	var t time.Duration
	for _, d := range s.PerThread {
		t += d
	}
	return t
}

// ModelledParallel returns the modelled end-to-end duration with p
// concurrent workers: sort + partition + per-slab work scheduled greedily
// over p workers + merge. This is what Figures 8/10/12 plot when the host
// has fewer physical cores than threads.
func (s *Stats) ModelledParallel(p int) time.Duration {
	if p <= 0 {
		p = 1
	}
	// Greedy longest-processing-time schedule of slab times onto p workers.
	loads := make([]time.Duration, p)
	for _, d := range s.PerThread {
		mi := 0
		for i := 1; i < p; i++ {
			if loads[i] < loads[mi] {
				mi = i
			}
		}
		loads[mi] += d
	}
	var mx time.Duration
	for _, l := range loads {
		if l > mx {
			mx = l
		}
	}
	return s.Sort + s.Partition + mx + s.Merge
}

// engineClip dispatches to the selected sequential engine. snapEps is the
// vertex grid shared by every slab of one run, so that seam geometry
// produced independently by different workers quantizes identically. A
// cancelled ctx makes the overlay engine bail early; the surrounding loops
// detect the cancellation and discard the partial output.
func engineClip(ctx context.Context, e Engine, a, b geom.Polygon, op Op, snapEps float64) geom.Polygon {
	switch e {
	case EngineVatti:
		return vatti.Clip(a, b, op)
	default:
		out, _ := overlay.ClipCtx(ctx, a, b, op, overlay.Options{Parallelism: 1, SnapEps: snapEps})
		return out
	}
}

// canceled is the cheap in-loop cancellation poll.
func canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// Per-stage shares of the remaining deadline budget. Each stage gets its
// fraction of the time left when it starts (not of the original total), so
// an early stage finishing fast donates its slack to the later ones and a
// slow stage cannot starve the merge entirely.
const (
	fracSort      = 0.10
	fracPartition = 0.20
	fracClip      = 0.55
	fracMerge     = 0.80 // of whatever remains after the clip stage
)

// stageRetryBackoff is the pause before a timed-out or panicked stage is
// retried sequentially — long enough to let a transiently-contended machine
// breathe, short enough to stay well inside any realistic deadline budget.
const stageRetryBackoff = 2 * time.Millisecond

// runStage executes one pipeline stage with a watchdog deadline and one
// retry. When ctx carries a deadline, the stage runs under a child context
// holding the stage's fractional share of the remaining time; a stage that
// exceeds its share is abandoned (workers cannot be killed — they keep
// running and their buffers are discarded, which is why attempt must write
// only to freshly allocated buffers and commit them only on a nil return).
// A timed-out or panicked stage is retried once, after a brief backoff,
// sequentially (p = 1) under the full remaining deadline. When both tries
// fail the stage error is surfaced as a *guard.ClipError; cancellation or
// expiry of ctx itself is surfaced as ctx.Err().
//
// attempt receives the stage context and the parallelism to use, and must
// return a *par.StallError if the stage context expired mid-stage (so the
// watchdog outcome is attributed to the stage, not the run).
func runStage(ctx context.Context, st *Stats, name string, frac float64, p int, noRetry bool, attempt func(sctx context.Context, p int) error) error {
	run := func(pp int, share float64) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = guard.FromPanic(name, -1, guard.NoPair, r)
			}
		}()
		sctx := ctx
		if deadline, ok := ctx.Deadline(); ok {
			var cancel context.CancelFunc
			sctx, cancel = context.WithTimeout(ctx, time.Duration(share*float64(time.Until(deadline))))
			defer cancel()
		}
		return attempt(sctx, pp)
	}

	err := run(p, frac)
	if err == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		// The run as a whole was cancelled or ran out of deadline: not a
		// stage-local failure, nothing to retry.
		return cerr
	}
	var stall *par.StallError
	if errors.As(err, &stall) {
		st.Resilience.StageTimeouts++
	}
	if noRetry {
		return stageError(name, err)
	}
	time.Sleep(stageRetryBackoff)
	st.Resilience.Retries++
	if err2 := run(1, 1.0); err2 == nil {
		st.Resilience.Recovered++
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return stageError(name, err)
}

// stageError converts a stage failure into the structured *guard.ClipError
// surfaced to callers, preserving an existing ClipError's deeper
// attribution and tagging watchdog stalls as timeouts.
func stageError(stage string, err error) error {
	var ce *guard.ClipError
	if errors.As(err, &ce) {
		return ce
	}
	var stall *par.StallError
	out := &guard.ClipError{Stage: stage, Slab: -1, Pair: guard.NoPair, Value: err, Err: err}
	if errors.As(err, &stall) {
		out.Timeout = true
	}
	return out
}

// stallIfExpired maps a stage context that expired while the stage's
// workers were (cooperatively) draining onto the same *par.StallError the
// watchdog produces for a hard stall, so runStage treats both identically.
func stallIfExpired(sctx context.Context) error {
	if err := sctx.Err(); err != nil {
		return &par.StallError{Err: err}
	}
	return nil
}

// snapEpsFor picks the shared vertex grid for one clipping run.
func snapEpsFor(a, b geom.Polygon) float64 {
	box := a.BBox().Union(b.BBox())
	m := box.Width()
	if h := box.Height(); h > m {
		m = h
	}
	// The grid must also respect the absolute coordinate magnitude:
	// float64 cannot address (and int64 cannot index) positions finer than
	// a relative 1e-12 of the largest coordinate.
	for _, v := range [...]float64{box.MinX, box.MaxX, box.MinY, box.MaxY} {
		if a := math.Abs(v); a > m && !math.IsInf(a, 0) {
			m = a
		}
	}
	if m <= 0 {
		m = 1
	}
	// Round the grid up to a power of two so quantizing binary-representable
	// coordinates (integers, halves, ...) is exact and outputs stay clean.
	return math.Pow(2, math.Ceil(math.Log2(m*geom.RelEps)))
}

// ClipPair clips two polygons with the multi-threaded Algorithm 2. A worker
// panic propagates as a panic on the calling goroutine (recoverable); the
// hardened public API uses ClipPairCtx instead, which returns it as an
// error.
func ClipPair(a, b geom.Polygon, op Op, opt Options) (geom.Polygon, *Stats) {
	out, st, err := ClipPairCtx(context.Background(), a, b, op, opt)
	if err != nil {
		panic(err)
	}
	return out, st
}

// ClipPairCtx clips two polygons with the multi-threaded Algorithm 2,
// cooperatively honoring ctx: the slab loop polls cancellation before each
// slab, so after ctx is done no further slab is clipped and ctx.Err() is
// returned. A panic in one slab worker is recovered and returned as a
// *guard.ClipError carrying the offending slab index and the worker stack,
// instead of crashing the process.
//
// When ctx carries a deadline, the budget is split across the sweep stages
// (sort / partition / clip / merge) and each stage runs under a watchdog: a
// stage whose workers do not finish inside its share — a straggler wedged on
// pathological geometry, a hung worker — is abandoned and retried once,
// sequentially, on fresh buffers (Stats.Resilience.StageTimeouts / Retries).
// Only if the retry also fails does a timeout-flavoured *guard.ClipError
// surface, feeding the caller's degradation ladder. The run therefore
// returns within a small factor of the configured deadline even when a
// worker hangs outright.
func ClipPairCtx(ctx context.Context, a, b geom.Polygon, op Op, opt Options) (geom.Polygon, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p := opt.Threads
	if p <= 0 {
		p = par.DefaultParallelism()
	}
	nslabs := opt.Slabs
	if nslabs <= 0 {
		nslabs = p
	}
	st := &Stats{}
	snapEps := snapEpsFor(a, b)

	// Step 1–2: event schedule.
	t0 := time.Now()
	var ys []float64
	err := runStage(ctx, st, "sort", fracSort, p, opt.NoFallback, func(sctx context.Context, pp int) error {
		var out []float64
		if err := par.Run(sctx, func() { out = eventYs(a, b, pp) }); err != nil {
			return err
		}
		ys = out
		return nil
	})
	st.Sort = time.Since(t0)
	if err != nil {
		return nil, st, err
	}
	if len(ys) == 0 {
		out := engineClip(ctx, opt.Engine, a, b, op, snapEps)
		return out, st, ctx.Err()
	}

	bounds := slabBoundaries(ys, nslabs, opt.Partition)
	ns := len(bounds) - 1
	st.Slabs = ns
	if ns <= 1 {
		t1 := time.Now()
		var out geom.Polygon
		err := runStage(ctx, st, "clip", fracClip, p, opt.NoFallback, func(sctx context.Context, _ int) error {
			var o geom.Polygon
			if err := par.Run(sctx, func() { o = engineClip(sctx, opt.Engine, a, b, op, snapEps) }); err != nil {
				return err
			}
			if err := stallIfExpired(sctx); err != nil {
				return err
			}
			out = o
			return nil
		})
		st.Clip = time.Since(t1)
		if err != nil {
			return nil, st, err
		}
		st.PerThread = []time.Duration{st.Clip}
		return out, st, nil
	}

	// Steps 4–5: rectangle-clip both operands into each slab.
	t1 := time.Now()
	var subA, subB []geom.Polygon
	err = runStage(ctx, st, "partition", fracPartition, p, opt.NoFallback, func(sctx context.Context, pp int) error {
		sa := make([]geom.Polygon, ns)
		sb := make([]geom.Polygon, ns)
		err := par.ForEachCtx(sctx, ns, pp, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if canceled(sctx) {
					return
				}
				sa[i] = bandclip.Clip(a, bounds[i], bounds[i+1])
				sb[i] = bandclip.Clip(b, bounds[i], bounds[i+1])
			}
		})
		if err != nil {
			return err
		}
		if err := stallIfExpired(sctx); err != nil {
			return err
		}
		subA, subB = sa, sb
		return nil
	})
	st.Partition = time.Since(t1)
	if err != nil {
		return nil, st, err
	}

	// Step 6: per-slab sequential clipping. Each worker is panic-isolated:
	// the first panic is captured with its slab attribution; the stage retry
	// (or, failing that, the caller's fallback chain) handles it.
	t2 := time.Now()
	var partial []geom.Polygon
	err = runStage(ctx, st, "slab-clip", fracClip, p, opt.NoFallback, func(sctx context.Context, pp int) error {
		pt := make([]geom.Polygon, ns)
		tt := make([]time.Duration, ns)
		var slabErr atomic.Pointer[guard.ClipError]
		err := par.ForEachCtx(sctx, ns, pp, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if canceled(sctx) || slabErr.Load() != nil {
					return
				}
				func(i int) {
					defer func() {
						if r := recover(); r != nil {
							slabErr.CompareAndSwap(nil, guard.FromPanic("slab-clip", i, guard.NoPair, r))
						}
					}()
					guard.Hit("core.slab-clip")
					ts := time.Now()
					pt[i] = engineClip(sctx, opt.Engine, subA[i], subB[i], op, snapEps)
					tt[i] = time.Since(ts)
				}(i)
			}
		})
		if err != nil {
			return err
		}
		if ce := slabErr.Load(); ce != nil {
			return ce
		}
		if err := stallIfExpired(sctx); err != nil {
			return err
		}
		partial = pt
		st.PerThread = tt
		return nil
	})
	st.Clip = time.Since(t2)
	if err != nil {
		return nil, st, err
	}

	// Step 8: merge.
	t3 := time.Now()
	var out geom.Polygon
	err = runStage(ctx, st, "merge", fracMerge, p, opt.NoFallback, func(sctx context.Context, pp int) error {
		var o geom.Polygon
		if err := par.Run(sctx, func() { o = mergePartials(partial, bounds, opt.Merge, snapEps, pp) }); err != nil {
			return err
		}
		out = o
		return nil
	})
	st.Merge = time.Since(t3)
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// eventYs returns the sorted distinct vertex y-coordinates of both operands,
// sorting with parallelism p.
func eventYs(a, b geom.Polygon, p int) []float64 {
	var ys []float64
	for _, poly := range []geom.Polygon{a, b} {
		for _, r := range poly {
			for _, pt := range r {
				ys = append(ys, pt.Y)
			}
		}
	}
	if len(ys) == 0 {
		return nil
	}
	par.Sort(ys, func(x, y float64) bool { return x < y }, p)
	out := ys[:0]
	for i, v := range ys {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// slabBoundaries picks ns+1 boundaries over the sorted event ys.
func slabBoundaries(ys []float64, p int, mode PartitionMode) []float64 {
	lo, hi := ys[0], ys[len(ys)-1]
	if lo == hi || p < 1 {
		return []float64{lo, hi}
	}
	bounds := make([]float64, 0, p+1)
	bounds = append(bounds, lo)
	for i := 1; i < p; i++ {
		var v float64
		if mode == PartitionUniform {
			v = lo + (hi-lo)*float64(i)/float64(p)
		} else {
			v = ys[len(ys)*i/p]
		}
		if v > bounds[len(bounds)-1] && v < hi {
			bounds = append(bounds, v)
		}
	}
	bounds = append(bounds, hi)
	return bounds
}
