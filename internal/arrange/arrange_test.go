package arrange

import (
	"math"
	"testing"

	"polyclip/internal/geom"
	"polyclip/internal/isect"
)

func rect(x0, y0, x1, y1 float64) geom.Ring {
	return geom.Ring{{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1}}
}

func bowtie(cx, cy, w float64) geom.Ring {
	return geom.Ring{
		{X: cx - w, Y: cy - w}, {X: cx + w, Y: cy + w},
		{X: cx + w, Y: cy - w}, {X: cx - w, Y: cy + w},
	}
}

// pentagram returns the {5/2} star polygon on a circle of radius r.
func pentagram(cx, cy, r float64) geom.Ring {
	ring := make(geom.Ring, 0, 5)
	for i := 0; i < 5; i++ {
		a := math.Pi/2 + 2*math.Pi*float64(i*2%5)/5
		ring = append(ring, geom.Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)})
	}
	return ring
}

// pentagramArea is the even-odd measure of a {5/2} pentagram with
// circumradius R: the five tips only — the decagon outline (5·R·r·sin36°,
// alternating outer radius R and inner-pentagon radius r = R·cos72°/cos36°)
// minus the inner pentagon ((5/2)·r²·sin72°), which even-odd excludes
// because the chords wind around it twice.
func pentagramArea(r float64) float64 {
	ri := r * math.Cos(2*math.Pi/5) / math.Cos(math.Pi/5)
	return 5*r*ri*math.Sin(math.Pi/5) - (5.0/2)*ri*ri*math.Sin(2*math.Pi/5)
}

func TestResolveFastPathLeavesSimpleInputAlone(t *testing.T) {
	p := geom.Polygon{rect(0, 0, 4, 4)}
	got := Resolve(p)
	if len(got) != 1 || &got[0][0] != &p[0][0] {
		t.Fatalf("simple polygon should be returned unchanged, got %v", got)
	}
}

func TestResolvePairFastPathSharedVertices(t *testing.T) {
	// Checkerboard cells touch only at shared exact vertices: nothing to
	// split, nothing to re-extract.
	a := geom.Polygon{rect(0, 0, 1, 1), rect(1, 1, 2, 2)}
	b := geom.Polygon{rect(1, 0, 2, 1), rect(0, 1, 1, 2)}
	ra, rb := ResolvePair(a, b)
	if &ra[0][0] != &a[0][0] || &rb[0][0] != &b[0][0] {
		t.Fatalf("vertex-touching operands should be returned unchanged")
	}
}

func TestResolveBowtie(t *testing.T) {
	p := geom.Polygon{bowtie(0, 0, 1)}
	got := Resolve(p)
	// The even-odd region of a bowtie is its two lobe triangles, each of
	// area ½·2·1 = 1.
	if a := got.Area(); math.Abs(a-2) > 1e-9 {
		t.Errorf("bowtie even-odd area = %v, want 2", a)
	}
	if len(got) != 2 {
		t.Errorf("bowtie resolves to %d rings, want 2", len(got))
	}
	for ri, r := range got {
		if !r.IsCCW() {
			t.Errorf("ring %d not CCW: %v", ri, r)
		}
	}
}

func TestResolvePentagram(t *testing.T) {
	p := geom.Polygon{pentagram(0, 0, 10)}
	got := Resolve(p)
	if a, want := got.Area(), pentagramArea(10); math.Abs(a-want) > 1e-6*want {
		t.Errorf("pentagram even-odd area = %v, want %v", a, want)
	}
	// Five tip triangles; adjacent tips share an inner-pentagon vertex but
	// no area, and the interior-left stitch walk separates them there.
	if len(got) != 5 {
		t.Errorf("pentagram resolves to %d rings, want 5", len(got))
	}
}

func TestResolveDuplicatedRingCancels(t *testing.T) {
	// The same ring twice: every boundary edge has even multiplicity, so
	// the even-odd region is empty.
	r := rect(0, 0, 3, 3)
	p := geom.Polygon{r, r.Clone()}
	if got := Resolve(p); len(got) != 0 {
		t.Errorf("doubled ring should resolve to empty, got %v", got)
	}
}

func TestResolveAdjacentRectsShareEdge(t *testing.T) {
	// Two rectangles of one operand sharing the full edge x=1: the shared
	// vertical edge appears twice, cancels, and the region re-extracts as
	// the single fused rectangle.
	p := geom.Polygon{rect(0, 0, 1, 1), rect(1, 0, 2, 1)}
	got := Resolve(p)
	if a := got.Area(); math.Abs(a-2) > 1e-9 {
		t.Errorf("fused area = %v, want 2", a)
	}
	if len(got) != 1 {
		t.Errorf("fused region has %d rings, want 1", len(got))
	}
}

func TestResolvePairSplitsCrossings(t *testing.T) {
	a := geom.Polygon{rect(0, 0, 4, 4)}
	b := geom.Polygon{rect(2, 2, 6, 6)}
	ra, rb := ResolvePair(a, b)
	// The operands cross at (2,4) and (4,2): each ring gains both points.
	for _, want := range []geom.Point{{X: 2, Y: 4}, {X: 4, Y: 2}} {
		for name, p := range map[string]geom.Polygon{"a": ra, "b": rb} {
			found := false
			for _, v := range p[0] {
				if v == want {
					found = true
				}
			}
			if !found {
				t.Errorf("resolved %s is missing crossing vertex %v: %v", name, want, p)
			}
		}
	}
	// Areas are unchanged by splitting.
	if aa := ra.Area(); math.Abs(aa-16) > 1e-9 {
		t.Errorf("resolved a area = %v, want 16", aa)
	}
	// No two edges of the joint arrangement intersect anywhere but at
	// shared exact endpoints anymore.
	assertResolved(t, ra, rb)
}

func TestResolveSelfIntersectionsGone(t *testing.T) {
	for name, p := range map[string]geom.Polygon{
		"bowtie":    {bowtie(1, 2, 3)},
		"pentagram": {pentagram(0, 0, 7)},
	} {
		got := Resolve(p)
		assertResolved(t, got)
		for ri, r := range got {
			if len(r) < 3 {
				t.Errorf("%s: ring %d has %d vertices", name, ri, len(r))
			}
		}
	}
}

// assertResolved fails if any two edges of the given polygons intersect
// anywhere other than a shared exact endpoint.
func assertResolved(t *testing.T, ps ...geom.Polygon) {
	t.Helper()
	var segs []geom.Segment
	for _, p := range ps {
		segs = append(segs, p.Edges()...)
	}
	for _, pr := range isect.BruteForcePairs(segs) {
		si, sj := segs[pr.I], segs[pr.J]
		kind, p0, p1 := geom.SegIntersection(si, sj)
		switch kind {
		case geom.Overlapping:
			t.Errorf("edges %v and %v still overlap (%v..%v)", si, sj, p0, p1)
		case geom.Crossing:
			sharedI := p0 == si.A || p0 == si.B
			sharedJ := p0 == sj.A || p0 == sj.B
			if !sharedI || !sharedJ {
				t.Errorf("edges %v and %v still cross at %v (not a shared endpoint)", si, sj, p0)
			}
		}
	}
}

func TestResolveHugeAndTinyScale(t *testing.T) {
	// The weld grid derives from geom.RelEps of the data extent, so
	// resolution behaves identically at any coordinate scale.
	for _, s := range []float64{1e100, 1, 1e-100} {
		p := geom.Polygon{bowtie(0, 0, s)}
		got := Resolve(p)
		want := 2 * s * s
		if a := got.Area(); math.Abs(a-want) > 1e-9*want {
			t.Errorf("scale %g: area = %v, want %v", s, a, want)
		}
		if len(got) != 2 {
			t.Errorf("scale %g: %d rings, want 2", s, len(got))
		}
	}
}

func TestResolvePairExtremeAspectSliver(t *testing.T) {
	// Fuzz-found: a sliver spanning y up to 1e12 at width 1e-10 beside a
	// unit triangle. The shared weld grid derives from the joint extent
	// (eps = 1 here), which flattens the sliver onto the line x = 0; the
	// collapsed ring must be dropped, not left as coincident vertical edges
	// that break the sweep's parity walk downstream.
	tri := geom.Polygon{{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}}}
	sliver := geom.Polygon{{{X: 0, Y: 0}, {X: 0, Y: 10}, {X: 1e-10, Y: 1e12}}}
	ra, rb := ResolvePair(tri, sliver)
	if a := ra.Area(); math.Abs(a-0.5) > 1e-9 {
		t.Errorf("triangle area after resolution = %v, want 0.5", a)
	}
	if len(rb) != 0 {
		t.Errorf("collapsed sliver should be dropped, got %v", rb)
	}
	assertResolved(t, ra, rb)
}

func TestResolveDegenerateInputs(t *testing.T) {
	if got := Resolve(nil); got != nil {
		t.Errorf("Resolve(nil) = %v", got)
	}
	// Sub-3-vertex rings and zero-length edges pass through untouched.
	p := geom.Polygon{{{X: 0, Y: 0}, {X: 1, Y: 1}}}
	if got := Resolve(p); len(got) != 1 {
		t.Errorf("degenerate ring not passed through: %v", got)
	}
	a, b := ResolvePair(geom.Polygon{rect(0, 0, 1, 1)}, nil)
	if len(a) != 1 || b != nil {
		t.Errorf("ResolvePair with empty operand changed inputs: %v %v", a, b)
	}
}
