package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polyclip/internal/guard"
)

// TestServeChaosSmoke runs concurrent mixed traffic against the server
// while a fault armer cycles panics, hangs and corruptions through the
// serve and engine guard sites. The contract: zero crashes, every request
// gets an HTTP answer, every non-2xx answer is structured JSON, every shed
// answer carries Retry-After, and tail latency stays bounded by the
// request deadline. Fixed seed; SERVE_CHAOS_MS stretches the run (check.sh
// uses 5000).
func TestServeChaosSmoke(t *testing.T) {
	dur := 1200 * time.Millisecond
	if ms, err := strconv.Atoi(os.Getenv("SERVE_CHAOS_MS")); err == nil && ms > 0 {
		dur = time.Duration(ms) * time.Millisecond
	}
	const seed = 42

	s := NewServer(Config{
		BatchSize:           4,
		MaxWait:             time.Millisecond,
		QueueDepth:          8,
		MaxConcurrent:       2,
		DegradedConcurrency: 1,
		DegradedHold:        100 * time.Millisecond,
		RequestTimeout:      time.Second,
		MaxRetries:          2,
		RetryBase:           time.Millisecond,
		Threads:             2,
		Seed:                seed,
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		s.Close()
	}()
	defer guard.ClearFaults()

	stop := make(chan struct{})
	var armed atomic.Int64

	// Fault armer: a fresh one-shot fault every 40ms, cycling the plan table.
	var armerWG sync.WaitGroup
	armerWG.Add(1)
	go func() {
		defer armerWG.Done()
		tick := time.NewTicker(40 * time.Millisecond)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-tick.C:
				armCycleFault(i)
				armed.Add(1)
			}
		}
	}()

	bodies := [][]byte{
		clipBody(sqA, sqB, "intersection", nil),
		clipBody(sqA, sqB, "union", map[string]any{"algorithm": "slabs"}),
		clipBody(sqA, sqB, "xor", map[string]any{"algorithm": "scanbeam"}),
		clipBody(sqA, sqB, "difference", map[string]any{"algorithm": "sequential"}),
		clipBody(sqA, sqB, "union", map[string]any{"rule": "nonzero"}),
		[]byte(`{"subject":"POLYGON ((0 0, 1 1","clip":"POLYGON EMPTY","op":"union"}`), // bad WKT
		[]byte(`junk body`), // malformed JSON
	}

	type tally struct {
		total, ok, cli, shed, srv int64
		badBody, shedNoRA         int64
	}
	var tl tally
	var wg sync.WaitGroup
	const clients = 4
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(c)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				body := bodies[rng.Intn(len(bodies))]
				resp, err := http.Post(ts.URL+"/clip", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("transport error (request dropped without an HTTP answer): %v", err)
					return
				}
				var buf bytes.Buffer
				_, _ = buf.ReadFrom(resp.Body)
				resp.Body.Close()
				atomic.AddInt64(&tl.total, 1)
				switch {
				case resp.StatusCode == http.StatusOK:
					atomic.AddInt64(&tl.ok, 1)
				case resp.StatusCode == http.StatusServiceUnavailable:
					atomic.AddInt64(&tl.shed, 1)
					if resp.Header.Get("Retry-After") == "" {
						atomic.AddInt64(&tl.shedNoRA, 1)
					}
				case resp.StatusCode >= 400 && resp.StatusCode < 500:
					atomic.AddInt64(&tl.cli, 1)
				default:
					atomic.AddInt64(&tl.srv, 1)
				}
				if resp.StatusCode != http.StatusOK {
					var er ErrorResponse
					if json.Unmarshal(buf.Bytes(), &er) != nil || er.Code == "" {
						atomic.AddInt64(&tl.badBody, 1)
					}
				}
			}
		}(c)
	}

	time.Sleep(dur)
	close(stop)
	wg.Wait()
	armerWG.Wait()

	st := s.Statz()
	t.Logf("chaos smoke: %d requests (ok=%d 4xx=%d shed=%d 5xx=%d), %d faults armed, statz=%s",
		tl.total, tl.ok, tl.cli, tl.shed, tl.srv, armed.Load(), st)

	if tl.total == 0 {
		t.Fatal("no requests completed")
	}
	if tl.ok == 0 {
		t.Error("no request succeeded under chaos")
	}
	if armed.Load() == 0 {
		t.Error("no faults were armed")
	}
	if tl.shedNoRA != 0 {
		t.Errorf("%d shed responses missing Retry-After", tl.shedNoRA)
	}
	if tl.badBody != 0 {
		t.Errorf("%d non-2xx responses without structured JSON body", tl.badBody)
	}
	// Tail latency must stay bounded by the deadline budget (plus encode
	// slack) even while faults cycle.
	if st.P99Ms > 3000 {
		t.Errorf("p99 %.1fms exceeds the bounded-tail contract", st.P99Ms)
	}
}
