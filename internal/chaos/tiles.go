// Vector-tile chaos family. A tiles workload is a layer (operand A) plus a
// pyramid extent window (operand B, a CCW rectangle ring); instead of the
// pairwise boolean invariants, the check cuts the layer into a z/x/y
// pyramid through internal/tile and holds the cut to the measure-theoretic
// contract that makes tiling correct at all: the tiles at every zoom are a
// partition of the layer clipped to the pyramid extent, so their areas must
// sum to |layer ∩ extent| — computed independently through the full
// hardened clip pipeline (which is also where injected faults land).
package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"polyclip"
	"polyclip/internal/tile"
)

// tileRuleCycle maps the workload's op slot (i / len(gens) % 4) onto a fill
// rule, so a long chaos run exercises the tile cutter under every rule.
var tileRuleCycle = []polyclip.FillRule{
	polyclip.EvenOdd, polyclip.NonZero, polyclip.Positive, polyclip.Negative,
}

// genTilesRings is the clean tiles baseline: a handful of scattered star
// rings (some self-intersecting, some holed) inside a [0,32]^2 extent.
func genTilesRings(rng *rand.Rand) (polyclip.Polygon, polyclip.Polygon) {
	n := 4 + rng.Intn(5)
	var layer polyclip.Polygon
	for i := 0; i < n; i++ {
		cx, cy := 3+26*rng.Float64(), 3+26*rng.Float64()
		r := 1.5 + 2.5*rng.Float64()
		k := 5 + rng.Intn(8)
		layer = append(layer, star(cx, cy, r, r*(0.5+0.45*rng.Float64()), k, rng.Float64()))
		if rng.Intn(3) == 0 {
			hole := star(cx, cy, r*0.4, r*0.35, k, rng.Float64())
			reverseRing(hole)
			layer = append(layer, hole)
		}
	}
	return layer, polyclip.Polygon{rectRing(0, 0, 32, 32, false)}
}

// genTilesWinding builds layers whose region depends on the fill rule:
// overlapping same-winding rectangles (winding 2), a sometimes-reversed
// ring (winding -1), and a bowtie whose lobes cancel under shoelace.
func genTilesWinding(rng *rand.Rand) (polyclip.Polygon, polyclip.Polygon) {
	layer := polyclip.Polygon{
		rectRing(1, 1, 9, 9, false),
		rectRing(float64(4+rng.Intn(3)), float64(4+rng.Intn(3)), 13, 13, false),
		rectRing(2, 10, 7, 15, rng.Intn(2) == 0),
	}
	cx, cy := 10+4*rng.Float64(), 2+3*rng.Float64()
	layer = append(layer, polyclip.Ring{
		{X: cx - 2, Y: cy - 2}, {X: cx + 2, Y: cy + 2},
		{X: cx + 2, Y: cy - 2}, {X: cx - 2, Y: cy + 2},
	})
	return layer, polyclip.Polygon{rectRing(0, 0, 16, 16, false)}
}

// genTilesAligned constructs the degenerate tiling case exactly: every ring
// coordinate is an even integer inside a [0,16]^2 extent, so at the deepest
// checked zoom (tile width 2) every ring edge is collinear with a tile
// boundary and every ring corner lands on a tile corner.
func genTilesAligned(rng *rand.Rand) (polyclip.Polygon, polyclip.Polygon) {
	n := 3 + rng.Intn(4)
	var layer polyclip.Polygon
	for i := 0; i < n; i++ {
		x0 := float64(2 * rng.Intn(6))
		y0 := float64(2 * rng.Intn(6))
		w := float64(2 * (1 + rng.Intn(3)))
		h := float64(2 * (1 + rng.Intn(3)))
		layer = append(layer, rectRing(x0, y0, x0+w, y0+h, false))
	}
	// A square with a flush grid-aligned hole: the hole boundary coincides
	// with interior tile boundaries too.
	layer = append(layer, rectRing(4, 4, 12, 12, false), rectRing(6, 6, 10, 10, true))
	return layer, polyclip.Polygon{rectRing(0, 0, 16, 16, false)}
}

// reverseRing flips a ring's winding in place.
func reverseRing(r polyclip.Ring) {
	for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
		r[i], r[j] = r[j], r[i]
	}
}

// checkTiles runs the tiles invariant suite for one workload (dispatched
// from checkCase by the "tiles-" name prefix).
func (e *engine) checkTiles(ci int, w workload) {
	layer, window := w.a, w.b
	rule := tileRuleCycle[int(w.op)%len(tileRuleCycle)]
	ext := window.BBox()
	spec := tile.Spec{MinZoom: 0, MaxZoom: 3, Extent: ext}

	// Reference measure |layer ∩ extent| through the full hardened clip
	// pipeline — under -faults, this is the clip the armed guard sites can
	// hit. The sweep applies the fill rule to each operand separately, so a
	// CCW window reads as empty under Negative; flip it, exactly as the
	// prepared package's naive baseline does.
	rect := window
	if rule == polyclip.Negative {
		rev := append(polyclip.Ring(nil), window[0]...)
		reverseRing(rev)
		rect = polyclip.Polygon{rev}
	}
	ref, okRef := e.areaOf(ci, w, layer, rect, polyclip.Intersection,
		polyclip.Options{Threads: e.cfg.Threads, Rule: rule})
	if !okRef {
		return
	}
	scale := ext.Width() * ext.Height()

	prep, okPrep := e.cutTiles(ci, w, layer, spec, rule, e.cfg.Threads, false)
	if okPrep {
		// The partition invariant, per zoom: tiles at zoom z cover exactly
		// the clipped layer, overlapping only on measure-zero boundaries.
		for z := spec.MinZoom; z <= spec.MaxZoom; z++ {
			e.check(ci, w, fmt.Sprintf("tiles-cover-z%d", z), zoomArea(prep, z), ref, scale)
		}
	}

	// The naive per-tile full-clip baseline must agree tile by tile: same
	// keys, same per-zoom measure.
	if naive, ok := e.cutTiles(ci, w, layer, spec, rule, e.cfg.Threads, true); ok && okPrep {
		e.rep.InvariantChecks++
		if pk, nk := tileKeys(prep), tileKeys(naive); pk != nk {
			e.rep.InvariantFailures++
			e.record(ci, w.name, "tiles-naive-keys",
				fmt.Sprintf("prepared emitted %q, naive %q", pk, nk))
		}
		for z := spec.MinZoom; z <= spec.MaxZoom; z++ {
			e.check(ci, w, fmt.Sprintf("tiles-naive-z%d", z), zoomArea(naive, z), zoomArea(prep, z), scale)
		}
	}

	// Thread determinism: a single-threaded cut must be bit-identical to
	// the parallel one, coordinates included.
	if one, ok := e.cutTiles(ci, w, layer, spec, rule, 1, false); ok && okPrep {
		e.rep.InvariantChecks++
		if tilesText(one) != tilesText(prep) {
			e.rep.InvariantFailures++
			e.record(ci, w.name, "tiles-determinism",
				fmt.Sprintf("threads=1 cut differs from threads=%d", e.cfg.Threads))
		}
	}
}

// cutTiles runs one pyramid cut under the run budget, classifying any error
// the same way e.clip does for pairwise clips.
func (e *engine) cutTiles(ci int, w workload, layer polyclip.Polygon, spec tile.Spec, rule polyclip.FillRule, threads int, naive bool) ([]tile.Tile, bool) {
	e.rep.Clips++
	ctx := context.Background()
	if e.cfg.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.Budget)
		defer cancel()
	}
	out, _, err := tile.Cut(ctx, layer, spec, tile.Options{Rule: rule, Threads: threads, Naive: naive})
	if err != nil {
		if structuredErr(err) {
			e.rep.StructuredErrors++
		} else {
			e.rep.UnstructuredErrors++
			e.record(ci, w.name, "unstructured-error", err.Error())
		}
		return nil, false
	}
	return out, true
}

// zoomArea sums the (canonical, hole-aware) shoelace areas of the tiles at
// one zoom level.
func zoomArea(ts []tile.Tile, z int) float64 {
	var s float64
	for _, t := range ts {
		if t.Z == z {
			s += polyclip.Area(t.Poly)
		}
	}
	return s
}

// tileKeys renders the emitted z/x/y key sequence, order included.
func tileKeys(ts []tile.Tile) string {
	var sb strings.Builder
	for _, t := range ts {
		fmt.Fprintf(&sb, "%d/%d/%d ", t.Z, t.X, t.Y)
	}
	return sb.String()
}

// tilesText renders keys plus full coordinate text, so any bitwise output
// difference between two cuts shows up.
func tilesText(ts []tile.Tile) string {
	var sb strings.Builder
	for _, t := range ts {
		fmt.Fprintf(&sb, "%d/%d/%d:%s;", t.Z, t.X, t.Y, polyclip.FormatWKT(t.Poly))
	}
	return sb.String()
}
