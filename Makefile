FUZZTIME ?= 10s
FUZZ_TARGETS := FuzzParseWKT FuzzParseGeoJSON FuzzClipRoundTrip

.PHONY: check build vet test race fuzz

check: vet build test race fuzz

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Each native fuzz target gets a short smoke run; raise FUZZTIME for real
# fuzzing sessions (e.g. make fuzz FUZZTIME=10m).
fuzz:
	@for t in $(FUZZ_TARGETS); do \
		echo "fuzz $$t ($(FUZZTIME))"; \
		go test -run='^$$' -fuzz="^$$t$$" -fuzztime=$(FUZZTIME) . || exit 1; \
	done
