package data

import (
	"testing"

	"polyclip/internal/geom"
)

func TestFeaturesDeterministicAndSized(t *testing.T) {
	opt := FeatureOptions{N: 500, Dist: "mixed", RepeatFrac: 0.3, Seed: 7}
	a := Features(opt)
	b := Features(opt)
	if len(a) != 500 {
		t.Fatalf("got %d features, want 500", len(a))
	}
	for i := range a {
		if geom.Hash(a[i]) != geom.Hash(b[i]) {
			t.Fatalf("feature %d differs across equal-seed runs", i)
		}
	}
	for i, f := range a {
		if err := f.Validate(); err != nil {
			t.Fatalf("feature %d invalid: %v", i, err)
		}
	}
}

func TestFeaturesRepeatFraction(t *testing.T) {
	fs := Features(FeatureOptions{N: 2000, RepeatFrac: 0.5, Seed: 3})
	distinct := map[geom.Digest]bool{}
	for _, f := range fs {
		distinct[geom.Hash(f)] = true
	}
	// ~50% repeats: distinct count should land well under N and well above
	// the pathological extremes.
	if n := len(distinct); n < 800 || n > 1300 {
		t.Fatalf("distinct=%d of 2000, want ~1000", n)
	}
	uniq := Features(FeatureOptions{N: 2000, RepeatFrac: 0, Seed: 3})
	distinct = map[geom.Digest]bool{}
	for _, f := range uniq {
		distinct[geom.Hash(f)] = true
	}
	if len(distinct) != 2000 {
		t.Fatalf("RepeatFrac=0 produced %d distinct of 2000", len(distinct))
	}
}

func TestFeaturesDistributions(t *testing.T) {
	for _, dist := range []string{"uniform", "clustered", "mixed"} {
		fs := Features(FeatureOptions{N: 300, Dist: dist, Seed: 11})
		if len(fs) != 300 {
			t.Fatalf("%s: got %d features", dist, len(fs))
		}
		box := geom.EmptyBBox()
		for _, f := range fs {
			b := f.BBox()
			box = box.Union(b)
			if b.Width() <= 0 || b.Height() <= 0 {
				t.Fatalf("%s: degenerate feature bbox", dist)
			}
		}
		if box.Width() <= 0 || box.Height() <= 0 {
			t.Fatalf("%s: degenerate layer extent", dist)
		}
	}
}

func TestFeaturesDefaults(t *testing.T) {
	fs := Features(FeatureOptions{})
	if len(fs) != 1000 {
		t.Fatalf("default N: got %d, want 1000", len(fs))
	}
	if len(fs[0][0]) != 6 {
		t.Fatalf("default edges: got %d, want 6", len(fs[0][0]))
	}
}
