package engine

import "polyclip/internal/geom"

// Trapezoid is one piece of the clipped region inside a single scanbeam:
// the area between scanlines Y1 < Y2, bounded left and right by two
// non-crossing edges. L1,R1 are the corners on the bottom scanline, L2,R2 on
// the top; it degenerates to a triangle when two corners coincide.
type Trapezoid struct {
	L1, R1, L2, R2 geom.Point
}

// Ring returns the trapezoid boundary as a counter-clockwise ring.
func (tz Trapezoid) Ring() geom.Ring {
	r := geom.Ring{tz.L1}
	for _, p := range []geom.Point{tz.R1, tz.R2, tz.L2} {
		if p != r[len(r)-1] && p != r[0] {
			r = append(r, p)
		}
	}
	return r
}

// Area returns the trapezoid area.
func (tz Trapezoid) Area() float64 {
	return tz.Ring().Area()
}
