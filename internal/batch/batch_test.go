package batch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"polyclip/internal/acache"
	"polyclip/internal/core"
	"polyclip/internal/data"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/guard"
	"polyclip/internal/wkt"
)

// testLayers synthesizes two overlapping feature layers with repeats.
func testLayers(n int, repeat float64) (a, b []geom.Polygon) {
	a = data.Features(data.FeatureOptions{N: n, Dist: "mixed", RepeatFrac: repeat, Seed: 41})
	b = data.Features(data.FeatureOptions{N: n, Dist: "mixed", RepeatFrac: repeat, Seed: 42})
	return a, b
}

// render serializes an output list canonically for bit-identity comparison.
func render(outs []Output) string {
	var sb strings.Builder
	for _, o := range outs {
		fmt.Fprintf(&sb, "%d|%d|%s\n", o.A, o.B, wkt.Marshal(o.Poly))
	}
	return sb.String()
}

// TestOverlayMatchesCoreLayers pins the batch path against the existing
// layer overlay: same candidate pairs, same per-pair engine, so the output
// multisets must match exactly.
func TestOverlayMatchesCoreLayers(t *testing.T) {
	a, b := testLayers(300, 0)
	outs, st, err := Overlay(context.Background(), a, b, engine.Intersection,
		Options{Cache: acache.New(1 << 20), Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.CandidatePairs == 0 || st.Outputs == 0 {
		t.Fatalf("degenerate workload: %+v", st)
	}
	ref, _, err := core.ClipLayersCtx(context.Background(), a, b, engine.Intersection,
		core.Options{Engine: engine.MustGet("vatti"), Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(outs))
	for i, o := range outs {
		got[i] = wkt.Marshal(o.Poly)
	}
	want := make([]string, len(ref))
	for i, p := range ref {
		want[i] = wkt.Marshal(p)
	}
	sort.Strings(got)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("batch produced %d outputs, core %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("output %d differs:\nbatch: %s\ncore:  %s", i, got[i], want[i])
		}
	}
}

// TestOverlayDeterminism is the PR's determinism pin: bit-identical output
// at threads 1/2/8 and under shuffled bucket processing order, cache on and
// off.
func TestOverlayDeterminism(t *testing.T) {
	a, b := testLayers(400, 0.4)
	const buckets = 9 // 3x3 grid
	var want string
	for _, cached := range []bool{true, false} {
		for _, threads := range []int{1, 2, 8} {
			for trial := 0; trial < 2; trial++ {
				opt := Options{Threads: threads, Buckets: buckets, NoCache: !cached}
				if cached {
					opt.Cache = acache.New(4 << 20)
				}
				if trial == 1 {
					opt.bucketOrder = rand.New(rand.NewSource(int64(threads))).Perm(buckets)
				}
				outs, _, err := Overlay(context.Background(), a, b, engine.Intersection, opt)
				if err != nil {
					t.Fatal(err)
				}
				got := render(outs)
				if want == "" {
					want = got
					continue
				}
				if got != want {
					t.Fatalf("output differs at threads=%d shuffled=%v cached=%v",
						threads, trial == 1, cached)
				}
			}
		}
	}
}

// TestOverlayCacheHits checks the cache actually fires on repeated operands
// and that a warm second run is all hits.
func TestOverlayCacheHits(t *testing.T) {
	a, b := testLayers(400, 0.5)
	c := acache.New(16 << 20)
	_, st1, err := Overlay(context.Background(), a, b, engine.Intersection,
		Options{Cache: c, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st1.Cache.Hits == 0 {
		t.Fatalf("no cache hits despite 50%% repeated operands: %+v", st1.Cache)
	}
	_, st2, err := Overlay(context.Background(), a, b, engine.Intersection,
		Options{Cache: c, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Cache.Misses != 0 {
		t.Fatalf("warm run missed %d times", st2.Cache.Misses)
	}
	if got := st2.Cache.HitRate(); got != 1 {
		t.Fatalf("warm hit rate %v, want 1", got)
	}
}

func TestOverlayOps(t *testing.T) {
	a, b := testLayers(60, 0)
	for _, op := range engine.Ops() {
		outs, _, err := Overlay(context.Background(), a, b, op,
			Options{NoCache: true, Threads: 2})
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		// Union/xor of overlapping pairs always produce output.
		if (op == engine.Union || op == engine.Xor) && len(outs) == 0 {
			t.Fatalf("%v produced no outputs", op)
		}
	}
}

func TestOverlayValidation(t *testing.T) {
	a, b := testLayers(4, 0)
	if _, _, err := Overlay(context.Background(), a, b, engine.Intersection,
		Options{Engine: "no-such-engine"}); !errors.Is(err, engine.ErrUnsupported) {
		t.Fatalf("unknown engine: %v", err)
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Overlay(cancelled, a, b, engine.Intersection, Options{NoCache: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: %v", err)
	}
	outs, st, err := Overlay(context.Background(), nil, b, engine.Intersection, Options{NoCache: true})
	if err != nil || len(outs) != 0 || st.CandidatePairs != 0 {
		t.Fatalf("empty layer: %v %v %+v", outs, err, st)
	}
}

// panicEngine always panics: the rescue fixture.
type panicEngine struct{}

func (panicEngine) Name() string { return "batch-test-panic" }
func (panicEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{Rules: engine.AllRules(), SlabHostable: true}
}
func (panicEngine) Clip(context.Context, geom.Polygon, geom.Polygon, engine.Op, engine.Options) (engine.Result, error) {
	panic("batch-test-panic engine always panics")
}

func init() { engine.Register(panicEngine{}) }

// TestOverlayPanicRescue: a panicking primary engine is rescued per pair by
// the alternate slab-hostable engine; with NoFallback the ClipError
// surfaces, naming the pair.
func TestOverlayPanicRescue(t *testing.T) {
	a, b := testLayers(40, 0)
	outs, st, err := Overlay(context.Background(), a, b, engine.Intersection,
		Options{Engine: "batch-test-panic", NoCache: true, Threads: 2})
	if err != nil {
		t.Fatalf("rescue failed: %v", err)
	}
	if st.Rescued == 0 || st.Rescued != st.CandidatePairs {
		t.Fatalf("rescued %d of %d pairs", st.Rescued, st.CandidatePairs)
	}
	ref, _, err := Overlay(context.Background(), a, b, engine.Intersection,
		Options{NoCache: true, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The rescue engine is registry-chosen; compare area, not bytes.
	var got, want float64
	for _, o := range outs {
		got += o.Poly.Area()
	}
	for _, o := range ref {
		want += o.Poly.Area()
	}
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("rescued area %v != reference %v", got, want)
	}

	_, _, err = Overlay(context.Background(), a, b, engine.Intersection,
		Options{Engine: "batch-test-panic", NoCache: true, NoFallback: true})
	var ce *guard.ClipError
	if !errors.As(err, &ce) {
		t.Fatalf("NoFallback: want *guard.ClipError, got %v", err)
	}
	if ce.Pair == guard.NoPair {
		t.Fatal("ClipError does not name the pair")
	}
}

func TestReadFeaturesWKT(t *testing.T) {
	in := "POLYGON ((0 0, 2 0, 2 2, 0 2))\n\n  MULTIPOLYGON (((4 4, 5 4, 5 5)), ((6 6, 7 6, 7 7)))\n"
	fs, err := ReadFeatures(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 || len(fs[1]) != 2 {
		t.Fatalf("got %d features (feature 1: %d rings)", len(fs), len(fs[1]))
	}
	if _, err := ReadFeatures(strings.NewReader("POLYGON ((bogus))\n")); err == nil ||
		!strings.Contains(err.Error(), "line 1") {
		t.Fatalf("bad WKT: %v", err)
	}
}

func TestReadFeaturesGeoJSON(t *testing.T) {
	fc := `  {"type":"FeatureCollection","features":[
		{"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[0,0],[2,0],[2,2],[0,2],[0,0]]]}}]}`
	fs, err := ReadFeatures(strings.NewReader(fc))
	if err != nil || len(fs) != 1 {
		t.Fatalf("FeatureCollection: %v (%d features)", err, len(fs))
	}
	nd := `{"type":"Polygon","coordinates":[[[0,0],[1,0],[1,1],[0,0]]]}
{"type":"Polygon","coordinates":[[[3,3],[4,3],[4,4],[3,3]]]}`
	fs, err = ReadFeatures(strings.NewReader(nd))
	if err != nil || len(fs) != 2 {
		t.Fatalf("ndjson: %v (%d features)", err, len(fs))
	}
	fs, err = ReadFeatures(strings.NewReader("  \n\t "))
	if err != nil || len(fs) != 0 {
		t.Fatalf("blank input: %v (%d features)", err, len(fs))
	}
}

// TestOverlayFromStreams wires ReadFeatures into Overlay end to end.
func TestOverlayFromStreams(t *testing.T) {
	a := "POLYGON ((0 0, 4 0, 4 4, 0 4))\n"
	b := "POLYGON ((2 2, 6 2, 6 6, 2 6))\n"
	fa, err := ReadFeatures(strings.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := ReadFeatures(strings.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	outs, _, err := Overlay(context.Background(), fa, fb, engine.Intersection, Options{NoCache: true})
	if err != nil || len(outs) != 1 {
		t.Fatalf("%v (%d outputs)", err, len(outs))
	}
	if area := outs[0].Poly.Area(); area < 3.99 || area > 4.01 {
		t.Fatalf("intersection area %v, want 4", area)
	}
}
