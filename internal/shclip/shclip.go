// Package shclip implements the two classic rectangle/convex-window clipping
// algorithms the paper cites as the non-general baselines its algorithm
// improves on (§II-B): Sutherland–Hodgman polygon clipping against a convex
// window, and Liang–Barsky parametric line clipping against an axis-aligned
// rectangle. Neither handles arbitrary clip polygons — that limitation is
// the paper's motivation — but both are fast primitives for viewport
// clipping and for the slab partitioning of Algorithm 2.
package shclip

import "polyclip/internal/geom"

// SutherlandHodgman clips a subject ring against a convex clip ring
// (counter-clockwise) and returns the clipped ring. Concave subjects are
// supported; the output may contain collinear bridge edges where the subject
// leaves and re-enters the window, as is inherent to the algorithm.
func SutherlandHodgman(subject geom.Ring, convexClip geom.Ring) geom.Ring {
	out := subject.Clone()
	n := len(convexClip)
	for i := 0; i < n && len(out) > 0; i++ {
		a := convexClip[i]
		b := convexClip[(i+1)%n]
		out = clipAgainstLine(out, a, b)
	}
	return out
}

// clipAgainstLine keeps the part of the ring on the left of the directed
// line a->b.
func clipAgainstLine(in geom.Ring, a, b geom.Point) geom.Ring {
	var out geom.Ring
	n := len(in)
	if n == 0 {
		return nil
	}
	prev := in[n-1]
	prevIn := geom.Orient(a, b, prev) >= 0
	for _, cur := range in {
		curIn := geom.Orient(a, b, cur) >= 0
		if curIn != prevIn {
			out = append(out, lineSegIntersect(a, b, prev, cur))
		}
		if curIn {
			out = append(out, cur)
		}
		prev, prevIn = cur, curIn
	}
	return out
}

// lineSegIntersect intersects the infinite line a->b with segment p->q.
func lineSegIntersect(a, b, p, q geom.Point) geom.Point {
	d := b.Sub(a)
	e := q.Sub(p)
	denom := d.Cross(e)
	if denom == 0 {
		return p
	}
	t := p.Sub(a).Cross(d) / denom
	return geom.Point{X: p.X + t*e.X, Y: p.Y + t*e.Y}
}

// ClipToRect clips a ring to an axis-aligned rectangle with
// Sutherland–Hodgman.
func ClipToRect(subject geom.Ring, box geom.BBox) geom.Ring {
	clip := geom.Rect(box.MinX, box.MinY, box.MaxX, box.MaxY)
	return SutherlandHodgman(subject, clip)
}

// LiangBarsky clips the segment to an axis-aligned rectangle. It returns the
// clipped segment and true, or false when the segment lies entirely outside.
func LiangBarsky(s geom.Segment, box geom.BBox) (geom.Segment, bool) {
	dx := s.B.X - s.A.X
	dy := s.B.Y - s.A.Y
	t0, t1 := 0.0, 1.0

	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0
		}
		r := q / p
		if p < 0 {
			if r > t1 {
				return false
			}
			if r > t0 {
				t0 = r
			}
		} else {
			if r < t0 {
				return false
			}
			if r < t1 {
				t1 = r
			}
		}
		return true
	}

	if clip(-dx, s.A.X-box.MinX) &&
		clip(dx, box.MaxX-s.A.X) &&
		clip(-dy, s.A.Y-box.MinY) &&
		clip(dy, box.MaxY-s.A.Y) {
		return geom.Segment{
			A: geom.Point{X: s.A.X + t0*dx, Y: s.A.Y + t0*dy},
			B: geom.Point{X: s.A.X + t1*dx, Y: s.A.Y + t1*dy},
		}, true
	}
	return geom.Segment{}, false
}
