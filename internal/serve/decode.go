package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"

	"polyclip"
	"polyclip/internal/geojson"
	"polyclip/internal/geom"
	"polyclip/internal/tile"
	"polyclip/internal/wkt"
)

// ClipRequest is the wire form of one clipping request. The operands are
// either JSON strings holding WKT or inline GeoJSON geometry/Feature
// objects; the two forms can be mixed freely.
type ClipRequest struct {
	Subject   json.RawMessage `json:"subject"`
	Clip      json.RawMessage `json:"clip"`
	Op        string          `json:"op"`
	Rule      string          `json:"rule,omitempty"`      // "" | "evenodd" | "nonzero" | "positive" | "negative"
	Algorithm string          `json:"algorithm,omitempty"` // "" | "overlay" | "slabs" | "scanbeam" | "sequential"
}

// ClipResponse is the wire form of a successful clip: the result as a
// GeoJSON geometry plus the engine attribution and resilience trail the
// metrics pipeline records.
type ClipResponse struct {
	Result   json.RawMessage `json:"result"`
	Engine   string          `json:"engine,omitempty"`
	Degraded bool            `json:"degraded,omitempty"`
	Attempts []string        `json:"attempts,omitempty"`
	Stats    *polyclip.Stats `json:"stats,omitempty"`
}

// ErrorResponse is the wire form of every non-2xx answer: a stable machine
// code, a human message, and — for parse failures — the byte offset and
// offending token so clients can pinpoint the problem in their payload.
type ErrorResponse struct {
	Code              string `json:"code"`
	Error             string `json:"error"`
	Field             string `json:"field,omitempty"`  // "subject" / "clip" for operand errors
	Offset            int64  `json:"offset,omitempty"` // byte offset into the operand, when known
	Token             string `json:"token,omitempty"`  // offending token, when known
	RetryAfterSeconds int    `json:"retryAfterSeconds,omitempty"`
}

// httpError is an error already mapped to an HTTP answer.
type httpError struct {
	status int
	body   ErrorResponse
}

func (e *httpError) Error() string { return e.body.Error }

func httpErrorf(status int, code, format string, args ...any) *httpError {
	return &httpError{status: status, body: ErrorResponse{Code: code, Error: fmt.Sprintf(format, args...)}}
}

// parsedRequest is a decoded, validated request ready to enqueue: a clip
// (the default) or — when tileSpec is non-nil — a tile-cutting job, where
// subject holds the layer and op/clip are unused. Both kinds ride the same
// admission queue, batcher, and degraded/shed machinery.
type parsedRequest struct {
	subject, clip polyclip.Polygon
	op            polyclip.Op
	rule          polyclip.FillRule
	algo          polyclip.Algorithm
	opName        string
	algoName      string

	tileSpec  *tile.Spec
	tileNaive bool
}

// decodeRequest turns an HTTP request into a validated clip job, mapping
// every failure mode to a typed 4xx: wrong method and content type, bodies
// over the limit, malformed JSON (with the decoder's byte offset), unknown
// op/rule/algorithm values, and operand parse errors carrying the
// position context of the WKT/GeoJSON parsers.
func decodeRequest(w http.ResponseWriter, r *http.Request, maxBody int64) (*parsedRequest, *httpError) {
	body, he := readBody(w, r, maxBody)
	if he != nil {
		return nil, he
	}
	var req ClipRequest
	if he := unmarshalBody(body, &req); he != nil {
		return nil, he
	}

	out := &parsedRequest{opName: strings.ToLower(req.Op)}
	switch out.opName {
	case "intersection":
		out.op = polyclip.Intersection
	case "union":
		out.op = polyclip.Union
	case "difference":
		out.op = polyclip.Difference
	case "xor":
		out.op = polyclip.Xor
	default:
		return nil, httpErrorf(http.StatusBadRequest, "unknown-op",
			"op %q is not one of intersection, union, difference, xor", req.Op)
	}
	rule, he := parseRule(req.Rule)
	if he != nil {
		return nil, he
	}
	out.rule = rule
	out.algoName = strings.ToLower(req.Algorithm)
	switch out.algoName {
	case "", "overlay":
		out.algo, out.algoName = polyclip.AlgoOverlay, "overlay"
	case "slabs":
		out.algo = polyclip.AlgoSlabs
	case "scanbeam":
		out.algo = polyclip.AlgoScanbeam
	case "sequential":
		out.algo = polyclip.AlgoSequential
	default:
		return nil, httpErrorf(http.StatusBadRequest, "unknown-algorithm",
			"algorithm %q is not one of overlay, slabs, scanbeam, sequential", req.Algorithm)
	}

	var err error
	if out.subject, err = parseOperand(req.Subject); err != nil {
		return nil, operandError("subject", err)
	}
	if out.clip, err = parseOperand(req.Clip); err != nil {
		return nil, operandError("clip", err)
	}
	return out, nil
}

// readBody enforces the content type and size limit and slurps the body.
func readBody(w http.ResponseWriter, r *http.Request, maxBody int64) ([]byte, *httpError) {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || (mt != "application/json" && mt != "application/geo+json" && mt != "text/json") {
			return nil, httpErrorf(http.StatusUnsupportedMediaType, "unsupported-content-type",
				"content type %q is not supported; send application/json", ct)
		}
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, httpErrorf(http.StatusRequestEntityTooLarge, "body-too-large",
				"request body exceeds the %d byte limit", mbe.Limit)
		}
		return nil, httpErrorf(http.StatusBadRequest, "body-read", "reading request body: %v", err)
	}
	return body, nil
}

// unmarshalBody decodes the JSON envelope, mapping failures to a 400 with
// the decoder's byte offset.
func unmarshalBody(body []byte, v any) *httpError {
	err := json.Unmarshal(body, v)
	if err == nil {
		return nil
	}
	he := httpErrorf(http.StatusBadRequest, "malformed-json", "malformed request body: %v", err)
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		he.body.Offset = syn.Offset
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		he.body.Offset = typ.Offset
		he.body.Token = typ.Field
	}
	return he
}

// parseRule maps the wire rule name to the engine rule.
func parseRule(s string) (polyclip.FillRule, *httpError) {
	switch strings.ToLower(s) {
	case "", "evenodd":
		return polyclip.EvenOdd, nil
	case "nonzero":
		return polyclip.NonZero, nil
	case "positive":
		return polyclip.Positive, nil
	case "negative":
		return polyclip.Negative, nil
	default:
		return 0, httpErrorf(http.StatusBadRequest, "unknown-rule",
			"rule %q is not one of evenodd, nonzero, positive, negative", s)
	}
}

// TileRequest is the wire form of one tile-cutting request: a layer plus a
// pyramid spec. When extent is omitted the pyramid covers the padded square
// around the layer's bounding box.
type TileRequest struct {
	Layer   json.RawMessage `json:"layer"`
	MinZoom int             `json:"minZoom"`
	MaxZoom int             `json:"maxZoom"`
	Extent  []float64       `json:"extent,omitempty"` // [minX, minY, maxX, maxY]
	Rule    string          `json:"rule,omitempty"`
	Naive   bool            `json:"naive,omitempty"` // baseline mode, for benchmarking
}

// TileFeature is one non-empty tile on the wire.
type TileFeature struct {
	Z        int             `json:"z"`
	X        int32           `json:"x"`
	Y        int32           `json:"y"`
	Geometry json.RawMessage `json:"geometry"`
}

// TileResponse is the wire form of a successful cut.
type TileResponse struct {
	Tiles    []TileFeature `json:"tiles"`
	Count    int           `json:"count"`
	Stats    *tile.Stats   `json:"stats,omitempty"`
	Degraded bool          `json:"degraded,omitempty"`
}

// serveMaxZoom caps pyramid depth over HTTP: zoom 10 is a million-tile
// response ceiling, far past any sane payload but safely below the
// driver's materialization limit.
const serveMaxZoom = 10

// decodeTileRequest turns an HTTP request into a validated tile-cutting job.
func decodeTileRequest(w http.ResponseWriter, r *http.Request, maxBody int64) (*parsedRequest, *httpError) {
	body, he := readBody(w, r, maxBody)
	if he != nil {
		return nil, he
	}
	var req TileRequest
	if he := unmarshalBody(body, &req); he != nil {
		return nil, he
	}
	rule, he := parseRule(req.Rule)
	if he != nil {
		return nil, he
	}
	layer, err := parseOperand(req.Layer)
	if err != nil {
		return nil, operandError("layer", err)
	}
	if req.MaxZoom > serveMaxZoom {
		return nil, httpErrorf(http.StatusBadRequest, "zoom-too-deep",
			"maxZoom %d exceeds the serving limit %d", req.MaxZoom, serveMaxZoom)
	}
	spec := tile.Spec{MinZoom: req.MinZoom, MaxZoom: req.MaxZoom}
	switch len(req.Extent) {
	case 0:
		spec.Extent = tile.SquareExtent(layer.BBox())
	case 4:
		spec.Extent = geom.BBox{MinX: req.Extent[0], MinY: req.Extent[1], MaxX: req.Extent[2], MaxY: req.Extent[3]}
	default:
		return nil, httpErrorf(http.StatusBadRequest, "bad-extent",
			"extent must be [minX, minY, maxX, maxY], got %d values", len(req.Extent))
	}
	if err := spec.Validate(); err != nil {
		return nil, httpErrorf(http.StatusBadRequest, "bad-spec", "%v", err)
	}
	return &parsedRequest{
		subject:   layer,
		rule:      rule,
		opName:    "tiles",
		algoName:  "tiles",
		tileSpec:  &spec,
		tileNaive: req.Naive,
	}, nil
}

// parseOperand decodes one operand: a JSON string is WKT, an object is a
// GeoJSON geometry or Feature.
func parseOperand(raw json.RawMessage) (polyclip.Polygon, error) {
	trimmed := strings.TrimSpace(string(raw))
	switch {
	case trimmed == "" || trimmed == "null":
		return nil, errors.New("operand is missing")
	case trimmed[0] == '"':
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("malformed WKT string: %v", err)
		}
		return polyclip.ParseWKT(s)
	case trimmed[0] == '{':
		return polyclip.ParseGeoJSON(raw)
	default:
		return nil, errors.New("operand must be a WKT string or a GeoJSON object")
	}
}

// operandError maps a WKT/GeoJSON parse failure to a 400 carrying the
// parser's position context.
func operandError(field string, err error) *httpError {
	he := httpErrorf(http.StatusBadRequest, "bad-"+field, "%s: %v", field, err)
	he.body.Field = field
	var se *wkt.SyntaxError
	if errors.As(err, &se) {
		he.body.Offset = int64(se.Offset)
		he.body.Token = se.Token
		return he
	}
	var pe *geojson.ParseError
	if errors.As(err, &pe) {
		if pe.Offset >= 0 {
			he.body.Offset = pe.Offset
		}
		he.body.Token = pe.Token
	}
	return he
}

// clipError maps a pipeline error to its HTTP answer: typed 4xx for invalid
// input and unsupported rule/algorithm combinations, 504 for deadline
// exhaustion, and a structured 500 for everything the chain could not
// absorb.
func clipError(err error) *httpError {
	switch {
	case errors.Is(err, polyclip.ErrInvalidInput):
		return httpErrorf(http.StatusBadRequest, "invalid-input", "%v", err)
	case errors.Is(err, polyclip.ErrUnsupported):
		return httpErrorf(http.StatusUnprocessableEntity, "unsupported", "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		return httpErrorf(http.StatusGatewayTimeout, "deadline", "%v", err)
	case errors.Is(err, context.Canceled):
		// The client went away; 499-style. No standard code exists, so use
		// 408 — the body will rarely be read anyway.
		return httpErrorf(http.StatusRequestTimeout, "canceled", "%v", err)
	default:
		var ce *polyclip.ClipError
		if errors.As(err, &ce) {
			return httpErrorf(http.StatusInternalServerError, "clip-failed",
				"clipping failed after every fallback: %v", err)
		}
		return httpErrorf(http.StatusInternalServerError, "internal", "%v", err)
	}
}
