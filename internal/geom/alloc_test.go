package geom

import "testing"

// TestOrientFastPathAllocFree guards the hot-path contract of the adaptive
// predicate: when the float filter decides (the overwhelmingly common
// case), Orient must not allocate at all.
func TestOrientFastPathAllocFree(t *testing.T) {
	a, b, c := Point{0, 0}, Point{3, 1}, Point{1, 4}
	if avg := testing.AllocsPerRun(1000, func() {
		if Orient(a, b, c) != CounterClockwise {
			t.Fatal("wrong orientation")
		}
	}); avg != 0 {
		t.Fatalf("Orient clean path allocates %.1f objects/op, want 0", avg)
	}
}

// TestOrientExactPathAllocLean guards the pooled exact fallback. The pooled
// registers eliminate the per-call register allocations, but big.Rat's
// arithmetic still allocates internal temporaries (normalization runs a GCD
// on fresh nats), so the budget is a small constant rather than zero — it
// catches a regression that reintroduces per-call register churn.
func TestOrientExactPathAllocLean(t *testing.T) {
	a, b, c := Point{0, 0}, Point{1, 1}, Point{2, 2} // exactly collinear: filter always defers
	for i := 0; i < 100; i++ {
		Orient(a, b, c)
	}
	if avg := testing.AllocsPerRun(1000, func() {
		if Orient(a, b, c) != Collinear {
			t.Fatal("wrong orientation")
		}
	}); avg > 40 {
		t.Fatalf("Orient exact path allocates %.1f objects/op, budget 40", avg)
	}
}
