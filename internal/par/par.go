// Package par provides the parallel primitives the paper builds its PRAM
// algorithm from: parallel-for over index ranges, prefix sums, parallel
// mergesort, and — the paper's key tool (Lemma 4, Table I) — inversion
// counting and reporting via an extended mergesort, which is how pairs of
// intersecting segments are detected inside a scanbeam.
package par

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"

	"polyclip/internal/guard"
	"polyclip/internal/pool"
)

// PanicError wraps a panic recovered in a parallel worker goroutine,
// carrying the original panic value and the worker's stack trace. ForEach
// re-raises it on the *calling* goroutine, so a panic in one worker cannot
// kill the process from an unrecoverable goroutine: a recover anywhere up
// the caller's stack (in particular the hardened public API, which converts
// it to a *guard.ClipError) contains the failure.
type PanicError struct {
	Value any    // the original panic value
	Stack []byte // stack of the panicking worker goroutine
}

// Error formats the wrapped panic.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in parallel worker: %v", e.Value)
}

// Unwrap exposes an error panic value to errors.Is/As.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// StallError reports that a parallel stage was abandoned by its watchdog:
// the stage context expired (deadline or cancellation) before every worker
// finished. The workers themselves cannot be killed — they are left running
// and their outputs discarded — so after a StallError the caller MUST NOT
// reuse any buffer the abandoned workers write to; retry with freshly
// allocated buffers instead.
type StallError struct {
	Err error // the context error that fired the watchdog
}

// Error formats the stall.
func (e *StallError) Error() string {
	return fmt.Sprintf("parallel stage abandoned by watchdog: %v", e.Err)
}

// Unwrap exposes the context error to errors.Is (context.DeadlineExceeded /
// context.Canceled).
func (e *StallError) Unwrap() error { return e.Err }

// DefaultParallelism returns the degree of parallelism used when a caller
// passes p <= 0: the number of usable CPUs.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// normalize clamps a requested parallelism degree.
func normalize(p int) int {
	if p <= 0 {
		p = DefaultParallelism()
	}
	return p
}

// ForEach splits [0, n) into at most p contiguous chunks and runs fn on each
// chunk concurrently on the process-wide work-stealing pool (internal/pool):
// the chunks are forked as pool tasks and the calling goroutine helps run
// them while it waits, so no goroutines are spawned per call and idle
// workers steal chunks from loaded ones. fn receives the half-open range
// [lo, hi). ForEach returns when all chunks are done. With p == 1 (or n
// small) it degenerates to a direct call, touching no scheduler state.
//
// A panic in a worker does not crash the process: the pool captures the
// first one and ForEach re-raises it on the calling goroutine as a
// *PanicError after all chunks finish, where callers (or the hardened
// public API) can recover it.
func ForEach(n, p int, fn func(lo, hi int)) {
	forEachPooled(nil, n, p, fn)
}

// forEachPooled is the shared chunking front of ForEach/ForEachCtx. A
// non-nil ctx makes chunks that have not started when ctx is done be
// skipped by the pool (running chunks poll ctx themselves, per the
// pipeline convention), so an abandoned stage stops consuming workers.
func forEachPooled(ctx context.Context, n, p int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p = normalize(p)
	if p > n {
		p = n
	}
	if p == 1 {
		guard.Hit("par.worker")
		fn(0, n)
		return
	}
	chunk := (n + p - 1) / p
	nchunks := (n + chunk - 1) / chunk
	raise(pool.Fork(ctx, nchunks, func(ci int) {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		guard.Hit("par.worker")
		fn(lo, hi)
	}))
}

// raise re-raises a pool-captured panic as a *PanicError on the calling
// goroutine, passing an already-wrapped nested PanicError through unchanged
// so the deepest capture keeps its original stack.
func raise(pe *pool.Panic) {
	if pe == nil {
		return
	}
	if w, ok := pe.Value.(*PanicError); ok {
		panic(w)
	}
	panic(&PanicError{Value: pe.Value, Stack: pe.Stack})
}

// Run executes fn on its own goroutine and waits for it to finish or for ctx
// to be done, whichever comes first — the watchdog building block for
// deadline-bounded pipeline stages. When ctx fires first a *StallError is
// returned and fn is abandoned: it keeps running to completion on its
// goroutine, so the caller must discard (never reuse) anything it writes to.
// A panic inside fn is re-raised on the calling goroutine as a *PanicError,
// exactly like ForEach; a panic in an abandoned fn is swallowed with the
// rest of its work.
func Run(ctx context.Context, fn func()) error {
	if err := ctx.Err(); err != nil {
		return &StallError{Err: err}
	}
	done := make(chan *PanicError, 1)
	go func() {
		var pe *PanicError
		defer func() {
			if r := recover(); r != nil {
				w, ok := r.(*PanicError)
				if !ok {
					w = &PanicError{Value: r, Stack: debug.Stack()}
				}
				pe = w
			}
			done <- pe
		}()
		fn()
	}()
	select {
	case pe := <-done:
		if pe != nil {
			panic(pe)
		}
		return nil
	case <-ctx.Done():
		return &StallError{Err: ctx.Err()}
	}
}

// ForEachCtx is ForEach under a watchdog: the chunked workers run as in
// ForEach, but if ctx is done before they all finish — a worker wedged on
// pathological input, a hung syscall, an injected hang fault — a *StallError
// is returned instead of blocking forever. Abandoned workers keep running;
// see Run for the buffer-reuse contract. Unlike ForEach, even p == 1 runs on
// a separate goroutine so a sequential retry remains abandonable.
//
// The pooled loop additionally passes ctx into the fork, so chunks that
// have not started when ctx fires are skipped instead of executed — an
// abandoned stage frees its pool workers promptly instead of wedging them
// on doomed work. Because skipping can complete the batch with only part
// of the range visited, a done ctx is always reported as a *StallError
// even when the fork itself finished, keeping the contract that a nil
// return means every index ran.
func ForEachCtx(ctx context.Context, n, p int, fn func(lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if err := Run(ctx, func() { forEachPooled(ctx, n, p, fn) }); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return &StallError{Err: err}
	}
	return nil
}

// join2 runs left and right as a two-task pool batch — the binary fork-join
// node of the parallel mergesorts. The caller helps run the batch (popping
// its own deque first), so recursion nests without consuming workers, and a
// panic in either side is re-raised here as a *PanicError.
func join2(left, right func()) {
	raise(pool.Join2(left, right))
}

// ForEachGrain is ForEach with a minimum chunk size: no worker receives
// fewer than grain items, so loops whose per-item work is tiny (a flag
// write, a binary search) don't pay a goroutine spawn per handful of items.
// Use ForEach (grain 1) for loops with few heavy items — e.g. per-slab
// clipping, where n is small and each item is a full pipeline stage —
// which a coarse grain would serialize.
func ForEachGrain(n, p, grain int, fn func(lo, hi int)) {
	p = normalize(p)
	if grain > 1 && n > 0 {
		if maxP := (n + grain - 1) / grain; p > maxP {
			p = maxP
		}
	}
	ForEach(n, p, fn)
}

// ForEachItem runs fn(i) for every i in [0, n) with parallelism p, chunked
// to amortize scheduling overhead.
func ForEachItem(n, p int, fn func(i int)) {
	ForEach(n, p, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForEachItemGrain is ForEachItem with ForEachGrain's minimum chunk size.
func ForEachItemGrain(n, p, grain int, fn func(i int)) {
	ForEachGrain(n, p, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// PrefixSum computes the inclusive prefix sums of xs in place and returns
// the total. It is the sequential building block behind Lemma 3's parity
// test.
func PrefixSum(xs []int) int {
	sum := 0
	for i, v := range xs {
		sum += v
		xs[i] = sum
	}
	return sum
}

// ExclusivePrefixSum rewrites xs so xs[i] holds the sum of the original
// xs[0:i], returning the grand total. This is the "scan" used for
// output-sensitive processor/slot allocation throughout the repository:
// after scanning the per-bucket counts, bucket i writes its results at
// offset xs[i].
func ExclusivePrefixSum(xs []int) int {
	sum := 0
	for i, v := range xs {
		xs[i] = sum
		sum += v
	}
	return sum
}

// ParallelPrefixSum computes inclusive prefix sums of xs in place using the
// classic two-pass block algorithm (each of the p blocks is scanned, block
// totals are scanned sequentially, then block offsets are added back in
// parallel). Returns the total. Work O(n), depth O(n/p + p).
func ParallelPrefixSum(xs []int, p int) int {
	guard.Hit("par.prefixsum")
	n := len(xs)
	p = normalize(p)
	if p == 1 || n < 2048 {
		return PrefixSum(xs)
	}
	if p > n {
		p = n
	}
	chunk := (n + p - 1) / p
	nblocks := (n + chunk - 1) / chunk
	totals := make([]int, nblocks)

	ForEachItem(nblocks, p, func(b int) {
		lo, hi := b*chunk, (b+1)*chunk
		if hi > n {
			hi = n
		}
		sum := 0
		for i := lo; i < hi; i++ {
			sum += xs[i]
			xs[i] = sum
		}
		totals[b] = sum
	})

	grand := ExclusivePrefixSum(totals)

	ForEachItem(nblocks, p, func(b int) {
		off := totals[b]
		if off == 0 {
			return
		}
		lo, hi := b*chunk, (b+1)*chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			xs[i] += off
		}
	})
	return grand
}

// Reduce folds xs with the associative op in parallel, returning identity
// for an empty slice.
func Reduce[T any](xs []T, identity T, op func(a, b T) T, p int) T {
	n := len(xs)
	if n == 0 {
		return identity
	}
	p = normalize(p)
	if p == 1 || n < 4096 {
		acc := identity
		for _, v := range xs {
			acc = op(acc, v)
		}
		return acc
	}
	if p > n {
		p = n
	}
	partial := make([]T, p)
	chunk := (n + p - 1) / p
	nb := (n + chunk - 1) / chunk
	ForEachItem(nb, p, func(b int) {
		lo, hi := b*chunk, (b+1)*chunk
		if hi > n {
			hi = n
		}
		acc := identity
		for i := lo; i < hi; i++ {
			acc = op(acc, xs[i])
		}
		partial[b] = acc
	})
	acc := identity
	for b := 0; b < nb; b++ {
		acc = op(acc, partial[b])
	}
	return acc
}

// Pack compacts the elements of xs for which keep is true, preserving
// order, using a prefix-sum over 0/1 flags to compute destinations — the
// "array packing" primitive of the paper's Step 3.4. Runs with parallelism
// p; the scan is the only synchronization point.
func Pack[T any](xs []T, keep []bool, p int) []T {
	n := len(xs)
	if n == 0 {
		return nil
	}
	flags := make([]int, n)
	ForEachItemGrain(n, p, 2048, func(i int) {
		if keep[i] {
			flags[i] = 1
		}
	})
	total := ParallelPrefixSum(flags, p)
	out := make([]T, total)
	ForEachItemGrain(n, p, 2048, func(i int) {
		if keep[i] {
			out[flags[i]-1] = xs[i]
		}
	})
	return out
}
