// Self-intersecting polygons: the input class that motivated the paper's
// generality claim. Clips two pentagram-style self-intersecting stars with
// every operation under the even-odd rule, cross-checks the three execution
// strategies against each other, and prints the results.
package main

import (
	"fmt"

	"polyclip"
	"polyclip/internal/geom"
)

func main() {
	a := polyclip.Polygon{geom.SelfIntersectingStar(geom.Point{X: 0, Y: 0}, 10, 5, 0.2)}
	b := polyclip.Polygon{geom.SelfIntersectingStar(geom.Point{X: 6, Y: 3}, 10, 7, 0.5)}

	fmt.Printf("subject: pentagram, %d vertices (5 self-crossings)\n", a.NumVertices())
	fmt.Printf("clip:    heptagram, %d vertices\n\n", b.NumVertices())

	for _, op := range []polyclip.Op{
		polyclip.Intersection, polyclip.Union, polyclip.Difference, polyclip.Xor,
	} {
		overlayOut, _ := polyclip.ClipWith(a, b, op, polyclip.Options{Algorithm: polyclip.AlgoOverlay})
		scanbeamOut, _ := polyclip.ClipWith(a, b, op, polyclip.Options{Algorithm: polyclip.AlgoScanbeam})
		slabOut, _ := polyclip.ClipWith(a, b, op, polyclip.Options{Algorithm: polyclip.AlgoSlabs, Threads: 4})
		fmt.Printf("%-13s overlay=%8.4f  scanbeam=%8.4f  slabs=%8.4f  rings=%d\n",
			op, polyclip.Area(overlayOut), polyclip.Area(scanbeamOut),
			polyclip.Area(slabOut), len(overlayOut))
	}

	// The even-odd pentagram has a hollow centre: prove it with a point
	// test on the intersection with a big box.
	big := polyclip.Polygon{geom.Rect(-20, -20, 20, 20)}
	star := polyclip.Clip(a, big, polyclip.Intersection)
	centre := geom.Point{X: 0, Y: 0}
	fmt.Printf("\npentagram centre inside even-odd region: %v (expected false — the pentagon hole)\n",
		star.ContainsPoint(centre))
}
