package scanbeam

import (
	"math"
	"testing"

	"polyclip/internal/engine"
	"polyclip/internal/geom"
)

func TestSortByX(t *testing.T) {
	entries := []Entry{{X: 3, ID: 0}, {X: 1, ID: 1}, {X: 2, ID: 2}, {X: 1, ID: 3}}
	SortByX(entries)
	for i := 1; i < len(entries); i++ {
		if entries[i-1].X > entries[i].X {
			t.Fatalf("not sorted at %d: %v", i, entries)
		}
	}
}

func TestScratchEntries(t *testing.T) {
	var s Scratch
	a := s.Entries(4)
	if len(a) != 4 {
		t.Fatalf("Entries(4) has len %d", len(a))
	}
	a[0] = Entry{X: 9}
	// A smaller request reuses the backing array.
	b := s.Entries(2)
	if len(b) != 2 || b[0].X != 9 {
		t.Errorf("Entries(2) did not reuse backing array: %v", b)
	}
	if c := s.Entries(100); len(c) != 100 {
		t.Errorf("Entries(100) has len %d", len(c))
	}
}

func TestScratchGrowKeep(t *testing.T) {
	var s Scratch
	buf := s.Grow(8)
	if len(buf) != 0 || cap(buf) < 8 {
		t.Fatalf("Grow(8): len=%d cap=%d", len(buf), cap(buf))
	}
	for i := 0; i < 8; i++ {
		buf = append(buf, Entry{X: float64(i)})
	}
	s.Keep(buf)
	// The retained capacity serves the next Grow without allocation.
	buf2 := s.Grow(8)
	if cap(buf2) < 8 || len(buf2) != 0 {
		t.Errorf("Grow after Keep: len=%d cap=%d", len(buf2), cap(buf2))
	}
}

func TestPool(t *testing.T) {
	s := Get()
	if s == nil {
		t.Fatal("Get returned nil")
	}
	s.Entries(16)
	Put(s)
	if s2 := Get(); s2 == nil {
		t.Fatal("Get after Put returned nil")
	}
}

func TestClampCorners(t *testing.T) {
	tz := engine.Trapezoid{
		L1: geom.Point{X: 2, Y: 0}, R1: geom.Point{X: 1, Y: 0}, // inverted bottom
		L2: geom.Point{X: 0, Y: 1}, R2: geom.Point{X: 3, Y: 1}, // well-formed top
	}
	ClampCorners(&tz)
	if tz.L1.X != 1.5 || tz.R1.X != 1.5 {
		t.Errorf("bottom not collapsed to midpoint: %+v", tz)
	}
	if tz.L2.X != 0 || tz.R2.X != 3 {
		t.Errorf("well-formed top modified: %+v", tz)
	}
}

// vertical returns an upward vertical segment at x spanning [y0, y1].
func vertical(x, y0, y1 float64) geom.Segment {
	return geom.Segment{A: geom.Point{X: x, Y: y0}, B: geom.Point{X: x, Y: y1}}
}

func TestBeamTrapezoidsUnion(t *testing.T) {
	// A CCW region between two verticals: the left bound descends (+1), the
	// right bound ascends (-1).
	edges := []geom.Segment{vertical(0, 0, 1), vertical(2, 0, 1)}
	deltas := []int8{1, -1}
	edgeAt := func(id int32) (geom.Segment, uint8, int8) { return edges[id], 0, deltas[id] }
	var scratch Scratch
	var out []engine.Trapezoid
	BeamTrapezoids(&scratch, []int32{0, 1}, 0, 1, engine.Union, engine.EvenOdd, edgeAt, &out)
	if len(out) != 1 {
		t.Fatalf("emitted %d trapezoids, want 1", len(out))
	}
	if a := out[0].Area(); math.Abs(a-2) > 1e-12 {
		t.Errorf("trapezoid area = %g, want 2", a)
	}
}

func TestBeamTrapezoidsIntersection(t *testing.T) {
	// Subject spans [0, 4], clip spans [2, 6]: intersection strip is [2, 4].
	edges := []geom.Segment{
		vertical(0, 0, 1), vertical(4, 0, 1), // subject
		vertical(2, 0, 1), vertical(6, 0, 1), // clip
	}
	owners := []uint8{0, 0, 1, 1}
	deltas := []int8{1, -1, 1, -1}
	edgeAt := func(id int32) (geom.Segment, uint8, int8) { return edges[id], owners[id], deltas[id] }
	var scratch Scratch
	var out []engine.Trapezoid
	BeamTrapezoids(&scratch, []int32{0, 1, 2, 3}, 0, 1, engine.Intersection, engine.EvenOdd, edgeAt, &out)
	if len(out) != 1 {
		t.Fatalf("emitted %d trapezoids, want 1", len(out))
	}
	tz := out[0]
	if tz.L1.X != 2 || tz.R1.X != 4 {
		t.Errorf("strip bounds [%g, %g], want [2, 4]", tz.L1.X, tz.R1.X)
	}
	// Xor of the same beam: two strips, [0,2] and [4,6].
	out = out[:0]
	BeamTrapezoids(&scratch, []int32{0, 1, 2, 3}, 0, 1, engine.Xor, engine.EvenOdd, edgeAt, &out)
	if len(out) != 2 {
		t.Fatalf("xor emitted %d trapezoids, want 2", len(out))
	}
}

func TestBeamTrapezoidsWindingRules(t *testing.T) {
	// A doubly-wound subject: two nested CCW intervals [0,6] and [2,4] in one
	// beam, so the winding is 1 on [0,2]∪[4,6] and 2 on [2,4]. Under EvenOdd
	// the middle is a hole; NonZero and Positive fill it; Negative selects
	// nothing. The clip operand is absent, so Union reads pure subject
	// insideness.
	edges := []geom.Segment{
		vertical(0, 0, 1), vertical(6, 0, 1),
		vertical(2, 0, 1), vertical(4, 0, 1),
	}
	deltas := []int8{1, -1, 1, -1}
	edgeAt := func(id int32) (geom.Segment, uint8, int8) { return edges[id], 0, deltas[id] }
	ids := []int32{0, 1, 2, 3}
	var scratch Scratch

	area := func(rule engine.FillRule) float64 {
		var out []engine.Trapezoid
		BeamTrapezoids(&scratch, ids, 0, 1, engine.Union, rule, edgeAt, &out)
		var sum float64
		for _, tz := range out {
			sum += tz.Area()
		}
		return sum
	}
	if a := area(engine.EvenOdd); math.Abs(a-4) > 1e-12 {
		t.Errorf("evenodd area = %g, want 4 (doubly-wound middle excluded)", a)
	}
	if a := area(engine.NonZero); math.Abs(a-6) > 1e-12 {
		t.Errorf("nonzero area = %g, want 6", a)
	}
	if a := area(engine.Positive); math.Abs(a-6) > 1e-12 {
		t.Errorf("positive area = %g, want 6", a)
	}
	if a := area(engine.Negative); a != 0 {
		t.Errorf("negative area = %g, want 0 (all winding positive)", a)
	}

	// Reversing every delta flips the winding sign: Positive and Negative
	// swap, EvenOdd and NonZero are unchanged.
	for i := range deltas {
		deltas[i] = -deltas[i]
	}
	if a := area(engine.Negative); math.Abs(a-6) > 1e-12 {
		t.Errorf("negative area after reversal = %g, want 6", a)
	}
	if a := area(engine.Positive); a != 0 {
		t.Errorf("positive area after reversal = %g, want 0", a)
	}
	if a := area(engine.EvenOdd); math.Abs(a-4) > 1e-12 {
		t.Errorf("evenodd area after reversal = %g, want 4", a)
	}
}

func TestCollectEdges(t *testing.T) {
	// One CCW square: of its 4 edges the horizontals are dropped, leaving 2.
	// The CCW walk ascends the right bound (2,0)->(2,2), delta -1, and
	// descends the left bound (0,2)->(0,0), delta +1 — so a left-to-right
	// crossing of the interior reads winding +1.
	sq := geom.Polygon{{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}}}
	edges := CollectEdges(sq, nil)
	if len(edges) != 2 {
		t.Fatalf("collected %d edges, want 2 (horizontals dropped)", len(edges))
	}
	for _, e := range edges {
		if e.Seg.A.Y >= e.Seg.B.Y {
			t.Errorf("edge not upward-normalized: %+v", e)
		}
		if e.Owner != 0 {
			t.Errorf("subject edge owner = %d", e.Owner)
		}
		switch e.Seg.A.X {
		case 0: // left bound: original direction downward
			if e.Delta != 1 {
				t.Errorf("left bound delta = %d, want +1", e.Delta)
			}
		case 2: // right bound: original direction upward
			if e.Delta != -1 {
				t.Errorf("right bound delta = %d, want -1", e.Delta)
			}
		default:
			t.Errorf("unexpected edge x: %+v", e)
		}
	}
	// Clip edges carry owner 1.
	both := CollectEdges(nil, sq)
	for _, e := range both {
		if e.Owner != 1 {
			t.Errorf("clip edge owner = %d, want 1", e.Owner)
		}
	}
}

func TestSweepSchedule(t *testing.T) {
	// Edge 0 spans y [0, 2], edge 1 spans [1, 3]: beams are [0,1], [1,2], [2,3]
	// with active sets {0}, {0, 1}, {1}.
	spans := [][2]float64{{0, 2}, {1, 3}}
	ys := []float64{0, 1, 2, 3}
	s := NewSweep(ys, len(spans), func(i int32) (float64, float64) {
		return spans[i][0], spans[i][1]
	})
	if s.Beams() != 3 {
		t.Fatalf("Beams() = %d, want 3", s.Beams())
	}
	wantActive := [][]int32{{0}, {0, 1}, {1}}
	wantY := [][2]float64{{0, 1}, {1, 2}, {2, 3}}
	visited := 0
	s.ForEachBeam(func(b int, yb, yt float64, active []int32) {
		if yb != wantY[b][0] || yt != wantY[b][1] {
			t.Errorf("beam %d: y [%g, %g], want %v", b, yb, yt, wantY[b])
		}
		if len(active) != len(wantActive[b]) {
			t.Fatalf("beam %d: active %v, want %v", b, active, wantActive[b])
		}
		for i, id := range wantActive[b] {
			if active[i] != id {
				t.Errorf("beam %d: active %v, want %v", b, active, wantActive[b])
			}
		}
		visited++
	})
	if visited != 3 {
		t.Errorf("visited %d beams, want 3", visited)
	}
}

func TestSweepEmptyBeams(t *testing.T) {
	// A gap between the two edges' extents leaves a beam with no active edge.
	spans := [][2]float64{{0, 1}, {2, 3}}
	ys := []float64{0, 1, 2, 3}
	s := NewSweep(ys, len(spans), func(i int32) (float64, float64) {
		return spans[i][0], spans[i][1]
	})
	var sizes []int
	s.ForEachBeam(func(b int, yb, yt float64, active []int32) {
		sizes = append(sizes, len(active))
	})
	if len(sizes) != 3 || sizes[0] != 1 || sizes[1] != 0 || sizes[2] != 1 {
		t.Errorf("active sizes = %v, want [1 0 1]", sizes)
	}
}
