package core

import (
	"math"
	"time"

	"polyclip/internal/rtree"

	"polyclip/internal/geom"
	"polyclip/internal/par"
)

// Layer is a set of polygon features (a GIS layer). Features within one
// layer are assumed not to overlap each other (true of administrative
// boundaries, urban areas and the like), so the layer as a whole is a valid
// even-odd region.
type Layer []geom.Polygon

// NumVertices returns the total vertex count of the layer.
func (l Layer) NumVertices() int {
	n := 0
	for _, f := range l {
		n += f.NumVertices()
	}
	return n
}

// BBox returns the layer's bounding box (the paper's MBR of the union).
func (l Layer) BBox() geom.BBox {
	box := geom.EmptyBBox()
	for _, f := range l {
		box = box.Union(f.BBox())
	}
	return box
}

// ClipLayers overlays two feature layers with the pthread variant of
// Algorithm 2 (§IV last paragraph): feature MBR y-extents form the event
// list, slabs get roughly equal numbers of events, and features spanning
// slab boundaries are replicated rather than split. Each candidate feature
// pair (bounding boxes overlapping) is clipped by the sequential engine in
// exactly one slab — the slab containing the bottom of the pair's shared
// MBR — which eliminates the redundant outputs the paper removes by
// post-processing. Results are per-pair outputs concatenated; no merge
// phase is needed.
func ClipLayers(a, b Layer, op Op, opt Options) ([]geom.Polygon, *Stats) {
	p := opt.Threads
	if p <= 0 {
		p = par.DefaultParallelism()
	}
	nslabs := opt.Slabs
	if nslabs <= 0 {
		nslabs = p
	}
	st := &Stats{}
	snapEps := snapEpsFor(flatten(a), flatten(b))

	// Event list: MBR y-extents of every feature (two events per feature).
	t0 := time.Now()
	boxesA := make([]geom.BBox, len(a))
	boxesB := make([]geom.BBox, len(b))
	ys := make([]float64, 0, 2*(len(a)+len(b)))
	for i, f := range a {
		boxesA[i] = f.BBox()
		ys = append(ys, boxesA[i].MinY, boxesA[i].MaxY)
	}
	for i, f := range b {
		boxesB[i] = f.BBox()
		ys = append(ys, boxesB[i].MinY, boxesB[i].MaxY)
	}
	par.Sort(ys, func(x, y float64) bool { return x < y }, p)
	dedup := ys[:0]
	for i, v := range ys {
		if i == 0 || v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	ys = dedup
	st.Sort = time.Since(t0)
	if len(ys) == 0 {
		return nil, st
	}

	bounds := slabBoundaries(ys, nslabs, opt.Partition)
	ns := len(bounds) - 1
	st.Slabs = ns

	// Candidate pairs by an MBR grid join (linear in features + candidates,
	// instead of the quadratic per-slab double loop), then each pair is
	// assigned to the slab containing the midpoint of its shared y-range —
	// the replication scheme without the redundant clips.
	t1 := time.Now()
	pairsPerSlab := make([][][2]int32, ns)
	ownerSlab := func(y float64) int {
		for s := 0; s < ns; s++ {
			if y <= bounds[s+1] {
				return s
			}
		}
		return ns - 1
	}
	for _, pr := range mbrJoin(boxesA, boxesB) {
		ba, bb := boxesA[pr[0]], boxesB[pr[1]]
		loY := math.Max(ba.MinY, bb.MinY)
		hiY := math.Min(ba.MaxY, bb.MaxY)
		s := ownerSlab((loY + hiY) / 2)
		pairsPerSlab[s] = append(pairsPerSlab[s], pr)
	}
	st.Partition = time.Since(t1)

	// Per-slab pairwise clipping.
	t2 := time.Now()
	results := make([][]geom.Polygon, ns)
	st.PerThread = make([]time.Duration, ns)
	par.ForEachItem(ns, p, func(s int) {
		ts := time.Now()
		var out []geom.Polygon
		for _, pr := range pairsPerSlab[s] {
			c := engineClip(opt.Engine, a[pr[0]], b[pr[1]], op, snapEps)
			if len(c) > 0 {
				out = append(out, c)
			}
		}
		results[s] = out
		st.PerThread[s] = time.Since(ts)
	})
	st.Clip = time.Since(t2)

	t3 := time.Now()
	var out []geom.Polygon
	for _, r := range results {
		out = append(out, r...)
	}
	st.Merge = time.Since(t3)
	return out, st
}

// ClipLayersMerged overlays two layers by fusing each layer into one
// even-odd multi-polygon and running ClipPair — the splitting variant of
// Algorithm 2. Unlike ClipLayers this supports union and difference
// between whole layers.
func ClipLayersMerged(a, b Layer, op Op, opt Options) (geom.Polygon, *Stats) {
	return ClipPair(flatten(a), flatten(b), op, opt)
}

func flatten(l Layer) geom.Polygon {
	var out geom.Polygon
	for _, f := range l {
		out = append(out, f...)
	}
	return out
}

// LayerArea returns the summed even-odd area of the layer's features.
func LayerArea(l Layer) float64 {
	var s float64
	for _, f := range l {
		s += f.Area()
	}
	return s
}

// mbrJoin returns every (i, j) with boxesA[i] intersecting boxesB[j], via
// an STR-packed R-tree over the B boxes. Cost is near-linear in boxes plus
// candidates.
func mbrJoin(boxesA, boxesB []geom.BBox) [][2]int32 {
	if len(boxesA) == 0 || len(boxesB) == 0 {
		return nil
	}
	tr := rtree.Build(len(boxesB), func(j int32) geom.BBox { return boxesB[j] })
	return tr.Join(len(boxesA),
		func(i int32) geom.BBox { return boxesA[i] },
		func(j int32) geom.BBox { return boxesB[j] })
}
