package core

import (
	"context"

	"polyclip/internal/arrange"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/vatti"
)

// normalizePairRule reduces both operands to the simple polygons covering
// their rule-regions: a winding-aware union of each operand against
// nothing. The result's point set is identical under every fill rule, so
// the even-odd slab pipeline downstream computes the winding-rule answer
// exactly. EvenOdd operands pass through untouched — the slab pipeline
// handles them natively.
//
// The operands are first welded jointly onto the pair's shared snap grid
// (ResolvePairWinding). Resolving each operand in isolation would pick a
// grid from that operand's own extent; when the extents differ by many
// orders of magnitude the lone-operand arrangement diverges from the pair
// arrangement every other engine sweeps, and the slab result drifts
// outside the cross-engine agreement tolerance.
func normalizePairRule(a, b geom.Polygon, rule engine.FillRule) (geom.Polygon, geom.Polygon) {
	if rule == engine.EvenOdd {
		return a, b
	}
	ra, rb := arrange.ResolvePairWinding(a, b)
	return vatti.ClipRule(ra, nil, engine.Union, rule), vatti.ClipRule(rb, nil, engine.Union, rule)
}

// slabsEngine adapts the multi-threaded Algorithm 2 slab decomposition
// (ClipPairCtx) to the engine registry. It is not itself slab-hostable — a
// slab hosting slabs would recurse — but it can host any registered
// slab-hostable engine inside its workers.
type slabsEngine struct{}

func (slabsEngine) Name() string { return "slabs" }

func (slabsEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{
		Rules:       engine.AllRules(),
		Cancellable: true,
		Parallel:    true,
	}
}

// Clip runs the slab decomposition. The per-slab clipper (bandclip chain
// pairing) is inherently parity-based, so winding rules are handled by
// normalizing each operand to its rule-region first (see normalizePairRule)
// — after which the even-odd slab pipeline is exact for the requested rule.
func (e slabsEngine) Clip(ctx context.Context, a, b geom.Polygon, op engine.Op, opt engine.Options) (engine.Result, error) {
	if err := engine.CheckRule(e, opt.Rule); err != nil {
		return engine.Result{}, err
	}
	a, b = normalizePairRule(a, b, opt.Rule)
	out, st, err := ClipPairCtx(ctx, a, b, op, Options{
		Threads: opt.Threads, Slabs: opt.Slabs, NoFallback: opt.NoFallback,
	})
	return engine.Result{Polygon: out, Stats: st}, err
}

// scanbeamEngine adapts the CREW PRAM Algorithm 1 realization
// (AlgorithmOneCtx) to the engine registry.
type scanbeamEngine struct{}

func (scanbeamEngine) Name() string { return "scanbeam" }

func (scanbeamEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{
		Rules:       engine.AllRules(),
		Cancellable: true,
		Parallel:    true,
	}
}

func (e scanbeamEngine) Clip(ctx context.Context, a, b geom.Polygon, op engine.Op, opt engine.Options) (engine.Result, error) {
	if err := engine.CheckRule(e, opt.Rule); err != nil {
		return engine.Result{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	out, _ := AlgorithmOneRuleCtx(ctx, a, b, op, opt.Rule, opt.Threads)
	if err := ctx.Err(); err != nil {
		return engine.Result{}, err
	}
	return engine.Result{Polygon: out}, nil
}

func init() {
	engine.Register(slabsEngine{})
	engine.Register(scanbeamEngine{})
}
