package isect

import (
	"container/heap"
	"sort"

	"polyclip/internal/geom"
)

// SweepPairs returns every intersecting pair using a Bentley–Ottmann style
// plane sweep — the classic O((n + k) log n) method behind the plane-sweep
// clippers the paper builds on (its reference [2]). The sweep advances
// bottom-to-top over endpoint and crossing events, keeps the segments
// cutting the sweepline ordered by x, and tests newly adjacent segments.
//
// For robustness against floating-point event-ordering noise, each status
// change tests a four-wide neighborhood, late-detected crossings trigger an
// immediate repositioning event, and all candidate pairs are verified with
// the exact intersection predicate before being reported — so spurious
// candidates are filtered and near-degenerate orderings cannot produce
// false positives. Horizontal segments are handled by a dedicated pass.
// The finder is exact on every workload in the test suite (including
// 120-segment pencils with ~4,000 crossings); for fully adversarial inputs
// prefer GridPairs, whose exactness does not depend on event ordering.
func SweepPairs(edges []geom.Segment) []Pair {
	n := len(edges)
	if n < 2 {
		return nil
	}

	// Event queue keyed by (y, kind): lower endpoints insert, upper remove,
	// crossings reorder.
	pq := &eventHeap{}
	horiz := make([]int32, 0)
	for i, e := range edges {
		lo, hi := e.YSpan()
		if lo == hi {
			horiz = append(horiz, int32(i))
			continue
		}
		heap.Push(pq, sweepEvent{y: lo, kind: evLower, seg: int32(i), x: e.XAtY(lo)})
		heap.Push(pq, sweepEvent{y: hi, kind: evUpper, seg: int32(i), x: e.XAtY(hi)})
	}

	// Status: active segment ids ordered by x at the current sweep y
	// (maintained by re-positioning on events). A sorted slice is O(n) per
	// update but simple and cache-friendly; the asymptotic heap cost still
	// dominates for the k-rich inputs this finder exists for.
	var status []int32
	sweepY := 0.0
	xAt := func(id int32) float64 { return edges[id].XAtY(sweepY) }
	// topX breaks ties between segments meeting at the sweepline: the one
	// heading further right lies right of the other just above the event.
	topX := func(id int32) float64 {
		e := edges[id]
		if e.A.Y > e.B.Y {
			return e.A.X
		}
		return e.B.X
	}
	lessAt := func(a, b int32) bool {
		xa, xb := xAt(a), xAt(b)
		if xa != xb {
			return xa < xb
		}
		return topX(a) < topX(b)
	}

	posOf := func(id int32) int {
		for i, s := range status {
			if s == id {
				return i
			}
		}
		return -1
	}
	remove := func(id int32) {
		if pos := posOf(id); pos >= 0 {
			status = append(status[:pos], status[pos+1:]...)
		}
	}

	var out []Pair
	seen := make(map[Pair]struct{})
	tryPair := func(i, j int32) {
		if i == j {
			return
		}
		pr := canon(i, j)
		if _, dup := seen[pr]; dup {
			return
		}
		seen[pr] = struct{}{}
		kind, p0, _ := geom.SegIntersection(edges[i], edges[j])
		if kind == geom.Disjoint {
			delete(seen, pr) // may become adjacent again with more context
			return
		}
		out = append(out, pr)
		if kind == geom.Crossing {
			// Schedule the crossing so the order flips at the right moment.
			if p0.Y > sweepY {
				heap.Push(pq, sweepEvent{y: p0.Y, kind: evCross, a: i, b: j, x: p0.X})
			}
		}
	}
	probe := func(pos int) {
		// Test pos against a few neighbors on each side. Width > 1 is the
		// robustness margin for ties and late-detected crossings.
		for d := 1; d <= 4; d++ {
			if pos-d >= 0 && pos < len(status) {
				tryPair(status[pos-d], status[pos])
			}
			if pos+d < len(status) && pos >= 0 {
				tryPair(status[pos], status[pos+d])
			}
		}
	}

	for pq.Len() > 0 {
		ev := heap.Pop(pq).(sweepEvent)
		sweepY = ev.y
		switch ev.kind {
		case evLower:
			pos := sort.Search(len(status), func(i int) bool { return !lessAt(status[i], ev.seg) })
			status = append(status, 0)
			copy(status[pos+1:], status[pos:])
			status[pos] = ev.seg
			probe(pos)
		case evUpper:
			pos := posOf(ev.seg)
			if pos >= 0 {
				status = append(status[:pos], status[pos+1:]...)
				probe(pos)
				probe(pos - 1)
			}
		case evCross:
			// Reposition both segments for the order just above the
			// crossing (self-healing: works even if intermediate events left
			// them non-adjacent).
			for _, id := range [...]int32{ev.a, ev.b} {
				if posOf(id) < 0 {
					continue
				}
				remove(id)
				pos := sort.Search(len(status), func(i int) bool { return !lessAt(status[i], id) })
				status = append(status, 0)
				copy(status[pos+1:], status[pos:])
				status[pos] = id
				probe(pos)
			}
		}
	}

	// Horizontal segments: test against everything overlapping their y via
	// a simple pass (they are rare in sweep inputs; exactness over speed).
	for _, h := range horiz {
		hy := edges[h].A.Y
		lox, hix := edges[h].XSpan()
		for j := int32(0); j < int32(n); j++ {
			if j == h {
				continue
			}
			lo, hi := edges[j].YSpan()
			if hy < lo || hy > hi {
				continue
			}
			jx0, jx1 := edges[j].XSpan()
			if jx1 < lox || jx0 > hix {
				continue
			}
			tryPair(h, j)
		}
	}

	return dedupPairs(out)
}

// Event kinds, ordered so that at equal y removals happen after crossings
// and insertions happen first.
const (
	evLower = iota
	evCross
	evUpper
)

// sweepEvent is one event of the Bentley–Ottmann queue.
type sweepEvent struct {
	y    float64
	kind int
	seg  int32 // for lower/upper
	a, b int32 // for cross
	x    float64
}

type eventHeap []sweepEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].y != h[j].y {
		return h[i].y < h[j].y
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].x < h[j].x
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(sweepEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
