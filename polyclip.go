// Package polyclip is an output-sensitive parallel polygon clipping library:
// a Go implementation of Puri & Prasad, "Output-Sensitive Parallel Algorithm
// for Polygon Clipping" (ICPP 2014).
//
// It computes boolean operations — intersection, union, difference and
// symmetric difference — between arbitrary polygons: convex, concave,
// multi-contour, and self-intersecting, under the even-odd fill rule. Three
// execution strategies are provided:
//
//   - AlgoOverlay (default): a parallel subdivision/classification engine
//     built from the paper's primitives (scanbeams, parity prefix sums,
//     inversion-counting intersection detection).
//   - AlgoSlabs: the paper's multi-threaded Algorithm 2 — the input is cut
//     into horizontal slabs balanced by event count, each slab is clipped
//     by a sequential engine, and the seams are stitched away.
//   - AlgoScanbeam: the multicore realization of the paper's CREW PRAM
//     Algorithm 1 — fully parallel over scanbeams, with output-sensitive
//     work accounting.
//
// Quick start:
//
//	a := polyclip.Polygon{{{0, 0}, {4, 0}, {4, 4}, {0, 4}}}
//	b := polyclip.Polygon{{{2, 2}, {6, 2}, {6, 6}, {2, 6}}}
//	out := polyclip.Clip(a, b, polyclip.Intersection)
//
// Layers of polygon features (GIS overlay) are supported through
// OverlayLayers; WKT I/O through ParseWKT and FormatWKT.
package polyclip

import (
	"context"

	"polyclip/internal/core"
	"polyclip/internal/engine"
	"polyclip/internal/geojson"
	"polyclip/internal/geom"
	"polyclip/internal/vatti"
	"polyclip/internal/wkt"
)

// Geometric types re-exported from the geometry kernel.
type (
	// Point is a point in the plane.
	Point = geom.Point
	// Ring is a closed polygonal chain (implicitly closed, first vertex not
	// repeated).
	Ring = geom.Ring
	// Polygon is a set of rings interpreted under the even-odd fill rule.
	Polygon = geom.Polygon
	// BBox is an axis-aligned bounding box.
	BBox = geom.BBox
	// Layer is a set of polygon features (a GIS layer).
	Layer = core.Layer
	// Trapezoid is one scanbeam-bounded piece of a clipped region.
	Trapezoid = engine.Trapezoid
)

// Op is a boolean clipping operation (canonical type: internal/engine).
type Op = engine.Op

// Supported operations.
const (
	Intersection = engine.Intersection
	Union        = engine.Union
	Difference   = engine.Difference
	Xor          = engine.Xor
)

// Algorithm selects the execution strategy.
type Algorithm uint8

// Available algorithms.
const (
	// AlgoOverlay is the parallel subdivision engine (default).
	AlgoOverlay Algorithm = iota
	// AlgoSlabs is the paper's multi-threaded slab decomposition
	// (Algorithm 2).
	AlgoSlabs
	// AlgoScanbeam is the paper's Algorithm 1 parallel-over-scanbeams
	// pipeline.
	AlgoScanbeam
	// AlgoSequential is the single-threaded scanbeam sweep (the Vatti/GPC
	// reference).
	AlgoSequential
)

// FillRule decides which winding numbers count as interior (canonical type:
// internal/engine).
type FillRule = engine.FillRule

// Supported fill rules. Every Algorithm implements every rule.
const (
	// EvenOdd (default): inside = odd crossing parity, as in GPC and the
	// paper.
	EvenOdd = engine.EvenOdd
	// NonZero: inside = nonzero winding number (vector-graphics rule).
	NonZero = engine.NonZero
	// Positive: inside = winding number > 0 (counter-clockwise regions).
	Positive = engine.Positive
	// Negative: inside = winding number < 0 (clockwise regions).
	Negative = engine.Negative
)

// ErrUnsupported tags a rule/algorithm combination no registered engine can
// serve. Every built-in engine now implements all four fill rules, so the
// error is reserved for future capability gaps (and external engines); the
// registry still refuses to swap strategies silently. Test with errors.Is.
var ErrUnsupported = engine.ErrUnsupported

// Options configures ClipWith and the hardened Ctx entry points.
type Options struct {
	// Algorithm selects the execution strategy; zero value is AlgoOverlay.
	Algorithm Algorithm
	// Threads bounds the parallelism; <= 0 means all available CPUs.
	Threads int
	// Rule is the fill rule; every Algorithm hosts all four (the scanbeam
	// engines sweep signed winding counts, the slab decomposition
	// normalizes winding operands before partitioning). A rule outside an
	// engine's declared capabilities returns an error wrapping
	// ErrUnsupported rather than silently swapping the strategy.
	Rule FillRule
	// Slabs is the slab count for AlgoSlabs and the layer overlay; 0 means
	// one per thread.
	Slabs int
	// NoFallback disables the differential-fallback chain: the first engine
	// failure (panic or failed audit) surfaces directly instead of being
	// retried on a coarser grid or a different engine.
	NoFallback bool
	// Degraded restricts the fallback chain to its cheap tail — the
	// coarse-grid and sequential/non-parallel steps — and forces
	// single-threaded execution. It is the load-shedding mode of the clipd
	// service: overflow traffic is served at reduced fidelity and bounded
	// cost instead of being dropped. Attempt names in Stats.Resilience
	// still identify the steps taken (e.g. "overlay-coarse:ok").
	Degraded bool
}

// Stats reports phase timings, the engine that produced the accepted result
// (Stats.Engine), and the resilience record (canonical type:
// internal/engine).
type Stats = engine.Stats

// Clip computes `subject op clip` with the default strategy on all CPUs.
// It never returns an error: invalid inputs yield an empty result and
// recoverable failures are absorbed by the fallback chain. Use ClipCtx for
// error reporting and cancellation.
func Clip(subject, clip Polygon, op Op) Polygon {
	out, _, _ := ClipCtx(context.Background(), subject, clip, op, Options{})
	return out
}

// ClipWith computes `subject op clip` with explicit strategy and
// parallelism through the hardened pipeline (see ClipCtx). It never
// returns an error; Stats.Resilience records any repair or fallback taken.
func ClipWith(subject, clip Polygon, op Op, opt Options) (Polygon, *Stats) {
	out, st, _ := ClipCtx(context.Background(), subject, clip, op, opt)
	return out, st
}

// Trapezoids returns the trapezoid decomposition of `subject op clip` — the
// raw scanbeam-sweep output before ring assembly (useful for rendering
// pipelines that rasterize trapezoids directly).
func Trapezoids(subject, clip Polygon, op Op) []Trapezoid {
	return vatti.Trapezoids(subject, clip, op)
}

// OverlayLayers clips every overlapping feature pair of two layers in
// parallel (the paper's pthread Algorithm 2 for two sets of polygons) and
// returns the per-pair results. It never returns an error; use
// OverlayLayersCtx for error reporting and cancellation.
func OverlayLayers(a, b Layer, op Op, opt Options) ([]Polygon, *Stats) {
	out, st, _ := OverlayLayersCtx(context.Background(), a, b, op, opt)
	return out, st
}

// OverlayLayersMerged fuses each layer into one even-odd region and clips
// the regions — supports whole-layer union/difference. It never returns an
// error; use OverlayLayersMergedCtx for error reporting and cancellation.
func OverlayLayersMerged(a, b Layer, op Op, opt Options) (Polygon, *Stats) {
	out, st, _ := OverlayLayersMergedCtx(context.Background(), a, b, op, opt)
	return out, st
}

// ParseWKT parses a POLYGON or MULTIPOLYGON Well-Known Text string.
func ParseWKT(s string) (Polygon, error) { return wkt.Unmarshal(s) }

// FormatWKT renders a polygon as Well-Known Text.
func FormatWKT(p Polygon) string { return wkt.Marshal(p) }

// Area returns the even-odd area of a polygon whose rings follow the
// library's output convention (counter-clockwise outers, clockwise holes).
func Area(p Polygon) float64 { return p.Area() }

// UnionAll dissolves a set of polygons into their union with a parallel
// reduction tree (the paper's Fig. 6 merge) — the GIS "dissolve" operation.
func UnionAll(polys []Polygon, opt Options) Polygon {
	return core.UnionAll(polys, opt.Threads)
}

// IntersectAll returns the common region of all the polygons via the same
// reduction tree.
func IntersectAll(polys []Polygon, opt Options) Polygon {
	return core.IntersectAll(polys, opt.Threads)
}

// ParseGeoJSON parses a GeoJSON Polygon, MultiPolygon, or Feature.
func ParseGeoJSON(data []byte) (Polygon, error) { return geojson.Unmarshal(data) }

// FormatGeoJSON renders a polygon as a GeoJSON geometry.
func FormatGeoJSON(p Polygon) ([]byte, error) { return geojson.Marshal(p) }

// ParseGeoJSONLayer parses a GeoJSON FeatureCollection into a layer.
func ParseGeoJSONLayer(data []byte) (Layer, error) {
	fs, err := geojson.UnmarshalLayer(data)
	return Layer(fs), err
}

// FormatGeoJSONLayer renders a layer as a GeoJSON FeatureCollection.
func FormatGeoJSONLayer(l Layer) ([]byte, error) { return geojson.MarshalLayer(l) }
