#!/bin/sh
# Full verification sweep: vet, build, tests under the race detector, and a
# short native-fuzz smoke on every fuzz target. Mirrors `make check` for
# environments without make.
set -eu
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-10s}"

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race"
go test -race ./...

for t in FuzzParseWKT FuzzParseGeoJSON FuzzClipRoundTrip; do
	echo "== fuzz $t ($FUZZTIME)"
	go test -run='^$' -fuzz="^$t\$" -fuzztime="$FUZZTIME" .
done

echo "all checks passed"
