// Package scanbeam is the shared substrate of every scanbeam-sweep engine:
// the per-beam edge-population buffers (pooled so parallel beam loops stay
// allocation-free), the x-ordering of active edges on a beam line, the
// winding-aware Lemma 1/3 walk that emits rule/op-selected trapezoids (signed
// winding counts generalize the paper's parity argument, so one walk serves
// EvenOdd, NonZero, Positive and Negative), and the sequential bottom-to-top
// sweep schedule (CSR start buckets + active-list compaction).
//
// Before this package existed the same machinery was re-implemented in
// internal/vatti (sequential sweep), internal/core (parallel Algorithm 1
// beams), internal/overlay (classification beams) and internal/bandclip
// (boundary-end pairing). Each engine now composes these primitives instead.
package scanbeam

import (
	"slices"
	"sync"

	"polyclip/internal/engine"
	"polyclip/internal/geom"
)

// Entry is one edge (or chain end) positioned on a scanbeam line: its x
// coordinate there, the caller's edge id, an owner tag (subject/clip
// polygon, or any other per-edge bit the walk needs), and the signed winding
// delta the edge contributes when crossed left to right (+1 for edges whose
// original ring direction is downward, -1 for upward; parity-only callers
// may leave it zero).
type Entry struct {
	X     float64
	ID    int32
	Owner uint8
	Delta int8
}

// Edge is one active edge of a sweep: the segment normalized upward
// (A.Y < B.Y), the operand tag (0 subject, 1 clip) and the winding delta of
// the original ring direction. It is the shared currency between
// CollectEdges, the sweep schedules and BeamTrapezoids.
type Edge struct {
	Seg   geom.Segment
	Owner uint8
	Delta int8
}

// CollectEdges flattens both operands into upward-oriented active edges
// carrying signed winding deltas. Horizontal edges are dropped outright
// rather than perturbed: the winding of any scanline strictly inside a beam
// is unaffected by edges lying on beam boundaries, and the boundary pieces
// they contribute are regenerated exactly as trapezoid caps (this sidesteps
// the paper's §III-C perturbation without changing the result). The delta
// follows the shared convention of engine.FillRule: an original edge
// directed downward (Hi to Lo) adds +1 when crossed left to right, an
// upward one adds -1, so a counter-clockwise ring winds its interior +1.
func CollectEdges(subject, clip geom.Polygon) []Edge {
	var out []Edge
	add := func(p geom.Polygon, owner uint8) {
		for _, r := range p {
			n := len(r)
			if n < 3 {
				continue
			}
			for i := 0; i < n; i++ {
				j := i + 1
				if j == n {
					j = 0
				}
				a, b := r[i], r[j]
				if a.Y == b.Y {
					continue
				}
				delta := int8(-1) // ring walks upward through this edge
				if a.Y > b.Y {
					a, b = b, a
					delta = 1 // ring walks downward: +1 left-to-right
				}
				out = append(out, Edge{Seg: geom.Segment{A: a, B: b}, Owner: owner, Delta: delta})
			}
		}
	}
	add(subject, 0)
	add(clip, 1)
	return out
}

// Scratch is a reusable Entry buffer for per-beam ordering. The zero value
// is ready to use; sequential sweeps keep one on the stack, parallel beam
// loops draw pooled instances with Get/Put.
type Scratch struct {
	entries []Entry
}

// Entries returns a length-n entry slice backed by the scratch, growing the
// backing array only when n exceeds every previous beam's population.
func (s *Scratch) Entries(n int) []Entry {
	if cap(s.entries) < n {
		s.entries = make([]Entry, n)
	}
	return s.entries[:n]
}

// Grow returns a zero-length entry slice with capacity at least n, for
// callers that append an unknown subset of candidates. Put the final slice
// back with Keep so the capacity is retained.
func (s *Scratch) Grow(n int) []Entry {
	if cap(s.entries) < n {
		s.entries = make([]Entry, 0, n)
		return s.entries
	}
	return s.entries[:0]
}

// Keep stores a slice obtained from Grow back into the scratch after
// appends may have reallocated it.
func (s *Scratch) Keep(entries []Entry) { s.entries = entries }

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// Get draws a Scratch from the shared pool.
func Get() *Scratch { return scratchPool.Get().(*Scratch) }

// Put returns a Scratch to the shared pool.
func Put(s *Scratch) { scratchPool.Put(s) }

// SortByX orders entries by X, allocation-free. Ties keep their relative
// order unspecified (equal-x entries compare equal), matching the sweep
// engines' historical comparator.
func SortByX(entries []Entry) {
	slices.SortFunc(entries, func(a, b Entry) int {
		switch {
		case a.X < b.X:
			return -1
		case a.X > b.X:
			return 1
		default:
			return 0
		}
	})
}

// BeamTrapezoids orders the beam's active edges on the beam midline and
// appends the op-selected trapezoids of the beam [yb, yt] to out — the
// shared Step 3 of the sequential sweep and the parallel Algorithm 1: walk
// left to right accumulating each polygon's signed winding count (Lemma 1/3
// generalized from parity to winding) and emit one trapezoid per maximal run
// where the operation holds under the fill rule. edge returns the
// (upward-oriented) segment, owner tag and winding delta of an id. For
// EvenOdd the ±1 deltas both flip parity, so the walk is bit-identical to
// the historical parity walk; the winding rules read the accumulated sign.
//
// Fully coincident edges (the only equal-x entries an arrange-resolved input
// can place on a beam midline) may be visited in either order; any
// transient strip between them has zero width, so the emitted trapezoid
// degenerates to its caps and cancels during assembly — the canonical
// shared-edge policy every engine inherits from this walk.
func BeamTrapezoids(scratch *Scratch, ids []int32, yb, yt float64, op engine.Op,
	rule engine.FillRule, edge func(int32) (geom.Segment, uint8, int8), out *[]engine.Trapezoid) {
	ymid := (yb + yt) / 2
	order := scratch.Entries(len(ids))
	for i, id := range ids {
		seg, owner, delta := edge(id)
		order[i] = Entry{X: seg.XAtY(ymid), ID: id, Owner: owner, Delta: delta}
	}
	SortByX(order)

	var windSub, windClip int16
	inOp := false
	var left int32 = -1
	for _, e := range order {
		if e.Owner == 0 {
			windSub += int16(e.Delta)
		} else {
			windClip += int16(e.Delta)
		}
		now := op.Eval(rule.Inside(windSub), rule.Inside(windClip))
		if now && !inOp {
			left = e.ID
		} else if !now && inOp {
			l, _, _ := edge(left)
			r, _, _ := edge(e.ID)
			tz := engine.Trapezoid{
				L1: geom.Point{X: l.XAtY(yb), Y: yb},
				R1: geom.Point{X: r.XAtY(yb), Y: yb},
				L2: geom.Point{X: l.XAtY(yt), Y: yt},
				R2: geom.Point{X: r.XAtY(yt), Y: yt},
			}
			ClampCorners(&tz)
			*out = append(*out, tz)
		}
		inOp = now
	}
}

// ClampCorners collapses an inverted corner pair — the left bound evaluating
// right of the right bound on a beam boundary — to its common midpoint.
// After arrangement resolution this can only come from weld roundoff, so the
// inversion is at most a few ulps wide; collapsing it keeps the cap
// intervals well-formed and, because the midpoint is an order-independent
// function of the two x values, the adjacent beam (which sees the same two
// edges in swapped order) computes the identical point and the shared caps
// still cancel exactly.
func ClampCorners(tz *engine.Trapezoid) {
	if tz.L1.X > tz.R1.X {
		m := (tz.L1.X + tz.R1.X) / 2
		tz.L1.X, tz.R1.X = m, m
	}
	if tz.L2.X > tz.R2.X {
		m := (tz.L2.X + tz.R2.X) / 2
		tz.L2.X, tz.R2.X = m, m
	}
}
