package geom

// Convex-window fast-path primitives (Skala's O(1) window accept/reject
// tests): the prepared-geometry pipeline classifies a clip window against a
// layer without touching a sweep whenever the window provably lies entirely
// inside or outside the layer. These predicates are the O(1) building blocks;
// the binary-search culling lives in internal/prepared.

// ContainsBBox reports whether o lies entirely inside the closed box b.
// An empty o is contained in everything.
func (b BBox) ContainsBBox(o BBox) bool {
	if o.IsEmpty() {
		return true
	}
	return o.MinX >= b.MinX && o.MaxX <= b.MaxX && o.MinY >= b.MinY && o.MaxY <= b.MaxY
}

// Center returns the box center. Meaningful only for non-empty boxes.
func (b BBox) Center() Point {
	return Point{X: (b.MinX + b.MaxX) / 2, Y: (b.MinY + b.MaxY) / 2}
}

// SegIntersectsBBox reports whether the closed segment meets the closed box,
// including touches (an endpoint on the boundary, an edge collinear with a
// box side). The test is exact: the only separating axes for a segment and
// an axis-aligned box are the two coordinate axes (covered by the span
// overlap checks) and the segment's own normal (covered by the robust
// orientation predicate over the box corners), so no epsilon enters the
// decision — which is what lets the window classifier's verdicts agree with
// the exact sweep on degenerate tiles.
func SegIntersectsBBox(s Segment, b BBox) bool {
	if b.IsEmpty() {
		return false
	}
	lox, hix := s.XSpan()
	if hix < b.MinX || lox > b.MaxX {
		return false
	}
	loy, hiy := s.YSpan()
	if hiy < b.MinY || loy > b.MaxY {
		return false
	}
	if s.A == s.B {
		return true // degenerate segment inside the span overlap
	}
	// Spans overlap; the segment misses the box only if all four corners lie
	// strictly on one side of its supporting line.
	c1 := Orient(s.A, s.B, Point{b.MinX, b.MinY})
	c2 := Orient(s.A, s.B, Point{b.MaxX, b.MinY})
	c3 := Orient(s.A, s.B, Point{b.MaxX, b.MaxY})
	c4 := Orient(s.A, s.B, Point{b.MinX, b.MaxY})
	allPos := c1 > 0 && c2 > 0 && c3 > 0 && c4 > 0
	allNeg := c1 < 0 && c2 < 0 && c3 < 0 && c4 < 0
	return !allPos && !allNeg
}

// Transpose returns the polygon reflected across the line y = x (every
// vertex's coordinates swapped). Reflection preserves even-odd parity, which
// is how the prepared pipeline reuses the horizontal band clipper for
// vertical bands: transpose, clip the y-band, transpose back.
func (p Polygon) Transpose() Polygon {
	out := make(Polygon, len(p))
	for i, r := range p {
		nr := make(Ring, len(r))
		for j, pt := range r {
			nr[j] = Point{X: pt.Y, Y: pt.X}
		}
		out[i] = nr
	}
	return out
}
