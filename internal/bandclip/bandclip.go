// Package bandclip clips an arbitrary even-odd polygon to a horizontal band
// lo <= y <= hi, exactly and in linear time. It implements the
// rectangle-clipping Steps 4–5 of the paper's multi-threaded Algorithm 2:
// the slabs span the full width of the data, so clipping to a slab is
// clipping to a y-band. The points where edges cross the band boundaries are
// the paper's "virtual vertices" (the k' term); the horizontal cap edges
// synthesized along the boundaries are the shared edges along which adjacent
// slabs' partial polygons are later merged (Fig. 6).
//
// The algorithm: each ring's edges are clipped to the band, producing chains
// whose open ends lie on the boundary lines; on each boundary the chain ends
// are sorted by x and paired consecutively — by the even-odd parity argument
// of the paper's Lemma 3, each consecutive pair bounds an interior interval —
// and the paired caps close the chains into output rings. Rings entirely
// inside the band pass through untouched; self-intersecting and multi-ring
// inputs are handled because only parity along the boundary lines matters.
package bandclip

import (
	"sync"

	"polyclip/internal/geom"
	"polyclip/internal/scanbeam"
)

// Chain ends lying on a band boundary are scanbeam entries: X is the end's
// boundary position, ID the chain index, and Owner records which end of the
// chain it is (1 = head, i.e. chains[ID][0]).

// link names the (chain, end) joined to another chain's end by a boundary cap.
type link struct {
	chain int32
	head  bool
}

// clipScratch recycles the chain-pairing buffers of Clip. Slab clipping runs
// one Clip per slab per operand, in parallel across slabs, so the scratch is
// pooled. The boundary-end buffers come from the shared scanbeam pool; the
// chains and rings themselves escape into the result and cannot be pooled.
type clipScratch struct {
	links [][2]link
	used  []bool
}

var clipPool = sync.Pool{New: func() any { return new(clipScratch) }}

func (s *clipScratch) linkBufs(n int) (links [][2]link, used []bool) {
	if cap(s.links) < n {
		s.links = make([][2]link, n)
		s.used = make([]bool, n)
	}
	links, used = s.links[:n], s.used[:n]
	for i := range used {
		links[i] = [2]link{}
		used[i] = false
	}
	return links, used
}

// Clip returns the part of the polygon with lo <= y <= hi.
func Clip(poly geom.Polygon, lo, hi float64) geom.Polygon {
	if lo >= hi || len(poly) == 0 {
		return nil
	}
	var out geom.Polygon
	var chains []geom.Ring // open polylines with ends on the boundaries

	for _, r := range poly {
		clipRing(r, lo, hi, &out, &chains)
	}
	if len(chains) == 0 {
		return out
	}

	scratch := clipPool.Get().(*clipScratch)
	defer clipPool.Put(scratch)
	loScr, hiScr := scanbeam.Get(), scanbeam.Get()
	defer scanbeam.Put(loScr)
	defer scanbeam.Put(hiScr)

	// Collect chain ends per boundary and pair them by x.
	loEnds := loScr.Grow(2 * len(chains))
	hiEnds := hiScr.Grow(2 * len(chains))
	addEnd := func(c int32, head bool) {
		var p geom.Point
		if head {
			p = chains[c][0]
		} else {
			p = chains[c][len(chains[c])-1]
		}
		ref := scanbeam.Entry{X: p.X, ID: c}
		if head {
			ref.Owner = 1
		}
		if p.Y == lo {
			loEnds = append(loEnds, ref)
		} else {
			hiEnds = append(hiEnds, ref)
		}
	}
	for c := range chains {
		addEnd(int32(c), true)
		addEnd(int32(c), false)
	}
	loScr.Keep(loEnds)
	hiScr.Keep(hiEnds)

	// links[c][0] is the (chain, end) joined to chains[c]'s head, links[c][1]
	// to its tail.
	links, used := scratch.linkBufs(len(chains))
	pair := func(ends []scanbeam.Entry) {
		scanbeam.SortByX(ends)
		for i := 0; i+1 < len(ends); i += 2 {
			a, b := ends[i], ends[i+1]
			ia, ib := 1, 1
			if a.Owner == 1 {
				ia = 0
			}
			if b.Owner == 1 {
				ib = 0
			}
			links[a.ID][ia] = link{b.ID, b.Owner == 1}
			links[b.ID][ib] = link{a.ID, a.Owner == 1}
		}
	}
	pair(loEnds)
	pair(hiEnds)

	// Walk the chain-cap cycles.
	for start := range chains {
		if used[start] {
			continue
		}
		var ring geom.Ring
		cur, fromHead := int32(start), true
		for !used[cur] {
			used[cur] = true
			pts := chains[cur]
			if fromHead {
				ring = append(ring, pts...)
			} else {
				for i := len(pts) - 1; i >= 0; i-- {
					ring = append(ring, pts[i])
				}
			}
			// Leave via the opposite end.
			var exit link
			if fromHead {
				exit = links[cur][1] // left via tail
			} else {
				exit = links[cur][0]
			}
			cur, fromHead = exit.chain, exit.head
		}
		if len(ring) >= 3 {
			out = append(out, dedupClosed(ring))
		}
	}
	return out
}

// clipRing clips one ring, appending fully inside rings to out and partial
// chains to chains.
func clipRing(r geom.Ring, lo, hi float64, out *geom.Polygon, chains *[]geom.Ring) {
	n := len(r)
	if n < 3 {
		return
	}
	inside := true
	for _, p := range r {
		if p.Y < lo || p.Y > hi {
			inside = false
			break
		}
	}
	if inside {
		*out = append(*out, r.Clone())
		return
	}
	// Does the ring intersect the band at all?
	rlo, rhi := r[0].Y, r[0].Y
	for _, p := range r {
		if p.Y < rlo {
			rlo = p.Y
		}
		if p.Y > rhi {
			rhi = p.Y
		}
	}
	if rhi < lo || rlo > hi {
		return
	}

	var cur geom.Ring
	var local []geom.Ring
	flush := func() {
		if len(cur) >= 2 {
			local = append(local, cur)
		}
		cur = nil
	}

	for i := 0; i < n; i++ {
		a, b := r[i], r[(i+1)%n]
		if a == b {
			// A zero-length edge must not break the current chain: flushing
			// here would leave chain ends in the band interior, corrupting the
			// boundary-pairing parity walk.
			continue
		}
		pa, pb, ok := clipEdgeToBand(a, b, lo, hi)
		if !ok {
			flush()
			continue
		}
		if len(cur) == 0 {
			cur = append(cur, pa)
		} else if cur[len(cur)-1] != pa {
			// Edge re-enters at a different point: break the chain.
			flush()
			cur = append(cur, pa)
		}
		if pb != cur[len(cur)-1] {
			cur = append(cur, pb)
		}
	}
	flush()

	// Wraparound: if the ring started strictly inside the band, the last
	// chain continues into the first one.
	if len(local) >= 2 {
		last := local[len(local)-1]
		head := local[0]
		if last[len(last)-1] == head[0] && strictlyInside(head[0].Y, lo, hi) {
			local[0] = append(last, head[1:]...)
			local = local[:len(local)-1]
		}
	} else if len(local) == 1 {
		c := local[0]
		if len(c) >= 3 && c[0] == c[len(c)-1] {
			// Chain closed onto itself (ring grazing the boundary).
			*out = append(*out, dedupClosed(c[:len(c)-1]))
			local = local[:0]
		}
	}
	*chains = append(*chains, local...)
}

func strictlyInside(y, lo, hi float64) bool { return y > lo && y < hi }

// clipEdgeToBand clips segment a->b to the band, returning the clipped
// endpoints. ok is false when the edge lies outside the band (touching in a
// single point also returns false: such pieces are degenerate).
func clipEdgeToBand(a, b geom.Point, lo, hi float64) (pa, pb geom.Point, ok bool) {
	ya, yb := a.Y, b.Y
	if ya <= lo && yb <= lo {
		return pa, pb, false
	}
	if ya >= hi && yb >= hi {
		// Both at or above hi: outside unless exactly on the boundary line.
		if ya == hi && yb == hi {
			return a, b, true // horizontal edge lying on the top boundary
		}
		return pa, pb, false
	}
	if ya == lo && yb == lo {
		return a, b, true // horizontal edge on the bottom boundary
	}
	pa, pb = a, b
	seg := geom.Segment{A: a, B: b}
	if ya < lo {
		pa = geom.Point{X: seg.XAtY(lo), Y: lo}
	} else if ya > hi {
		pa = geom.Point{X: seg.XAtY(hi), Y: hi}
	}
	if yb < lo {
		pb = geom.Point{X: seg.XAtY(lo), Y: lo}
	} else if yb > hi {
		pb = geom.Point{X: seg.XAtY(hi), Y: hi}
	}
	if pa == pb {
		return pa, pb, false
	}
	return pa, pb, true
}

// dedupClosed removes consecutive duplicate vertices from a closed ring.
func dedupClosed(r geom.Ring) geom.Ring {
	out := r[:0]
	for i, p := range r {
		if i == 0 || p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	if len(out) > 1 && out[0] == out[len(out)-1] {
		out = out[:len(out)-1]
	}
	return out
}
