package geom

import "math"

// AutoSnapEps picks the vertex-snapping grid for a clipping run over the two
// operands: proportional to the data magnitude, and shared by every worker
// of one run so seam geometry produced independently (e.g. by different slab
// workers) quantizes identically. Previously re-derived separately by the
// overlay engine and the slab decomposition; this is the one policy both
// compose.
func AutoSnapEps(a, b Polygon) float64 {
	box := a.BBox().Union(b.BBox())
	m := box.Width()
	if h := box.Height(); h > m {
		m = h
	}
	// The grid must also respect the absolute coordinate magnitude:
	// float64 cannot address (and int64 cannot index) positions finer than
	// a relative 1e-12 of the largest coordinate.
	for _, v := range [...]float64{box.MinX, box.MaxX, box.MinY, box.MaxY} {
		if a := math.Abs(v); a > m && !math.IsInf(a, 0) {
			m = a
		}
	}
	if m <= 0 {
		m = 1
	}
	// Round the grid up to a power of two so quantizing binary-representable
	// coordinates (integers, halves, ...) is exact and outputs stay clean.
	return math.Pow(2, math.Ceil(math.Log2(m*RelEps)))
}

// SnapPolygon quantizes every vertex onto the eps grid — the same rounding
// the overlay engine applies before pair finding, so geometry snapped here
// and geometry snapped inside a downstream sweep quantize identically.
// Consecutive duplicate vertices are merged and rings that degenerate below
// three distinct vertices are dropped. eps <= 0 returns p unchanged.
func SnapPolygon(p Polygon, eps float64) Polygon {
	if eps <= 0 {
		return p
	}
	inv := 1 / eps
	snap := func(v float64) float64 { return math.Round(v*inv) * eps }
	out := make(Polygon, 0, len(p))
	for _, r := range p {
		nr := make(Ring, 0, len(r))
		for _, pt := range r {
			q := Point{X: snap(pt.X), Y: snap(pt.Y)}
			if len(nr) == 0 || q != nr[len(nr)-1] {
				nr = append(nr, q)
			}
		}
		for len(nr) > 1 && nr[len(nr)-1] == nr[0] {
			nr = nr[:len(nr)-1]
		}
		if len(nr) >= 3 {
			out = append(out, nr)
		}
	}
	return out
}
