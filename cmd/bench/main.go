// Command bench regenerates the paper's tables and figures. Each experiment
// prints the same rows/series the paper reports (see DESIGN.md for the
// per-experiment index and EXPERIMENTS.md for paper-vs-measured results).
//
// Usage:
//
//	bench -exp all                 # run everything at default scale
//	bench -exp fig10 -scale 0.01   # one experiment at a chosen data scale
//	bench -exp table1,table2,pram
//
// Experiments: table1 table2 table3 fig7 fig8 fig9 fig10 fig11 fig12 pram
// ablations resilience. With -json each experiment is emitted as one JSON
// object per line ({name, rows, counters}); the resilience experiment's
// counters are the aggregated Stats.Resilience totals, so a perf trajectory
// recorded from this output also tracks degradation frequency.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"polyclip/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "comma-separated experiments, or 'all'")
	scale := flag.Float64("scale", 0.005, "dataset scale for Table III workloads (1.0 = full paper size)")
	features := flag.Int("features", 200000, "feature count per layer for the overlay experiment")
	repeat := flag.Float64("repeat", 0.5, "repeated-operand fraction for the overlay experiment")
	rings := flag.Int("rings", 64, "layer ring count for the tiles experiment")
	maxZoom := flag.Int("maxzoom", 6, "deepest pyramid zoom for the tiles experiment")
	seed := flag.Int64("seed", 42, "random seed")
	threads := flag.String("threads", "1,2,4,8,16,32,64", "thread counts for scaling experiments")
	asJSON := flag.Bool("json", false, "emit one JSON object per experiment instead of formatted text")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the experiments) to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	var ts []int
	for _, f := range strings.Split(*threads, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &v); err == nil && v > 0 {
			ts = append(ts, v)
		}
	}
	if len(ts) == 0 {
		ts = []int{1, 2, 4, 8}
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	enc := json.NewEncoder(os.Stdout)
	run := func(name string, fn func() harness.Result) {
		if !all && !want[name] {
			return
		}
		r := fn()
		if *asJSON {
			if err := enc.Encode(r); err != nil {
				fmt.Fprintf(os.Stderr, "encode %s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
		fmt.Println(r.Text)
	}

	run("table1", harness.TableI)
	run("table2", harness.TableII)
	run("table3", func() harness.Result { return harness.TableIII(*scale, *seed) })
	run("fig7", func() harness.Result {
		return harness.Fig7([]int{1000, 2000, 4000, 8000, 16000, 32000}, *seed)
	})
	run("fig8", func() harness.Result {
		return harness.Fig8([]int{2000, 8000, 32000}, ts, *seed)
	})
	run("fig9", func() harness.Result {
		return harness.Fig9(ts, []int{8000, 32000}, *seed)
	})
	run("fig10", func() harness.Result { return harness.Fig10(ts, *scale, *seed) })
	run("fig11", func() harness.Result {
		p := ts[len(ts)-1]
		return harness.Fig11(p, *scale, *seed)
	})
	run("fig12", func() harness.Result {
		p := ts[len(ts)-1]
		return harness.Fig12(p, *scale, *seed)
	})
	run("pram", func() harness.Result {
		return harness.PramValidation([]int{256, 1024, 4096}, *seed)
	})
	run("ablations", func() harness.Result { return harness.Ablations(*seed) })
	run("resilience", func() harness.Result { return harness.ResilienceSummary(105, *seed) })
	// The overlay benchmark is explicit-only (not part of 'all'): at its
	// default million-feature scale it dwarfs every other experiment.
	if want["overlay"] {
		run("overlay", func() harness.Result {
			return harness.Overlay(*features, *repeat, runtime.NumCPU(), *seed)
		})
	}
	// The tiles benchmark is likewise explicit-only: its naive baseline
	// re-clips the whole layer per tile by design.
	if want["tiles"] {
		run("tiles", func() harness.Result {
			return harness.Tiles(*rings, *maxZoom, runtime.NumCPU(), *seed)
		})
	}

	if !all {
		for e := range want {
			switch e {
			case "table1", "table2", "table3", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "pram", "ablations", "resilience", "overlay", "tiles":
			default:
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", e)
				os.Exit(2)
			}
		}
	}
}
