package overlay

import (
	"context"

	"polyclip/internal/engine"
	"polyclip/internal/geom"
)

// clipEngine adapts the overlay pipeline to the engine registry: the default
// strategy. The classification stage carries signed winding counts, so all
// four fill rules run natively.
type clipEngine struct{}

func (clipEngine) Name() string { return "overlay" }

func (clipEngine) Capabilities() engine.Capabilities {
	return engine.Capabilities{
		Rules:        engine.AllRules(),
		Cancellable:  true,
		Parallel:     true,
		SlabHostable: true,
	}
}

func (e clipEngine) Clip(ctx context.Context, a, b geom.Polygon, op engine.Op, opt engine.Options) (engine.Result, error) {
	if err := engine.CheckRule(e, opt.Rule); err != nil {
		return engine.Result{}, err
	}
	out, err := ClipCtx(ctx, a, b, op, Options{
		Parallelism: opt.Threads,
		Rule:        opt.Rule,
		SnapEps:     opt.SnapEps,
	})
	return engine.Result{Polygon: out}, err
}

func init() { engine.Register(clipEngine{}) }
