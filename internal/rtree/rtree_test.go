package rtree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"polyclip/internal/geom"
)

func randomBoxes(rng *rand.Rand, n int, span float64) []geom.BBox {
	boxes := make([]geom.BBox, n)
	for i := range boxes {
		x := rng.Float64() * span
		y := rng.Float64() * span
		boxes[i] = geom.BBox{MinX: x, MinY: y, MaxX: x + rng.Float64()*5, MaxY: y + rng.Float64()*5}
	}
	return boxes
}

func ids(t *Tree, q geom.BBox, boxes []geom.BBox) []int32 {
	var got []int32
	t.SearchFiltered(q, func(id int32) geom.BBox { return boxes[id] }, func(id int32) {
		got = append(got, id)
	})
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	return got
}

func TestEmptyTree(t *testing.T) {
	tr := Build(0, nil)
	if tr.Len() != 0 {
		t.Errorf("len = %d", tr.Len())
	}
	if !tr.Bounds().IsEmpty() {
		t.Error("bounds should be empty")
	}
	tr.Search(geom.BBox{MaxX: 1, MaxY: 1}, func(int32) { t.Error("visited in empty tree") })
}

func TestSingleItem(t *testing.T) {
	boxes := []geom.BBox{{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}}
	tr := Build(1, func(i int32) geom.BBox { return boxes[i] })
	if got := ids(tr, geom.BBox{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3}, boxes); len(got) != 1 {
		t.Errorf("got %v", got)
	}
	if got := ids(tr, geom.BBox{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}, boxes); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{5, 17, 100, 1000, 5000} {
		boxes := randomBoxes(rng, n, 100)
		tr := Build(n, func(i int32) geom.BBox { return boxes[i] })
		if tr.Len() != n {
			t.Fatalf("len = %d", tr.Len())
		}
		for q := 0; q < 20; q++ {
			x := rng.Float64() * 100
			y := rng.Float64() * 100
			query := geom.BBox{MinX: x, MinY: y, MaxX: x + rng.Float64()*20, MaxY: y + rng.Float64()*20}
			var want []int32
			for i, b := range boxes {
				if b.Intersects(query) {
					want = append(want, int32(i))
				}
			}
			got := ids(tr, query, boxes)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d query %d: got %d items want %d", n, q, len(got), len(want))
			}
		}
	}
}

func TestBoundsCoverAll(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	boxes := randomBoxes(rng, 300, 50)
	tr := Build(300, func(i int32) geom.BBox { return boxes[i] })
	root := tr.Bounds()
	for _, b := range boxes {
		if b.MinX < root.MinX || b.MaxX > root.MaxX || b.MinY < root.MinY || b.MaxY > root.MaxY {
			t.Fatal("root bounds do not cover an item")
		}
	}
}

func TestJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	boxesA := randomBoxes(rng, 120, 60)
	boxesB := randomBoxes(rng, 150, 60)
	tr := Build(len(boxesB), func(i int32) geom.BBox { return boxesB[i] })
	got := tr.Join(len(boxesA),
		func(i int32) geom.BBox { return boxesA[i] },
		func(j int32) geom.BBox { return boxesB[j] })
	var want [][2]int32
	for i := range boxesA {
		for j := range boxesB {
			if boxesA[i].Intersects(boxesB[j]) {
				want = append(want, [2]int32{int32(i), int32(j)})
			}
		}
	}
	sortPairs := func(ps [][2]int32) {
		sort.Slice(ps, func(a, b int) bool {
			if ps[a][0] != ps[b][0] {
				return ps[a][0] < ps[b][0]
			}
			return ps[a][1] < ps[b][1]
		})
	}
	sortPairs(got)
	sortPairs(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("join: got %d pairs want %d", len(got), len(want))
	}
}

func TestDegenerateIdenticalBoxes(t *testing.T) {
	boxes := make([]geom.BBox, 64)
	for i := range boxes {
		boxes[i] = geom.BBox{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}
	}
	tr := Build(64, func(i int32) geom.BBox { return boxes[i] })
	got := ids(tr, geom.BBox{MinX: 1.5, MinY: 1.5, MaxX: 1.6, MaxY: 1.6}, boxes)
	if len(got) != 64 {
		t.Errorf("got %d, want 64", len(got))
	}
}
