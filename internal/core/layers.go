package core

import (
	"context"
	"math"
	"sync/atomic"
	"time"

	"polyclip/internal/rtree"

	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/guard"
	"polyclip/internal/par"
)

// Layer is a set of polygon features (a GIS layer). Features within one
// layer are assumed not to overlap each other (true of administrative
// boundaries, urban areas and the like), so the layer as a whole is a valid
// even-odd region.
type Layer []geom.Polygon

// NumVertices returns the total vertex count of the layer.
func (l Layer) NumVertices() int {
	n := 0
	for _, f := range l {
		n += f.NumVertices()
	}
	return n
}

// BBox returns the layer's bounding box (the paper's MBR of the union).
func (l Layer) BBox() geom.BBox {
	box := geom.EmptyBBox()
	for _, f := range l {
		box = box.Union(f.BBox())
	}
	return box
}

// ClipLayers overlays two feature layers with the pthread variant of
// Algorithm 2 (§IV last paragraph): feature MBR y-extents form the event
// list, slabs get roughly equal numbers of events, and features spanning
// slab boundaries are replicated rather than split. Each candidate feature
// pair (bounding boxes overlapping) is clipped by the sequential engine in
// exactly one slab — the slab containing the bottom of the pair's shared
// MBR — which eliminates the redundant outputs the paper removes by
// post-processing. Results are per-pair outputs concatenated; no merge
// phase is needed.
func ClipLayers(a, b Layer, op Op, opt Options) ([]geom.Polygon, *Stats) {
	out, st, err := ClipLayersCtx(context.Background(), a, b, op, opt)
	if err != nil {
		panic(err)
	}
	return out, st
}

// ClipLayersCtx is ClipLayers with cooperative cancellation and panic
// isolation. The pair loop polls ctx, so after cancellation no further
// feature pair is clipped and ctx.Err() is returned. A panic while clipping
// one pair is recovered; unless opt.NoFallback is set the pair is retried
// once with the other sequential engine (the differential rescue, counted
// in Stats.Resilience.Recovered), and only if that also fails does the
// *guard.ClipError — carrying the offending pair — surface as the error.
func ClipLayersCtx(ctx context.Context, a, b Layer, op Op, opt Options) ([]geom.Polygon, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p := opt.Threads
	if p <= 0 {
		p = par.DefaultParallelism()
	}
	nslabs := opt.Slabs
	if nslabs <= 0 {
		nslabs = p
	}
	st := &Stats{}
	snapEps := geom.AutoSnapEps(flatten(a), flatten(b))

	// Event list: MBR y-extents of every feature (two events per feature).
	t0 := time.Now()
	boxesA := make([]geom.BBox, len(a))
	boxesB := make([]geom.BBox, len(b))
	ys := make([]float64, 0, 2*(len(a)+len(b)))
	for i, f := range a {
		boxesA[i] = f.BBox()
		ys = append(ys, boxesA[i].MinY, boxesA[i].MaxY)
	}
	for i, f := range b {
		boxesB[i] = f.BBox()
		ys = append(ys, boxesB[i].MinY, boxesB[i].MaxY)
	}
	par.Sort(ys, func(x, y float64) bool { return x < y }, p)
	dedup := ys[:0]
	for i, v := range ys {
		if i == 0 || v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	ys = dedup
	st.Sort = time.Since(t0)
	if len(ys) == 0 {
		return nil, st, ctx.Err()
	}

	bounds := slabBoundaries(ys, nslabs, opt.Partition)
	ns := len(bounds) - 1
	st.Slabs = ns

	// Candidate pairs by an MBR grid join (linear in features + candidates,
	// instead of the quadratic per-slab double loop), then each pair is
	// assigned to the slab containing the midpoint of its shared y-range —
	// the replication scheme without the redundant clips.
	t1 := time.Now()
	pairsPerSlab := make([][][2]int32, ns)
	ownerSlab := func(y float64) int {
		for s := 0; s < ns; s++ {
			if y <= bounds[s+1] {
				return s
			}
		}
		return ns - 1
	}
	for _, pr := range mbrJoin(boxesA, boxesB) {
		ba, bb := boxesA[pr[0]], boxesB[pr[1]]
		loY := math.Max(ba.MinY, bb.MinY)
		hiY := math.Min(ba.MaxY, bb.MaxY)
		s := ownerSlab((loY + hiY) / 2)
		pairsPerSlab[s] = append(pairsPerSlab[s], pr)
	}
	st.Partition = time.Since(t1)

	// Per-slab pairwise clipping. Each pair clip is panic-isolated and, on
	// failure, rescued once by the other sequential engine. The slab loop
	// runs under a watchdog: if ctx expires while a pair worker is wedged,
	// the stage is abandoned (buffers discarded, never reused) and a
	// timeout-flavoured *guard.ClipError is returned instead of blocking
	// forever.
	t2 := time.Now()
	var results [][]geom.Polygon
	perThread := make([]time.Duration, ns)
	var firstErr atomic.Pointer[guard.ClipError]
	var rescued atomic.Int32
	res := make([][]geom.Polygon, ns)
	werr := par.ForEachCtx(ctx, ns, p, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			ts := time.Now()
			var out []geom.Polygon
			for _, pr := range pairsPerSlab[s] {
				if canceled(ctx) || firstErr.Load() != nil {
					break
				}
				c, wasRescued, ce := pairClipSafe(ctx, opt, a[pr[0]], b[pr[1]], op, snapEps, pr)
				if ce != nil {
					firstErr.CompareAndSwap(nil, ce)
					break
				}
				if wasRescued {
					rescued.Add(1)
				}
				if len(c) > 0 {
					out = append(out, c)
				}
			}
			res[s] = out
			perThread[s] = time.Since(ts)
		}
	})
	st.Clip = time.Since(t2)
	st.Resilience.Recovered = int(rescued.Load())
	if werr != nil {
		return nil, st, stageError("pair-clip", werr)
	}
	st.PerThread = perThread
	results = res
	if ce := firstErr.Load(); ce != nil {
		return nil, st, ce
	}
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}

	t3 := time.Now()
	var out []geom.Polygon
	for _, r := range results {
		out = append(out, r...)
	}
	st.Merge = time.Since(t3)
	return out, st, nil
}

// pairClipSafe clips one candidate feature pair with panic isolation: a
// panic in the selected engine is recovered and — unless opt.NoFallback —
// the pair is retried once with a different slab-hostable engine from the
// registry (the differential rescue). The returned bool reports a successful
// rescue; a non-nil *guard.ClipError means both the engine and its rescue
// failed (or fallback was disabled).
func pairClipSafe(ctx context.Context, opt Options, a, b geom.Polygon, op Op, snapEps float64, pr [2]int32) (geom.Polygon, bool, *guard.ClipError) {
	eng := slabEngine(opt)
	run := func(e engine.Engine) (out geom.Polygon, ce *guard.ClipError) {
		defer func() {
			if r := recover(); r != nil {
				ce = guard.FromPanic("pair-clip", -1, [2]int{int(pr[0]), int(pr[1])}, r)
			}
		}()
		guard.Hit("core.pair-clip")
		return slabClip(ctx, e, a, b, op, snapEps), nil
	}
	out, ce := run(eng)
	if ce == nil {
		return out, false, nil
	}
	if opt.NoFallback {
		return nil, false, ce
	}
	alt, ok := engine.SlabAlternate(eng.Name())
	if !ok {
		return nil, false, ce
	}
	out, ce2 := run(alt)
	if ce2 != nil {
		return nil, false, ce // surface the original failure
	}
	return out, true, nil
}

// ClipLayersMerged overlays two layers by fusing each layer into one
// even-odd multi-polygon and running ClipPair — the splitting variant of
// Algorithm 2. Unlike ClipLayers this supports union and difference
// between whole layers.
func ClipLayersMerged(a, b Layer, op Op, opt Options) (geom.Polygon, *Stats) {
	return ClipPair(flatten(a), flatten(b), op, opt)
}

// ClipLayersMergedCtx is ClipLayersMerged with cooperative cancellation and
// panic isolation (see ClipPairCtx).
func ClipLayersMergedCtx(ctx context.Context, a, b Layer, op Op, opt Options) (geom.Polygon, *Stats, error) {
	return ClipPairCtx(ctx, flatten(a), flatten(b), op, opt)
}

func flatten(l Layer) geom.Polygon {
	var out geom.Polygon
	for _, f := range l {
		out = append(out, f...)
	}
	return out
}

// LayerArea returns the summed even-odd area of the layer's features.
func LayerArea(l Layer) float64 {
	var s float64
	for _, f := range l {
		s += f.Area()
	}
	return s
}

// mbrJoin returns every (i, j) with boxesA[i] intersecting boxesB[j], via
// an STR-packed R-tree over the B boxes. Cost is near-linear in boxes plus
// candidates.
func mbrJoin(boxesA, boxesB []geom.BBox) [][2]int32 {
	if len(boxesA) == 0 || len(boxesB) == 0 {
		return nil
	}
	tr := rtree.Build(len(boxesB), func(j int32) geom.BBox { return boxesB[j] })
	return tr.Join(len(boxesA),
		func(i int32) geom.BBox { return boxesA[i] },
		func(j int32) geom.BBox { return boxesB[j] })
}
