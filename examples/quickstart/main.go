// Quickstart: clip two squares with every boolean operation and print the
// results as WKT.
package main

import (
	"fmt"

	"polyclip"
)

func main() {
	a := polyclip.Polygon{polyclip.Ring{
		{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4},
	}}
	b := polyclip.Polygon{polyclip.Ring{
		{X: 2, Y: 2}, {X: 6, Y: 2}, {X: 6, Y: 6}, {X: 2, Y: 6},
	}}

	for _, op := range []polyclip.Op{
		polyclip.Intersection, polyclip.Union, polyclip.Difference, polyclip.Xor,
	} {
		out := polyclip.Clip(a, b, op)
		fmt.Printf("%-13s area=%-5.1f %s\n", op, polyclip.Area(out), polyclip.FormatWKT(out))
	}

	// The same clip through the paper's multi-threaded slab algorithm, with
	// phase timings.
	out, st := polyclip.ClipWith(a, b, polyclip.Intersection, polyclip.Options{
		Algorithm: polyclip.AlgoSlabs,
		Threads:   4,
	})
	fmt.Printf("\nslab algorithm: area=%.1f slabs=%d partition=%v clip=%v merge=%v\n",
		polyclip.Area(out), st.Slabs, st.Partition, st.Clip, st.Merge)
}
