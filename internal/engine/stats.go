package engine

import "time"

// Stats reports where the time went, for the paper's figures, plus the
// resilience record of the hardened pipeline. It is the engine-facing half
// of the public Stats type: internal/core and the root package alias it.
//
// The JSON tags are a stable serialization contract (lower-camel names,
// durations as nanosecond integers) relied on by the clipd service and the
// BENCH_clipd.json artifacts; renaming a tag is a breaking change.
type Stats struct {
	// Engine is the registry name of the engine that produced the accepted
	// result, recorded by the resilience chain.
	Engine string `json:"engine,omitempty"`
	Slabs  int    `json:"slabs"` // number of slabs actually used
	// CrossingEstimate is the arrangement pre-scan's intersection-count
	// estimate (arrange.ResolvePairEstimate) that the adaptive slab count is
	// derived from; 0 when the engine does not run the pre-scan.
	CrossingEstimate int             `json:"crossingEstimate,omitempty"`
	Sort             time.Duration   `json:"sortNs"`                // Step 1–2: event sort
	Partition        time.Duration   `json:"partitionNs"`           // Steps 4–5: rectangle clipping into slabs
	Clip             time.Duration   `json:"clipNs"`                // Step 6: per-slab clipping (wall clock)
	Merge            time.Duration   `json:"mergeNs"`               // Step 8: merging partial outputs
	PerThread        []time.Duration `json:"perThreadNs,omitempty"` // per-slab clip time (Fig. 11 load balance)
	// Resilience records what the hardened clipping path did: input repair,
	// the engine attempts and their outcomes, and recovered worker panics.
	Resilience Resilience `json:"resilience"`
}

// Resilience is the record of the hardened pipeline's interventions for one
// clipping run. Its JSON tags share the Stats serialization contract.
type Resilience struct {
	// Repaired reports that guard.Repair modified an input (duplicate
	// vertices, spikes, or degenerate rings removed).
	Repaired bool `json:"repaired"`
	// Attempts lists every engine attempt as "name:outcome", in order —
	// e.g. ["slabs:panic", "overlay-coarse:audit-fail", "vatti:ok"].
	Attempts []string `json:"attempts,omitempty"`
	// Recovered counts worker panics (or abandoned stages) that were rescued
	// — by a stage retry or a fallback engine — without surfacing an error.
	Recovered int `json:"recovered"`
	// StageTimeouts counts pipeline stages abandoned by their watchdog
	// because the stage's share of the deadline expired before every worker
	// finished.
	StageTimeouts int `json:"stageTimeouts"`
	// Retries counts stage-level retry attempts: a timed-out or panicked
	// stage is re-run once, sequentially, on fresh buffers.
	Retries int `json:"retries"`
	// InvariantFailures counts failed result-invariant checks: audit
	// rejections in the differential-fallback chain and metamorphic
	// invariant violations found by the chaos harness.
	InvariantFailures int `json:"invariantFailures"`
}

// Merge accumulates another record's counters into r (the Attempts list is
// concatenated). Used when one logical clip runs several engine attempts,
// each with its own Stats.
func (r *Resilience) Merge(o Resilience) {
	r.Repaired = r.Repaired || o.Repaired
	r.Attempts = append(r.Attempts, o.Attempts...)
	r.Recovered += o.Recovered
	r.StageTimeouts += o.StageTimeouts
	r.Retries += o.Retries
	r.InvariantFailures += o.InvariantFailures
}

// CriticalPath returns the modelled parallel clip time: the maximum
// per-thread clip time. On hosts with fewer cores than threads the wall
// clock cannot show the paper's scaling; max-over-slabs is the
// machine-independent quantity the speedup figures are shaped by.
func (s *Stats) CriticalPath() time.Duration {
	var m time.Duration
	for _, d := range s.PerThread {
		if d > m {
			m = d
		}
	}
	return m
}

// TotalWork returns the summed per-thread clip time.
func (s *Stats) TotalWork() time.Duration {
	var t time.Duration
	for _, d := range s.PerThread {
		t += d
	}
	return t
}

// ModelledParallel returns the modelled end-to-end duration with p
// concurrent workers: sort + partition + per-slab work scheduled greedily
// over p workers + merge. This is what Figures 8/10/12 plot when the host
// has fewer physical cores than threads.
func (s *Stats) ModelledParallel(p int) time.Duration {
	if p <= 0 {
		p = 1
	}
	// Greedy longest-processing-time schedule of slab times onto p workers.
	loads := make([]time.Duration, p)
	for _, d := range s.PerThread {
		mi := 0
		for i := 1; i < p; i++ {
			if loads[i] < loads[mi] {
				mi = i
			}
		}
		loads[mi] += d
	}
	var mx time.Duration
	for _, l := range loads {
		if l > mx {
			mx = l
		}
	}
	return s.Sort + s.Partition + mx + s.Merge
}
