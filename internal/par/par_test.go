package par

import (
	"math/rand"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForEachCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, p := range []int{1, 2, 8, 1000} {
			var seen int64
			ForEach(n, p, func(lo, hi int) {
				atomic.AddInt64(&seen, int64(hi-lo))
			})
			if seen != int64(n) {
				t.Errorf("n=%d p=%d covered %d", n, p, seen)
			}
		}
	}
}

func TestForEachItemEachOnce(t *testing.T) {
	n := 500
	marks := make([]int32, n)
	ForEachItem(n, 4, func(i int) { atomic.AddInt32(&marks[i], 1) })
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d visited %d times", i, m)
		}
	}
}

func TestPrefixSum(t *testing.T) {
	xs := []int{1, 2, 3, 4}
	if total := PrefixSum(xs); total != 10 {
		t.Errorf("total = %d", total)
	}
	if !reflect.DeepEqual(xs, []int{1, 3, 6, 10}) {
		t.Errorf("xs = %v", xs)
	}
}

func TestExclusivePrefixSum(t *testing.T) {
	xs := []int{1, 2, 3, 4}
	if total := ExclusivePrefixSum(xs); total != 10 {
		t.Errorf("total = %d", total)
	}
	if !reflect.DeepEqual(xs, []int{0, 1, 3, 6}) {
		t.Errorf("xs = %v", xs)
	}
}

func TestParallelPrefixSumMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 100, 2047, 2048, 10000, 100003} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(100) - 50
		}
		want := make([]int, n)
		copy(want, xs)
		wantTotal := PrefixSum(want)
		gotTotal := ParallelPrefixSum(xs, 8)
		if gotTotal != wantTotal {
			t.Errorf("n=%d total=%d want %d", n, gotTotal, wantTotal)
		}
		if !reflect.DeepEqual(xs, want) {
			t.Errorf("n=%d prefix sums differ", n)
		}
	}
}

func TestPrefixSumParityIsLemma3(t *testing.T) {
	// Lemma 3: labels 0/1 per edge; a vertex is contributing iff the prefix
	// sum at its position is odd.
	labels := []int{0, 1, 0, 1, 1, 0} // clip edges marked 1
	PrefixSum(labels)
	odd := []bool{false, true, true, false, true, true}
	for i, want := range odd {
		if got := labels[i]%2 == 1; got != want {
			t.Errorf("pos %d parity=%v want %v", i, got, want)
		}
	}
}

func TestSortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 100, 5000, 50000} {
		for _, p := range []int{1, 4} {
			xs := make([]int, n)
			for i := range xs {
				xs[i] = rng.Intn(1000)
			}
			want := make([]int, n)
			copy(want, xs)
			sort.Ints(want)
			Sort(xs, func(a, b int) bool { return a < b }, p)
			if !reflect.DeepEqual(xs, want) {
				t.Fatalf("n=%d p=%d not sorted", n, p)
			}
		}
	}
}

func TestSortStability(t *testing.T) {
	type kv struct{ k, seq int }
	n := 30000
	xs := make([]kv, n)
	rng := rand.New(rand.NewSource(9))
	for i := range xs {
		xs[i] = kv{rng.Intn(10), i}
	}
	Sort(xs, func(a, b kv) bool { return a.k < b.k }, 4)
	for i := 1; i < n; i++ {
		if xs[i-1].k == xs[i].k && xs[i-1].seq > xs[i].seq {
			t.Fatalf("stability violated at %d", i)
		}
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]int{1, 2, 2, 3}, func(a, b int) bool { return a < b }) {
		t.Error("sorted slice reported unsorted")
	}
	if IsSorted([]int{2, 1}, func(a, b int) bool { return a < b }) {
		t.Error("unsorted slice reported sorted")
	}
}

func TestCountInversionsKnown(t *testing.T) {
	cases := []struct {
		xs   []int
		want int64
	}{
		{nil, 0},
		{[]int{1}, 0},
		{[]int{1, 2, 3}, 0},
		{[]int{3, 2, 1}, 3},
		{[]int{3, 2, 4, 1}, 4}, // paper Fig. 4: (3,1) (3,2) (4,1) (2,1)
		{[]int{2, 1, 2}, 1},
		{[]int{5, 6, 7, 9, 1, 2, 3, 4}, 16}, // Table I: all cross pairs
	}
	for _, c := range cases {
		if got := CountInversions(c.xs); got != c.want {
			t.Errorf("CountInversions(%v) = %d, want %d", c.xs, got, c.want)
		}
	}
}

func TestCountInversionsDoesNotMutate(t *testing.T) {
	xs := []int{3, 1, 2}
	CountInversions(xs)
	if !reflect.DeepEqual(xs, []int{3, 1, 2}) {
		t.Error("input mutated")
	}
}

func TestCountInversionsMatchesBruteForce(t *testing.T) {
	f := func(raw []int8) bool {
		xs := make([]int, len(raw))
		for i, v := range raw {
			xs[i] = int(v)
		}
		return CountInversions(xs) == BruteForceInversions(xs)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestParallelCountInversionsMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{0, 10, 1000, 20000} {
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(500)
		}
		if got, want := ParallelCountInversions(xs, 8), CountInversions(xs); got != want {
			t.Errorf("n=%d parallel=%d sequential=%d", n, got, want)
		}
	}
}

func sortPairs(ps []InvPair) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].I != ps[b].I {
			return ps[a].I < ps[b].I
		}
		return ps[a].J < ps[b].J
	})
}

func TestReportInversionsFig4(t *testing.T) {
	// Paper Fig. 4: edge order {3,2,4,1}; inversion pairs, as positions
	// (i, j): values (3,2)->(0,1), (3,1)->(0,3), (2,1)->(1,3), (4,1)->(2,3).
	xs := []int{3, 2, 4, 1}
	got := ReportInversions(xs)
	want := []InvPair{{0, 1}, {0, 3}, {1, 3}, {2, 3}}
	sortPairs(got)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("pairs = %v, want %v", got, want)
	}
}

func TestReportInversionsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(50)
		}
		var want []InvPair
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if xs[i] > xs[j] {
					want = append(want, InvPair{i, j})
				}
			}
		}
		got := ReportInversions(xs)
		sortPairs(got)
		sortPairs(want)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: got %d pairs, want %d", trial, len(got), len(want))
		}
	}
}

func TestParallelReportMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	xs := make([]int, 5000)
	for i := range xs {
		xs[i] = rng.Intn(5000)
	}
	got := ParallelReportInversions(xs, 8)
	want := ReportInversions(xs)
	sortPairs(got)
	sortPairs(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel %d pairs, sequential %d", len(got), len(want))
	}
}

func TestMergeTraceTableI(t *testing.T) {
	// Table I: A_l = {5,6,7,9}, A_r = {1,2,3,4}. Every cross pair is an
	// inversion (16 total), reported in 4 batches of 4 while the right
	// sublist drains.
	al := []int{5, 6, 7, 9}
	ar := []int{1, 2, 3, 4}
	steps := MergeTrace(al, ar)
	total := 0
	for _, st := range steps {
		total += len(st.Inversions)
	}
	if total != 16 {
		t.Errorf("reported %d inversions, want 16", total)
	}
	// First step: compare (5,1), emit 1, report (5,1),(6,1),(7,1),(9,1).
	if steps[0].Compared != [2]int{5, 1} || steps[0].Emitted != 1 {
		t.Errorf("step 0 = %+v", steps[0])
	}
	if len(steps[0].Inversions) != 4 || steps[0].Inversions[3] != [2]int{9, 1} {
		t.Errorf("step 0 inversions = %v", steps[0].Inversions)
	}
	// The merged output must be sorted: reconstruct.
	var merged []int
	for _, st := range steps {
		merged = append(merged, st.Emitted)
	}
	if !sort.IntsAreSorted(merged) {
		t.Errorf("merged = %v not sorted", merged)
	}
	if out := FormatMergeTrace(steps); len(out) == 0 {
		t.Error("empty formatted trace")
	}
}

func TestRanksOf(t *testing.T) {
	ranks := RanksOf([]int{30, 10, 40, 20})
	if !reflect.DeepEqual(ranks, []int{2, 0, 3, 1}) {
		t.Errorf("ranks = %v", ranks)
	}
}

func TestRanksInversionsDetectCrossings(t *testing.T) {
	// Edges ordered 1,2,3 at the bottom scanline and 2,1,3 at the top:
	// exactly the pair (1,2) crossed.
	bottomIDs := []int{1, 2, 3}
	topIDs := []int{2, 1, 3}
	pos := map[int]int{}
	for i, id := range topIDs {
		pos[id] = i
	}
	seq := make([]int, len(bottomIDs))
	for i, id := range bottomIDs {
		seq[i] = pos[id]
	}
	if got := CountInversions(seq); got != 1 {
		t.Errorf("crossings = %d, want 1", got)
	}
	pairs := ReportInversions(seq)
	if len(pairs) != 1 || bottomIDs[pairs[0].I] != 1 || bottomIDs[pairs[0].J] != 2 {
		t.Errorf("pairs = %v", pairs)
	}
}

func TestReduce(t *testing.T) {
	xs := make([]int, 10000)
	for i := range xs {
		xs[i] = i
	}
	sum := Reduce(xs, 0, func(a, b int) int { return a + b }, 4)
	if sum != 10000*9999/2 {
		t.Errorf("sum = %d", sum)
	}
	if got := Reduce(nil, 42, func(a, b int) int { return a + b }, 4); got != 42 {
		t.Errorf("empty reduce = %d", got)
	}
	maxVal := Reduce(xs, -1, func(a, b int) int {
		if a > b {
			return a
		}
		return b
	}, 8)
	if maxVal != 9999 {
		t.Errorf("max = %d", maxVal)
	}
}

func TestPack(t *testing.T) {
	xs := []int{10, 11, 12, 13, 14, 15}
	keep := []bool{true, false, true, false, false, true}
	got := Pack(xs, keep, 4)
	if !reflect.DeepEqual(got, []int{10, 12, 15}) {
		t.Errorf("Pack = %v", got)
	}
	if got := Pack([]int{}, nil, 2); got != nil {
		t.Errorf("empty Pack = %v", got)
	}
	none := Pack(xs, make([]bool, 6), 2)
	if len(none) != 0 {
		t.Errorf("none kept = %v", none)
	}
}

func TestPackLargeMatchesFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 50000
	xs := make([]int, n)
	keep := make([]bool, n)
	var want []int
	for i := range xs {
		xs[i] = rng.Int()
		keep[i] = rng.Intn(3) == 0
		if keep[i] {
			want = append(want, xs[i])
		}
	}
	got := Pack(xs, keep, 8)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Pack mismatch on large input")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	var ran atomic.Int32
	var pe *PanicError
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("worker panic was swallowed")
			}
			var ok bool
			pe, ok = r.(*PanicError)
			if !ok {
				t.Fatalf("re-raised value is %T, want *PanicError", r)
			}
		}()
		ForEach(1000, 4, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				ran.Add(1)
				if i == 500 {
					panic("worker boom")
				}
			}
		})
	}()
	if pe.Value != "worker boom" {
		t.Fatalf("panic value %v, want worker boom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("no worker stack captured")
	}
	// The other workers were allowed to finish: no goroutine was killed
	// mid-range by the failing one.
	if ran.Load() == 0 {
		t.Fatal("no iterations ran")
	}
}

func TestForEachItemPanicPropagates(t *testing.T) {
	defer func() {
		if _, ok := recover().(*PanicError); !ok {
			t.Fatal("ForEachItem did not re-raise *PanicError")
		}
	}()
	ForEachItem(100, 4, func(i int) {
		if i == 42 {
			panic("item boom")
		}
	})
	t.Fatal("unreachable: panic expected")
}
