module polyclip

go 1.22
