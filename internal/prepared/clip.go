package prepared

import (
	"polyclip/internal/bandclip"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/shclip"
	"polyclip/internal/vatti"
)

// ClipRect clips the prepared layer to the window and reports which route
// served it. The result is the even-odd region layer ∩ box with canonical
// ring orientations (CCW outers, CW holes); nil when empty.
//
// The straddle route decomposes per ring. Because no ring's boundary both
// crosses the window and stays out of the sweep set, each ring falls into
// exactly one bucket:
//
//   - MBR disjoint from the window: contributes nothing, skipped;
//   - boundary meets the window (marked by classify): clipped for real;
//   - entirely inside the window: passed through verbatim;
//   - otherwise the window lies wholly inside or wholly outside the ring's
//     region — constant parity over the window — so rings containing the
//     window's center toggle one surround bit, and an odd surround appends
//     the window rectangle itself (the even-odd complement trick: XOR-ing
//     the full window flips the clipped region's parity inside it).
//
// A panic anywhere in the fast route is rescued by the full prepared sweep
// (SweepRect), mirroring the engine resilience convention.
func (pp *Prepared) ClipRect(box geom.BBox) (out geom.Polygon, cls Class) {
	scr := pp.scratch.Get().(*scratch)
	defer pp.scratch.Put(scr)
	if scr.ringHit == nil || len(scr.ringHit) < len(pp.poly) {
		scr.ringHit = make([]bool, len(pp.poly))
		scr.rayOdd = make([]bool, len(pp.poly))
	}

	cls = pp.classify(box, scr, true)
	switch cls {
	case Outside:
		pp.fastOutside.Add(1)
		return nil, cls
	case Inside:
		pp.fastInside.Add(1)
		return geom.RectPolygon(box.MinX, box.MinY, box.MaxX, box.MaxY), cls
	}

	defer func() {
		for _, ri := range scr.hits {
			scr.ringHit[ri] = false
		}
		scr.hits = scr.hits[:0]
		if r := recover(); r != nil {
			pp.rescues.Add(1)
			out = pp.SweepRect(box)
		}
	}()

	// Per-ring parity at the window center, all rings in one ray query: the
	// surround test below must not re-scan each big ring.
	_, rayIDs := pp.containsPoint(box.Center(), scr)
	for _, id := range rayIDs {
		if rayCrosses(pp.edges[id], box.Center()) {
			ri := pp.edgeRing[id]
			if !scr.rayOdd[ri] {
				scr.odds = append(scr.odds, ri)
			}
			scr.rayOdd[ri] = !scr.rayOdd[ri]
		}
	}

	scr.sweep = scr.sweep[:0]
	surround := 0
	sweepRing := -1 // ring index of the sole sweep ring, when there is one
	for ri, r := range pp.poly {
		rb := pp.ringBox[ri]
		if !rb.Intersects(box) {
			continue
		}
		switch {
		case scr.ringHit[ri]:
			scr.sweep = append(scr.sweep, r)
			sweepRing = ri
		case box.ContainsBBox(rb):
			out = append(out, r.Clone())
		case scr.rayOdd[ri]:
			surround++
		}
	}
	for _, ri := range scr.odds {
		scr.rayOdd[ri] = false
	}
	scr.odds = scr.odds[:0]

	switch {
	case len(scr.sweep) == 1 && surround == 0 && len(out) == 0 && pp.ringConvex[sweepRing]:
		// Single convex ring straddling an otherwise untouched window: the
		// classic Sutherland–Hodgman case, one linear pass, single piece.
		pp.convexClips.Add(1)
		clipped := shclip.SutherlandHodgman(scr.sweep[0], geom.Rect(box.MinX, box.MinY, box.MaxX, box.MaxY))
		if len(clipped) >= 3 && clipped.Area() > 0 {
			out = geom.Polygon{clipped}
		}
	case len(scr.sweep) > 0:
		pp.bandClips.Add(1)
		partial := bandclip.Clip(scr.sweep, box.MinY, box.MaxY)
		partial = bandclip.Clip(partial.Transpose(), box.MinX, box.MaxX).Transpose()
		out = append(out, partial...)
	default:
		pp.bandClips.Add(1)
	}
	if surround%2 == 1 {
		out = append(out, geom.Rect(box.MinX, box.MinY, box.MaxX, box.MaxY))
	}
	return finalizeTile(out), cls
}

// finalizeTile canonicalizes a tile's ring set: a single piece is oriented
// CCW in place of a full sweep, while multi-ring outputs — where passthrough
// holes, band-clip pieces and a surround rectangle can nest or share
// boundary — run through one small union-with-empty sweep, which cancels
// coincident boundary by parity and reorients everything canonically. The
// sweep's cost follows the tile's output size, never the layer.
func finalizeTile(out geom.Polygon) geom.Polygon {
	switch len(out) {
	case 0:
		return nil
	case 1:
		r := out[0]
		if len(r) < 3 || r.Area() == 0 {
			return nil
		}
		if !r.IsCCW() {
			r = r.Clone()
			r.Reverse()
		}
		return geom.Polygon{r}
	}
	return vatti.ClipRule(out, nil, engine.Union, engine.EvenOdd)
}

// SweepRect is the differential/rescue route: the same window clip computed
// by the full scanbeam sweep through the engine.Options.Prepared seam
// (vatti.ClipRulePrepared), which re-resolves only the window's crossings
// with the canonical layer, never the layer against itself.
func (pp *Prepared) SweepRect(box geom.BBox) geom.Polygon {
	rect := geom.RectPolygon(box.MinX, box.MinY, box.MaxX, box.MaxY)
	return vatti.ClipRulePrepared(pp.poly, rect, engine.Intersection, engine.EvenOdd)
}

// NaiveClipRect is the baseline the tile benchmark gates against: a full
// per-window clip of the raw source layer — joint resolution, sweep, stitch —
// with nothing reused across windows. The sweep applies the fill rule to
// each operand's own winding, so the window rectangle is oriented to read
// as inside under the rule: counter-clockwise (winding +1) for every rule
// except Negative, which needs clockwise (winding -1).
func NaiveClipRect(src geom.Polygon, box geom.BBox, rule engine.FillRule) geom.Polygon {
	rect := geom.RectPolygon(box.MinX, box.MinY, box.MaxX, box.MaxY)
	if rule == engine.Negative {
		rect[0].Reverse()
	}
	return vatti.ClipRule(src, rect, engine.Intersection, rule)
}
