package core

import (
	"polyclip/internal/geom"
	"polyclip/internal/overlay"
	"polyclip/internal/par"
)

// UnionAll dissolves a set of polygons into their union using the paper's
// Fig. 6 reduction tree: the polygons sit at the leaves of a complete
// binary tree, each internal node is the union of its children, and every
// level's unions run concurrently — O(log n) rounds of pairwise unions.
// This is the GIS "dissolve" operation.
func UnionAll(polys []geom.Polygon, p int) geom.Polygon {
	if p <= 0 {
		p = par.DefaultParallelism()
	}
	cur := make([]geom.Polygon, 0, len(polys))
	for _, q := range polys {
		if q.NumVertices() > 0 {
			cur = append(cur, q)
		}
	}
	for len(cur) > 1 {
		next := make([]geom.Polygon, (len(cur)+1)/2)
		par.ForEachItem(len(next), p, func(i int) {
			if 2*i+1 < len(cur) {
				next[i] = overlay.Clip(cur[2*i], cur[2*i+1], overlay.Union, overlay.Options{Parallelism: 1})
			} else {
				next[i] = cur[2*i]
			}
		})
		cur = next
	}
	if len(cur) == 0 {
		return nil
	}
	return cur[0]
}

// IntersectAll intersects a set of polygons by the same reduction tree:
// the common region of all operands (empty when any pair is disjoint).
func IntersectAll(polys []geom.Polygon, p int) geom.Polygon {
	if p <= 0 {
		p = par.DefaultParallelism()
	}
	if len(polys) == 0 {
		return nil
	}
	cur := make([]geom.Polygon, len(polys))
	copy(cur, polys)
	for len(cur) > 1 {
		next := make([]geom.Polygon, (len(cur)+1)/2)
		par.ForEachItem(len(next), p, func(i int) {
			if 2*i+1 < len(cur) {
				next[i] = overlay.Clip(cur[2*i], cur[2*i+1], overlay.Intersection, overlay.Options{Parallelism: 1})
			} else {
				next[i] = cur[2*i]
			}
		})
		cur = next
	}
	return cur[0]
}
