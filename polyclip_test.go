package polyclip

import (
	"context"
	"math"
	"strings"
	"testing"
)

func rect(minX, minY, maxX, maxY float64) Polygon {
	return Polygon{Ring{
		{X: minX, Y: minY}, {X: maxX, Y: minY}, {X: maxX, Y: maxY}, {X: minX, Y: maxY},
	}}
}

func TestClipAllOps(t *testing.T) {
	a := rect(0, 0, 4, 4)
	b := rect(2, 2, 6, 6)
	cases := map[Op]float64{Intersection: 4, Union: 28, Difference: 12, Xor: 24}
	for op, want := range cases {
		if got := Area(Clip(a, b, op)); math.Abs(got-want) > 1e-6 {
			t.Errorf("%v: area = %v, want %v", op, got, want)
		}
	}
}

func TestClipWithAllAlgorithms(t *testing.T) {
	a := rect(0, 0, 4, 4)
	b := rect(2, 2, 6, 6)
	for _, alg := range []Algorithm{AlgoOverlay, AlgoSlabs, AlgoScanbeam, AlgoSequential} {
		got, _ := ClipWith(a, b, Intersection, Options{Algorithm: alg, Threads: 3})
		if math.Abs(Area(got)-4) > 1e-6 {
			t.Errorf("algorithm %d: area = %v", alg, Area(got))
		}
	}
}

func TestClipWithStatsFromSlabs(t *testing.T) {
	a := rect(0, 0, 4, 4)
	b := rect(2, 2, 6, 6)
	_, st := ClipWith(a, b, Union, Options{Algorithm: AlgoSlabs, Threads: 2})
	if st == nil || st.Slabs < 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTrapezoids(t *testing.T) {
	a := rect(0, 0, 4, 4)
	b := rect(2, 2, 6, 6)
	tzs := Trapezoids(a, b, Intersection)
	var sum float64
	for _, tz := range tzs {
		sum += tz.Area()
	}
	if math.Abs(sum-4) > 1e-6 {
		t.Errorf("trapezoid area = %v", sum)
	}
}

func TestOverlayLayers(t *testing.T) {
	la := Layer{rect(0, 0, 2, 2), rect(4, 0, 6, 2)}
	lb := Layer{rect(1, 1, 5, 3)}
	got, st := OverlayLayers(la, lb, Intersection, Options{Threads: 2})
	var sum float64
	for _, g := range got {
		sum += Area(g)
	}
	if math.Abs(sum-2) > 1e-6 {
		t.Errorf("layer overlay area = %v (results=%d)", sum, len(got))
	}
	if st == nil {
		t.Error("nil stats")
	}
	merged, _ := OverlayLayersMerged(la, lb, Union, Options{Threads: 2})
	if math.Abs(Area(merged)-(4+4+8-2)) > 1e-6 {
		t.Errorf("merged union area = %v", Area(merged))
	}
}

func TestWKTRoundTrip(t *testing.T) {
	a := rect(0, 0, 4, 4)
	s := FormatWKT(a)
	got, err := ParseWKT(s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(Area(got)-16) > 1e-9 {
		t.Errorf("area = %v", Area(got))
	}
}

func TestQuickstartDocExample(t *testing.T) {
	a := rect(0, 0, 4, 4)
	b := rect(2, 2, 6, 6)
	out := Clip(a, b, Intersection)
	if math.Abs(Area(out)-4) > 1e-6 {
		t.Errorf("doc example area = %v", Area(out))
	}
}

func TestUnionAllAndIntersectAll(t *testing.T) {
	tiles := []Polygon{
		rect(0, 0, 2, 2), rect(1, 0, 3, 2), rect(2, 0, 4, 2),
	}
	u := UnionAll(tiles, Options{Threads: 2})
	if math.Abs(Area(u)-8) > 1e-6 {
		t.Errorf("dissolve area = %v, want 8", Area(u))
	}
	i := IntersectAll(tiles, Options{Threads: 2})
	if Area(i) > 1e-9 {
		t.Errorf("3-way intersection = %v, want 0", Area(i))
	}
	over := []Polygon{rect(0, 0, 4, 4), rect(1, 1, 5, 5), rect(2, 2, 6, 6)}
	i2 := IntersectAll(over, Options{Threads: 2})
	if math.Abs(Area(i2)-4) > 1e-6 {
		t.Errorf("3-way overlap = %v, want 4", Area(i2))
	}
}

func TestNonZeroRulePublicAPI(t *testing.T) {
	// Two same-direction overlapping rings: NonZero treats them as a union.
	p := Polygon{
		Ring{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}},
		Ring{{X: 2, Y: 2}, {X: 6, Y: 2}, {X: 6, Y: 6}, {X: 2, Y: 6}},
	}
	frame := rect(-1, -1, 7, 7)
	nz, st := ClipWith(p, frame, Intersection, Options{Rule: NonZero})
	if math.Abs(Area(nz)-28) > 1e-6 {
		t.Errorf("nonzero area = %v, want 28", Area(nz))
	}
	if st.Engine != "overlay" {
		t.Errorf("nonzero clip ran engine %q, want overlay", st.Engine)
	}
	eo, _ := ClipWith(p, frame, Intersection, Options{})
	if math.Abs(Area(eo)-24) > 1e-6 {
		t.Errorf("even-odd area = %v, want 24", Area(eo))
	}
}

func TestWindingRulesAllAlgorithmsPublicAPI(t *testing.T) {
	// Every strategy now hosts every fill rule: the same winding-sensitive
	// input must produce the analytic area through each Algorithm, with no
	// fallback rescue masking a primary-engine failure.
	p := Polygon{
		Ring{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}},
		Ring{{X: 2, Y: 2}, {X: 6, Y: 2}, {X: 6, Y: 6}, {X: 2, Y: 6}},
	}
	frame := rect(-1, -1, 7, 7)
	want := map[FillRule]float64{NonZero: 28, Positive: 28, Negative: 0, EvenOdd: 24}
	for _, algo := range []Algorithm{AlgoOverlay, AlgoSlabs, AlgoScanbeam, AlgoSequential} {
		for rule, area := range want {
			out, st, err := ClipCtx(context.Background(), p, frame, Intersection,
				Options{Rule: rule, Algorithm: algo, NoFallback: true})
			if err != nil {
				t.Errorf("algo=%d rule=%v: %v", algo, rule, err)
				continue
			}
			if math.Abs(Area(out)-area) > 1e-6 {
				t.Errorf("algo=%d rule=%v: area = %v, want %v", algo, rule, Area(out), area)
			}
			if len(st.Resilience.Attempts) != 1 || !strings.HasSuffix(st.Resilience.Attempts[0], ":ok") {
				t.Errorf("algo=%d rule=%v: attempts %v, want one clean attempt", algo, rule, st.Resilience.Attempts)
			}
		}
	}
}

func TestGeoJSONRoundTripPublicAPI(t *testing.T) {
	a := rect(0, 0, 4, 4)
	raw, err := FormatGeoJSON(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseGeoJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(Area(got)-16) > 1e-12 {
		t.Errorf("area = %v", Area(got))
	}
	layer := Layer{rect(0, 0, 1, 1), rect(2, 2, 3, 3)}
	lraw, err := FormatGeoJSONLayer(layer)
	if err != nil {
		t.Fatal(err)
	}
	lgot, err := ParseGeoJSONLayer(lraw)
	if err != nil || len(lgot) != 2 {
		t.Fatalf("layer round trip: %v %v", lgot, err)
	}
}

// TestDegenerateInputsAllAlgorithmsAgree feeds classic degenerate inputs to
// every execution strategy and checks they neither crash nor disagree: the
// repair pass normalizes the garbage away, so all four engines must land on
// the same region.
func TestDegenerateInputsAllAlgorithmsAgree(t *testing.T) {
	clip := rect(2, 2, 6, 6)
	cases := []struct {
		name    string
		subject Polygon
		area    float64 // expected intersection area with clip
	}{
		{"empty polygon", Polygon{}, 0},
		{"single-point ring", Polygon{{{X: 3, Y: 3}}}, 0},
		{"two-point ring", Polygon{{{X: 3, Y: 3}, {X: 5, Y: 5}}}, 0},
		{"all-collinear ring", Polygon{{{X: 0, Y: 0}, {X: 2, Y: 2}, {X: 4, Y: 4}, {X: 3, Y: 3}}}, 0},
		{"duplicate consecutive vertices", Polygon{{
			{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 4, Y: 4}, {X: 0, Y: 4},
		}}, 4},
		{"zero-area spike", Polygon{{
			{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 8, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4},
		}}, 4},
		{"explicitly closed ring", Polygon{{
			{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}, {X: 0, Y: 0},
		}}, 4},
	}
	algs := []struct {
		name string
		alg  Algorithm
	}{
		{"overlay", AlgoOverlay}, {"slabs", AlgoSlabs},
		{"scanbeam", AlgoScanbeam}, {"sequential", AlgoSequential},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, a := range algs {
				out, _ := ClipWith(tc.subject, clip, Intersection, Options{Algorithm: a.alg})
				if got := Area(out); math.Abs(got-tc.area) > 1e-9 {
					t.Errorf("%s: area %g, want %g (result %v)", a.name, got, tc.area, out)
				}
			}
		})
	}
}
