package overlay

import (
	"math"
	"testing"

	"polyclip/internal/geom"
)

// Degenerate and adversarial input shapes: the engine must not crash and
// must keep areas consistent with the pointwise oracle.

func TestDegenerateDuplicateVertices(t *testing.T) {
	a := geom.Polygon{geom.Ring{
		{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 4, Y: 4}, {X: 0, Y: 4},
	}}
	b := geom.RectPolygon(2, 2, 6, 6)
	got := Clip(a, b, Intersection, Options{})
	if math.Abs(got.Area()-4) > 1e-6 {
		t.Errorf("area = %v, want 4", got.Area())
	}
}

func TestDegenerateCollinearVertices(t *testing.T) {
	a := geom.Polygon{geom.Ring{
		{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 2}, {X: 4, Y: 4}, {X: 0, Y: 4},
	}}
	b := geom.RectPolygon(1, 1, 3, 3)
	got := Clip(a, b, Intersection, Options{})
	if math.Abs(got.Area()-4) > 1e-6 {
		t.Errorf("area = %v, want 4", got.Area())
	}
}

func TestDegenerateTinyRing(t *testing.T) {
	a := geom.Polygon{
		geom.Rect(0, 0, 4, 4),
		geom.Rect(10, 10, 10.000000001, 10.000000001), // sliver far away
	}
	b := geom.RectPolygon(2, 2, 6, 6)
	got := Clip(a, b, Intersection, Options{})
	if math.Abs(got.Area()-4) > 1e-6 {
		t.Errorf("area = %v, want 4", got.Area())
	}
}

func TestDegenerateTwoVertexRing(t *testing.T) {
	a := geom.Polygon{
		geom.Rect(0, 0, 4, 4),
		geom.Ring{{X: 9, Y: 9}, {X: 10, Y: 10}}, // not a polygon: dropped
	}
	b := geom.RectPolygon(2, 2, 6, 6)
	got := Clip(a, b, Intersection, Options{})
	if math.Abs(got.Area()-4) > 1e-6 {
		t.Errorf("area = %v, want 4", got.Area())
	}
}

func TestDegenerateSpike(t *testing.T) {
	// Zero-area spike protruding from a square: cancels under even-odd.
	a := geom.Polygon{geom.Ring{
		{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 2}, {X: 6, Y: 2}, {X: 4, Y: 2},
		{X: 4, Y: 4}, {X: 0, Y: 4},
	}}
	b := geom.RectPolygon(-1, -1, 5, 5)
	got := Clip(a, b, Intersection, Options{})
	if math.Abs(got.Area()-16) > 1e-6 {
		t.Errorf("area = %v, want 16 (spike cancels)", got.Area())
	}
}

func TestDegenerateVertexOnEdge(t *testing.T) {
	// b has a vertex exactly on a's edge.
	a := geom.RectPolygon(0, 0, 4, 4)
	b := geom.Polygon{geom.Ring{{X: 4, Y: 2}, {X: 6, Y: 0}, {X: 8, Y: 2}, {X: 6, Y: 4}}}
	got := Clip(a, b, Union, Options{})
	want := 16.0 + 8.0 // square + diamond, touching at one point
	if math.Abs(got.Area()-want) > 1e-6 {
		t.Errorf("area = %v, want %v", got.Area(), want)
	}
	gotI := Clip(a, b, Intersection, Options{})
	if gotI.Area() > 1e-9 {
		t.Errorf("touch intersection area = %v", gotI.Area())
	}
}

func TestDegenerateEdgeThroughVertexFan(t *testing.T) {
	// Several of a's edges fan out of a vertex that lies on b's edge.
	a := geom.Polygon{geom.Ring{
		{X: 2, Y: 0}, {X: 4, Y: -2}, {X: 6, Y: 0}, {X: 4, Y: 6},
	}}
	b := geom.RectPolygon(0, 0, 8, 4)
	got := Clip(a, b, Intersection, Options{})
	oracle := Clip(b, a, Intersection, Options{})
	if math.Abs(got.Area()-oracle.Area()) > 1e-6 {
		t.Errorf("asymmetry: %v vs %v", got.Area(), oracle.Area())
	}
}

func TestDegenerateSharedEdgeSegments(t *testing.T) {
	// Subject and clip share a partial edge (collinear overlap).
	a := geom.RectPolygon(0, 0, 4, 4)
	b := geom.RectPolygon(1, 4, 3, 8) // b's bottom lies inside a's top edge
	got := Clip(a, b, Union, Options{})
	if math.Abs(got.Area()-24) > 1e-6 {
		t.Errorf("area = %v, want 24", got.Area())
	}
	gotX := Clip(a, b, Xor, Options{})
	if math.Abs(gotX.Area()-24) > 1e-6 {
		t.Errorf("xor area = %v, want 24", gotX.Area())
	}
}

func TestDegenerateIdenticalRingTwiceInOneOperand(t *testing.T) {
	// The same ring twice in the subject cancels under even-odd.
	r := geom.Rect(0, 0, 4, 4)
	a := geom.Polygon{r, r.Clone()}
	b := geom.RectPolygon(-1, -1, 5, 5)
	got := Clip(a, b, Intersection, Options{})
	if got.Area() > 1e-9 {
		t.Errorf("double ring should cancel, area = %v", got.Area())
	}
}

func TestDegenerateNeedleQuad(t *testing.T) {
	// Extremely thin sliver polygon.
	a := geom.Polygon{geom.Ring{
		{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 1e-7}, {X: 0, Y: 1e-7},
	}}
	b := geom.RectPolygon(2, -1, 8, 1)
	got := Clip(a, b, Intersection, Options{})
	want := 6 * 1e-7
	if math.Abs(got.Area()-want) > want*1e-3 {
		t.Errorf("needle area = %v, want %v", got.Area(), want)
	}
}

func TestDegenerateHugeCoordinates(t *testing.T) {
	const M = 1e9
	a := geom.RectPolygon(M, M, M+4, M+4)
	b := geom.RectPolygon(M+2, M+2, M+6, M+6)
	got := Clip(a, b, Intersection, Options{})
	if math.Abs(got.Area()-4) > 1e-3 {
		t.Errorf("huge-coordinate area = %v, want 4", got.Area())
	}
}

func TestDegenerateNegativeCoordinates(t *testing.T) {
	a := geom.RectPolygon(-8, -8, -4, -4)
	b := geom.RectPolygon(-6, -6, -2, -2)
	got := Clip(a, b, Intersection, Options{})
	if math.Abs(got.Area()-4) > 1e-6 {
		t.Errorf("area = %v, want 4", got.Area())
	}
}

func TestDegenerateAllRingsDegenerate(t *testing.T) {
	a := geom.Polygon{geom.Ring{{X: 0, Y: 0}, {X: 1, Y: 1}}}
	b := geom.RectPolygon(0, 0, 2, 2)
	got := Clip(a, b, Union, Options{})
	if math.Abs(got.Area()-4) > 1e-9 {
		t.Errorf("area = %v, want 4 (degenerate subject ignored)", got.Area())
	}
}

func TestDegenerateCrossShapedSelfOverlap(t *testing.T) {
	// One ring drawn as a plus sign traversing its own center region twice
	// is equivalent to xor of two bars under even-odd.
	cross := geom.Polygon{
		geom.Rect(2, 0, 4, 6),
		geom.Rect(0, 2, 6, 4),
	}
	big := geom.RectPolygon(-1, -1, 7, 7)
	got := Clip(cross, big, Intersection, Options{})
	// Even-odd: two bars overlap in the middle square (2..4)² which cancels:
	// 12 + 12 - 2*4 = 16.
	if math.Abs(got.Area()-16) > 1e-6 {
		t.Errorf("cross area = %v, want 16", got.Area())
	}
	checkParity(t, "cross", cross, big, got, Intersection, 2000, 991)
}
