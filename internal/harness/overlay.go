package harness

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"polyclip/internal/acache"
	"polyclip/internal/batch"
	"polyclip/internal/data"
	"polyclip/internal/engine"
)

// Overlay runs the million-feature batch-overlay benchmark that closes the
// ROADMAP's scale item: two synthetic feature layers of n features each
// (repeatFrac exact repeats) are overlaid twice through one arrangement
// cache — a cold run that populates it and a warm run that should be all
// hits. The cache contract of the PR (warm ≥ 2× cold on a repeated-operand
// corpus) is evaluated here and surfaced as the gate counters; the
// bench_overlay.sh script turns a failed gate into a nonzero exit.
func Overlay(n int, repeatFrac float64, threads int, seed int64) Result {
	a := data.Features(data.FeatureOptions{N: n, Dist: "mixed", RepeatFrac: repeatFrac, Seed: seed})
	b := data.Features(data.FeatureOptions{N: n, Dist: "mixed", RepeatFrac: repeatFrac, Seed: seed + 1})

	cache := acache.New(256 << 20)
	opt := batch.Options{Threads: threads, Cache: cache}
	ctx := context.Background()

	t0 := time.Now()
	outsCold, stCold, err := batch.Overlay(ctx, a, b, engine.Intersection, opt)
	cold := time.Since(t0)
	if err != nil {
		return Result{Name: "overlay", Text: "overlay: " + err.Error()}
	}

	t1 := time.Now()
	outsWarm, stWarm, err := batch.Overlay(ctx, a, b, engine.Intersection, opt)
	warm := time.Since(t1)
	if err != nil {
		return Result{Name: "overlay", Text: "overlay warm: " + err.Error()}
	}
	_ = outsWarm

	features := 2 * n
	fpsCold := int(float64(features) / cold.Seconds())
	fpsWarm := int(float64(features) / warm.Seconds())
	hitPct := int(stWarm.Cache.HitRate()*100 + 0.5)
	coldHitPct := int(stCold.Cache.HitRate()*100 + 0.5)
	gate := 0
	if warm*2 <= cold {
		gate = 1
	}

	header := row("run", "time_ms", "features/s", "pairs", "outputs", "cache_hit_%")
	rows := [][]string{
		row("cold", ms(cold), strconv.Itoa(fpsCold), strconv.Itoa(stCold.CandidatePairs),
			strconv.Itoa(stCold.Outputs), strconv.Itoa(coldHitPct)),
		row("warm", ms(warm), strconv.Itoa(fpsWarm), strconv.Itoa(stWarm.CandidatePairs),
			strconv.Itoa(stWarm.Outputs), strconv.Itoa(hitPct)),
	}
	text := fmt.Sprintf("Batch overlay — %d+%d features, repeat %.2f, %d threads\n%s",
		n, n, repeatFrac, threads, formatRows(header, rows)) +
		fmt.Sprintf("cache: %d entries, %d KiB; peak RSS %d MiB; warm speedup %.2fx (gate >=2x: %v)\n",
			stCold.Cache.Entries, stCold.Cache.Bytes>>10, peakRSSMiB(),
			float64(cold)/float64(warm), gate == 1)

	return Result{
		Name: "overlay",
		Text: text,
		Rows: rows,
		Counters: map[string]int{
			"features":           features,
			"coldMs":             int(cold.Milliseconds()),
			"warmMs":             int(warm.Milliseconds()),
			"featuresPerSecCold": fpsCold,
			"featuresPerSecWarm": fpsWarm,
			"candidatePairs":     stCold.CandidatePairs,
			"outputs":            len(outsCold),
			"cacheHitRatePct":    hitPct,
			"coldHitRatePct":     coldHitPct,
			"cacheEntries":       stCold.Cache.Entries,
			"cacheBytes":         int(stCold.Cache.Bytes),
			"peakRSSMiB":         peakRSSMiB(),
			"warmGatePass":       gate,
		},
	}
}

// peakRSSMiB reads the process's high-water resident set (VmHWM) from
// /proc/self/status; 0 on platforms without procfs.
func peakRSSMiB() int {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0
		}
		return kb >> 10
	}
	return 0
}
