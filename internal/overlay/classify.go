package overlay

import (
	"context"
	"sort"

	"polyclip/internal/geom"
	"polyclip/internal/par"
	"polyclip/internal/scanbeam"
	"polyclip/internal/segtree"
)

// classify computes, for every unique sub-segment, whether the region on its
// "left side" is inside the subject and inside the clip polygon. For a
// non-horizontal segment, the left side is the smaller-x side (travelling
// upward); for a horizontal segment it is the side above (travelling +x).
// In both cases the flags are constant along the segment because the
// subdivided arrangement has no interior crossings.
//
// Non-horizontal segments are classified with the parity prefix sums of
// Lemma 3 in the first scanbeam they span. Horizontal segments span no beam;
// they lie on a beam boundary and are classified by the crossing parity of
// the beam directly above along that boundary line. (The paper removes
// horizontal edges by perturbation; counting parity strictly inside beams
// makes that unnecessary.)
//
// Cancellation is polled per beam chunk; on a cancelled ctx classification
// is partial and the caller must discard the arrangement.
func classify(ctx context.Context, segs []*useg, p int) {
	n := len(segs)
	if n == 0 {
		return
	}
	ys := make([]float64, 0, 2*n)
	for _, s := range segs {
		ys = append(ys, s.Lo.Y, s.Hi.Y)
	}
	ys = segtree.Dedup(ys)
	if len(ys) < 2 {
		return
	}
	tree := segtree.Build(ys, n, func(i int32) segtree.Interval {
		return segtree.Interval{Lo: segs[i].Lo.Y, Hi: segs[i].Hi.Y}
	}, p)
	beams, _ := tree.AllBeams(p)

	// firstBeam[i]: the beam whose bottom boundary is segs[i].Lo.Y. Only the
	// goroutine that owns that beam classifies segment i, so the parallel
	// loop below is race-free. Horizontal segments get -1.
	firstBeam := make([]int, n)
	par.ForEachItemGrain(n, p, 512, func(i int) {
		if segs[i].Lo.Y == segs[i].Hi.Y {
			firstBeam[i] = -1
			return
		}
		firstBeam[i] = sort.SearchFloat64s(ys, segs[i].Lo.Y)
	})

	par.ForEach(len(beams), p, func(blo, bhi int) {
		scratch := scanbeam.Get()
		defer scanbeam.Put(scratch)
		for b := blo; b < bhi; b++ {
			if (b-blo)&63 == 0 && canceled(ctx) {
				return
			}
			classifyBeam(segs, ys, beams[b], firstBeam, b, scratch)
		}
	})

	classifyHorizontals(ctx, segs, ys, beams, p)
}

// classifyBeam runs Lemma 3's parity prefix sums over one scanbeam.
func classifyBeam(segs []*useg, ys []float64, ids []int32, firstBeam []int, b int, scratch *scanbeam.Scratch) {
	if len(ids) == 0 {
		return
	}
	ymid := (ys[b] + ys[b+1]) / 2
	order := scratch.Entries(len(ids))
	for k, id := range ids {
		s := segs[id]
		order[k] = scanbeam.Entry{X: geom.Segment{A: s.Lo, B: s.Hi}.XAtY(ymid), ID: id}
	}
	scanbeam.SortByX(order)

	// Lemma 3 generalized: running winding numbers of subject / clip
	// copies to the left (their parities are the paper's 0/1 prefix
	// sums).
	var windSub, windClip int16
	for _, e := range order {
		s := segs[e.ID]
		if firstBeam[e.ID] == b && !s.classify {
			s.WindSubL = windSub
			s.WindClipL = windClip
			s.classify = true
		}
		windSub += s.WindSub
		windClip += s.WindClip
	}
}

// classifyHorizontals sets the above-side parities of horizontal segments.
// The insideness immediately above a horizontal segment h = [x1, x2] at
// height y equals the crossing parity, along the line just above y, of the
// segments in the beam above with x(y) <= x1: after subdivision no segment
// crosses the open strip above h, and segments emanating from h's endpoints
// count consistently on both sides.
func classifyHorizontals(ctx context.Context, segs []*useg, ys []float64, beams [][]int32, p int) {
	m := len(ys) - 1
	byBoundary := make(map[int][]int32)
	for i, s := range segs {
		if s.Lo.Y != s.Hi.Y {
			continue
		}
		b := sort.SearchFloat64s(ys, s.Lo.Y)
		byBoundary[b] = append(byBoundary[b], int32(i))
	}
	if len(byBoundary) == 0 {
		return
	}
	bounds := make([]int, 0, len(byBoundary))
	for b := range byBoundary {
		bounds = append(bounds, b)
	}
	sort.Ints(bounds)

	par.ForEachItem(len(bounds), p, func(bi int) {
		if canceled(ctx) {
			return
		}
		b := bounds[bi]
		y := ys[b]
		// Cumulative parities over the beam above, ordered by x at y.
		type entry struct {
			x        float64
			sub, cli int16
		}
		var order []entry
		if b < m {
			for _, id := range beams[b] {
				s := segs[id]
				order = append(order, entry{
					x:   geom.Segment{A: s.Lo, B: s.Hi}.XAtY(y),
					sub: s.WindSub,
					cli: s.WindClip,
				})
			}
			sort.Slice(order, func(a, c int) bool { return order[a].x < order[c].x })
		}
		cumSub := make([]int16, len(order)+1)
		cumClip := make([]int16, len(order)+1)
		for i, e := range order {
			cumSub[i+1] = cumSub[i] + e.sub
			cumClip[i+1] = cumClip[i] + e.cli
		}
		for _, id := range byBoundary[b] {
			s := segs[id]
			x1 := s.Lo.X
			// Count segments with x <= x1 (inclusive ties: segments through
			// h's left endpoint separate the strip from the region left of
			// it).
			k := sort.Search(len(order), func(i int) bool { return order[i].x > x1 })
			s.WindSubL = cumSub[k]
			s.WindClipL = cumClip[k]
			s.classify = true
		}
	})
}

// dirEdge is a directed contributing edge: the clipping result's interior
// lies to its geometric left.
type dirEdge struct {
	from, to geom.Point
}

// selectEdges applies Lemma 2's contributing test for the operation under
// the fill rule: a sub-segment contributes exactly when the operation's
// value differs between its two sides. The edge is directed so the result
// interior is on its left (Lo->Hi exactly when the left side is interior),
// which makes stitched outer rings counter-clockwise and holes clockwise.
func selectEdges(segs []*useg, op Op, rule FillRule, p int) []dirEdge {
	keep := make([]int32, 0, len(segs))
	marks := make([]bool, len(segs))
	par.ForEachItemGrain(len(segs), p, 512, func(i int) {
		s := segs[i]
		leftIn := op.Eval(rule.Inside(s.WindSubL), rule.Inside(s.WindClipL))
		rightIn := op.Eval(rule.Inside(s.WindSubL+s.WindSub), rule.Inside(s.WindClipL+s.WindClip))
		marks[i] = leftIn != rightIn
	})
	for i, m := range marks {
		if m {
			keep = append(keep, int32(i))
		}
	}
	out := make([]dirEdge, len(keep))
	for k, i := range keep {
		s := segs[i]
		if op.Eval(rule.Inside(s.WindSubL), rule.Inside(s.WindClipL)) {
			// Left side interior: travel Lo -> Hi (upward, or +x for a
			// horizontal segment).
			out[k] = dirEdge{s.Lo, s.Hi}
		} else {
			out[k] = dirEdge{s.Hi, s.Lo}
		}
	}
	return out
}
