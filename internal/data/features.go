package data

import (
	"math"
	"math/rand"

	"polyclip/internal/geom"
)

// FeatureOptions configures the million-feature batch-overlay workload:
// many small features over a shared extent, with a tunable fraction of
// exact repeats so the arrangement cache has something to hit.
type FeatureOptions struct {
	// N is the feature count (default 1000).
	N int
	// Dist is the MBR distribution: "uniform" spreads feature centers
	// evenly over the extent, "clustered" groups them around sqrt(N)
	// cluster centers (the real-map case), "mixed" (default) is half each.
	Dist string
	// RepeatFrac in [0, 1) is the fraction of features that are exact
	// copies of earlier features — the repeated-operand knob of the cache
	// benchmark (shared basemaps and common masks repeat verbatim). 0 means
	// every feature is distinct.
	RepeatFrac float64
	// Edges is the per-feature edge count (default 6; clamped to >= 3).
	Edges int
	// Seed seeds the generator; equal options always produce the equal
	// output, feature for feature.
	Seed int64
}

// Features synthesizes one feature set for the batch overlay benchmark.
// Feature size is chosen so that overlaying two such sets produces O(N)
// candidate pairs — features span roughly the extent's cell size at
// density N — keeping the workload output-sensitive at the layer level
// rather than all-pairs.
func Features(opt FeatureOptions) []geom.Polygon {
	n := opt.N
	if n <= 0 {
		n = 1000
	}
	edges := opt.Edges
	if edges <= 0 {
		edges = 6
	}
	if edges < 3 {
		edges = 3
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	// Extent scales with N so feature density — and with it the candidate
	// pair count per feature — is constant across sizes.
	side := math.Sqrt(float64(n))
	cell := 1.5 // spacing between neighboring feature centers

	nClusters := int(math.Sqrt(float64(n)))
	if nClusters < 1 {
		nClusters = 1
	}
	centers := make([]geom.Point, nClusters)
	for i := range centers {
		centers[i] = geom.Point{
			X: rng.Float64() * side * cell,
			Y: rng.Float64() * side * cell,
		}
	}
	clusterR := side * cell / math.Sqrt(float64(nClusters)) / 2

	center := func(i int) geom.Point {
		clustered := false
		switch opt.Dist {
		case "clustered":
			clustered = true
		case "uniform":
		default: // "mixed"
			clustered = i%2 == 1
		}
		if clustered {
			c := centers[rng.Intn(nClusters)]
			return geom.Point{
				X: c.X + rng.NormFloat64()*clusterR,
				Y: c.Y + rng.NormFloat64()*clusterR,
			}
		}
		return geom.Point{
			X: rng.Float64() * side * cell,
			Y: rng.Float64() * side * cell,
		}
	}

	out := make([]geom.Polygon, 0, n)
	for i := 0; i < n; i++ {
		if len(out) > 0 && rng.Float64() < opt.RepeatFrac {
			// Exact repeat: same backing geometry as an earlier feature, so
			// its digest — and the cache key — is identical by construction.
			out = append(out, out[rng.Intn(len(out))])
			continue
		}
		ring := JitteredPolygon(rng, center(i), 0.5, 1.0, edges)
		out = append(out, geom.Polygon{ring})
	}
	return out
}
