package core

import (
	"context"
	"math"
	"testing"

	"polyclip/internal/geom"
)

func TestAdaptiveSlabCount(t *testing.T) {
	cases := []struct {
		p, events, crossings, want int
	}{
		{0, 10000, 10000, 1}, // sequential always one slab
		{1, 10000, 10000, 1}, // sequential always one slab
		{4, 10, 0, 1},        // tiny input collapses to one slab
		{4, 100000, 0, 8},    // dense input clamps to 2p
		{-3, 100000, 100, 1}, // non-positive parallelism is sequential
		{8, 512, 512, 4},     // mid range: (events+crossings)/minSlabWork
		{8, 255, 0, 1},       // just under one work unit
		{2, 1024, 4096, 4},   // crossings alone can drive the count to 2p
	}
	for _, c := range cases {
		if got := adaptiveSlabCount(c.p, c.events, c.crossings); got != c.want {
			t.Errorf("adaptiveSlabCount(%d, %d, %d) = %d, want %d",
				c.p, c.events, c.crossings, got, c.want)
		}
	}
}

// TestAdaptiveSlabsDefault pins the Slabs==0 behaviour: the slab count is
// derived from the input (events + the pre-scan crossing estimate), the
// estimate is surfaced in Stats, and the result matches the sequential
// engine regardless of which count the heuristic picks.
func TestAdaptiveSlabsDefault(t *testing.T) {
	a := geom.Polygon{geom.Star(geom.Point{X: 0.5, Y: 0.5}, 5, 2, 64, 0.3)}
	b := geom.Polygon{geom.Star(geom.Point{X: 0.7, Y: 0.4}, 5, 2, 64, 0.6)}
	for _, op := range []Op{Intersection, Union} {
		got, st, err := ClipPairCtx(context.Background(), a, b, op, Options{Threads: 4})
		if err != nil {
			t.Fatalf("op=%v: %v", op, err)
		}
		if st.CrossingEstimate <= 0 {
			t.Errorf("op=%v: crossing stars should report a positive estimate, got %d", op, st.CrossingEstimate)
		}
		if st.Slabs < 1 || st.Slabs > 8 {
			t.Errorf("op=%v: adaptive slab count %d outside [1, 2*Threads]", op, st.Slabs)
		}
		want := seqArea(a, b, op)
		if math.Abs(got.Area()-want) > 1e-6*(1+want) {
			t.Errorf("op=%v: got %v want %v (slabs=%d)", op, got.Area(), want, st.Slabs)
		}
	}

	// Disjoint small operands: the estimate floors at the consecutive-edge
	// vertex touches (8 for two squares) and the tiny work total keeps the
	// heuristic at a single slab, skipping partition and merge.
	a = geom.RectPolygon(0, 0, 1, 1)
	b = geom.RectPolygon(5, 5, 6, 6)
	_, st, err := ClipPairCtx(context.Background(), a, b, Intersection, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.CrossingEstimate >= minSlabWork {
		t.Errorf("disjoint pair: crossing estimate = %d, want a small touch-only count", st.CrossingEstimate)
	}
	if st.Slabs != 1 {
		t.Errorf("disjoint pair: slabs = %d, want 1", st.Slabs)
	}

	// An explicit Slabs pin still wins over the heuristic.
	_, st = ClipPair(geom.RectPolygon(0, 0, 4, 4), geom.RectPolygon(2, 2, 6, 6), Intersection,
		Options{Threads: 4, Slabs: 3})
	if st.Slabs != 3 {
		t.Errorf("pinned slabs: got %d, want 3", st.Slabs)
	}
}

func TestClipLayersMergedCtx(t *testing.T) {
	la := Layer{geom.RectPolygon(0, 0, 2, 2), geom.RectPolygon(4, 0, 6, 2)}
	lb := Layer{geom.RectPolygon(1, 1, 5, 3)}
	got, _, err := ClipLayersMergedCtx(context.Background(), la, lb, Intersection, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Each square overlaps the band in a 1x1 corner.
	if want := 2.0; math.Abs(got.Area()-want) > 1e-9 {
		t.Errorf("merged layer intersection area = %v, want %v", got.Area(), want)
	}
}
