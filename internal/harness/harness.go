// Package harness runs the paper's experiments (§V, Tables I–III, Figures
// 7–12, plus the §III PRAM validation) and formats their results as the
// tables/series the paper reports. Used by cmd/bench and the benchmark
// suite.
//
// The paper measured wall-clock speedups on a 64-core machine. This harness
// reports, for every parallel experiment, both the wall clock on the host
// and the modelled parallel time (per-slab work scheduled greedily onto p
// workers + sequential phases) — on hosts with fewer cores than the paper's
// the model carries the scaling shape; on a large multicore the two
// converge. See EXPERIMENTS.md.
package harness

import (
	"fmt"
	"strings"
	"time"

	"polyclip/internal/core"
	"polyclip/internal/data"
	"polyclip/internal/geom"
	"polyclip/internal/overlay"
	"polyclip/internal/par"
	"polyclip/internal/pram"
	"polyclip/internal/vatti"
)

// Result is one experiment's formatted output plus machine-readable rows.
// Counters carries named scalar metrics (currently the Stats.Resilience
// counters) for experiments that have them; it is what cmd/bench -json
// surfaces for trend tracking.
type Result struct {
	Name     string         `json:"name"`
	Text     string         `json:"-"`
	Rows     [][]string     `json:"rows"`
	Counters map[string]int `json:"counters,omitempty"`
}

func row(cells ...string) []string { return cells }

func formatRows(header []string, rows [][]string) string {
	var b strings.Builder
	width := make([]int, len(header))
	all := append([][]string{header}, rows...)
	for _, r := range all {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	for ri, r := range all {
		for i, c := range r {
			fmt.Fprintf(&b, "%-*s  ", width[i], c)
		}
		b.WriteString("\n")
		if ri == 0 {
			for _, w := range width {
				b.WriteString(strings.Repeat("-", w) + "  ")
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

func ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000) }

// TableI regenerates the paper's Table I: the time-stepped merge of
// A_l = {5,6,7,9} and A_r = {1,2,3,4} with the inversion pairs reported by
// the extended merge.
func TableI() Result {
	al := []int{5, 6, 7, 9}
	ar := []int{1, 2, 3, 4}
	steps := par.MergeTrace(al, ar)
	text := "Table I — extended merge of A_l={5,6,7,9}, A_r={1,2,3,4}\n" +
		par.FormatMergeTrace(steps)
	var rows [][]string
	for i, st := range steps {
		var inv []string
		for _, p := range st.Inversions {
			inv = append(inv, fmt.Sprintf("(%d,%d)", p[0], p[1]))
		}
		rows = append(rows, row(fmt.Sprint(i+1),
			fmt.Sprintf("(%d,%d)", st.Compared[0], st.Compared[1]),
			fmt.Sprint(st.Emitted), strings.Join(inv, " ")))
	}
	return Result{Name: "table1", Text: text, Rows: rows}
}

// fig2Polygons builds a subject/clip pair in the spirit of the paper's
// Fig. 2: a self-intersecting subject overlapping a concave clip polygon.
func fig2Polygons() (subject, clip geom.Polygon) {
	subject = geom.Polygon{geom.SelfIntersectingStar(geom.Point{X: 3, Y: 3}, 3, 5, 0.2)}
	clip = geom.Polygon{geom.Star(geom.Point{X: 4.5, Y: 3.5}, 3.2, 1.4, 5, 0.9)}
	return subject, clip
}

// TableII regenerates the paper's Table II in kind: the scanbeam table for
// a Fig. 2-style input — per scanbeam, the active edges and the partial
// output polygons (trapezoid corner sequences) of the intersection.
func TableII() Result {
	subject, clip := fig2Polygons()
	tzs := vatti.Trapezoids(subject, clip, vatti.Intersection)
	header := []string{"Scanbeam", "Partial polygon (L1 R1 R2 L2)"}
	var rows [][]string
	for _, tz := range tzs {
		beam := fmt.Sprintf("[%.3f, %.3f]", tz.L1.Y, tz.L2.Y)
		var pts []string
		for _, p := range tz.Ring() {
			pts = append(pts, fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y))
		}
		rows = append(rows, row(beam, strings.Join(pts, " ")))
	}
	text := "Table II — scanbeam table (partial output polygons per beam) for the Fig. 2-style example\n" +
		formatRows(header, rows)
	return Result{Name: "table2", Text: text, Rows: rows}
}

// TableIII synthesizes the four datasets at the given scale and reports
// their statistics next to the paper's published values.
func TableIII(scale float64, seed int64) Result {
	header := []string{"#", "Dataset", "Polys", "Edges", "MeanEdge", "SDEdge", "Paper polys", "Paper edges"}
	var rows [][]string
	for i, d := range data.TableIII {
		layer := data.Layer(d, scale, seed+int64(i))
		st := data.Stats(layer)
		rows = append(rows, row(
			fmt.Sprint(i+1), d.Name,
			fmt.Sprint(st.Polys), fmt.Sprint(st.Edges),
			fmt.Sprintf("%.5f", st.MeanEdgeLen), fmt.Sprintf("%.5f", st.SDEdgeLen),
			fmt.Sprintf("%d×%.3g", d.Polys, scale), fmt.Sprintf("%d×%.3g", d.Edges, scale),
		))
	}
	text := fmt.Sprintf("Table III — synthesized datasets at scale %.3g (paper counts × scale shown for reference)\n", scale) +
		formatRows(header, rows)
	return Result{Name: "table3", Text: text, Rows: rows}
}

// Fig7 regenerates Figure 7: sequential clipping time of the GPC stand-in
// versus polygon size, demonstrating the super-linear growth that makes
// partitioning into smaller sub-problems profitable.
func Fig7(sizes []int, seed int64) Result {
	header := []string{"Edges/poly", "Seq time (ms)", "us/edge"}
	var rows [][]string
	for _, n := range sizes {
		subject, clip := data.SyntheticPair(seed, n, n)
		t0 := time.Now()
		out := overlay.Clip(subject, clip, overlay.Intersection, overlay.Options{Parallelism: 1})
		el := time.Since(t0)
		_ = out
		rows = append(rows, row(fmt.Sprint(n), ms(el),
			fmt.Sprintf("%.3f", float64(el.Microseconds())/float64(2*n))))
	}
	text := "Figure 7 — sequential clipping time vs polygon size (intersection of two synthetic polygons)\n" +
		formatRows(header, rows)
	return Result{Name: "fig7", Text: text, Rows: rows}
}

// Fig8 regenerates Figure 8: Algorithm 2 speedup versus thread count for
// synthetic polygon pairs of several sizes. Speedup is sequential time over
// modelled parallel time (see package comment).
func Fig8(sizes []int, threads []int, seed int64) Result {
	header := append([]string{"Edges/poly", "Seq (ms)"}, func() []string {
		var h []string
		for _, p := range threads {
			h = append(h, fmt.Sprintf("S(p=%d)", p))
		}
		return h
	}()...)
	var rows [][]string
	for _, n := range sizes {
		subject, clip := data.SyntheticPair(seed, n, n)
		t0 := time.Now()
		overlay.Clip(subject, clip, overlay.Intersection, overlay.Options{Parallelism: 1})
		seq := time.Since(t0)
		cells := []string{fmt.Sprint(n), ms(seq)}
		for _, p := range threads {
			// Slabs: p, workers: 1 — true per-slab costs, parallel time
			// modelled by scheduling them onto p workers (see package doc).
			_, st := core.ClipPair(subject, clip, core.Intersection, core.Options{Threads: 1, Slabs: p})
			model := st.ModelledParallel(p)
			cells = append(cells, fmt.Sprintf("%.2f", float64(seq)/float64(model)))
		}
		rows = append(rows, cells)
	}
	text := "Figure 8 — Algorithm 2 speedup vs threads (synthetic pairs; modelled parallel time)\n" +
		formatRows(header, rows)
	return Result{Name: "fig8", Text: text, Rows: rows}
}

// Fig9 regenerates Figure 9: the partition / clip / merge phase breakdown
// of Algorithm 2 versus thread count, for two workloads (sets I and II).
func Fig9(threads []int, sizes []int, seed int64) Result {
	header := []string{"Set", "Threads", "Partition (ms)", "Clip (ms)", "Merge (ms)"}
	var rows [][]string
	for si, n := range sizes {
		subject, clip := data.SyntheticPair(seed+int64(si), n, n)
		for _, p := range threads {
			_, st := core.ClipPair(subject, clip, core.Intersection, core.Options{Threads: 1, Slabs: p})
			rows = append(rows, row(
				fmt.Sprintf("%s(n=%d)", string(rune('I'+si)), n), fmt.Sprint(p),
				ms(st.Partition), ms(st.CriticalPath()), ms(st.Merge)))
		}
	}
	text := "Figure 9 — phase breakdown (partition / per-thread clip critical path / merge)\n" +
		formatRows(header, rows)
	return Result{Name: "fig9", Text: text, Rows: rows}
}

// datasetLayers synthesizes the Table III layers once.
func datasetLayers(scale float64, seed int64) [][]geom.Polygon {
	out := make([][]geom.Polygon, len(data.TableIII))
	for i, d := range data.TableIII {
		out[i] = data.Layer(d, scale, seed+int64(i))
	}
	return out
}

// Fig10 regenerates Figure 10: relative speedup versus threads for the
// real-data workloads Intersect(1,2), Union(1,2), Intersect(3,4),
// Union(3,4). Larger datasets scale better — the paper's headline
// qualitative result.
func Fig10(threads []int, scale float64, seed int64) Result {
	layers := datasetLayers(scale, seed)
	workloads := []struct {
		name string
		a, b core.Layer
		op   core.Op
	}{
		{"Intersect(1,2)", layers[0], layers[1], core.Intersection},
		{"Union(1,2)", layers[0], layers[1], core.Union},
		{"Intersect(3,4)", layers[2], layers[3], core.Intersection},
		{"Union(3,4)", layers[2], layers[3], core.Union},
	}
	header := append([]string{"Workload", "Seq (ms)"}, func() []string {
		var h []string
		for _, p := range threads {
			h = append(h, fmt.Sprintf("S(p=%d)", p))
		}
		return h
	}()...)
	var rows [][]string
	for _, w := range workloads {
		_, stSeq := core.ClipLayers(w.a, w.b, w.op, core.Options{Threads: 1})
		seq := stSeq.TotalWork() + stSeq.Sort + stSeq.Partition
		cells := []string{w.name, ms(seq)}
		for _, p := range threads {
			_, st := core.ClipLayers(w.a, w.b, w.op, core.Options{Threads: 1, Slabs: p})
			model := st.ModelledParallel(p)
			cells = append(cells, fmt.Sprintf("%.2f", float64(seq)/float64(model)))
		}
		rows = append(rows, cells)
	}
	text := fmt.Sprintf("Figure 10 — relative speedup vs threads, synthesized Table III datasets (scale %.3g)\n", scale) +
		formatRows(header, rows)
	return Result{Name: "fig10", Text: text, Rows: rows}
}

// Fig11 regenerates Figure 11: the per-thread clip-time distribution for
// Intersect(1,2), whose load imbalance explains that workload's limited
// scalability.
func Fig11(threads int, scale float64, seed int64) Result {
	layers := datasetLayers(scale, seed)
	_, st := core.ClipLayers(layers[0], layers[1], core.Intersection, core.Options{Threads: 1, Slabs: threads})
	header := []string{"Thread", "Clip time (ms)", "Share of max"}
	maxT := st.CriticalPath()
	var rows [][]string
	for i, d := range st.PerThread {
		share := 0.0
		if maxT > 0 {
			share = float64(d) / float64(maxT)
		}
		rows = append(rows, row(fmt.Sprint(i), ms(d), fmt.Sprintf("%.2f", share)))
	}
	text := fmt.Sprintf("Figure 11 — per-thread load for Intersect(1,2), %d threads (imbalance limits scaling)\n", threads) +
		formatRows(header, rows)
	return Result{Name: "fig11", Text: text, Rows: rows}
}

// ArcGISRatio is the paper's measured constant: ArcGIS was about 5x faster
// than sequential GPC on Intersect(1,2) (§V-B). The absolute-speedup figure
// uses it to model the paper's external baseline, which cannot be run here.
const ArcGISRatio = 5.0

// Fig12 regenerates Figure 12: absolute speedup of the multi-threaded
// algorithm against the modelled ArcGIS baseline (sequential engine time
// divided by ArcGISRatio, the paper's published relationship).
func Fig12(threads int, scale float64, seed int64) Result {
	layers := datasetLayers(scale, seed)
	workloads := []struct {
		name string
		a, b core.Layer
		op   core.Op
	}{
		{"Intersect(1,2)", layers[0], layers[1], core.Intersection},
		{"Intersect(3,4)", layers[2], layers[3], core.Intersection},
		{"Union(3,4)", layers[2], layers[3], core.Union},
	}
	header := []string{"Workload", "Seq GPC-like (ms)", "Modelled ArcGIS (ms)", "Parallel p=" + fmt.Sprint(threads) + " (ms)", "Abs speedup"}
	var rows [][]string
	for _, w := range workloads {
		_, stSeq := core.ClipLayers(w.a, w.b, w.op, core.Options{Threads: 1})
		seq := stSeq.TotalWork() + stSeq.Sort + stSeq.Partition
		arc := time.Duration(float64(seq) / ArcGISRatio)
		_, st := core.ClipLayers(w.a, w.b, w.op, core.Options{Threads: 1, Slabs: threads})
		parTime := st.ModelledParallel(threads)
		rows = append(rows, row(w.name, ms(seq), ms(arc), ms(parTime),
			fmt.Sprintf("%.1f", float64(arc)/float64(parTime))))
	}
	text := fmt.Sprintf("Figure 12 — absolute speedup vs modelled ArcGIS baseline (paper ratio %.1fx), %d threads\n", ArcGISRatio, threads) +
		formatRows(header, rows)
	return Result{Name: "fig12", Text: text, Rows: rows}
}

// PramValidation validates the §III complexity claims on the CREW PRAM
// simulator: rounds grow polylogarithmically while processors track the
// output-sensitive bound n + k + k'.
func PramValidation(sizes []int, seed int64) Result {
	header := []string{"n (edges/poly)", "k (crossings)", "k'", "n+k+k'", "Scan rounds", "Sort rounds", "Inv rounds"}
	var rows [][]string
	for _, n := range sizes {
		subject, clip := data.InterleavedPair(seed, n)
		_, rep := core.AlgorithmOne(subject, clip, core.Intersection, 0)

		m := pram.New()
		xs := make([]int, 2*n)
		for i := range xs {
			xs[i] = (i * 7919) % (2 * n)
		}
		m.Scan(xs)
		scanRounds := m.Rounds()
		m.Reset()
		m.Sort(xs)
		sortRounds := m.Rounds()
		m.Reset()
		m.CountInversions(xs)
		invRounds := m.Rounds()

		rows = append(rows, row(fmt.Sprint(2*n), fmt.Sprint(rep.K), fmt.Sprint(rep.KPrime),
			fmt.Sprint(rep.Procs), fmt.Sprint(scanRounds), fmt.Sprint(sortRounds), fmt.Sprint(invRounds)))
	}
	text := "PRAM validation — output-sensitive sizes from Algorithm 1 and simulated round counts\n" +
		formatRows(header, rows)
	return Result{Name: "pram", Text: text, Rows: rows}
}
