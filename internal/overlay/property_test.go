package overlay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"polyclip/internal/geom"
)

// randomPolygon decodes a quick-generated seed into a test polygon:
// alternating regular polygons, stars and self-intersecting stars at
// bounded positions.
func randomPolygon(seed int64) geom.Polygon {
	rng := rand.New(rand.NewSource(seed))
	c := geom.Point{X: rng.Float64()*6 - 3, Y: rng.Float64()*6 - 3}
	r := 1 + rng.Float64()*4
	switch rng.Intn(3) {
	case 0:
		return geom.Polygon{geom.RegularPolygon(c, r, 3+rng.Intn(12), rng.Float64())}
	case 1:
		return geom.Polygon{geom.Star(c, r, r*0.4, 4+rng.Intn(8), rng.Float64())}
	default:
		return geom.Polygon{geom.SelfIntersectingStar(c, r, 5+2*rng.Intn(3), rng.Float64())}
	}
}

func area(p geom.Polygon) float64 { return p.Area() }

const relTol = 1e-6

func close2(a, b float64) bool { return math.Abs(a-b) <= relTol*(1+math.Abs(a)+math.Abs(b)) }

// Property: inclusion–exclusion. area(A∪B) = area(A) + area(B) − area(A∩B),
// and area(A⊕B) = area(A∪B) − area(A∩B).
func TestPropertyInclusionExclusion(t *testing.T) {
	f := func(sa, sb int64) bool {
		a, b := randomPolygon(sa), randomPolygon(sb)
		// Even-odd area of each operand, normalized through the engine.
		big := geom.RectPolygon(-20, -20, 20, 20)
		areaA := area(Clip(a, big, Intersection, Options{}))
		areaB := area(Clip(b, big, Intersection, Options{}))
		inter := area(Clip(a, b, Intersection, Options{}))
		union := area(Clip(a, b, Union, Options{}))
		xor := area(Clip(a, b, Xor, Options{}))
		return close2(union, areaA+areaB-inter) && close2(xor, union-inter)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(101))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: difference identities. area(A−B) = area(A) − area(A∩B) and
// area(A−B) + area(B−A) = area(A⊕B).
func TestPropertyDifference(t *testing.T) {
	f := func(sa, sb int64) bool {
		a, b := randomPolygon(sa), randomPolygon(sb)
		big := geom.RectPolygon(-20, -20, 20, 20)
		areaA := area(Clip(a, big, Intersection, Options{}))
		inter := area(Clip(a, b, Intersection, Options{}))
		dAB := area(Clip(a, b, Difference, Options{}))
		dBA := area(Clip(b, a, Difference, Options{}))
		xor := area(Clip(a, b, Xor, Options{}))
		return close2(dAB, areaA-inter) && close2(dAB+dBA, xor)
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(103))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: commutativity of ∩, ∪ and ⊕.
func TestPropertyCommutativity(t *testing.T) {
	f := func(sa, sb int64) bool {
		a, b := randomPolygon(sa), randomPolygon(sb)
		for _, op := range []Op{Intersection, Union, Xor} {
			if !close2(area(Clip(a, b, op, Options{})), area(Clip(b, a, op, Options{}))) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(107))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: idempotence and annihilation. A∩A = A, A∪A = A, A−A = ∅,
// A⊕A = ∅ (areas, with A's even-odd area as reference).
func TestPropertyIdempotence(t *testing.T) {
	f := func(sa int64) bool {
		a := randomPolygon(sa)
		big := geom.RectPolygon(-20, -20, 20, 20)
		areaA := area(Clip(a, big, Intersection, Options{}))
		return close2(area(Clip(a, a.Clone(), Intersection, Options{})), areaA) &&
			close2(area(Clip(a, a.Clone(), Union, Options{})), areaA) &&
			area(Clip(a, a.Clone(), Difference, Options{})) <= relTol &&
			area(Clip(a, a.Clone(), Xor, Options{})) <= relTol
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(109))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: result containment. A∩B ⊆ A (every sampled point of the result
// is inside A), and A ⊆ A∪B.
func TestPropertyContainment(t *testing.T) {
	f := func(sa, sb int64) bool {
		a, b := randomPolygon(sa), randomPolygon(sb)
		inter := Clip(a, b, Intersection, Options{})
		union := Clip(a, b, Union, Options{})
		rng := rand.New(rand.NewSource(sa ^ sb))
		box := a.BBox().Union(b.BBox())
		minDist := math.Max(box.Width(), box.Height()) * 1e-5
		var edges []geom.Segment
		edges = append(edges, a.Edges()...)
		edges = append(edges, b.Edges()...)
		for i := 0; i < 200; i++ {
			pt := geom.Point{
				X: box.MinX + rng.Float64()*box.Width(),
				Y: box.MinY + rng.Float64()*box.Height(),
			}
			skip := false
			for _, e := range edges {
				if e.DistToPoint(pt) < minDist {
					skip = true
					break
				}
			}
			if skip {
				continue
			}
			if inter.ContainsPoint(pt) && !a.ContainsPoint(pt) {
				return false
			}
			if a.ContainsPoint(pt) && !union.ContainsPoint(pt) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(113))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan within a bounding frame. Frame−(A∪B) = (Frame−A)∩(Frame−B).
func TestPropertyDeMorgan(t *testing.T) {
	f := func(sa, sb int64) bool {
		a, b := randomPolygon(sa), randomPolygon(sb)
		frame := geom.RectPolygon(-20, -20, 20, 20)
		lhs := Clip(frame, Clip(a, b, Union, Options{}), Difference, Options{})
		fa := Clip(frame, a, Difference, Options{})
		fb := Clip(frame, b, Difference, Options{})
		rhs := Clip(fa, fb, Intersection, Options{})
		return close2(area(lhs), area(rhs))
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(127))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: engine/strategy agreement on arbitrary input classes is covered
// in package vatti and core; here: repeated clipping is stable (clipping
// the output against the frame changes nothing).
func TestPropertyOutputStability(t *testing.T) {
	f := func(sa, sb int64) bool {
		a, b := randomPolygon(sa), randomPolygon(sb)
		out := Clip(a, b, Intersection, Options{})
		if len(out) == 0 {
			return true
		}
		box := out.BBox()
		frame := geom.RectPolygon(box.MinX-1, box.MinY-1, box.MaxX+1, box.MaxY+1)
		again := Clip(out, frame, Intersection, Options{})
		return close2(area(out), area(again))
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(131))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: translation equivariance. Clipping translated inputs gives the
// translated result (same area).
func TestPropertyTranslationEquivariance(t *testing.T) {
	f := func(sa, sb int64, dxRaw, dyRaw int16) bool {
		a, b := randomPolygon(sa), randomPolygon(sb)
		dx, dy := float64(dxRaw)/100, float64(dyRaw)/100
		base := area(Clip(a, b, Intersection, Options{}))
		moved := area(Clip(a.Translate(dx, dy), b.Translate(dx, dy), Intersection, Options{}))
		return close2(base, moved)
	}
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(137))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
