// Package vatti implements the scanbeam plane-sweep clipping algorithm the
// paper parallelizes (Vatti 1992, the algorithm inside the GPC library the
// authors used for sequential clipping). The plane is swept bottom-to-top
// through scanbeams — the horizontal strips between consecutive event
// y-coordinates (edge endpoints and edge intersections, §III-B). Inside a
// scanbeam no two active edges cross, so the active edge list ordered by x
// alternates left/right bounds (Lemma 1); running even-odd parity over the
// list classifies each strip of the beam as inside or outside each input
// polygon (Lemmas 2–3), and the strips selected by the clipping operation
// are emitted as trapezoids. Adjacent beams' trapezoids are merged by
// cancelling the shared horizontal caps (the paper's virtual vertices k')
// and stitching the remaining boundary into rings (the paper's Step 4 /
// Fig. 6 merge).
//
// This is the sequential reference engine; package core parallelizes the
// per-beam work (Algorithm 1) and the slab decomposition (Algorithm 2).
package vatti

import (
	"math"
	"slices"
	"sort"

	"polyclip/internal/arrange"
	"polyclip/internal/geom"
	"polyclip/internal/overlay"
	"polyclip/internal/ringstitch"
	"polyclip/internal/segtree"
)

// Op aliases the overlay operation set so both engines share one vocabulary.
type Op = overlay.Op

// Re-exported operations.
const (
	Intersection = overlay.Intersection
	Union        = overlay.Union
	Difference   = overlay.Difference
	Xor          = overlay.Xor
)

// Trapezoid is one piece of the clipped region inside a single scanbeam:
// the area between scanlines Y1 < Y2, bounded left and right by two
// non-crossing edges. L1,R1 are the corners on the bottom scanline, L2,R2 on
// the top; it degenerates to a triangle when two corners coincide.
type Trapezoid struct {
	L1, R1, L2, R2 geom.Point
}

// Ring returns the trapezoid boundary as a counter-clockwise ring.
func (tz Trapezoid) Ring() geom.Ring {
	r := geom.Ring{tz.L1}
	for _, p := range []geom.Point{tz.R1, tz.R2, tz.L2} {
		if p != r[len(r)-1] && p != r[0] {
			r = append(r, p)
		}
	}
	return r
}

// Area returns the trapezoid area.
func (tz Trapezoid) Area() float64 {
	return tz.Ring().Area()
}

// activeEdge is an edge of the input in the active edge list.
type activeEdge struct {
	seg   geom.Segment // oriented with A.Y < B.Y
	owner uint8        // 0 subject, 1 clip
}

// Clip computes `subject op clip` with the sequential scanbeam sweep.
func Clip(subject, clip geom.Polygon, op Op) geom.Polygon {
	return Assemble(Trapezoids(subject, clip, op))
}

// Trapezoids computes the trapezoid decomposition of `subject op clip` —
// the raw per-scanbeam output of the sweep, before merging (GPC's tristrip
// analogue).
//
// Horizontal input edges are dropped outright rather than perturbed: the
// even-odd parity of any scanline strictly inside a beam is unaffected by
// edges lying on beam boundaries, and the boundary pieces they contribute
// are regenerated exactly as trapezoid caps. This sidesteps the paper's
// §III-C perturbation without changing the result.
func Trapezoids(subject, clip geom.Polygon, op Op) []Trapezoid {
	subject = dropDegenerate(subject)
	clip = dropDegenerate(clip)

	// Pre-resolve the arrangement: every crossing or overlap between any
	// two edges — within an operand or across them — becomes a shared
	// welded vertex, and self-intersecting operands are rewritten as simple
	// even-odd rings. Scheduling intersection ys on unsplit edges is not
	// enough: a near-collinear crossing's computed y can land in the wrong
	// beam, leaving two active edges crossed inside a beam and the emitted
	// trapezoid corners inverted.
	subject, clip = arrange.ResolvePair(subject, clip)

	edges := collectEdges(subject, clip)
	if len(edges) == 0 {
		return nil
	}

	// Event schedule: endpoint ys suffice — after resolution no two edges
	// cross strictly inside any beam.
	ys := make([]float64, 0, 2*len(edges))
	for _, ae := range edges {
		ys = append(ys, ae.seg.A.Y, ae.seg.B.Y)
	}
	ys = segtree.Dedup(ys)
	if len(ys) < 2 {
		return nil
	}

	// Sweep: per-beam active edge set maintained from per-boundary start
	// and end buckets (the minima/maxima tables of Vatti's sweep). The
	// buckets are built in compressed (CSR) form — a counting pass, a prefix
	// sum and a fill — so the schedule costs three flat allocations instead
	// of one slice per boundary.
	m := len(ys) - 1
	startAt := make([]int32, len(edges))
	endAt := make([]int32, len(edges))
	startOff := make([]int32, m+2)
	for i, ae := range edges {
		s := int32(sort.SearchFloat64s(ys, ae.seg.A.Y))
		startAt[i] = s
		endAt[i] = int32(sort.SearchFloat64s(ys, ae.seg.B.Y))
		startOff[s+1]++
	}
	for b := 1; b < len(startOff); b++ {
		startOff[b] += startOff[b-1]
	}
	startIDs := make([]int32, len(edges))
	fill := make([]int32, m+1)
	for i := range edges {
		s := startAt[i]
		startIDs[startOff[s]+fill[s]] = int32(i)
		fill[s]++
	}

	// Active edge list: a compact id slice, each id inserted once at its
	// start boundary and swept out by one linear compaction per beam once
	// its end boundary is reached — the same per-beam cost as iterating a
	// hash set, without the hashing or the iteration-order churn.
	active := make([]int32, 0, 64)
	var scratch beamScratch
	var tzs []Trapezoid
	for b := 0; b < m; b++ {
		active = append(active, startIDs[startOff[b]:startOff[b+1]]...)
		w := 0
		for _, id := range active {
			if endAt[id] > int32(b) {
				active[w] = id
				w++
			}
		}
		active = active[:w]
		if len(active) >= 2 {
			beamTrapezoids(edges, active, ys[b], ys[b+1], op, &scratch, &tzs)
		}
	}
	return tzs
}

// beamEntry is one active edge positioned on a beam's midline.
type beamEntry struct {
	xm    float64
	id    int32
	owner uint8
}

// beamScratch is the per-sweep reusable ordering buffer; the sweep is
// sequential, so one instance serves every beam with zero steady-state
// allocation.
type beamScratch struct {
	order []beamEntry
}

func (s *beamScratch) ordered(n int) []beamEntry {
	if cap(s.order) < n {
		s.order = make([]beamEntry, n)
	}
	return s.order[:n]
}

// beamTrapezoids emits the op-selected trapezoids of one scanbeam.
func beamTrapezoids(edges []activeEdge, ids []int32, yb, yt float64, op Op, scratch *beamScratch, out *[]Trapezoid) {
	ymid := (yb + yt) / 2
	order := scratch.ordered(len(ids))
	for i, id := range ids {
		order[i] = beamEntry{edges[id].seg.XAtY(ymid), id, edges[id].owner}
	}
	slices.SortFunc(order, func(a, b beamEntry) int {
		switch {
		case a.xm < b.xm:
			return -1
		case a.xm > b.xm:
			return 1
		default:
			return 0
		}
	})

	// Lemma 1/3: walk left to right flipping per-polygon parity; emit a
	// trapezoid for every maximal run where the operation holds.
	var inSub, inClip, inOp bool
	var left int32 = -1
	for _, e := range order {
		if e.owner == 0 {
			inSub = !inSub
		} else {
			inClip = !inClip
		}
		now := op.Eval(inSub, inClip)
		if now && !inOp {
			left = e.id
		} else if !now && inOp {
			l, r := edges[left].seg, edges[e.id].seg
			tz := Trapezoid{
				L1: geom.Point{X: l.XAtY(yb), Y: yb},
				R1: geom.Point{X: r.XAtY(yb), Y: yb},
				L2: geom.Point{X: l.XAtY(yt), Y: yt},
				R2: geom.Point{X: r.XAtY(yt), Y: yt},
			}
			ClampCorners(&tz)
			*out = append(*out, tz)
		}
		inOp = now
	}
}

// ClampCorners collapses an inverted corner pair — the left bound evaluating
// right of the right bound on a beam boundary — to its common midpoint.
// After arrangement resolution this can only come from weld roundoff, so the
// inversion is at most a few ulps wide; collapsing it keeps the cap
// intervals well-formed and, because the midpoint is an order-independent
// function of the two x values, the adjacent beam (which sees the same two
// edges in swapped order) computes the identical point and the shared caps
// still cancel exactly.
func ClampCorners(tz *Trapezoid) {
	if tz.L1.X > tz.R1.X {
		m := (tz.L1.X + tz.R1.X) / 2
		tz.L1.X, tz.R1.X = m, m
	}
	if tz.L2.X > tz.R2.X {
		m := (tz.L2.X + tz.R2.X) / 2
		tz.L2.X, tz.R2.X = m, m
	}
}

// Assemble merges a trapezoid decomposition into polygons: the shared
// horizontal caps between vertically adjacent trapezoids cancel (after
// splitting caps at each other's endpoints) and the remaining directed
// boundary stitches into rings. This is the merge phase of the paper's
// Algorithm 1 (Fig. 6), in its flat single-pass form.
func Assemble(tzs []Trapezoid) geom.Polygon {
	if len(tzs) == 0 {
		return nil
	}
	// Corners of adjacent trapezoids that represent the same arrangement
	// vertex can differ by an ulp when computed through different edges
	// (e.g. the two edges of a crossing). Cluster near-identical corners
	// onto shared representatives so the edge graph balances exactly.
	tzs = snapCorners(tzs)
	// Cap intervals per boundary y: +1 for bottom caps (interior above),
	// -1 for top caps (interior below).
	type capIv struct {
		x0, x1 float64
		dir    int
	}
	caps := make(map[float64][]capIv, 64)
	var sides []ringstitch.Edge
	for _, tz := range tzs {
		if tz.R1.X > tz.L1.X {
			caps[tz.L1.Y] = append(caps[tz.L1.Y], capIv{tz.L1.X, tz.R1.X, +1})
		}
		if tz.R2.X > tz.L2.X {
			caps[tz.L2.Y] = append(caps[tz.L2.Y], capIv{tz.L2.X, tz.R2.X, -1})
		}
		// Right side up, left side down (interior on the left).
		if tz.R1 != tz.R2 {
			sides = append(sides, ringstitch.Edge{From: tz.R1, To: tz.R2})
		}
		if tz.L1 != tz.L2 {
			sides = append(sides, ringstitch.Edge{From: tz.L2, To: tz.L1})
		}
	}

	edges := ringstitch.CancelOpposites(sides)

	// Per boundary: net coverage sweep over the interval endpoints. The
	// endpoint and coverage buffers are reused across boundaries.
	var xs []float64
	var net []int
	for y, ivs := range caps {
		xs = xs[:0]
		for _, iv := range ivs {
			xs = append(xs, iv.x0, iv.x1)
		}
		xs = segtree.Dedup(xs)
		if cap(net) < len(xs)-1 {
			net = make([]int, len(xs)-1)
		}
		net = net[:len(xs)-1]
		for i := range net {
			net[i] = 0
		}
		for _, iv := range ivs {
			a := sort.SearchFloat64s(xs, iv.x0)
			b := sort.SearchFloat64s(xs, iv.x1)
			for i := a; i < b; i++ {
				net[i] += iv.dir
			}
		}
		for i, nv := range net {
			a := geom.Point{X: xs[i], Y: y}
			b := geom.Point{X: xs[i+1], Y: y}
			switch {
			case nv > 0: // interior above only: boundary traversed +x
				edges = append(edges, ringstitch.Edge{From: a, To: b})
			case nv < 0: // interior below only: boundary traversed -x
				edges = append(edges, ringstitch.Edge{From: b, To: a})
			}
		}
	}
	return ringstitch.Stitch(edges)
}

// snapCorners welds trapezoid corners that represent the same arrangement
// vertex by quantizing every coordinate onto a power-of-two grid at
// geom.RelEps of the data extent. Quantization is a pure function of the
// coordinate value, so — unlike greedy nearest-neighbour clustering, whose
// groups depend on scan order and can weld two corners while leaving a
// third, equally close one apart — corners that must cancel downstream
// always land on the identical representative. A power-of-two step keeps
// the grid exact on binary-representable inputs (integers, halves, ...).
func snapCorners(tzs []Trapezoid) []Trapezoid {
	box := geom.EmptyBBox()
	for _, tz := range tzs {
		box.Extend(tz.L1)
		box.Extend(tz.R1)
		box.Extend(tz.L2)
		box.Extend(tz.R2)
	}
	scale := math.Max(box.Width(), box.Height())
	scale = math.Max(scale, math.Max(math.Abs(box.MaxX), math.Abs(box.MaxY)))
	scale = math.Max(scale, math.Max(math.Abs(box.MinX), math.Abs(box.MinY)))
	if scale == 0 || math.IsInf(scale, 0) {
		return tzs
	}
	eps := math.Ldexp(1, int(math.Ceil(math.Log2(scale*geom.RelEps))))
	q := func(p geom.Point) geom.Point {
		return geom.Point{X: math.Round(p.X/eps) * eps, Y: math.Round(p.Y/eps) * eps}
	}
	out := make([]Trapezoid, len(tzs))
	for i, tz := range tzs {
		out[i] = Trapezoid{L1: q(tz.L1), R1: q(tz.R1), L2: q(tz.L2), R2: q(tz.R2)}
	}
	return out
}

func dropDegenerate(p geom.Polygon) geom.Polygon {
	var out geom.Polygon
	for _, r := range p {
		if len(r) >= 3 {
			out = append(out, r)
		}
	}
	return out
}

// collectEdges flattens both polygons into upward-oriented active edges.
func collectEdges(subject, clip geom.Polygon) []activeEdge {
	var out []activeEdge
	add := func(p geom.Polygon, owner uint8) {
		for _, r := range p {
			for i := range r {
				j := (i + 1) % len(r)
				a, b := r[i], r[j]
				if a.Y == b.Y {
					continue // horizontal (only possible post-shear for degenerate dx)
				}
				if a.Y > b.Y {
					a, b = b, a
				}
				out = append(out, activeEdge{geom.Segment{A: a, B: b}, owner})
			}
		}
	}
	add(subject, 0)
	add(clip, 1)
	return out
}

// TriStrip is a triangle strip: vertices v0 v1 v2 ... where every
// consecutive triple forms a triangle (GPC's tristrip output format for
// rendering pipelines).
type TriStrip []geom.Point

// Area returns the total area of the strip's triangles.
func (ts TriStrip) Area() float64 {
	var sum float64
	for i := 0; i+2 < len(ts); i++ {
		sum += math.Abs(ts[i+1].Sub(ts[i]).Cross(ts[i+2].Sub(ts[i]))) / 2
	}
	return sum
}

// TriStrips converts a trapezoid decomposition into triangle strips, one
// per trapezoid: (L1, R1, L2, R2), degenerating naturally for triangles.
// Together with Trapezoids this reproduces GPC's polygon-to-tristrip
// conversion: vatti.TriStrips(vatti.Trapezoids(a, b, op)).
func TriStrips(tzs []Trapezoid) []TriStrip {
	out := make([]TriStrip, 0, len(tzs))
	for _, tz := range tzs {
		strip := TriStrip{tz.L1, tz.R1, tz.L2, tz.R2}
		// Drop duplicated corners (triangle cases).
		dedup := strip[:0]
		for _, p := range strip {
			found := false
			for _, q := range dedup {
				if p == q {
					found = true
				}
			}
			if !found {
				dedup = append(dedup, p)
			}
		}
		if len(dedup) >= 3 {
			out = append(out, dedup)
		}
	}
	return out
}
