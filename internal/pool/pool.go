// Package pool is the persistent work-stealing scheduler underneath every
// parallel primitive in the repository (see internal/par). The paper's
// speedups come from keeping p workers busy across irregular per-slab and
// per-beam work; the previous design — a fresh goroutine fan-out per call
// with static uniform chunking — pays a spawn/join per loop and cannot
// rebalance when one chunk is 10x the others. This package replaces it with
// the design ParGeo uses for its parallel primitives: one process-wide set
// of worker goroutines, a bounded deque per worker, and random stealing.
//
// Contract highlights:
//
//   - Lazy start: no goroutine exists until the first Fork; the pool sizes
//     itself to GOMAXPROCS at that moment (override with SetSize).
//   - Reentrant: a task may Fork subtasks and wait for them. Waiters never
//     idle while claimable work exists — they pop their own deque, then
//     steal — so nested submission cannot deadlock even on a 1-worker pool.
//   - Cooperative cancellation: a batch forked with a context skips tasks
//     that have not started once the context is done (running tasks are
//     expected to poll the context themselves, as the clipping loops do).
//   - Panic isolation: a panicking task never kills a worker or the
//     process; the first panic of a batch is captured with its stack and
//     returned to the forker, which re-raises it (internal/par wraps it in
//     *par.PanicError so the resilience chain in resilience.go keeps
//     working).
//   - Fault sites: pool.submit, pool.steal and pool.run route through
//     internal/guard, so the chaos engine can crash or hang a pooled
//     worker at will.
package pool

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"polyclip/internal/guard"
)

// Panic is the first panic captured inside a forked batch: the recovered
// value and the stack of the panicking task's goroutine.
type Panic struct {
	Value any
	Stack []byte
}

// task is one unit of pooled work: index i of its batch's function.
type task struct {
	b *batch
	i int
}

// batch is one Fork call: n tasks sharing a function, a countdown to a
// closed channel, and the first captured panic.
type batch struct {
	fn      func(i int)
	ctx     context.Context // nil = never cancelled
	pending atomic.Int32
	done    chan struct{}
	pan     atomic.Pointer[Panic]
}

// worker is one persistent pool goroutine and its deque. The owner pushes
// and pops at the tail (LIFO, for locality and bounded nesting); thieves
// steal from the head (FIFO, so the oldest — typically largest — subtree
// migrates).
type worker struct {
	pool *Pool
	mu   sync.Mutex
	dq   []task
	rng  uint64 // xorshift state for victim selection
	goid uint64
}

func (w *worker) push(t task) {
	w.mu.Lock()
	w.dq = append(w.dq, t)
	w.mu.Unlock()
}

func (w *worker) pop() (task, bool) {
	w.mu.Lock()
	n := len(w.dq)
	if n == 0 {
		w.mu.Unlock()
		return task{}, false
	}
	t := w.dq[n-1]
	w.dq[n-1] = task{}
	w.dq = w.dq[:n-1]
	w.mu.Unlock()
	return t, true
}

func (w *worker) stealFrom() (task, bool) {
	w.mu.Lock()
	if len(w.dq) == 0 {
		w.mu.Unlock()
		return task{}, false
	}
	t := w.dq[0]
	copy(w.dq, w.dq[1:])
	w.dq[len(w.dq)-1] = task{}
	w.dq = w.dq[:len(w.dq)-1]
	w.mu.Unlock()
	return t, true
}

// Stats is a snapshot of the pool's lifetime counters.
type Stats struct {
	Submitted int64 // tasks forked
	Executed  int64 // tasks whose function ran to completion or panic
	Stolen    int64 // tasks claimed from another worker's deque
	Skipped   int64 // tasks skipped because their batch context was done
	Panics    int64 // panics captured in tasks
}

// Pool is a work-stealing scheduler instance. The zero value is ready to
// use; most callers want the process-wide Default pool via the package
// functions. Independent instances exist for the scheduler test battery.
type Pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	started  bool
	stopping bool
	size     int // configured size; <= 0 means GOMAXPROCS at start
	idle     int
	wg       sync.WaitGroup
	workers  atomic.Pointer[[]*worker]

	gmu    sync.Mutex
	global []task

	queued   atomic.Int64 // claimable (queued, unclaimed) tasks
	inflight atomic.Int64 // submitted, not yet finished tasks

	submitted atomic.Int64
	executed  atomic.Int64
	stolen    atomic.Int64
	skipped   atomic.Int64
	panics    atomic.Int64

	seed atomic.Uint64 // rng seed sequence for workers and waiters
}

// New returns an isolated pool that will start size workers on first use
// (size <= 0 means GOMAXPROCS at start time).
func New(size int) *Pool {
	return &Pool{size: size}
}

var defaultPool Pool

// Default returns the process-wide pool shared by internal/par.
func Default() *Pool { return &defaultPool }

// SetSize quiesces the pool and configures the worker count for its next
// lazy start; n <= 0 restores the GOMAXPROCS default. Test hook: callers
// must ensure no forks are in flight.
func (p *Pool) SetSize(n int) {
	p.Quiesce()
	p.mu.Lock()
	p.size = n
	p.mu.Unlock()
}

// Size reports the number of workers the pool runs (or would start) with.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sizeLocked()
}

func (p *Pool) sizeLocked() int {
	if p.size > 0 {
		return p.size
	}
	return runtime.GOMAXPROCS(0)
}

// Stats snapshots the lifetime counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Submitted: p.submitted.Load(),
		Executed:  p.executed.Load(),
		Stolen:    p.stolen.Load(),
		Skipped:   p.skipped.Load(),
		Panics:    p.panics.Load(),
	}
}

// ensureStarted spawns the workers on first use (and after a Quiesce).
func (p *Pool) ensureStarted() {
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return
	}
	if p.cond == nil {
		p.cond = sync.NewCond(&p.mu)
	}
	n := p.sizeLocked()
	ws := make([]*worker, n)
	for i := range ws {
		ws[i] = &worker{pool: p, rng: p.nextSeed()}
	}
	p.workers.Store(&ws)
	p.started = true
	p.wg.Add(n)
	for _, w := range ws {
		go p.workerLoop(w)
	}
	p.mu.Unlock()
}

func (p *Pool) nextSeed() uint64 {
	return p.seed.Add(0x9e3779b97f4a7c15) | 1
}

// Quiesce waits for every forked task to finish, then stops and joins all
// workers, returning the pool to its never-started state (the next Fork
// lazily restarts it). Test hook for the idle-worker leak check; callers
// must not fork concurrently.
func (p *Pool) Quiesce() {
	for p.inflight.Load() != 0 {
		time.Sleep(50 * time.Microsecond)
	}
	p.mu.Lock()
	if !p.started {
		p.mu.Unlock()
		return
	}
	p.stopping = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	p.mu.Lock()
	p.started = false
	p.stopping = false
	p.workers.Store(nil)
	p.mu.Unlock()
}

// Fork runs fn(0..n-1) as n pool tasks and waits for all of them, helping
// to run claimable tasks while it waits (its own deque first when called
// from a worker, then stealing). It returns the first panic captured in the
// batch, or nil. A non-nil ctx makes tasks that have not started when ctx
// is done be skipped (counted, never run); tasks already running are
// expected to poll ctx themselves.
//
// n == 1 runs fn inline — the pool adds nothing for a single task — but
// still with panic capture, so callers handle one code path.
func (p *Pool) Fork(ctx context.Context, n int, fn func(i int)) *Panic {
	if n <= 0 {
		return nil
	}
	guard.Hit("pool.submit")
	p.submitted.Add(int64(n))
	if n == 1 {
		return p.runInline(ctx, fn)
	}
	p.ensureStarted()
	b := &batch{fn: fn, ctx: ctx, done: make(chan struct{})}
	b.pending.Store(int32(n))
	p.inflight.Add(int64(n))
	self := p.currentWorker()
	if self != nil {
		for i := n - 1; i >= 0; i-- { // LIFO pop order = ascending i
			self.push(task{b, i})
		}
	} else {
		p.gmu.Lock()
		for i := 0; i < n; i++ {
			p.global = append(p.global, task{b, i})
		}
		p.gmu.Unlock()
	}
	p.queued.Add(int64(n))
	p.wake()
	p.wait(b, self)
	return b.pan.Load()
}

// runInline executes one task on the caller's goroutine with the same
// capture/skip semantics as pooled execution.
func (p *Pool) runInline(ctx context.Context, fn func(i int)) (pan *Panic) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			pan = &Panic{Value: r, Stack: debug.Stack()}
		}
	}()
	if ctx != nil && ctx.Err() != nil {
		p.skipped.Add(1)
		return nil
	}
	guard.Hit("pool.run")
	p.executed.Add(1)
	fn(0)
	return nil
}

// wake signals parked workers that claimable work exists.
func (p *Pool) wake() {
	p.mu.Lock()
	if p.idle > 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// wait blocks until b completes, running claimable tasks while any exist.
// Once nothing is claimable the remaining tasks of b are running on other
// goroutines, so parking on the done channel is deadlock-free: every
// runner either finishes or forks subtasks it then helps to run itself.
func (p *Pool) wait(b *batch, self *worker) {
	rng := p.nextSeed()
	spins := 0
	for {
		select {
		case <-b.done:
			return
		default:
		}
		if t, stolen, ok := p.grab(self, &rng); ok {
			p.exec(t, stolen)
			spins = 0
			continue
		}
		if spins++; spins < 3 {
			runtime.Gosched()
			continue
		}
		<-b.done
		return
	}
}

// grab claims one task: the caller's own deque first (when a worker), then
// the global injector queue, then a random sweep over the other workers'
// deques. stolen reports a claim from another worker's deque (the
// pool.steal fault site).
func (p *Pool) grab(self *worker, rng *uint64) (t task, stolen, ok bool) {
	if self != nil {
		if t, ok := self.pop(); ok {
			p.queued.Add(-1)
			return t, false, true
		}
	}
	p.gmu.Lock()
	if len(p.global) > 0 {
		t := p.global[0]
		copy(p.global, p.global[1:])
		p.global[len(p.global)-1] = task{}
		p.global = p.global[:len(p.global)-1]
		p.gmu.Unlock()
		p.queued.Add(-1)
		return t, false, true
	}
	p.gmu.Unlock()
	wsp := p.workers.Load()
	if wsp == nil {
		return task{}, false, false
	}
	ws := *wsp
	n := len(ws)
	if n == 0 {
		return task{}, false, false
	}
	// xorshift64* victim order: start at a random worker, sweep all.
	*rng ^= *rng << 13
	*rng ^= *rng >> 7
	*rng ^= *rng << 17
	start := int(*rng % uint64(n))
	for k := 0; k < n; k++ {
		v := ws[(start+k)%n]
		if v == self {
			continue
		}
		if t, ok := v.stealFrom(); ok {
			p.queued.Add(-1)
			p.stolen.Add(1)
			return t, true, true
		}
	}
	return task{}, false, false
}

// exec runs one claimed task with panic capture and cancellation skip,
// then counts it off its batch. The recover here is what keeps a panicking
// task from killing a persistent worker goroutine — the panic is recorded
// on the batch and re-raised by the forker instead.
func (p *Pool) exec(t task, stolen bool) {
	b := t.b
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			b.pan.CompareAndSwap(nil, &Panic{Value: r, Stack: debug.Stack()})
		}
		p.inflight.Add(-1)
		if b.pending.Add(-1) == 0 {
			close(b.done)
		}
	}()
	if b.ctx != nil && b.ctx.Err() != nil {
		p.skipped.Add(1)
		return
	}
	if stolen {
		guard.Hit("pool.steal")
	}
	guard.Hit("pool.run")
	p.executed.Add(1)
	b.fn(t.i)
}

// workerLoop is the body of one persistent worker: claim, run, park.
func (p *Pool) workerLoop(w *worker) {
	defer p.wg.Done()
	w.goid = goid()
	registerWorker(w)
	defer unregisterWorker(w)
	for {
		if t, stolen, ok := p.grab(w, &w.rng); ok {
			p.exec(t, stolen)
			continue
		}
		p.mu.Lock()
		for p.queued.Load() == 0 && !p.stopping {
			p.idle++
			p.cond.Wait()
			p.idle--
		}
		stop := p.stopping
		p.mu.Unlock()
		if stop {
			return
		}
	}
}

// ---------------------------------------------------------------------------
// Worker identification. Nested Fork calls must push to the submitting
// worker's own deque (locality, and the LIFO discipline that bounds
// memory), which requires knowing whether the current goroutine is a pool
// worker. Go has no goroutine-local storage, so workers register their
// goroutine id — parsed once from the runtime.Stack header at spawn — in a
// shared table; Fork parses the caller's id and looks it up. The parse
// costs ~1µs, paid once per Fork (not per task), which is noise next to
// the work a batch carries.

var workerTable sync.Map // goid -> *worker

func registerWorker(w *worker)   { workerTable.Store(w.goid, w) }
func unregisterWorker(w *worker) { workerTable.Delete(w.goid) }

func (p *Pool) currentWorker() *worker {
	v, ok := workerTable.Load(goid())
	if !ok {
		return nil
	}
	w := v.(*worker)
	if w.pool != p {
		return nil // a worker of another pool instance counts as external
	}
	return w
}

// goid parses the current goroutine's id from the "goroutine N [...]:"
// header of runtime.Stack.
func goid() uint64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine " (10 bytes), read digits.
	var id uint64
	for _, c := range buf[10:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// ---------------------------------------------------------------------------
// Package-level convenience over the Default pool.

// Fork runs fn(0..n-1) on the process-wide pool; see (*Pool).Fork.
func Fork(ctx context.Context, n int, fn func(i int)) *Panic {
	return defaultPool.Fork(ctx, n, fn)
}

// Join2 runs left and right as a two-task batch on the process-wide pool —
// the binary fork-join used by the parallel mergesorts — and returns the
// first captured panic.
func Join2(left, right func()) *Panic {
	return defaultPool.Fork(nil, 2, func(i int) {
		if i == 0 {
			left()
		} else {
			right()
		}
	})
}
