// Package chaos is a deterministic, seedable stress engine for the
// clipping pipeline. One run generates adversarial workloads, optionally
// injects faults (panics, hangs, result corruption) into the pipeline's
// guard sites, and checks metamorphic invariants over the outputs. The
// contract it enforces is the robustness contract of the library itself:
// every injected fault is either recovered (visible in the resilience
// counters) or surfaced as a structured error — never a process crash and
// never a silently wrong answer.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"polyclip"
	"polyclip/internal/guard"
)

// Config parameterizes one chaos run. The zero value is usable; Seed 0 is
// a valid (and reproducible) seed.
type Config struct {
	// Seed drives every random choice. Same seed, same run.
	Seed int64
	// Cases is the number of generated workloads (default 100).
	Cases int
	// Family restricts generation to one family group ("adversarial",
	// "degenerate", "tiles") or one exact family name ("t-vertex"). Empty
	// runs the full cycle. An unknown value fails the run rather than
	// silently testing nothing.
	Family string
	// Threads bounds the clip parallelism; <= 0 means 4, not all CPUs: a
	// stress run must exercise the parallel pipeline (multiple slabs,
	// worker fan-out, watchdogged stages) even on a single-core host.
	Threads int
	// Faults arms one injected fault per case, cycling through the
	// pipeline's guard sites and the panic/hang/corrupt fault kinds.
	Faults bool
	// Budget is the per-clip deadline; 0 disables deadlines. Hang faults
	// are only armed when a budget bounds them.
	Budget time.Duration
	// RelTol is the relative area tolerance for invariant comparisons
	// (default 1e-6; see EXPERIMENTS.md for the derivation).
	RelTol float64
	// MaxFailures caps the retained failure records (default 20).
	MaxFailures int
	// Log, when non-nil, receives a line per failure as it happens.
	Log func(format string, args ...any)
}

// Failure is one recorded contract violation.
type Failure struct {
	Case      int
	Workload  string
	Invariant string
	Detail    string
}

// ResilienceTotals aggregates the per-clip Stats.Resilience counters over
// a whole run — the evidence that injected faults were actually absorbed.
type ResilienceTotals struct {
	RepairedInputs int // clips whose inputs guard.Repair had to modify
	FallbackSteps  int // engine attempts beyond the first in the fallback chain
	Recovered      int // worker panics / abandoned stages rescued in-pipeline
	StageTimeouts  int // stages abandoned by their deadline watchdog
	Retries        int // stage-level sequential retries
	AuditFailures  int // audit rejections inside the fallback chain
}

// Report is the outcome of a chaos run.
type Report struct {
	Seed   int64
	Cases  int
	Family string // family filter of the run; "" = all families
	Clips  int

	// StructuredErrors counts clips that returned a structured error
	// (*ClipError, ErrInvalidInput, or a context error) — the acceptable
	// way for a clip to fail under faults or deadlines.
	StructuredErrors int
	// UnstructuredErrors counts clips that returned any other error.
	// Always a contract violation.
	UnstructuredErrors int
	// Crashes counts panics that escaped the pipeline into the harness.
	// Always a contract violation.
	Crashes int

	InvariantChecks   int
	InvariantFailures int

	FaultsInjected int
	// FaultsSurfaced counts faulted cases in which at least one clip
	// surfaced a structured error; the remainder were absorbed silently
	// (rescued, or the armed site was never reached).
	FaultsSurfaced int

	Resilience ResilienceTotals
	Failures   []Failure
}

// Failed reports whether the run found any contract violation.
func (r *Report) Failed() bool {
	return r.InvariantFailures > 0 || r.Crashes > 0 || r.UnstructuredErrors > 0
}

// Summary renders the report as a compact multi-line string.
func (r *Report) Summary() string {
	verdict := "PASS"
	if r.Failed() {
		verdict = "FAIL"
	}
	scope := ""
	if r.Family != "" {
		scope = " family=" + r.Family
	}
	return fmt.Sprintf(
		"chaos %s: seed=%d cases=%d clips=%d%s\n"+
			"  invariants: %d checked, %d failed\n"+
			"  errors: %d structured, %d unstructured, %d crashes\n"+
			"  faults: %d injected, %d surfaced as errors\n"+
			"  resilience: repaired=%d fallback-steps=%d recovered=%d stage-timeouts=%d retries=%d audit-failures=%d",
		verdict, r.Seed, r.Cases, r.Clips, scope,
		r.InvariantChecks, r.InvariantFailures,
		r.StructuredErrors, r.UnstructuredErrors, r.Crashes,
		r.FaultsInjected, r.FaultsSurfaced,
		r.Resilience.RepairedInputs, r.Resilience.FallbackSteps, r.Resilience.Recovered,
		r.Resilience.StageTimeouts, r.Resilience.Retries, r.Resilience.AuditFailures)
}

type engine struct {
	cfg  Config
	gens []generator
	rep  *Report
}

// Run executes one chaos run. Cases run sequentially (each clip is
// internally parallel), so a failing case is immediately reproducible by
// seed and index.
func Run(cfg Config) *Report {
	if cfg.Cases <= 0 {
		cfg.Cases = 100
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	if cfg.RelTol <= 0 {
		cfg.RelTol = 1e-6
	}
	if cfg.MaxFailures <= 0 {
		cfg.MaxFailures = 20
	}
	e := &engine{cfg: cfg, gens: generatorsFor(cfg.Family), rep: &Report{Seed: cfg.Seed, Cases: cfg.Cases, Family: cfg.Family}}
	if len(e.gens) == 0 {
		// A typo'd filter must not report a spotless run over zero cases.
		e.rep.InvariantFailures++
		e.record(0, "config", "unknown-family",
			fmt.Sprintf("family %q matches no generator (groups: %v)", cfg.Family, Families()))
		return e.rep
	}
	for i := 0; i < cfg.Cases; i++ {
		e.runCase(i)
	}
	return e.rep
}

func (e *engine) runCase(i int) {
	w := workload{name: "generate"}
	defer func() {
		// Faults are scoped to their case: never let a leftover fault leak
		// into the next case (or the caller's process).
		guard.ClearFaults()
		if r := recover(); r != nil {
			e.rep.Crashes++
			e.record(i, w.name, "panic-escaped", fmt.Sprint(r))
		}
	}()
	w = buildWorkloadFrom(e.cfg.Seed, i, e.gens)
	errsBefore := e.rep.StructuredErrors
	if e.cfg.Faults {
		e.armFault(i, w)
	}
	e.checkCase(i, w)
	if e.cfg.Faults && e.rep.StructuredErrors > errsBefore {
		e.rep.FaultsSurfaced++
	}
}

// clip runs one clip through the hardened pipeline under the configured
// budget, absorbing its resilience counters and classifying any error.
func (e *engine) clip(ci int, w workload, a, b polyclip.Polygon, op polyclip.Op, opt polyclip.Options) (out polyclip.Polygon, err error) {
	e.rep.Clips++
	ctx := context.Background()
	if e.cfg.Budget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.Budget)
		defer cancel()
	}
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			e.rep.Crashes++
			e.record(ci, w.name, "panic-escaped", fmt.Sprint(r))
			out, err = nil, fmt.Errorf("chaos: panic escaped the pipeline: %v", r)
			return
		}
		// A budgeted clip must return promptly even when a worker hangs:
		// the watchdog abandons the stage instead of joining it. Grace
		// covers scheduler jitter on loaded machines.
		if e.cfg.Budget > 0 {
			if el := time.Since(start); el > 2*e.cfg.Budget+250*time.Millisecond {
				e.rep.InvariantFailures++
				e.record(ci, w.name, "budget-overrun",
					fmt.Sprintf("clip took %v with budget %v", el, e.cfg.Budget))
			}
		}
	}()
	out, st, err := polyclip.ClipCtx(ctx, a, b, op, opt)
	e.absorb(st)
	if err != nil {
		if structuredErr(err) {
			e.rep.StructuredErrors++
		} else {
			e.rep.UnstructuredErrors++
			e.record(ci, w.name, "unstructured-error", err.Error())
		}
	}
	return out, err
}

// absorb folds one clip's resilience record into the run totals.
func (e *engine) absorb(st *polyclip.Stats) {
	if st == nil {
		return
	}
	r := &e.rep.Resilience
	if st.Resilience.Repaired {
		r.RepairedInputs++
	}
	if n := len(st.Resilience.Attempts) - 1; n > 0 {
		r.FallbackSteps += n
	}
	r.Recovered += st.Resilience.Recovered
	r.StageTimeouts += st.Resilience.StageTimeouts
	r.Retries += st.Resilience.Retries
	r.AuditFailures += st.Resilience.InvariantFailures
}

// structuredErr reports whether err is one of the pipeline's sanctioned
// failure shapes.
func structuredErr(err error) bool {
	var ce *polyclip.ClipError
	return errors.As(err, &ce) ||
		errors.Is(err, polyclip.ErrInvalidInput) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// fail records an invariant violation found by an area comparison.
func (e *engine) fail(ci int, w workload, name string, got, want float64) {
	e.rep.InvariantFailures++
	e.record(ci, w.name, name, fmt.Sprintf("got %.17g, want %.17g", got, want))
}

func (e *engine) record(ci int, workload, invariant, detail string) {
	if e.cfg.Log != nil {
		e.cfg.Log("case %d [%s] %s: %s", ci, workload, invariant, detail)
	}
	if len(e.rep.Failures) < e.cfg.MaxFailures {
		e.rep.Failures = append(e.rep.Failures, Failure{
			Case: ci, Workload: workload, Invariant: invariant, Detail: detail,
		})
	}
}

// faultKind selects how an armed site misbehaves.
type faultKind uint8

const (
	kindPanic   faultKind = iota // worker panics at the site
	kindHang                     // worker sleeps past the stage deadline
	kindCorrupt                  // result polygon replaced with garbage
)

// faultPlans is the deterministic cycle of injected faults: every guard
// site in the pipeline, panics everywhere, plus a result corruption (to
// exercise the audit) and a hang (to exercise the watchdog).
var faultPlans = []struct {
	site string
	kind faultKind
}{
	{"par.worker", kindPanic},
	{"par.sort", kindPanic},
	{"par.prefixsum", kindPanic},
	// Scheduler sites: crash a pooled worker at submission, inside a task,
	// and on a cross-deque steal, plus hang a pooled task. The pool must
	// capture each on the owning batch and route it up the same resilience
	// chain as the par.* sites — a dead persistent worker (unlike the old
	// per-call goroutines) would poison every later clip in the process.
	// The steal site is reached only when a second worker claims from a
	// loaded deque, which a 1-core host may never do; an unfired one-shot
	// fault is an accepted outcome of the run, like any unreached site.
	{"pool.submit", kindPanic},
	{"pool.run", kindPanic},
	{"pool.steal", kindPanic},
	{"pool.run", kindHang},
	{"segtree.build", kindPanic},
	{"isect.pairs", kindPanic},
	{"ringstitch.stitch", kindPanic},
	{"core.slab-clip", kindPanic},
	{"core.pair-clip", kindPanic},
	{"overlay.clip", kindPanic},
	{"polyclip.result", kindCorrupt},
	{"par.worker", kindHang},
	// Only the slab pipeline reaches this site, so the hang lands inside a
	// watchdogged stage and exercises the abandon-and-retry path rather
	// than a plain join.
	{"core.slab-clip", kindHang},
}

// armFault registers case i's fault. Every fault is one-shot: the first
// clip that reaches the site takes the hit, later clips (including the
// pipeline's own retries) run clean — which is exactly the transient-fault
// model the retry ladder is built for.
func (e *engine) armFault(i int, w workload) {
	plan := faultPlans[i%len(faultPlans)]
	if plan.kind == kindHang && e.cfg.Budget <= 0 {
		// A hang with no deadline would block the join forever by design;
		// fall back to a panic at the same site.
		plan.kind = kindPanic
	}
	e.rep.FaultsInjected++
	switch plan.kind {
	case kindPanic:
		guard.InjectFault(plan.site, guard.Once(func() {
			panic(fmt.Sprintf("chaos: injected panic at %s (case %d)", plan.site, i))
		}))
	case kindHang:
		// Longer than any stage's share of the budget, but under the 2x
		// return bound in case the sleeping worker sits on a path that
		// joins instead of abandoning.
		d := 3 * e.cfg.Budget / 2
		if d > 3*time.Second {
			d = 3 * time.Second
		}
		guard.InjectFault(plan.site, guard.Once(func() { time.Sleep(d) }))
	case kindCorrupt:
		// Replace the result with a square so oversized that every
		// op-specific audit bound must reject it.
		ext := dyadicExtent(w.a, w.b)
		var fired atomic.Bool
		guard.InjectFault(plan.site, func(p polyclip.Polygon) polyclip.Polygon {
			if !fired.CompareAndSwap(false, true) {
				return p
			}
			o, s := 1000*ext, 100*ext
			return polyclip.Polygon{{
				{X: o, Y: o}, {X: o + s, Y: o}, {X: o + s, Y: o + s}, {X: o, Y: o + s},
			}}
		})
	}
}
