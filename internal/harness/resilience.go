package harness

import (
	"fmt"

	"polyclip/internal/chaos"
)

// ResilienceSummary runs a fixed-seed chaos workload (no injected faults)
// through the hardened public clipping path and reports the aggregated
// Stats.Resilience counters. Emitted alongside the perf experiments so the
// benchmark trajectory also tracks degradation frequency: a perf win that
// shows up together with a jump in fallback-steps or retries is not a win.
func ResilienceSummary(cases int, seed int64) Result {
	rep := chaos.Run(chaos.Config{Seed: seed, Cases: cases})
	counters := map[string]int{
		"clips":               rep.Clips,
		"structured_errors":   rep.StructuredErrors,
		"unstructured_errors": rep.UnstructuredErrors,
		"invariant_checks":    rep.InvariantChecks,
		"invariant_failures":  rep.InvariantFailures,
		"repaired_inputs":     rep.Resilience.RepairedInputs,
		"fallback_steps":      rep.Resilience.FallbackSteps,
		"recovered":           rep.Resilience.Recovered,
		"stage_timeouts":      rep.Resilience.StageTimeouts,
		"retries":             rep.Resilience.Retries,
		"audit_failures":      rep.Resilience.AuditFailures,
	}
	header := []string{"Counter", "Value"}
	rows := [][]string{
		row("clips", fmt.Sprint(rep.Clips)),
		row("structured_errors", fmt.Sprint(rep.StructuredErrors)),
		row("unstructured_errors", fmt.Sprint(rep.UnstructuredErrors)),
		row("invariant_checks", fmt.Sprint(rep.InvariantChecks)),
		row("invariant_failures", fmt.Sprint(rep.InvariantFailures)),
		row("repaired_inputs", fmt.Sprint(rep.Resilience.RepairedInputs)),
		row("fallback_steps", fmt.Sprint(rep.Resilience.FallbackSteps)),
		row("recovered", fmt.Sprint(rep.Resilience.Recovered)),
		row("stage_timeouts", fmt.Sprint(rep.Resilience.StageTimeouts)),
		row("retries", fmt.Sprint(rep.Resilience.Retries)),
		row("audit_failures", fmt.Sprint(rep.Resilience.AuditFailures)),
	}
	text := fmt.Sprintf("Resilience — Stats.Resilience counters over %d adversarial cases (seed %d, no injected faults)\n", rep.Cases, seed) +
		formatRows(header, rows)
	return Result{Name: "resilience", Text: text, Rows: rows, Counters: counters}
}
