package polyclip

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"polyclip/internal/guard"
)

// circle builds a many-vertex regular polygon so multi-slab runs have
// enough events to actually produce many slabs.
func circle(cx, cy, r float64, n int) Polygon {
	ring := make(Ring, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		ring[i] = Point{X: cx + r*math.Cos(a), Y: cy + r*math.Sin(a)}
	}
	return Polygon{ring}
}

func attemptsOf(st *Stats) string {
	if st == nil {
		return ""
	}
	return strings.Join(st.Resilience.Attempts, " ")
}

func TestClipCtxRejectsInvalidInput(t *testing.T) {
	bad := Polygon{{{X: math.NaN(), Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}}}
	good := rect(0, 0, 4, 4)
	for name, args := range map[string][2]Polygon{
		"bad subject": {bad, good},
		"bad clip":    {good, bad},
	} {
		_, _, err := ClipCtx(context.Background(), args[0], args[1], Intersection, Options{})
		if err == nil {
			t.Fatalf("%s: no error", name)
		}
		if !errors.Is(err, ErrInvalidInput) {
			t.Fatalf("%s: %v does not wrap ErrInvalidInput", name, err)
		}
	}
	huge := Polygon{{{X: 0, Y: 0}, {X: 1e300, Y: 0}, {X: 1e300, Y: 1e300}}}
	if _, _, err := ClipCtx(context.Background(), huge, good, Union, Options{}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("overflowing coordinates accepted: %v", err)
	}
}

func TestClipCtxRepairsDirtyInput(t *testing.T) {
	// Duplicate consecutive vertices and a zero-area spike: repairable.
	dirty := Polygon{{
		{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 4, Y: 0}, {X: 6, Y: 0}, {X: 4, Y: 0},
		{X: 4, Y: 4}, {X: 0, Y: 4},
	}}
	out, st, err := ClipCtx(context.Background(), dirty, rect(2, 2, 6, 6), Intersection, Options{})
	if err != nil {
		t.Fatalf("ClipCtx: %v", err)
	}
	if !st.Resilience.Repaired {
		t.Fatal("Repaired flag not set for dirty input")
	}
	if a := Area(out); math.Abs(a-4) > 1e-9 {
		t.Fatalf("intersection area %g, want 4", a)
	}
}

func TestClipCtxHappyPathRecordsAttempt(t *testing.T) {
	out, st, err := ClipCtx(context.Background(), rect(0, 0, 4, 4), rect(2, 2, 6, 6), Intersection, Options{})
	if err != nil {
		t.Fatalf("ClipCtx: %v", err)
	}
	if a := Area(out); math.Abs(a-4) > 1e-9 {
		t.Fatalf("area %g, want 4", a)
	}
	if got := attemptsOf(st); got != "overlay:ok" {
		t.Fatalf("attempts %q, want overlay:ok", got)
	}
}

func TestSlabPanicReturnsClipError(t *testing.T) {
	guard.WithFault(t, "core.slab-clip", guard.Once(func() { panic("injected slab crash") }))

	a := circle(0, 0, 10, 256)
	b := circle(1, 1, 10, 256)
	_, st, err := ClipCtx(context.Background(), a, b, Intersection, Options{
		Algorithm: AlgoSlabs, Threads: 4, NoFallback: true,
	})
	if err == nil {
		t.Fatal("injected slab panic did not surface as an error")
	}
	var ce *ClipError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T (%v) is not a *ClipError", err, err)
	}
	if ce.Stage != "slab-clip" {
		t.Fatalf("stage %q, want slab-clip", ce.Stage)
	}
	if ce.Slab < 0 {
		t.Fatalf("no slab attribution: %+v", ce)
	}
	if len(ce.Stack) == 0 {
		t.Fatal("no worker stack captured")
	}
	if got := attemptsOf(st); got != "slabs:panic" {
		t.Fatalf("attempts %q, want slabs:panic", got)
	}
}

func TestSlabPanicRescuedByStageRetry(t *testing.T) {
	// A transient panic in one slab worker is rescued by the in-stage retry
	// (sequential re-run of the clip stage) without ever leaving the slabs
	// engine, so the attempt record shows a clean slabs:ok plus the retry
	// counters.
	guard.WithFault(t, "core.slab-clip", guard.Once(func() { panic("transient slab crash") }))

	a := circle(0, 0, 10, 256)
	b := circle(1, 1, 10, 256)
	want := Area(Clip(a, b, Intersection))
	out, st, err := ClipCtx(context.Background(), a, b, Intersection, Options{
		Algorithm: AlgoSlabs, Threads: 4,
	})
	if err != nil {
		t.Fatalf("stage retry did not rescue: %v", err)
	}
	if a := Area(out); math.Abs(a-want) > 1e-6*want {
		t.Fatalf("rescued area %g, want %g", a, want)
	}
	if got := attemptsOf(st); got != "slabs:ok" {
		t.Fatalf("attempts %q, want slabs:ok (in-stage rescue)", got)
	}
	if st.Resilience.Retries < 1 {
		t.Fatalf("Retries = %d, want >= 1", st.Resilience.Retries)
	}
	if st.Resilience.Recovered < 1 {
		t.Fatalf("Recovered = %d, want >= 1", st.Resilience.Recovered)
	}
}

func TestDifferentialFallbackSequentialRescue(t *testing.T) {
	// Corrupt the first two results (the parallel overlay attempt and its
	// coarse-grid retry) so the audit rejects both and the sequential Vatti
	// engine has to rescue the run.
	corrupt := func(p Polygon) Polygon {
		return Polygon{{{X: 0, Y: 0}, {X: 1e6, Y: 0}, {X: 1e6, Y: 1e6}, {X: 0, Y: 1e6}}}
	}
	n := 0
	guard.WithFault(t, "polyclip.result", func(p Polygon) Polygon {
		n++
		if n <= 2 {
			return corrupt(p)
		}
		return p
	})

	out, st, err := ClipCtx(context.Background(), rect(0, 0, 4, 4), rect(2, 2, 6, 6), Intersection, Options{})
	if err != nil {
		t.Fatalf("ClipCtx: %v", err)
	}
	if a := Area(out); math.Abs(a-4) > 1e-9 {
		t.Fatalf("rescued area %g, want 4", a)
	}
	want := "overlay:audit-fail overlay-coarse:audit-fail vatti:ok"
	if got := attemptsOf(st); got != want {
		t.Fatalf("attempts %q, want %q", got, want)
	}
}

func TestAuditInconclusiveReturnsResult(t *testing.T) {
	// Corrupt every attempt: the chain cannot distinguish a damaged result
	// from an audit false-positive, so the last attempt's result is
	// returned, flagged audit-inconclusive.
	guard.WithFault(t, "polyclip.result", func(p Polygon) Polygon {
		return Polygon{{{X: 0, Y: 0}, {X: 1e6, Y: 0}, {X: 1e6, Y: 1e6}, {X: 0, Y: 1e6}}}
	})
	out, st, err := ClipCtx(context.Background(), rect(0, 0, 4, 4), rect(2, 2, 6, 6), Intersection, Options{})
	if err != nil {
		t.Fatalf("ClipCtx: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("no result returned")
	}
	atts := st.Resilience.Attempts
	if len(atts) != 3 || atts[2] != "vatti:audit-inconclusive" {
		t.Fatalf("attempts %v, want 3 ending in vatti:audit-inconclusive", atts)
	}
}

func TestClipCtxCancellationStopsWork(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from inside the first slab worker: the stage watchdog abandons
	// the run and no per-slab results are committed.
	guard.WithFault(t, "core.slab-clip", guard.Once(cancel))

	a := circle(0, 0, 10, 2048)
	b := circle(1, 1, 10, 2048)
	out, st, err := ClipCtx(ctx, a, b, Intersection, Options{
		Algorithm: AlgoSlabs, Threads: 2, Slabs: 32, NoFallback: true,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatalf("partial result returned after cancellation: %d rings", len(out))
	}
	if st.Slabs < 8 {
		t.Fatalf("only %d slabs: the run cannot demonstrate early exit", st.Slabs)
	}
	// The abandoned clip stage must not leak its (possibly still being
	// written) per-slab buffers into the returned stats.
	if len(st.PerThread) != 0 {
		t.Fatalf("per-thread timings committed for an abandoned stage: %v", st.PerThread)
	}
	if got := attemptsOf(st); got != "slabs:canceled" {
		t.Fatalf("attempts %q, want slabs:canceled", got)
	}
}

func TestStageDeadlineBoundsHungWorker(t *testing.T) {
	// One par worker goes to sleep for far longer than the whole clip
	// budget. The stage watchdog must abandon it at the stage's share of the
	// deadline and the sequential retry must rescue the run, so the clip
	// returns a correct result well within 2x the configured budget.
	a := circle(0, 0, 10, 512)
	b := circle(1, 1, 10, 512)
	want := Area(Clip(a, b, Intersection))

	const budget = 500 * time.Millisecond
	// The one-shot fault can be stolen by a worker goroutine abandoned by an
	// earlier test: abandoned workers keep running by design (see par.Run)
	// and hit the same "par.worker" site. A stolen fault leaves our clip
	// running clean, so re-arm and retry until the fault lands in this run.
	for attempt := 0; ; attempt++ {
		guard.WithFault(t, "par.worker", guard.Once(func() { time.Sleep(5 * time.Second) }))
		ctx, cancel := context.WithTimeout(context.Background(), budget)
		start := time.Now()
		out, st, err := ClipCtx(ctx, a, b, Intersection, Options{Algorithm: AlgoSlabs, Threads: 4})
		elapsed := time.Since(start)
		cancel()

		if elapsed > 2*budget {
			t.Fatalf("clip with a hung worker took %v, want <= %v (2x budget)", elapsed, 2*budget)
		}
		if err != nil {
			t.Fatalf("hung worker not rescued: %v", err)
		}
		if st.Resilience.StageTimeouts < 1 {
			if attempt < 4 {
				guard.ClearFault("par.worker")
				time.Sleep(100 * time.Millisecond)
				continue
			}
			t.Fatalf("StageTimeouts = %d, want >= 1 (resilience: %+v)", st.Resilience.StageTimeouts, st.Resilience)
		}
		if st.Resilience.Retries < 1 {
			t.Fatalf("Retries = %d, want >= 1", st.Resilience.Retries)
		}
		if got := Area(out); math.Abs(got-want) > 1e-6*want {
			t.Fatalf("rescued area %g, want %g", got, want)
		}
		return
	}
}

func TestClipCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, _, err := ClipCtx(ctx, rect(0, 0, 4, 4), rect(2, 2, 6, 6), Union, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatalf("partial result returned: %v", out)
	}
}

func TestOverlayLayersCtxPairPanic(t *testing.T) {
	la := Layer{rect(0, 0, 4, 4), rect(10, 0, 14, 4)}
	lb := Layer{rect(2, 2, 6, 6), rect(12, 2, 16, 6)}

	t.Run("rescued", func(t *testing.T) {
		guard.WithFault(t, "core.pair-clip", guard.Once(func() { panic("pair crash") }))
		out, st, err := OverlayLayersCtx(context.Background(), la, lb, Intersection, Options{Threads: 1})
		if err != nil {
			t.Fatalf("pair rescue failed: %v", err)
		}
		if len(out) != 2 {
			t.Fatalf("want 2 pair results, got %d", len(out))
		}
		if st.Resilience.Recovered != 1 {
			t.Fatalf("Recovered = %d, want 1", st.Resilience.Recovered)
		}
	})
	t.Run("surfaced with NoFallback", func(t *testing.T) {
		guard.WithFault(t, "core.pair-clip", guard.Once(func() { panic("pair crash") }))
		_, _, err := OverlayLayersCtx(context.Background(), la, lb, Intersection, Options{Threads: 1, NoFallback: true})
		var ce *ClipError
		if !errors.As(err, &ce) {
			t.Fatalf("error %T (%v) is not a *ClipError", err, err)
		}
		if ce.Stage != "pair-clip" {
			t.Fatalf("stage %q, want pair-clip", ce.Stage)
		}
		if ce.Pair[0] < 0 || ce.Pair[1] < 0 {
			t.Fatalf("no pair attribution: %+v", ce)
		}
	})
	t.Run("invalid feature rejected", func(t *testing.T) {
		bad := Layer{Polygon{{{X: math.Inf(1), Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}}}}
		_, _, err := OverlayLayersCtx(context.Background(), bad, lb, Intersection, Options{})
		if !errors.Is(err, ErrInvalidInput) {
			t.Fatalf("err %v does not wrap ErrInvalidInput", err)
		}
	})
}

func TestScanbeamAndSequentialChains(t *testing.T) {
	a, b := rect(0, 0, 4, 4), rect(2, 2, 6, 6)
	for _, alg := range []Algorithm{AlgoScanbeam, AlgoSequential} {
		out, st, err := ClipCtx(context.Background(), a, b, Intersection, Options{Algorithm: alg})
		if err != nil {
			t.Fatalf("alg %d: %v", alg, err)
		}
		if got := Area(out); math.Abs(got-4) > 1e-9 {
			t.Fatalf("alg %d: area %g, want 4", alg, got)
		}
		if len(st.Resilience.Attempts) != 1 || !strings.HasSuffix(st.Resilience.Attempts[0], ":ok") {
			t.Fatalf("alg %d: attempts %v", alg, st.Resilience.Attempts)
		}
	}
}

// TestChainTableDepth pins the declarative chain table's shape: every engine
// now implements every fill rule, so every Algorithm/rule combination
// resolves to the same full chain exactly three attempts deep — no
// capability filtering ever drops a step. The serve layer's degraded mode
// budgets on this depth. The filtering/altOnly machinery itself is exercised
// separately with a synthetic parity-only registry entry in the engine
// package tests.
func TestChainTableDepth(t *testing.T) {
	sq := rect(0, 0, 4, 4)
	chainsByAlgo := map[Algorithm][]string{
		AlgoOverlay:    {"overlay", "overlay-coarse", "vatti"},
		AlgoSlabs:      {"slabs", "overlay-coarse", "vatti"},
		AlgoScanbeam:   {"scanbeam", "overlay-coarse", "vatti"},
		AlgoSequential: {"vatti", "overlay", "overlay-coarse"},
	}
	for algo, names := range chainsByAlgo {
		for _, rule := range []FillRule{EvenOdd, NonZero, Positive, Negative} {
			chain, err := attemptChain(sq, sq, Intersection, Options{Algorithm: algo, Rule: rule})
			if err != nil {
				t.Errorf("algo %d rule %v: %v", algo, rule, err)
				continue
			}
			if len(chain) != 3 {
				t.Errorf("algo %d rule %v: chain depth %d, want 3", algo, rule, len(chain))
			}
			for i, want := range names {
				if i >= len(chain) {
					break
				}
				if chain[i].name != want {
					t.Errorf("algo %d rule %v: attempt %d is %q, want %q", algo, rule, i, chain[i].name, want)
				}
			}
		}
	}
}

// TestChainTableDegraded pins the degraded-mode restriction: only the
// coarse-grid and sequential/non-parallel steps survive, altOnly backfills
// are always candidates, and unsupported-by-every-step combinations are a
// typed ErrUnsupported.
func TestChainTableDegraded(t *testing.T) {
	sq := rect(0, 0, 4, 4)
	cases := []struct {
		algo  Algorithm
		rule  FillRule
		names []string
	}{
		{AlgoOverlay, EvenOdd, []string{"overlay-coarse", "vatti", "overlay-seq"}},
		{AlgoSlabs, EvenOdd, []string{"overlay-coarse", "vatti", "overlay-seq"}},
		{AlgoSequential, EvenOdd, []string{"vatti", "overlay-coarse"}},
		// Winding rules keep the full degraded chain: vatti hosts them now.
		{AlgoOverlay, NonZero, []string{"overlay-coarse", "vatti", "overlay-seq"}},
		{AlgoScanbeam, Positive, []string{"overlay-coarse", "vatti", "overlay-seq"}},
		{AlgoSlabs, Negative, []string{"overlay-coarse", "vatti", "overlay-seq"}},
	}
	for _, tc := range cases {
		chain, err := attemptChain(sq, sq, Intersection, Options{Algorithm: tc.algo, Rule: tc.rule, Degraded: true})
		if err != nil {
			t.Errorf("algo %d rule %v: %v", tc.algo, tc.rule, err)
			continue
		}
		var names []string
		for _, at := range chain {
			names = append(names, at.name)
		}
		if strings.Join(names, " ") != strings.Join(tc.names, " ") {
			t.Errorf("algo %d rule %v: degraded chain %v, want %v", tc.algo, tc.rule, names, tc.names)
		}
	}
}

// TestClipCtxDegraded runs a real degraded clip: the result must be
// correct, and the accepted attempt must be one of the degraded steps so
// service metrics can prove degraded mode engaged.
func TestClipCtxDegraded(t *testing.T) {
	a := rect(0, 0, 4, 4)
	b := rect(2, 2, 6, 6)
	out, st, err := ClipCtx(context.Background(), a, b, Intersection, Options{Degraded: true})
	if err != nil {
		t.Fatalf("degraded clip: %v", err)
	}
	if got := out.Area(); math.Abs(got-4) > 1e-9 {
		t.Errorf("area = %v, want 4", got)
	}
	if len(st.Resilience.Attempts) == 0 {
		t.Fatal("no attempts recorded")
	}
	first := st.Resilience.Attempts[0]
	if !strings.HasPrefix(first, "overlay-coarse:") {
		t.Errorf("first degraded attempt = %q, want an overlay-coarse step", first)
	}
	if st.Engine == "" {
		t.Error("Stats.Engine not recorded for degraded clip")
	}
}
