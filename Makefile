FUZZTIME ?= 10s
FUZZ_TARGETS := FuzzParseWKT FuzzParseGeoJSON FuzzClipRoundTrip FuzzClipAllEngines
CHAOS_SEED ?= 1
CHAOS_CASES ?= 200
COVER_FLOOR ?= 80
COVER_PKGS := ./internal/vatti/ ./internal/arrange/ ./internal/engine/ ./internal/scanbeam/ ./internal/serve/ ./internal/core/ ./internal/overlay/ ./internal/pool/ ./internal/par/ ./internal/batch/ ./internal/acache/
# The tile-cutting fast paths carry a higher floor: a missed branch there is
# a silently wrong tile, not a slow one.
COVER_FLOOR_TILES ?= 85
COVER_PKGS_TILES := ./internal/prepared/ ./internal/tile/

PROFILE_EXP ?= table2
PROFILE_DIR ?= /tmp/polyclip-prof

.PHONY: check build vet test cover race differential conformance fuzz chaos profile clipd loadtest bench scaling overlay-bench tile-bench

check: vet build test cover race differential conformance fuzz chaos

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# Per-package statement-coverage floor for the engine packages whose
# correctness the differential oracles lean on.
cover:
	@for pkg in $(COVER_PKGS); do \
		pct=$$(go test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "could not parse coverage for $$pkg"; exit 1; fi; \
		if ! awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN{exit !(p >= f)}'; then \
			echo "coverage for $$pkg is $$pct%, below the $(COVER_FLOOR)% floor"; exit 1; \
		fi; \
		echo "$$pkg: $$pct%"; \
	done
	@for pkg in $(COVER_PKGS_TILES); do \
		pct=$$(go test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "could not parse coverage for $$pkg"; exit 1; fi; \
		if ! awk -v p="$$pct" -v f="$(COVER_FLOOR_TILES)" 'BEGIN{exit !(p >= f)}'; then \
			echo "coverage for $$pkg is $$pct%, below the $(COVER_FLOOR_TILES)% floor"; exit 1; \
		fi; \
		echo "$$pkg: $$pct%"; \
	done

race:
	go test -race ./...

# The golden-file differential corpus must agree across all engines
# with the race detector watching the parallel ones.
differential:
	go test -race -run TestDifferentialCorpus .

# Engine conformance: every registered engine against the golden corpus,
# the rule x op capability matrix, trapezoid declarations, cancellation.
conformance:
	go test -race -run TestConformance ./internal/engine/

# Each native fuzz target gets a short smoke run; raise FUZZTIME for real
# fuzzing sessions (e.g. make fuzz FUZZTIME=10m). FuzzServeRequest lives in
# internal/serve and fuzzes the whole HTTP serving path.
fuzz:
	@for t in $(FUZZ_TARGETS); do \
		echo "fuzz $$t ($(FUZZTIME))"; \
		go test -run='^$$' -fuzz="^$$t$$" -fuzztime=$(FUZZTIME) . || exit 1; \
	done
	@echo "fuzz FuzzServeRequest ($(FUZZTIME))"
	go test -run='^$$' -fuzz='^FuzzServeRequest$$' -fuzztime=$(FUZZTIME) ./internal/serve/

# CPU and heap profiles of one bench experiment (default table2, the
# scanbeam hot path). Inspect with `go tool pprof $(PROFILE_DIR)/cpu.prof`.
profile:
	@mkdir -p $(PROFILE_DIR)
	go run ./cmd/bench -exp $(PROFILE_EXP) \
		-cpuprofile $(PROFILE_DIR)/cpu.prof -memprofile $(PROFILE_DIR)/mem.prof
	@echo "profiles in $(PROFILE_DIR): cpu.prof mem.prof"

# Deterministic chaos sweeps: a clean invariant run, a faulted run (every
# case takes one injected panic/hang/corruption), and a budgeted faulted run
# that exercises the stage watchdog, plus a degenerate-taxonomy sweep
# (seed 7: exact coincidences — shared edges, collinear overlaps,
# T-vertices, coincident rings — under every fill rule) and a tiling sweep
# (seed 5: pyramid partition invariants across all rules). Same seed, same
# cases, same verdict.
chaos:
	go run ./cmd/chaos -seed $(CHAOS_SEED) -cases $(CHAOS_CASES)
	go run ./cmd/chaos -seed $(CHAOS_SEED) -cases $(CHAOS_CASES) -faults
	go run ./cmd/chaos -seed $(CHAOS_SEED) -cases 60 -faults -budget 500ms
	go run ./cmd/chaos -seed 7 -cases 320 -family degenerate
	go run ./cmd/chaos -seed 5 -cases 120 -family tiles

# Short scaling smoke: one iteration of the two scaling benchmarks at 1 and
# 2 workers — enough to catch a pool regression (deadlock, lost task, gross
# slowdown) in CI without paying for a statistically meaningful run.
bench:
	go test -run='^$$' -bench='Fig8SlabClipPair|AlgorithmOne' -benchtime=1x -cpu 1,2 .

# Full scaling curve: Fig8SlabClipPair and AlgorithmOne at 1/2/4/8 workers,
# recorded to BENCH_scaling.json with the host's core count (the honest
# context for interpreting the curve — see EXPERIMENTS.md).
scaling:
	sh scripts/bench_scaling.sh

# Million-feature batch overlay benchmark: cold + warm runs through the
# arrangement cache, recorded to BENCH_overlay.json with an embedded
# contract gate (warm repeated-operand run >= 2x cold). Tune with
# OVERLAY_FEATURES / OVERLAY_REPEAT.
overlay-bench:
	sh scripts/bench_overlay.sh

# Vector-tile pyramid-cutting benchmark: naive per-tile clips vs the
# prepared pipeline, recorded to BENCH_tiles.json with embedded contract
# gates (prepared >= 2x naive; output bit-identical at 1/2/8 threads).
# Tune with TILES_RINGS / TILES_MAXZOOM.
tile-bench:
	sh scripts/bench_tiles.sh

# Build the serving daemon.
clipd:
	go build -o bin/clipd ./cmd/clipd
	go build -o bin/clipload ./cmd/clipload
	@echo "built bin/clipd and bin/clipload"

# Reproduce BENCH_clipd.json: clipd under open-loop load at two rates,
# a misbehaving-client phase, and a fault-injection (chaos-mode) phase.
loadtest: clipd
	sh scripts/bench_clipd.sh
