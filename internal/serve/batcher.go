package serve

import (
	"context"
	"errors"
	"time"

	"polyclip"
	"polyclip/internal/acache"
	"polyclip/internal/guard"
	"polyclip/internal/tile"
)

// job is one admitted clip request travelling through the batcher.
type job struct {
	req      *parsedRequest
	ctx      context.Context
	resp     chan jobResult // buffered 1; exactly one send wins
	m        *RequestMetrics
	degraded bool
}

type jobResult struct {
	out polyclip.Polygon
	st  *polyclip.Stats
	m   *RequestMetrics // job-side metrics, shipped back on the response channel
	err error

	tiles []tile.Tile // tile jobs only
	tst   *tile.Stats
}

// respond delivers the job's result exactly once: later sends (a flush
// recovery racing a worker, say) are dropped on the buffered channel.
func (j *job) respond(res jobResult) {
	select {
	case j.resp <- res:
	default:
	}
}

// flushLoop drains the admission queue in batches: the first job opens a
// batch, then up to BatchSize-1 more are coalesced within MaxWait before
// the batch is flushed. The loop exits when the server closes; queued jobs
// left behind are answered with a shed error by their handlers' deadlines.
func (s *Server) flushLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			s.drain()
			return
		case j := <-s.queue:
			s.flush(s.collect(j))
		}
	}
}

// collect coalesces one batch: the opening job plus whatever arrives
// within MaxWait, capped at BatchSize.
func (s *Server) collect(first *job) []*job {
	batch := []*job{first}
	if s.cfg.BatchSize <= 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.MaxWait)
	defer timer.Stop()
	for len(batch) < s.cfg.BatchSize {
		select {
		case j := <-s.queue:
			batch = append(batch, j)
		case <-timer.C:
			return batch
		case <-s.done:
			return batch
		}
	}
	return batch
}

// flush dispatches one batch. The serve.flush fault site fires before any
// job is dispatched, so an injected panic is absorbed here and every job
// in the batch is answered with a structured error — the batcher never
// loses requests to a fault. Dispatch itself acquires a bounded work slot
// per job; when every slot is busy the flush loop blocks, the queue fills,
// and admission control starts degrading — backpressure by construction.
func (s *Server) flush(batch []*job) {
	s.flushes.Add(1)
	s.batched.Add(int64(len(batch)))
	now := time.Now().UnixNano()
	for _, j := range batch {
		j.m.FlushNs = now
	}
	if err := s.hitFlushSite(); err != nil {
		for _, j := range batch {
			j.respond(jobResult{err: err})
		}
		return
	}
	for _, j := range batch {
		select {
		case s.workSem <- struct{}{}:
		case <-s.done:
			// Draining: answer instead of blocking on a slot forever.
			j.respond(jobResult{err: context.Canceled})
			continue
		case <-j.ctx.Done():
			j.respond(jobResult{err: j.ctx.Err()})
			continue
		}
		go func(j *job) {
			defer func() { <-s.workSem }()
			s.clipOne(j)
		}(j)
	}
}

// hitFlushSite runs the serve.flush fault site with panic capture.
func (s *Server) hitFlushSite() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = guard.FromPanic("serve.flush", -1, guard.NoPair, r)
		}
	}()
	guard.Hit("serve.flush")
	return nil
}

// drain answers every job still queued at close time.
func (s *Server) drain() {
	for {
		select {
		case j := <-s.queue:
			j.respond(jobResult{err: context.Canceled})
		default:
			return
		}
	}
}

// clipOne runs one clip through the hardened pipeline under the job's
// deadline, retrying recoverable failures with seeded jittered backoff.
// Panics — its own, not the engines' (those are isolated inside ClipCtx) —
// are answered as structured errors.
func (s *Server) clipOne(j *job) {
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	defer func() {
		if r := recover(); r != nil {
			j.respond(jobResult{err: guard.FromPanic("serve.clip", -1, guard.NoPair, r)})
		}
	}()
	if j.req.tileSpec != nil {
		s.cutTiles(j)
		return
	}

	opt := polyclip.Options{
		Algorithm: j.req.algo,
		Rule:      j.req.rule,
		Threads:   s.cfg.Threads,
		Degraded:  j.degraded,
	}
	var last jobResult
	for attempt := 0; ; attempt++ {
		out, st, err := polyclip.ClipCtx(j.ctx, j.req.subject, j.req.clip, j.req.op, opt)
		j.m.absorbStats(st)
		last = jobResult{out: out, st: st, err: err}
		if err == nil || !s.retryable(err, j.ctx) || attempt >= s.cfg.MaxRetries {
			break
		}
		j.m.ServeRetries++
		s.retries.Add(1)
		if !s.backoff(j.ctx, attempt) {
			break
		}
	}
	last.m = j.m
	if last.st != nil {
		s.recovered.Add(int64(last.st.Resilience.Recovered))
		s.stageTimeouts.Add(int64(last.st.Resilience.StageTimeouts))
		s.auditFailures.Add(int64(last.st.Resilience.InvariantFailures))
		if n := len(last.st.Resilience.Attempts) - 1; n > 0 {
			s.fallbackSteps.Add(int64(n))
		}
	}
	j.respond(last)
}

// cutTiles serves one tile-cutting job: the prepared pyramid cut through
// the shared arrangement cache (so a layer cut repeatedly canonicalizes
// once). Degraded jobs run single-threaded, like degraded clips. tile.Cut
// has no internal panic sites of its own beyond prepared's rescue route, so
// clipOne's recover is the outer guard.
func (s *Server) cutTiles(j *job) {
	opt := tile.Options{
		Rule:    j.req.rule,
		Threads: s.cfg.Threads,
		Naive:   j.req.tileNaive,
		Cache:   acache.Shared(),
	}
	if j.degraded {
		opt.Threads = 1
	}
	tiles, st, err := tile.Cut(j.ctx, j.req.subject, *j.req.tileSpec, opt)
	j.respond(jobResult{tiles: tiles, tst: &st, m: j.m, err: err})
}

// retryable reports whether the serve layer should retry: a structured
// ClipError from a transient fault, with budget left on the clock. Typed
// client errors and context expiry are final.
func (s *Server) retryable(err error, ctx context.Context) bool {
	if ctx.Err() != nil {
		return false
	}
	if errors.Is(err, polyclip.ErrInvalidInput) || errors.Is(err, polyclip.ErrUnsupported) {
		return false
	}
	var ce *polyclip.ClipError
	return errors.As(err, &ce)
}

// backoff sleeps the jittered exponential delay for the attempt, returning
// false when the context expires first.
func (s *Server) backoff(ctx context.Context, attempt int) bool {
	if attempt > 16 {
		attempt = 16
	}
	d := s.cfg.RetryBase << attempt
	s.rngMu.Lock()
	jittered := d/2 + time.Duration(s.rng.Int63n(int64(d/2)+1))
	s.rngMu.Unlock()
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
