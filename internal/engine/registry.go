package engine

import (
	"fmt"
	"sort"
	"sync"
)

// The registry maps engine names to registered engines. Registration happens
// in the implementation packages' init functions, so any program that links
// an engine package can resolve it by name; the listing order is sorted by
// name so selection is deterministic regardless of package-init order.
var (
	regMu    sync.RWMutex
	registry = map[string]Engine{}
	names    []string // sorted engine names
)

// Register adds an engine under its Name. It panics on a duplicate name or
// an engine with no supported fill rule — both are programming errors in the
// registering package.
func Register(e Engine) {
	regMu.Lock()
	defer regMu.Unlock()
	name := e.Name()
	if name == "" {
		panic("engine: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: duplicate Register(%q)", name))
	}
	if e.Capabilities().Rules == 0 {
		panic(fmt.Sprintf("engine: Register(%q) declares no fill rules", name))
	}
	registry[name] = e
	names = append(names, name)
	sort.Strings(names)
}

// Get returns the engine registered under name.
func Get(name string) (Engine, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// MustGet is Get for names the caller knows are linked in; it panics when
// the engine is missing.
func MustGet(name string) Engine {
	e, ok := Get(name)
	if !ok {
		panic(fmt.Sprintf("engine: %q is not registered (is its package imported?)", name))
	}
	return e
}

// All returns every registered engine, sorted by name.
func All() []Engine {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Engine, 0, len(names))
	for _, n := range names {
		out = append(out, registry[n])
	}
	return out
}

// Select returns the first registered engine (by name order) satisfying the
// predicate. It is the capability-driven selection primitive the resilience
// chain and slab decomposition build on.
func Select(pred func(Engine) bool) (Engine, bool) {
	for _, e := range All() {
		if pred(e) {
			return e, true
		}
	}
	return nil, false
}

// SlabHost returns the engine to run inside slab workers: prefer, when it is
// registered and slab-hostable, otherwise the first slab-hostable engine.
func SlabHost(prefer string) (Engine, bool) {
	if e, ok := Get(prefer); ok && e.Capabilities().SlabHostable {
		return e, true
	}
	return Select(func(e Engine) bool { return e.Capabilities().SlabHostable })
}

// SlabAlternate returns a slab-hostable engine different from name — the
// registry-driven version of "retry the pair with the other sequential
// engine".
func SlabAlternate(name string) (Engine, bool) {
	return Select(func(e Engine) bool {
		return e.Name() != name && e.Capabilities().SlabHostable
	})
}

// Reference returns the engine used as the differential cross-check oracle
// against the named engine: a slab-hostable (sequential-capable) engine
// supporting the rule, structurally different from the one under audit. The
// sequential sweep ("vatti") is preferred when eligible.
func Reference(against string, rule FillRule) (Engine, bool) {
	if e, ok := Get("vatti"); ok && against != "vatti" && e.Capabilities().Rules.Has(rule) {
		return e, true
	}
	return Select(func(e Engine) bool {
		return e.Name() != against && e.Capabilities().SlabHostable && e.Capabilities().Rules.Has(rule)
	})
}
