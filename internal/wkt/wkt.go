// Package wkt reads and writes polygons in Well-Known Text, the
// interchange format of the GIS tools the paper benchmarks against
// (ArcGIS, shapefile toolchains). Supported geometries: POLYGON,
// MULTIPOLYGON and EMPTY variants.
package wkt

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"polyclip/internal/geom"
)

// Marshal renders a polygon as WKT. A polygon with one ring becomes
// POLYGON, otherwise MULTIPOLYGON with one polygon per ring (the even-odd
// model does not track which rings are holes of which).
func Marshal(p geom.Polygon) string {
	switch len(p) {
	case 0:
		return "POLYGON EMPTY"
	case 1:
		return "POLYGON " + polygonBody(p)
	default:
		var b strings.Builder
		b.WriteString("MULTIPOLYGON (")
		for i, r := range p {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ringBody(r, true))
		}
		b.WriteString(")")
		return b.String()
	}
}

// MarshalPolygon renders a polygon as a single POLYGON with all rings
// (first ring shell, rest holes), for consumers that understand ring
// nesting.
func MarshalPolygon(p geom.Polygon) string {
	if len(p) == 0 {
		return "POLYGON EMPTY"
	}
	return "POLYGON " + polygonBody(p)
}

func polygonBody(p geom.Polygon) string {
	var b strings.Builder
	b.WriteString("(")
	for i, r := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(ringBody(r, false))
	}
	b.WriteString(")")
	return b.String()
}

func ringBody(r geom.Ring, wrap bool) string {
	var b strings.Builder
	if wrap {
		b.WriteString("(")
	}
	b.WriteString("(")
	for i, pt := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g %g", pt.X, pt.Y)
	}
	if len(r) > 0 {
		fmt.Fprintf(&b, ", %g %g", r[0].X, r[0].Y) // close the ring
	}
	b.WriteString(")")
	if wrap {
		b.WriteString(")")
	}
	return b.String()
}

// SyntaxError reports a WKT parse failure with its position: the byte
// offset into the input and the offending token (or a short snippet of the
// input around the offset when no single token is attributable). Callers
// that serve parse errors to clients — the clipd 400 bodies — retrieve it
// with errors.As to echo the position back.
type SyntaxError struct {
	Offset int    // byte offset into the input where parsing failed
	Token  string // offending token or input snippet at Offset
	Msg    string // what the parser expected or rejected
}

// Error formats the failure with its byte offset and token.
func (e *SyntaxError) Error() string {
	if e.Token == "" {
		return fmt.Sprintf("wkt: %s at byte %d", e.Msg, e.Offset)
	}
	return fmt.Sprintf("wkt: %s at byte %d near %q", e.Msg, e.Offset, e.Token)
}

// snippet extracts the token shown in a SyntaxError: up to 12 bytes of the
// input starting at offset, or "end of input" past the end.
func snippet(s string, offset int) string {
	if offset >= len(s) {
		return "end of input"
	}
	if offset < 0 {
		offset = 0
	}
	end := offset + 12
	if end > len(s) {
		end = len(s)
	}
	return s[offset:end]
}

// Unmarshal parses a POLYGON or MULTIPOLYGON WKT string. Parse failures are
// returned as *SyntaxError carrying the byte offset and offending token.
func Unmarshal(s string) (geom.Polygon, error) {
	p := &parser{s: s}
	p.skipSpace()
	kwStart := p.pos
	kw := p.keyword()
	switch kw {
	case "POLYGON":
		p.skipSpace()
		if p.tryKeyword("EMPTY") {
			return nil, nil
		}
		return p.polygon()
	case "MULTIPOLYGON":
		p.skipSpace()
		if p.tryKeyword("EMPTY") {
			return nil, nil
		}
		if err := p.expect('('); err != nil {
			return nil, err
		}
		var out geom.Polygon
		for {
			sub, err := p.polygon()
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
			p.skipSpace()
			if p.tryByte(',') {
				continue
			}
			if err := p.expect(')'); err != nil {
				return nil, err
			}
			return out, nil
		}
	default:
		msg := "unsupported geometry"
		if kw == "" {
			msg = "expected a geometry keyword"
		}
		return nil, &SyntaxError{Offset: kwStart, Token: snippet(s, kwStart), Msg: msg}
	}
}

type parser struct {
	s   string
	pos int
}

func (p *parser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t' || p.s[p.pos] == '\n' || p.s[p.pos] == '\r') {
		p.pos++
	}
}

func (p *parser) keyword() string {
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') {
			p.pos++
		} else {
			break
		}
	}
	return strings.ToUpper(p.s[start:p.pos])
}

func (p *parser) tryKeyword(kw string) bool {
	save := p.pos
	if p.keyword() == kw {
		return true
	}
	p.pos = save
	return false
}

func (p *parser) tryByte(c byte) bool {
	p.skipSpace()
	if p.pos < len(p.s) && p.s[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(c byte) error {
	p.skipSpace()
	if p.pos >= len(p.s) || p.s[p.pos] != c {
		return &SyntaxError{
			Offset: p.pos,
			Token:  snippet(p.s, p.pos),
			Msg:    fmt.Sprintf("expected %q", string(c)),
		}
	}
	p.pos++
	return nil
}

// polygon parses "( ring, ring, ... )".
func (p *parser) polygon() (geom.Polygon, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var out geom.Polygon
	for {
		r, err := p.ring()
		if err != nil {
			return nil, err
		}
		if len(r) >= 3 {
			out = append(out, r)
		}
		if p.tryByte(',') {
			continue
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		return out, nil
	}
}

// ring parses "( x y, x y, ... )", dropping the closing duplicate vertex.
func (p *parser) ring() (geom.Ring, error) {
	if err := p.expect('('); err != nil {
		return nil, err
	}
	var r geom.Ring
	for {
		x, err := p.number()
		if err != nil {
			return nil, err
		}
		y, err := p.number()
		if err != nil {
			return nil, err
		}
		r = append(r, geom.Point{X: x, Y: y})
		if p.tryByte(',') {
			continue
		}
		if err := p.expect(')'); err != nil {
			return nil, err
		}
		if len(r) > 1 && r[0] == r[len(r)-1] {
			r = r[:len(r)-1]
		}
		return r, nil
	}
}

func (p *parser) number() (float64, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			p.pos++
		} else {
			break
		}
	}
	if start == p.pos {
		return 0, &SyntaxError{Offset: start, Token: snippet(p.s, start), Msg: "expected a number"}
	}
	tok := p.s[start:p.pos]
	v, err := strconv.ParseFloat(tok, 64)
	if err != nil {
		return 0, &SyntaxError{Offset: start, Token: tok, Msg: "bad number"}
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, &SyntaxError{Offset: start, Token: tok, Msg: "non-finite coordinate"}
	}
	return v, nil
}
