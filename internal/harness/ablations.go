package harness

import (
	"time"

	"polyclip/internal/bandclip"
	"polyclip/internal/core"
	"polyclip/internal/data"
	"polyclip/internal/geom"
	"polyclip/internal/gh"
	"polyclip/internal/isect"
)

// timeIt runs fn `reps` times and returns the average duration.
func timeIt(reps int, fn func()) time.Duration {
	if reps < 1 {
		reps = 1
	}
	t0 := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	return time.Since(t0) / time.Duration(reps)
}

// Ablations runs the DESIGN.md ablation comparisons and formats them as one
// table (cmd/bench -exp ablations). The same comparisons exist as
// testing.B benchmarks in bench_test.go; this runner makes them part of the
// reproduction report.
func Ablations(seed int64) Result {
	header := []string{"Ablation", "Variant", "Time (ms)", "Note"}
	var rows [][]string

	// 1. Intersection finders.
	subject, clip := data.SyntheticPair(seed, 4000, 4000)
	segs := append(subject.Edges(), clip.Edges()...)
	rows = append(rows,
		row("finder", "grid", ms(timeIt(3, func() { isect.GridPairs(segs, 0) })), "practical default"),
		row("finder", "scanbeam-inversions", ms(timeIt(3, func() { isect.ScanbeamPairs(segs, 0) })), "paper Lemma 4"),
		row("finder", "bentley-ottmann", ms(timeIt(3, func() { isect.SweepPairs(segs) })), "paper ref [2]"),
	)

	// 2. Slab merge strategies.
	for _, m := range []struct {
		name string
		mode core.MergeMode
	}{{"stitch", core.MergeStitch}, {"concat", core.MergeConcat}, {"union-tree", core.MergeUnionTree}} {
		mode := m.mode
		rows = append(rows, row("merge", m.name,
			ms(timeIt(2, func() {
				core.ClipPair(subject, clip, core.Intersection, core.Options{Threads: 8, Merge: mode})
			})), "Fig. 6 variants"))
	}

	// 3. Partitioning: event-balanced vs uniform (critical path on skewed
	// layers).
	la := core.Layer(data.Layer(data.TableIII[0], 0.02, seed+7))
	lb := core.Layer(data.OverlapLayer(la, seed+8))
	for _, m := range []struct {
		name string
		mode core.PartitionMode
	}{{"event-balanced", core.PartitionEvents}, {"uniform-height", core.PartitionUniform}} {
		mode := m.mode
		var cp time.Duration
		timeIt(2, func() {
			_, st := core.ClipLayers(la, lb, core.Intersection, core.Options{Threads: 1, Slabs: 16, Partition: mode})
			if c := st.CriticalPath(); c > cp {
				cp = c
			}
		})
		rows = append(rows, row("partition", m.name, ms(cp), "critical path, 16 slabs"))
	}

	// 4. Rectangle clipping for Steps 4–5: bandclip vs Greiner–Hormann (the
	// paper's choice).
	poly := data.Layer(data.TableIII[1], 0.002, seed+11)
	band := [2]float64{20, 40}
	rows = append(rows,
		row("rect-clip", "bandclip", ms(timeIt(5, func() {
			for _, f := range poly {
				bandclip.Clip(f, band[0], band[1])
			}
		})), "exact caps, arbitrary input"),
		row("rect-clip", "greiner-hormann", ms(timeIt(5, func() {
			for _, f := range poly {
				box := f.BBox()
				rect := geom.Rect(box.MinX-1, band[0], box.MaxX+1, band[1])
				for _, ring := range f {
					gh.Clip(ring, rect, gh.Intersection)
				}
			}
		})), "paper's Steps 4-5 choice"),
	)

	text := "Ablations — design-choice comparisons (see DESIGN.md)\n" + formatRows(header, rows)
	return Result{Name: "ablations", Text: text, Rows: rows}
}
