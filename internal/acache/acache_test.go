package acache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"polyclip/internal/engine"
	"polyclip/internal/geom"
)

func square(x, y, s float64) geom.Polygon {
	return geom.Polygon{{
		{X: x, Y: y}, {X: x + s, Y: y}, {X: x + s, Y: y + s}, {X: x, Y: y + s},
	}}
}

func TestNilCacheBypasses(t *testing.T) {
	var c *Cache
	a, b := square(0, 0, 2), square(1, 1, 2)
	ra, rb := c.ResolvePair(a, b, geom.Hash(a), geom.Hash(b), engine.EvenOdd)
	if len(ra) == 0 || len(rb) == 0 {
		t.Fatal("nil cache dropped the resolution")
	}
	n := 0
	for i := 0; i < 2; i++ {
		c.Clip(geom.Hash(a), geom.Hash(b), engine.Intersection, engine.EvenOdd, "vatti",
			func() geom.Polygon { n++; return a })
	}
	if n != 2 {
		t.Fatalf("nil cache memoized: %d computes, want 2", n)
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil cache stats non-zero: %+v", s)
	}
	if New(0) != nil {
		t.Fatal("New(0) should return the nil bypass cache")
	}
}

func TestHitMissAndDeterministicValue(t *testing.T) {
	c := New(1 << 20)
	a, b := square(0, 0, 4), square(2, 2, 4)
	da, db := geom.Hash(a), geom.Hash(b)

	n := 0
	compute := func() geom.Polygon { n++; return square(2, 2, 2) }
	r1 := c.Clip(da, db, engine.Intersection, engine.EvenOdd, "vatti", compute)
	r2 := c.Clip(da, db, engine.Intersection, engine.EvenOdd, "vatti", compute)
	if n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	if fmt.Sprint(r1) != fmt.Sprint(r2) {
		t.Fatal("cached value differs from computed value")
	}
	// Different op, engine, or rule must not alias.
	c.Clip(da, db, engine.Union, engine.EvenOdd, "vatti", compute)
	c.Clip(da, db, engine.Intersection, engine.NonZero, "vatti", compute)
	c.Clip(da, db, engine.Intersection, engine.EvenOdd, "overlay", compute)
	if n != 4 {
		t.Fatalf("key dimensions alias: %d computes, want 4", n)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 4 {
		t.Fatalf("stats hits=%d misses=%d, want 1/4", s.Hits, s.Misses)
	}
	if got := s.HitRate(); got != 0.2 {
		t.Fatalf("hit rate %v, want 0.2", got)
	}
}

func TestResolvePairCachedMatchesDirect(t *testing.T) {
	c := New(1 << 20)
	a, b := square(0, 0, 4), square(2, 2, 4) // overlapping: resolution splits edges
	da, db := geom.Hash(a), geom.Hash(b)
	for _, rule := range []engine.FillRule{engine.EvenOdd, engine.NonZero} {
		ca, cb := c.ResolvePair(a, b, da, db, rule)
		var nc *Cache
		wa, wb := nc.ResolvePair(a, b, da, db, rule)
		if fmt.Sprint(ca) != fmt.Sprint(wa) || fmt.Sprint(cb) != fmt.Sprint(wb) {
			t.Fatalf("rule %v: cached resolution differs from direct", rule)
		}
		// Second call must hit.
		before := c.Stats().Hits
		c.ResolvePair(a, b, da, db, rule)
		if c.Stats().Hits != before+1 {
			t.Fatalf("rule %v: repeat resolve did not hit", rule)
		}
	}
	// NonZero and Positive share the winding resolution family: one entry.
	before := c.Stats()
	c.ResolvePair(a, b, da, db, engine.Positive)
	if s := c.Stats(); s.Misses != before.Misses || s.Hits != before.Hits+1 {
		t.Fatal("winding rules should share one resolve-tier entry")
	}
}

// Concurrent callers of one cold key: compute runs exactly once, everyone
// gets the value, waiters are counted. Run with -race.
func TestSingleflightConcurrent(t *testing.T) {
	c := New(1 << 20)
	a, b := square(0, 0, 4), square(1, 1, 4)
	da, db := geom.Hash(a), geom.Hash(b)

	var computes atomic.Int64
	gate := make(chan struct{})
	const N = 16
	var wg sync.WaitGroup
	results := make([]geom.Polygon, N)
	for i := 0; i < N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-gate
			results[i] = c.Clip(da, db, engine.Intersection, engine.EvenOdd, "vatti",
				func() geom.Polygon {
					computes.Add(1)
					return square(1, 1, 3)
				})
		}(i)
	}
	close(gate)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", got)
	}
	want := fmt.Sprint(results[0])
	for i, r := range results {
		if fmt.Sprint(r) != want {
			t.Fatalf("caller %d saw a different value", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits+s.Waits != N-1 {
		t.Fatalf("stats %+v: want 1 miss and %d hits+waits", s, N-1)
	}
}

func TestEvictionBound(t *testing.T) {
	const max = 8 << 10
	c := New(max)
	// Each entry ~24+24+4*16 = 112 bytes; insert far more than fits.
	for i := 0; i < 1000; i++ {
		p := square(float64(i), 0, 1)
		c.Clip(geom.Hash(p), geom.Hash(p), engine.Union, engine.EvenOdd, "vatti",
			func() geom.Polygon { return p })
	}
	s := c.Stats()
	if s.Bytes > max {
		t.Fatalf("cache holds %d bytes, bound is %d", s.Bytes, max)
	}
	if s.Evictions == 0 {
		t.Fatal("no evictions despite overflow")
	}
	if s.Entries == 0 {
		t.Fatal("cache emptied itself")
	}
	// LRU: the most recent key must still be resident.
	p := square(999, 0, 1)
	before := c.Stats().Hits
	c.Clip(geom.Hash(p), geom.Hash(p), engine.Union, engine.EvenOdd, "vatti",
		func() geom.Polygon { t.Fatal("most-recent entry was evicted"); return nil })
	if c.Stats().Hits != before+1 {
		t.Fatal("expected a hit on the most recent key")
	}
}

func TestOversizedValueBypasses(t *testing.T) {
	c := New(4 << 10)           // max/4 = 1 KiB
	big := make(geom.Ring, 200) // ~3.2 KiB
	for i := range big {
		big[i] = geom.Point{X: float64(i), Y: float64(i % 7)}
	}
	p := geom.Polygon{big}
	n := 0
	for i := 0; i < 2; i++ {
		c.Clip(geom.Hash(p), geom.Hash(p), engine.Union, engine.EvenOdd, "vatti",
			func() geom.Polygon { n++; return p })
	}
	if n != 2 {
		t.Fatalf("oversized value was cached (%d computes)", n)
	}
	s := c.Stats()
	if s.Bypasses == 0 {
		t.Fatal("bypass not counted")
	}
	if s.Bytes != 0 || s.Entries != 0 {
		t.Fatalf("oversized value retained: %+v", s)
	}
}

// A panicking compute must not wedge the key: the placeholder is withdrawn,
// the panic propagates, and the next caller computes fresh.
func TestPanicWithdrawsPlaceholder(t *testing.T) {
	c := New(1 << 20)
	p := square(0, 0, 1)
	da := geom.Hash(p)

	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		c.Clip(da, da, engine.Union, engine.EvenOdd, "vatti",
			func() geom.Polygon { panic("boom") })
	}()

	n := 0
	c.Clip(da, da, engine.Union, engine.EvenOdd, "vatti",
		func() geom.Polygon { n++; return p })
	if n != 1 {
		t.Fatal("key wedged after panic")
	}
	// And a waiter blocked on the panicking leader must recover too.
	var wg sync.WaitGroup
	q := square(5, 5, 1)
	dq := geom.Hash(q)
	started := make(chan struct{})
	release := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }()
		c.Clip(dq, dq, engine.Union, engine.EvenOdd, "vatti",
			func() geom.Polygon { close(started); <-release; panic("boom") })
	}()
	<-started
	done := make(chan geom.Polygon, 1)
	go func() {
		done <- c.Clip(dq, dq, engine.Union, engine.EvenOdd, "vatti",
			func() geom.Polygon { return q })
	}()
	close(release)
	if got := <-done; fmt.Sprint(got) != fmt.Sprint(q) {
		t.Fatal("waiter did not recover after leader panic")
	}
	wg.Wait()
}

func TestStatsDelta(t *testing.T) {
	a := Stats{Hits: 10, Misses: 4, Waits: 2, Bypasses: 1, Evictions: 3, Entries: 7, Bytes: 100, MaxBytes: 1000}
	b := Stats{Hits: 4, Misses: 1, Waits: 1, Bypasses: 0, Evictions: 1}
	d := a.Delta(b)
	if d.Hits != 6 || d.Misses != 3 || d.Waits != 1 || d.Bypasses != 1 || d.Evictions != 2 {
		t.Fatalf("delta %+v", d)
	}
	if d.Entries != 7 || d.Bytes != 100 || d.MaxBytes != 1000 {
		t.Fatal("delta must keep point-in-time gauges")
	}
}

func TestSharedSingleton(t *testing.T) {
	if Shared() == nil || Shared() != Shared() {
		t.Fatal("Shared must return one non-nil cache")
	}
	if Shared().Stats().MaxBytes != 256<<20 {
		t.Fatalf("shared cache bound %d, want 256 MiB", Shared().Stats().MaxBytes)
	}
}
