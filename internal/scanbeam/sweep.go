package scanbeam

import "sort"

// Sweep is the sequential bottom-to-top scanbeam sweep schedule over sorted
// distinct boundary ys: per-boundary start buckets in compressed (CSR) form
// — a counting pass, a prefix sum and a fill, so the schedule costs three
// flat allocations instead of one slice per boundary — plus the per-beam
// active-edge list, maintained by inserting each edge once at its start
// boundary and sweeping it out with one linear compaction per beam when its
// end boundary is reached. That is the same per-beam cost as iterating a
// hash set, without the hashing or the iteration-order churn.
type Sweep struct {
	ys       []float64
	endAt    []int32
	startOff []int32
	startIDs []int32
	active   []int32
}

// NewSweep builds the schedule for n edges whose y-extents span returns;
// every extent must lie on boundaries present in ys (true after arrangement
// resolution, whose event schedule is exactly the endpoint ys).
func NewSweep(ys []float64, n int, span func(int32) (lo, hi float64)) *Sweep {
	m := len(ys) - 1
	s := &Sweep{
		ys:       ys,
		endAt:    make([]int32, n),
		startOff: make([]int32, m+2),
		startIDs: make([]int32, n),
		active:   make([]int32, 0, 64),
	}
	startAt := make([]int32, n)
	for i := 0; i < n; i++ {
		lo, hi := span(int32(i))
		b := int32(sort.SearchFloat64s(ys, lo))
		startAt[i] = b
		s.endAt[i] = int32(sort.SearchFloat64s(ys, hi))
		s.startOff[b+1]++
	}
	for b := 1; b < len(s.startOff); b++ {
		s.startOff[b] += s.startOff[b-1]
	}
	fill := make([]int32, m+1)
	for i := 0; i < n; i++ {
		b := startAt[i]
		s.startIDs[s.startOff[b]+fill[b]] = int32(i)
		fill[b]++
	}
	return s
}

// Beams returns the number of scanbeams.
func (s *Sweep) Beams() int { return len(s.ys) - 1 }

// ForEachBeam sweeps bottom to top, calling visit with each beam's index,
// its bounding scanlines, and the ids active strictly inside it. The active
// slice is reused between beams; visit must not retain it.
func (s *Sweep) ForEachBeam(visit func(b int, yb, yt float64, active []int32)) {
	m := s.Beams()
	for b := 0; b < m; b++ {
		s.active = append(s.active, s.startIDs[s.startOff[b]:s.startOff[b+1]]...)
		w := 0
		for _, id := range s.active {
			if s.endAt[id] > int32(b) {
				s.active[w] = id
				w++
			}
		}
		s.active = s.active[:w]
		visit(b, s.ys[b], s.ys[b+1], s.active)
	}
}
