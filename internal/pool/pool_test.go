package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polyclip/internal/guard"
)

// The scheduler test battery. A work-stealing pool is exactly the kind of
// code that "works" until the race detector and adversarial schedules say
// otherwise, so these tests are written to run under -race (scripts/check.sh
// wires them in early) and to fail by deadlock timeout rather than hang CI.

// waitDone runs fn on its own goroutine and fails the test if it does not
// return within d — the deadlock oracle for the reentrancy tests.
func waitDone(t *testing.T, d time.Duration, name string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("%s: deadlock (no completion within %v)", name, d)
	}
}

func TestForkCoversAllIndices(t *testing.T) {
	for _, size := range []int{1, 2, 4} {
		for _, n := range []int{0, 1, 2, 3, 17, 256} {
			p := New(size)
			marks := make([]int32, n)
			if pan := p.Fork(nil, n, func(i int) { atomic.AddInt32(&marks[i], 1) }); pan != nil {
				t.Fatalf("size=%d n=%d: unexpected panic %v", size, n, pan.Value)
			}
			for i, m := range marks {
				if m != 1 {
					t.Errorf("size=%d n=%d: index %d ran %d times", size, n, i, m)
				}
			}
			p.Quiesce()
		}
	}
}

// TestNestedForkSingleWorker is the reentrancy contract: a task executing
// on the pool's only worker forks subtasks and waits for them. A scheduler
// whose waiters park without helping deadlocks here; the test fails by
// timeout instead of hanging.
func TestNestedForkSingleWorker(t *testing.T) {
	p := New(1)
	defer p.Quiesce()
	waitDone(t, 20*time.Second, "nested fork on 1 worker", func() {
		var total atomic.Int64
		pan := p.Fork(nil, 2, func(i int) {
			p.Fork(nil, 3, func(j int) {
				p.Fork(nil, 2, func(k int) { total.Add(1) })
			})
		})
		if pan != nil {
			t.Errorf("panic: %v", pan.Value)
		}
		if total.Load() != 2*3*2 {
			t.Errorf("ran %d leaf tasks, want 12", total.Load())
		}
	})
}

// TestDeepNestingSingleWorker drives recursive fork-join well past the
// worker count: depth-16 binary recursion on one worker must complete via
// help-running, not fresh goroutines.
func TestDeepNestingSingleWorker(t *testing.T) {
	p := New(1)
	defer p.Quiesce()
	waitDone(t, 20*time.Second, "deep nesting", func() {
		var leaves atomic.Int64
		var rec func(depth int)
		rec = func(depth int) {
			if depth == 0 {
				leaves.Add(1)
				return
			}
			p.Fork(nil, 2, func(i int) { rec(depth - 1) })
		}
		rec(10)
		if leaves.Load() != 1024 {
			t.Errorf("leaves = %d, want 1024", leaves.Load())
		}
	})
}

// TestExternalWaitersShareOneWorker models the serving layer: many request
// goroutines forking onto a small pool concurrently. Waiters must help run
// their own work, so throughput cannot collapse onto the single worker.
func TestExternalWaitersShareOneWorker(t *testing.T) {
	p := New(1)
	defer p.Quiesce()
	waitDone(t, 30*time.Second, "concurrent external forks", func() {
		var wg sync.WaitGroup
		var total atomic.Int64
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for iter := 0; iter < 20; iter++ {
					p.Fork(nil, 4, func(i int) {
						p.Fork(nil, 2, func(j int) { total.Add(1) })
					})
				}
			}()
		}
		wg.Wait()
		if want := int64(8 * 20 * 4 * 2); total.Load() != want {
			t.Errorf("ran %d leaf tasks, want %d", total.Load(), want)
		}
	})
}

// TestRaceStress hammers submit/steal/cancel/panic from many goroutines at
// once; its assertions are weak on purpose — under -race the detector is
// the real oracle.
func TestRaceStress(t *testing.T) {
	p := New(4)
	defer p.Quiesce()
	waitDone(t, 60*time.Second, "race stress", func() {
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for iter := 0; iter < 30; iter++ {
					switch (g + iter) % 3 {
					case 0: // plain nested work
						var sum atomic.Int64
						p.Fork(nil, 8, func(i int) {
							p.Fork(nil, 2, func(j int) { sum.Add(int64(i + j)) })
						})
					case 1: // cancellation racing execution
						ctx, cancel := context.WithCancel(context.Background())
						p.Fork(ctx, 16, func(i int) {
							if i == 3 {
								cancel()
							}
						})
						cancel()
					case 2: // panics racing everything else
						pan := p.Fork(nil, 4, func(i int) {
							if i == 2 {
								panic(fmt.Sprintf("stress %d/%d", g, iter))
							}
						})
						if pan == nil {
							panic("panic was lost")
						}
					}
				}
			}(g)
		}
		wg.Wait()
	})
	st := p.Stats()
	if st.Panics == 0 {
		t.Error("no panics captured by the stress run")
	}
}

func TestPanicCaptureAndWorkerSurvival(t *testing.T) {
	p := New(2)
	defer p.Quiesce()
	pan := p.Fork(nil, 4, func(i int) {
		if i == 1 {
			panic("boom")
		}
	})
	if pan == nil || pan.Value != "boom" {
		t.Fatalf("pan = %+v, want captured \"boom\"", pan)
	}
	if len(pan.Stack) == 0 {
		t.Error("no stack captured")
	}
	// The workers survived the panic: the pool still runs batches.
	var ran atomic.Int64
	if pan := p.Fork(nil, 8, func(i int) { ran.Add(1) }); pan != nil {
		t.Fatalf("pool unusable after panic: %v", pan.Value)
	}
	if ran.Load() != 8 {
		t.Errorf("post-panic batch ran %d/8 tasks", ran.Load())
	}
}

func TestCancelledContextSkipsTasks(t *testing.T) {
	p := New(2)
	defer p.Quiesce()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	before := p.Stats().Skipped
	if pan := p.Fork(ctx, 16, func(i int) { ran.Add(1) }); pan != nil {
		t.Fatalf("panic: %v", pan.Value)
	}
	if ran.Load() != 0 {
		t.Errorf("%d tasks ran under a pre-cancelled context", ran.Load())
	}
	if got := p.Stats().Skipped - before; got != 16 {
		t.Errorf("skipped %d tasks, want 16", got)
	}
	// Inline single-task path honours the same contract.
	if pan := p.Fork(ctx, 1, func(i int) { ran.Add(1) }); pan != nil || ran.Load() != 0 {
		t.Errorf("inline task ran under a cancelled context (pan=%v)", pan)
	}
}

func TestCancelMidBatchStillCompletes(t *testing.T) {
	p := New(1)
	defer p.Quiesce()
	waitDone(t, 20*time.Second, "cancel mid-batch", func() {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		p.Fork(ctx, 64, func(i int) {
			if i == 0 {
				cancel()
			}
		})
	})
}

// TestQuiesceNoGoroutineLeak is the idle-worker leak check: after Quiesce
// the pool's goroutines are joined and the process goroutine count returns
// to its baseline.
func TestQuiesceNoGoroutineLeak(t *testing.T) {
	runtime.GC()
	baseline := runtime.NumGoroutine()
	p := New(4)
	for round := 0; round < 10; round++ {
		p.Fork(nil, 32, func(i int) {})
	}
	p.Quiesce()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Lazy restart after quiesce: the pool is still usable.
	var ran atomic.Int64
	p.Fork(nil, 4, func(i int) { ran.Add(1) })
	if ran.Load() != 4 {
		t.Errorf("post-quiesce batch ran %d/4 tasks", ran.Load())
	}
	p.Quiesce()
}

// stealRound runs one forced-steal topology on p and returns the outer
// batch's panic (nil normally). The external waiter helps run its own
// batch and always claims the global queue's head first, so task 0 is a
// decoy that blocks until task 1 — the nesting task — has started; that
// forces the nesting task onto a pool worker. The nesting task pushes an
// inner pair onto that worker's own deque and barriers both inner tasks,
// so the second inner task can only start via a cross-deque steal. Every
// wait has a fallback timeout because the round is probabilistic (a worker
// may grab the decoy first, leaving the nesting task to the external
// waiter and the inner pair to the global queue) — callers loop on
// Stats.Stolen instead of trusting a single round.
func stealRound(p *Pool) *Panic {
	nestStarted := make(chan struct{})
	var started atomic.Int32
	bothIn := make(chan struct{})
	return p.Fork(nil, 2, func(outer int) {
		if outer == 0 { // decoy: pin this claimant until the nesting task runs
			select {
			case <-nestStarted:
			case <-time.After(100 * time.Millisecond):
			}
			return
		}
		close(nestStarted)
		inner := p.Fork(nil, 2, func(int) {
			if started.Add(1) == 2 {
				close(bothIn)
			}
			select {
			case <-bothIn:
			case <-time.After(20 * time.Millisecond):
			}
		})
		if inner != nil {
			panic(inner.Value)
		}
	})
}

// TestStealObserved pins the distributed part of the scheduler: tasks
// pushed to one worker's deque get claimed by another claimant, and the
// pool counts the steal. Rounds repeat until a steal is seen; a scheduler
// that never steals fails by exhausting the rounds, not by hanging.
func TestStealObserved(t *testing.T) {
	p := New(2)
	defer p.Quiesce()
	before := p.Stats().Stolen
	waitDone(t, 30*time.Second, "forced steal", func() {
		for round := 0; round < 200; round++ {
			if pan := stealRound(p); pan != nil {
				t.Fatalf("unexpected panic: %v", pan.Value)
			}
			if p.Stats().Stolen > before {
				return
			}
		}
		t.Error("no steal recorded by Stats in 200 forced rounds")
	})
}

func TestSetSizeQuiesceRestart(t *testing.T) {
	p := New(0)
	p.SetSize(3)
	if got := p.Size(); got != 3 {
		t.Fatalf("Size = %d after SetSize(3)", got)
	}
	var ran atomic.Int64
	p.Fork(nil, 6, func(i int) { ran.Add(1) })
	if ran.Load() != 6 {
		t.Errorf("ran %d/6", ran.Load())
	}
	p.SetSize(0)
	if got := p.Size(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Size = %d, want GOMAXPROCS default %d", got, runtime.GOMAXPROCS(0))
	}
	p.Quiesce()
}

// TestGuardSites proves the chaos engine can reach the scheduler: a fault
// at each pool site lands as a captured batch panic (run/steal) or a
// caller-visible panic (submit), never a dead worker or a wedged pool.
func TestGuardSites(t *testing.T) {
	t.Run("run", func(t *testing.T) {
		p := New(2)
		defer p.Quiesce()
		guard.WithFault(t, "pool.run", guard.Once(func() { panic("injected run fault") }))
		pan := p.Fork(nil, 4, func(i int) {})
		if pan == nil || pan.Value != "injected run fault" {
			t.Fatalf("pan = %+v, want injected run fault", pan)
		}
		if again := p.Fork(nil, 4, func(i int) {}); again != nil {
			t.Fatalf("pool did not recover from run fault: %v", again.Value)
		}
	})
	t.Run("submit", func(t *testing.T) {
		p := New(2)
		defer p.Quiesce()
		guard.WithFault(t, "pool.submit", guard.Once(func() { panic("injected submit fault") }))
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("submit fault did not propagate to the caller")
			}
		}()
		p.Fork(nil, 4, func(i int) {})
	})
	t.Run("steal", func(t *testing.T) {
		p := New(2)
		defer p.Quiesce()
		guard.WithFault(t, "pool.steal", guard.Once(func() { panic("injected steal fault") }))
		// Same forced-steal topology as TestStealObserved: the injected
		// panic fires on the thief and must surface as the batch's panic.
		waitDone(t, 30*time.Second, "steal fault", func() {
			for round := 0; round < 200; round++ {
				if pan := stealRound(p); pan != nil {
					if pan.Value != "injected steal fault" {
						t.Fatalf("unexpected panic: %v", pan.Value)
					}
					return
				}
			}
			t.Error("steal fault never surfaced as a batch panic in 200 rounds")
		})
	})
}

func TestStatsCounters(t *testing.T) {
	p := New(2)
	defer p.Quiesce()
	before := p.Stats()
	p.Fork(nil, 8, func(i int) {})
	p.Fork(nil, 1, func(i int) {})
	st := p.Stats()
	if got := st.Submitted - before.Submitted; got != 9 {
		t.Errorf("Submitted delta = %d, want 9", got)
	}
	if got := st.Executed - before.Executed; got != 9 {
		t.Errorf("Executed delta = %d, want 9", got)
	}
}

func TestForkZeroAndNegative(t *testing.T) {
	p := New(1)
	defer p.Quiesce()
	if pan := p.Fork(nil, 0, func(i int) { t.Error("ran") }); pan != nil {
		t.Errorf("n=0: %v", pan.Value)
	}
	if pan := p.Fork(nil, -3, func(i int) { t.Error("ran") }); pan != nil {
		t.Errorf("n=-3: %v", pan.Value)
	}
}

func TestDefaultPoolAndJoin2(t *testing.T) {
	var l, r atomic.Bool
	if pan := Join2(func() { l.Store(true) }, func() { r.Store(true) }); pan != nil {
		t.Fatalf("Join2 panic: %v", pan.Value)
	}
	if !l.Load() || !r.Load() {
		t.Error("Join2 did not run both sides")
	}
	var ran atomic.Int64
	if pan := Fork(nil, 4, func(i int) { ran.Add(1) }); pan != nil || ran.Load() != 4 {
		t.Errorf("default Fork ran %d/4 (pan=%v)", ran.Load(), pan)
	}
	if Default().Size() <= 0 {
		t.Error("default pool has no workers configured")
	}
}
