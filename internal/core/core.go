// Package core implements the paper's two parallel clipping algorithms on
// top of the repository's substrates:
//
//   - AlgorithmOne — the multicore realization of the CREW PRAM Algorithm 1
//     (§III): event schedule by parallel sort, scanbeam population through
//     the parallel segment tree (Step 2), per-scanbeam contributing-vertex
//     classification and trapezoid emission in parallel over beams (Step 3,
//     Lemmas 1–3) with intersections from the inversion method (Lemma 4),
//     and a parallel merge of the partial results (Step 4, Fig. 6).
//
//   - ClipPair / ClipLayers — the multi-threaded Algorithm 2 (§IV): the
//     input is partitioned into p horizontal slabs balanced by event count,
//     each slab is clipped independently by a sequential engine after
//     rectangle-clipping both operands to the slab, and the partial outputs
//     are merged by cancelling the seams along slab boundaries.
//
// All entry points report phase timings (partition / clip / merge) and
// per-thread clip times so the paper's Figures 8–12 can be regenerated.
package core

import (
	"context"
	"errors"

	"polyclip/internal/arrange"
	"sync/atomic"
	"time"

	"polyclip/internal/bandclip"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/guard"
	"polyclip/internal/par"

	// Linked for their init-time engine registration: any program importing
	// core can resolve the slab-hostable engines by name.
	_ "polyclip/internal/overlay"
	_ "polyclip/internal/vatti"
)

// Op re-exports the canonical operation type (see internal/engine).
type Op = engine.Op

// Supported operations.
const (
	Intersection = engine.Intersection
	Union        = engine.Union
	Difference   = engine.Difference
	Xor          = engine.Xor
)

// MergeMode selects how per-slab partial outputs are combined.
type MergeMode uint8

// Merge modes.
const (
	// MergeStitch cancels the horizontal seams along slab boundaries and
	// restitches rings — the paper's Fig. 6 merge, flattened.
	MergeStitch MergeMode = iota
	// MergeConcat concatenates the partial outputs, leaving seam edges in
	// place. The region is identical under the even-odd rule; only the ring
	// structure differs. Fastest; matches the paper's replication variant
	// where "the merging phase is not required".
	MergeConcat
	// MergeUnionTree merges by a reduction tree of pairwise polygon unions,
	// the literal Fig. 6 construction. For the ablation benchmark.
	MergeUnionTree
)

// PartitionMode selects how slab boundaries are chosen.
type PartitionMode uint8

// Partition modes.
const (
	// PartitionEvents balances slabs by event count — the paper's approach
	// ("every thread gets roughly equal number of local event points").
	PartitionEvents PartitionMode = iota
	// PartitionUniform uses equal-height slabs — the uniform grid approach
	// of the paper's [19], kept as the load-balancing ablation baseline.
	PartitionUniform
)

// Options configures a parallel clipping run.
type Options struct {
	// Threads is the number of concurrent workers; <= 0 means GOMAXPROCS.
	Threads int
	// Slabs is the number of horizontal slabs the input is decomposed
	// into; 0 derives the count from the input itself (see
	// adaptiveSlabCount): the arrangement pre-scan's event and crossing
	// counts buy slabs up to twice the thread count, and small inputs
	// collapse to one slab. Setting Slabs > Threads measures true
	// per-slab costs with limited concurrency (used by the experiment
	// harness to model scaling beyond the host's core count: per-slab
	// timers are only CPU-attributable when workers do not outnumber
	// cores).
	Slabs int
	// Engine is the per-slab sequential clipper: any registered engine whose
	// capabilities declare SlabHostable. nil selects the registry's default
	// slab host (the overlay engine when linked).
	Engine engine.Engine
	// Merge selects the partial-output merge strategy.
	Merge MergeMode
	// Partition selects the slab boundary placement.
	Partition PartitionMode
	// NoFallback disables the per-pair engine rescue in ClipLayersCtx (a
	// pair whose clip panics is normally retried once with the other
	// sequential engine before the error is surfaced).
	NoFallback bool
}

// Stats reports where the time went, for the paper's figures. It aliases the
// canonical engine-facing type (see internal/engine).
type Stats = engine.Stats

// Resilience is the record of the hardened pipeline's interventions for one
// clipping run (see internal/engine).
type Resilience = engine.Resilience

// slabEngine resolves the per-slab sequential engine: the configured one, or
// the registry's default slab host when unset.
func slabEngine(opt Options) engine.Engine {
	if opt.Engine != nil {
		return opt.Engine
	}
	e, ok := engine.SlabHost("overlay")
	if !ok {
		panic("core: no slab-hostable engine registered")
	}
	return e
}

// slabClip runs a sequential engine on one slab's operands. snapEps is the
// vertex grid shared by every slab of one run, so that seam geometry produced
// independently by different workers quantizes identically. A cancelled ctx
// makes cancellable engines bail early; the surrounding loops detect the
// cancellation and discard the partial output.
func slabClip(ctx context.Context, e engine.Engine, a, b geom.Polygon, op Op, snapEps float64) geom.Polygon {
	res, _ := e.Clip(ctx, a, b, op, engine.Options{Threads: 1, SnapEps: snapEps})
	return res.Polygon
}

// canceled is the cheap in-loop cancellation poll.
func canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

// Per-stage shares of the remaining deadline budget. Each stage gets its
// fraction of the time left when it starts (not of the original total), so
// an early stage finishing fast donates its slack to the later ones and a
// slow stage cannot starve the merge entirely.
const (
	fracSort      = 0.10
	fracPartition = 0.20
	fracClip      = 0.55
	fracMerge     = 0.80 // of whatever remains after the clip stage
)

// stageRetryBackoff is the pause before a timed-out or panicked stage is
// retried sequentially — long enough to let a transiently-contended machine
// breathe, short enough to stay well inside any realistic deadline budget.
const stageRetryBackoff = 2 * time.Millisecond

// runStage executes one pipeline stage with a watchdog deadline and one
// retry. When ctx carries a deadline, the stage runs under a child context
// holding the stage's fractional share of the remaining time; a stage that
// exceeds its share is abandoned (workers cannot be killed — they keep
// running and their buffers are discarded, which is why attempt must write
// only to freshly allocated buffers and commit them only on a nil return).
// A timed-out or panicked stage is retried once, after a brief backoff,
// sequentially (p = 1) under the full remaining deadline. When both tries
// fail the stage error is surfaced as a *guard.ClipError; cancellation or
// expiry of ctx itself is surfaced as ctx.Err().
//
// attempt receives the stage context and the parallelism to use, and must
// return a *par.StallError if the stage context expired mid-stage (so the
// watchdog outcome is attributed to the stage, not the run).
func runStage(ctx context.Context, st *Stats, name string, frac float64, p int, noRetry bool, attempt func(sctx context.Context, p int) error) error {
	run := func(pp int, share float64) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = guard.FromPanic(name, -1, guard.NoPair, r)
			}
		}()
		sctx := ctx
		if deadline, ok := ctx.Deadline(); ok {
			var cancel context.CancelFunc
			sctx, cancel = context.WithTimeout(ctx, time.Duration(share*float64(time.Until(deadline))))
			defer cancel()
		}
		return attempt(sctx, pp)
	}

	err := run(p, frac)
	if err == nil {
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		// The run as a whole was cancelled or ran out of deadline: not a
		// stage-local failure, nothing to retry.
		return cerr
	}
	var stall *par.StallError
	if errors.As(err, &stall) {
		st.Resilience.StageTimeouts++
	}
	if noRetry {
		return stageError(name, err)
	}
	time.Sleep(stageRetryBackoff)
	st.Resilience.Retries++
	if err2 := run(1, 1.0); err2 == nil {
		st.Resilience.Recovered++
		return nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return stageError(name, err)
}

// stageError converts a stage failure into the structured *guard.ClipError
// surfaced to callers, preserving an existing ClipError's deeper
// attribution and tagging watchdog stalls as timeouts.
func stageError(stage string, err error) error {
	var ce *guard.ClipError
	if errors.As(err, &ce) {
		return ce
	}
	var stall *par.StallError
	out := &guard.ClipError{Stage: stage, Slab: -1, Pair: guard.NoPair, Value: err, Err: err}
	if errors.As(err, &stall) {
		out.Timeout = true
	}
	return out
}

// stallIfExpired maps a stage context that expired while the stage's
// workers were (cooperatively) draining onto the same *par.StallError the
// watchdog produces for a hard stall, so runStage treats both identically.
func stallIfExpired(sctx context.Context) error {
	if err := sctx.Err(); err != nil {
		return &par.StallError{Err: err}
	}
	return nil
}

// ClipPair clips two polygons with the multi-threaded Algorithm 2. A worker
// panic propagates as a panic on the calling goroutine (recoverable); the
// hardened public API uses ClipPairCtx instead, which returns it as an
// error.
func ClipPair(a, b geom.Polygon, op Op, opt Options) (geom.Polygon, *Stats) {
	out, st, err := ClipPairCtx(context.Background(), a, b, op, opt)
	if err != nil {
		panic(err)
	}
	return out, st
}

// ClipPairCtx clips two polygons with the multi-threaded Algorithm 2,
// cooperatively honoring ctx: the slab loop polls cancellation before each
// slab, so after ctx is done no further slab is clipped and ctx.Err() is
// returned. A panic in one slab worker is recovered and returned as a
// *guard.ClipError carrying the offending slab index and the worker stack,
// instead of crashing the process.
//
// When ctx carries a deadline, the budget is split across the sweep stages
// (sort / partition / clip / merge) and each stage runs under a watchdog: a
// stage whose workers do not finish inside its share — a straggler wedged on
// pathological geometry, a hung worker — is abandoned and retried once,
// sequentially, on fresh buffers (Stats.Resilience.StageTimeouts / Retries).
// Only if the retry also fails does a timeout-flavoured *guard.ClipError
// surface, feeding the caller's degradation ladder. The run therefore
// returns within a small factor of the configured deadline even when a
// worker hangs outright.
func ClipPairCtx(ctx context.Context, a, b geom.Polygon, op Op, opt Options) (geom.Polygon, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p := opt.Threads
	if p <= 0 {
		p = par.DefaultParallelism()
	}
	nslabs := opt.Slabs
	st := &Stats{}
	snapEps := geom.AutoSnapEps(a, b)
	// Decompose the resolved, snapped pair — the same pre-pass every other
	// engine's sweep starts from — not the raw operands. Two alignments
	// must hold at once. First, the quantization ORDER must match the rest
	// of the registry: joint pair resolution (split at every intersection,
	// weld onto the shared grid, re-extract self-crossing operands) and
	// only then the grid snap; snapping raw geometry first collapses
	// sub-grid rings that the resolve pipeline would have re-extracted,
	// and the result measurably diverges from the other engines on
	// coarse-grid (mixed-extent) pairs. Second, slab cuts are placed at
	// event ys and each slab host re-snaps its band onto this same grid —
	// after this pre-pass every event y is a grid value (so cut lines and
	// the caps they produce quantize identically in adjacent hosts) and
	// every cut still passes exactly through the vertices that generated
	// it, which seam cancellation in the merge relies on.
	var crossings int
	a, b, crossings = arrange.ResolvePairEstimate(a, b)
	a = geom.SnapPolygon(a, snapEps)
	b = geom.SnapPolygon(b, snapEps)
	st.CrossingEstimate = crossings
	eng := slabEngine(opt)

	// Step 1–2: event schedule.
	t0 := time.Now()
	var ys []float64
	err := runStage(ctx, st, "sort", fracSort, p, opt.NoFallback, func(sctx context.Context, pp int) error {
		var out []float64
		if err := par.Run(sctx, func() { out = eventYs(a, b, pp) }); err != nil {
			return err
		}
		ys = out
		return nil
	})
	st.Sort = time.Since(t0)
	if err != nil {
		return nil, st, err
	}
	if len(ys) == 0 {
		out := slabClip(ctx, eng, a, b, op, snapEps)
		return out, st, ctx.Err()
	}

	if nslabs <= 0 {
		nslabs = adaptiveSlabCount(p, len(ys), crossings)
	}
	bounds := pruneThinSlabs(slabBoundaries(ys, nslabs, opt.Partition), snapEps)
	ns := len(bounds) - 1
	st.Slabs = ns
	if ns <= 1 {
		t1 := time.Now()
		var out geom.Polygon
		err := runStage(ctx, st, "clip", fracClip, p, opt.NoFallback, func(sctx context.Context, _ int) error {
			var o geom.Polygon
			if err := par.Run(sctx, func() { o = slabClip(sctx, eng, a, b, op, snapEps) }); err != nil {
				return err
			}
			if err := stallIfExpired(sctx); err != nil {
				return err
			}
			out = o
			return nil
		})
		st.Clip = time.Since(t1)
		if err != nil {
			return nil, st, err
		}
		st.PerThread = []time.Duration{st.Clip}
		return out, st, nil
	}

	// Steps 4–5: rectangle-clip both operands into each slab.
	t1 := time.Now()
	var subA, subB []geom.Polygon
	err = runStage(ctx, st, "partition", fracPartition, p, opt.NoFallback, func(sctx context.Context, pp int) error {
		sa := make([]geom.Polygon, ns)
		sb := make([]geom.Polygon, ns)
		err := par.ForEachCtx(sctx, ns, pp, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if canceled(sctx) {
					return
				}
				sa[i] = bandclip.Clip(a, bounds[i], bounds[i+1])
				sb[i] = bandclip.Clip(b, bounds[i], bounds[i+1])
			}
		})
		if err != nil {
			return err
		}
		if err := stallIfExpired(sctx); err != nil {
			return err
		}
		subA, subB = sa, sb
		return nil
	})
	st.Partition = time.Since(t1)
	if err != nil {
		return nil, st, err
	}

	// Step 6: per-slab sequential clipping. Each worker is panic-isolated:
	// the first panic is captured with its slab attribution; the stage retry
	// (or, failing that, the caller's fallback chain) handles it.
	t2 := time.Now()
	var partial []geom.Polygon
	err = runStage(ctx, st, "slab-clip", fracClip, p, opt.NoFallback, func(sctx context.Context, pp int) error {
		pt := make([]geom.Polygon, ns)
		tt := make([]time.Duration, ns)
		var slabErr atomic.Pointer[guard.ClipError]
		err := par.ForEachCtx(sctx, ns, pp, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if canceled(sctx) || slabErr.Load() != nil {
					return
				}
				func(i int) {
					defer func() {
						if r := recover(); r != nil {
							slabErr.CompareAndSwap(nil, guard.FromPanic("slab-clip", i, guard.NoPair, r))
						}
					}()
					guard.Hit("core.slab-clip")
					ts := time.Now()
					pt[i] = slabClip(sctx, eng, subA[i], subB[i], op, snapEps)
					tt[i] = time.Since(ts)
				}(i)
			}
		})
		if err != nil {
			return err
		}
		if ce := slabErr.Load(); ce != nil {
			return ce
		}
		if err := stallIfExpired(sctx); err != nil {
			return err
		}
		partial = pt
		st.PerThread = tt
		return nil
	})
	st.Clip = time.Since(t2)
	if err != nil {
		return nil, st, err
	}

	// Step 8: merge.
	t3 := time.Now()
	var out geom.Polygon
	err = runStage(ctx, st, "merge", fracMerge, p, opt.NoFallback, func(sctx context.Context, pp int) error {
		var o geom.Polygon
		if err := par.Run(sctx, func() { o = mergePartials(partial, bounds, opt.Merge, snapEps, pp) }); err != nil {
			return err
		}
		out = o
		return nil
	})
	st.Merge = time.Since(t3)
	if err != nil {
		return nil, st, err
	}
	return out, st, nil
}

// eventYs returns the sorted distinct vertex y-coordinates of both operands,
// sorting with parallelism p.
func eventYs(a, b geom.Polygon, p int) []float64 {
	var ys []float64
	for _, poly := range []geom.Polygon{a, b} {
		for _, r := range poly {
			for _, pt := range r {
				ys = append(ys, pt.Y)
			}
		}
	}
	if len(ys) == 0 {
		return nil
	}
	par.Sort(ys, func(x, y float64) bool { return x < y }, p)
	out := ys[:0]
	for i, v := range ys {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// minSlabWork is the event-plus-crossing count one slab is worth creating
// for: below it, the fixed per-slab cost (two bandclip passes over the full
// operands, a slab host, a merge seam) exceeds the sweep work the slab
// carries.
const minSlabWork = 256

// adaptiveSlabCount derives the slab count from the input's measured size
// instead of a fixed multiple of the thread count — the output-sensitive
// processor allocation of the paper's Step 3, with the arrangement
// pre-scan's crossing estimate standing in for k. work = events + crossings
// buys one slab per minSlabWork units, clamped to [1, 2p]: small inputs
// collapse to a single slab (skipping partition and merge entirely), dense
// inputs oversubscribe to 2p slabs so stealing can rebalance skewed slabs,
// and p == 1 always means one slab, keeping the sequential path identical
// to the pre-pool pipeline.
func adaptiveSlabCount(p, events, crossings int) int {
	if p <= 1 {
		return 1
	}
	ns := (events + crossings) / minSlabWork
	if ns < 1 {
		ns = 1
	}
	if ns > 2*p {
		ns = 2 * p
	}
	return ns
}

// pruneThinSlabs drops interior slab boundaries that would leave a slab
// thinner than two cells of the pair's shared snap grid. A sub-cell slab
// cannot survive the per-slab snap rounding: its operands collapse or
// fatten by a full cell inside the slab host, and the drift survives the
// merge as a measurable area error (event ys of a degenerate sliver
// operand can sit arbitrarily close together while the pair grid — sized
// by the full extent — is far coarser). Boundaries are only ever dropped,
// never moved: event-mode cuts pass exactly through input vertices, and
// shifting one onto the grid would slice edges a fraction of a cell away
// from the vertex, leaving near-degenerate caps that adjacent slab hosts
// weld inconsistently.
func pruneThinSlabs(bounds []float64, eps float64) []float64 {
	if eps <= 0 || len(bounds) <= 2 {
		return bounds
	}
	hi := bounds[len(bounds)-1]
	out := bounds[:1]
	for _, v := range bounds[1 : len(bounds)-1] {
		if v-out[len(out)-1] >= 2*eps && hi-v >= 2*eps {
			out = append(out, v)
		}
	}
	return append(out, hi)
}

// slabBoundaries picks ns+1 boundaries over the sorted event ys.
func slabBoundaries(ys []float64, p int, mode PartitionMode) []float64 {
	lo, hi := ys[0], ys[len(ys)-1]
	if lo == hi || p < 1 {
		return []float64{lo, hi}
	}
	bounds := make([]float64, 0, p+1)
	bounds = append(bounds, lo)
	for i := 1; i < p; i++ {
		var v float64
		if mode == PartitionUniform {
			v = lo + (hi-lo)*float64(i)/float64(p)
		} else {
			v = ys[len(ys)*i/p]
		}
		if v > bounds[len(bounds)-1] && v < hi {
			bounds = append(bounds, v)
		}
	}
	bounds = append(bounds, hi)
	return bounds
}
