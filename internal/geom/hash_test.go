package geom

import (
	"math"
	"testing"
)

func hashPoly(coords ...[][2]float64) Polygon {
	var p Polygon
	for _, rc := range coords {
		r := make(Ring, len(rc))
		for i, c := range rc {
			r[i] = Point{X: c[0], Y: c[1]}
		}
		p = append(p, r)
	}
	return p
}

func TestHashEqualForClones(t *testing.T) {
	p := hashPoly([][2]float64{{0, 0}, {4, 0}, {4, 4}, {0, 4}}, [][2]float64{{1, 1}, {2, 1}, {2, 2}})
	if got, want := Hash(p), Hash(p.Clone()); got != want {
		t.Errorf("clone digest %v != %v", got, want)
	}
	if Hash(p).IsZero() {
		t.Error("digest of a non-empty polygon is zero")
	}
}

func TestHashSensitivity(t *testing.T) {
	base := hashPoly([][2]float64{{0, 0}, {4, 0}, {4, 4}, {0, 4}})
	h := Hash(base)
	variants := map[string]Polygon{
		"translated":     hashPoly([][2]float64{{1, 0}, {5, 0}, {5, 4}, {1, 4}}),
		"rotated-order":  hashPoly([][2]float64{{4, 0}, {4, 4}, {0, 4}, {0, 0}}),
		"reversed":       hashPoly([][2]float64{{0, 4}, {4, 4}, {4, 0}, {0, 0}}),
		"extra-vertex":   hashPoly([][2]float64{{0, 0}, {2, 0}, {4, 0}, {4, 4}, {0, 4}}),
		"one-ulp-nudged": hashPoly([][2]float64{{0, 0}, {math.Nextafter(4, 5), 0}, {4, 4}, {0, 4}}),
		"empty":          nil,
	}
	for name, v := range variants {
		if Hash(v) == h {
			t.Errorf("%s: digest collides with base", name)
		}
	}
}

// Moving a vertex across a ring boundary keeps the flattened coordinate
// stream identical; the length prefixes must still separate the digests.
func TestHashRingBoundaries(t *testing.T) {
	a := hashPoly(
		[][2]float64{{0, 0}, {1, 0}, {1, 1}},
		[][2]float64{{2, 2}, {3, 2}, {3, 3}, {2, 3}},
	)
	b := hashPoly(
		[][2]float64{{0, 0}, {1, 0}, {1, 1}, {2, 2}},
		[][2]float64{{3, 2}, {3, 3}, {2, 3}},
	)
	if Hash(a) == Hash(b) {
		t.Error("ring-boundary shift not reflected in digest")
	}
}

func TestHashNegativeZero(t *testing.T) {
	a := hashPoly([][2]float64{{0, 0}, {1, 0}, {1, 1}})
	b := hashPoly([][2]float64{{math.Copysign(0, -1), math.Copysign(0, -1)}, {1, 0}, {1, 1}})
	if Hash(a) != Hash(b) {
		t.Error("-0.0 and +0.0 should hash identically")
	}
}
