package isect

import (
	"testing"

	"polyclip/internal/geom"
)

// TestBeamSeqAllocFree guards the scanbeam inner loop: ordering one beam
// (both scanline sorts, the rank table, and the inversion sequence) must
// reuse the pooled scratch and allocate nothing once the scratch is sized.
func TestBeamSeqAllocFree(t *testing.T) {
	edges := []geom.Segment{
		{A: geom.Point{X: 0, Y: 0}, B: geom.Point{X: 4, Y: 4}},
		{A: geom.Point{X: 4, Y: 0}, B: geom.Point{X: 0, Y: 4}},
		{A: geom.Point{X: 1, Y: 0}, B: geom.Point{X: 1, Y: 4}},
		{A: geom.Point{X: 3, Y: 0}, B: geom.Point{X: 2, Y: 4}},
	}
	ids := []int32{0, 1, 2, 3}
	s := new(beamScratch)
	beamSeq(edges, ids, 1, 3, s) // size the scratch
	if avg := testing.AllocsPerRun(1000, func() {
		beamSeq(edges, ids, 1, 3, s)
	}); avg != 0 {
		t.Fatalf("beamSeq allocates %.1f objects/op with warm scratch, want 0", avg)
	}
}

// TestScanbeamPairsAllocBounded guards the whole finder: the per-beam sweep
// must stay within a small fixed allocation budget per beam (the result
// slices plus pool traffic), catching regressions that reintroduce
// per-beam scratch allocation.
func TestScanbeamPairsAllocBounded(t *testing.T) {
	// A ladder of crossing diagonals: many beams, a handful of pairs.
	var edges []geom.Segment
	for i := 0; i < 16; i++ {
		f := float64(i)
		edges = append(edges,
			geom.Segment{A: geom.Point{X: f, Y: 0.1}, B: geom.Point{X: f + 2, Y: 15.7}},
			geom.Segment{A: geom.Point{X: f + 2, Y: 0.3}, B: geom.Point{X: f, Y: 15.9}},
		)
	}
	ScanbeamPairs(edges, 1) // warm the pools
	avg := testing.AllocsPerRun(100, func() {
		ScanbeamPairs(edges, 1)
	})
	// 32 edges make ~64 beam boundaries; before the pooled scratch this
	// sweep cost thousands of allocations. A generous fixed budget still
	// catches any per-beam-per-edge regression.
	const budget = 400
	if avg > budget {
		t.Fatalf("ScanbeamPairs allocates %.0f objects/op, budget %d", avg, budget)
	}
}
