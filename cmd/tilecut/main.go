// Command tilecut cuts a polygon layer into a z/x/y pyramid of vector
// tiles through the prepared-geometry pipeline.
//
// Usage:
//
//	tilecut -in layer.wkt -zooms 0:6 -o tiles.ndjson
//	datagen -tiles 256 | tilecut -zooms 2:5 -threads 8
//	tilecut -in layer.wkt -naive -stats   # per-tile full-clip baseline
//
// Input is WKT or GeoJSON (auto-detected); multiple input features are
// cut independently, each into the shared pyramid. Output is one JSON
// record per non-empty tile — {"feature","z","x","y","wkt"} — in
// deterministic (feature, z, x, y) order: bit-identical for any -threads.
// -stats prints the cut summary (fast-path hits, prunes, fills) to stderr.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"polyclip/internal/batch"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/tile"
	"polyclip/internal/wkt"
)

func main() {
	in := flag.String("in", "-", "input layer file, WKT or GeoJSON (default stdin)")
	out := flag.String("o", "-", "output file (default stdout)")
	zooms := flag.String("zooms", "0:4", "zoom range min:max")
	extent := flag.String("extent", "", "pyramid extent minX,minY,maxX,maxY (default: padded square around the layer)")
	rule := flag.String("rule", "evenodd", "fill rule: evenodd, nonzero, positive, negative")
	threads := flag.Int("threads", 0, "worker threads (0 = all CPUs)")
	naive := flag.Bool("naive", false, "per-tile full clips instead of the prepared pipeline")
	stats := flag.Bool("stats", false, "print cut statistics to stderr")
	flag.Parse()

	features, err := readLayer(*in)
	if err != nil {
		fatalf("reading %s: %v", *in, err)
	}
	if len(features) == 0 {
		fatalf("no input features")
	}

	var minZ, maxZ int
	if _, err := fmt.Sscanf(*zooms, "%d:%d", &minZ, &maxZ); err != nil {
		fatalf("bad -zooms %q (want min:max): %v", *zooms, err)
	}
	spec := tile.Spec{MinZoom: minZ, MaxZoom: maxZ}
	if *extent == "" {
		var ext geom.BBox
		for _, f := range features {
			ext = ext.Union(f.BBox())
		}
		spec.Extent = tile.SquareExtent(ext)
	} else {
		var b geom.BBox
		if _, err := fmt.Sscanf(*extent, "%g,%g,%g,%g", &b.MinX, &b.MinY, &b.MaxX, &b.MaxY); err != nil {
			fatalf("bad -extent %q: %v", *extent, err)
		}
		spec.Extent = b
	}

	fillRule, err := parseRule(*rule)
	if err != nil {
		fatalf("%v", err)
	}

	tiles, st, err := batch.CutTiles(context.Background(), features, batch.TileOptions{
		Spec:    spec,
		Rule:    fillRule,
		Threads: *threads,
		Naive:   *naive,
	})
	if err != nil {
		fatalf("cutting: %v", err)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	enc := json.NewEncoder(bw)
	for _, t := range tiles {
		rec := struct {
			Feature int32  `json:"feature"`
			Z       int    `json:"z"`
			X       int32  `json:"x"`
			Y       int32  `json:"y"`
			WKT     string `json:"wkt"`
		}{t.Feature, t.Z, t.X, t.Y, wkt.Marshal(t.Poly)}
		if err := enc.Encode(rec); err != nil {
			fatalf("writing: %v", err)
		}
	}

	if *stats {
		sj, _ := json.Marshal(st)
		fmt.Fprintf(os.Stderr, "%s\n", sj)
	}
}

func readLayer(path string) ([]geom.Polygon, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	return batch.ReadFeatures(r)
}

func parseRule(s string) (engine.FillRule, error) {
	switch strings.ToLower(s) {
	case "", "evenodd":
		return engine.EvenOdd, nil
	case "nonzero":
		return engine.NonZero, nil
	case "positive":
		return engine.Positive, nil
	case "negative":
		return engine.Negative, nil
	}
	return 0, fmt.Errorf("unknown rule %q", s)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
