// Benchmarks regenerating the measurements behind every table and figure of
// the paper's evaluation (§V), plus the ablations called out in DESIGN.md.
// Run with:
//
//	go test -bench=. -benchmem
//
// The full-scale experiment harness (parameter sweeps, formatted tables) is
// cmd/bench; these benchmarks exercise one representative configuration per
// experiment so the whole suite stays runnable in CI.
package polyclip

import (
	"fmt"
	"testing"

	"polyclip/internal/core"
	"polyclip/internal/data"
	"polyclip/internal/engine"
	"polyclip/internal/isect"
	"polyclip/internal/overlay"
	"polyclip/internal/par"
	"polyclip/internal/pram"
	"polyclip/internal/vatti"
)

// --- Table I: inversion counting/reporting by extended mergesort ---------

func BenchmarkTableIInversionCount(b *testing.B) {
	xs := make([]int, 1<<16)
	for i := range xs {
		xs[i] = (i * 48271) % len(xs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.CountInversions(xs)
	}
}

func BenchmarkTableIInversionReport(b *testing.B) {
	xs := make([]int, 1<<10)
	for i := range xs {
		xs[i] = (i * 48271) % 97
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.ReportInversions(xs)
	}
}

// --- Table II: scanbeam decomposition (trapezoid sweep) ------------------

func BenchmarkTableIIScanbeamTable(b *testing.B) {
	subject, clip := data.SyntheticPair(1, 2000, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vatti.Trapezoids(subject, clip, vatti.Intersection)
	}
}

// --- Table III: dataset synthesis ----------------------------------------

func BenchmarkTableIIIDatasetSynthesis(b *testing.B) {
	d := data.TableIII[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data.Layer(d, 0.01, int64(i))
	}
}

// --- Figure 7: sequential clipping time vs polygon size ------------------

func BenchmarkFig7SequentialClip(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		subject, clip := data.SyntheticPair(2, n, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				overlay.Clip(subject, clip, overlay.Intersection, overlay.Options{Parallelism: 1})
			}
		})
	}
}

func BenchmarkFig7VattiEngine(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		subject, clip := data.SyntheticPair(2, n, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vatti.Clip(subject, clip, vatti.Intersection)
			}
		})
	}
}

// --- Figure 8: Algorithm 2 speedup vs threads (synthetic pair) -----------

func BenchmarkFig8SlabClipPair(b *testing.B) {
	subject, clip := data.SyntheticPair(3, 8000, 8000)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ClipPair(subject, clip, core.Intersection, core.Options{Threads: p})
			}
		})
	}
}

// --- Figure 9: phase breakdown -------------------------------------------

func BenchmarkFig9Partition(b *testing.B) {
	subject, clip := data.SyntheticPair(4, 8000, 8000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := core.ClipPair(subject, clip, core.Intersection, core.Options{Threads: 8})
		_ = st.Partition
	}
}

func BenchmarkFig9MergeStitch(b *testing.B) {
	subject, clip := data.SyntheticPair(4, 8000, 8000)
	for _, merge := range []core.MergeMode{core.MergeStitch, core.MergeConcat} {
		b.Run(fmt.Sprintf("merge=%d", merge), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ClipPair(subject, clip, core.Union, core.Options{Threads: 8, Merge: merge})
			}
		})
	}
}

// --- Figure 10: layer overlay scaling (Table III datasets) ---------------

func BenchmarkFig10LayerOverlay(b *testing.B) {
	la := core.Layer(data.Layer(data.TableIII[0], 0.002, 1))
	lb := core.Layer(data.Layer(data.TableIII[1], 0.002, 2))
	for _, p := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("threads=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ClipLayers(la, lb, core.Intersection, core.Options{Threads: p})
			}
		})
	}
}

// --- Figure 11: load imbalance accounting --------------------------------

func BenchmarkFig11PerThreadTimes(b *testing.B) {
	la := core.Layer(data.Layer(data.TableIII[0], 0.002, 1))
	lb := core.Layer(data.Layer(data.TableIII[1], 0.002, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st := core.ClipLayers(la, lb, core.Intersection, core.Options{Threads: 16})
		_ = st.CriticalPath()
	}
}

// --- Figure 12: end-to-end absolute comparison ---------------------------

func BenchmarkFig12EndToEnd(b *testing.B) {
	la := core.Layer(data.Layer(data.TableIII[2], 0.0005, 3))
	lb := core.Layer(data.Layer(data.TableIII[3], 0.0005, 4))
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ClipLayers(la, lb, core.Intersection, core.Options{Threads: 1})
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ClipLayers(la, lb, core.Intersection, core.Options{Threads: 0})
		}
	})
}

// --- §III theory: PRAM primitives ----------------------------------------

func BenchmarkPRAMScan(b *testing.B) {
	xs := make([]int, 1<<12)
	for i := range xs {
		xs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pram.New().Scan(xs)
	}
}

func BenchmarkPRAMBitonicSort(b *testing.B) {
	xs := make([]int, 1<<10)
	for i := range xs {
		xs[i] = (i * 31) % 997
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pram.New().Sort(xs)
	}
}

// --- Ablations (DESIGN.md) ------------------------------------------------

// BenchmarkAblationFinders compares the intersection finders: the uniform
// grid filter versus the paper's scanbeam-inversion method.
func BenchmarkAblationFinders(b *testing.B) {
	subject, clip := data.SyntheticPair(5, 4000, 4000)
	segs := append(subject.Edges(), clip.Edges()...)
	b.Run("grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			isect.GridPairs(segs, 0)
		}
	})
	b.Run("scanbeam-inversions", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			isect.ScanbeamPairs(segs, 0)
		}
	})
	b.Run("bentley-ottmann", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			isect.SweepPairs(segs)
		}
	})
}

// BenchmarkAblationMerge compares the three merge strategies of the slab
// algorithm.
func BenchmarkAblationMerge(b *testing.B) {
	subject, clip := data.SyntheticPair(6, 4000, 4000)
	modes := map[string]core.MergeMode{
		"stitch":     core.MergeStitch,
		"concat":     core.MergeConcat,
		"union-tree": core.MergeUnionTree,
	}
	for name, mode := range modes {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ClipPair(subject, clip, core.Intersection, core.Options{Threads: 8, Merge: mode})
			}
		})
	}
}

// BenchmarkAblationPartition compares event-balanced slabs (the paper) with
// uniform-height slabs (the grid approach of the paper's [19]) on skewed
// data, reporting the load-balance critical path.
func BenchmarkAblationPartition(b *testing.B) {
	la := core.Layer(data.Layer(data.TableIII[1], 0.005, 7))
	lb := core.Layer(data.OverlapLayer(la, 8))
	modes := map[string]core.PartitionMode{
		"event-balanced": core.PartitionEvents,
		"uniform-height": core.PartitionUniform,
	}
	for name, mode := range modes {
		b.Run(name, func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				_, st := core.ClipLayers(la, lb, core.Intersection, core.Options{Threads: 8, Partition: mode})
				if cp := float64(st.CriticalPath()); cp > worst {
					worst = cp
				}
			}
			b.ReportMetric(worst/1e6, "critpath-ms")
		})
	}
}

// BenchmarkAblationEngines compares the two sequential engines inside the
// slab algorithm.
func BenchmarkAblationEngines(b *testing.B) {
	subject, clip := data.SyntheticPair(9, 2000, 2000)
	for _, name := range []string{"overlay", "vatti"} {
		eng := engine.MustGet(name)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ClipPair(subject, clip, core.Intersection, core.Options{Threads: 4, Engine: eng})
			}
		})
	}
}

// BenchmarkAlgorithmOne measures the fully parallel scanbeam pipeline.
// The thread ladder matches BenchmarkFig8SlabClipPair so scripts/
// bench_scaling.sh can record one scaling curve per algorithm.
func BenchmarkAlgorithmOne(b *testing.B) {
	subject, clip := data.SyntheticPair(10, 4000, 4000)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.AlgorithmOne(subject, clip, core.Intersection, p)
			}
		})
	}
}

// BenchmarkPublicAPI measures the default public entry point.
func BenchmarkPublicAPI(b *testing.B) {
	subject, clip := data.SyntheticPair(11, 2000, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Clip(subject, clip, Intersection)
	}
}
