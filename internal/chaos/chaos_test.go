package chaos

import (
	"math"
	"testing"
	"time"

	"polyclip"
)

// TestCleanRunPasses is the tier-1 slice of the acceptance criterion: a
// fixed-seed run with no faults must find zero contract violations.
func TestCleanRunPasses(t *testing.T) {
	rep := Run(Config{Seed: 1, Cases: 42, Log: t.Logf})
	if rep.Failed() {
		t.Fatalf("clean chaos run failed:\n%s", rep.Summary())
	}
	if rep.InvariantChecks == 0 || rep.Clips == 0 {
		t.Fatalf("run checked nothing: %s", rep.Summary())
	}
}

// TestFaultedRunAbsorbsEveryFault injects a fault into every case and
// requires each to be recovered or surfaced as a structured error — never
// a crash, never a silently wrong answer.
func TestFaultedRunAbsorbsEveryFault(t *testing.T) {
	rep := Run(Config{Seed: 2, Cases: 24, Faults: true, Log: t.Logf})
	if rep.Failed() {
		t.Fatalf("faulted chaos run failed:\n%s", rep.Summary())
	}
	if rep.FaultsInjected != 24 {
		t.Fatalf("want 24 faults injected, got %d", rep.FaultsInjected)
	}
	// The injected panics must be visible somewhere in the resilience
	// record: rescued in-stage, absorbed by the fallback chain, or caught
	// by the audit.
	r := rep.Resilience
	if r.Recovered+r.FallbackSteps+r.AuditFailures == 0 {
		t.Fatalf("faults left no resilience trace: %s", rep.Summary())
	}
}

// TestBudgetedRunBoundsHangs arms hang faults under a per-clip deadline:
// the engine's own budget-overrun invariant fails the run if any clip
// exceeds twice the budget.
func TestBudgetedRunBoundsHangs(t *testing.T) {
	if testing.Short() {
		t.Skip("hang faults sleep for real time")
	}
	// 12 cases = one full fault-plan cycle, including both hang plans.
	rep := Run(Config{Seed: 3, Cases: 12, Faults: true, Budget: 500 * time.Millisecond, Log: t.Logf})
	if rep.Failed() {
		t.Fatalf("budgeted chaos run failed:\n%s", rep.Summary())
	}
}

// TestDegenerateFamilyRun is the tier-1 slice of the degeneracy acceptance
// criterion: a fixed-seed run restricted to the Foster–Overfelt taxonomy
// must find zero contract violations, and must actually draw every
// degenerate family.
func TestDegenerateFamilyRun(t *testing.T) {
	cases := 40
	if testing.Short() {
		cases = 10
	}
	rep := Run(Config{Seed: 7, Cases: cases, Family: FamilyDegenerate, Log: t.Logf})
	if rep.Failed() {
		t.Fatalf("degenerate chaos run failed:\n%s", rep.Summary())
	}
	if rep.InvariantChecks == 0 {
		t.Fatalf("run checked nothing: %s", rep.Summary())
	}
	gens := generatorsFor(FamilyDegenerate)
	if len(gens) < 5 {
		t.Fatalf("degenerate taxonomy has %d families, want >= 5", len(gens))
	}
	for _, g := range gens {
		if g.family != FamilyDegenerate {
			t.Errorf("filter leaked family %q (%s)", g.family, g.name)
		}
	}
}

// TestTilesFamilyRun is the tier-1 slice of the tiling acceptance
// criterion: a fixed-seed run restricted to the tiles family must find zero
// violations of the partition invariant (per-zoom tile areas summing to the
// layer clipped to the pyramid extent), the naive cross-check, and thread
// determinism — across all four fill rules (the op slot cycles the rule
// every len(gens) cases, so 13 cases cover every rule at least once).
func TestTilesFamilyRun(t *testing.T) {
	cases := 13
	if !testing.Short() {
		cases = 26
	}
	rep := Run(Config{Seed: 5, Cases: cases, Family: FamilyTiles, Log: t.Logf})
	if rep.Failed() {
		t.Fatalf("tiles chaos run failed:\n%s", rep.Summary())
	}
	if rep.InvariantChecks == 0 || rep.Clips == 0 {
		t.Fatalf("run checked nothing: %s", rep.Summary())
	}
	gens := generatorsFor(FamilyTiles)
	if len(gens) != 3 {
		t.Fatalf("tiles family has %d generators, want 3", len(gens))
	}
	for _, g := range gens {
		if g.family != FamilyTiles {
			t.Errorf("filter leaked family %q (%s)", g.family, g.name)
		}
	}
}

// TestUnknownFamilyFails: a typo'd filter must fail the run, not pass it
// vacuously over zero cases.
func TestUnknownFamilyFails(t *testing.T) {
	rep := Run(Config{Seed: 1, Cases: 5, Family: "degnerate"})
	if !rep.Failed() {
		t.Fatalf("unknown family reported a pass:\n%s", rep.Summary())
	}
	if len(rep.Failures) != 1 || rep.Failures[0].Invariant != "unknown-family" {
		t.Fatalf("failures = %+v", rep.Failures)
	}
	if rep.Clips != 0 {
		t.Fatalf("unknown family still ran %d clips", rep.Clips)
	}
}

// TestDegenerateWorkloadsAreDegenerate spot-checks that the taxonomy
// families construct their coincidences exactly: shared edges are
// bit-identical between operands and T-vertices land on edge interiors.
func TestDegenerateWorkloadsAreDegenerate(t *testing.T) {
	gens := generatorsFor(FamilyDegenerate)
	for i := 0; i < 4*len(gens); i++ {
		w := buildWorkloadFrom(11, i, gens)
		if len(w.a) == 0 || len(w.b) == 0 {
			t.Fatalf("case %d (%s): empty operand", i, w.name)
		}
		// Every degenerate operand pair must share at least one exact
		// coordinate value on a common axis line — the defining property of
		// constructed (rather than jittered) degeneracy.
		shared := false
		for _, ra := range w.a {
			for _, pa := range ra {
				for _, rb := range w.b {
					for _, pb := range rb {
						if pa.X == pb.X || pa.Y == pb.Y {
							shared = true
						}
					}
				}
			}
		}
		if !shared {
			t.Errorf("case %d (%s): no exact coordinate coincidence between operands", i, w.name)
		}
	}
	// coincident-ring: B sometimes repeats A's outer ring verbatim.
	verbatim := false
	for i := 0; i < 40; i++ {
		w := buildWorkloadFrom(11, i, generatorsFor("coincident-ring"))
		if polyclip.FormatWKT(polyclip.Polygon{w.a[0]}) == polyclip.FormatWKT(w.b) {
			verbatim = true
			break
		}
	}
	if !verbatim {
		t.Error("coincident-ring never produced a verbatim ring copy in 40 draws")
	}
}

// TestDeterminism: the same seed must reproduce the identical report.
func TestDeterminism(t *testing.T) {
	a := Run(Config{Seed: 7, Cases: 14})
	b := Run(Config{Seed: 7, Cases: 14})
	if a.Summary() != b.Summary() {
		t.Fatalf("same seed, different runs:\n%s\n---\n%s", a.Summary(), b.Summary())
	}
}

// TestWorkloadsAreAdversarial spot-checks generator properties the
// invariants rely on: determinism per (seed, index), and each family
// producing non-empty operands with finite, in-range coordinates.
func TestWorkloadsAreAdversarial(t *testing.T) {
	for i := 0; i < 2*len(generators); i++ {
		w1 := buildWorkload(9, i)
		w2 := buildWorkload(9, i)
		if len(w1.a) == 0 || len(w1.b) == 0 {
			t.Fatalf("case %d (%s): empty operand", i, w1.name)
		}
		if polyclip.FormatWKT(w1.a) != polyclip.FormatWKT(w2.a) ||
			polyclip.FormatWKT(w1.b) != polyclip.FormatWKT(w2.b) {
			t.Fatalf("case %d (%s): generation not deterministic", i, w1.name)
		}
	}
	// The self-touching family must actually self-intersect: each operand's
	// even-odd measure must diverge from its raw shoelace sum. The polygram
	// over-counts its multiply-wound core in shoelace terms; the bowtie's
	// lobes cancel to a shoelace of ~0 while the even-odd measure is two
	// full lobes.
	w := buildWorkload(9, 6) // generators[6] = self-touching
	if w.name != "self-touching" {
		t.Fatalf("generator order changed: got %s", w.name)
	}
	for _, operand := range []struct {
		label string
		p     polyclip.Polygon
	}{{"polygram", w.a}, {"bowtie", w.b}} {
		shoelace := polyclip.Area(operand.p)
		measure := polyclip.Area(polyclip.Clip(operand.p, operand.p, polyclip.Intersection))
		if measure <= 0 {
			t.Fatalf("self-touching %s has empty measure", operand.label)
		}
		if diff := math.Abs(measure - shoelace); diff < 1e-3*measure {
			t.Fatalf("self-touching %s is not self-intersecting: shoelace %g, measure %g",
				operand.label, shoelace, measure)
		}
	}
}
