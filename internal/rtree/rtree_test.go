package rtree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"polyclip/internal/geom"
)

func randomBoxes(rng *rand.Rand, n int, span float64) []geom.BBox {
	boxes := make([]geom.BBox, n)
	for i := range boxes {
		x := rng.Float64() * span
		y := rng.Float64() * span
		boxes[i] = geom.BBox{MinX: x, MinY: y, MaxX: x + rng.Float64()*5, MaxY: y + rng.Float64()*5}
	}
	return boxes
}

func ids(t *Tree, q geom.BBox, boxes []geom.BBox) []int32 {
	var got []int32
	t.SearchFiltered(q, func(id int32) geom.BBox { return boxes[id] }, func(id int32) {
		got = append(got, id)
	})
	sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
	return got
}

func TestEmptyTree(t *testing.T) {
	tr := Build(0, nil)
	if tr.Len() != 0 {
		t.Errorf("len = %d", tr.Len())
	}
	if !tr.Bounds().IsEmpty() {
		t.Error("bounds should be empty")
	}
	tr.Search(geom.BBox{MaxX: 1, MaxY: 1}, func(int32) { t.Error("visited in empty tree") })
}

func TestSingleItem(t *testing.T) {
	boxes := []geom.BBox{{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}}
	tr := Build(1, func(i int32) geom.BBox { return boxes[i] })
	if got := ids(tr, geom.BBox{MinX: 0, MinY: 0, MaxX: 3, MaxY: 3}, boxes); len(got) != 1 {
		t.Errorf("got %v", got)
	}
	if got := ids(tr, geom.BBox{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}, boxes); len(got) != 0 {
		t.Errorf("got %v", got)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{5, 17, 100, 1000, 5000} {
		boxes := randomBoxes(rng, n, 100)
		tr := Build(n, func(i int32) geom.BBox { return boxes[i] })
		if tr.Len() != n {
			t.Fatalf("len = %d", tr.Len())
		}
		for q := 0; q < 20; q++ {
			x := rng.Float64() * 100
			y := rng.Float64() * 100
			query := geom.BBox{MinX: x, MinY: y, MaxX: x + rng.Float64()*20, MaxY: y + rng.Float64()*20}
			var want []int32
			for i, b := range boxes {
				if b.Intersects(query) {
					want = append(want, int32(i))
				}
			}
			got := ids(tr, query, boxes)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d query %d: got %d items want %d", n, q, len(got), len(want))
			}
		}
	}
}

func TestBoundsCoverAll(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	boxes := randomBoxes(rng, 300, 50)
	tr := Build(300, func(i int32) geom.BBox { return boxes[i] })
	root := tr.Bounds()
	for _, b := range boxes {
		if b.MinX < root.MinX || b.MaxX > root.MaxX || b.MinY < root.MinY || b.MaxY > root.MaxY {
			t.Fatal("root bounds do not cover an item")
		}
	}
}

func TestJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	boxesA := randomBoxes(rng, 120, 60)
	boxesB := randomBoxes(rng, 150, 60)
	tr := Build(len(boxesB), func(i int32) geom.BBox { return boxesB[i] })
	got := tr.Join(len(boxesA),
		func(i int32) geom.BBox { return boxesA[i] },
		func(j int32) geom.BBox { return boxesB[j] })
	var want [][2]int32
	for i := range boxesA {
		for j := range boxesB {
			if boxesA[i].Intersects(boxesB[j]) {
				want = append(want, [2]int32{int32(i), int32(j)})
			}
		}
	}
	sortPairs := func(ps [][2]int32) {
		sort.Slice(ps, func(a, b int) bool {
			if ps[a][0] != ps[b][0] {
				return ps[a][0] < ps[b][0]
			}
			return ps[a][1] < ps[b][1]
		})
	}
	sortPairs(got)
	sortPairs(want)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("join: got %d pairs want %d", len(got), len(want))
	}
}

func TestDegenerateIdenticalBoxes(t *testing.T) {
	boxes := make([]geom.BBox, 64)
	for i := range boxes {
		boxes[i] = geom.BBox{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}
	}
	tr := Build(64, func(i int32) geom.BBox { return boxes[i] })
	got := ids(tr, geom.BBox{MinX: 1.5, MinY: 1.5, MaxX: 1.6, MaxY: 1.6}, boxes)
	if len(got) != 64 {
		t.Errorf("got %d, want 64", len(got))
	}
}

// TestJoinVisitMatchesJoin pins that the streaming join and the
// materializing wrapper see the same pairs in the same order — callers that
// bucket pairs as they stream may rely on the order being the old Join
// order exactly.
func TestJoinVisitMatchesJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	boxesA := randomBoxes(rng, 200, 70)
	boxesB := randomBoxes(rng, 170, 70)
	tr := Build(len(boxesB), func(i int32) geom.BBox { return boxesB[i] })
	boxA := func(i int32) geom.BBox { return boxesA[i] }
	boxB := func(j int32) geom.BBox { return boxesB[j] }
	want := tr.Join(len(boxesA), boxA, boxB)
	var got [][2]int32
	tr.JoinVisit(len(boxesA), boxA, boxB, func(i, j int32) {
		got = append(got, [2]int32{i, j})
	})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("JoinVisit: %d pairs in a different order/set than Join's %d", len(got), len(want))
	}
}

// TestJoinVisitAllocs is the allocation regression pin: the streaming join
// must cost a constant number of allocations (the reused traversal stack)
// no matter how many items or candidate pairs flow through it, so that
// million-feature joins never materialize per-pair state. It also pins that
// rewriting Join on top of JoinVisit left Join's own profile append-only:
// allocations grow with the output slice only.
func TestJoinVisitAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	boxesA := randomBoxes(rng, 500, 80)
	boxesB := randomBoxes(rng, 500, 80)
	tr := Build(len(boxesB), func(i int32) geom.BBox { return boxesB[i] })
	boxA := func(i int32) geom.BBox { return boxesA[i] }
	boxB := func(j int32) geom.BBox { return boxesB[j] }
	var pairs int
	visit := func(i, j int32) { pairs++ }
	allocs := testing.AllocsPerRun(10, func() {
		tr.JoinVisit(len(boxesA), boxA, boxB, visit)
	})
	if pairs == 0 {
		t.Fatal("join produced no pairs; the alloc measurement is vacuous")
	}
	if allocs > 2 {
		t.Errorf("JoinVisit allocates %.1f objects/run, want <= 2 (stack only)", allocs)
	}
	// The Join wrapper may only add the output slice's growth.
	out := tr.Join(len(boxesA), boxA, boxB)
	joinAllocs := testing.AllocsPerRun(10, func() {
		out = out[:0]
		tr.JoinVisit(len(boxesA), boxA, boxB, func(i, j int32) {
			out = append(out, [2]int32{i, j})
		})
	})
	if joinAllocs > 3 {
		t.Errorf("Join path allocates %.1f objects/run over a warm buffer, want <= 3", joinAllocs)
	}
}

// TestSearchRectMatchesSearch pins that the window query returns exactly the
// ids Search visits, in the same order — SearchRect is Search minus the
// callback, nothing more.
func TestSearchRectMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	boxes := randomBoxes(rng, 800, 90)
	tr := Build(len(boxes), func(i int32) geom.BBox { return boxes[i] })
	var buf []int32
	for q := 0; q < 50; q++ {
		x := rng.Float64() * 90
		y := rng.Float64() * 90
		query := geom.BBox{MinX: x, MinY: y, MaxX: x + rng.Float64()*25, MaxY: y + rng.Float64()*25}
		var want []int32
		tr.Search(query, func(id int32) { want = append(want, id) })
		buf = tr.SearchRect(query, buf[:0])
		if len(buf) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(append([]int32{}, buf...), want) {
			t.Fatalf("query %d: SearchRect returned %d ids, Search visited %d", q, len(buf), len(want))
		}
	}
	// Empty tree: no-op, buffer unchanged.
	if got := Build(0, nil).SearchRect(geom.BBox{MaxX: 1, MaxY: 1}, nil); got != nil {
		t.Errorf("empty tree returned %v", got)
	}
}

// TestSearchRectAllocs mirrors TestJoinVisitAllocs for the window query: over
// a warm reused buffer, a query must allocate nothing at all — the tile
// pipeline runs one query per tile, and tiles come by the million.
func TestSearchRectAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	boxes := randomBoxes(rng, 600, 80)
	tr := Build(len(boxes), func(i int32) geom.BBox { return boxes[i] })
	query := geom.BBox{MinX: 10, MinY: 10, MaxX: 60, MaxY: 60}
	buf := tr.SearchRect(query, nil)
	if len(buf) == 0 {
		t.Fatal("query returned no candidates; the alloc measurement is vacuous")
	}
	allocs := testing.AllocsPerRun(10, func() {
		buf = tr.SearchRect(query, buf[:0])
	})
	if allocs != 0 {
		t.Errorf("SearchRect allocates %.1f objects/run over a warm buffer, want 0", allocs)
	}
}
