package vatti

import (
	"math"
	"testing"

	"polyclip/internal/geom"
)

// Regression tests for chaos-found failure families. Each case in this file
// reproduces a geometry class on which the pre-arrangement Vatti sweep
// disagreed with the overlay engine (or crashed): near-collinear fans whose
// intersections its absolute epsilon collapsed, self-intersecting rings it
// walked by ring parity instead of even-odd measure, and shared-vertex
// meshes with degenerate vertex-on-vertex incidences. Expectations are
// hand-computed, not engine-derived, so these stay valid oracles even if
// every engine shares a bug.

// fanPair builds the near-collinear fan operands: an upward triangle
// A = (0,0),(20,0),(10,8) and a downward triangle B = (0,4),(20,4),(10,-4),
// whose bases are chains of n sub-edges with deterministic alternating
// vertical jitter j — each base vertex is collinear with its neighbours to
// within j/span ≈ 1e-9 relative, the regime where the old absolute-epsilon
// collinearity test misclassified crossings.
func fanPair(n int, j float64) (a, b geom.Polygon) {
	base := func(y0 float64) geom.Ring {
		r := make(geom.Ring, 0, n+2)
		for i := 0; i <= n; i++ {
			jit := j
			if i%2 == 1 {
				jit = -j
			}
			if i == 0 || i == n {
				jit = 0 // exact corners keep the hand-computed area valid
			}
			r = append(r, geom.Point{X: 20 * float64(i) / float64(n), Y: y0 + jit})
		}
		return r
	}
	ra := append(base(0), geom.Point{X: 10, Y: 8})
	rb := append(base(4), geom.Point{X: 10, Y: -4})
	return geom.Polygon{ra}, geom.Polygon{rb}
}

// checkAreaRel is checkArea with a purely relative tolerance, required when
// coordinate scales make the absolute `1+want` floor meaningless.
func checkAreaRel(t *testing.T, name string, subj, clip geom.Polygon, op Op, want float64) geom.Polygon {
	t.Helper()
	got := Clip(subj, clip, op)
	if a := got.Area(); math.Abs(a-want) > 1e-6*want {
		t.Errorf("%s: area = %v, want %v (rings=%d)", name, a, want, len(got))
	}
	return got
}

func TestNearCollinearFans(t *testing.T) {
	// With the jitter idealized away, A∩B is the hexagonal band
	// max(0, 4-0.8·min(x,20-x)) ≤ y ≤ min(4, 0.8·min(x,20-x)) of area 50;
	// |A| = |B| = 80 gives union 110, difference 30, xor 60. The 1e-8
	// jitter moves each area by at most 20·1e-8 = 2e-7, far inside the
	// 1e-6·(1+want) tolerance.
	for _, n := range []int{10, 25, 40} {
		a, b := fanPair(n, 1e-8)
		checkArea(t, "fan ∩", a, b, Intersection, 50)
		checkArea(t, "fan ∪", a, b, Union, 110)
		checkArea(t, "fan −", a, b, Difference, 30)
		checkArea(t, "fan ⊕", a, b, Xor, 60)
	}
}

func TestBowtieUnion(t *testing.T) {
	bt := geom.Polygon{{
		{X: -1, Y: -1}, {X: 1, Y: 1}, {X: 1, Y: -1}, {X: -1, Y: 1},
	}}
	// The even-odd region of the bowtie is its two lobe triangles, each of
	// area ½·2·1 = 1; the union with itself is that same region.
	got := checkArea(t, "bowtie ∪ bowtie", bt, bt, Union, 2)
	if len(got) != 2 {
		t.Errorf("bowtie union has %d rings, want 2 (one per lobe)", len(got))
	}
	checkArea(t, "bowtie − bowtie", bt, bt, Difference, 0)
}

func TestPentagramSelfIntersection(t *testing.T) {
	// {5/2} star on circumradius 10: even-odd keeps the five tip triangles
	// and excludes the doubly-wound inner pentagon (see the area formula
	// derivation in internal/arrange's tests).
	r := 10.0
	ring := make(geom.Ring, 0, 5)
	for i := 0; i < 5; i++ {
		ang := math.Pi/2 + 2*math.Pi*float64(i*2%5)/5
		ring = append(ring, geom.Point{X: r * math.Cos(ang), Y: r * math.Sin(ang)})
	}
	p := geom.Polygon{ring}
	ri := r * math.Cos(2*math.Pi/5) / math.Cos(math.Pi/5)
	want := 5*r*ri*math.Sin(math.Pi/5) - (5.0/2)*ri*ri*math.Sin(2*math.Pi/5)
	got := checkAreaRel(t, "pentagram ∩ pentagram", p, p, Intersection, want)
	if len(got) != 5 {
		t.Errorf("pentagram resolves to %d rings, want 5 (one per tip)", len(got))
	}
}

func TestSharedVertexCheckerboard(t *testing.T) {
	// 3×3 checkerboard split between the operands: A holds the 5 cells with
	// even i+j, B the other 4. Every interior corner is a degenerate
	// vertex-on-vertex intersection of the operands; the cells share no
	// area, so ∩ is empty, ∪ and ⊕ are the full 9-cell square, and − is A.
	cell := func(i, j int) geom.Ring {
		x, y := float64(i), float64(j)
		return geom.Ring{{X: x, Y: y}, {X: x + 1, Y: y}, {X: x + 1, Y: y + 1}, {X: x, Y: y + 1}}
	}
	var a, b geom.Polygon
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if (i+j)%2 == 0 {
				a = append(a, cell(i, j))
			} else {
				b = append(b, cell(i, j))
			}
		}
	}
	if got := Clip(a, b, Intersection); got.Area() != 0 {
		t.Errorf("checkerboard ∩ area = %v, want 0", got.Area())
	}
	checkArea(t, "checkerboard ∪", a, b, Union, 9)
	checkArea(t, "checkerboard −", a, b, Difference, 5)
	checkArea(t, "checkerboard ⊕", a, b, Xor, 9)
}

func TestExtremeCoordinateScales(t *testing.T) {
	// The engine's tolerances must be relative: the same overlapping-squares
	// arrangement has to clip identically at any coordinate scale. 2^±332
	// keeps the scaling itself exact in float64.
	for _, s := range []float64{math.Ldexp(1, 332), 1, math.Ldexp(1, -332)} {
		a := geom.RectPolygon(0, 0, 4*s, 4*s)
		b := geom.RectPolygon(2*s, 2*s, 6*s, 6*s)
		checkAreaRel(t, "scaled ∩", a, b, Intersection, 4*s*s)
		checkAreaRel(t, "scaled ∪", a, b, Union, 28*s*s)
		checkAreaRel(t, "scaled −", a, b, Difference, 12*s*s)
		checkAreaRel(t, "scaled ⊕", a, b, Xor, 24*s*s)
	}
}
