package polyclip

import (
	"context"
	"io"

	"polyclip/internal/batch"
)

// BatchOptions configures the batch overlay (OverlayBatchCtx): the
// million-feature streaming pipeline with spatial-join bucketing, parallel
// per-bucket clips, and the arrangement cache.
type BatchOptions struct {
	// Rule is the fill rule for every per-pair clip (default EvenOdd).
	Rule FillRule
	// Engine names the registry engine clipping each pair; "" means the
	// sequential reference ("vatti").
	Engine string
	// Threads bounds worker parallelism; <= 0 means all available CPUs.
	Threads int
	// Buckets is the spatial bucket count; <= 0 derives 4 per thread.
	Buckets int
	// NoCache disables the arrangement cache (every pair resolves and clips
	// from scratch). By default the process-wide shared cache is used, so
	// repeated operands across calls — shared basemaps, common clip masks —
	// are resolved once.
	NoCache bool
	// NoFallback disables the per-pair engine rescue, surfacing the first
	// pair failure directly.
	NoFallback bool
}

// BatchOutput is one non-empty per-pair result of a batch overlay: feature
// A[i] op B[j]. Outputs arrive sorted by (A, B) — a canonical order that
// makes results bit-identical regardless of thread count or scheduling.
type BatchOutput = batch.Output

// BatchStats reports a batch overlay run's shape and cost, including the
// arrangement cache's hit/miss/bytes delta for the run.
type BatchStats = batch.Stats

// OverlayBatchCtx streams two feature layers from r A and B — each WKT (one
// geometry per line) or GeoJSON (FeatureCollection or newline-delimited) —
// and clips every candidate feature pair: the scalable batch form of
// OverlayLayers. Candidate pairs come from a streaming R-tree MBR join,
// grouped into spatial buckets and fanned out over the work-stealing pool;
// repeated operands hit the arrangement cache instead of re-resolving.
func OverlayBatchCtx(ctx context.Context, a, b io.Reader, op Op, opt BatchOptions) ([]BatchOutput, *BatchStats, error) {
	fa, err := batch.ReadFeatures(a)
	if err != nil {
		return nil, nil, err
	}
	fb, err := batch.ReadFeatures(b)
	if err != nil {
		return nil, nil, err
	}
	return OverlayBatchLayersCtx(ctx, Layer(fa), Layer(fb), op, opt)
}

// OverlayBatchLayersCtx is OverlayBatchCtx over already-parsed layers.
func OverlayBatchLayersCtx(ctx context.Context, a, b Layer, op Op, opt BatchOptions) ([]BatchOutput, *BatchStats, error) {
	return batch.Overlay(ctx, a, b, op, batch.Options{
		Rule:       opt.Rule,
		Engine:     opt.Engine,
		Threads:    opt.Threads,
		Buckets:    opt.Buckets,
		NoCache:    opt.NoCache,
		NoFallback: opt.NoFallback,
	})
}
