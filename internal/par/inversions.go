package par

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// InvPair is one inversion: positions i < j in the input slice whose values
// are out of order (xs[i] > xs[j]). When the input is the bottom-scanline
// order of edges ranked by their top-scanline order, each inversion is a
// pair of edges that cross inside the scanbeam (paper Fig. 4).
type InvPair struct {
	I, J int
}

// invScratch is the reusable working storage of the inversion mergesorts.
// The scanbeam engines count/report inversions once per beam, so without
// reuse the two O(n) temporaries dominate the sweep's allocation profile.
type invScratch struct {
	work, buf []int
	elems     []invElem
	ebuf      []invElem
}

var invPool = sync.Pool{New: func() any { return new(invScratch) }}

func (s *invScratch) ints(n int) (work, buf []int) {
	if cap(s.work) < n {
		s.work = make([]int, n)
		s.buf = make([]int, n)
	}
	return s.work[:n], s.buf[:n]
}

func (s *invScratch) elemBufs(n int) (elems, ebuf []invElem) {
	if cap(s.elems) < n {
		s.elems = make([]invElem, n)
		s.ebuf = make([]invElem, n)
	}
	return s.elems[:n], s.ebuf[:n]
}

// invElem carries a value together with its original position through the
// reporting mergesort.
type invElem struct{ v, pos int }

// invSerialBase is the subproblem size handed to the insertion-counting base
// case: below it, binary-splitting recursion costs more than one quadratic
// pass that counts each element's shift distance.
const invSerialBase = 48

// CountInversions returns the number of inversions in xs using the extended
// mergesort of Lemma 4: O(n log n) time, O(n) extra space. xs is not
// modified. Equal values are not inversions.
func CountInversions(xs []int) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	s := invPool.Get().(*invScratch)
	work, buf := s.ints(n)
	copy(work, xs)
	inv := countRec(work, buf)
	invPool.Put(s)
	return inv
}

func countRec(xs, buf []int) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	if n <= invSerialBase {
		return countInsertion(xs)
	}
	mid := n / 2
	inv := countRec(xs[:mid], buf[:mid]) + countRec(xs[mid:], buf[mid:])
	inv += countMerge(xs[:mid], xs[mid:], buf)
	copy(xs, buf)
	return inv
}

// countInsertion sorts xs in place by insertion, counting inversions as
// shift distances: element i shifts past exactly the earlier elements
// greater than it. Stable, so equal values are never counted.
func countInsertion(xs []int) int64 {
	var inv int64
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
		inv += int64(i - 1 - j)
	}
	return inv
}

// countMerge merges sorted halves a, b into dst, returning the number of
// cross inversions: whenever b[j] is emitted while elements of a remain,
// every remaining a element forms an inversion with it (the paper's
// "A_l[i] > A_r[j] ⇒ A_l[i..mid] all exceed A_r[j]" argument).
func countMerge(a, b, dst []int) int64 {
	var inv int64
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j] < a[i] {
			inv += int64(len(a) - i)
			dst[k] = b[j]
			j++
		} else {
			dst[k] = a[i]
			i++
		}
		k++
	}
	for i < len(a) {
		dst[k] = a[i]
		i++
		k++
	}
	for j < len(b) {
		dst[k] = b[j]
		j++
		k++
	}
	return inv
}

// ParallelCountInversions counts inversions with parallelism p: the two
// halves are counted concurrently (recursively), cross inversions during the
// final merges sequentially per node. Work O(n log n), depth O(log² n).
func ParallelCountInversions(xs []int, p int) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	p = normalize(p)
	s := invPool.Get().(*invScratch)
	defer invPool.Put(s)
	work, buf := s.ints(n)
	copy(work, xs)
	return countRecPar(work, buf, depthFor(p))
}

func countRecPar(xs, buf []int, depth int) int64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	if depth == 0 || n <= sortSerialCutoff {
		return countRec(xs, buf)
	}
	mid := n / 2
	var left, right int64
	join2(
		func() { left = countRecPar(xs[:mid], buf[:mid], depth-1) },
		func() { right = countRecPar(xs[mid:], buf[mid:], depth-1) },
	)
	inv := left + right + countMerge(xs[:mid], xs[mid:], buf)
	copy(xs, buf)
	return inv
}

// ReportInversions returns every inversion of xs as an (i, j) position pair
// with i < j and xs[i] > xs[j]. Following the paper's two-phase,
// output-sensitive scheme, it first counts the inversions, allocates exactly
// that much space ("allocating K additional processors"), then re-runs the
// merge recording each pair. The output order groups pairs by merge node,
// as in Table I.
func ReportInversions(xs []int) []InvPair {
	total := CountInversions(xs)
	out := make([]InvPair, 0, total)

	n := len(xs)
	if n < 2 {
		return out
	}
	// Track original positions through the sort.
	s := invPool.Get().(*invScratch)
	defer invPool.Put(s)
	work, buf := s.elemBufs(n)
	for i, v := range xs {
		work[i] = invElem{v, i}
	}

	var rec func(w, b []invElem)
	rec = func(w, b []invElem) {
		if len(w) < 2 {
			return
		}
		mid := len(w) / 2
		rec(w[:mid], b[:mid])
		rec(w[mid:], b[mid:])
		a, r := w[:mid], w[mid:]
		i, j, k := 0, 0, 0
		for i < len(a) && j < len(r) {
			if r[j].v < a[i].v {
				for t := i; t < len(a); t++ {
					pi, pj := a[t].pos, r[j].pos
					if pi > pj {
						pi, pj = pj, pi
					}
					out = append(out, InvPair{pi, pj})
				}
				b[k] = r[j]
				j++
			} else {
				b[k] = a[i]
				i++
			}
			k++
		}
		for i < len(a) {
			b[k] = a[i]
			i++
			k++
		}
		for j < len(r) {
			b[k] = r[j]
			j++
			k++
		}
		copy(w, b)
	}
	rec(work, buf)
	return out
}

// ParallelReportInversions reports all inversions with parallelism p. Each
// recursive half is processed concurrently into its own buffer; results are
// concatenated. The pair set is identical to ReportInversions up to order.
func ParallelReportInversions(xs []int, p int) []InvPair {
	n := len(xs)
	if n < 2 {
		return nil
	}
	p = normalize(p)
	s := invPool.Get().(*invScratch)
	defer invPool.Put(s)
	work, buf := s.elemBufs(n)
	for i, v := range xs {
		work[i] = invElem{v, i}
	}

	var rec func(w, b []invElem, depth int) []InvPair
	rec = func(w, b []invElem, depth int) []InvPair {
		if len(w) < 2 {
			return nil
		}
		mid := len(w) / 2
		var left []InvPair
		if depth > 0 && len(w) > sortSerialCutoff {
			var right []InvPair
			join2(
				func() { left = rec(w[:mid], b[:mid], depth-1) },
				func() { right = rec(w[mid:], b[mid:], depth-1) },
			)
			left = append(left, right...)
		} else {
			left = rec(w[:mid], b[:mid], 0)
			left = append(left, rec(w[mid:], b[mid:], 0)...)
		}
		a, r := w[:mid], w[mid:]
		i, j, k := 0, 0, 0
		for i < len(a) && j < len(r) {
			if r[j].v < a[i].v {
				for t := i; t < len(a); t++ {
					pi, pj := a[t].pos, r[j].pos
					if pi > pj {
						pi, pj = pj, pi
					}
					left = append(left, InvPair{pi, pj})
				}
				b[k] = r[j]
				j++
			} else {
				b[k] = a[i]
				i++
			}
			k++
		}
		for i < len(a) {
			b[k] = a[i]
			i++
			k++
		}
		for j < len(r) {
			b[k] = r[j]
			j++
			k++
		}
		copy(w, b)
		return left
	}
	return rec(work, buf, depthFor(p))
}

// MergeStep is one time step of merging two sorted sublists in an internal
// node of the merge tree, with the inversion pairs (by value) detected at
// that step — the faithful rendition of the paper's Table I.
type MergeStep struct {
	Compared   [2]int   // A_l[i], A_r[j] compared at this step
	Emitted    int      // value moved to the merged output
	Inversions [][2]int // (A_l value, A_r value) pairs reported, if any
}

// MergeTrace merges the sorted sublists al and ar, recording each time step
// and the inversion pairs reported. Used to regenerate Table I.
func MergeTrace(al, ar []int) []MergeStep {
	var steps []MergeStep
	i, j := 0, 0
	for i < len(al) && j < len(ar) {
		st := MergeStep{Compared: [2]int{al[i], ar[j]}}
		if ar[j] < al[i] {
			for t := i; t < len(al); t++ {
				st.Inversions = append(st.Inversions, [2]int{al[t], ar[j]})
			}
			st.Emitted = ar[j]
			j++
		} else {
			st.Emitted = al[i]
			i++
		}
		steps = append(steps, st)
	}
	for i < len(al) {
		steps = append(steps, MergeStep{Compared: [2]int{al[i], -1}, Emitted: al[i]})
		i++
	}
	for j < len(ar) {
		steps = append(steps, MergeStep{Compared: [2]int{-1, ar[j]}, Emitted: ar[j]})
		j++
	}
	return steps
}

// FormatMergeTrace renders a MergeTrace as a table in the style of Table I.
func FormatMergeTrace(steps []MergeStep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-5s %-14s %-10s %s\n", "Step", "Comparison", "Emitted", "Inversions reported")
	for i, st := range steps {
		var inv []string
		for _, p := range st.Inversions {
			inv = append(inv, fmt.Sprintf("(%d,%d)", p[0], p[1]))
		}
		fmt.Fprintf(&b, "%-5d (%d,%d)%-7s %-10d %s\n", i+1, st.Compared[0], st.Compared[1], "", st.Emitted, strings.Join(inv, " "))
	}
	return b.String()
}

// BruteForceInversions counts inversions in O(n²); test oracle.
func BruteForceInversions(xs []int) int64 {
	var inv int64
	for i := 0; i < len(xs); i++ {
		for j := i + 1; j < len(xs); j++ {
			if xs[i] > xs[j] {
				inv++
			}
		}
	}
	return inv
}

// RanksOf returns, for each value in order, its rank (position) in the
// sorted order of values. Values must be distinct. Inversions of the rank
// sequence of list B relative to list A equal the pairs whose relative order
// differs between A and B — the bottom/top scanline orders of Fig. 4.
func RanksOf(values []int) []int {
	idx := make([]int, len(values))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] < values[idx[b]] })
	ranks := make([]int, len(values))
	for r, i := range idx {
		ranks[i] = r
	}
	return ranks
}
