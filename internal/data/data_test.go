package data

import (
	"math"
	"math/rand"
	"testing"

	"polyclip/internal/geom"
	"polyclip/internal/overlay"
)

func TestJitteredPolygonSimple(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(40)
		ring := JitteredPolygon(rng, geom.Point{X: 0, Y: 0}, 5, 10, n)
		if len(ring) != n {
			t.Fatalf("edges = %d, want %d", len(ring), n)
		}
		// Star-shaped rings must be simple: no proper edge crossings.
		edges := ring.Edges(nil)
		for i := range edges {
			for j := i + 1; j < len(edges); j++ {
				if geom.SegmentsCross(edges[i], edges[j]) {
					t.Fatalf("trial %d: self-intersection", trial)
				}
			}
		}
		if ring.Area() <= 0 {
			t.Fatal("degenerate ring")
		}
	}
}

func TestJitteredPolygonMinVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if got := len(JitteredPolygon(rng, geom.Point{}, 1, 2, 1)); got != 3 {
		t.Errorf("n clamped to %d, want 3", got)
	}
}

func TestSyntheticPairOverlaps(t *testing.T) {
	subject, clip := SyntheticPair(7, 500, 300)
	if subject.NumVertices() != 500 || clip.NumVertices() != 300 {
		t.Errorf("sizes: %d %d", subject.NumVertices(), clip.NumVertices())
	}
	inter := overlay.Clip(subject, clip, overlay.Intersection, overlay.Options{})
	if inter.Area() <= 0 {
		t.Error("synthetic pair does not overlap")
	}
}

func TestSyntheticPairDeterministic(t *testing.T) {
	a1, _ := SyntheticPair(9, 100, 100)
	a2, _ := SyntheticPair(9, 100, 100)
	if a1[0][0] != a2[0][0] || a1[0][50] != a2[0][50] {
		t.Error("same seed produced different polygons")
	}
	b1, _ := SyntheticPair(10, 100, 100)
	if a1[0][0] == b1[0][0] {
		t.Error("different seeds produced identical polygons")
	}
}

func TestSelfIntersectingPair(t *testing.T) {
	subject, clip := SelfIntersectingPair(3, 9)
	edges := subject.Edges()
	crossings := 0
	for i := range edges {
		for j := i + 1; j < len(edges); j++ {
			if geom.SegmentsCross(edges[i], edges[j]) {
				crossings++
			}
		}
	}
	if crossings == 0 {
		t.Error("subject is not self-intersecting")
	}
	if clip.NumVertices() == 0 {
		t.Error("empty clip")
	}
	// Even n is bumped to odd so the stride-2 star closes through all
	// vertices.
	s2, _ := SelfIntersectingPair(3, 8)
	if s2.NumVertices()%2 == 0 {
		t.Errorf("even vertex count %d", s2.NumVertices())
	}
}

func TestLayerMatchesDescriptorScaled(t *testing.T) {
	d := TableIII[0]
	layer := Layer(d, 0.01, 42)
	st := Stats(layer)
	wantPolys := int(float64(d.Polys) * 0.01)
	if st.Polys != wantPolys {
		t.Errorf("polys = %d, want %d", st.Polys, wantPolys)
	}
	wantEdges := float64(d.Edges) * 0.01
	if math.Abs(float64(st.Edges)-wantEdges) > 0.25*wantEdges {
		t.Errorf("edges = %d, want ~%v", st.Edges, wantEdges)
	}
	// Mean edge length within a factor of 3 of the descriptor (the
	// lognormal reshaping spreads it).
	if st.MeanEdgeLen < d.MeanEdgeLen/3 || st.MeanEdgeLen > d.MeanEdgeLen*3 {
		t.Errorf("mean edge length = %v, want ~%v", st.MeanEdgeLen, d.MeanEdgeLen)
	}
}

func TestLayerFeaturesAreSimplePolygons(t *testing.T) {
	layer := Layer(TableIII[1], 0.005, 11)
	for fi, f := range layer {
		if len(f) != 1 || len(f[0]) < 3 {
			t.Fatalf("feature %d malformed", fi)
		}
		if f.Area() <= 0 {
			t.Fatalf("feature %d degenerate", fi)
		}
	}
}

func TestLayerHeavyTail(t *testing.T) {
	layer := Layer(TableIII[1], 0.05, 13)
	sizes := make([]int, len(layer))
	maxSize, sum := 0, 0
	for i, f := range layer {
		sizes[i] = f.NumVertices()
		sum += sizes[i]
		if sizes[i] > maxSize {
			maxSize = sizes[i]
		}
	}
	mean := float64(sum) / float64(len(sizes))
	if float64(maxSize) < 3*mean {
		t.Errorf("no heavy tail: max=%d mean=%v", maxSize, mean)
	}
}

func TestDescriptorByName(t *testing.T) {
	if _, ok := DescriptorByName("ne_10m_urban_areas"); !ok {
		t.Error("urban areas descriptor missing")
	}
	if _, ok := DescriptorByName("nope"); ok {
		t.Error("bogus name found")
	}
}

func TestOverlapLayerProducesOverlaps(t *testing.T) {
	layer := Layer(TableIII[0], 0.005, 17)
	other := OverlapLayer(layer, 18)
	if len(other) != len(layer) {
		t.Fatalf("size mismatch")
	}
	overlaps := 0
	for i := range layer {
		if layer[i].BBox().Intersects(other[i].BBox()) {
			overlaps++
		}
	}
	if overlaps < len(layer)/2 {
		t.Errorf("only %d/%d features overlap their counterpart", overlaps, len(layer))
	}
}

func TestStatsEmpty(t *testing.T) {
	st := Stats(nil)
	if st.Polys != 0 || st.Edges != 0 || st.MeanEdgeLen != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestInterleavedPairManyCrossings(t *testing.T) {
	subject, clip := InterleavedPair(3, 120)
	edges := append(subject.Edges(), clip.Edges()...)
	crossings := 0
	for i := range edges {
		for j := i + 1; j < len(edges); j++ {
			if geom.SegmentsCross(edges[i], edges[j]) {
				crossings++
			}
		}
	}
	if crossings < 30 {
		t.Errorf("crossings = %d, want Θ(n)", crossings)
	}
	// Both operands simple on their own (star-shaped).
	if !subject[0].IsSimple() || !clip[0].IsSimple() {
		t.Error("operands should be simple")
	}
	// Clamps small n.
	s2, _ := InterleavedPair(3, 2)
	if s2.NumVertices() < 8 {
		t.Errorf("n clamp failed: %d", s2.NumVertices())
	}
}
