package ringstitch

import (
	"math"
	"testing"

	"polyclip/internal/geom"
)

func edgesOfCCWRect(minX, minY, maxX, maxY float64) []Edge {
	r := geom.Rect(minX, minY, maxX, maxY)
	var out []Edge
	for i := range r {
		j := (i + 1) % len(r)
		out = append(out, Edge{r[i], r[j]})
	}
	return out
}

func TestStitchSingleSquare(t *testing.T) {
	got := Stitch(edgesOfCCWRect(0, 0, 2, 2))
	if len(got) != 1 {
		t.Fatalf("rings = %d", len(got))
	}
	if a := got[0].SignedArea(); math.Abs(a-4) > 1e-12 {
		t.Errorf("signed area = %v, want 4 (CCW)", a)
	}
}

func TestStitchShuffledEdges(t *testing.T) {
	es := edgesOfCCWRect(0, 0, 2, 2)
	es[0], es[2] = es[2], es[0]
	es[1], es[3] = es[3], es[1]
	got := Stitch(es)
	if len(got) != 1 || math.Abs(got[0].Area()-4) > 1e-12 {
		t.Fatalf("got %v", got)
	}
}

func TestStitchTwoDisjointSquares(t *testing.T) {
	es := append(edgesOfCCWRect(0, 0, 1, 1), edgesOfCCWRect(5, 5, 6, 6)...)
	got := Stitch(es)
	if len(got) != 2 {
		t.Fatalf("rings = %d", len(got))
	}
}

func TestStitchSquareWithHole(t *testing.T) {
	es := edgesOfCCWRect(0, 0, 10, 10)
	// Hole: clockwise square (interior of region is OUTSIDE the hole, i.e.
	// on the left when walking CW).
	hole := geom.Rect(3, 3, 7, 7)
	for i := len(hole) - 1; i >= 0; i-- {
		j := (i + len(hole) - 1) % len(hole)
		es = append(es, Edge{hole[i], hole[j]})
	}
	got := Stitch(es)
	if len(got) != 2 {
		t.Fatalf("rings = %d", len(got))
	}
	var sum float64
	for _, r := range got {
		sum += r.SignedArea()
	}
	if math.Abs(sum-84) > 1e-12 {
		t.Errorf("net area = %v, want 84", sum)
	}
}

func TestStitchCornerTouchingSquares(t *testing.T) {
	// Two CCW squares sharing one corner: the clockwise-first rule must
	// keep them as two simple rings, not one figure-eight.
	es := append(edgesOfCCWRect(0, 0, 2, 2), edgesOfCCWRect(2, 2, 4, 4)...)
	got := Stitch(es)
	if len(got) != 2 {
		t.Fatalf("rings = %d, want 2", len(got))
	}
	for _, r := range got {
		if math.Abs(r.Area()-4) > 1e-12 {
			t.Errorf("ring area = %v, want 4", r.Area())
		}
		if len(r) != 4 {
			t.Errorf("ring has %d vertices, want 4", len(r))
		}
	}
}

func TestStitchDropsOpenChains(t *testing.T) {
	es := []Edge{
		{geom.Point{X: 0, Y: 0}, geom.Point{X: 1, Y: 0}},
		{geom.Point{X: 1, Y: 0}, geom.Point{X: 1, Y: 1}},
		// not closed
	}
	if got := Stitch(es); got != nil {
		t.Errorf("open chain produced rings: %v", got)
	}
}

func TestStitchEmpty(t *testing.T) {
	if got := Stitch(nil); got != nil {
		t.Errorf("Stitch(nil) = %v", got)
	}
}

func TestCancelOpposites(t *testing.T) {
	a := geom.Point{X: 0, Y: 0}
	b := geom.Point{X: 1, Y: 0}
	c := geom.Point{X: 2, Y: 0}
	es := []Edge{{a, b}, {b, a}, {b, c}}
	got := CancelOpposites(es)
	if len(got) != 1 || got[0] != (Edge{b, c}) {
		t.Errorf("got %v", got)
	}
}

func TestCancelOppositesKeepsMultiplicity(t *testing.T) {
	a := geom.Point{X: 0, Y: 0}
	b := geom.Point{X: 1, Y: 0}
	es := []Edge{{a, b}, {a, b}, {b, a}}
	got := CancelOpposites(es)
	if len(got) != 1 || got[0] != (Edge{a, b}) {
		t.Errorf("got %v", got)
	}
}

func TestCancelThenStitchSeam(t *testing.T) {
	// Two stacked rectangles whose shared horizontal seam cancels, fusing
	// them into one ring of area 8.
	es := append(edgesOfCCWRect(0, 0, 2, 2), edgesOfCCWRect(0, 2, 2, 4)...)
	got := Stitch(CancelOpposites(es))
	if len(got) != 1 {
		t.Fatalf("rings = %d, want 1", len(got))
	}
	if math.Abs(got[0].Area()-8) > 1e-12 {
		t.Errorf("area = %v, want 8", got[0].Area())
	}
}

func TestDropSlivers(t *testing.T) {
	p := geom.Polygon{
		geom.Rect(0, 0, 10, 10),
		geom.Rect(0, 0, 1e-13, 1e-13),
	}
	got := DropSlivers(p)
	if len(got) != 1 {
		t.Errorf("rings = %d, want 1", len(got))
	}
	if DropSlivers(nil) != nil {
		t.Error("DropSlivers(nil) should be nil")
	}
}
