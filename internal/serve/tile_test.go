package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func postTile(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/tile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /tile: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /tile response: %v", err)
	}
	return resp, raw
}

func tileBody(t *testing.T, extra map[string]any) []byte {
	t.Helper()
	m := map[string]any{
		"layer":   `POLYGON ((0 0, 16 0, 16 16, 0 16, 0 0), (6 6, 10 6, 10 10, 6 10, 6 6))`,
		"minZoom": 0,
		"maxZoom": 3,
		"extent":  []float64{0, 0, 16, 16},
	}
	for k, v := range extra {
		m[k] = v
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTileEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postTile(t, ts.URL, tileBody(t, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var tr TileResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if tr.Count == 0 || len(tr.Tiles) != tr.Count {
		t.Fatalf("count %d with %d tiles", tr.Count, len(tr.Tiles))
	}
	// Zoom 0 covers the layer in one tile; the hole means it straddles.
	if tl := tr.Tiles[0]; tl.Z != 0 || tl.X != 0 || tl.Y != 0 || len(tl.Geometry) == 0 {
		t.Errorf("first tile = %+v", tl)
	}
	// Sorted (z, x, y) and within grid bounds.
	for i, tl := range tr.Tiles {
		n := int32(1) << uint(tl.Z)
		if tl.X < 0 || tl.X >= n || tl.Y < 0 || tl.Y >= n {
			t.Errorf("tile %d out of grid: %+v", i, tl)
		}
		if i > 0 {
			p := tr.Tiles[i-1]
			if p.Z > tl.Z || (p.Z == tl.Z && (p.X > tl.X || (p.X == tl.X && p.Y >= tl.Y))) {
				t.Errorf("tiles not sorted at %d: %+v then %+v", i, p, tl)
			}
		}
	}
	if tr.Stats == nil || tr.Stats.Tiles != int64(tr.Count) {
		t.Errorf("stats missing or inconsistent: %+v", tr.Stats)
	}
}

// TestTileEndpointNaiveAgrees: the naive knob serves the same tile keys.
func TestTileEndpointNaiveAgrees(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, fastRaw := postTile(t, ts.URL, tileBody(t, nil))
	_, naiveRaw := postTile(t, ts.URL, tileBody(t, map[string]any{"naive": true}))
	var fast, naive TileResponse
	if err := json.Unmarshal(fastRaw, &fast); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(naiveRaw, &naive); err != nil {
		t.Fatal(err)
	}
	if fast.Count != naive.Count {
		t.Fatalf("prepared served %d tiles, naive %d", fast.Count, naive.Count)
	}
	for i := range fast.Tiles {
		a, b := fast.Tiles[i], naive.Tiles[i]
		if a.Z != b.Z || a.X != b.X || a.Y != b.Y {
			t.Fatalf("tile key %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestTileEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body []byte
		code int
	}{
		{"bad layer", tileBody(t, map[string]any{"layer": "POLYGON (("}), http.StatusBadRequest},
		{"missing layer", tileBody(t, map[string]any{"layer": nil}), http.StatusBadRequest},
		{"bad rule", tileBody(t, map[string]any{"rule": "odd"}), http.StatusBadRequest},
		{"inverted zooms", tileBody(t, map[string]any{"minZoom": 3, "maxZoom": 1}), http.StatusBadRequest},
		{"too deep", tileBody(t, map[string]any{"maxZoom": serveMaxZoom + 1}), http.StatusBadRequest},
		{"bad extent", tileBody(t, map[string]any{"extent": []float64{0, 0, 1}}), http.StatusBadRequest},
		{"degenerate extent", tileBody(t, map[string]any{"extent": []float64{5, 5, 5, 5}}), http.StatusBadRequest},
		{"malformed json", []byte(`{"layer": `), http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, raw := postTile(t, ts.URL, tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.code, raw)
		}
		var er ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Code == "" {
			t.Errorf("%s: error body not structured: %s", tc.name, raw)
		}
	}
	// GET is rejected like /clip.
	resp, err := http.Get(ts.URL + "/tile")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /tile: status %d, want 405", resp.StatusCode)
	}
}

// TestTileEndpointRules: the four fill rules all serve, and the winding
// rules disagree with even-odd on a self-overlapping layer.
func TestTileEndpointRules(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	layer := `POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))` // plus an overlapping square via two rings
	body := func(rule string) []byte {
		return tileBody(t, map[string]any{"layer": layer, "rule": rule, "maxZoom": 2})
	}
	counts := map[string]int{}
	for _, rule := range []string{"evenodd", "nonzero", "positive", "negative"} {
		resp, raw := postTile(t, ts.URL, body(rule))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", rule, resp.StatusCode, raw)
		}
		var tr TileResponse
		if err := json.Unmarshal(raw, &tr); err != nil {
			t.Fatal(err)
		}
		counts[rule] = tr.Count
	}
	if counts["evenodd"] == 0 || counts["nonzero"] == 0 || counts["positive"] == 0 {
		t.Errorf("filled rules served no tiles: %v", counts)
	}
	if counts["negative"] != 0 {
		t.Errorf("negative rule on a CCW layer served %d tiles", counts["negative"])
	}
}
