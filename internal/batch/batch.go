// Package batch is the million-feature overlay pipeline — the layer-level
// realization of the ROADMAP's "scale set-vs-set overlay to millions of
// polygons" item. It composes pieces the repo already has into one
// output-sensitive batch path:
//
//	stream features (WKT / GeoJSON)           internal/geojson, internal/wkt
//	  -> bulk-load MBRs, streaming MBR join   internal/rtree (JoinVisit)
//	    -> spatial buckets of candidate pairs (grid over the joint extent)
//	      -> parallel per-bucket clips        internal/par work-stealing pool
//	        -> engine registry per pair       internal/engine
//	          -> arrangement cache            internal/acache (geom.Hash keys)
//
// The MBR join is the paper's Algorithm 2 candidate filter applied at the
// layer level: per-bucket work is proportional to actual MBR overlaps, not
// to |A|·|B|. The arrangement cache adds operand-level output sensitivity:
// repeated operands (shared basemaps, duplicated features) resolve and clip
// once per distinct geometry.
//
// Output is canonically ordered by (A, B) feature index, which makes the
// result bit-identical regardless of thread count, bucket partition, or
// scheduling — each candidate pair is clipped independently (no cross-pair
// seams), so ordering is the only scheduling-visible freedom.
package batch

import (
	"context"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"polyclip/internal/acache"
	"polyclip/internal/engine"
	"polyclip/internal/geom"
	"polyclip/internal/guard"
	"polyclip/internal/par"
	"polyclip/internal/rtree"
)

// Options configures one batch overlay run.
type Options struct {
	// Rule is the fill rule for every per-pair clip.
	Rule engine.FillRule
	// Engine names the registry engine that clips each pair; it must be
	// slab-hostable (single-threaded per pair). Default "vatti" — the
	// sequential reference, whose PreResolved support lets cache-resolved
	// operands skip the arrangement pass.
	Engine string
	// Threads bounds worker parallelism; <= 0 means all available CPUs.
	Threads int
	// Buckets is the spatial bucket count candidate pairs are grouped
	// into; <= 0 derives 4 buckets per thread (enough slack for the
	// work-stealing pool to balance skewed clusters).
	Buckets int
	// Cache is the arrangement cache; nil uses the process-wide shared
	// cache unless NoCache is set.
	Cache *acache.Cache
	// NoCache disables caching entirely (every pair resolves and clips
	// from scratch) — the cold baseline of the overlay benchmark.
	NoCache bool
	// NoFallback disables the per-pair engine rescue, surfacing the first
	// pair failure directly.
	NoFallback bool

	// bucketOrder overrides the bucket processing order (test hook for the
	// determinism pin: a shuffled order must not change the output).
	bucketOrder []int
}

// Output is one non-empty per-pair clip result: feature A[i] op B[j].
type Output struct {
	A, B int32
	Poly geom.Polygon
}

// Stats reports one run's shape and cost. Duration fields are nanoseconds
// on the wire, matching the engine Stats convention.
type Stats struct {
	FeaturesA      int           `json:"featuresA"`
	FeaturesB      int           `json:"featuresB"`
	CandidatePairs int           `json:"candidatePairs"`
	Buckets        int           `json:"buckets"` // non-empty buckets
	Outputs        int           `json:"outputs"`
	Rescued        int           `json:"rescued"`
	Hash           time.Duration `json:"hashNs"`
	Index          time.Duration `json:"indexNs"`
	Clip           time.Duration `json:"clipNs"`
	Cache          acache.Stats  `json:"cache"` // this run's delta
}

// Overlay clips every candidate feature pair of the two layers and returns
// the non-empty results in canonical (A, B) order. A panic while clipping
// one pair is recovered and the pair retried once on the alternate
// slab-hostable engine (unless NoFallback); only a double failure surfaces,
// as a *guard.ClipError naming the pair.
func Overlay(ctx context.Context, a, b []geom.Polygon, op engine.Op, opt Options) ([]Output, *Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	name := opt.Engine
	if name == "" {
		name = "vatti"
	}
	eng, ok := engine.Get(name)
	if !ok {
		return nil, nil, &engine.UnsupportedError{Engine: name, Rule: opt.Rule}
	}
	if err := engine.CheckRule(eng, opt.Rule); err != nil {
		return nil, nil, err
	}
	cache := opt.Cache
	if cache == nil && !opt.NoCache {
		cache = acache.Shared()
	}
	if opt.NoCache {
		cache = nil
	}
	threads := opt.Threads
	if threads <= 0 {
		threads = par.DefaultParallelism()
	}

	st := &Stats{FeaturesA: len(a), FeaturesB: len(b)}
	cacheBefore := cache.Stats()

	// Canonical digests, once per feature. Repeated operands inside or
	// across the layers collapse onto the same cache keys here.
	t0 := time.Now()
	da := hashAll(ctx, a, threads)
	db := hashAll(ctx, b, threads)
	st.Hash = time.Since(t0)

	// Bulk-load the B MBRs, then stream the spatial join directly into
	// buckets: each candidate pair lands in the grid cell of its shared-MBR
	// center without the full pair list ever existing.
	t1 := time.Now()
	boxesA := make([]geom.BBox, len(a))
	boxesB := make([]geom.BBox, len(b))
	ext := geom.EmptyBBox()
	for i, f := range a {
		boxesA[i] = f.BBox()
		ext = ext.Union(boxesA[i])
	}
	for j, f := range b {
		boxesB[j] = f.BBox()
		ext = ext.Union(boxesB[j])
	}
	nb := opt.Buckets
	if nb <= 0 {
		nb = 4 * threads
	}
	g := int(math.Ceil(math.Sqrt(float64(nb))))
	if g < 1 {
		g = 1
	}
	buckets := make([][][2]int32, g*g)
	w, h := ext.Width(), ext.Height()
	cellOf := func(ba, bb geom.BBox) int {
		cx := (math.Max(ba.MinX, bb.MinX) + math.Min(ba.MaxX, bb.MaxX)) / 2
		cy := (math.Max(ba.MinY, bb.MinY) + math.Min(ba.MaxY, bb.MaxY)) / 2
		gx, gy := 0, 0
		if w > 0 {
			gx = int((cx - ext.MinX) / w * float64(g))
		}
		if h > 0 {
			gy = int((cy - ext.MinY) / h * float64(g))
		}
		gx = clamp(gx, g-1)
		gy = clamp(gy, g-1)
		return gy*g + gx
	}
	if len(a) > 0 && len(b) > 0 {
		tr := rtree.Build(len(boxesB), func(j int32) geom.BBox { return boxesB[j] })
		tr.JoinVisit(len(a),
			func(i int32) geom.BBox { return boxesA[i] },
			func(j int32) geom.BBox { return boxesB[j] },
			func(i, j int32) {
				st.CandidatePairs++
				c := cellOf(boxesA[i], boxesB[j])
				buckets[c] = append(buckets[c], [2]int32{i, j})
			})
	}
	active := make([]int, 0, len(buckets))
	for c, prs := range buckets {
		if len(prs) > 0 {
			active = append(active, c)
		}
	}
	st.Buckets = len(active)
	st.Index = time.Since(t1)

	order := opt.bucketOrder
	if order == nil {
		order = active
	}

	// Fan the buckets out over the work-stealing pool. Each pair clips
	// single-threaded through the cache; outputs collect per bucket and are
	// canonically sorted afterwards, so scheduling leaves no trace.
	t2 := time.Now()
	results := make([][]Output, len(order))
	var firstErr atomic.Pointer[guard.ClipError]
	var rescued atomic.Int32
	werr := par.ForEachCtx(ctx, len(order), threads, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			var out []Output
			for _, pr := range buckets[order[k]] {
				if canceled(ctx) || firstErr.Load() != nil {
					break
				}
				poly, wasRescued, ce := pairClip(ctx, cache, eng, opt,
					a[pr[0]], b[pr[1]], da[pr[0]], db[pr[1]], op, pr)
				if ce != nil {
					firstErr.CompareAndSwap(nil, ce)
					break
				}
				if wasRescued {
					rescued.Add(1)
				}
				if len(poly) > 0 {
					out = append(out, Output{A: pr[0], B: pr[1], Poly: poly})
				}
			}
			results[k] = out
		}
	})
	st.Rescued = int(rescued.Load())
	if werr != nil {
		return nil, st, werr
	}
	if ce := firstErr.Load(); ce != nil {
		return nil, st, ce
	}
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}

	n := 0
	for _, r := range results {
		n += len(r)
	}
	out := make([]Output, 0, n)
	for _, r := range results {
		out = append(out, r...)
	}
	// Canonical order: (A, B) ascending. Each pair occurs in exactly one
	// bucket, so this is a total order independent of the bucketing.
	sort.Slice(out, func(x, y int) bool {
		if out[x].A != out[y].A {
			return out[x].A < out[y].A
		}
		return out[x].B < out[y].B
	})
	st.Outputs = len(out)
	st.Clip = time.Since(t2)
	st.Cache = cache.Stats().Delta(cacheBefore)
	return out, st, nil
}

// pairClip clips one candidate pair through the cache with panic isolation,
// mirroring core's pairClipSafe: a panicking engine is rescued once on the
// alternate slab-hostable engine, clipping the raw operands uncached (the
// cache withdrew its placeholder when the leader panicked).
func pairClip(ctx context.Context, cache *acache.Cache, eng engine.Engine, opt Options,
	fa, fb geom.Polygon, da, db geom.Digest, op engine.Op, pr [2]int32) (out geom.Polygon, wasRescued bool, ce *guard.ClipError) {
	run := func(e engine.Engine, useCache bool) (p geom.Polygon, ce *guard.ClipError) {
		defer func() {
			if r := recover(); r != nil {
				ce = guard.FromPanic("batch-clip", -1, [2]int{int(pr[0]), int(pr[1])}, r)
			}
		}()
		guard.Hit("batch.pair-clip")
		c := cache
		if !useCache {
			c = nil
		}
		return c.Clip(da, db, op, opt.Rule, e.Name(), func() geom.Polygon {
			ra, rb := c.ResolvePair(fa, fb, da, db, opt.Rule)
			res, err := e.Clip(ctx, ra, rb, op, engine.Options{
				Threads: 1, Rule: opt.Rule, PreResolved: true,
			})
			if err != nil {
				panic(err) // recovered above; carried as ClipError.Err
			}
			return res.Polygon
		}), nil
	}
	out, ce = run(eng, true)
	if ce == nil {
		return out, false, nil
	}
	if opt.NoFallback {
		return nil, false, ce
	}
	alt, ok := engine.SlabAlternate(eng.Name())
	if !ok {
		return nil, false, ce
	}
	out, ce2 := run(alt, false)
	if ce2 != nil {
		return nil, false, ce // surface the original failure
	}
	return out, true, nil
}

// hashAll digests every feature, in parallel for large layers.
func hashAll(ctx context.Context, fs []geom.Polygon, threads int) []geom.Digest {
	out := make([]geom.Digest, len(fs))
	if len(fs) < 4096 || threads <= 1 {
		for i, f := range fs {
			out[i] = geom.Hash(f)
		}
		return out
	}
	par.ForEachCtx(ctx, len(fs), threads, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = geom.Hash(fs[i])
		}
	})
	return out
}

func clamp(v, hi int) int {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}

func canceled(ctx context.Context) bool {
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}
