package polyclip

import (
	"context"
	"strings"
	"testing"
)

func TestOverlayBatchCtx(t *testing.T) {
	a := strings.NewReader("POLYGON ((0 0, 4 0, 4 4, 0 4))\nPOLYGON ((10 10, 12 10, 12 12, 10 12))\n")
	b := strings.NewReader(`{"type":"FeatureCollection","features":[
		{"type":"Feature","geometry":{"type":"Polygon","coordinates":[[[2,2],[6,2],[6,6],[2,6],[2,2]]]}}]}`)
	outs, st, err := OverlayBatchCtx(context.Background(), a, b, Intersection, BatchOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].A != 0 || outs[0].B != 0 {
		t.Fatalf("outputs: %+v", outs)
	}
	if area := outs[0].Poly.Area(); area < 3.99 || area > 4.01 {
		t.Fatalf("area %v, want 4", area)
	}
	if st.FeaturesA != 2 || st.FeaturesB != 1 || st.CandidatePairs != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestOverlayBatchCtxBadInput(t *testing.T) {
	b := strings.NewReader("POLYGON ((0 0, 1 0, 1 1))\n")
	if _, _, err := OverlayBatchCtx(context.Background(),
		strings.NewReader("POLYGON ((nope))\n"), b, Intersection, BatchOptions{}); err == nil {
		t.Fatal("bad WKT accepted")
	}
}

func TestOverlayBatchLayersCtxMatchesOverlayLayers(t *testing.T) {
	a := Layer{
		{{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 4}, {X: 0, Y: 4}}},
		{{{X: 8, Y: 8}, {X: 12, Y: 8}, {X: 12, Y: 12}, {X: 8, Y: 12}}},
	}
	b := Layer{
		{{{X: 2, Y: 2}, {X: 6, Y: 2}, {X: 6, Y: 6}, {X: 2, Y: 6}}},
		{{{X: 9, Y: 9}, {X: 11, Y: 9}, {X: 11, Y: 11}, {X: 9, Y: 11}}},
	}
	outs, _, err := OverlayBatchLayersCtx(context.Background(), a, b, Intersection,
		BatchOptions{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := OverlayLayers(a, b, Intersection, Options{Threads: 1})
	if len(outs) != len(ref) {
		t.Fatalf("batch %d outputs, layers %d", len(outs), len(ref))
	}
	var got, want float64
	for _, o := range outs {
		got += o.Poly.Area()
	}
	for _, p := range ref {
		want += p.Area()
	}
	if d := got - want; d > 1e-9 || d < -1e-9 {
		t.Fatalf("area %v != %v", got, want)
	}
}
