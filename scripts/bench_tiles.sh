#!/bin/sh
# Reproduce BENCH_tiles.json: vector-tile pyramid cutting through the
# prepared-geometry pipeline (internal/prepared + internal/tile).
#
# One synthetic multi-ring layer (TILES_RINGS rings) is cut into a z/x/y
# pyramid (zooms 0..TILES_MAXZOOM) twice: a naive baseline that pays a full
# resolve+sweep of the raw layer for every candidate tile, and the prepared
# pipeline that resolves the layer once and then settles most tiles with
# O(log n) fast paths (MBR accept/reject, quadtree pruning, convex-window
# band clips). The artifact records both throughputs, the fast-path route
# counts, and the fraction of pyramid tiles that never reached a sweep.
#
# Embedded contract gates — the script exits nonzero unless:
#   - the prepared cut is >= 2x faster than the naive baseline;
#   - the prepared cut is bit-identical at 1, 2 and 8 threads;
#   - a fast-path fraction is reported.
#
# Deterministic inputs (fixed seed); timings vary with the host.
set -eu
cd "$(dirname "$0")/.."

OUT="${TILES_OUT:-BENCH_tiles.json}"
RINGS="${TILES_RINGS:-64}"
MAXZOOM="${TILES_MAXZOOM:-6}"
SEED="${TILES_SEED:-42}"
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT INT TERM

echo "running tile-cutting benchmark ($RINGS rings, zooms 0:$MAXZOOM)..." >&2
go run ./cmd/bench -exp tiles -rings "$RINGS" -maxzoom "$MAXZOOM" -seed "$SEED" -json > "$TMP"

# One JSON object per line; the tiles experiment emits exactly one.
RESULT=$(head -n1 "$TMP")
if [ -z "$RESULT" ]; then
	echo "FAIL: benchmark produced no output" >&2
	exit 1
fi

# Contract gates: the counters are emitted by Go's encoding/json with no
# whitespace, so fixed-string grep is reliable here.
if ! printf '%s' "$RESULT" | grep -q '"fastPathPct":'; then
	echo "FAIL: no fast-path fraction reported" >&2
	exit 1
fi
if ! printf '%s' "$RESULT" | grep -q '"preparedGatePass":1'; then
	echo "FAIL: prepared cut is not >= 2x faster than the naive baseline" >&2
	printf '%s\n' "$RESULT" >&2
	exit 1
fi
if ! printf '%s' "$RESULT" | grep -q '"detGatePass":1'; then
	echo "FAIL: prepared cut is not bit-identical at 1/2/8 threads" >&2
	printf '%s\n' "$RESULT" >&2
	exit 1
fi

CORES=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc)
GOVER=$(go env GOVERSION)
GOOS=$(go env GOOS)
GOARCH=$(go env GOARCH)
DATE=$(date -u +%Y-%m-%d)

{
	printf '{\n'
	printf '  "description": "Vector-tile pyramid cutting (internal/tile over internal/prepared): the subject layer is resolved and indexed once, then every tile is settled by the cheapest sufficient route — O(1) MBR accept/reject, quadtree subtree pruning/filling, single-convex-ring clip, or a two-pass y/x band clip — with a full sweep only as a rescue. The naive baseline re-clips the raw layer per tile. Gated in scripts/bench_tiles.sh (make tile-bench): prepared >= 2x naive, output bit-identical at 1/2/8 threads.",\n'
	printf '  "environment": {\n'
	printf '    "goos": "%s",\n' "$GOOS"
	printf '    "goarch": "%s",\n' "$GOARCH"
	printf '    "cores": %d,\n' "$CORES"
	printf '    "go": "%s",\n' "$GOVER"
	printf '    "rings": %d,\n' "$RINGS"
	printf '    "max_zoom": %d,\n' "$MAXZOOM"
	printf '    "seed": %d,\n' "$SEED"
	printf '    "date": "%s"\n' "$DATE"
	printf '  },\n'
	printf '  "gate": {"prepared_ge_2x_naive": true, "deterministic_1_2_8_threads": true, "fast_path_fraction_reported": true},\n'
	printf '  "result": %s\n' "$RESULT"
	printf '}\n'
} > "$OUT"

echo "wrote $OUT (gates passed)" >&2
