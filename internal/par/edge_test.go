package par

import (
	"reflect"
	"sync/atomic"
	"testing"
)

// Edge-of-domain tests for every primitive the pipeline fans out through:
// empty input, single item, non-positive parallelism (→ DefaultParallelism),
// and more workers than items. These run under -race in scripts/check.sh,
// so they also prove the chunking never double-visits or drops an index.

var edgeDims = []struct{ n, p int }{
	{0, 1}, {0, 0}, {0, -3},
	{1, 1}, {1, 0}, {1, -1}, {1, 8},
	{3, 64}, {5, 5},
}

func TestForEachEdges(t *testing.T) {
	for _, d := range edgeDims {
		var visited int64
		ForEach(d.n, d.p, func(lo, hi int) {
			if lo < 0 || hi > d.n || lo >= hi {
				t.Errorf("n=%d p=%d: bad chunk [%d,%d)", d.n, d.p, lo, hi)
			}
			atomic.AddInt64(&visited, int64(hi-lo))
		})
		if visited != int64(d.n) {
			t.Errorf("n=%d p=%d: visited %d items", d.n, d.p, visited)
		}
	}
}

func TestForEachItemEdges(t *testing.T) {
	for _, d := range edgeDims {
		marks := make([]int32, d.n)
		ForEachItem(d.n, d.p, func(i int) { atomic.AddInt32(&marks[i], 1) })
		for i, m := range marks {
			if m != 1 {
				t.Errorf("n=%d p=%d: index %d visited %d times", d.n, d.p, i, m)
			}
		}
	}
}

func TestReduceEdges(t *testing.T) {
	sum := func(a, b int) int { return a + b }
	for _, d := range edgeDims {
		xs := make([]int, d.n)
		want := 0
		for i := range xs {
			xs[i] = i + 1
			want += i + 1
		}
		if got := Reduce(xs, 0, sum, d.p); got != want {
			t.Errorf("n=%d p=%d: Reduce = %d, want %d", d.n, d.p, got, want)
		}
	}
	if got := Reduce(nil, 42, sum, 4); got != 42 {
		t.Errorf("Reduce(nil) = %d, want identity 42", got)
	}
}

func TestPackEdges(t *testing.T) {
	for _, d := range edgeDims {
		xs := make([]int, d.n)
		keep := make([]bool, d.n)
		var want []int
		for i := range xs {
			xs[i] = i
			keep[i] = i%2 == 0
			if keep[i] {
				want = append(want, i)
			}
		}
		got := Pack(xs, keep, d.p)
		if len(got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(got, want)) {
			t.Errorf("n=%d p=%d: Pack = %v, want %v", d.n, d.p, got, want)
		}
	}
}

func TestSortEdges(t *testing.T) {
	less := func(a, b int) bool { return a < b }
	for _, d := range edgeDims {
		xs := make([]int, d.n)
		for i := range xs {
			xs[i] = d.n - i
		}
		Sort(xs, less, d.p)
		if !IsSorted(xs, less) {
			t.Errorf("n=%d p=%d: not sorted: %v", d.n, d.p, xs)
		}
	}
}

func TestParallelPrefixSumEdges(t *testing.T) {
	for _, d := range edgeDims {
		xs := make([]int, d.n)
		ys := make([]int, d.n)
		for i := range xs {
			xs[i] = i*3 + 1
			ys[i] = xs[i]
		}
		wantTotal := PrefixSum(ys)
		if got := ParallelPrefixSum(xs, d.p); got != wantTotal {
			t.Errorf("n=%d p=%d: total %d, want %d", d.n, d.p, got, wantTotal)
		}
		if d.n > 0 && !reflect.DeepEqual(xs, ys) {
			t.Errorf("n=%d p=%d: scan %v, want %v", d.n, d.p, xs, ys)
		}
	}
}
